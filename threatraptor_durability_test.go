package threatraptor

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/wal"
)

// durableSystem builds a System on a WAL in dir.
func durableSystem(t *testing.T, dir string, cfg wal.Config, opts Options) (*System, *wal.Log) {
	t.Helper()
	log, err := wal.Open(dir, cfg)
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	opts.WAL = log
	sys, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return sys, log
}

// durabilityBatch builds a varied per-host batch: file reads/writes by
// two processes plus a network connection, so hunts exercise entity
// interning, multiple ops, and multi-pattern joins.
func durabilityBatch(host string, batch, events int) []Record {
	recs := make([]Record, 0, events+2)
	base := int64(batch * 1_000_000)
	exes := []string{"/bin/worker", "/usr/bin/curl"}
	for i := 0; i < events; i++ {
		op := audit.OpRead
		if i%3 == 0 {
			op = audit.OpWrite
		}
		recs = append(recs, Record{
			StartNS: base + int64(i)*10, EndNS: base + int64(i)*10 + 1,
			Host: host, PID: 100 + i%2, Exe: exes[i%2],
			Op: op, ObjType: audit.EntityFile,
			ObjSpec: fmt.Sprintf("/data/%s-%d", host, i%6), Amount: int64(32 + i),
		})
	}
	recs = append(recs, Record{
		StartNS: base + int64(events)*10, EndNS: base + int64(events)*10 + 1,
		Host: host, PID: 100, Exe: "/usr/bin/curl",
		Op: audit.OpSend, ObjType: audit.EntityNetConn,
		ObjSpec: fmt.Sprintf("10.0.0.%d:4000->203.0.113.9:443/tcp", batch%250+1), Amount: 512,
	})
	return recs
}

// randomHuntQueries composes n valid TBQL queries over the entities the
// durability batches create (the recovered-store equivalence suite).
func randomHuntQueries(n int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	exes := []string{"/bin/worker", "/usr/bin/curl"}
	files := []string{"/data/hostA-0", "/data/hostB-1", "/data/hostA-2", "/data/hostC-3"}
	fileOps := []string{"read", "write", "read || write"}
	hosts := []string{"hostA", "hostB", "hostC"}
	var out []string
	for i := 0; i < n; i++ {
		nPat := 1 + rng.Intn(3)
		var b strings.Builder
		var names []string
		used := map[string]bool{}
		for j := 0; j < nPat; j++ {
			name := fmt.Sprintf("e%d", j+1)
			names = append(names, name)
			subjID := fmt.Sprintf("p%d", rng.Intn(2))
			objID := fmt.Sprintf("f%d", rng.Intn(2))
			used[subjID], used[objID] = true, true
			subjF, objF := "", ""
			switch rng.Intn(3) {
			case 0:
				subjF = fmt.Sprintf(`[exename = "%s"]`, exes[rng.Intn(len(exes))])
			case 1:
				subjF = fmt.Sprintf(`[host = "%s"]`, hosts[rng.Intn(len(hosts))])
			}
			if rng.Intn(2) == 0 {
				objF = fmt.Sprintf(`["%%%s%%"]`, files[rng.Intn(len(files))][:7])
			}
			if rng.Intn(6) == 0 {
				fmt.Fprintf(&b, "proc %s%s ~>(1~3)[read] file %s%s as %s\n", subjID, subjF, objID, objF, name)
			} else {
				fmt.Fprintf(&b, "proc %s%s %s file %s%s as %s\n", subjID, subjF, fileOps[rng.Intn(len(fileOps))], objID, objF, name)
			}
		}
		if nPat > 1 && rng.Intn(2) == 0 {
			fmt.Fprintf(&b, "with %s before %s\n", names[0], names[1])
		}
		var ret []string
		for _, id := range []string{"p0", "p1", "f0", "f1"} {
			if used[id] {
				ret = append(ret, id)
			}
		}
		b.WriteString("return distinct " + strings.Join(ret, ", "))
		out = append(out, b.String())
	}
	return out
}

func sortedRows(res *HuntResult) []string {
	rows := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		rows[i] = strings.Join(r, "\x1f")
	}
	sort.Strings(rows)
	return rows
}

// assertHuntEquivalence runs the query suite against both systems and
// requires identical sorted match sets.
func assertHuntEquivalence(t *testing.T, label string, want, got *System, queries []string) {
	t.Helper()
	for i, src := range queries {
		wres, err := want.Hunt(src)
		if err != nil {
			t.Fatalf("%s query %d on reference: %v\n%s", label, i, err, src)
		}
		gres, err := got.Hunt(src)
		if err != nil {
			t.Fatalf("%s query %d on recovered: %v\n%s", label, i, err, src)
		}
		w, g := sortedRows(wres), sortedRows(gres)
		if len(w) != len(g) {
			t.Fatalf("%s query %d: %d rows vs %d recovered\n%s", label, i, len(w), len(g), src)
		}
		for j := range w {
			if w[j] != g[j] {
				t.Fatalf("%s query %d row %d: %q vs %q\n%s", label, i, j, w[j], g[j], src)
			}
		}
	}
}

// TestRecoveredHuntEquivalence is the acceptance suite: ingest across
// hosts (with a mid-stream segment flush so recovery exercises both the
// segment and WAL-tail paths), restart cleanly, and require 120 random
// hunts to return identical match sets on the recovered store. The
// 4-shard variant replays per-shard segment files concurrently at
// restart, so it additionally proves the parallel loader reassembles
// the same store — including the commit-ordered event IDs the restored
// parser re-sorts to.
func TestRecoveredHuntEquivalence(t *testing.T) {
	for _, shards := range []int{2, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			dir := t.TempDir()
			cfg := wal.Config{Shards: shards}
			sys, log := durableSystem(t, dir, cfg, Options{Shards: shards})
			for b := 0; b < 4; b++ {
				for _, host := range []string{"hostA", "hostB", "hostC"} {
					if _, err := sys.IngestRecords(durabilityBatch(host, b, 40)); err != nil {
						t.Fatalf("ingest %s/%d: %v", host, b, err)
					}
				}
				if b == 1 {
					// Half the data goes through a segment set, half stays WAL tail.
					if err := log.FlushSegments(); err != nil {
						t.Fatalf("FlushSegments: %v", err)
					}
				}
			}
			if err := log.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}

			recovered, log2 := durableSystem(t, dir, cfg, Options{Shards: shards})
			defer log2.Close()
			rec := recovered.Recovery()
			if !rec.Clean || rec.Epoch != uint64(sys.Epoch()) {
				t.Fatalf("recovery info %+v, want clean at epoch %d", rec, sys.Epoch())
			}
			if recovered.NumEvents() != sys.NumEvents() || recovered.NumEntities() != sys.NumEntities() {
				t.Fatalf("recovered %d/%d events/entities, want %d/%d",
					recovered.NumEvents(), recovered.NumEntities(), sys.NumEvents(), sys.NumEntities())
			}
			// Concurrent per-shard replay restores events in nondeterministic
			// order; SortRestoredEvents must have put the parser's slice back
			// in ID (= commit) order.
			evs := recovered.parser.Events()
			for i := 1; i < len(evs); i++ {
				if evs[i-1].ID >= evs[i].ID {
					t.Fatalf("restored events out of ID order at %d: %d >= %d", i, evs[i-1].ID, evs[i].ID)
				}
			}
			assertHuntEquivalence(t, "clean-restart", sys, recovered, randomHuntQueries(120, 42))
		})
	}
}

// TestCrashRecoveryProperty is the kill-at-random-offset property test:
// truncate the WAL at a random byte (simulating kill -9 mid-write) and
// require the recovered store to equal a fresh store built from exactly
// the recovered batch prefix — batch-atomic recovery, hunts included.
func TestCrashRecoveryProperty(t *testing.T) {
	const batches = 6
	queries := randomHuntQueries(20, 99)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 6; trial++ {
		dir := t.TempDir()
		sys, _ := durableSystem(t, dir, wal.Config{Fsync: wal.Policy{Mode: wal.FsyncNever}}, Options{})
		for b := 0; b < batches; b++ {
			if _, err := sys.IngestRecords(durabilityBatch("hostA", b, 25)); err != nil {
				t.Fatal(err)
			}
		}
		// Kill: no Close, tear the log at a random byte.
		walFile := filepath.Join(dir, "wal-0.log")
		st, err := os.Stat(walFile)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(walFile, rng.Int63n(st.Size()+1)); err != nil {
			t.Fatal(err)
		}

		recovered, log2 := durableSystem(t, dir, wal.Config{}, Options{})
		rec := recovered.Recovery()
		if rec.Clean {
			t.Fatal("crash must not recover clean")
		}
		// Each batch was one commit, so the recovered epoch counts whole
		// batches: rebuild a reference store from exactly that prefix.
		if rec.Epoch > batches {
			t.Fatalf("trial %d: recovered epoch %d beyond %d batches", trial, rec.Epoch, batches)
		}
		ref, err := New(Options{})
		if err != nil {
			t.Fatal(err)
		}
		for b := 0; b < int(rec.Epoch); b++ {
			if _, err := ref.IngestRecords(durabilityBatch("hostA", b, 25)); err != nil {
				t.Fatal(err)
			}
		}
		if recovered.NumEvents() != ref.NumEvents() || recovered.NumEntities() != ref.NumEntities() {
			t.Fatalf("trial %d: recovered %d/%d events/entities, prefix store has %d/%d",
				trial, recovered.NumEvents(), recovered.NumEntities(), ref.NumEvents(), ref.NumEntities())
		}
		assertHuntEquivalence(t, fmt.Sprintf("crash-trial-%d", trial), ref, recovered, queries)
		log2.Close()
	}
}

// TestAckedBatchSurvivesFsyncAlways: with -fsync always, a batch whose
// ingest returned is durable even if the process dies without Close.
func TestAckedBatchSurvivesFsyncAlways(t *testing.T) {
	dir := t.TempDir()
	sys, _ := durableSystem(t, dir, wal.Config{Fsync: wal.Policy{Mode: wal.FsyncAlways}}, Options{})
	for b := 0; b < 3; b++ {
		if _, err := sys.IngestRecords(durabilityBatch("hostA", b, 10)); err != nil {
			t.Fatal(err)
		}
	}
	// No Close — the acks already guaranteed durability.
	recovered, log2 := durableSystem(t, dir, wal.Config{}, Options{})
	defer log2.Close()
	if recovered.NumEvents() != sys.NumEvents() {
		t.Fatalf("acked events lost: recovered %d, want %d", recovered.NumEvents(), sys.NumEvents())
	}
	if recovered.Recovery().Epoch != uint64(sys.Epoch()) {
		t.Fatalf("recovered epoch %d, want %d", recovered.Recovery().Epoch, sys.Epoch())
	}
}

// TestDegradedNoPartialCommit: a disk fault during the WAL append must
// refuse the batch with ErrDegraded and leave zero partial state — no
// new entities, events, or epoch — while hunts keep working.
func TestDegradedNoPartialCommit(t *testing.T) {
	dir := t.TempDir()
	ffs := wal.NewFaultFS(nil)
	sys, _ := durableSystem(t, dir, wal.Config{FS: ffs, Fsync: wal.Policy{Mode: wal.FsyncNever}}, Options{})
	if _, err := sys.IngestRecords(durabilityBatch("hostA", 0, 10)); err != nil {
		t.Fatal(err)
	}
	events, entities := sys.NumEvents(), sys.NumEntities()

	ffs.FailWritesAfter(0, true)
	_, err := sys.IngestRecords(durabilityBatch("hostB", 1, 10))
	if !errors.Is(err, ErrDegraded) {
		t.Fatalf("want ErrDegraded, got %v", err)
	}
	if sys.NumEvents() != events || sys.NumEntities() != entities {
		t.Fatalf("partial commit leaked: %d/%d events/entities, want %d/%d",
			sys.NumEvents(), sys.NumEntities(), events, entities)
	}
	if reason, ok := sys.Degraded(); !ok || reason == "" {
		t.Fatal("system should report degraded")
	}
	// hostB interned nothing: a hunt for its events finds no rows.
	res, err := sys.Hunt("proc p[host = \"hostB\"] read file f as e1\nreturn distinct p, f")
	if err != nil {
		t.Fatalf("hunts must keep working while degraded: %v", err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("refused batch visible to hunts: %d rows", len(res.Rows))
	}
	// Degraded is sticky.
	ffs.FailWritesAfter(-1, false)
	if _, err := sys.IngestRecords(durabilityBatch("hostC", 2, 5)); !errors.Is(err, ErrDegraded) {
		t.Fatalf("degraded must be sticky, got %v", err)
	}
}

// TestChunkedIngest: a batch larger than IngestChunk splits into
// multiple commits (epochs, WAL records) while reporting aggregate
// stats, and every record lands exactly once.
func TestChunkedIngest(t *testing.T) {
	dir := t.TempDir()
	sys, log := durableSystem(t, dir, wal.Config{}, Options{IngestChunk: 10})
	defer log.Close()
	recs := durabilityBatch("hostA", 0, 33) // 34 records -> 4 chunks
	st, err := sys.IngestRecords(recs)
	if err != nil {
		t.Fatal(err)
	}
	if st.EventsIn != len(recs) || st.EventsStored != len(recs) {
		t.Fatalf("stats %+v, want %d events through", st, len(recs))
	}
	if got := uint64(sys.Epoch()); got != 4 {
		t.Fatalf("epoch %d, want 4 chunked commits", got)
	}
	if ws := log.Stats(); ws.Records != 4 {
		t.Fatalf("%d WAL records, want 4", ws.Records)
	}
	if sys.NumEvents() != len(recs) {
		t.Fatalf("stored %d events, want %d", sys.NumEvents(), len(recs))
	}
	// Chunk boundaries must not break interning: the same entities
	// referenced across chunks resolve to one ID each.
	unchunked, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := unchunked.IngestRecords(recs); err != nil {
		t.Fatal(err)
	}
	if sys.NumEntities() != unchunked.NumEntities() {
		t.Fatalf("chunked interned %d entities, unchunked %d", sys.NumEntities(), unchunked.NumEntities())
	}
}

// TestRecoveryWithCPR: with CPR on, the WAL stores the post-reduction
// events (the stores' ground truth), so a recovered store matches the
// original stores exactly.
func TestRecoveryWithCPR(t *testing.T) {
	dir := t.TempDir()
	sys, log := durableSystem(t, dir, wal.Config{}, Options{CPR: true})
	for b := 0; b < 3; b++ {
		if _, err := sys.IngestRecords(durabilityBatch("hostA", b, 30)); err != nil {
			t.Fatal(err)
		}
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	recovered, log2 := durableSystem(t, dir, wal.Config{}, Options{CPR: true})
	defer log2.Close()
	if recovered.NumEvents() != sys.NumEvents() {
		t.Fatalf("recovered %d events, want %d (post-CPR)", recovered.NumEvents(), sys.NumEvents())
	}
	assertHuntEquivalence(t, "cpr-restart", sys, recovered, randomHuntQueries(30, 7))
}

// TestRecoveryAfterRetentionCompaction: events older than the retention
// window age out of the merged segments, and a restarted store no
// longer holds them — bounded memory across restarts.
func TestRecoveryAfterRetentionCompaction(t *testing.T) {
	dir := t.TempDir()
	now := time.Now()
	cfg := wal.Config{Retention: time.Hour, Now: func() time.Time { return now }}
	sys, log := durableSystem(t, dir, cfg, Options{})
	oldNS := now.Add(-2 * time.Hour).UnixNano()
	freshNS := now.UnixNano()
	mk := func(ns int64, host string) []Record {
		return []Record{{
			StartNS: ns, EndNS: ns + 1, Host: host, PID: 100, Exe: "/bin/worker",
			Op: audit.OpRead, ObjType: audit.EntityFile, ObjSpec: "/data/x", Amount: 1,
		}}
	}
	if _, err := sys.IngestRecords(mk(oldNS, "hostA")); err != nil {
		t.Fatal(err)
	}
	if err := log.FlushSegments(); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.IngestRecords(mk(freshNS, "hostA")); err != nil {
		t.Fatal(err)
	}
	if err := log.FlushSegments(); err != nil { // second set triggers compaction
		t.Fatal(err)
	}
	if ws := log.Stats(); ws.Compactions != 1 {
		t.Fatalf("want 1 compaction, got %+v", ws)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	if sys.NumEvents() != 2 {
		t.Fatalf("live store should still hold both events, has %d", sys.NumEvents())
	}

	recovered, log2 := durableSystem(t, dir, cfg, Options{})
	defer log2.Close()
	// In-memory age-out takes effect at restart: only the fresh event.
	if recovered.NumEvents() != 1 {
		t.Fatalf("recovered %d events, want 1 after retention", recovered.NumEvents())
	}
}

// TestFacadeDurabilityAccessors pins the nil-safe WAL accessors on both
// a memory-only and a durable System, and the analyzed-query hunt
// entrypoints the daemon's query cache uses.
func TestFacadeDurabilityAccessors(t *testing.T) {
	mem, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st := mem.WALStats(); st != (wal.Stats{}) {
		t.Fatalf("memory-only WALStats = %+v, want zero", st)
	}
	if rec := mem.Recovery(); rec != (wal.RecoveryInfo{}) {
		t.Fatalf("memory-only Recovery = %+v, want zero", rec)
	}
	if reason, ok := mem.Degraded(); ok || reason != "" {
		t.Fatalf("memory-only Degraded = %q/%v", reason, ok)
	}

	sys, log := durableSystem(t, t.TempDir(), wal.Config{Fsync: wal.Policy{Mode: wal.FsyncNever}}, Options{})
	defer log.Close()
	if _, err := sys.IngestRecords(durabilityBatch("hostA", 1, 12)); err != nil {
		t.Fatal(err)
	}
	if st := sys.WALStats(); st.Records != 1 {
		t.Fatalf("WALStats.Records = %d, want 1", st.Records)
	}

	q, err := sys.ParseQuery("proc p read file f as e1\nreturn distinct p, f")
	if err != nil {
		t.Fatal(err)
	}
	cur, err := sys.HuntQueryCursor(q)
	if err != nil {
		t.Fatal(err)
	}
	full := drainCursor(t, cur)
	// The same analyzed query re-executes (the query-cache path), here
	// with a row bound.
	curLim, err := sys.HuntQueryCursorLimit(q, len(full)+1)
	if err != nil {
		t.Fatal(err)
	}
	if lim := drainCursor(t, curLim); len(lim) != len(full) {
		t.Fatalf("limited re-execution: %d rows vs %d", len(lim), len(full))
	}
	if _, _, size := sys.PlanCacheStats(); size == 0 {
		t.Fatal("plan cache empty after two executions")
	}
}

// drainCursor reads a cursor to exhaustion, returning its rows joined
// per row for comparison.
func drainCursor(t *testing.T, cur *Cursor) []string {
	t.Helper()
	defer cur.Close()
	var rows []string
	for cur.Next() {
		rows = append(rows, strings.Join(cur.Row(), "\x1f"))
	}
	if err := cur.Err(); err != nil {
		t.Fatalf("cursor: %v", err)
	}
	sort.Strings(rows)
	return rows
}
