package threatraptor

import (
	"context"
	"errors"
	"sync"
	"time"

	"repro/internal/exec"
	"repro/internal/snapshot"
)

// This file is the facade of the standing-hunt subsystem: System.Watch
// registers a TBQL query for continuous detection, and every ingest
// commit is incrementally evaluated against it (internal/exec's
// StandingHunt) with the new matches delivered as WatchBatch values on
// the watch's channel. Delivery never blocks ingest: the epoch clock's
// commit announcement only posts to a coalescing channel, a single
// evaluator goroutine advances every registered watch, and a watch
// whose subscriber stops draining its buffered channel is evicted
// (ErrSlowSubscriber) instead of stalling the pipeline.

// DefaultWatchBuffer is the default per-watch delivery buffer, in
// batches. A subscriber may fall this many batches behind before it is
// evicted.
const DefaultWatchBuffer = 16

// ErrSlowSubscriber reports that a watch was evicted because its
// subscriber stopped draining the delivery channel: the buffer was full
// when a new batch arrived. The ingest commit path is never blocked by
// a slow subscriber; the watch is closed instead.
var ErrSlowSubscriber = errors.New("threatraptor: standing hunt evicted: subscriber too slow")

// WatchBatch is one delivery: the new matches one ingest span produced
// for one watch. Resume is an opaque token naming the watermarks this
// batch consumed up to — pass it to WatchOptions.Resume after a restart
// to continue exactly after the last acknowledged batch, without
// re-receiving earlier matches.
type WatchBatch struct {
	WatchID uint64
	Epoch   Epoch
	Resume  string
	Rows    [][]string
}

// WatchOptions configures System.Watch.
type WatchOptions struct {
	// Buffer is the delivery channel capacity in batches (default
	// DefaultWatchBuffer). A subscriber further behind than this is
	// evicted.
	Buffer int
	// Resume positions the watch at a previous watch's resume token
	// (WatchBatch.Resume): matches at or below the token's watermarks
	// are silently skipped and the first delivery holds exactly what
	// committed after it. Tokens survive a restart when the store
	// recovered everything the token covers (fsync-always guarantees
	// it for acknowledged ingests); a token ahead of the recovered
	// store is rejected.
	Resume string
}

// Watch is one registered standing hunt. Receive delivered batches from
// C; the channel closes when the watch is closed or evicted, and Err
// reports why. A Watch is safe for concurrent use.
type Watch struct {
	id   uint64
	sys  *System
	hunt *exec.StandingHunt

	ch chan WatchBatch

	// ctx is the watch's lifecycle context; Close cancels it BEFORE
	// taking mu, so a pump blocked mid-Advance (which holds mu) aborts
	// within a bounded amount of join work instead of making Close wait
	// out the whole delta evaluation.
	ctx    context.Context
	cancel context.CancelFunc

	// mu serializes evaluation + delivery (the evaluator goroutine and
	// SyncWatches both pump) and guards the fields below.
	mu     sync.Mutex
	closed bool
	err    error
	resume string
}

// Watch registers q as a standing hunt. The first delivery is the
// backfill: every match already in the store (or, with Resume set,
// every match since the token). Later deliveries carry only what each
// ingest commit added; the union of all delivered batches equals
// re-executing q at the final epoch. The caller must drain C (or
// Close) — a subscriber that stops reading is evicted once the buffer
// fills.
func (s *System) Watch(q *Query, opts WatchOptions) (*Watch, error) {
	var hunt *exec.StandingHunt
	var err error
	if opts.Resume != "" {
		hunt, err = s.engine.ResumeStandingHunt(q, opts.Resume)
	} else {
		hunt, err = s.engine.NewStandingHunt(q)
	}
	if err != nil {
		return nil, err
	}
	buf := opts.Buffer
	if buf <= 0 {
		buf = DefaultWatchBuffer
	}
	w := &Watch{sys: s, hunt: hunt, ch: make(chan WatchBatch, buf)}
	w.ctx, w.cancel = context.WithCancel(context.Background())
	s.watchMu.Lock()
	s.watchNextID++
	w.id = s.watchNextID
	s.watches[w.id] = w
	if !s.watchRunning {
		s.watchRunning = true
		go s.watchLoop()
	}
	s.watchMu.Unlock()
	s.watchOpened.Add(1)
	// Backfill (or post-resume catch-up) synchronously: the first batch
	// is enqueued before Watch returns.
	w.pump()
	return w, nil
}

// C returns the delivery channel. It closes when the watch ends; check
// Err afterwards to distinguish Close (nil) from eviction or an
// evaluation failure.
func (w *Watch) C() <-chan WatchBatch { return w.ch }

// ID returns the watch's registry id (unique per System).
func (w *Watch) ID() uint64 { return w.id }

// Columns returns the projected column names. The caller must not
// modify the returned slice.
func (w *Watch) Columns() []string { return w.hunt.Columns() }

// Resume returns the latest resume token the watch has evaluated up to
// (also carried on every delivered batch).
func (w *Watch) Resume() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.resume
}

// Err reports why the watch ended: nil after an explicit Close,
// ErrSlowSubscriber after an eviction, or the evaluation error that
// killed it. Valid once C is closed.
func (w *Watch) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Close unregisters the watch and closes its channel. Batches already
// buffered remain readable. A pump mid-Advance is cancelled rather than
// waited out, so Close returns promptly even when an ingest burst has
// the evaluator deep in a delta join. Close is idempotent.
func (w *Watch) Close() {
	// Cancel before taking mu: a pump holding mu inside Advance only
	// releases it once the cancellation interrupts the join.
	w.cancel()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return
	}
	w.closed = true
	close(w.ch)
	w.sys.removeWatch(w.id)
}

// pump advances the hunt and delivers the resulting batch, if any.
// Serialized per watch; concurrent pumps see an empty delta and
// deliver nothing.
func (w *Watch) pump() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return
	}
	advStart := time.Now()
	b, err := w.hunt.AdvanceContext(w.ctx)
	w.sys.metrics.ObserveStandingAdvance(advStart)
	if err != nil {
		if w.ctx.Err() != nil && errors.Is(err, exec.ErrHuntCancelled) {
			// Close cancelled this pump mid-Advance. Close owns the
			// shutdown — it is already closing the channel and
			// unregistering — so do not double-close here.
			return
		}
		w.err = err
		w.closed = true
		close(w.ch)
		w.cancel()
		w.sys.removeWatch(w.id)
		return
	}
	w.resume = b.Resume
	if len(b.Rows) == 0 {
		// Empty spans are suppressed, not delivered: the data is
		// immutable, so a skipped empty span can never hide a match.
		return
	}
	select {
	case w.ch <- WatchBatch{WatchID: w.id, Epoch: b.Epoch, Resume: b.Resume, Rows: b.Rows}:
		w.sys.watchBatches.Add(1)
		w.sys.watchRows.Add(int64(len(b.Rows)))
		// Delivery lag: how many commits landed between this batch's
		// epoch and now. 0–1 is a watch keeping up; growth means the
		// evaluator is falling behind the commit rate.
		if cur := w.sys.clock.Current(); cur > b.Epoch {
			w.sys.metrics.ObserveWatchLag(uint64(cur - b.Epoch))
		} else {
			w.sys.metrics.ObserveWatchLag(0)
		}
	default:
		// Slow subscriber: evict rather than block the evaluator (and
		// with it the commit announcement path).
		w.err = ErrSlowSubscriber
		w.closed = true
		close(w.ch)
		w.cancel()
		w.sys.watchEvicted.Add(1)
		w.sys.removeWatch(w.id)
	}
}

// watchList snapshots the registered watches.
func (s *System) watchList() []*Watch {
	s.watchMu.Lock()
	defer s.watchMu.Unlock()
	out := make([]*Watch, 0, len(s.watches))
	for _, w := range s.watches {
		out = append(out, w)
	}
	return out
}

func (s *System) removeWatch(id uint64) {
	s.watchMu.Lock()
	delete(s.watches, id)
	s.watchMu.Unlock()
	// Nudge the evaluator so it can observe an empty registry and exit.
	select {
	case s.watchNotify <- struct{}{}:
	default:
	}
}

// watchLoop is the evaluator goroutine: it wakes on commit
// announcements (coalesced — a burst of commits is one wake-up) and
// advances every registered watch. It exits when the registry empties;
// the next Watch starts a fresh one.
func (s *System) watchLoop() {
	for {
		<-s.watchNotify
		for _, w := range s.watchList() {
			w.pump()
		}
		s.watchMu.Lock()
		if len(s.watches) == 0 {
			s.watchRunning = false
			s.watchMu.Unlock()
			return
		}
		s.watchMu.Unlock()
	}
}

// SyncWatches synchronously evaluates every registered watch against
// the current store state and returns when every delta committed so
// far has been delivered (or its watch evicted). Callers that need
// deterministic delivery — tests asserting batch contents, or a
// shutdown path draining final matches — use it as a barrier; normal
// operation relies on the asynchronous evaluator instead.
func (s *System) SyncWatches() {
	for _, w := range s.watchList() {
		w.pump()
	}
}

// WatchCount reports how many standing hunts are registered.
func (s *System) WatchCount() int {
	s.watchMu.Lock()
	defer s.watchMu.Unlock()
	return len(s.watches)
}

// WatchTotals reports the standing-hunt subsystem's lifetime counters:
// watches opened, batches and match rows delivered, and slow-subscriber
// evictions.
func (s *System) WatchTotals() (opened, batches, rows, evicted int64) {
	return s.watchOpened.Load(), s.watchBatches.Load(), s.watchRows.Load(), s.watchEvicted.Load()
}

// notifyWatches subscribes the evaluator's wake-up to the epoch clock;
// called once from New.
func (s *System) notifyWatches() {
	s.clock.Subscribe(func(snapshot.Epoch) {
		select {
		case s.watchNotify <- struct{}{}:
		default:
		}
	})
}
