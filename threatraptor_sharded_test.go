package threatraptor

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/audit"
)

// hostBatch builds one ingest batch for a host: `events` reads of
// per-host files by a per-host worker process, then one write marking
// the batch (so multi-pattern hunts have a temporal join to do).
func hostBatch(host string, batch, events int) []Record {
	recs := make([]Record, 0, events+1)
	base := int64(batch * 1_000_000)
	for i := 0; i < events; i++ {
		recs = append(recs, Record{
			StartNS: base + int64(i)*10, EndNS: base + int64(i)*10 + 1,
			Host: host, PID: 100, Exe: "/bin/worker",
			Op: audit.OpRead, ObjType: audit.EntityFile,
			ObjSpec: fmt.Sprintf("/data/%s-%d", host, i%8), Amount: 64,
		})
	}
	recs = append(recs, Record{
		StartNS: base + int64(events)*10, EndNS: base + int64(events)*10 + 1,
		Host: host, PID: 100, Exe: "/bin/worker",
		Op: audit.OpWrite, ObjType: audit.EntityFile,
		ObjSpec: fmt.Sprintf("/out/%s", host), Amount: 64,
	})
	return recs
}

// TestShardedConcurrentIngestAndHunts is the sharded System's race
// suite: per-host ingest batches run concurrently (landing on distinct
// shards), interleaved with cross-shard hunts, host-pruned hunts, path
// hunts, and stats polls. Run under -race in CI. Afterwards every
// event must be accounted for, exactly once, in exactly one shard.
func TestShardedConcurrentIngestAndHunts(t *testing.T) {
	const (
		shards   = 4
		hosts    = 6
		batches  = 5
		perBatch = 100
	)
	sys, err := New(Options{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.NumShards(); got != shards {
		t.Fatalf("NumShards = %d, want %d", got, shards)
	}

	var wg sync.WaitGroup
	errs := make(chan error, hosts*batches+3*batches)

	// One ingester per host; different hosts' batches land on disjoint
	// shard write locks and load in parallel.
	for h := 0; h < hosts; h++ {
		host := fmt.Sprintf("host%d", h)
		wg.Add(1)
		go func(host string) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				if _, err := sys.IngestRecords(hostBatch(host, b, perBatch)); err != nil {
					errs <- fmt.Errorf("ingest %s batch %d: %w", host, b, err)
					return
				}
			}
		}(host)
	}

	// Hunters: cross-shard, host-pruned, and path hunts interleaved with
	// the ingest storm. Row counts vary with ingest progress; what must
	// hold is that every hunt executes cleanly.
	hunts := []string{
		"proc p read file f as e1\nreturn distinct p, f",
		`proc p[host = "host1"] read file f as e1` + "\nreturn distinct f",
		"proc p ~>(1~2)[read] file f as e1\nreturn distinct p, f",
		`proc p read file f as e1` + "\n" + `proc p write file g as e2` + "\nwith e1 before e2\nreturn distinct f, g",
	}
	for _, src := range hunts {
		wg.Add(1)
		go func(src string) {
			defer wg.Done()
			for i := 0; i < batches; i++ {
				if _, err := sys.Hunt(src); err != nil {
					errs <- fmt.Errorf("hunt %q: %w", src, err)
					return
				}
				sys.Stats() // stats poll between hunts
			}
		}(src)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Accounting: every event stored exactly once, in its host's shard.
	wantTotal := hosts * batches * (perBatch + 1)
	if got := sys.NumEvents(); got != wantTotal {
		t.Errorf("NumEvents = %d, want %d", got, wantTotal)
	}
	st := sys.Stats()
	if len(st.Shards) != shards {
		t.Fatalf("stats report %d shards, want %d", len(st.Shards), shards)
	}
	perShard := make([]int, shards)
	for h := 0; h < hosts; h++ {
		perShard[audit.ShardIndex(fmt.Sprintf("host%d", h), shards)] += batches * (perBatch + 1)
	}
	for i, ss := range st.Shards {
		if ss.Events != perShard[i] {
			t.Errorf("shard %d events = %d, want %d", i, ss.Events, perShard[i])
		}
		if ss.GraphEdges != perShard[i] {
			t.Errorf("shard %d graph edges = %d, want %d", i, ss.GraphEdges, perShard[i])
		}
		if perShard[i] > 0 && ss.Ingests == 0 {
			t.Errorf("shard %d stored %d events but counts no ingests", i, perShard[i])
		}
	}

	// A host-pruned hunt sees exactly that host's files.
	res, err := sys.Hunt(`proc p[host = "host2"] read file f as e1` + "\nreturn distinct f")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8 {
		t.Errorf("host2 read 8 distinct files, hunt found %d: %v", len(res.Rows), res.Rows)
	}
	if res.Stats.ShardFetches != 1 {
		t.Errorf("host-pruned hunt ran %d shard fetches, want 1", res.Stats.ShardFetches)
	}
}

// TestShardedHuntEquivalenceFacade: the same multi-host data ingested
// into a 1-shard and an 8-shard System must answer hunts identically.
func TestShardedHuntEquivalenceFacade(t *testing.T) {
	one, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	many, err := New(Options{Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	for h := 0; h < 5; h++ {
		batch := hostBatch(fmt.Sprintf("host%d", h), 0, 40)
		for _, sys := range []*System{one, many} {
			if _, err := sys.IngestRecords(batch); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, src := range []string{
		"proc p read file f as e1\nreturn distinct p, f",
		`proc p[host = "host3"] read file f as e1` + "\nreturn distinct f",
		"proc p read file f as e1\nproc p write file g as e2\nwith e1 before e2\nreturn distinct f, g",
		"proc p ~>(1~2)[read] file f as e1\nreturn distinct p, f",
	} {
		a, err := one.Hunt(src)
		if err != nil {
			t.Fatalf("1-shard %q: %v", src, err)
		}
		b, err := many.Hunt(src)
		if err != nil {
			t.Fatalf("8-shard %q: %v", src, err)
		}
		if len(a.Rows) != len(b.Rows) {
			t.Errorf("%q: 1-shard %d rows, 8-shard %d", src, len(a.Rows), len(b.Rows))
		}
	}
}
