package threatraptor

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/audit/gen"
	"repro/internal/extract"
)

func leakageSystem(t testing.TB, opts Options, benign int) (*System, *gen.Workload) {
	t.Helper()
	sys, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	w := gen.Generate(gen.Config{
		Seed:         11,
		BenignEvents: benign,
		Attacks:      []gen.Attack{{Kind: gen.AttackDataLeakage, At: 20 * time.Minute}},
	})
	if _, err := sys.IngestRecords(w.Records); err != nil {
		t.Fatal(err)
	}
	return sys, w
}

func TestEndToEndFig2(t *testing.T) {
	sys, _ := leakageSystem(t, Options{}, 2000)
	q, res, err := sys.HuntReport(extract.Fig2Text, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Patterns) < 8 {
		t.Errorf("synthesized %d patterns", len(q.Patterns))
	}
	if len(res.Rows) != 1 {
		t.Fatalf("want 1 match, got %d\n%s", len(res.Rows), q.String())
	}
	row := strings.Join(res.Rows[0], " ")
	for _, want := range []string{"/bin/tar", "/etc/passwd", "/usr/bin/curl", "192.168.29.128"} {
		if !strings.Contains(row, want) {
			t.Errorf("result row missing %q: %s", want, row)
		}
	}
}

func TestEndToEndPasswordCrack(t *testing.T) {
	sys, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	w := gen.Generate(gen.Config{
		Seed:         3,
		BenignEvents: 1500,
		Attacks:      []gen.Attack{{Kind: gen.AttackPasswordCrack, At: 10 * time.Minute}},
	})
	if _, err := sys.IngestRecords(w.Records); err != nil {
		t.Fatal(err)
	}
	q, res, err := sys.HuntReport(extract.PasswordCrackText, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 1 {
		t.Fatalf("password-crack hunt found nothing\nquery:\n%s", q.String())
	}
	row := strings.Join(res.Rows[0], " ")
	for _, want := range []string{"/tmp/cracker", "/etc/shadow"} {
		if !strings.Contains(row, want) {
			t.Errorf("result row missing %q: %s", want, row)
		}
	}
}

func TestIngestLogsStream(t *testing.T) {
	sys, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	w := gen.Generate(gen.Config{Seed: 2, BenignEvents: 300})
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	stats, err := sys.IngestLogs(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if stats.EventsIn != len(w.Records) || stats.EventsStored != stats.EventsIn {
		t.Errorf("stats = %+v", stats)
	}
	if sys.NumEvents() != stats.EventsStored || sys.NumEntities() == 0 {
		t.Errorf("counters wrong: %d events, %d entities", sys.NumEvents(), sys.NumEntities())
	}
}

func TestIngestWithCPR(t *testing.T) {
	sys, err := New(Options{CPR: true})
	if err != nil {
		t.Fatal(err)
	}
	// A burst of identical writes reduces to one event.
	var recs []Record
	for i := int64(0); i < 50; i++ {
		recs = append(recs, Record{
			StartNS: i * 10, EndNS: i*10 + 5, Host: "h", PID: 1, Exe: "/bin/dd",
			Op: 2 /* OpWrite */, ObjType: 1 /* file */, ObjSpec: "/tmp/big", Amount: 512,
		})
	}
	stats, err := sys.IngestRecords(recs)
	if err != nil {
		t.Fatal(err)
	}
	if stats.EventsStored >= stats.EventsIn {
		t.Errorf("CPR did not reduce: %+v", stats)
	}
	if stats.CPRReduction < 10 {
		t.Errorf("reduction factor = %f", stats.CPRReduction)
	}
}

func TestIncrementalIngest(t *testing.T) {
	sys, _ := leakageSystem(t, Options{}, 100)
	before := sys.NumEvents()
	w2 := gen.Generate(gen.Config{Seed: 99, BenignEvents: 100})
	if _, err := sys.IngestRecords(w2.Records); err != nil {
		t.Fatal(err)
	}
	if sys.NumEvents() <= before {
		t.Error("second batch not stored")
	}
	// Hunt still works after incremental load.
	res, err := sys.Hunt(`proc p["%/bin/tar%"] read file f["%/etc/passwd%"] as e1` + "\nreturn p, f")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Error("hunt found nothing after incremental ingest")
	}
}

func TestLenientParsing(t *testing.T) {
	sys, err := New(Options{LenientParsing: true})
	if err != nil {
		t.Fatal(err)
	}
	logs := "garbage\n" +
		"100\t200\th\t1\t/bin/a\tread\tfile\t/x\t1\n"
	stats, err := sys.IngestLogs(strings.NewReader(logs))
	if err != nil {
		t.Fatal(err)
	}
	if stats.EventsStored != 1 || stats.ParseErrors != 1 {
		t.Errorf("stats = %+v", stats)
	}
	strict, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := strict.IngestLogs(strings.NewReader(logs)); err == nil {
		t.Error("strict mode should fail on garbage")
	}
}

func TestStrictIngestAtomic(t *testing.T) {
	sys, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	good := "100\t200\th\t1\t/bin/a\tread\tfile\t/x\t1\n"
	// A malformed line mid-batch must fail the whole batch without
	// interning the valid prefix, so a fixed retry does not duplicate it.
	if _, err := sys.IngestLogs(strings.NewReader(good + "garbage\n" + good)); err == nil {
		t.Fatal("strict mode should fail on garbage")
	}
	if sys.NumEvents() != 0 || sys.NumEntities() != 0 {
		t.Fatalf("failed batch left %d events / %d entities behind",
			sys.NumEvents(), sys.NumEntities())
	}
	stats, err := sys.IngestLogs(strings.NewReader(good + good))
	if err != nil {
		t.Fatal(err)
	}
	if stats.EventsStored != 2 || sys.NumEvents() != 2 {
		t.Errorf("retry stored %d events (stats %+v)", sys.NumEvents(), stats)
	}
}

func TestLenientParseErrorsPerBatch(t *testing.T) {
	sys, err := New(Options{LenientParsing: true})
	if err != nil {
		t.Fatal(err)
	}
	good := "100\t200\th\t1\t/bin/a\tread\tfile\t/x\t1\n"
	stats, err := sys.IngestLogs(strings.NewReader("garbage\n" + good))
	if err != nil || stats.ParseErrors != 1 {
		t.Fatalf("first batch: stats %+v, err %v", stats, err)
	}
	// A clean follow-up batch must report zero errors, not the lifetime
	// total.
	stats, err = sys.IngestLogs(strings.NewReader(good))
	if err != nil || stats.ParseErrors != 0 {
		t.Errorf("clean batch: stats %+v, err %v", stats, err)
	}
}

func TestExtractSynthesizeAPI(t *testing.T) {
	sys, _ := leakageSystem(t, Options{}, 0)
	g := sys.ExtractBehavior(extract.Fig2Text)
	if len(g.Edges) < 8 {
		t.Fatalf("extracted %d edges", len(g.Edges))
	}
	q, rep, err := sys.SynthesizeQuery(g, &SynthPlan{UsePaths: true, PathMin: 1, PathMax: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil || len(q.Patterns) < 8 {
		t.Errorf("synth: %d patterns", len(q.Patterns))
	}
	res, err := sys.HuntQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	// Path patterns subsume direct events (1 hop), so the attack matches.
	if len(res.Rows) != 1 {
		t.Errorf("path-plan hunt rows = %d", len(res.Rows))
	}
}

func TestHuntReportNoBehavior(t *testing.T) {
	sys, _ := leakageSystem(t, Options{}, 0)
	if _, _, err := sys.HuntReport("Nothing interesting happened.", nil); err == nil {
		t.Error("report without behaviors should fail synthesis")
	}
}

func TestParseQueryAPI(t *testing.T) {
	sys, _ := leakageSystem(t, Options{}, 0)
	q, err := sys.ParseQuery("proc p read file f as e1\nreturn p")
	if err != nil || q.Info() == nil {
		t.Errorf("ParseQuery: %v", err)
	}
	if _, err := sys.ParseQuery("bogus"); err == nil {
		t.Error("bad query should fail")
	}
}
