package threatraptor

import (
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/audit/gen"
)

func TestMultiHostHunt(t *testing.T) {
	sys, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Two hosts: the attack on hostB only.
	wa := gen.Generate(gen.Config{Seed: 1, Host: "hostA", BenignEvents: 500})
	wb := gen.Generate(gen.Config{Seed: 2, Host: "hostB", BenignEvents: 500,
		Attacks: []gen.Attack{{Kind: gen.AttackDataLeakage, At: time.Minute}}})
	if _, err := sys.IngestRecords(wa.Records); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.IngestRecords(wb.Records); err != nil {
		t.Fatal(err)
	}

	// Host-scoped hunt: hostA must be clean, hostB must hit.
	q := `proc p[exename like "%/bin/tar%" && host = "hostA"] read file f["%/etc/passwd%"] as e1
return p`
	res, err := sys.Hunt(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Errorf("hostA should be clean: %v", res.Rows)
	}
	q = `proc p[exename like "%/bin/tar%" && host = "hostB"] read file f["%/etc/passwd%"] as e1
return p`
	res, err = sys.Hunt(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Errorf("hostB hunt rows = %v", res.Rows)
	}
}

func TestFindEntitiesAndInvestigate(t *testing.T) {
	sys, _ := leakageSystem(t, Options{}, 500)
	passwd := sys.FindEntities("path", "/etc/passwd")
	if len(passwd) != 1 {
		t.Fatalf("FindEntities(path, /etc/passwd) = %d entities", len(passwd))
	}
	if sys.EntityByID(passwd[0].ID) != passwd[0] {
		t.Error("EntityByID disagrees with FindEntities")
	}
	sg := sys.Investigate(passwd[0].ID, TrackOptions{Direction: TrackForward, MaxDepth: 12})
	var hitC2 bool
	for id := range sg.EntityIDs {
		if e := sys.EntityByID(id); e != nil && e.Type == EntityNetConnType && e.DstIP == gen.C2IP {
			hitC2 = true
		}
	}
	if !hitC2 {
		t.Error("forward investigation from /etc/passwd should reach the C2 connection")
	}
	if len(sys.FindEntities("nosuch", "x")) != 0 {
		t.Error("unknown attribute should match nothing")
	}
}

func TestExplainFacade(t *testing.T) {
	sys, _ := leakageSystem(t, Options{}, 0)
	q, err := sys.ParseQuery(`proc p["%/bin/tar%"] read file f["%/etc/passwd%"] as e1
proc p write file g as e2
return p, f, g`)
	if err != nil {
		t.Fatal(err)
	}
	eps, err := sys.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(eps) != 2 {
		t.Fatalf("explained %d patterns", len(eps))
	}
	// e1 (two filters) outscores e2 (none) and is scheduled first.
	if eps[0].Name != "e1" || eps[0].Score <= eps[1].Score {
		t.Errorf("schedule order wrong: %+v", eps)
	}
}

func TestHuntAcrossIncrementalBatchesTemporal(t *testing.T) {
	// Events arriving in two batches must still satisfy cross-batch
	// temporal relations.
	sys, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	batch1 := []Record{{
		StartNS: 100, EndNS: 110, Host: "h", PID: 1, Exe: "/bin/tar",
		Op: audit.OpRead, ObjType: audit.EntityFile, ObjSpec: "/etc/passwd", Amount: 10,
	}}
	batch2 := []Record{{
		StartNS: 200, EndNS: 210, Host: "h", PID: 1, Exe: "/bin/tar",
		Op: audit.OpWrite, ObjType: audit.EntityFile, ObjSpec: "/tmp/out", Amount: 10,
	}}
	if _, err := sys.IngestRecords(batch1); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.IngestRecords(batch2); err != nil {
		t.Fatal(err)
	}
	res, err := sys.Hunt(`proc p["%/bin/tar%"] read file f as e1
proc p write file g as e2
with e1 before e2
return p, f, g`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Errorf("cross-batch hunt rows = %v", res.Rows)
	}
}
