package ioc

import (
	"strings"

	"repro/internal/nlp"
)

// MergeThreshold is the combined-similarity threshold above which two
// IOCs of the same type are considered the same artifact.
const MergeThreshold = 0.75

// Merged is a canonical IOC with the set of surface forms that were
// merged into it.
type Merged struct {
	IOC
	Aliases []string
}

// ScanMerge deduplicates IOCs across all blocks: IOCs of the same type
// are merged when (a) they are equal after normalization, (b) one is a
// path-boundary suffix of the other ("upload.tar" vs "/tmp/upload.tar"),
// or (c) their combined character-overlap and word-vector similarity
// exceeds MergeThreshold. The canonical form is the longest (most
// specific) surface form; merged entries keep the earliest offset.
func ScanMerge(iocs []IOC) []Merged {
	var out []Merged
	for _, ioc := range iocs {
		norm := Normalize(ioc.Type, ioc.Text)
		if norm == "" {
			continue
		}
		found := -1
		for i := range out {
			if mergeable(out[i], ioc.Type, norm) {
				found = i
				break
			}
		}
		if found < 0 {
			out = append(out, Merged{IOC: IOC{Type: ioc.Type, Text: norm, Offset: ioc.Offset}})
			continue
		}
		m := &out[found]
		// Keep the longer (more specific) form as canonical.
		if len(norm) > len(m.Text) {
			if !contains(m.Aliases, m.Text) {
				m.Aliases = append(m.Aliases, m.Text)
			}
			m.Text = norm
		} else if norm != m.Text && !contains(m.Aliases, norm) {
			m.Aliases = append(m.Aliases, norm)
		}
		if ioc.Offset < m.Offset {
			m.Offset = ioc.Offset
		}
	}
	return out
}

func contains(list []string, s string) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}

// mergeable decides whether a normalized IOC belongs to an existing
// merged group.
func mergeable(m Merged, t Type, norm string) bool {
	if !typesCompatible(m.Type, t) {
		return false
	}
	if m.Text == norm || contains(m.Aliases, norm) {
		return true
	}
	if pathSuffix(m.Text, norm) || pathSuffix(norm, m.Text) {
		return true
	}
	// File artifacts with different basenames are different files no
	// matter how similar the strings are: /tmp/upload.tar and
	// /tmp/upload.tar.bz2 must stay distinct.
	if (t == Filepath || t == Filename) && basename(m.Text) != basename(norm) {
		return false
	}
	// Combined similarity: character n-gram vector cosine plus longest-
	// common-substring ratio, averaged.
	sim := 0.5*nlp.Similarity(m.Text, norm) + 0.5*lcsRatio(m.Text, norm)
	return sim >= MergeThreshold
}

// basename returns the final path segment.
func basename(p string) string {
	if i := strings.LastIndexAny(p, `/\`); i >= 0 {
		return p[i+1:]
	}
	return p
}

// typesCompatible treats filepath and filename as the same artifact
// space; all other types must match exactly.
func typesCompatible(a, b Type) bool {
	if a == b {
		return true
	}
	filey := func(t Type) bool { return t == Filepath || t == Filename }
	if filey(a) && filey(b) {
		return true
	}
	ipy := func(t Type) bool { return t == IP || t == CIDR }
	return ipy(a) && ipy(b)
}

// pathSuffix reports whether short is a suffix of long at a path-segment
// boundary ("upload.tar" suffixes "/tmp/upload.tar").
func pathSuffix(long, short string) bool {
	if len(short) >= len(long) || !strings.HasSuffix(long, short) {
		return false
	}
	boundary := long[len(long)-len(short)-1]
	return boundary == '/' || boundary == '\\'
}

// lcsRatio is the length of the longest common substring of a and b
// divided by the length of the shorter string.
func lcsRatio(a, b string) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	la, lb := len(a), len(b)
	prev := make([]int, lb+1)
	cur := make([]int, lb+1)
	best := 0
	for i := 1; i <= la; i++ {
		for j := 1; j <= lb; j++ {
			if a[i-1] == b[j-1] {
				cur[j] = prev[j-1] + 1
				if cur[j] > best {
					best = cur[j]
				}
			} else {
				cur[j] = 0
			}
		}
		prev, cur = cur, prev
	}
	minLen := la
	if lb < minLen {
		minLen = lb
	}
	return float64(best) / float64(minLen)
}
