package ioc

import (
	"testing"
	"testing/quick"
)

func TestScanMergeExactDuplicates(t *testing.T) {
	in := []IOC{
		{Type: Filepath, Text: "/tmp/upload.tar", Offset: 10},
		{Type: Filepath, Text: "/tmp/upload.tar", Offset: 50},
	}
	out := ScanMerge(in)
	if len(out) != 1 {
		t.Fatalf("want 1 merged, got %d", len(out))
	}
	if out[0].Offset != 10 {
		t.Errorf("earliest offset not kept: %d", out[0].Offset)
	}
}

func TestScanMergePathSuffix(t *testing.T) {
	in := []IOC{
		{Type: Filename, Text: "upload.tar", Offset: 5},
		{Type: Filepath, Text: "/tmp/upload.tar", Offset: 30},
	}
	out := ScanMerge(in)
	if len(out) != 1 {
		t.Fatalf("want 1 merged, got %d: %v", len(out), out)
	}
	if out[0].Text != "/tmp/upload.tar" {
		t.Errorf("canonical should be the longer form, got %q", out[0].Text)
	}
	if len(out[0].Aliases) != 1 || out[0].Aliases[0] != "upload.tar" {
		t.Errorf("aliases = %v", out[0].Aliases)
	}
}

func TestScanMergeKeepsDistinct(t *testing.T) {
	in := []IOC{
		{Type: Filepath, Text: "/tmp/upload.tar"},
		{Type: Filepath, Text: "/etc/passwd"},
		{Type: IP, Text: "192.168.29.128"},
	}
	out := ScanMerge(in)
	if len(out) != 3 {
		t.Errorf("distinct IOCs merged: %v", out)
	}
}

func TestScanMergeTypeCompatibility(t *testing.T) {
	// An IP and CIDR of the same address merge; IP and filepath never do.
	in := []IOC{
		{Type: CIDR, Text: "192.168.29.128/32"},
		{Type: IP, Text: "192.168.29.128"},
	}
	out := ScanMerge(in)
	if len(out) != 1 {
		t.Errorf("IP/CIDR should merge: %v", out)
	}
	in = []IOC{
		{Type: IP, Text: "1.2.3.4"},
		{Type: Filepath, Text: "1.2.3.4"}, // pathological same-text
	}
	out = ScanMerge(in)
	if len(out) != 2 {
		t.Errorf("incompatible types merged: %v", out)
	}
}

func TestScanMergeSimilarVariants(t *testing.T) {
	// Dotted variants of the same filename merge via similarity.
	in := []IOC{
		{Type: Filepath, Text: "/tmp/upload.tar.bz2"},
		{Type: Filepath, Text: "/tmp/upload.tar"},
	}
	out := ScanMerge(in)
	// These are DIFFERENT files in the attack chain and must NOT merge:
	// the tar and its bz2 compression are distinct artifacts.
	if len(out) != 2 {
		t.Errorf("/tmp/upload.tar and .bz2 wrongly merged: %v", out)
	}
}

func TestScanMergeEmpty(t *testing.T) {
	if out := ScanMerge(nil); len(out) != 0 {
		t.Errorf("empty input: %v", out)
	}
}

func TestLCSRatio(t *testing.T) {
	if r := lcsRatio("abc", "abc"); r != 1 {
		t.Errorf("identical = %f", r)
	}
	if r := lcsRatio("abc", "xyz"); r != 0 {
		t.Errorf("disjoint = %f", r)
	}
	if r := lcsRatio("", "abc"); r != 0 {
		t.Errorf("empty = %f", r)
	}
}

// Property: merging is deterministic and output count never exceeds input.
func TestScanMergeProperty(t *testing.T) {
	f := func(texts []string) bool {
		var in []IOC
		for i, s := range texts {
			if s == "" {
				continue
			}
			in = append(in, IOC{Type: Filepath, Text: "/d/" + sanitize(s), Offset: i})
		}
		a := ScanMerge(in)
		b := ScanMerge(in)
		if len(a) != len(b) || len(a) > len(in) {
			return false
		}
		for i := range a {
			if a[i].Text != b[i].Text {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		if (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9') {
			out = append(out, r)
		}
	}
	if len(out) == 0 {
		return "x"
	}
	return string(out)
}
