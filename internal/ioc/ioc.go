// Package ioc recognizes Indicators of Compromise (IOCs) in natural-
// language text, protects them from general-purpose NLP processing, and
// normalizes and merges similar IOCs. It implements the "IOC Recognition
// and IOC Protection" and "IOC Scan and Merge" stages of ThreatRaptor's
// threat behavior extraction pipeline.
package ioc

import (
	"fmt"
	"regexp"
	"sort"
	"strings"
)

// Type classifies an IOC.
type Type uint8

// IOC types recognized by the pipeline. The first three are the ones the
// system auditing component captures (files, processes via executable
// paths, and network connections via IPs); the rest are extracted but
// screened out during query synthesis.
const (
	Unknown Type = iota
	Filepath
	Filename
	IP
	CIDR
	URL
	Domain
	Email
	MD5
	SHA1
	SHA256
	Registry
	CVE
)

var typeNames = map[Type]string{
	Unknown:  "unknown",
	Filepath: "filepath",
	Filename: "filename",
	IP:       "ip",
	CIDR:     "cidr",
	URL:      "url",
	Domain:   "domain",
	Email:    "email",
	MD5:      "md5",
	SHA1:     "sha1",
	SHA256:   "sha256",
	Registry: "registry",
	CVE:      "cve",
}

// String names the type.
func (t Type) String() string {
	if s, ok := typeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("ioctype(%d)", uint8(t))
}

// IOC is one recognized indicator.
type IOC struct {
	Type Type
	Text string // as written in the report
	// Offset is the byte offset of the first occurrence in the block the
	// IOC was extracted from.
	Offset int
}

// pattern pairs a compiled regex with the IOC type it recognizes. Order
// matters: earlier patterns win on overlapping matches (e.g. URL before
// Domain, CIDR before IP).
type pattern struct {
	typ Type
	re  *regexp.Regexp
}

var patterns = []pattern{
	{CVE, regexp.MustCompile(`\bCVE-\d{4}-\d{4,7}\b`)},
	{URL, regexp.MustCompile(`\bhttps?://[A-Za-z0-9\-._~:/?#\[\]@!$&'()*+,;=%]+`)},
	{Email, regexp.MustCompile(`\b[A-Za-z0-9._%+\-]+@[A-Za-z0-9.\-]+\.[A-Za-z]{2,}\b`)},
	{SHA256, regexp.MustCompile(`\b[A-Fa-f0-9]{64}\b`)},
	{SHA1, regexp.MustCompile(`\b[A-Fa-f0-9]{40}\b`)},
	{MD5, regexp.MustCompile(`\b[A-Fa-f0-9]{32}\b`)},
	{CIDR, regexp.MustCompile(`\b(?:\d{1,3}\.){3}\d{1,3}/\d{1,2}\b`)},
	{IP, regexp.MustCompile(`\b(?:\d{1,3}\.){3}\d{1,3}\b`)},
	{Registry, regexp.MustCompile(`\bHKEY_[A-Z_]+(?:\\[^\s\\,;]+)+`)},
	// Unix absolute paths: at least one slash-separated segment. Includes
	// executables like /bin/tar and files like /tmp/upload.tar.bz2. The
	// final character must not be a dot so sentence periods stay outside.
	{Filepath, regexp.MustCompile(`(?:^|[\s"'(])(/(?:[A-Za-z0-9._\-]+/)*[A-Za-z0-9._\-]*[A-Za-z0-9_\-])`)},
	// Windows absolute paths.
	{Filepath, regexp.MustCompile(`\b[A-Za-z]:\\(?:[^\s\\,;"']+\\)*[^\s\\,;"']+`)},
	// Bare filenames with a known suspicious extension.
	{Filename, regexp.MustCompile(`\b[A-Za-z0-9_\-]+\.(?:exe|dll|bat|ps1|sh|py|jar|doc|docx|xls|xlsx|pdf|zip|rar|7z|tar|gz|bz2|tgz|jpg|jpeg|png|txt|php|asp|aspx|js|vbs|scr|tmp|dat|bin|cfg|conf|log)\b`)},
	// Domains with common TLDs (after URL/email/IP have been taken).
	{Domain, regexp.MustCompile(`\b(?:[A-Za-z0-9\-]+\.)+(?:com|net|org|io|ru|cn|info|biz|gov|edu|mil|co|uk|de|fr|onion|xyz|top|site)\b`)},
}

// Find returns all IOCs in text, leftmost-longest, without overlaps.
// Earlier pattern types take precedence on overlap.
func Find(text string) []IOC {
	type span struct {
		start, end int
		ioc        IOC
	}
	var spans []span
	taken := make([]bool, len(text))
	overlap := func(a, b int) bool {
		for i := a; i < b; i++ {
			if taken[i] {
				return true
			}
		}
		return false
	}
	for _, p := range patterns {
		for _, loc := range p.re.FindAllStringSubmatchIndex(text, -1) {
			start, end := loc[0], loc[1]
			// Patterns with a capture group (Unix paths) match only the
			// group.
			if len(loc) >= 4 && loc[2] >= 0 {
				start, end = loc[2], loc[3]
			}
			if overlap(start, end) {
				continue
			}
			for i := start; i < end; i++ {
				taken[i] = true
			}
			spans = append(spans, span{start, end, IOC{Type: p.typ, Text: text[start:end], Offset: start}})
		}
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].start < spans[j].start })
	out := make([]IOC, len(spans))
	for i, s := range spans {
		out[i] = s.ioc
	}
	return out
}

// IsExecutablePath reports whether a filepath IOC plausibly names a
// program (used by query synthesis to decide process vs. file entities).
func IsExecutablePath(path string) bool {
	dirs := []string{"/bin/", "/sbin/", "/usr/bin/", "/usr/sbin/", "/usr/local/bin/", "/opt/"}
	for _, d := range dirs {
		if strings.HasPrefix(path, d) {
			return true
		}
	}
	return false
}

// Normalize canonicalises an IOC string for comparison: lowercase for
// case-insensitive types, surrounding quotes and trailing punctuation
// stripped, CIDR suffix removed from single-address networks.
func Normalize(t Type, s string) string {
	s = strings.Trim(s, `"'`)
	s = strings.TrimRight(s, ".,;:")
	switch t {
	case Domain, Email, URL:
		s = strings.ToLower(s)
	case CIDR:
		if strings.HasSuffix(s, "/32") {
			s = strings.TrimSuffix(s, "/32")
		}
	case MD5, SHA1, SHA256:
		s = strings.ToLower(s)
	}
	return s
}
