package ioc

import (
	"strings"
	"testing"
)

func findTexts(text string) map[string]Type {
	out := map[string]Type{}
	for _, i := range Find(text) {
		out[i.Text] = i.Type
	}
	return out
}

func TestFindFig2IOCs(t *testing.T) {
	// The Fig. 2 report text must yield exactly the paper's IOC list.
	text := "As a first step, the attacker used /bin/tar to read user credentials " +
		"from /etc/passwd. It wrote the gathered information to a file /tmp/upload.tar. " +
		"/bin/bzip2 read from /tmp/upload.tar and wrote to /tmp/upload.tar.bz2. " +
		"/usr/bin/gpg then wrote the sensitive information to /tmp/upload. " +
		"He leaked it by using /usr/bin/curl to connect to 192.168.29.128."
	got := findTexts(text)
	want := []string{
		"/bin/tar", "/etc/passwd", "/tmp/upload.tar", "/bin/bzip2",
		"/tmp/upload.tar.bz2", "/usr/bin/gpg", "/tmp/upload",
		"/usr/bin/curl", "192.168.29.128",
	}
	for _, w := range want {
		if _, ok := got[w]; !ok {
			t.Errorf("missing IOC %q (got %v)", w, got)
		}
	}
	if got["192.168.29.128"] != IP {
		t.Errorf("192.168.29.128 type = %v", got["192.168.29.128"])
	}
	if got["/bin/tar"] != Filepath {
		t.Errorf("/bin/tar type = %v", got["/bin/tar"])
	}
}

func TestFindTypes(t *testing.T) {
	cases := []struct {
		text string
		want Type
		ioc  string
	}{
		{"see https://evil.example.com/payload for details", URL, "https://evil.example.com/payload"},
		{"contact admin@evil.com now", Email, "admin@evil.com"},
		{"hash d41d8cd98f00b204e9800998ecf8427e found", MD5, "d41d8cd98f00b204e9800998ecf8427e"},
		{"hash da39a3ee5e6b4b0d3255bfef95601890afd80709 found", SHA1, "da39a3ee5e6b4b0d3255bfef95601890afd80709"},
		{"subnet 10.0.0.0/24 scanned", CIDR, "10.0.0.0/24"},
		{"address 192.168.29.128/32 contacted", CIDR, "192.168.29.128/32"},
		{"key HKEY_LOCAL_MACHINE\\Software\\Run persisted", Registry, "HKEY_LOCAL_MACHINE\\Software\\Run"},
		{"exploiting CVE-2014-6271 on the host", CVE, "CVE-2014-6271"},
		{"dropped payload.exe on disk", Filename, "payload.exe"},
		{"beacons to evil-c2.com daily", Domain, "evil-c2.com"},
		{"path C:\\Users\\victim\\run.bat executed", Filepath, "C:\\Users\\victim\\run.bat"},
	}
	for _, c := range cases {
		got := findTexts(c.text)
		typ, ok := got[c.ioc]
		if !ok {
			t.Errorf("%q: missing %q (got %v)", c.text, c.ioc, got)
			continue
		}
		if typ != c.want {
			t.Errorf("%q: type = %v, want %v", c.ioc, typ, c.want)
		}
	}
}

func TestFindNoOverlap(t *testing.T) {
	// URL wins over domain and IP inside it.
	got := Find("visit http://1.2.3.4/x.php now")
	if len(got) != 1 || got[0].Type != URL {
		t.Errorf("got %v", got)
	}
	// SHA256 not double-counted as SHA1/MD5.
	h := strings.Repeat("ab", 32)
	got = Find("hash " + h + " seen")
	if len(got) != 1 || got[0].Type != SHA256 {
		t.Errorf("got %v", got)
	}
}

func TestFindOffsetsSorted(t *testing.T) {
	got := Find("/bin/a then 1.2.3.4 then /bin/b")
	if len(got) != 3 {
		t.Fatalf("got %v", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Offset <= got[i-1].Offset {
			t.Error("offsets not strictly increasing")
		}
	}
}

func TestFindPlainTextHasNone(t *testing.T) {
	if got := Find("The attacker attempts to steal valuable assets from the host."); len(got) != 0 {
		t.Errorf("false positives: %v", got)
	}
}

func TestIsExecutablePath(t *testing.T) {
	if !IsExecutablePath("/bin/tar") || !IsExecutablePath("/usr/bin/curl") {
		t.Error("known executables not detected")
	}
	if IsExecutablePath("/etc/passwd") || IsExecutablePath("/tmp/upload.tar") {
		t.Error("data files misdetected as executables")
	}
}

func TestNormalize(t *testing.T) {
	cases := []struct {
		t    Type
		in   string
		want string
	}{
		{Domain, "Evil.COM", "evil.com"},
		{CIDR, "192.168.29.128/32", "192.168.29.128"},
		{CIDR, "10.0.0.0/24", "10.0.0.0/24"},
		{Filepath, `"/bin/tar"`, "/bin/tar"},
		{Filepath, "/tmp/upload.tar.", "/tmp/upload.tar"},
		{MD5, "D41D8CD98F00B204E9800998ECF8427E", "d41d8cd98f00b204e9800998ecf8427e"},
	}
	for _, c := range cases {
		if got := Normalize(c.t, c.in); got != c.want {
			t.Errorf("Normalize(%v, %q) = %q, want %q", c.t, c.in, got, c.want)
		}
	}
}
