package ioc

import (
	"strings"
	"testing"
)

func TestProtectMasksAllIOCs(t *testing.T) {
	block := "the attacker used /bin/tar to read from /etc/passwd and connect to 192.168.29.128."
	p := Protect(block)
	if len(p.IOCs) != 3 {
		t.Fatalf("want 3 IOCs, got %d", len(p.IOCs))
	}
	for _, i := range p.IOCs {
		if strings.Contains(p.Text, i.Text) {
			t.Errorf("IOC %q not masked in %q", i.Text, p.Text)
		}
	}
	if !strings.Contains(p.Text, "Something0") || !strings.Contains(p.Text, "Something2") {
		t.Errorf("placeholders missing: %q", p.Text)
	}
	// No dots remain except sentence punctuation.
	if strings.Count(p.Text, ".") != 1 {
		t.Errorf("IOC dots leaked into protected text: %q", p.Text)
	}
}

func TestProtectRestore(t *testing.T) {
	p := Protect("/bin/tar read /etc/passwd.")
	ioc0 := p.Restore("Something0")
	if ioc0 == nil || ioc0.Text != "/bin/tar" {
		t.Errorf("Restore(something0) = %v", ioc0)
	}
	ioc1 := p.Restore("Something1")
	if ioc1 == nil || ioc1.Text != "/etc/passwd" {
		t.Errorf("Restore(something1) = %v", ioc1)
	}
	if p.Restore("Something9") != nil {
		t.Error("out-of-range placeholder should restore to nil")
	}
	if p.Restore("Something") != nil || p.Restore("Anything0") != nil {
		t.Error("non-placeholders should restore to nil")
	}
}

func TestIsPlaceholder(t *testing.T) {
	if !IsPlaceholder("Something0") || !IsPlaceholder("Something42") {
		t.Error("placeholders not recognized")
	}
	for _, s := range []string{"Something", "something0", "Something0x", "somethingelse"} {
		if IsPlaceholder(s) {
			t.Errorf("%q should not be a placeholder", s)
		}
	}
}

func TestProtectNoIOCs(t *testing.T) {
	block := "The attacker attempts to steal valuable assets."
	p := Protect(block)
	if p.Text != block || len(p.IOCs) != 0 {
		t.Errorf("no-IOC block changed: %q", p.Text)
	}
}

func TestProtectPreservesSentenceStructure(t *testing.T) {
	block := "First, /bin/tar read /etc/passwd. Then /bin/bzip2 compressed it."
	p := Protect(block)
	// Sentence count must survive protection.
	if strings.Count(p.Text, ". ") != strings.Count(block, ". ") {
		t.Errorf("sentence structure damaged: %q", p.Text)
	}
}
