package ioc

import (
	"regexp"
	"strconv"
	"strings"
)

// PlaceholderPrefix is the dummy word used to mask IOCs before NLP
// processing. The paper replaces IOCs with the word "something"; we
// capitalize it so a sentence that begins with an IOC still segments
// (the segmenter looks for an uppercase letter after a period) and append
// an index so each occurrence restores to its own IOC unambiguously.
const PlaceholderPrefix = "Something"

var placeholderRE = regexp.MustCompile(`^` + PlaceholderPrefix + `\d+$`)

// IsPlaceholder reports whether a token masks a protected IOC.
func IsPlaceholder(tok string) bool { return placeholderRE.MatchString(tok) }

// Protection records the result of masking a block of text.
type Protection struct {
	// Text is the block with every IOC replaced by an indexed
	// placeholder word.
	Text string
	// IOCs holds the masked IOCs; placeholder i ("something<i>")
	// corresponds to IOCs[i].
	IOCs []IOC
}

// Placeholder returns the placeholder word for index i.
func Placeholder(i int) string { return PlaceholderPrefix + strconv.Itoa(i) }

// Restore returns the IOC masked by a placeholder token, or nil.
func (p *Protection) Restore(tok string) *IOC {
	if !IsPlaceholder(tok) {
		return nil
	}
	i, err := strconv.Atoi(tok[len(PlaceholderPrefix):])
	if err != nil || i < 0 || i >= len(p.IOCs) {
		return nil
	}
	return &p.IOCs[i]
}

// Protect recognizes all IOCs in a block and replaces each occurrence with
// an indexed placeholder, making the text amenable to NLP modules designed
// for general prose. The replacement preserves the security context: the
// placeholder is a noun-like single token, so tokenization, sentence
// segmentation, POS tagging, and dependency parsing all treat the IOC as
// an opaque noun.
func Protect(block string) *Protection {
	iocs := Find(block)
	var b strings.Builder
	b.Grow(len(block))
	prev := 0
	for i, ioc := range iocs {
		b.WriteString(block[prev:ioc.Offset])
		b.WriteString(Placeholder(i))
		prev = ioc.Offset + len(ioc.Text)
	}
	b.WriteString(block[prev:])
	return &Protection{Text: b.String(), IOCs: iocs}
}
