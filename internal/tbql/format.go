package tbql

import (
	"fmt"
	"strings"
)

// String renders the query back to TBQL source. Parsing the output of
// String yields an equivalent query (round-trip property, covered by
// tests).
func (q *Query) String() string {
	var b strings.Builder
	for _, pat := range q.Patterns {
		b.WriteString(formatPattern(pat))
		b.WriteByte('\n')
	}
	if len(q.Temporal) > 0 || len(q.AttrRels) > 0 {
		b.WriteString("with ")
		var items []string
		for _, tr := range q.Temporal {
			items = append(items, fmt.Sprintf("%s %s %s", tr.A, tr.Op, tr.B))
		}
		for _, ar := range q.AttrRels {
			if ar.BIsLit {
				items = append(items, fmt.Sprintf("%s.%s %s %d", ar.AEvt, ar.AAttr, ar.Op, ar.BLit))
			} else {
				items = append(items, fmt.Sprintf("%s.%s %s %s.%s", ar.AEvt, ar.AAttr, ar.Op, ar.BEvt, ar.BAttr))
			}
		}
		b.WriteString(strings.Join(items, ", "))
		b.WriteByte('\n')
	}
	b.WriteString("return ")
	if q.Distinct {
		b.WriteString("distinct ")
	}
	var items []string
	for _, r := range q.Return {
		attr := r.Attr
		// Default-attribute sugar: omit the attribute when it is the
		// entity type's default (requires analysis to know the type).
		if q.analysis != nil {
			if info, ok := q.analysis.Entities[r.ID]; ok && attr == info.Type.DefaultAttr() {
				attr = ""
			}
		}
		if attr == "" {
			items = append(items, r.ID)
		} else {
			items = append(items, r.ID+"."+attr)
		}
	}
	b.WriteString(strings.Join(items, ", "))
	return b.String()
}

// FormatPattern renders one event pattern back to TBQL source — the
// pattern's normal form. The execution engine keys its cross-hunt plan
// cache on this (with the binding name cleared): two hunts whose
// patterns re-parse to the same normal form compile to the same data
// query, whatever whitespace or ordering the analyst typed.
func FormatPattern(pat EventPattern) string { return formatPattern(pat) }

func formatPattern(pat EventPattern) string {
	var b strings.Builder
	b.WriteString(formatEntity(pat.Subj))
	b.WriteByte(' ')
	if pat.IsPath {
		b.WriteString("~>")
		if !(pat.MinHops == 1 && pat.MaxHops == 0) {
			fmt.Fprintf(&b, "(%d~%d)", pat.MinHops, pat.MaxHops)
		}
		b.WriteByte('[')
		b.WriteString(formatOps(pat))
		b.WriteByte(']')
	} else {
		b.WriteString(formatOps(pat))
	}
	b.WriteByte(' ')
	b.WriteString(formatEntity(pat.Obj))
	if pat.Name != "" {
		b.WriteString(" as ")
		b.WriteString(pat.Name)
	}
	if pat.Window != nil {
		fmt.Fprintf(&b, " from %d to %d", pat.Window.From, pat.Window.To)
	}
	return b.String()
}

func formatOps(pat EventPattern) string {
	s := strings.Join(pat.Ops, " || ")
	if pat.NegOps {
		return "!" + s
	}
	return s
}

func formatEntity(e EntityRef) string {
	var b strings.Builder
	b.WriteString(string(e.Type))
	b.WriteByte(' ')
	b.WriteString(e.ID)
	if e.Filter != nil {
		b.WriteByte('[')
		b.WriteString(FormatFilter(e.Filter, e.Type))
		b.WriteByte(']')
	}
	return b.String()
}

// FormatFilter renders a filter expression; default attributes are
// rendered in sugar form (bare string literal).
func FormatFilter(e Expr, t EntityType) string {
	switch x := e.(type) {
	case AndExpr:
		return FormatFilter(x.L, t) + " && " + FormatFilter(x.R, t)
	case OrExpr:
		return "(" + FormatFilter(x.L, t) + " || " + FormatFilter(x.R, t) + ")"
	case NotExpr:
		return "!(" + FormatFilter(x.E, t) + ")"
	case CmpExpr:
		lit := quote(x.Str)
		if x.IsNum {
			lit = fmt.Sprintf("%d", x.Num)
		}
		// Sugar: default attribute with = / like collapses to the bare
		// literal.
		if !x.IsNum && (x.Attr == "" || x.Attr == t.DefaultAttr()) && (x.Op == "=" || x.Op == "like") {
			return lit
		}
		op := x.Op
		if op == "like" {
			return fmt.Sprintf("%s like %s", x.Attr, lit)
		}
		return fmt.Sprintf("%s %s %s", x.Attr, op, lit)
	default:
		return "?"
	}
}

func quote(s string) string {
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}
