package tbql

import (
	"fmt"
	"sort"
	"strconv"

	"repro/internal/audit"
)

// validAttrs lists the filterable attributes per entity type. The empty
// attribute in a filter or return item resolves to the type's default.
var validAttrs = map[EntityType]map[string]bool{
	EntProc: {"exename": true, "name": true, "pid": true, "host": true, "id": true},
	EntFile: {"name": true, "path": true, "host": true, "id": true},
	EntIP: {"srcip": true, "srcport": true, "dstip": true, "dstport": true,
		"proto": true, "name": true, "host": true, "id": true},
}

// EntityInfo is the analyzer's record of one entity ID.
type EntityInfo struct {
	ID       string
	Type     EntityType
	Filters  []Expr // all filters attached across pattern occurrences
	FirstUse int    // pattern index of first occurrence
}

// Analysis is attached to a query after semantic analysis.
type Analysis struct {
	Entities map[string]*EntityInfo
	// Order lists entity IDs in first-use order.
	Order []string
	// EntitySlot assigns each entity ID a dense slot index in first-use
	// order (EntitySlot[Order[i]] == i), so executors can hold a partial
	// binding as a fixed-size []int64 instead of a map keyed by ID.
	EntitySlot map[string]int
	// EventSlot assigns each event pattern name its pattern index, the
	// dense slot for event bindings (one per pattern, textual order).
	EventSlot map[string]int
	// PatternHosts lists, per pattern (textual order), the host values
	// the pattern's rows can carry, derived from `host = '...'` equality
	// constants in its entities' filters (all occurrences of a variable
	// combine conjunctively, so a host filter in one pattern constrains
	// every pattern sharing the variable). nil means unconstrained; a
	// non-nil empty slice means the constraints are contradictory and
	// the pattern cannot match. Host-sharded executors use this to prune
	// the shards a pattern's data query must visit — sound because an
	// event's subject and object entities always carry the event's own
	// host (audit semantics).
	PatternHosts [][]string
}

// NumEntitySlots returns how many entity slots Analyze assigned.
func (a *Analysis) NumEntitySlots() int { return len(a.Order) }

// Info returns the analysis of an analyzed query, or nil before Analyze.
func (q *Query) Info() *Analysis { return q.analysis }

// Analyze performs semantic analysis in place: it checks operation/object
// compatibility, entity ID consistency, name uniqueness and resolution,
// validates filter attributes, fills in default attributes, and assigns
// names to anonymous patterns.
func Analyze(q *Query) error {
	a := &Analysis{
		Entities:   map[string]*EntityInfo{},
		EntitySlot: map[string]int{},
		EventSlot:  map[string]int{},
	}

	names := map[string]bool{}
	for i := range q.Patterns {
		pat := &q.Patterns[i]

		// Subject must be a process.
		if pat.Subj.Type != EntProc {
			return fmt.Errorf("tbql: pattern %d: subject must be proc, got %s", i+1, pat.Subj.Type)
		}
		// Operations must be known and agree with the object type.
		if len(pat.Ops) == 0 {
			return fmt.Errorf("tbql: pattern %d: no operation", i+1)
		}
		for _, opName := range pat.Ops {
			op, err := audit.ParseOpType(opName)
			if err != nil {
				return fmt.Errorf("tbql: pattern %d: %w", i+1, err)
			}
			want := entForAudit(op.ObjectType())
			if want != pat.Obj.Type {
				return fmt.Errorf("tbql: pattern %d: operation %q requires a %s object, got %s",
					i+1, opName, want, pat.Obj.Type)
			}
		}
		// Path patterns: bounds already checked by the parser; unbounded
		// max is capped by the engine.
		if pat.IsPath && pat.MaxHops != 0 && pat.MaxHops < pat.MinHops {
			return fmt.Errorf("tbql: pattern %d: invalid path bounds", i+1)
		}

		// Names: assign evt<i> to anonymous patterns; enforce uniqueness.
		if pat.Name == "" {
			pat.Name = "evt" + strconv.Itoa(i+1)
		}
		if names[pat.Name] {
			return fmt.Errorf("tbql: duplicate event name %q", pat.Name)
		}
		names[pat.Name] = true
		a.EventSlot[pat.Name] = i

		// Entities.
		for _, ref := range []*EntityRef{&pat.Subj, &pat.Obj} {
			info, seen := a.Entities[ref.ID]
			if !seen {
				info = &EntityInfo{ID: ref.ID, Type: ref.Type, FirstUse: i}
				a.Entities[ref.ID] = info
				a.EntitySlot[ref.ID] = len(a.Order)
				a.Order = append(a.Order, ref.ID)
			} else if info.Type != ref.Type {
				return fmt.Errorf("tbql: entity %q used as both %s and %s", ref.ID, info.Type, ref.Type)
			}
			if ref.Filter != nil {
				norm, err := normalizeFilter(ref.Filter, ref.Type)
				if err != nil {
					return fmt.Errorf("tbql: entity %q: %w", ref.ID, err)
				}
				ref.Filter = norm
				info.Filters = append(info.Filters, norm)
			}
		}
	}

	// With-clause references.
	for _, tr := range q.Temporal {
		if !names[tr.A] {
			return fmt.Errorf("tbql: temporal relation references unknown event %q", tr.A)
		}
		if !names[tr.B] {
			return fmt.Errorf("tbql: temporal relation references unknown event %q", tr.B)
		}
		if tr.A == tr.B {
			return fmt.Errorf("tbql: temporal relation compares event %q with itself", tr.A)
		}
	}
	eventAttrs := map[string]bool{
		"srcid": true, "dstid": true, "starttime": true, "endtime": true,
		"amount": true, "optype": true, "id": true, "host": true,
	}
	for _, ar := range q.AttrRels {
		if !names[ar.AEvt] {
			return fmt.Errorf("tbql: attribute relation references unknown event %q", ar.AEvt)
		}
		if !eventAttrs[ar.AAttr] {
			return fmt.Errorf("tbql: attribute relation uses unknown event attribute %q", ar.AAttr)
		}
		if ar.BIsLit {
			continue
		}
		if !names[ar.BEvt] {
			return fmt.Errorf("tbql: attribute relation references unknown event %q", ar.BEvt)
		}
		if !eventAttrs[ar.BAttr] {
			return fmt.Errorf("tbql: attribute relation uses unknown event attribute %q", ar.BAttr)
		}
	}

	// Return items: entity IDs with default-attribute inference.
	if len(q.Return) == 0 {
		return fmt.Errorf("tbql: query has no return clause")
	}
	for i := range q.Return {
		item := &q.Return[i]
		info, ok := a.Entities[item.ID]
		if !ok {
			return fmt.Errorf("tbql: return references unknown entity %q", item.ID)
		}
		if item.Attr == "" {
			item.Attr = info.Type.DefaultAttr()
		} else if !validAttrs[info.Type][item.Attr] {
			return fmt.Errorf("tbql: return item %s.%s: unknown attribute for %s", item.ID, item.Attr, info.Type)
		}
	}

	// Host constants: intersect the host sets required by each entity's
	// filters, then each pattern's hosts are the intersection of its
	// subject's and object's (an event's endpoints share the event's
	// host, so the pattern's rows are confined to both).
	entityHosts := make(map[string][]string, len(a.Entities))
	for id, info := range a.Entities {
		var hosts []string
		constrained := false
		for _, f := range info.Filters {
			hs, ok := hostConstants(f)
			if !ok {
				continue
			}
			if constrained {
				hosts = intersectHosts(hosts, hs)
			} else {
				hosts, constrained = hs, true
			}
		}
		if constrained {
			if hosts == nil {
				hosts = []string{}
			}
			sort.Strings(hosts)
			entityHosts[id] = hosts
		}
	}
	a.PatternHosts = make([][]string, len(q.Patterns))
	for i := range q.Patterns {
		subj, sok := entityHosts[q.Patterns[i].Subj.ID]
		obj, ook := entityHosts[q.Patterns[i].Obj.ID]
		switch {
		case sok && ook:
			hs := intersectHosts(subj, obj)
			if hs == nil {
				hs = []string{}
			}
			a.PatternHosts[i] = hs
		case sok:
			a.PatternHosts[i] = subj
		case ook:
			a.PatternHosts[i] = obj
		}
	}

	q.analysis = a
	return nil
}

// hostConstants returns the host values a filter expression requires:
// ok reports whether the expression constrains the host at all. The
// analysis is conservative — only `host = '...'` leaves combined by
// AND/OR on known shapes constrain; anything else (negation, like,
// inequality) reports unconstrained.
func hostConstants(e Expr) (hosts []string, ok bool) {
	switch x := e.(type) {
	case CmpExpr:
		if x.Attr == "host" && x.Op == "=" && !x.IsNum {
			return []string{x.Str}, true
		}
		return nil, false
	case AndExpr:
		l, lok := hostConstants(x.L)
		r, rok := hostConstants(x.R)
		switch {
		case lok && rok:
			hs := intersectHosts(l, r)
			if hs == nil {
				hs = []string{}
			}
			return hs, true
		case lok:
			return l, true
		case rok:
			return r, true
		}
		return nil, false
	case OrExpr:
		l, lok := hostConstants(x.L)
		r, rok := hostConstants(x.R)
		if lok && rok {
			return unionHosts(l, r), true
		}
		return nil, false
	default:
		return nil, false
	}
}

func intersectHosts(a, b []string) []string {
	var out []string
	for _, h := range a {
		for _, g := range b {
			if h == g {
				out = append(out, h)
				break
			}
		}
	}
	return out
}

func unionHosts(a, b []string) []string {
	out := append([]string(nil), a...)
	for _, g := range b {
		found := false
		for _, h := range out {
			if h == g {
				found = true
				break
			}
		}
		if !found {
			out = append(out, g)
		}
	}
	return out
}

// entForAudit maps an audit entity type to the TBQL keyword.
func entForAudit(t audit.EntityType) EntityType {
	switch t {
	case audit.EntityFile:
		return EntFile
	case audit.EntityProcess:
		return EntProc
	case audit.EntityNetConn:
		return EntIP
	default:
		return ""
	}
}

// normalizeFilter fills empty attributes with the entity default and
// validates attribute names, returning the rewritten expression.
func normalizeFilter(e Expr, t EntityType) (Expr, error) {
	switch x := e.(type) {
	case AndExpr:
		l, err := normalizeFilter(x.L, t)
		if err != nil {
			return nil, err
		}
		r, err := normalizeFilter(x.R, t)
		if err != nil {
			return nil, err
		}
		return AndExpr{L: l, R: r}, nil
	case OrExpr:
		l, err := normalizeFilter(x.L, t)
		if err != nil {
			return nil, err
		}
		r, err := normalizeFilter(x.R, t)
		if err != nil {
			return nil, err
		}
		return OrExpr{L: l, R: r}, nil
	case NotExpr:
		inner, err := normalizeFilter(x.E, t)
		if err != nil {
			return nil, err
		}
		return NotExpr{E: inner}, nil
	case CmpExpr:
		if x.Attr == "" {
			x.Attr = t.DefaultAttr()
		}
		if !validAttrs[t][x.Attr] {
			return nil, fmt.Errorf("unknown attribute %q for %s entity", x.Attr, t)
		}
		return x, nil
	default:
		return nil, fmt.Errorf("unknown filter expression %T", e)
	}
}
