package tbql

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokKeyword
	tokString
	tokNumber
	tokSymbol
)

var keywords = map[string]bool{
	"proc": true, "file": true, "ip": true, "as": true, "with": true,
	"before": true, "after": true, "return": true, "distinct": true,
	"from": true, "to": true, "not": true, "like": true, "and": true,
	"or": true,
}

type token struct {
	kind tokKind
	text string
	num  int64
	pos  int
}

// lex tokenizes TBQL source. Strings use double quotes with "" escaping.
func lex(src string) ([]token, error) {
	var toks []token
	pos := 0
	for pos < len(src) {
		c := src[pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			pos++
		case c == '#': // comment to end of line
			for pos < len(src) && src[pos] != '\n' {
				pos++
			}
		case c == '"':
			start := pos
			pos++
			var b strings.Builder
			closed := false
			for pos < len(src) {
				if src[pos] == '"' {
					if pos+1 < len(src) && src[pos+1] == '"' {
						b.WriteByte('"')
						pos += 2
						continue
					}
					pos++
					closed = true
					break
				}
				b.WriteByte(src[pos])
				pos++
			}
			if !closed {
				return nil, fmt.Errorf("tbql: unterminated string at offset %d", start)
			}
			toks = append(toks, token{kind: tokString, text: b.String(), pos: start})
		case c >= '0' && c <= '9':
			start := pos
			for pos < len(src) && src[pos] >= '0' && src[pos] <= '9' {
				pos++
			}
			n, err := strconv.ParseInt(src[start:pos], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("tbql: bad number at offset %d: %v", start, err)
			}
			toks = append(toks, token{kind: tokNumber, num: n, text: src[start:pos], pos: start})
		case c == '_' || unicode.IsLetter(rune(c)):
			start := pos
			for pos < len(src) && (src[pos] == '_' || unicode.IsLetter(rune(src[pos])) || unicode.IsDigit(rune(src[pos]))) {
				pos++
			}
			word := src[start:pos]
			lower := strings.ToLower(word)
			if keywords[lower] {
				toks = append(toks, token{kind: tokKeyword, text: lower, pos: start})
			} else {
				toks = append(toks, token{kind: tokIdent, text: word, pos: start})
			}
		default:
			two := ""
			if pos+1 < len(src) {
				two = src[pos : pos+2]
			}
			switch two {
			case "~>", "&&", "||", "!=", "<=", ">=":
				toks = append(toks, token{kind: tokSymbol, text: two, pos: pos})
				pos += 2
				continue
			}
			switch c {
			case '[', ']', '(', ')', ',', '.', '~', '=', '<', '>', '!', '-':
				toks = append(toks, token{kind: tokSymbol, text: string(c), pos: pos})
				pos++
			default:
				return nil, fmt.Errorf("tbql: unexpected character %q at offset %d", c, pos)
			}
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: pos})
	return toks, nil
}
