package tbql

import (
	"fmt"
	"strings"
)

// Parse parses a TBQL query and runs semantic analysis on it.
func Parse(src string) (*Query, error) {
	q, err := ParseOnly(src)
	if err != nil {
		return nil, err
	}
	if err := Analyze(q); err != nil {
		return nil, err
	}
	return q, nil
}

// ParseOnly parses without semantic analysis (useful for tests and
// tooling that inspects raw ASTs).
func ParseOnly(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, fmt.Errorf("tbql: unexpected trailing token %q at offset %d", p.peek().text, p.peek().pos)
	}
	return q, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) peek2() token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.peek().kind == tokKeyword && p.peek().text == kw {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return fmt.Errorf("tbql: expected %q at offset %d, got %q", kw, p.peek().pos, p.peek().text)
	}
	return nil
}

func (p *parser) acceptSymbol(s string) bool {
	if p.peek().kind == tokSymbol && p.peek().text == s {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectSymbol(s string) error {
	if !p.acceptSymbol(s) {
		return fmt.Errorf("tbql: expected %q at offset %d, got %q", s, p.peek().pos, p.peek().text)
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", fmt.Errorf("tbql: expected identifier at offset %d, got %q", t.pos, t.text)
	}
	p.next()
	return t.text, nil
}

func (p *parser) parseQuery() (*Query, error) {
	q := &Query{}
	// Event patterns until "with" or "return".
	for {
		t := p.peek()
		if t.kind == tokKeyword && (t.text == "with" || t.text == "return") {
			break
		}
		if t.kind == tokEOF {
			break
		}
		pat, err := p.parsePattern()
		if err != nil {
			return nil, err
		}
		q.Patterns = append(q.Patterns, pat)
	}
	if len(q.Patterns) == 0 {
		return nil, fmt.Errorf("tbql: query has no event patterns")
	}

	if p.acceptKeyword("with") {
		for {
			if err := p.parseWithItem(q); err != nil {
				return nil, err
			}
			if !p.acceptSymbol(",") {
				break
			}
		}
	}

	if err := p.expectKeyword("return"); err != nil {
		return nil, err
	}
	q.Distinct = p.acceptKeyword("distinct")
	for {
		id, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		item := ReturnItem{ID: id}
		if p.acceptSymbol(".") {
			attr, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			item.Attr = strings.ToLower(attr)
		}
		q.Return = append(q.Return, item)
		if !p.acceptSymbol(",") {
			break
		}
	}
	return q, nil
}

// parsePattern parses one event or path pattern:
//
//	entity op entity [as name] [from n to n]
//	entity ~>[op] entity [as name]
//	entity ~>(min~max)[op] entity [as name]
func (p *parser) parsePattern() (EventPattern, error) {
	var pat EventPattern
	subj, err := p.parseEntity()
	if err != nil {
		return pat, err
	}
	pat.Subj = subj

	if p.acceptSymbol("~>") {
		pat.IsPath = true
		pat.MinHops, pat.MaxHops = 1, 0
		if p.acceptSymbol("(") {
			t := p.peek()
			if t.kind != tokNumber {
				return pat, fmt.Errorf("tbql: expected min hop count at offset %d", t.pos)
			}
			p.next()
			pat.MinHops = int(t.num)
			if err := p.expectSymbol("~"); err != nil {
				return pat, err
			}
			t = p.peek()
			if t.kind != tokNumber {
				return pat, fmt.Errorf("tbql: expected max hop count at offset %d", t.pos)
			}
			p.next()
			pat.MaxHops = int(t.num)
			if err := p.expectSymbol(")"); err != nil {
				return pat, err
			}
			if pat.MinHops < 1 || pat.MaxHops < pat.MinHops {
				return pat, fmt.Errorf("tbql: invalid path bounds (%d~%d)", pat.MinHops, pat.MaxHops)
			}
		}
		if err := p.expectSymbol("["); err != nil {
			return pat, err
		}
		ops, neg, err := p.parseOps()
		if err != nil {
			return pat, err
		}
		pat.Ops, pat.NegOps = ops, neg
		if err := p.expectSymbol("]"); err != nil {
			return pat, err
		}
	} else {
		ops, neg, err := p.parseOps()
		if err != nil {
			return pat, err
		}
		pat.Ops, pat.NegOps = ops, neg
	}

	obj, err := p.parseEntity()
	if err != nil {
		return pat, err
	}
	pat.Obj = obj

	if p.acceptKeyword("as") {
		name, err := p.expectIdent()
		if err != nil {
			return pat, err
		}
		pat.Name = name
	}

	if p.peek().kind == tokKeyword && p.peek().text == "from" && p.peek2().kind == tokNumber {
		p.next()
		fromT := p.next()
		if err := p.expectKeyword("to"); err != nil {
			return pat, err
		}
		toT := p.peek()
		if toT.kind != tokNumber {
			return pat, fmt.Errorf("tbql: expected number after 'to' at offset %d", toT.pos)
		}
		p.next()
		if toT.num < fromT.num {
			return pat, fmt.Errorf("tbql: time window end %d before start %d", toT.num, fromT.num)
		}
		pat.Window = &TimeWindow{From: fromT.num, To: toT.num}
	}
	return pat, nil
}

// parseOps parses an operation expression: op, op || op, or !op.
func (p *parser) parseOps() ([]string, bool, error) {
	neg := false
	if p.acceptSymbol("!") {
		neg = true
	}
	var ops []string
	for {
		t := p.peek()
		if t.kind != tokIdent && t.kind != tokKeyword {
			return nil, false, fmt.Errorf("tbql: expected operation at offset %d, got %q", t.pos, t.text)
		}
		p.next()
		ops = append(ops, strings.ToLower(t.text))
		if !p.acceptSymbol("||") {
			break
		}
	}
	return ops, neg, nil
}

// parseEntity parses: (proc|file|ip) ID [ '[' filter ']' ].
func (p *parser) parseEntity() (EntityRef, error) {
	var e EntityRef
	t := p.peek()
	if t.kind != tokKeyword || (t.text != "proc" && t.text != "file" && t.text != "ip") {
		return e, fmt.Errorf("tbql: expected entity type (proc/file/ip) at offset %d, got %q", t.pos, t.text)
	}
	p.next()
	e.Type = EntityType(t.text)
	id, err := p.expectIdent()
	if err != nil {
		return e, err
	}
	e.ID = id
	if p.acceptSymbol("[") {
		f, err := p.parseFilterOr()
		if err != nil {
			return e, err
		}
		e.Filter = f
		if err := p.expectSymbol("]"); err != nil {
			return e, err
		}
	}
	return e, nil
}

func (p *parser) parseFilterOr() (Expr, error) {
	l, err := p.parseFilterAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptSymbol("||") || p.acceptKeyword("or") {
		r, err := p.parseFilterAnd()
		if err != nil {
			return nil, err
		}
		l = OrExpr{L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseFilterAnd() (Expr, error) {
	l, err := p.parseFilterNot()
	if err != nil {
		return nil, err
	}
	for p.acceptSymbol("&&") || p.acceptKeyword("and") {
		r, err := p.parseFilterNot()
		if err != nil {
			return nil, err
		}
		l = AndExpr{L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseFilterNot() (Expr, error) {
	if p.acceptSymbol("!") || p.acceptKeyword("not") {
		e, err := p.parseFilterNot()
		if err != nil {
			return nil, err
		}
		return NotExpr{E: e}, nil
	}
	if p.acceptSymbol("(") {
		e, err := p.parseFilterOr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	return p.parseFilterCmp()
}

// parseFilterCmp parses:
//
//	"literal"                      — default-attribute sugar (= or like)
//	attr op literal                — explicit comparison
//	attr like "pattern"
func (p *parser) parseFilterCmp() (Expr, error) {
	t := p.peek()
	if t.kind == tokString {
		p.next()
		op := "="
		if HasWildcard(t.text) {
			op = "like"
		}
		return CmpExpr{Attr: "", Op: op, Str: t.text}, nil
	}
	if t.kind != tokIdent {
		return nil, fmt.Errorf("tbql: expected attribute or string literal at offset %d, got %q", t.pos, t.text)
	}
	p.next()
	attr := strings.ToLower(t.text)

	opTok := p.peek()
	var op string
	switch {
	case opTok.kind == tokSymbol && (opTok.text == "=" || opTok.text == "!=" ||
		opTok.text == "<" || opTok.text == "<=" || opTok.text == ">" || opTok.text == ">="):
		op = opTok.text
		p.next()
	case opTok.kind == tokKeyword && opTok.text == "like":
		op = "like"
		p.next()
	default:
		return nil, fmt.Errorf("tbql: expected comparison operator at offset %d, got %q", opTok.pos, opTok.text)
	}

	lit := p.peek()
	switch lit.kind {
	case tokString:
		p.next()
		if op == "=" && HasWildcard(lit.text) {
			op = "like"
		}
		return CmpExpr{Attr: attr, Op: op, Str: lit.text}, nil
	case tokNumber:
		if op == "like" {
			return nil, fmt.Errorf("tbql: 'like' requires a string pattern at offset %d", lit.pos)
		}
		p.next()
		return CmpExpr{Attr: attr, Op: op, Num: lit.num, IsNum: true}, nil
	case tokSymbol:
		if lit.text == "-" {
			p.next()
			n := p.peek()
			if n.kind != tokNumber {
				return nil, fmt.Errorf("tbql: expected number after '-' at offset %d", n.pos)
			}
			p.next()
			return CmpExpr{Attr: attr, Op: op, Num: -n.num, IsNum: true}, nil
		}
	}
	return nil, fmt.Errorf("tbql: expected literal at offset %d, got %q", lit.pos, lit.text)
}

// parseWithItem parses one with-clause item: a temporal relation
// ("evt1 before evt2") or an attribute relation
// ("evt1.srcid = evt2.srcid").
func (p *parser) parseWithItem(q *Query) error {
	a, err := p.expectIdent()
	if err != nil {
		return err
	}
	if p.acceptSymbol(".") {
		aAttr, err := p.expectIdent()
		if err != nil {
			return err
		}
		opTok := p.peek()
		if opTok.kind != tokSymbol {
			return fmt.Errorf("tbql: expected operator at offset %d", opTok.pos)
		}
		switch opTok.text {
		case "=", "!=", "<", "<=", ">", ">=":
			p.next()
		default:
			return fmt.Errorf("tbql: bad attribute relation operator %q at offset %d", opTok.text, opTok.pos)
		}
		// RHS: a literal number or another event attribute.
		rhs := p.peek()
		if rhs.kind == tokNumber || (rhs.kind == tokSymbol && rhs.text == "-") {
			neg := false
			if rhs.kind == tokSymbol {
				p.next()
				rhs = p.peek()
				if rhs.kind != tokNumber {
					return fmt.Errorf("tbql: expected number after '-' at offset %d", rhs.pos)
				}
				neg = true
			}
			p.next()
			lit := rhs.num
			if neg {
				lit = -lit
			}
			q.AttrRels = append(q.AttrRels, AttrRel{
				AEvt: a, AAttr: strings.ToLower(aAttr),
				Op:     opTok.text,
				BIsLit: true, BLit: lit,
			})
			return nil
		}
		b, err := p.expectIdent()
		if err != nil {
			return err
		}
		if err := p.expectSymbol("."); err != nil {
			return err
		}
		bAttr, err := p.expectIdent()
		if err != nil {
			return err
		}
		q.AttrRels = append(q.AttrRels, AttrRel{
			AEvt: a, AAttr: strings.ToLower(aAttr),
			Op:   opTok.text,
			BEvt: b, BAttr: strings.ToLower(bAttr),
		})
		return nil
	}

	t := p.peek()
	if t.kind != tokKeyword || (t.text != "before" && t.text != "after") {
		return fmt.Errorf("tbql: expected 'before'/'after' at offset %d, got %q", t.pos, t.text)
	}
	p.next()
	b, err := p.expectIdent()
	if err != nil {
		return err
	}
	q.Temporal = append(q.Temporal, TemporalRel{A: a, B: b, Op: t.text})
	return nil
}
