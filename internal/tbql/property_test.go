package tbql

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// randQuery generates a random syntactically and semantically valid TBQL
// query.
func randQuery(rng *rand.Rand) string {
	nPat := 1 + rng.Intn(4)
	ops := map[EntityType][]string{
		EntFile: {"read", "write", "execute", "delete", "chmod"},
		EntProc: {"fork", "exec"},
		EntIP:   {"connect", "send", "recv"},
	}
	objTypes := []EntityType{EntFile, EntFile, EntIP, EntProc}
	var b strings.Builder
	var names []string
	entTypes := map[string]EntityType{}
	filtered := map[string]bool{}

	for i := 0; i < nPat; i++ {
		objT := objTypes[rng.Intn(len(objTypes))]
		op := ops[objT][rng.Intn(len(ops[objT]))]
		name := fmt.Sprintf("e%d", i+1)
		names = append(names, name)

		subj := entityStr(rng, EntProc, i, entTypes, filtered)
		obj := entityStr(rng, objT, i+10, entTypes, filtered)
		if rng.Intn(4) == 0 {
			// Path pattern.
			lo := 1 + rng.Intn(3)
			hi := lo + rng.Intn(3)
			fmt.Fprintf(&b, "%s ~>(%d~%d)[%s] %s as %s\n", subj, lo, hi, op, obj, name)
		} else {
			fmt.Fprintf(&b, "%s %s %s as %s\n", subj, op, obj, name)
		}
	}
	if nPat > 1 && rng.Intn(2) == 0 {
		var rels []string
		for i := 1; i < nPat; i++ {
			switch rng.Intn(3) {
			case 0:
				rels = append(rels, fmt.Sprintf("%s before %s", names[i-1], names[i]))
			case 1:
				rels = append(rels, fmt.Sprintf("%s.srcid = %s.srcid", names[i-1], names[i]))
			default:
				rels = append(rels, fmt.Sprintf("%s.amount > %d", names[i], rng.Intn(10000)))
			}
		}
		fmt.Fprintf(&b, "with %s\n", strings.Join(rels, ", "))
	}
	var ret []string
	for id := range entTypes {
		ret = append(ret, id)
		if len(ret) == 3 {
			break
		}
	}
	distinct := ""
	if rng.Intn(2) == 0 {
		distinct = "distinct "
	}
	fmt.Fprintf(&b, "return %s%s", distinct, strings.Join(ret, ", "))
	return b.String()
}

// entityStr renders an entity occurrence with a unique-enough ID per
// (type, slot), attaching a filter on the ID's first filtered use.
func entityStr(rng *rand.Rand, t EntityType, slot int, entTypes map[string]EntityType, filtered map[string]bool) string {
	prefix := map[EntityType]string{EntProc: "p", EntFile: "f", EntIP: "i"}[t]
	id := fmt.Sprintf("%s%d", prefix, slot%4)
	entTypes[id] = t
	var sb strings.Builder
	sb.WriteString(string(t))
	sb.WriteByte(' ')
	sb.WriteString(id)
	if !filtered[id] && rng.Intn(2) == 0 {
		filtered[id] = true
		switch rng.Intn(3) {
		case 0:
			fmt.Fprintf(&sb, `["%%seg%d%%"]`, rng.Intn(5))
		case 1:
			fmt.Fprintf(&sb, `[%s like "%%x%d%%" && host = "h%d"]`,
				t.DefaultAttr(), rng.Intn(5), rng.Intn(3))
		default:
			fmt.Fprintf(&sb, `[host = "h%d"]`, rng.Intn(3))
		}
	}
	return sb.String()
}

// TestRandomQueryRoundTrip: every generated query parses, analyzes, and
// its rendered form re-parses to a stable rendering.
func TestRandomQueryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(20210625))
	for i := 0; i < 300; i++ {
		src := randQuery(rng)
		q, err := Parse(src)
		if err != nil {
			t.Fatalf("case %d: parse failed: %v\n%s", i, err, src)
		}
		out := q.String()
		q2, err := Parse(out)
		if err != nil {
			t.Fatalf("case %d: re-parse failed: %v\noriginal:\n%s\nrendered:\n%s", i, err, src, out)
		}
		if q2.String() != out {
			t.Fatalf("case %d: rendering unstable:\n%s\nvs\n%s", i, out, q2.String())
		}
		if len(q2.Patterns) != len(q.Patterns) || len(q2.Temporal) != len(q.Temporal) {
			t.Fatalf("case %d: structure changed on round trip", i)
		}
	}
}
