package tbql

import (
	"reflect"
	"testing"
)

// TestPatternHosts: the analyzer must derive each pattern's required
// host set from `host = '...'` constants, conservatively.
func TestPatternHosts(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want [][]string // per pattern; nil = unconstrained
	}{
		{
			"unfiltered",
			"proc p read file f as e1\nreturn p",
			[][]string{nil},
		},
		{
			"subject host",
			`proc p[host = "h1"] read file f as e1` + "\nreturn p",
			[][]string{{"h1"}},
		},
		{
			"object host",
			`proc p read file f[host = "h2"] as e1` + "\nreturn p",
			[][]string{{"h2"}},
		},
		{
			"host AND other filter",
			`proc p[host = "h1" && "%tar%"] read file f as e1` + "\nreturn p",
			[][]string{{"h1"}},
		},
		{
			"host OR host",
			`proc p[host = "h1" || host = "h2"] read file f as e1` + "\nreturn p",
			[][]string{{"h1", "h2"}},
		},
		{
			"OR with unconstrained side",
			`proc p[host = "h1" || pid > 3] read file f as e1` + "\nreturn p",
			[][]string{nil},
		},
		{
			"negation is conservative",
			`proc p[!(host = "h1")] read file f as e1` + "\nreturn p",
			[][]string{nil},
		},
		{
			"contradictory subject and object",
			`proc p[host = "h1"] read file f[host = "h2"] as e1` + "\nreturn p",
			[][]string{{}},
		},
		{
			"shared variable carries the constraint to every pattern",
			`proc p[host = "h1"] read file f as e1` + "\n" +
				`proc p write file g as e2` + "\nreturn p",
			[][]string{{"h1"}, {"h1"}},
		},
		{
			"like on host is conservative",
			`proc p[host like "h%"] read file f as e1` + "\nreturn p",
			[][]string{nil},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			q, err := Parse(tc.src)
			if err != nil {
				t.Fatal(err)
			}
			if err := Analyze(q); err != nil {
				t.Fatal(err)
			}
			got := q.Info().PatternHosts
			if len(got) != len(tc.want) {
				t.Fatalf("PatternHosts = %v, want %v", got, tc.want)
			}
			for i := range got {
				if tc.want[i] == nil {
					if got[i] != nil {
						t.Errorf("pattern %d hosts = %v, want unconstrained", i, got[i])
					}
					continue
				}
				if got[i] == nil {
					t.Errorf("pattern %d unconstrained, want %v", i, tc.want[i])
					continue
				}
				if len(got[i]) == 0 && len(tc.want[i]) == 0 {
					continue
				}
				if !reflect.DeepEqual(got[i], tc.want[i]) {
					t.Errorf("pattern %d hosts = %v, want %v", i, got[i], tc.want[i])
				}
			}
		})
	}
}
