package tbql

import "testing"

// FuzzParse: the TBQL parser and analyzer must never panic, and every
// accepted query must render to text that re-parses.
func FuzzParse(f *testing.F) {
	seeds := []string{
		Fig2Query,
		"proc p read file f as e1\nreturn p",
		"proc p ~>(2~4)[read || write] file f as e1\nwith e1.amount > 5\nreturn distinct p, f",
		"proc p[exename like \"%x%\" && pid > 1] !read file f[host = \"h\"] as e1 from 1 to 9\nreturn p.pid",
		"proc p read file f as e1\nproc p write file g as e2\nwith e1 before e2, e1.srcid = e2.srcid\nreturn p, f, g",
		"return p",
		"proc p read file",
		"proc p[\"unterminated] read file f\nreturn p",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return
		}
		out := q.String()
		if _, err := Parse(out); err != nil {
			t.Fatalf("accepted query renders unparseable text: %v\ninput: %q\nrendered: %q", err, src, out)
		}
	})
}
