package tbql

import "testing"

// FuzzParseQuery: the TBQL parser and analyzer must never panic, and
// every accepted query must render to text that re-parses and
// re-analyzes to the same verdict. Seeds mirror the hand-written
// queries in examples/ (quickstart's exfiltration hunt, pathhunt's
// variable-length pattern, dataleakage's Fig. 2 chain) plus host
// filters and malformed fragments.
func FuzzParseQuery(f *testing.F) {
	seeds := []string{
		Fig2Query,
		// examples/quickstart: read-then-connect exfiltration.
		"proc p read file f[\"%/etc/passwd%\"] as evt1\nproc p connect ip i as evt2\nwith evt1 before evt2\nreturn distinct p, f, i",
		// examples/pathhunt: variable-length reach query.
		"proc web[\"%/usr/sbin/apache2%\"] ~>(1~4)[read] file cred[\"%/etc/passwd%\"] as reach\nreturn distinct web, cred",
		"proc p read file f as e1\nreturn p",
		"proc p ~>(2~4)[read || write] file f as e1\nwith e1.amount > 5\nreturn distinct p, f",
		"proc p[exename like \"%x%\" && pid > 1] !read file f[host = \"h\"] as e1 from 1 to 9\nreturn p.pid",
		"proc p read file f as e1\nproc p write file g as e2\nwith e1 before e2, e1.srcid = e2.srcid\nreturn p, f, g",
		// Host constants and disjunctions drive the shard-pruning analysis.
		"proc p[host = \"host1\" || host = \"host2\"] read file f as e1\nreturn p",
		"proc p[host = \"a\"] read file f[host = \"b\"] as e1\nreturn p, f",
		"return p",
		"proc p read file",
		"proc p[\"unterminated] read file f\nreturn p",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return
		}
		// Analysis must not panic on anything the parser accepts.
		analyzeErr := Analyze(q)
		out := q.String()
		q2, err := Parse(out)
		if err != nil {
			t.Fatalf("accepted query renders unparseable text: %v\ninput: %q\nrendered: %q", err, src, out)
		}
		if analyzeErr == nil {
			if err := Analyze(q2); err != nil {
				t.Fatalf("rendered text fails analysis that the original passed: %v\ninput: %q\nrendered: %q", err, src, out)
			}
		}
	})
}
