// Package tbql implements the Threat Behavior Query Language: a concise,
// declarative domain-specific language for hunting multi-step system
// activities in system audit logging data. TBQL treats system entities
// (processes, files, network connections) and system events as first-class
// citizens.
//
// The basic event pattern syntax specifies ⟨subject, operation, object⟩
// patterns with optional attribute filters, names them with "as", and
// constrains them with a "with" clause of temporal and attribute
// relationships plus a "return" clause:
//
//	proc p1["%/bin/tar%"] read file f1["%/etc/passwd%"] as evt1
//	proc p1 write file f2["%/tmp/upload.tar%"] as evt2
//	with evt1 before evt2
//	return distinct p1, f1, f2
//
// The advanced syntax specifies variable-length event path patterns:
//
//	proc p ~>[read] file f as evt1            // any length, final hop read
//	proc p ~>(2~4)[read] file f as evt2       // between 2 and 4 hops
//
// Operators (&&, ||, !, comparison) are supported in event operations and
// attribute filters; optional time windows ("from <t> to <t>") constrain
// individual patterns. The package provides the lexer, recursive-descent
// parser (substituting for the paper's ANTLR 4 grammar), AST, and semantic
// analyzer.
package tbql

import (
	"strings"
)

// EntityType is a TBQL entity type keyword.
type EntityType string

// TBQL entity types.
const (
	EntProc EntityType = "proc"
	EntFile EntityType = "file"
	EntIP   EntityType = "ip"
)

// DefaultAttr returns the default attribute used when a filter or return
// item omits the attribute name: "exename" for processes, "name" for
// files, "dstip" for network connections.
func (t EntityType) DefaultAttr() string {
	switch t {
	case EntProc:
		return "exename"
	case EntFile:
		return "name"
	case EntIP:
		return "dstip"
	}
	return "name"
}

// EntityRef is one occurrence of an entity in an event pattern.
type EntityRef struct {
	Type   EntityType
	ID     string
	Filter Expr // may be nil
}

// EventPattern is one ⟨subject, operation, object⟩ pattern, optionally a
// variable-length path pattern.
type EventPattern struct {
	Subj EntityRef
	// Ops is the operation expression: a disjunction of operation names.
	Ops []string
	// NegOps marks a negated operation set (op != read).
	NegOps bool
	Obj    EntityRef
	Name   string // "as evtN"

	// Path pattern fields.
	IsPath  bool
	MinHops int // 1 when unspecified
	MaxHops int // 0 = unbounded (engine applies its cap)

	Window *TimeWindow
}

// TimeWindow constrains a pattern to [From, To] in unix nanoseconds.
type TimeWindow struct {
	From int64
	To   int64
}

// TemporalRel is "evtA before evtB" or "evtA after evtB".
type TemporalRel struct {
	A, B string
	Op   string // "before" | "after"
}

// AttrRel is an attribute relationship between two named events
// ("evt1.srcid = evt2.srcid") or between a named event's attribute and a
// literal ("evt1.amount > 4096", in which case BIsLit is set).
type AttrRel struct {
	AEvt, AAttr string
	Op          string // = != < <= > >=
	BEvt, BAttr string
	BIsLit      bool
	BLit        int64
}

// ReturnItem is one projection: an entity ID with an optional attribute
// (default attribute inferred when empty) or a named event's attribute.
type ReturnItem struct {
	ID   string
	Attr string
}

// Query is a parsed TBQL query.
type Query struct {
	Patterns []EventPattern
	Temporal []TemporalRel
	AttrRels []AttrRel
	Distinct bool
	Return   []ReturnItem

	analysis *Analysis // set by Analyze
}

// Expr is a filter expression over entity attributes.
type Expr interface{ isExpr() }

// AndExpr / OrExpr / NotExpr combine filters.
type AndExpr struct{ L, R Expr }

// OrExpr is a disjunction.
type OrExpr struct{ L, R Expr }

// NotExpr negates.
type NotExpr struct{ E Expr }

// CmpExpr compares an attribute with a literal. Attr may be empty,
// meaning the entity's default attribute. Op "like" is produced when a
// string literal contains SQL wildcards or when written explicitly.
type CmpExpr struct {
	Attr  string
	Op    string // = != < <= > >= like
	Str   string // string literal (Op like/=/!= on text)
	Num   int64
	IsNum bool
}

func (AndExpr) isExpr() {}
func (OrExpr) isExpr()  {}
func (NotExpr) isExpr() {}
func (CmpExpr) isExpr() {}

// HasWildcard reports whether a string literal uses SQL LIKE wildcards.
func HasWildcard(s string) bool {
	return strings.ContainsAny(s, "%_")
}
