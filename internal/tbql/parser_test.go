package tbql

import (
	"strings"
	"testing"
)

// Fig2Query is the synthesized TBQL query from the paper's Figure 2.
const Fig2Query = `proc p1["%/bin/tar%"] read file f1["%/etc/passwd%"] as evt1
proc p1 write file f2["%/tmp/upload.tar%"] as evt2
proc p2["%/bin/bzip2%"] read file f2 as evt3
proc p2 write file f3["%/tmp/upload.tar.bz2%"] as evt4
proc p3["%/usr/bin/gpg%"] read file f3 as evt5
proc p3 write file f4["%/tmp/upload%"] as evt6
proc p4["%/usr/bin/curl%"] read file f4 as evt7
proc p4 connect ip i1["192.168.29.128"] as evt8
with evt1 before evt2, evt2 before evt3, evt3 before evt4, evt4 before evt5, evt5 before evt6, evt6 before evt7, evt7 before evt8
return distinct p1, f1, f2, p2, f3, p3, f4, p4, i1`

func TestParseFig2Query(t *testing.T) {
	q, err := Parse(Fig2Query)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Patterns) != 8 {
		t.Fatalf("want 8 patterns, got %d", len(q.Patterns))
	}
	if len(q.Temporal) != 7 {
		t.Errorf("want 7 temporal relations, got %d", len(q.Temporal))
	}
	if !q.Distinct || len(q.Return) != 9 {
		t.Errorf("return clause: distinct=%v items=%d", q.Distinct, len(q.Return))
	}
	// Pattern 1 details.
	p1 := q.Patterns[0]
	if p1.Subj.Type != EntProc || p1.Subj.ID != "p1" || p1.Obj.Type != EntFile || p1.Obj.ID != "f1" {
		t.Errorf("pattern 1 entities wrong: %+v", p1)
	}
	if len(p1.Ops) != 1 || p1.Ops[0] != "read" || p1.Name != "evt1" {
		t.Errorf("pattern 1 op/name wrong: %+v", p1)
	}
	// Filter sugar: default attr inferred as exename for proc.
	cmp, ok := p1.Subj.Filter.(CmpExpr)
	if !ok || cmp.Attr != "exename" || cmp.Op != "like" || cmp.Str != "%/bin/tar%" {
		t.Errorf("pattern 1 subject filter = %+v", p1.Subj.Filter)
	}
	// IP pattern: default attr dstip, exact match (no wildcard).
	p8 := q.Patterns[7]
	cmp, ok = p8.Obj.Filter.(CmpExpr)
	if !ok || cmp.Attr != "dstip" || cmp.Op != "=" || cmp.Str != "192.168.29.128" {
		t.Errorf("pattern 8 object filter = %+v", p8.Obj.Filter)
	}
	// Return items have default attrs filled.
	if q.Return[0].Attr != "exename" || q.Return[1].Attr != "name" || q.Return[8].Attr != "dstip" {
		t.Errorf("return defaults: %+v", q.Return)
	}
}

func TestParsePathPattern(t *testing.T) {
	q, err := Parse(`proc p["%/usr/sbin/apache2%"] ~>[read] file f["%/etc/passwd%"] as e1
return p, f`)
	if err != nil {
		t.Fatal(err)
	}
	p := q.Patterns[0]
	if !p.IsPath || p.MinHops != 1 || p.MaxHops != 0 {
		t.Errorf("unbounded path wrong: %+v", p)
	}

	q, err = Parse(`proc p ~>(2~4)[read] file f as e1
return p, f`)
	if err != nil {
		t.Fatal(err)
	}
	p = q.Patterns[0]
	if !p.IsPath || p.MinHops != 2 || p.MaxHops != 4 {
		t.Errorf("bounded path wrong: %+v", p)
	}
}

func TestParseOpDisjunction(t *testing.T) {
	q, err := Parse(`proc p read || write file f as e1
return p, f`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Patterns[0].Ops) != 2 {
		t.Errorf("ops = %v", q.Patterns[0].Ops)
	}
	q, err = Parse(`proc p !read file f as e1
return p`)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Patterns[0].NegOps {
		t.Error("negated op not parsed")
	}
}

func TestParseComplexFilter(t *testing.T) {
	q, err := Parse(`proc p[exename like "%ssh%" && pid > 100] read file f[name = "/etc/passwd" || name = "/etc/shadow"] as e1
return p.pid, f`)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := q.Patterns[0].Subj.Filter.(AndExpr); !ok {
		t.Errorf("subject filter not AndExpr: %T", q.Patterns[0].Subj.Filter)
	}
	if _, ok := q.Patterns[0].Obj.Filter.(OrExpr); !ok {
		t.Errorf("object filter not OrExpr: %T", q.Patterns[0].Obj.Filter)
	}
	if q.Return[0].Attr != "pid" {
		t.Errorf("explicit return attr lost: %+v", q.Return[0])
	}
}

func TestParseTimeWindow(t *testing.T) {
	q, err := Parse(`proc p read file f as e1 from 100 to 200
return p`)
	if err != nil {
		t.Fatal(err)
	}
	w := q.Patterns[0].Window
	if w == nil || w.From != 100 || w.To != 200 {
		t.Errorf("window = %+v", w)
	}
	if _, err := Parse("proc p read file f as e1 from 200 to 100\nreturn p"); err == nil {
		t.Error("inverted window should fail")
	}
}

func TestParseAttrRel(t *testing.T) {
	q, err := Parse(`proc p1 read file f1 as evt1
proc p2 write file f2 as evt2
with evt1.srcid = evt2.srcid, evt1 before evt2
return p1, p2`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.AttrRels) != 1 || q.AttrRels[0].AAttr != "srcid" {
		t.Errorf("attr rels = %+v", q.AttrRels)
	}
	if len(q.Temporal) != 1 {
		t.Errorf("temporal = %+v", q.Temporal)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",                                       // no patterns
		"return p",                               // no patterns
		"proc p read file f as e1",               // no return
		"proc p levitate file f as e1\nreturn p", // unknown op
		"proc p read ip i as e1\nreturn p",       // op/object mismatch
		"file f read file g as e1\nreturn f",     // subject not proc
		"proc p read file f as e1\nproc p write ip p as e2\nreturn p",   // id type conflict
		"proc p read file f as e1\nproc p write file g as e1\nreturn p", // dup name
		"proc p read file f as e1\nwith e1 before e9\nreturn p",         // unknown event
		"proc p read file f as e1\nwith e1 before e1\nreturn p",         // self relation
		"proc p read file f as e1\nreturn q",                            // unknown return id
		"proc p read file f as e1\nreturn p.bogus",                      // unknown attr
		"proc p[pid like 5] read file f as e1\nreturn p",                // like needs operand form
		"proc p[bogus = \"x\"] read file f as e1\nreturn p",             // unknown filter attr
		"proc p ~>(4~2)[read] file f as e1\nreturn p",                   // bad bounds
		"proc p read file f as e1\nwith e1.bogus = e1.srcid\nreturn p",  // bad event attr
		`proc p["unterminated] read file f as e1` + "\nreturn p",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("should fail: %q", src)
		}
	}
}

func TestParseAnonymousPatternsGetNames(t *testing.T) {
	q, err := Parse("proc p read file f\nreturn p")
	if err != nil {
		t.Fatal(err)
	}
	if q.Patterns[0].Name == "" {
		t.Error("anonymous pattern should get a name")
	}
}

func TestParseComments(t *testing.T) {
	q, err := Parse(`# hunt for credential reads
proc p read file f["%passwd%"] as e1  # the read
return p, f`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Patterns) != 1 {
		t.Errorf("patterns = %d", len(q.Patterns))
	}
}

func TestFormatRoundTrip(t *testing.T) {
	srcs := []string{
		Fig2Query,
		"proc p ~>(2~4)[read] file f as e1\nreturn distinct p, f",
		"proc p read || write file f as e1 from 5 to 10\nreturn p.pid",
		`proc p[exename like "%ssh%" && pid > 100] read file f as e1` + "\nreturn p",
	}
	for _, src := range srcs {
		q1, err := Parse(src)
		if err != nil {
			t.Fatalf("parse: %v\n%s", err, src)
		}
		out := q1.String()
		q2, err := Parse(out)
		if err != nil {
			t.Fatalf("re-parse: %v\nrendered:\n%s", err, out)
		}
		if q2.String() != out {
			t.Errorf("round trip not stable:\n%s\nvs\n%s", out, q2.String())
		}
	}
}

func TestInfoEntities(t *testing.T) {
	q, err := Parse(Fig2Query)
	if err != nil {
		t.Fatal(err)
	}
	info := q.Info()
	if info == nil {
		t.Fatal("no analysis")
	}
	if len(info.Order) != 9 {
		t.Errorf("entity count = %d, want 9", len(info.Order))
	}
	if info.Entities["p1"].Type != EntProc || len(info.Entities["p1"].Filters) != 1 {
		t.Errorf("p1 info = %+v", info.Entities["p1"])
	}
	// f2 used twice (evt2 object, evt3 object), filter only on first use.
	if len(info.Entities["f2"].Filters) != 1 {
		t.Errorf("f2 filters = %d", len(info.Entities["f2"].Filters))
	}
	if strings.Join(info.Order[:2], ",") != "p1,f1" {
		t.Errorf("order = %v", info.Order)
	}
}
