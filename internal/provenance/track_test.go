package provenance

import (
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/audit/gen"
)

// leakageHistory parses the data-leakage workload and returns the parser
// (for entity lookup) and its events.
func leakageHistory(t *testing.T, benign int) *audit.Parser {
	t.Helper()
	w := gen.Generate(gen.Config{Seed: 5, BenignEvents: benign,
		Attacks: []gen.Attack{{Kind: gen.AttackDataLeakage, At: 10 * time.Minute}}})
	p := audit.NewParser()
	for _, r := range w.Records {
		if _, err := p.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	return p
}

func findEntity(p *audit.Parser, pred func(*audit.Entity) bool) *audit.Entity {
	for _, e := range p.Entities() {
		if pred(e) {
			return e
		}
	}
	return nil
}

func TestBackwardTrackFromC2(t *testing.T) {
	p := leakageHistory(t, 1000)
	c2 := findEntity(p, func(e *audit.Entity) bool {
		return e.Type == audit.EntityNetConn && e.DstIP == gen.C2IP && e.DstPort == 443
	})
	if c2 == nil {
		t.Fatal("no C2 connection entity")
	}
	sg := Track(p.Events(), c2.ID, TrackOptions{Direction: Backward})

	wantNames := []string{"/usr/bin/curl", "/tmp/upload", "/usr/bin/gpg",
		"/tmp/upload.tar.bz2", "/bin/bzip2", "/tmp/upload.tar", "/bin/tar",
		"/etc/passwd", "/bin/bash", "/usr/sbin/apache2"}
	have := map[string]bool{}
	for id := range sg.EntityIDs {
		if e := p.EntityByID(id); e != nil {
			have[e.Name()] = true
		}
	}
	for _, w := range wantNames {
		if !have[w] {
			t.Errorf("backward track missing %q", w)
		}
	}
}

func TestForwardTrackFromPasswd(t *testing.T) {
	p := leakageHistory(t, 0)
	passwd := findEntity(p, func(e *audit.Entity) bool {
		return e.Type == audit.EntityFile && e.Path == "/etc/passwd"
	})
	if passwd == nil {
		t.Fatal("no /etc/passwd entity")
	}
	sg := Track(p.Events(), passwd.ID, TrackOptions{Direction: Forward})
	var reachedC2 bool
	for id := range sg.EntityIDs {
		if e := p.EntityByID(id); e != nil && e.Type == audit.EntityNetConn && e.DstIP == gen.C2IP {
			reachedC2 = true
		}
	}
	if !reachedC2 {
		t.Error("forward track from /etc/passwd did not reach the C2 connection")
	}
}

func TestTrackTemporalCausality(t *testing.T) {
	// p1 writes f at t=100; p2 reads f at t=50 (before the write).
	// Backward from p2 must NOT include the later write.
	evs := []*audit.Event{
		{ID: 1, SrcID: 1, DstID: 3, Op: audit.OpWrite, StartTime: 100, EndTime: 110},
		{ID: 2, SrcID: 2, DstID: 3, Op: audit.OpRead, StartTime: 50, EndTime: 60},
	}
	sg := Track(evs, 2, TrackOptions{Direction: Backward})
	for _, ev := range sg.Events {
		if ev.ID == 1 {
			t.Error("backward track followed an effect that postdates its cause")
		}
	}
	if len(sg.Events) != 1 || sg.Events[0].ID != 2 {
		t.Errorf("events = %+v", sg.Events)
	}
}

func TestTrackDepthLimit(t *testing.T) {
	// Chain: 1 -> 2 -> 3 -> 4 (writes).
	evs := []*audit.Event{
		{ID: 1, SrcID: 1, DstID: 2, Op: audit.OpWrite, StartTime: 10, EndTime: 11},
		{ID: 2, SrcID: 2, DstID: 3, Op: audit.OpWrite, StartTime: 20, EndTime: 21},
		{ID: 3, SrcID: 3, DstID: 4, Op: audit.OpWrite, StartTime: 30, EndTime: 31},
	}
	sg := Track(evs, 4, TrackOptions{Direction: Backward, MaxDepth: 1})
	if len(sg.Events) != 1 {
		t.Errorf("depth 1 should reach 1 event, got %d", len(sg.Events))
	}
	sg = Track(evs, 4, TrackOptions{Direction: Backward})
	if len(sg.Events) != 3 {
		t.Errorf("unbounded should reach 3 events, got %d", len(sg.Events))
	}
}

func TestTrackMaxEvents(t *testing.T) {
	p := leakageHistory(t, 2000)
	c2 := findEntity(p, func(e *audit.Entity) bool {
		return e.Type == audit.EntityNetConn && e.DstIP == gen.C2IP && e.DstPort == 443
	})
	sg := Track(p.Events(), c2.ID, TrackOptions{Direction: Backward, MaxEvents: 5})
	if len(sg.Events) > 5 {
		t.Errorf("MaxEvents exceeded: %d", len(sg.Events))
	}
}

func TestTrackAtBound(t *testing.T) {
	// Forward from entity 1 with At after the only outgoing event: no
	// events admissible.
	evs := []*audit.Event{
		{ID: 1, SrcID: 1, DstID: 2, Op: audit.OpWrite, StartTime: 10, EndTime: 11},
	}
	sg := Track(evs, 1, TrackOptions{Direction: Forward, At: 100})
	if len(sg.Events) != 0 {
		t.Errorf("time-bounded forward track should be empty, got %d", len(sg.Events))
	}
	sg = Track(evs, 1, TrackOptions{Direction: Forward, At: 5})
	if len(sg.Events) != 1 {
		t.Errorf("admissible event missed")
	}
}

func TestTrackEventsSorted(t *testing.T) {
	p := leakageHistory(t, 500)
	c2 := findEntity(p, func(e *audit.Entity) bool {
		return e.Type == audit.EntityNetConn && e.DstIP == gen.C2IP && e.DstPort == 443
	})
	sg := Track(p.Events(), c2.ID, TrackOptions{Direction: Backward})
	for i := 1; i < len(sg.Events); i++ {
		if sg.Events[i].StartTime < sg.Events[i-1].StartTime {
			t.Fatal("tracked events not sorted")
		}
	}
}
