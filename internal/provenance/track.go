package provenance

import (
	"sort"

	"repro/internal/audit"
)

// Direction selects backward (root-cause) or forward (impact) tracking.
type Direction int

// Tracking directions.
const (
	// Backward follows information flow upstream from a point of
	// interest: "what led to this?"
	Backward Direction = iota
	// Forward follows information flow downstream: "what did this
	// affect?"
	Forward
)

// TrackOptions bounds a causality tracking run.
type TrackOptions struct {
	Direction Direction
	// MaxDepth bounds the number of causal hops (0 = unlimited).
	MaxDepth int
	// MaxEvents stops the expansion after this many events were added
	// (0 = unlimited).
	MaxEvents int
	// At is the reference time (unix ns). Backward tracking only follows
	// events that ended at or before it; forward tracking events that
	// started at or after it. Zero disables the initial time bound.
	At int64
}

// Subgraph is the causal subgraph reached by a tracking run.
type Subgraph struct {
	EntityIDs map[int64]bool
	Events    []*audit.Event
}

// flow returns the information-flow direction of an event as (from, to)
// entity IDs. Reads and receives flow object→subject; writes, sends,
// forks, and control operations flow subject→object.
func flow(ev *audit.Event) (from, to int64) {
	switch ev.Op {
	case audit.OpRead, audit.OpRecv, audit.OpAccept, audit.OpExecute:
		return ev.DstID, ev.SrcID
	default:
		return ev.SrcID, ev.DstID
	}
}

// Track computes the causal subgraph of a point-of-interest entity over
// an event history, enforcing temporal causality: backward tracking
// follows chains of events with non-increasing time (an event can only
// have caused the POI state if it happened before the flow it feeds),
// and forward tracking the reverse.
//
// The events slice is not modified. The returned events are sorted by
// start time.
func Track(events []*audit.Event, poi int64, opt TrackOptions) *Subgraph {
	// Index events by flow endpoint.
	byTo := make(map[int64][]*audit.Event)
	byFrom := make(map[int64][]*audit.Event)
	for _, ev := range events {
		from, to := flow(ev)
		byTo[to] = append(byTo[to], ev)
		byFrom[from] = append(byFrom[from], ev)
	}

	sg := &Subgraph{EntityIDs: map[int64]bool{poi: true}}
	seenEvent := map[int64]bool{}

	type frontier struct {
		entity int64
		bound  int64 // time bound for admissible events
		depth  int
	}
	initBound := opt.At
	if initBound == 0 {
		if opt.Direction == Backward {
			initBound = int64(^uint64(0) >> 1) // max int64
		} else {
			initBound = 0
		}
	}
	queue := []frontier{{entity: poi, bound: initBound, depth: 0}}

	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if opt.MaxDepth > 0 && cur.depth >= opt.MaxDepth {
			continue
		}
		var cands []*audit.Event
		if opt.Direction == Backward {
			cands = byTo[cur.entity]
		} else {
			cands = byFrom[cur.entity]
		}
		for _, ev := range cands {
			if opt.MaxEvents > 0 && len(sg.Events) >= opt.MaxEvents {
				break
			}
			var next int64
			var nextBound int64
			if opt.Direction == Backward {
				if ev.EndTime > cur.bound {
					continue // happened after the state it would explain
				}
				next, _ = flow(ev)
				nextBound = ev.StartTime
			} else {
				if ev.StartTime < cur.bound {
					continue // happened before the state it would carry
				}
				_, next = flow(ev)
				nextBound = ev.EndTime
			}
			if !seenEvent[ev.ID] {
				seenEvent[ev.ID] = true
				sg.Events = append(sg.Events, ev)
			}
			if !sg.EntityIDs[next] {
				sg.EntityIDs[next] = true
				queue = append(queue, frontier{entity: next, bound: nextBound, depth: cur.depth + 1})
			}
		}
	}
	sort.Slice(sg.Events, func(i, j int) bool { return sg.Events[i].StartTime < sg.Events[j].StartTime })
	return sg
}
