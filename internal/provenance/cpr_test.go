package provenance

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/audit"
)

func ev(id, src, dst int64, op audit.OpType, start, end, amount int64) *audit.Event {
	return &audit.Event{ID: id, SrcID: src, DstID: dst, Op: op,
		StartTime: start, EndTime: end, Amount: amount, Host: "h"}
}

func TestReduceEmpty(t *testing.T) {
	out, stats := Reduce(nil)
	if out != nil || stats.In != 0 || stats.Out != 0 {
		t.Errorf("empty reduce: %v %+v", out, stats)
	}
	if stats.ReductionFactor() != 1 {
		t.Errorf("empty reduction factor = %v", stats.ReductionFactor())
	}
}

func TestReduceMergesBurst(t *testing.T) {
	// A burst of writes from proc 1 to file 2 with no interleaving
	// activity collapses into one event.
	var evs []*audit.Event
	for i := int64(0); i < 10; i++ {
		evs = append(evs, ev(i+1, 1, 2, audit.OpWrite, i*100, i*100+50, 10))
	}
	out, stats := Reduce(evs)
	if len(out) != 1 {
		t.Fatalf("want 1 merged event, got %d", len(out))
	}
	m := out[0]
	if m.StartTime != 0 || m.EndTime != 950 || m.Amount != 100 {
		t.Errorf("merged event = start %d end %d amount %d", m.StartTime, m.EndTime, m.Amount)
	}
	if stats.Merged != 9 || stats.In != 10 || stats.Out != 1 {
		t.Errorf("stats = %+v", stats)
	}
	if f := stats.ReductionFactor(); f != 10 {
		t.Errorf("reduction factor = %v, want 10", f)
	}
}

func TestReducePreservesForwardTrackability(t *testing.T) {
	// proc 1 writes file 2 twice, but file 2 is read by proc 3 between
	// the writes (an outbound event of the object). Merging would extend
	// the first write past the read, corrupting forward tracking, so the
	// writes must NOT merge.
	evs := []*audit.Event{
		ev(1, 1, 2, audit.OpWrite, 0, 10, 5),
		ev(2, 2, 9, audit.OpSend, 50, 60, 1), // object 2 propagates state onward
		ev(3, 1, 2, audit.OpWrite, 100, 110, 5),
	}
	out, _ := Reduce(evs)
	writes := 0
	for _, e := range out {
		if e.Op == audit.OpWrite {
			writes++
		}
	}
	if writes != 2 {
		t.Errorf("writes merged across object outbound event: got %d write events", writes)
	}
}

func TestReducePreservesBackwardTrackability(t *testing.T) {
	// proc 1 reads file 2 twice, but proc 1 receives data (inbound event)
	// between the reads. Merging would backdate the second read to before
	// proc 1's state changed, so the reads must NOT merge.
	evs := []*audit.Event{
		ev(1, 1, 2, audit.OpRead, 0, 10, 5),
		ev(2, 9, 1, audit.OpFork, 50, 60, 0), // subject 1 gains new provenance
		ev(3, 1, 2, audit.OpRead, 100, 110, 5),
	}
	out, _ := Reduce(evs)
	reads := 0
	for _, e := range out {
		if e.Op == audit.OpRead {
			reads++
		}
	}
	if reads != 2 {
		t.Errorf("reads merged across subject inbound event: got %d read events", reads)
	}
}

func TestReduceDifferentOpsNotMerged(t *testing.T) {
	evs := []*audit.Event{
		ev(1, 1, 2, audit.OpRead, 0, 10, 5),
		ev(2, 1, 2, audit.OpWrite, 20, 30, 5),
	}
	out, _ := Reduce(evs)
	if len(out) != 2 {
		t.Errorf("read and write merged: got %d events", len(out))
	}
}

func TestReduceOverlappingEventsMerge(t *testing.T) {
	// Overlapping events in the same stream always merge (empty gap).
	evs := []*audit.Event{
		ev(1, 1, 2, audit.OpWrite, 0, 100, 5),
		ev(2, 3, 1, audit.OpFork, 50, 55, 0), // inside the first event, not in a gap
		ev(3, 1, 2, audit.OpWrite, 80, 120, 5),
	}
	out, _ := Reduce(evs)
	writes := 0
	for _, e := range out {
		if e.Op == audit.OpWrite {
			writes++
		}
	}
	if writes != 1 {
		t.Errorf("overlapping writes should merge: got %d", writes)
	}
}

func TestReduceDoesNotMutateInput(t *testing.T) {
	e1 := ev(1, 1, 2, audit.OpWrite, 0, 10, 5)
	e2 := ev(2, 1, 2, audit.OpWrite, 20, 30, 7)
	Reduce([]*audit.Event{e1, e2})
	if e1.Amount != 5 || e1.EndTime != 10 || e2.Amount != 7 {
		t.Error("Reduce mutated input events")
	}
}

func TestReduceOutputSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var evs []*audit.Event
	for i := 0; i < 500; i++ {
		src := int64(1 + rng.Intn(5))
		dst := int64(10 + rng.Intn(5))
		st := rng.Int63n(10000)
		evs = append(evs, ev(int64(i), src, dst, audit.OpWrite, st, st+5, 1))
	}
	out, _ := Reduce(evs)
	for i := 1; i < len(out); i++ {
		if out[i].StartTime < out[i-1].StartTime {
			t.Fatalf("output not sorted at %d", i)
		}
	}
}

// Property: reduction preserves total amount and never increases event
// count; every output stream's amount equals the input stream's amount.
func TestReduceConservationProperty(t *testing.T) {
	type key struct {
		src, dst int64
		op       audit.OpType
	}
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var evs []*audit.Event
		for i := 0; i < int(n); i++ {
			st := rng.Int63n(1000)
			evs = append(evs, ev(int64(i), int64(1+rng.Intn(4)), int64(5+rng.Intn(4)),
				audit.OpType([]audit.OpType{audit.OpRead, audit.OpWrite}[rng.Intn(2)]),
				st, st+rng.Int63n(50), rng.Int63n(100)))
		}
		inAmt := make(map[key]int64)
		for _, e := range evs {
			inAmt[key{e.SrcID, e.DstID, e.Op}] += e.Amount
		}
		out, stats := Reduce(evs)
		if len(out) > len(evs) || stats.Out != len(out) || stats.In != len(evs) {
			return false
		}
		outAmt := make(map[key]int64)
		for _, e := range out {
			outAmt[key{e.SrcID, e.DstID, e.Op}] += e.Amount
			if e.EndTime < e.StartTime {
				return false
			}
		}
		if len(inAmt) != len(outAmt) {
			return len(evs) == 0
		}
		for k, v := range inAmt {
			if outAmt[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: idempotence — reducing a reduced stream changes nothing.
func TestReduceIdempotentProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var evs []*audit.Event
		for i := 0; i < int(n); i++ {
			st := rng.Int63n(500)
			evs = append(evs, ev(int64(i), int64(1+rng.Intn(3)), int64(4+rng.Intn(3)),
				audit.OpWrite, st, st+rng.Int63n(20), 1))
		}
		once, _ := Reduce(evs)
		twice, stats := Reduce(once)
		if stats.Merged != 0 || len(twice) != len(once) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
