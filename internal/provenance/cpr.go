// Package provenance implements provenance-aware processing of system
// audit events, most importantly Causality Preserved Reduction (CPR, Xu et
// al., CCS'16), which ThreatRaptor applies before storage to merge
// excessive events between the same pair of entities while preserving the
// forward- and backward-trackability needed by causality analysis.
package provenance

import (
	"sort"

	"repro/internal/audit"
)

// CPRStats summarises one reduction run.
type CPRStats struct {
	In      int // events before reduction
	Out     int // events after reduction
	Merged  int // events absorbed into an earlier event
	Streams int // distinct (subject, object, operation) streams observed
}

// ReductionFactor returns In/Out, the metric reported by the CPR paper.
func (s CPRStats) ReductionFactor() float64 {
	if s.Out == 0 {
		if s.In == 0 {
			return 1
		}
		return float64(s.In)
	}
	return float64(s.In) / float64(s.Out)
}

// Reduce applies Causality Preserved Reduction to events. Two events in
// the same ⟨subject, object, operation⟩ stream are merged when doing so
// cannot change the result of any forward or backward causality query:
//
//   - the subject must have no *inbound* event (an event whose object is
//     the subject) strictly inside the gap between the two events —
//     otherwise merging would backdate the subject's post-gap activity to
//     before its state could have changed (backward trackability);
//   - the object must have no *outbound* event (an event whose subject is
//     the object) strictly inside the gap — otherwise merging would extend
//     data flow into the object past a point where the object already
//     propagated its state onward (forward trackability).
//
// Merged events keep the earliest start time, the latest end time, and
// the summed amount. Input order is not modified; the returned slice is
// sorted by start time. Events are not mutated; merged events are copies.
func Reduce(events []*audit.Event) ([]*audit.Event, CPRStats) {
	stats := CPRStats{In: len(events)}
	if len(events) == 0 {
		return nil, stats
	}

	// Timelines of inbound event times per entity (entity is the object)
	// and outbound event times per entity (entity is the subject).
	inbound := make(map[int64][]int64)
	outbound := make(map[int64][]int64)
	for _, ev := range events {
		outbound[ev.SrcID] = append(outbound[ev.SrcID], ev.StartTime)
		inbound[ev.DstID] = append(inbound[ev.DstID], ev.StartTime)
	}
	for _, ts := range inbound {
		sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	}
	for _, ts := range outbound {
		sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	}

	// anyIn reports whether ts contains a value in the open interval
	// (lo, hi).
	anyIn := func(ts []int64, lo, hi int64) bool {
		i := sort.Search(len(ts), func(i int) bool { return ts[i] > lo })
		return i < len(ts) && ts[i] < hi
	}

	type streamKey struct {
		src, dst int64
		op       audit.OpType
	}
	streams := make(map[streamKey][]*audit.Event)
	var order []streamKey
	for _, ev := range events {
		k := streamKey{ev.SrcID, ev.DstID, ev.Op}
		if _, seen := streams[k]; !seen {
			order = append(order, k)
		}
		streams[k] = append(streams[k], ev)
	}
	stats.Streams = len(streams)

	var out []*audit.Event
	for _, k := range order {
		evs := streams[k]
		sort.Slice(evs, func(i, j int) bool { return evs[i].StartTime < evs[j].StartTime })
		cur := *evs[0] // copy; never mutate caller's events
		for _, ev := range evs[1:] {
			gapLo, gapHi := cur.EndTime, ev.StartTime
			mergeable := gapHi <= gapLo ||
				(!anyIn(inbound[k.src], gapLo, gapHi) && !anyIn(outbound[k.dst], gapLo, gapHi))
			if mergeable {
				if ev.EndTime > cur.EndTime {
					cur.EndTime = ev.EndTime
				}
				cur.Amount += ev.Amount
				stats.Merged++
				continue
			}
			c := cur
			out = append(out, &c)
			cur = *ev
		}
		c := cur
		out = append(out, &c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].StartTime < out[j].StartTime })
	stats.Out = len(out)
	return out, stats
}
