package graphstore

import (
	"sync"
	"testing"
)

// epochGraph builds a bootstrapped graph with a process fanning reads
// out to n files.
func epochGraph(t testing.TB, n int) *Graph {
	t.Helper()
	g := NewGraph()
	Bootstrap(g)
	if _, err := g.AddNode(Node{ID: 1, Label: LabelProcess,
		Props: map[string]Value{"exename": TextValue("/bin/a")}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		addReadFile(t, g, int64(i+2), int64(i))
	}
	return g
}

func addReadFile(t testing.TB, g *Graph, fileID, start int64) {
	t.Helper()
	if g.Node(fileID) == nil {
		if _, err := g.AddNode(Node{ID: fileID, Label: LabelFile,
			Props: map[string]Value{"name": TextValue("/x")}}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := g.AddEdge(Edge{From: 1, To: fileID, Label: EdgeEvent,
		Props: map[string]Value{"optype": TextValue("read"), "starttime": IntValue(start)}}); err != nil {
		t.Fatal(err)
	}
}

const epochCypher = `MATCH (a:Process {exename: '/bin/a'})-[e:EVENT {optype: 'read'}]->(b:File) RETURN a, b, e.starttime`

// TestQueryAtInvisibleAppends: nodes and edges added after a mark are
// invisible to a bounded query at that mark — through the property
// index, label scans, adjacency expansion, and endpoint lookups — while
// an unbounded query sees everything.
func TestQueryAtInvisibleAppends(t *testing.T) {
	g := epochGraph(t, 5)
	mark := g.Mark()
	for i := 5; i < 12; i++ {
		addReadFile(t, g, int64(i+2), int64(i))
	}

	rr, err := g.QueryAt(epochCypher, mark)
	if err != nil {
		t.Fatal(err)
	}
	if len(rr.Data) != 5 {
		t.Fatalf("bounded query saw %d rows, want the 5 at the mark", len(rr.Data))
	}
	live, err := g.Query(epochCypher)
	if err != nil {
		t.Fatal(err)
	}
	if len(live.Data) != 12 {
		t.Fatalf("live query saw %d rows, want 12", len(live.Data))
	}

	// A mark from before any data sees an empty graph.
	empty, err := g.QueryAt(epochCypher, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(empty.Data) != 0 {
		t.Fatalf("mark-0 query saw %d rows, want 0", len(empty.Data))
	}
}

// TestQueryAtVarLenPaths: variable-length expansion must not traverse
// post-mark edges, even mid-path.
func TestQueryAtVarLenPaths(t *testing.T) {
	g := NewGraph()
	Bootstrap(g)
	// Chain p1 -> f2 -> p3 (two hops through distinct nodes).
	for id, label := range map[int64]string{1: LabelProcess, 2: LabelFile, 3: LabelProcess} {
		if _, err := g.AddNode(Node{ID: id, Label: label,
			Props: map[string]Value{"name": TextValue("n")}}); err != nil {
			t.Fatal(err)
		}
	}
	mustEdge := func(from, to int64) {
		if _, err := g.AddEdge(Edge{From: from, To: to, Label: EdgeEvent,
			Props: map[string]Value{"optype": TextValue("read")}}); err != nil {
			t.Fatal(err)
		}
	}
	mustEdge(1, 2)
	mark := g.Mark()
	mustEdge(2, 3) // post-mark second hop

	const pathQ = `MATCH (a)-[:EVENT*1..3]->(b) RETURN a, b`
	bounded, err := g.QueryAt(pathQ, mark)
	if err != nil {
		t.Fatal(err)
	}
	if len(bounded.Data) != 1 {
		t.Fatalf("bounded paths = %d, want 1 (only the pre-mark hop)", len(bounded.Data))
	}
	live, err := g.Query(pathQ)
	if err != nil {
		t.Fatal(err)
	}
	if len(live.Data) != 3 {
		t.Fatalf("live paths = %d, want 3 (1->2, 2->3, 1->2->3)", len(live.Data))
	}
}

// TestQueryAtConcurrentWriters: bounded queries race writers; the
// result set at a fixed mark never drifts (run with -race).
func TestQueryAtConcurrentWriters(t *testing.T) {
	g := epochGraph(t, 20)
	mark := g.Mark()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			addReadFile(t, g, int64(1000+i), int64(1000+i))
		}
	}()

	for i := 0; i < 100; i++ {
		rr, err := g.QueryAt(epochCypher, mark)
		if err != nil {
			t.Fatal(err)
		}
		if len(rr.Data) != 20 {
			t.Fatalf("iteration %d: bounded query saw %d rows, want 20", i, len(rr.Data))
		}
	}
	close(stop)
	wg.Wait()
}
