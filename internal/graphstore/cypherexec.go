package graphstore

import (
	"fmt"
	"strings"
)

// Rows is a Cypher query result set.
type Rows struct {
	Cols []string
	Data [][]Value
}

// ExecStats reports how a query was executed.
type ExecStats struct {
	NodesVisited  int
	EdgesExpanded int
	IndexLookups  int
	LabelScans    int
}

// binding is the value bound to a pattern variable: a node, a single edge,
// or a variable-length path (edge list).
type binding struct {
	node *Node
	edge *Edge
	path []*Edge
}

// Query parses and executes a Cypher query.
func (g *Graph) Query(src string) (*Rows, error) {
	rows, _, err := g.QueryStats(src)
	return rows, err
}

// QueryStats is Query plus execution statistics.
func (g *Graph) QueryStats(src string) (*Rows, ExecStats, error) {
	q, err := ParseCypher(src)
	if err != nil {
		return nil, ExecStats{}, err
	}
	return g.Exec(q)
}

// QueryAt parses and executes a Cypher query bounded at an epoch
// watermark (Mark): nodes and edges inserted after the mark are
// invisible, so the traversal observes the exact graph the mark named
// even while writers keep ingesting. The read lock is held only for the
// duration of this one statement — a reader holding a mark between
// statements costs writers nothing — which is what lets a long-lived
// hunt cursor pin an epoch instead of the lock.
func (g *Graph) QueryAt(src string, mark uint64) (*Rows, error) {
	q, err := ParseCypher(src)
	if err != nil {
		return nil, err
	}
	g.mu.RLock()
	defer g.mu.RUnlock()
	ex := &cexec{g: g, q: q, env: map[string]binding{}, bounded: true, mark: mark}
	rows, _, err := g.run(ex)
	return rows, err
}

// Exec executes a parsed query under the graph's read lock, held for the
// whole statement so the traversal sees one consistent snapshot while
// writers ingest.
func (g *Graph) Exec(q *CypherQuery) (*Rows, ExecStats, error) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.execLocked(q)
}

// execLocked runs a parsed query; the caller holds g.mu (read side).
func (g *Graph) execLocked(q *CypherQuery) (*Rows, ExecStats, error) {
	return g.run(&cexec{g: g, q: q, env: map[string]binding{}})
}

// run drives a prepared cexec; the caller holds g.mu (read side).
func (g *Graph) run(ex *cexec) (*Rows, ExecStats, error) {
	if err := ex.validate(); err != nil {
		return nil, ex.stats, err
	}
	if err := ex.chain(0); err != nil && err != errRowCap {
		return nil, ex.stats, err
	}

	q := ex.q
	out := ex.out
	if q.Distinct {
		seen := map[string]bool{}
		dst := out[:0]
		for _, row := range out {
			var b strings.Builder
			for _, v := range row {
				b.WriteString(valueKey(v))
				b.WriteByte('\x00')
			}
			k := b.String()
			if !seen[k] {
				seen[k] = true
				dst = append(dst, row)
			}
		}
		out = dst
	}
	if q.Limit >= 0 && len(out) > q.Limit {
		out = out[:q.Limit]
	}
	cols := make([]string, len(q.Items))
	for i, it := range q.Items {
		switch {
		case it.Alias != "":
			cols[i] = it.Alias
		case it.Prop != "":
			cols[i] = it.Var + "." + it.Prop
		default:
			cols[i] = it.Var
		}
	}
	return &Rows{Cols: cols, Data: out}, ex.stats, nil
}

type cexec struct {
	g     *Graph
	q     *CypherQuery
	env   map[string]binding
	out   [][]Value
	stats ExecStats

	// bounded/mark implement epoch visibility (QueryAt): when bounded,
	// nodes and edges with seq > mark are treated as absent.
	bounded bool
	mark    uint64

	// params are the execution's `$k` bindings (prepared queries); nil
	// for plain text queries, which cannot reference parameters.
	params *CParams

	// rowCap is a per-execution result cap (0 = none): emit aborts the
	// traversal with errRowCap once this many rows are produced. Only
	// set for non-DISTINCT queries, where the first rowCap emissions
	// are exactly a prefix of the full result.
	rowCap int
}

// errRowCap is the sentinel emit throws to unwind the traversal when a
// per-execution row cap is reached; run swallows it.
var errRowCap = fmt.Errorf("graphstore: row cap reached")

// visibleNode reports whether the node exists at the query's epoch mark.
func (ex *cexec) visibleNode(n *Node) bool {
	return !ex.bounded || n.seq <= ex.mark
}

// visibleEdge reports whether the edge exists at the query's epoch mark.
func (ex *cexec) visibleEdge(e *Edge) bool {
	return !ex.bounded || e.seq <= ex.mark
}

// visibleNodes filters a candidate list down to the query's epoch mark.
// Index and label lists are append-only in insertion order, so the
// common case — nothing ingested past the mark — returns the input
// unchanged after a prefix check; otherwise the visible prefix is kept
// as a shared sub-slice and later stragglers (lists sorted by ID rather
// than insertion, e.g. the all-nodes scan) are appended to a copy.
func (ex *cexec) visibleNodes(ns []*Node) []*Node {
	if !ex.bounded {
		return ns
	}
	i := 0
	for i < len(ns) && ns[i].seq <= ex.mark {
		i++
	}
	if i == len(ns) {
		return ns
	}
	out := ns[:i:i]
	for _, n := range ns[i:] {
		if n.seq <= ex.mark {
			out = append(out, n)
		}
	}
	return out
}

// validate checks that every RETURN and WHERE variable is defined by some
// pattern.
func (ex *cexec) validate() error {
	defined := map[string]bool{}
	for _, ch := range ex.q.Chains {
		for _, n := range ch.Nodes {
			if n.Var != "" {
				defined[n.Var] = true
			}
		}
		for _, r := range ch.Rels {
			if r.Var != "" {
				defined[r.Var] = true
			}
		}
	}
	for _, it := range ex.q.Items {
		if !defined[it.Var] {
			return fmt.Errorf("graphstore: RETURN references undefined variable %q", it.Var)
		}
	}
	var check func(e CExpr) error
	check = func(e CExpr) error {
		switch x := e.(type) {
		case CBin:
			if err := check(x.L); err != nil {
				return err
			}
			return check(x.R)
		case CNot:
			return check(x.E)
		case CCmp:
			for _, op := range []COperand{x.L, x.R} {
				if op.IsParam {
					if _, ok := ex.params.intVal(op.Slot); !ok {
						return errUnboundParam(op.Slot)
					}
					continue
				}
				if !op.IsLit && !defined[op.Var] {
					return fmt.Errorf("graphstore: WHERE references undefined variable %q", op.Var)
				}
			}
			return nil
		case CInParam:
			if !defined[x.L.Var] {
				return fmt.Errorf("graphstore: WHERE references undefined variable %q", x.L.Var)
			}
			if _, ok := ex.params.set(x.Slot); !ok {
				return errUnboundParam(x.Slot)
			}
			return nil
		}
		return nil
	}
	if ex.q.Where != nil {
		return check(ex.q.Where)
	}
	return nil
}

// chain matches the i-th pattern chain, then recurses to the next.
func (ex *cexec) chain(i int) error {
	if i == len(ex.q.Chains) {
		return ex.emit()
	}
	ch := ex.q.Chains[i]
	return ex.matchNode(ch, 0, i)
}

// matchNode binds chain node j, then expands rel j if any.
func (ex *cexec) matchNode(ch PatternChain, j, chainIdx int) error {
	np := ch.Nodes[j]

	proceed := func(n *Node) error {
		ex.stats.NodesVisited++
		if !ex.nodeMatches(n, np) {
			return nil
		}
		bound := false
		if np.Var != "" {
			if _, exists := ex.env[np.Var]; !exists {
				ex.env[np.Var] = binding{node: n}
				bound = true
			}
		}
		var err error
		if j == len(ch.Nodes)-1 {
			err = ex.chain(chainIdx + 1)
		} else {
			err = ex.expandRel(ch, j, chainIdx, n)
		}
		if bound {
			delete(ex.env, np.Var)
		}
		return err
	}

	// Already bound variable: single candidate.
	if np.Var != "" {
		if b, ok := ex.env[np.Var]; ok {
			if b.node == nil {
				return fmt.Errorf("graphstore: variable %q is not a node", np.Var)
			}
			return proceed(b.node)
		}
	}
	for _, n := range ex.candidates(np) {
		if err := proceed(n); err != nil {
			return err
		}
	}
	return nil
}

// candidates enumerates nodes that can match a node pattern, preferring a
// property index.
func (ex *cexec) candidates(np NodePattern) []*Node {
	if np.Label != "" && len(np.Props) > 0 {
		for prop, v := range np.Props {
			if nodes, indexed := ex.g.nodesByPropLocked(np.Label, prop, v); indexed {
				ex.stats.IndexLookups++
				return ex.visibleNodes(nodes)
			}
		}
	}
	ex.stats.LabelScans++
	return ex.visibleNodes(ex.g.nodesByLabelLocked(np.Label))
}

// expandRel expands relationship j of the chain from node n.
func (ex *cexec) expandRel(ch PatternChain, j, chainIdx int, n *Node) error {
	rp := ch.Rels[j]
	if !rp.VarLen {
		for _, e := range ex.g.out[n.ID] {
			if !ex.visibleEdge(e) {
				continue
			}
			ex.stats.EdgesExpanded++
			if !ex.edgeMatches(e, rp) {
				continue
			}
			bound := false
			if rp.Var != "" {
				if _, exists := ex.env[rp.Var]; exists {
					// Rel variables cannot be reused.
					return fmt.Errorf("graphstore: relationship variable %q reused", rp.Var)
				}
				ex.env[rp.Var] = binding{edge: e}
				bound = true
			}
			err := ex.continueToNode(ch, j, chainIdx, e.To)
			if bound {
				delete(ex.env, rp.Var)
			}
			if err != nil {
				return err
			}
		}
		return nil
	}

	// Variable-length: DFS with per-path edge uniqueness.
	var path []*Edge
	used := map[int64]bool{}
	var dfs func(cur int64, depth int) error
	dfs = func(cur int64, depth int) error {
		if depth >= rp.MinHops {
			bound := false
			if rp.Var != "" {
				if _, exists := ex.env[rp.Var]; exists {
					return fmt.Errorf("graphstore: relationship variable %q reused", rp.Var)
				}
				cp := make([]*Edge, len(path))
				copy(cp, path)
				ex.env[rp.Var] = binding{path: cp}
				bound = true
			}
			err := ex.continueToNode(ch, j, chainIdx, cur)
			if bound {
				delete(ex.env, rp.Var)
			}
			if err != nil {
				return err
			}
		}
		if depth == rp.MaxHops {
			return nil
		}
		for _, e := range ex.g.out[cur] {
			if !ex.visibleEdge(e) {
				continue
			}
			if used[e.ID] {
				continue
			}
			ex.stats.EdgesExpanded++
			if !ex.edgeMatches(e, rp) {
				continue
			}
			used[e.ID] = true
			path = append(path, e)
			err := dfs(e.To, depth+1)
			path = path[:len(path)-1]
			delete(used, e.ID)
			if err != nil {
				return err
			}
		}
		return nil
	}
	return dfs(n.ID, 0)
}

// continueToNode matches chain node j+1 against the concrete node id
// reached through relationship j.
func (ex *cexec) continueToNode(ch PatternChain, j, chainIdx int, id int64) error {
	np := ch.Nodes[j+1]
	n := ex.g.nodes[id]
	if n == nil || !ex.visibleNode(n) {
		return nil
	}
	ex.stats.NodesVisited++
	if !ex.nodeMatches(n, np) {
		return nil
	}
	if np.Var != "" {
		if b, exists := ex.env[np.Var]; exists {
			// Joining back to an already-bound node: must be identical.
			if b.node == nil || b.node.ID != n.ID {
				return nil
			}
		} else {
			ex.env[np.Var] = binding{node: n}
			defer delete(ex.env, np.Var)
		}
	}
	if j+1 == len(ch.Nodes)-1 {
		return ex.chain(chainIdx + 1)
	}
	return ex.expandRel(ch, j+1, chainIdx, n)
}

func (ex *cexec) nodeMatches(n *Node, np NodePattern) bool {
	if np.Label != "" && n.Label != np.Label {
		return false
	}
	for prop, want := range np.Props {
		got, ok := n.Prop(prop)
		if !ok || Compare(got, want) != 0 {
			return false
		}
	}
	return true
}

func (ex *cexec) edgeMatches(e *Edge, rp RelPattern) bool {
	if rp.Label != "" && e.Label != rp.Label {
		return false
	}
	for prop, want := range rp.Props {
		got, ok := e.Prop(prop)
		if !ok || Compare(got, want) != 0 {
			return false
		}
	}
	return true
}

// emit evaluates WHERE for the full binding and projects a row.
func (ex *cexec) emit() error {
	if ex.q.Where != nil {
		ok, err := ex.evalExpr(ex.q.Where)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
	}
	row := make([]Value, len(ex.q.Items))
	for i, it := range ex.q.Items {
		v, err := ex.itemValue(it)
		if err != nil {
			return err
		}
		row[i] = v
	}
	ex.out = append(ex.out, row)
	if ex.rowCap > 0 && len(ex.out) >= ex.rowCap {
		return errRowCap
	}
	return nil
}

func (ex *cexec) itemValue(it ReturnItem) (Value, error) {
	b, ok := ex.env[it.Var]
	if !ok {
		return Value{}, fmt.Errorf("graphstore: unbound variable %q", it.Var)
	}
	prop := it.Prop
	if prop == "" {
		prop = "id"
	}
	switch {
	case b.node != nil:
		v, ok := b.node.Prop(prop)
		if !ok {
			return TextValue(""), nil
		}
		return v, nil
	case b.edge != nil:
		v, ok := b.edge.Prop(prop)
		if !ok {
			return TextValue(""), nil
		}
		return v, nil
	case b.path != nil:
		if prop == "id" {
			// Project a path as its hop count.
			return IntValue(int64(len(b.path))), nil
		}
		// Project a path property as the final hop's property.
		if len(b.path) == 0 {
			return TextValue(""), nil
		}
		v, ok := b.path[len(b.path)-1].Prop(prop)
		if !ok {
			return TextValue(""), nil
		}
		return v, nil
	default:
		return Value{}, fmt.Errorf("graphstore: variable %q has no value", it.Var)
	}
}

func (ex *cexec) evalExpr(e CExpr) (bool, error) {
	switch x := e.(type) {
	case CBin:
		l, err := ex.evalExpr(x.L)
		if err != nil {
			return false, err
		}
		if x.Op == "and" {
			if !l {
				return false, nil
			}
			return ex.evalExpr(x.R)
		}
		if l {
			return true, nil
		}
		return ex.evalExpr(x.R)
	case CNot:
		v, err := ex.evalExpr(x.E)
		return !v, err
	case CInParam:
		set, ok := ex.params.set(x.Slot)
		if !ok {
			return false, errUnboundParam(x.Slot)
		}
		v, err := ex.itemValue(ReturnItem{Var: x.L.Var, Prop: x.L.Prop})
		if err != nil {
			return false, err
		}
		if !v.IsInt {
			return false, nil
		}
		return set.has(v.Int), nil
	case CCmp:
		l, err := ex.operandValue(x.L)
		if err != nil {
			return false, err
		}
		r, err := ex.operandValue(x.R)
		if err != nil {
			return false, err
		}
		switch x.Op {
		case "=":
			return Compare(l, r) == 0, nil
		case "<>":
			return Compare(l, r) != 0, nil
		case "<":
			return Compare(l, r) < 0, nil
		case "<=":
			return Compare(l, r) <= 0, nil
		case ">":
			return Compare(l, r) > 0, nil
		case ">=":
			return Compare(l, r) >= 0, nil
		case "contains":
			return strings.Contains(l.String(), r.String()), nil
		case "startswith":
			return strings.HasPrefix(l.String(), r.String()), nil
		case "endswith":
			return strings.HasSuffix(l.String(), r.String()), nil
		case "=~":
			re, err := compileRegex(r.String())
			if err != nil {
				return false, err
			}
			return re.MatchString(l.String()), nil
		}
		return false, fmt.Errorf("graphstore: unknown operator %q", x.Op)
	default:
		return false, fmt.Errorf("graphstore: unknown expression %T", e)
	}
}

func (ex *cexec) operandValue(op COperand) (Value, error) {
	if op.IsLit {
		return op.Lit, nil
	}
	if op.IsParam {
		v, ok := ex.params.intVal(op.Slot)
		if !ok {
			return Value{}, errUnboundParam(op.Slot)
		}
		return IntValue(v), nil
	}
	return ex.itemValue(ReturnItem{Var: op.Var, Prop: op.Prop})
}
