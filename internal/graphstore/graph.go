// Package graphstore is an embedded property-graph database engine. It
// stands in for Neo4j in ThreatRaptor's storage component: system entities
// are stored as labelled nodes, system events as typed edges, and the TBQL
// execution engine compiles variable-length event path patterns into
// Cypher text that this package parses and executes.
//
// The Cypher subset supported is the one ThreatRaptor's compiler emits:
//
//	MATCH (a:Process {exename: '...'})-[e:EVENT {optype: 'read'}]->(b:File),
//	      (b)-[:EVENT*0..3]->(c)
//	WHERE a.pid > 100 AND b.name CONTAINS 'upload'
//	RETURN DISTINCT a.exename, b.name LIMIT 10
//
// with comparison operators, CONTAINS / STARTS WITH / ENDS WITH, regular
// expression matching (=~), AND/OR/NOT, and variable-length relationships
// with hop bounds.
package graphstore

import (
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Value is a property value: an integer or a string.
type Value struct {
	IsInt bool
	Int   int64
	Str   string
}

// IntValue makes an integer property value.
func IntValue(v int64) Value { return Value{IsInt: true, Int: v} }

// TextValue makes a string property value.
func TextValue(s string) Value { return Value{Str: s} }

// String renders the value.
func (v Value) String() string {
	if v.IsInt {
		return strconv.FormatInt(v.Int, 10)
	}
	return v.Str
}

// Cypher renders the value as a Cypher literal.
func (v Value) Cypher() string {
	if v.IsInt {
		return strconv.FormatInt(v.Int, 10)
	}
	return "'" + strings.ReplaceAll(v.Str, "'", "\\'") + "'"
}

// Compare orders two values; ints before coercion, mirroring relstore.
func Compare(a, b Value) int {
	if a.IsInt && b.IsInt {
		switch {
		case a.Int < b.Int:
			return -1
		case a.Int > b.Int:
			return 1
		default:
			return 0
		}
	}
	if a.IsInt != b.IsInt {
		// Coerce text to int when possible.
		if a.IsInt {
			if n, err := strconv.ParseInt(strings.TrimSpace(b.Str), 10, 64); err == nil {
				return Compare(a, IntValue(n))
			}
			return strings.Compare(strconv.FormatInt(a.Int, 10), b.Str)
		}
		return -Compare(b, a)
	}
	return strings.Compare(a.Str, b.Str)
}

// Node is a labelled node with properties.
type Node struct {
	ID    int64
	Label string
	Props map[string]Value

	// seq is the graph-assigned insertion sequence number, the epoch
	// visibility watermark: a bounded query at mark M sees this node iff
	// seq <= M.
	seq uint64
}

// Prop returns a property value and whether it exists. The pseudo-property
// "id" always resolves to the node ID.
func (n *Node) Prop(name string) (Value, bool) {
	if strings.EqualFold(name, "id") {
		return IntValue(n.ID), true
	}
	v, ok := n.Props[strings.ToLower(name)]
	return v, ok
}

// Edge is a typed directed edge with properties.
type Edge struct {
	ID    int64
	From  int64
	To    int64
	Label string
	Props map[string]Value

	// seq is the graph-assigned insertion sequence number (see Node.seq).
	seq uint64
}

// Prop returns a property value; "id" resolves to the edge ID.
func (e *Edge) Prop(name string) (Value, bool) {
	if strings.EqualFold(name, "id") {
		return IntValue(e.ID), true
	}
	v, ok := e.Props[strings.ToLower(name)]
	return v, ok
}

// Graph is an in-memory property graph with label and property indexes.
// It is safe for concurrent reads interleaved with single-writer loads
// guarded by its mutex.
type Graph struct {
	mu    sync.RWMutex
	nodes map[int64]*Node
	edges map[int64]*Edge
	out   map[int64][]*Edge
	in    map[int64][]*Edge

	byLabel map[string][]*Node
	// propIdx: label -> property -> value key -> nodes.
	propIdx map[string]map[string]map[string][]*Node
	nextID  int64

	// seq counts insertions (nodes and edges share one sequence). Its
	// value at any instant is an epoch watermark: a bounded query at
	// mark M (Mark, QueryAt) sees exactly the nodes and edges with
	// seq <= M, so readers pinned at a mark observe one immutable cut
	// while writers keep appending.
	seq uint64

	// stats holds ingest-time cardinality sketches for the cost-based
	// optimizer (stats.go); nil until EnableStats.
	stats *graphStats
}

// NewGraph creates an empty graph.
func NewGraph() *Graph {
	return &Graph{
		nodes:   make(map[int64]*Node),
		edges:   make(map[int64]*Edge),
		out:     make(map[int64][]*Edge),
		in:      make(map[int64][]*Edge),
		byLabel: make(map[string][]*Node),
		propIdx: make(map[string]map[string]map[string][]*Node),
	}
}

func valueKey(v Value) string {
	if v.IsInt {
		return "i" + strconv.FormatInt(v.Int, 10)
	}
	return "t" + v.Str
}

// AddNode inserts a node. A zero ID is assigned automatically; property
// keys are lowercased. Returns the stored node.
func (g *Graph) AddNode(n Node) (*Node, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if n.ID == 0 {
		g.nextID++
		n.ID = g.nextID
	} else if n.ID > g.nextID {
		g.nextID = n.ID
	}
	if _, dup := g.nodes[n.ID]; dup {
		return nil, fmt.Errorf("graphstore: node %d already exists", n.ID)
	}
	props := make(map[string]Value, len(n.Props))
	for k, v := range n.Props {
		props[strings.ToLower(k)] = v
	}
	n.Props = props
	n.Label = strings.ToLower(n.Label)
	g.seq++
	n.seq = g.seq
	if g.stats != nil {
		g.stats.observeNode(n.seq)
	}
	stored := &n
	g.nodes[n.ID] = stored
	g.byLabel[n.Label] = append(g.byLabel[n.Label], stored)
	if byProp, ok := g.propIdx[n.Label]; ok {
		for prop, idx := range byProp {
			if v, has := stored.Props[prop]; has {
				idx[valueKey(v)] = append(idx[valueKey(v)], stored)
			}
		}
	}
	return stored, nil
}

// AddEdge inserts an edge between existing nodes.
func (g *Graph) AddEdge(e Edge) (*Edge, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.nodes[e.From]; !ok {
		return nil, fmt.Errorf("graphstore: edge source node %d missing", e.From)
	}
	if _, ok := g.nodes[e.To]; !ok {
		return nil, fmt.Errorf("graphstore: edge target node %d missing", e.To)
	}
	if e.ID == 0 {
		g.nextID++
		e.ID = g.nextID
	}
	if _, dup := g.edges[e.ID]; dup {
		return nil, fmt.Errorf("graphstore: edge %d already exists", e.ID)
	}
	props := make(map[string]Value, len(e.Props))
	for k, v := range e.Props {
		props[strings.ToLower(k)] = v
	}
	e.Props = props
	e.Label = strings.ToLower(e.Label)
	g.seq++
	e.seq = g.seq
	stored := &e
	if g.stats != nil {
		g.stats.observeEdge(stored)
	}
	g.edges[e.ID] = stored
	g.out[e.From] = append(g.out[e.From], stored)
	g.in[e.To] = append(g.in[e.To], stored)
	return stored, nil
}

// CreateNodeIndex builds a property index for (label, property) so that
// equality lookups avoid label scans.
func (g *Graph) CreateNodeIndex(label, prop string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	label = strings.ToLower(label)
	prop = strings.ToLower(prop)
	byProp := g.propIdx[label]
	if byProp == nil {
		byProp = make(map[string]map[string][]*Node)
		g.propIdx[label] = byProp
	}
	idx := make(map[string][]*Node)
	for _, n := range g.byLabel[label] {
		if v, ok := n.Props[prop]; ok {
			idx[valueKey(v)] = append(idx[valueKey(v)], n)
		}
	}
	byProp[prop] = idx
}

// Mark returns the graph's current epoch watermark: the insertion
// sequence of the newest node or edge. A bounded query at this mark
// (QueryAt) sees exactly the graph as of now, no matter how much is
// ingested between capturing the mark and running the query.
func (g *Graph) Mark() uint64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.seq
}

// Node returns the node with the given ID, or nil.
func (g *Graph) Node(id int64) *Node {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.nodes[id]
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.nodes)
}

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.edges)
}

// NodesByLabel returns all nodes with the label (empty label: all nodes),
// in insertion order.
func (g *Graph) NodesByLabel(label string) []*Node {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.nodesByLabelLocked(label)
}

// nodesByLabelLocked is NodesByLabel for callers holding g.mu (read side).
func (g *Graph) nodesByLabelLocked(label string) []*Node {
	if label == "" {
		all := make([]*Node, 0, len(g.nodes))
		for _, n := range g.nodes {
			all = append(all, n)
		}
		sort.Slice(all, func(i, j int) bool { return all[i].ID < all[j].ID })
		return all
	}
	return g.byLabel[strings.ToLower(label)]
}

// nodesByProp is nodesByPropLocked under the graph's own read lock.
func (g *Graph) nodesByProp(label, prop string, v Value) ([]*Node, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.nodesByPropLocked(label, prop, v)
}

// nodesByPropLocked returns nodes with label whose property equals v,
// using the property index when available. The second result reports
// index use. Callers hold g.mu (read side).
func (g *Graph) nodesByPropLocked(label, prop string, v Value) ([]*Node, bool) {
	label = strings.ToLower(label)
	prop = strings.ToLower(prop)
	if byProp, ok := g.propIdx[label]; ok {
		if idx, ok := byProp[prop]; ok {
			return idx[valueKey(v)], true
		}
	}
	var out []*Node
	for _, n := range g.byLabel[label] {
		if pv, ok := n.Props[prop]; ok && Compare(pv, v) == 0 {
			out = append(out, n)
		}
	}
	return out, false
}

// Out returns the outgoing edges of a node.
func (g *Graph) Out(id int64) []*Edge {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.out[id]
}

// In returns the incoming edges of a node.
func (g *Graph) In(id int64) []*Edge {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.in[id]
}

// regexCache caches compiled =~ patterns.
var regexCache sync.Map // string -> *regexp.Regexp

func compileRegex(pattern string) (*regexp.Regexp, error) {
	if re, ok := regexCache.Load(pattern); ok {
		return re.(*regexp.Regexp), nil
	}
	re, err := regexp.Compile("^(?:" + pattern + ")$")
	if err != nil {
		return nil, fmt.Errorf("graphstore: bad regex %q: %w", pattern, err)
	}
	regexCache.Store(pattern, re)
	return re, nil
}
