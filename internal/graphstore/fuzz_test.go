package graphstore

import "testing"

// FuzzParseCypher: the Cypher parser must never panic, and accepted
// queries must execute cleanly on a small graph.
func FuzzParseCypher(f *testing.F) {
	seeds := []string{
		"MATCH (p:process)-[e:event]->(f:file) RETURN p, f",
		"MATCH (a)-[:event*0..3]->(b)-[x:event {optype: 'read'}]->(c) WHERE c.name CONTAINS 'x' RETURN c.name LIMIT 5",
		"MATCH (a {pid: 1})-[r:event*2]->(b) RETURN r",
		"MATCH (a) WHERE a.name =~ '.*' AND NOT (a.pid > 3 OR a.pid < 1) RETURN DISTINCT a.name AS n",
		"MATCH",
		"MATCH (p RETURN p",
		"MATCH (p) RETURN",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	g := NewGraph()
	n1, _ := g.AddNode(Node{Label: "process", Props: map[string]Value{"name": TextValue("a"), "pid": IntValue(1)}})
	n2, _ := g.AddNode(Node{Label: "file", Props: map[string]Value{"name": TextValue("/x")}})
	g.AddEdge(Edge{From: n1.ID, To: n2.ID, Label: "event", Props: map[string]Value{"optype": TextValue("read")}})
	f.Fuzz(func(t *testing.T, src string) {
		q, err := ParseCypher(src)
		if err != nil {
			return
		}
		_, _, _ = g.Exec(q)
	})
}
