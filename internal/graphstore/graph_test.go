package graphstore

import (
	"testing"
	"testing/quick"
)

func TestAddNodeAssignsIDs(t *testing.T) {
	g := NewGraph()
	n1, err := g.AddNode(Node{Label: "File", Props: map[string]Value{"Name": TextValue("/a")}})
	if err != nil {
		t.Fatal(err)
	}
	n2, err := g.AddNode(Node{Label: "file"})
	if err != nil {
		t.Fatal(err)
	}
	if n1.ID == 0 || n2.ID == 0 || n1.ID == n2.ID {
		t.Errorf("bad ids: %d %d", n1.ID, n2.ID)
	}
	if n1.Label != "file" {
		t.Errorf("label not lowercased: %q", n1.Label)
	}
	if _, ok := n1.Props["name"]; !ok {
		t.Error("prop key not lowercased")
	}
	if _, err := g.AddNode(Node{ID: n1.ID}); err == nil {
		t.Error("duplicate node id should fail")
	}
}

func TestAddEdgeValidation(t *testing.T) {
	g := NewGraph()
	n1, _ := g.AddNode(Node{Label: "process"})
	n2, _ := g.AddNode(Node{Label: "file"})
	if _, err := g.AddEdge(Edge{From: n1.ID, To: 999, Label: "event"}); err == nil {
		t.Error("edge to missing node should fail")
	}
	if _, err := g.AddEdge(Edge{From: 999, To: n2.ID, Label: "event"}); err == nil {
		t.Error("edge from missing node should fail")
	}
	e, err := g.AddEdge(Edge{From: n1.ID, To: n2.ID, Label: "EVENT", Props: map[string]Value{"OpType": TextValue("read")}})
	if err != nil {
		t.Fatal(err)
	}
	if e.Label != "event" {
		t.Errorf("edge label not lowercased: %q", e.Label)
	}
	if len(g.Out(n1.ID)) != 1 || len(g.In(n2.ID)) != 1 {
		t.Error("adjacency not maintained")
	}
}

func TestNodeProp(t *testing.T) {
	n := &Node{ID: 7, Props: map[string]Value{"name": TextValue("/x")}}
	if v, ok := n.Prop("ID"); !ok || v.Int != 7 {
		t.Error("id pseudo-prop broken")
	}
	if v, ok := n.Prop("name"); !ok || v.Str != "/x" {
		t.Error("name prop broken")
	}
	if _, ok := n.Prop("none"); ok {
		t.Error("missing prop should report !ok")
	}
}

func TestPropIndexLookup(t *testing.T) {
	g := NewGraph()
	g.CreateNodeIndex("process", "exename")
	for i := 0; i < 10; i++ {
		exe := "/bin/a"
		if i%2 == 0 {
			exe = "/bin/b"
		}
		if _, err := g.AddNode(Node{Label: "process", Props: map[string]Value{"exename": TextValue(exe)}}); err != nil {
			t.Fatal(err)
		}
	}
	nodes, indexed := g.nodesByProp("process", "exename", TextValue("/bin/b"))
	if !indexed {
		t.Error("should use index (created before inserts)")
	}
	if len(nodes) != 5 {
		t.Errorf("got %d nodes", len(nodes))
	}
	// Unindexed property falls back to scan.
	nodes, indexed = g.nodesByProp("process", "pid", IntValue(1))
	if indexed {
		t.Error("pid lookup should not be indexed")
	}
	if len(nodes) != 0 {
		t.Errorf("scan found %d", len(nodes))
	}
}

func TestCreateIndexAfterInserts(t *testing.T) {
	g := NewGraph()
	g.AddNode(Node{Label: "file", Props: map[string]Value{"name": TextValue("/a")}})
	g.CreateNodeIndex("file", "name")
	nodes, indexed := g.nodesByProp("file", "name", TextValue("/a"))
	if !indexed || len(nodes) != 1 {
		t.Errorf("index built after inserts: indexed=%v n=%d", indexed, len(nodes))
	}
}

func TestCompareValues(t *testing.T) {
	if Compare(IntValue(1), IntValue(2)) != -1 || Compare(TextValue("a"), TextValue("a")) != 0 {
		t.Error("basic compares broken")
	}
	if Compare(IntValue(5), TextValue("5")) != 0 {
		t.Error("int/text coercion broken")
	}
	f := func(a, b int64) bool {
		return Compare(IntValue(a), IntValue(b)) == -Compare(IntValue(b), IntValue(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValueCypherRendering(t *testing.T) {
	if IntValue(5).Cypher() != "5" {
		t.Error("int cypher")
	}
	if TextValue("a'b").Cypher() != `'a\'b'` {
		t.Errorf("text cypher = %q", TextValue("a'b").Cypher())
	}
}

func TestNodesByLabelAllNodes(t *testing.T) {
	g := NewGraph()
	g.AddNode(Node{Label: "a"})
	g.AddNode(Node{Label: "b"})
	all := g.NodesByLabel("")
	if len(all) != 2 || all[0].ID > all[1].ID {
		t.Errorf("all-nodes scan wrong: %v", all)
	}
}
