package graphstore

import (
	"hash/fnv"
	"sort"
)

// Ingest-time cardinality statistics for the graph backend, the mirror
// of relstore's sketches (relstore/stats.go): the execution engine's
// cost-based optimizer estimates path-pattern cardinality from edge
// counts per operation type, the total node/edge population, and the
// event-time range — all answered *at an epoch mark* so estimates are
// consistent with the exact graph cut a pinned hunt traverses.
//
// Sequence numbers (Node.seq / Edge.seq) are assigned in insertion
// order, so a sampled ascending list of seqs recovers a count at any
// mark by binary search, within one sampling stride.

const (
	// gValStride samples every Nth occurrence of a tracked edge
	// property value (operation type).
	gValStride = 16
	// gSeqStride samples every Nth node/edge insertion sequence and
	// range checkpoint.
	gSeqStride = 64
)

// gValTrack is one tracked value: live count plus sampled seqs.
type gValTrack struct {
	count int64
	seqs  []uint64
}

func (tr *gValTrack) countAt(mark uint64) int {
	n := sort.Search(len(tr.seqs), func(i int) bool { return tr.seqs[i] > mark })
	est := n * gValStride
	if int64(est) > tr.count {
		est = int(tr.count)
	}
	return est
}

// gRangeCheck is a sampled running min/max checkpoint at a seq.
type gRangeCheck struct {
	seq      uint64
	min, max int64
}

// graphStats holds the graph's trackers; nil when stats are disabled.
// All mutation happens under the graph's write lock.
type graphStats struct {
	edgeOps   map[string]*gValTrack // operation type -> tracker
	edgeSeqs  []uint64              // every gSeqStride-th edge seq
	nodeSeqs  []uint64              // every gSeqStride-th node seq
	nEdges    int64
	nNodes    int64
	timeN     int64
	tmin      int64
	tmax      int64
	timeChks  []gRangeCheck
}

// EnableStats turns on ingest-time stats tracking (idempotent; called
// at bootstrap before data loads).
func (g *Graph) EnableStats() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.stats == nil {
		g.stats = &graphStats{edgeOps: make(map[string]*gValTrack)}
	}
}

// observeNode records a node insertion; caller holds the write lock.
func (s *graphStats) observeNode(seq uint64) {
	if s.nNodes%gSeqStride == 0 {
		s.nodeSeqs = append(s.nodeSeqs, seq)
	}
	s.nNodes++
}

// observeEdge records an edge insertion; caller holds the write lock.
func (s *graphStats) observeEdge(e *Edge) {
	if s.nEdges%gSeqStride == 0 {
		s.edgeSeqs = append(s.edgeSeqs, e.seq)
	}
	s.nEdges++
	if op, ok := e.Props["optype"]; ok && !op.IsInt {
		tr := s.edgeOps[op.Str]
		if tr == nil {
			tr = &gValTrack{}
			s.edgeOps[op.Str] = tr
		}
		if tr.count%gValStride == 0 {
			tr.seqs = append(tr.seqs, e.seq)
		}
		tr.count++
	}
	if st, ok := e.Props["starttime"]; ok && st.IsInt {
		if s.timeN == 0 || st.Int < s.tmin {
			s.tmin = st.Int
		}
		if s.timeN == 0 || st.Int > s.tmax {
			s.tmax = st.Int
		}
		s.timeN++
		if len(s.timeChks) == 0 || s.timeN%gSeqStride == 1 {
			s.timeChks = append(s.timeChks, gRangeCheck{seq: e.seq, min: s.tmin, max: s.tmax})
		}
	}
}

func seqCountAt(seqs []uint64, live int64, stride int, mark uint64) int {
	n := sort.Search(len(seqs), func(i int) bool { return seqs[i] > mark })
	est := n * stride
	if int64(est) > live {
		est = int(live)
	}
	return est
}

// EdgesAt estimates the number of edges visible at the mark (within
// one sampling stride; exact when the mark covers the whole graph).
func (g *Graph) EdgesAt(mark uint64) (int, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if g.stats == nil {
		return 0, false
	}
	return seqCountAt(g.stats.edgeSeqs, g.stats.nEdges, gSeqStride, mark), true
}

// NodesAt estimates the number of nodes visible at the mark.
func (g *Graph) NodesAt(mark uint64) (int, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if g.stats == nil {
		return 0, false
	}
	return seqCountAt(g.stats.nodeSeqs, g.stats.nNodes, gSeqStride, mark), true
}

// EdgeOpCountAt estimates how many edges with the given operation type
// are visible at the mark.
func (g *Graph) EdgeOpCountAt(op string, mark uint64) (int, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if g.stats == nil {
		return 0, false
	}
	tr := g.stats.edgeOps[op]
	if tr == nil {
		return 0, true
	}
	return tr.countAt(mark), true
}

// TimeRangeAt returns the min/max edge start time visible at the mark.
func (g *Graph) TimeRangeAt(mark uint64) (int64, int64, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if g.stats == nil {
		return 0, 0, false
	}
	n := sort.Search(len(g.stats.timeChks), func(i int) bool { return g.stats.timeChks[i].seq > mark })
	if n == 0 {
		return 0, 0, false
	}
	c := g.stats.timeChks[n-1]
	return c.min, c.max, true
}

// StatsFootprint returns how many sketch entries the graph's trackers
// hold, surfaced via /stats; zero when stats are disabled.
func (g *Graph) StatsFootprint() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if g.stats == nil {
		return 0
	}
	n := len(g.stats.edgeSeqs) + len(g.stats.nodeSeqs) + len(g.stats.timeChks)
	for _, tr := range g.stats.edgeOps {
		n += len(tr.seqs)
	}
	return n
}

// SchemaVersion returns a fingerprint of the graph's index layout
// (label/property index pairs). Plan caches fold it into their keys so
// a re-bootstrapped index set never reuses stale plan templates.
func (g *Graph) SchemaVersion() uint64 {
	g.mu.RLock()
	pairs := make([]string, 0, len(g.propIdx))
	for label, byProp := range g.propIdx {
		for prop := range byProp {
			pairs = append(pairs, label+"."+prop)
		}
	}
	g.mu.RUnlock()
	sort.Strings(pairs)
	h := fnv.New64a()
	for _, p := range pairs {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return h.Sum64()
}
