package graphstore

import (
	"fmt"
	"testing"

	"repro/internal/audit"
)

// TestShardedGraphRouting: nodes are broadcast, edges land in their
// host's shard, and a per-shard path-query union equals the single
// graph's result.
func TestShardedGraphRouting(t *testing.T) {
	const shards, hosts = 3, 6
	var entities []*audit.Entity
	var events []*audit.Event
	id := int64(1)
	for h := 0; h < hosts; h++ {
		host := fmt.Sprintf("host%d", h)
		proc := &audit.Entity{ID: id, Type: audit.EntityProcess, Host: host,
			ExeName: "/bin/bash", PID: 10 + h}
		id++
		mid := &audit.Entity{ID: id, Type: audit.EntityProcess, Host: host,
			ExeName: "/bin/tar", PID: 20 + h}
		id++
		file := &audit.Entity{ID: id, Type: audit.EntityFile, Host: host,
			Path: "/etc/passwd"}
		id++
		entities = append(entities, proc, mid, file)
		// A 2-hop chain per host: bash -> tar -> /etc/passwd.
		events = append(events,
			&audit.Event{ID: id, SrcID: proc.ID, DstID: mid.ID, Op: audit.OpFork,
				StartTime: 1, EndTime: 2, Host: host})
		id++
		events = append(events,
			&audit.Event{ID: id, SrcID: mid.ID, DstID: file.ID, Op: audit.OpRead,
				StartTime: 3, EndTime: 4, Host: host})
		id++
	}

	one := NewSharded(1)
	many := NewSharded(shards)
	for _, s := range []*Sharded{one, many} {
		if err := s.Load(entities, events); err != nil {
			t.Fatal(err)
		}
	}

	if one.NumNodes() != many.NumNodes() {
		t.Errorf("node counts disagree: %d vs %d", one.NumNodes(), many.NumNodes())
	}
	if one.NumEdges() != many.NumEdges() || one.NumEdges() != len(events) {
		t.Errorf("edge counts: 1-shard %d, sharded %d, want %d",
			one.NumEdges(), many.NumEdges(), len(events))
	}
	perShard := many.EdgeCounts()
	total := 0
	for i, n := range perShard {
		total += n
		want := 0
		for _, ev := range events {
			if many.ShardFor(ev.Host) == i {
				want++
			}
		}
		if n != want {
			t.Errorf("shard %d edges = %d, want %d", i, n, want)
		}
	}
	if total != len(events) {
		t.Errorf("edges across shards = %d, want %d", total, len(events))
	}

	// Path query union: every host's 2-hop chain must be found exactly
	// once across shards.
	const q = "MATCH (s:process)-[:event*1..1]->(mid)-[last:event {optype: 'read'}]->(o:file)" +
		" RETURN s.id, o.id, last.eventid, last.starttime, last.endtime, last.amount"
	count := func(s *Sharded) int {
		n := 0
		for i := 0; i < s.NumShards(); i++ {
			rows, err := s.Shard(i).Query(q)
			if err != nil {
				t.Fatal(err)
			}
			n += len(rows.Data)
		}
		return n
	}
	if a, b := count(one), count(many); a != b || a != hosts {
		t.Errorf("path unions disagree: 1-shard %d, sharded %d, want %d", a, b, hosts)
	}
}
