package graphstore

import (
	"strings"

	"repro/internal/audit"
)

// Node labels for the ThreatRaptor storage layout. Labels are stored
// lowercase; these constants are already canonical.
const (
	LabelProcess = "process"
	LabelFile    = "file"
	LabelNetConn = "netconn"
	EdgeEvent    = "event"
)

// Bootstrap creates the property indexes ThreatRaptor declares on key
// node attributes for each label.
func Bootstrap(g *Graph) {
	g.EnableStats()
	g.CreateNodeIndex(LabelProcess, "exename")
	g.CreateNodeIndex(LabelProcess, "name")
	g.CreateNodeIndex(LabelFile, "name")
	g.CreateNodeIndex(LabelNetConn, "dstip")
	g.CreateNodeIndex(LabelNetConn, "name")
}

// EntityNode converts a system entity into its graph node.
func EntityNode(e *audit.Entity) Node {
	props := map[string]Value{
		"host": TextValue(e.Host),
		"name": TextValue(e.Name()),
	}
	var label string
	switch e.Type {
	case audit.EntityFile:
		label = LabelFile
		props["path"] = TextValue(e.Path)
	case audit.EntityProcess:
		label = LabelProcess
		props["exename"] = TextValue(e.ExeName)
		props["pid"] = IntValue(int64(e.PID))
	case audit.EntityNetConn:
		label = LabelNetConn
		props["srcip"] = TextValue(e.SrcIP)
		props["srcport"] = IntValue(int64(e.SrcPort))
		props["dstip"] = TextValue(e.DstIP)
		props["dstport"] = IntValue(int64(e.DstPort))
		props["proto"] = TextValue(e.Proto)
	default:
		label = strings.ToLower(e.Type.String())
	}
	return Node{ID: e.ID, Label: label, Props: props}
}

// EventEdge converts a system event into its graph edge.
func EventEdge(ev *audit.Event) Edge {
	return Edge{
		From:  ev.SrcID,
		To:    ev.DstID,
		Label: EdgeEvent,
		Props: map[string]Value{
			"eventid":   IntValue(ev.ID),
			"optype":    TextValue(ev.Op.String()),
			"starttime": IntValue(ev.StartTime),
			"endtime":   IntValue(ev.EndTime),
			"amount":    IntValue(ev.Amount),
			"host":      TextValue(ev.Host),
		},
	}
}

// Load bulk-inserts parsed audit data into the graph.
func Load(g *Graph, entities []*audit.Entity, events []*audit.Event) error {
	for _, e := range entities {
		if _, err := g.AddNode(EntityNode(e)); err != nil {
			return err
		}
	}
	for _, ev := range events {
		if _, err := g.AddEdge(EventEdge(ev)); err != nil {
			return err
		}
	}
	return nil
}
