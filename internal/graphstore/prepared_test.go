package graphstore

import (
	"strings"
	"testing"
)

// TestPreparedCypherEquivalentToText: a prepared query with bound set
// and scalar parameters must return exactly the rows of the equivalent
// rendered text query, at the same epoch mark.
func TestPreparedCypherEquivalentToText(t *testing.T) {
	g := fixtureGraph(t)
	mark := g.Mark()

	text := `MATCH (p:process)-[e:event {optype: 'read'}]->(f:file)` +
		` WHERE (p.id = 3 OR p.id = 9) AND e.starttime >= 1 AND e.starttime <= 30` +
		` RETURN p.id, f.id, e.eventid`
	want, err := g.QueryAt(text, mark)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Data) == 0 {
		t.Fatal("fixture returns no rows")
	}

	st, err := PrepareCypher(`MATCH (p:process)-[e:event {optype: 'read'}]->(f:file)` +
		` WHERE p.id IN $0 AND e.starttime >= $1 AND e.starttime <= $2` +
		` RETURN p.id, f.id, e.eventid`)
	if err != nil {
		t.Fatal(err)
	}
	if st.NumParams() != 3 {
		t.Fatalf("NumParams = %d, want 3", st.NumParams())
	}
	params := NewCParams().BindIDSet(0, []int64{3, 9}).BindInt(1, 1).BindInt(2, 30)

	for run := 0; run < 2; run++ { // re-execution must not re-parse or drift
		got, err := g.QueryPreparedAt(st, mark, params)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Data) != len(want.Data) {
			t.Fatalf("run %d: %d rows, want %d", run, len(got.Data), len(want.Data))
		}
		for i := range got.Data {
			for j := range got.Data[i] {
				if Compare(got.Data[i][j], want.Data[i][j]) != 0 {
					t.Fatalf("row %d col %d = %v, want %v", i, j, got.Data[i][j], want.Data[i][j])
				}
			}
		}
	}

	// A different binding reuses the same plan with new values (entity 6
	// is curl, whose only read is /tmp/upload.tar).
	got, err := g.QueryPreparedAt(st, mark, NewCParams().BindIDSet(0, []int64{6}).BindInt(1, 0).BindInt(2, 100))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Data) != 1 || got.Data[0][0].Int != 6 {
		t.Fatalf("rebound rows = %v", got.Data)
	}
}

// TestPreparedCypherUnboundParam: executing with a referenced slot
// unbound must fail loudly, not silently match nothing.
func TestPreparedCypherUnboundParam(t *testing.T) {
	g := fixtureGraph(t)
	st, err := PrepareCypher(`MATCH (p:process)-[e:event]->(f:file) WHERE p.id IN $0 RETURN p.id`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.QueryPreparedAt(st, g.Mark(), NewCParams()); err == nil ||
		!strings.Contains(err.Error(), "$0") {
		t.Errorf("unbound set param error = %v", err)
	}
	st, err = PrepareCypher(`MATCH (p:process)-[e:event]->(f:file) WHERE e.starttime >= $5 RETURN p.id`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.QueryPreparedAt(st, g.Mark(), NewCParams()); err == nil ||
		!strings.Contains(err.Error(), "$5") {
		t.Errorf("unbound int param error = %v", err)
	}
}

// TestCypherParamParseErrors: malformed placeholders are parse errors.
func TestCypherParamParseErrors(t *testing.T) {
	for _, src := range []string{
		`MATCH (p:process)-[e:event]->(f:file) WHERE p.id IN 3 RETURN p.id`,
		`MATCH (p:process)-[e:event]->(f:file) WHERE p.id IN $ RETURN p.id`,
		`MATCH (p:process)-[e:event]->(f:file) WHERE 3 IN $0 RETURN p.id`,
	} {
		if _, err := ParseCypher(src); err == nil {
			t.Errorf("no parse error for %q", src)
		}
	}
}
