package graphstore

import (
	"fmt"
	"sort"
)

// CStmt is a prepared Cypher query: the parse tree, retained so repeat
// executions — the same path pattern across hunt waves, shards, and
// hunts — skip lexing and parsing entirely. Per-execution values
// (propagated entity-ID sets, time-window bounds) are bound through
// CParams placeholders (`$k`) instead of being rendered into new query
// text. A CStmt is immutable and safe for concurrent executions.
type CStmt struct {
	q *CypherQuery
	// nSlots is the number of parameter slots referenced (max slot + 1).
	nSlots int
}

// PrepareCypher parses a Cypher query once for repeated execution via
// Graph.QueryPreparedAt.
func PrepareCypher(src string) (*CStmt, error) {
	q, err := ParseCypher(src)
	if err != nil {
		return nil, err
	}
	st := &CStmt{q: q}
	st.nSlots = maxSlot(q) + 1
	return st, nil
}

// NumParams reports how many parameter slots the query references;
// executions must bind every referenced slot.
func (st *CStmt) NumParams() int { return st.nSlots }

// maxSlot walks the WHERE tree for the highest `$k` referenced.
func maxSlot(q *CypherQuery) int {
	maxS := -1
	var walk func(e CExpr)
	walk = func(e CExpr) {
		switch x := e.(type) {
		case CBin:
			walk(x.L)
			walk(x.R)
		case CNot:
			walk(x.E)
		case CCmp:
			for _, op := range []COperand{x.L, x.R} {
				if op.IsParam && op.Slot > maxS {
					maxS = op.Slot
				}
			}
		case CInParam:
			if x.Slot > maxS {
				maxS = x.Slot
			}
		}
	}
	if q.Where != nil {
		walk(q.Where)
	}
	return maxS
}

// CParams carries one execution's parameter bindings: int64 ID sets
// (`prop IN $k`, the propagated-constraint shape) and scalar int64s
// (`prop >= $k`, the time-window shape). A fully bound CParams is
// immutable and may be shared by concurrent executions.
type CParams struct {
	sets map[int]cIDSet
	ints map[int]int64
}

// cIDSet is one bound ID set, ascending. Membership tests binary-search
// it, so binding costs O(1) beyond the sortedness check — no per-bind
// hash-map build, matching the relstore cost model for the same
// propagation sets.
type cIDSet struct {
	ids []int64
}

// has reports membership by binary search.
func (s cIDSet) has(id int64) bool {
	i := sort.Search(len(s.ids), func(i int) bool { return s.ids[i] >= id })
	return i < len(s.ids) && s.ids[i] == id
}

// NewCParams returns an empty parameter binding.
func NewCParams() *CParams {
	return &CParams{sets: map[int]cIDSet{}, ints: map[int]int64{}}
}

// BindIDSet binds slot k to an ID set. The slice is retained and sorted
// in place if not already ascending.
func (p *CParams) BindIDSet(slot int, ids []int64) *CParams {
	if !sort.SliceIsSorted(ids, func(i, j int) bool { return ids[i] < ids[j] }) {
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	}
	p.sets[slot] = cIDSet{ids: ids}
	return p
}

// BindInt binds slot k to a scalar int64.
func (p *CParams) BindInt(slot int, v int64) *CParams {
	p.ints[slot] = v
	return p
}

func (p *CParams) set(slot int) (cIDSet, bool) {
	if p == nil {
		return cIDSet{}, false
	}
	s, ok := p.sets[slot]
	return s, ok
}

func (p *CParams) intVal(slot int) (int64, bool) {
	if p == nil {
		return 0, false
	}
	v, ok := p.ints[slot]
	return v, ok
}

// QueryPreparedAt executes a prepared Cypher query bounded at an epoch
// watermark with the given parameter bindings: no lexing, no parsing,
// no text rendering of propagated sets. Like QueryAt, the read lock is
// held only for this one statement, so a hunt cursor holding the CStmt
// and mark between calls costs writers nothing.
func (g *Graph) QueryPreparedAt(st *CStmt, mark uint64, params *CParams) (*Rows, error) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	ex := &cexec{g: g, q: st.q, env: map[string]binding{}, bounded: true, mark: mark, params: params}
	rows, _, err := g.run(ex)
	return rows, err
}

// QueryPreparedAtLimit is QueryPreparedAt with a per-execution result
// cap: the traversal stops once limit rows are produced (limit <= 0
// means uncapped), so a page-bounded fetch does page-scaled traversal
// work. The cap is ignored for DISTINCT queries, whose deduplication
// could shrink a capped prefix below the true first rows.
func (g *Graph) QueryPreparedAtLimit(st *CStmt, mark uint64, params *CParams, limit int) (*Rows, error) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	ex := &cexec{g: g, q: st.q, env: map[string]binding{}, bounded: true, mark: mark, params: params}
	if limit > 0 && !st.q.Distinct {
		ex.rowCap = limit
	}
	rows, _, err := g.run(ex)
	return rows, err
}

// QueryPrepared executes a prepared Cypher query against the current
// graph under the statement's read lock.
func (g *Graph) QueryPrepared(st *CStmt, params *CParams) (*Rows, ExecStats, error) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	ex := &cexec{g: g, q: st.q, env: map[string]binding{}, params: params}
	return g.run(ex)
}

// errUnboundParam formats the error for a referenced but unbound slot.
func errUnboundParam(slot int) error {
	return fmt.Errorf("graphstore: parameter $%d is not bound", slot)
}
