package graphstore

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentCypherQueries runs many readers against one loaded graph.
func TestConcurrentCypherQueries(t *testing.T) {
	g := fixtureGraph(t)
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				q := `MATCH (p:process)-[e:event {optype: 'read'}]->(f:file) RETURN p.exename, f.name`
				if i%2 == 0 {
					q = `MATCH (p:process {exename: '/usr/sbin/apache2'})-[:event*0..3]->(m)-[e:event {optype: 'read'}]->(f:file) RETURN f.name`
				}
				rows, err := g.Query(q)
				if err != nil {
					errs <- err
					return
				}
				if len(rows.Data) == 0 {
					errs <- fmt.Errorf("goroutine %d: empty result", i)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestCypherZeroHopPrefix(t *testing.T) {
	g := fixtureGraph(t)
	// *0..0 makes mid == start node: equivalent to a single typed hop.
	q := `MATCH (p:process {exename: '/bin/tar'})-[:event*0..0]->(m)-[e:event {optype: 'read'}]->(f:file) RETURN f.name`
	rows, err := g.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 1 || rows.Data[0][0].Str != "/etc/passwd" {
		t.Errorf("zero-hop prefix rows = %v", rows.Data)
	}
}

func TestCypherFixedHopCount(t *testing.T) {
	g := fixtureGraph(t)
	// Exactly 2 hops: apache2 -fork-> bash -fork-> tar.
	q := `MATCH (p:process {exename: '/usr/sbin/apache2'})-[path:event*2]->(x:process {exename: '/bin/tar'}) RETURN path`
	rows, err := g.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 1 || rows.Data[0][0].Int != 2 {
		t.Errorf("fixed hop rows = %v", rows.Data)
	}
}

func TestCypherNumericComparison(t *testing.T) {
	g := fixtureGraph(t)
	rows, err := g.Query(`MATCH (p:process)-[e:event]->(f:file) WHERE e.amount >= 10240 RETURN DISTINCT f.name`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 1 || rows.Data[0][0].Str != "/tmp/upload.tar" {
		t.Errorf("numeric filter rows = %v", rows.Data)
	}
}

func TestCypherNotAndGrouping(t *testing.T) {
	g := fixtureGraph(t)
	rows, err := g.Query(`MATCH (p:process)-[e:event]->(f:file) WHERE NOT (f.name CONTAINS 'passwd') AND (e.optype = 'read' OR e.optype = 'write') RETURN DISTINCT f.name`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 1 || rows.Data[0][0].Str != "/tmp/upload.tar" {
		t.Errorf("not/grouping rows = %v", rows.Data)
	}
}

func TestCypherAnonymousNodesAndRels(t *testing.T) {
	g := fixtureGraph(t)
	rows, err := g.Query(`MATCH ()-[:event {optype: 'connect'}]->(c:netconn) RETURN c.dstip`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 1 || rows.Data[0][0].Str != "192.168.29.128" {
		t.Errorf("anonymous pattern rows = %v", rows.Data)
	}
}

func TestCypherChainSharedIntermediate(t *testing.T) {
	g := fixtureGraph(t)
	// Three-node chain in one pattern: writer -> file <- is not valid
	// (we only support ->), but a chain through a shared mid variable
	// across two chains is.
	q := `MATCH (w:process)-[e1:event {optype: 'write'}]->(f:file),
	            (r:process)-[e2:event {optype: 'read'}]->(f)
	      WHERE w.exename <> r.exename
	      RETURN w.exename, r.exename, f.name`
	rows, err := g.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 1 || rows.Data[0][2].Str != "/tmp/upload.tar" {
		t.Errorf("shared-mid rows = %v", rows.Data)
	}
}
