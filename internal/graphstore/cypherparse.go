package graphstore

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// ---------------------------------------------------------------------------
// AST

// NodePattern is `(var:Label {prop: lit, ...})`.
type NodePattern struct {
	Var   string // may be empty
	Label string // may be empty
	Props map[string]Value
}

// RelPattern is `-[var:LABEL*min..max {prop: lit}]->`.
type RelPattern struct {
	Var     string
	Label   string
	Props   map[string]Value
	VarLen  bool
	MinHops int
	MaxHops int
}

// PatternChain is node (rel node)*.
type PatternChain struct {
	Nodes []NodePattern
	Rels  []RelPattern // len(Rels) == len(Nodes)-1
}

// ReturnItem is `var[.prop] [AS alias]`.
type ReturnItem struct {
	Var   string
	Prop  string // empty: the node/edge itself (projected as its id)
	Alias string
}

// CypherQuery is a parsed MATCH query.
type CypherQuery struct {
	Chains   []PatternChain
	Where    CExpr // may be nil
	Distinct bool
	Items    []ReturnItem
	Limit    int // -1 when absent
}

// CExpr is a Cypher boolean expression.
type CExpr interface{ isCExpr() }

// CBin is AND/OR.
type CBin struct {
	Op   string
	L, R CExpr
}

// CNot negates.
type CNot struct{ E CExpr }

// CCmp compares two operands. Op is one of = <> < <= > >= contains
// startswith endswith =~.
type CCmp struct {
	Op   string
	L, R COperand
}

// COperand is a property access, a literal, or a `$k` scalar parameter
// whose int64 value is bound at execution time (CParams.BindInt) — the
// shape window bounds take in prepared path queries.
type COperand struct {
	IsLit   bool
	Lit     Value
	Var     string
	Prop    string
	IsParam bool
	Slot    int
}

// CInParam is `var.prop IN $k`: membership in an int64 ID set bound at
// execution time (CParams.BindIDSet) — the shape propagated entity-ID
// constraints take, so the query text never carries the set.
type CInParam struct {
	L    COperand
	Slot int
}

func (CBin) isCExpr()     {}
func (CNot) isCExpr()     {}
func (CCmp) isCExpr()     {}
func (CInParam) isCExpr() {}

// ---------------------------------------------------------------------------
// Lexer

type ctokKind uint8

const (
	ctokEOF ctokKind = iota
	ctokIdent
	ctokKeyword
	ctokString
	ctokNumber
	ctokSymbol
	ctokParam // $<n> parameter placeholder; num is the slot
)

var cypherKeywords = map[string]bool{
	"match": true, "where": true, "return": true, "distinct": true,
	"limit": true, "and": true, "or": true, "not": true, "as": true,
	"contains": true, "starts": true, "ends": true, "with": true,
	"in": true,
}

type ctok struct {
	kind ctokKind
	text string
	num  int64
	pos  int
}

func lexCypher(src string) ([]ctok, error) {
	var toks []ctok
	pos := 0
	for pos < len(src) {
		c := src[pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			pos++
		case c == '\'':
			start := pos
			pos++
			var b strings.Builder
			closed := false
			for pos < len(src) {
				if src[pos] == '\\' && pos+1 < len(src) && src[pos+1] == '\'' {
					b.WriteByte('\'')
					pos += 2
					continue
				}
				if src[pos] == '\'' {
					pos++
					closed = true
					break
				}
				b.WriteByte(src[pos])
				pos++
			}
			if !closed {
				return nil, fmt.Errorf("graphstore: unterminated string at offset %d", start)
			}
			toks = append(toks, ctok{kind: ctokString, text: b.String(), pos: start})
		case c >= '0' && c <= '9':
			start := pos
			for pos < len(src) && src[pos] >= '0' && src[pos] <= '9' {
				pos++
			}
			n, _ := strconv.ParseInt(src[start:pos], 10, 64)
			toks = append(toks, ctok{kind: ctokNumber, num: n, text: src[start:pos], pos: start})
		case c == '$':
			start := pos
			pos++
			digits := pos
			for pos < len(src) && src[pos] >= '0' && src[pos] <= '9' {
				pos++
			}
			if pos == digits {
				return nil, fmt.Errorf("graphstore: expected parameter number after '$' at offset %d", start)
			}
			n, err := strconv.ParseInt(src[digits:pos], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("graphstore: bad parameter %q at offset %d", src[start:pos], start)
			}
			toks = append(toks, ctok{kind: ctokParam, num: n, text: src[start:pos], pos: start})
		case c == '_' || unicode.IsLetter(rune(c)):
			start := pos
			for pos < len(src) && (src[pos] == '_' || unicode.IsLetter(rune(src[pos])) || unicode.IsDigit(rune(src[pos]))) {
				pos++
			}
			word := src[start:pos]
			lower := strings.ToLower(word)
			if cypherKeywords[lower] {
				toks = append(toks, ctok{kind: ctokKeyword, text: lower, pos: start})
			} else {
				toks = append(toks, ctok{kind: ctokIdent, text: word, pos: start})
			}
		default:
			two := ""
			if pos+1 < len(src) {
				two = src[pos : pos+2]
			}
			switch two {
			case "->", "<>", "<=", ">=", "=~", "..":
				toks = append(toks, ctok{kind: ctokSymbol, text: two, pos: pos})
				pos += 2
				continue
			}
			switch c {
			case '(', ')', '[', ']', '{', '}', ':', ',', '.', '-', '*', '=', '<', '>':
				toks = append(toks, ctok{kind: ctokSymbol, text: string(c), pos: pos})
				pos++
			default:
				return nil, fmt.Errorf("graphstore: unexpected character %q at offset %d", c, pos)
			}
		}
	}
	toks = append(toks, ctok{kind: ctokEOF, pos: pos})
	return toks, nil
}

// ---------------------------------------------------------------------------
// Parser

type cypherParser struct {
	toks []ctok
	pos  int
}

// ParseCypher parses one MATCH ... RETURN query.
func ParseCypher(src string) (*CypherQuery, error) {
	toks, err := lexCypher(src)
	if err != nil {
		return nil, err
	}
	p := &cypherParser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != ctokEOF {
		return nil, fmt.Errorf("graphstore: unexpected trailing token %q at offset %d", p.peek().text, p.peek().pos)
	}
	return q, nil
}

func (p *cypherParser) peek() ctok { return p.toks[p.pos] }

func (p *cypherParser) next() ctok {
	t := p.toks[p.pos]
	if t.kind != ctokEOF {
		p.pos++
	}
	return t
}

func (p *cypherParser) acceptKeyword(kw string) bool {
	if p.peek().kind == ctokKeyword && p.peek().text == kw {
		p.next()
		return true
	}
	return false
}

func (p *cypherParser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return fmt.Errorf("graphstore: expected %s at offset %d, got %q", strings.ToUpper(kw), p.peek().pos, p.peek().text)
	}
	return nil
}

func (p *cypherParser) acceptSymbol(s string) bool {
	if p.peek().kind == ctokSymbol && p.peek().text == s {
		p.next()
		return true
	}
	return false
}

func (p *cypherParser) expectSymbol(s string) error {
	if !p.acceptSymbol(s) {
		return fmt.Errorf("graphstore: expected %q at offset %d, got %q", s, p.peek().pos, p.peek().text)
	}
	return nil
}

func (p *cypherParser) expectIdent() (string, error) {
	t := p.peek()
	if t.kind != ctokIdent {
		return "", fmt.Errorf("graphstore: expected identifier at offset %d, got %q", t.pos, t.text)
	}
	p.next()
	return t.text, nil
}

func (p *cypherParser) parseQuery() (*CypherQuery, error) {
	if err := p.expectKeyword("match"); err != nil {
		return nil, err
	}
	q := &CypherQuery{Limit: -1}
	for {
		chain, err := p.parseChain()
		if err != nil {
			return nil, err
		}
		q.Chains = append(q.Chains, chain)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if p.acceptKeyword("where") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		q.Where = e
	}
	if err := p.expectKeyword("return"); err != nil {
		return nil, err
	}
	q.Distinct = p.acceptKeyword("distinct")
	for {
		item, err := p.parseReturnItem()
		if err != nil {
			return nil, err
		}
		q.Items = append(q.Items, item)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if p.acceptKeyword("limit") {
		t := p.peek()
		if t.kind != ctokNumber {
			return nil, fmt.Errorf("graphstore: expected number after LIMIT at offset %d", t.pos)
		}
		p.next()
		q.Limit = int(t.num)
	}
	return q, nil
}

func (p *cypherParser) parseChain() (PatternChain, error) {
	var chain PatternChain
	n, err := p.parseNodePattern()
	if err != nil {
		return chain, err
	}
	chain.Nodes = append(chain.Nodes, n)
	for p.peek().kind == ctokSymbol && p.peek().text == "-" {
		rel, err := p.parseRelPattern()
		if err != nil {
			return chain, err
		}
		n, err := p.parseNodePattern()
		if err != nil {
			return chain, err
		}
		chain.Rels = append(chain.Rels, rel)
		chain.Nodes = append(chain.Nodes, n)
	}
	return chain, nil
}

func (p *cypherParser) parseNodePattern() (NodePattern, error) {
	var n NodePattern
	if err := p.expectSymbol("("); err != nil {
		return n, err
	}
	if p.peek().kind == ctokIdent {
		n.Var = p.next().text
	}
	if p.acceptSymbol(":") {
		label, err := p.expectIdent()
		if err != nil {
			return n, err
		}
		n.Label = strings.ToLower(label)
	}
	if p.peek().kind == ctokSymbol && p.peek().text == "{" {
		props, err := p.parsePropMap()
		if err != nil {
			return n, err
		}
		n.Props = props
	}
	if err := p.expectSymbol(")"); err != nil {
		return n, err
	}
	return n, nil
}

func (p *cypherParser) parseRelPattern() (RelPattern, error) {
	var r RelPattern
	if err := p.expectSymbol("-"); err != nil {
		return r, err
	}
	if err := p.expectSymbol("["); err != nil {
		return r, err
	}
	if p.peek().kind == ctokIdent {
		r.Var = p.next().text
	}
	if p.acceptSymbol(":") {
		label, err := p.expectIdent()
		if err != nil {
			return r, err
		}
		r.Label = strings.ToLower(label)
	}
	if p.acceptSymbol("*") {
		r.VarLen = true
		r.MinHops, r.MaxHops = 1, 1
		if p.peek().kind == ctokNumber {
			r.MinHops = int(p.next().num)
			r.MaxHops = r.MinHops
		}
		if p.acceptSymbol("..") {
			if p.peek().kind != ctokNumber {
				return r, fmt.Errorf("graphstore: expected max hop count at offset %d", p.peek().pos)
			}
			r.MaxHops = int(p.next().num)
		}
		if r.MinHops < 0 || r.MaxHops < r.MinHops {
			return r, fmt.Errorf("graphstore: invalid hop bounds *%d..%d", r.MinHops, r.MaxHops)
		}
	}
	if p.peek().kind == ctokSymbol && p.peek().text == "{" {
		props, err := p.parsePropMap()
		if err != nil {
			return r, err
		}
		r.Props = props
	}
	if err := p.expectSymbol("]"); err != nil {
		return r, err
	}
	if err := p.expectSymbol("->"); err != nil {
		return r, err
	}
	return r, nil
}

func (p *cypherParser) parsePropMap() (map[string]Value, error) {
	if err := p.expectSymbol("{"); err != nil {
		return nil, err
	}
	props := make(map[string]Value)
	for {
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(":"); err != nil {
			return nil, err
		}
		v, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		props[strings.ToLower(name)] = v
		if !p.acceptSymbol(",") {
			break
		}
	}
	if err := p.expectSymbol("}"); err != nil {
		return nil, err
	}
	return props, nil
}

func (p *cypherParser) parseLiteral() (Value, error) {
	t := p.peek()
	switch t.kind {
	case ctokString:
		p.next()
		return TextValue(t.text), nil
	case ctokNumber:
		p.next()
		return IntValue(t.num), nil
	case ctokSymbol:
		if t.text == "-" {
			p.next()
			n := p.peek()
			if n.kind != ctokNumber {
				return Value{}, fmt.Errorf("graphstore: expected number after '-' at offset %d", n.pos)
			}
			p.next()
			return IntValue(-n.num), nil
		}
	}
	return Value{}, fmt.Errorf("graphstore: expected literal at offset %d, got %q", t.pos, t.text)
}

func (p *cypherParser) parseExpr() (CExpr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("or") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = CBin{Op: "or", L: left, R: right}
	}
	return left, nil
}

func (p *cypherParser) parseAnd() (CExpr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("and") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = CBin{Op: "and", L: left, R: right}
	}
	return left, nil
}

func (p *cypherParser) parseNot() (CExpr, error) {
	if p.acceptKeyword("not") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return CNot{E: e}, nil
	}
	if p.peek().kind == ctokSymbol && p.peek().text == "(" {
		// Could be a parenthesised boolean expression; node patterns
		// cannot appear in WHERE so '(' always means grouping here.
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	return p.parseCmp()
}

func (p *cypherParser) parseCmp() (CExpr, error) {
	left, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.kind == ctokSymbol {
		switch t.text {
		case "=", "<>", "<", "<=", ">", ">=", "=~":
			p.next()
			right, err := p.parseOperand()
			if err != nil {
				return nil, err
			}
			return CCmp{Op: t.text, L: left, R: right}, nil
		}
	}
	if t.kind == ctokKeyword {
		switch t.text {
		case "in":
			p.next()
			pt := p.peek()
			if pt.kind != ctokParam {
				return nil, fmt.Errorf("graphstore: expected $<n> parameter after IN at offset %d, got %q", pt.pos, pt.text)
			}
			p.next()
			if left.IsLit || left.IsParam {
				return nil, fmt.Errorf("graphstore: IN wants a property operand at offset %d", t.pos)
			}
			return CInParam{L: left, Slot: int(pt.num)}, nil
		case "contains":
			p.next()
			right, err := p.parseOperand()
			if err != nil {
				return nil, err
			}
			return CCmp{Op: "contains", L: left, R: right}, nil
		case "starts", "ends":
			op := t.text + "with"
			p.next()
			if err := p.expectKeyword("with"); err != nil {
				return nil, err
			}
			right, err := p.parseOperand()
			if err != nil {
				return nil, err
			}
			return CCmp{Op: op, L: left, R: right}, nil
		}
	}
	return nil, fmt.Errorf("graphstore: expected comparison at offset %d, got %q", t.pos, t.text)
}

func (p *cypherParser) parseOperand() (COperand, error) {
	t := p.peek()
	switch t.kind {
	case ctokIdent:
		p.next()
		op := COperand{Var: t.text}
		if p.acceptSymbol(".") {
			prop, err := p.expectIdent()
			if err != nil {
				return COperand{}, err
			}
			op.Prop = strings.ToLower(prop)
		}
		return op, nil
	case ctokString, ctokNumber:
		v, err := p.parseLiteral()
		if err != nil {
			return COperand{}, err
		}
		return COperand{IsLit: true, Lit: v}, nil
	case ctokParam:
		p.next()
		return COperand{IsParam: true, Slot: int(t.num)}, nil
	case ctokSymbol:
		if t.text == "-" {
			v, err := p.parseLiteral()
			if err != nil {
				return COperand{}, err
			}
			return COperand{IsLit: true, Lit: v}, nil
		}
	}
	return COperand{}, fmt.Errorf("graphstore: expected operand at offset %d, got %q", t.pos, t.text)
}

func (p *cypherParser) parseReturnItem() (ReturnItem, error) {
	v, err := p.expectIdent()
	if err != nil {
		return ReturnItem{}, err
	}
	item := ReturnItem{Var: v}
	if p.acceptSymbol(".") {
		prop, err := p.expectIdent()
		if err != nil {
			return ReturnItem{}, err
		}
		item.Prop = strings.ToLower(prop)
	}
	if p.acceptKeyword("as") {
		alias, err := p.expectIdent()
		if err != nil {
			return ReturnItem{}, err
		}
		item.Alias = alias
	}
	return item, nil
}
