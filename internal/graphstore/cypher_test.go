package graphstore

import (
	"testing"

	"repro/internal/audit"
)

// fixtureGraph loads the Fig. 2 chain with intermediate bash forks, so
// variable-length path queries have real work to do:
//
//	apache2 -fork-> bash -fork-> tar -read-> /etc/passwd ...
func fixtureGraph(t testing.TB) *Graph {
	t.Helper()
	p := audit.NewParser()
	recs := []audit.Record{
		{StartNS: 1, EndNS: 2, Host: "h", PID: 1, Exe: "/usr/sbin/apache2", Op: audit.OpFork, ObjType: audit.EntityProcess, ObjSpec: audit.ProcSpec(2, "/bin/bash")},
		{StartNS: 3, EndNS: 4, Host: "h", PID: 2, Exe: "/bin/bash", Op: audit.OpFork, ObjType: audit.EntityProcess, ObjSpec: audit.ProcSpec(3, "/bin/tar")},
		{StartNS: 5, EndNS: 6, Host: "h", PID: 3, Exe: "/bin/tar", Op: audit.OpRead, ObjType: audit.EntityFile, ObjSpec: "/etc/passwd", Amount: 2949},
		{StartNS: 7, EndNS: 8, Host: "h", PID: 3, Exe: "/bin/tar", Op: audit.OpWrite, ObjType: audit.EntityFile, ObjSpec: "/tmp/upload.tar", Amount: 10240},
		{StartNS: 9, EndNS: 10, Host: "h", PID: 2, Exe: "/bin/bash", Op: audit.OpFork, ObjType: audit.EntityProcess, ObjSpec: audit.ProcSpec(4, "/usr/bin/curl")},
		{StartNS: 11, EndNS: 12, Host: "h", PID: 4, Exe: "/usr/bin/curl", Op: audit.OpRead, ObjType: audit.EntityFile, ObjSpec: "/tmp/upload.tar", Amount: 10240},
		{StartNS: 13, EndNS: 14, Host: "h", PID: 4, Exe: "/usr/bin/curl", Op: audit.OpConnect, ObjType: audit.EntityNetConn, ObjSpec: audit.ConnSpec("10.0.0.5", 40000, "192.168.29.128", 443, "tcp"), Amount: 10240},
		// Noise.
		{StartNS: 20, EndNS: 21, Host: "h", PID: 9, Exe: "/usr/sbin/sshd", Op: audit.OpRead, ObjType: audit.EntityFile, ObjSpec: "/etc/passwd", Amount: 2048},
	}
	for _, r := range recs {
		if _, err := p.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	g := NewGraph()
	Bootstrap(g)
	if err := Load(g, p.Entities(), p.Events()); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestCypherSimpleMatch(t *testing.T) {
	g := fixtureGraph(t)
	rows, err := g.Query(`MATCH (p:process {exename: '/bin/tar'})-[e:event {optype: 'read'}]->(f:file) RETURN p.exename, f.name`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 1 {
		t.Fatalf("want 1 row, got %d", len(rows.Data))
	}
	if rows.Data[0][0].Str != "/bin/tar" || rows.Data[0][1].Str != "/etc/passwd" {
		t.Errorf("row = %v", rows.Data[0])
	}
}

func TestCypherWhere(t *testing.T) {
	g := fixtureGraph(t)
	rows, err := g.Query(`MATCH (p:process)-[e:event]->(f:file) WHERE f.name CONTAINS 'passwd' AND e.amount > 2500 RETURN p.exename`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 1 || rows.Data[0][0].Str != "/bin/tar" {
		t.Errorf("rows = %v", rows.Data)
	}
}

func TestCypherStartsEndsRegex(t *testing.T) {
	g := fixtureGraph(t)
	rows, err := g.Query(`MATCH (p:process) WHERE p.exename STARTS WITH '/usr/' RETURN DISTINCT p.exename`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 3 { // apache2, curl, sshd
		t.Errorf("starts with: %v", rows.Data)
	}
	rows, err = g.Query(`MATCH (p:process) WHERE p.exename ENDS WITH 'tar' RETURN p.exename`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 1 {
		t.Errorf("ends with: %v", rows.Data)
	}
	rows, err = g.Query(`MATCH (f:file) WHERE f.name =~ '.*upload.*' RETURN f.name`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 1 {
		t.Errorf("regex: %v", rows.Data)
	}
}

func TestCypherVarLengthPath(t *testing.T) {
	g := fixtureGraph(t)
	// The paper's path-pattern use case: apache2 reaches /etc/passwd
	// through forked intermediates; final hop must be a read. The TBQL
	// compiler emits prefix *0..k then the typed final hop.
	q := `MATCH (p:process {exename: '/usr/sbin/apache2'})-[:event*0..3]->(m)-[e:event {optype: 'read'}]->(f:file {name: '/etc/passwd'}) RETURN f.name`
	rows, err := g.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 1 {
		t.Fatalf("var-length path: want 1 row, got %d", len(rows.Data))
	}
	// Too-short bound finds nothing (needs 2 fork hops before the read).
	q = `MATCH (p:process {exename: '/usr/sbin/apache2'})-[:event*0..1]->(m)-[e:event {optype: 'read'}]->(f:file {name: '/etc/passwd'}) RETURN f.name`
	rows, err = g.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 0 {
		t.Errorf("bounded path should not reach: %v", rows.Data)
	}
}

func TestCypherPathVariableHops(t *testing.T) {
	g := fixtureGraph(t)
	rows, err := g.Query(`MATCH (p:process {exename: '/usr/sbin/apache2'})-[path:event*1..4]->(f:file {name: '/etc/passwd'}) RETURN path`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 1 {
		t.Fatalf("want 1 path, got %d", len(rows.Data))
	}
	if rows.Data[0][0].Int != 3 { // fork, fork, read
		t.Errorf("path length = %v, want 3", rows.Data[0][0])
	}
}

func TestCypherMultipleChainsJoin(t *testing.T) {
	g := fixtureGraph(t)
	// Shared variable f joins the two chains: who writes what curl reads?
	q := `MATCH (w:process)-[e1:event {optype: 'write'}]->(f:file),
	            (r:process {exename: '/usr/bin/curl'})-[e2:event {optype: 'read'}]->(f)
	      RETURN w.exename, f.name`
	rows, err := g.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 1 || rows.Data[0][0].Str != "/bin/tar" || rows.Data[0][1].Str != "/tmp/upload.tar" {
		t.Errorf("join rows = %v", rows.Data)
	}
}

func TestCypherDistinctLimit(t *testing.T) {
	g := fixtureGraph(t)
	rows, err := g.Query(`MATCH (p:process)-[e:event]->(f:file) RETURN DISTINCT p.exename`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 3 { // tar, curl, sshd
		t.Errorf("distinct: %v", rows.Data)
	}
	rows, err = g.Query(`MATCH (p:process)-[e:event]->(f:file) RETURN p.exename LIMIT 2`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 2 {
		t.Errorf("limit: got %d", len(rows.Data))
	}
}

func TestCypherIndexUse(t *testing.T) {
	g := fixtureGraph(t)
	_, stats, err := g.QueryStats(`MATCH (p:process {exename: '/bin/tar'})-[e:event]->(f:file) RETURN f.name`)
	if err != nil {
		t.Fatal(err)
	}
	if stats.IndexLookups == 0 {
		t.Error("exename lookup should use the property index")
	}
}

func TestCypherErrors(t *testing.T) {
	g := fixtureGraph(t)
	bad := []string{
		``,
		`MATCH (p RETURN p`,
		`MATCH (p:process) RETURN q`, // undefined return var
		`MATCH (p:process) WHERE q.x = 1 RETURN p`,       // undefined where var
		`MATCH (p:process)-[e:event*3..1]->(f) RETURN p`, // bad bounds
		`MATCH (p:process) RETURN p LIMIT x`,
		`MATCH (p:process) WHERE p.name =~ '[' RETURN p`, // bad regex
		`MATCH (p) RETURN p extra`,
	}
	for _, q := range bad {
		if _, err := g.Query(q); err == nil {
			t.Errorf("query should fail: %s", q)
		}
	}
}

func TestCypherAlias(t *testing.T) {
	g := fixtureGraph(t)
	rows, err := g.Query(`MATCH (p:process {exename: '/bin/tar'}) RETURN p.exename AS exe`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Cols[0] != "exe" {
		t.Errorf("cols = %v", rows.Cols)
	}
}

func TestCypherReturnNodeAsID(t *testing.T) {
	g := fixtureGraph(t)
	rows, err := g.Query(`MATCH (p:process {exename: '/bin/tar'}) RETURN p`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 1 || !rows.Data[0][0].IsInt {
		t.Errorf("returning a node should project its id: %v", rows.Data)
	}
}

func TestCypherEdgeUniquenessInPath(t *testing.T) {
	// A cycle a->b->a must not loop forever and must not reuse edges.
	g := NewGraph()
	a, _ := g.AddNode(Node{Label: "process", Props: map[string]Value{"name": TextValue("a")}})
	b, _ := g.AddNode(Node{Label: "process", Props: map[string]Value{"name": TextValue("b")}})
	g.AddEdge(Edge{From: a.ID, To: b.ID, Label: "event"})
	g.AddEdge(Edge{From: b.ID, To: a.ID, Label: "event"})
	rows, err := g.Query(`MATCH (x:process {name: 'a'})-[p:event*1..10]->(y:process {name: 'a'}) RETURN p`)
	if err != nil {
		t.Fatal(err)
	}
	// Only one loop path exists (a->b->a), since edges cannot repeat.
	if len(rows.Data) != 1 || rows.Data[0][0].Int != 2 {
		t.Errorf("cycle paths = %v", rows.Data)
	}
}
