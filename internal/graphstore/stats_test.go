package graphstore

import (
	"testing"
)

// statsGraph builds a stats-enabled graph with nNodes file nodes and,
// per node, one "read" edge plus a "delete" edge every 10th node, all
// from a single process node, with ascending start times.
func statsGraph(t *testing.T, nNodes int) (*Graph, *Node) {
	t.Helper()
	g := NewGraph()
	g.EnableStats()
	proc, err := g.AddNode(Node{Label: "process", Props: map[string]Value{"exename": TextValue("/bin/sh")}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nNodes; i++ {
		f, err := g.AddNode(Node{Label: "file"})
		if err != nil {
			t.Fatal(err)
		}
		op := "read"
		if i%10 == 0 {
			op = "delete"
		}
		if _, err := g.AddEdge(Edge{From: proc.ID, To: f.ID, Label: "event", Props: map[string]Value{
			"optype":    TextValue(op),
			"starttime": IntValue(int64(1000 + i)),
		}}); err != nil {
			t.Fatal(err)
		}
	}
	return g, proc
}

func TestStatsDisabled(t *testing.T) {
	g := NewGraph()
	n1, _ := g.AddNode(Node{Label: "process"})
	n2, _ := g.AddNode(Node{Label: "file"})
	if _, err := g.AddEdge(Edge{From: n1.ID, To: n2.ID, Label: "event"}); err != nil {
		t.Fatal(err)
	}
	mark := g.Mark()
	if _, ok := g.EdgesAt(mark); ok {
		t.Error("EdgesAt should report !ok with stats disabled")
	}
	if _, ok := g.NodesAt(mark); ok {
		t.Error("NodesAt should report !ok with stats disabled")
	}
	if _, ok := g.EdgeOpCountAt("read", mark); ok {
		t.Error("EdgeOpCountAt should report !ok with stats disabled")
	}
	if _, _, ok := g.TimeRangeAt(mark); ok {
		t.Error("TimeRangeAt should report !ok with stats disabled")
	}
	if g.StatsFootprint() != 0 {
		t.Errorf("disabled footprint = %d, want 0", g.StatsFootprint())
	}
}

func TestEnableStatsIdempotent(t *testing.T) {
	g, _ := statsGraph(t, 20)
	before, _ := g.EdgesAt(g.Mark())
	g.EnableStats() // second call must not reset the trackers
	after, ok := g.EdgesAt(g.Mark())
	if !ok || after != before {
		t.Errorf("EnableStats reset the trackers: %d -> %d", before, after)
	}
}

func TestGraphCountsAtMark(t *testing.T) {
	g, _ := statsGraph(t, 300)
	full := g.Mark()

	edges, ok := g.EdgesAt(full)
	if !ok || edges != 300 {
		t.Errorf("EdgesAt(full) = %d, %v; want exact 300", edges, ok)
	}
	nodes, ok := g.NodesAt(full)
	if !ok || nodes != 301 {
		t.Errorf("NodesAt(full) = %d, %v; want exact 301", nodes, ok)
	}
	if got, _ := g.EdgesAt(0); got != 0 {
		t.Errorf("EdgesAt(0) = %d, want 0", got)
	}

	// A mid mark answers within one sampling stride of the truth:
	// node and edge seqs alternate, so mark/2 of each came before it.
	mid := full / 2
	edges, _ = g.EdgesAt(mid)
	if d := edges - int(mid)/2; d < -gSeqStride || d > gSeqStride {
		t.Errorf("EdgesAt(%d) = %d, want ~%d within one stride", mid, edges, mid/2)
	}

	// Growth after the mark stays invisible through it, within one
	// sampling stride (the live-count cap no longer tightens the
	// estimate once the graph has grown past the mark).
	for i := 0; i < 100; i++ {
		f, _ := g.AddNode(Node{Label: "file"})
		_ = f
	}
	if got, _ := g.NodesAt(full); got < nodes || got > nodes+gSeqStride {
		t.Errorf("NodesAt(full) after later inserts = %d, want within one stride of %d", got, nodes)
	}
}

func TestEdgeOpCountAt(t *testing.T) {
	g, _ := statsGraph(t, 300)
	full := g.Mark()

	del, ok := g.EdgeOpCountAt("delete", full)
	if !ok || del != 30 {
		t.Errorf("EdgeOpCountAt(delete) = %d, %v; want exact 30", del, ok)
	}
	rd, _ := g.EdgeOpCountAt("read", full)
	if rd != 270 {
		t.Errorf("EdgeOpCountAt(read) = %d, want exact 270", rd)
	}
	// Unknown op on a live tracker is a proven zero.
	if got, ok := g.EdgeOpCountAt("rename", full); !ok || got != 0 {
		t.Errorf("EdgeOpCountAt(rename) = %d, %v; want 0, true", got, ok)
	}
	if got, _ := g.EdgeOpCountAt("read", 0); got != 0 {
		t.Errorf("EdgeOpCountAt(read, 0) = %d, want 0", got)
	}
}

func TestTimeRangeAt(t *testing.T) {
	g, _ := statsGraph(t, 300)
	full := g.Mark()

	lo, hi, ok := g.TimeRangeAt(full)
	if !ok || lo != 1000 {
		t.Errorf("TimeRangeAt(full) = [%d, %d], %v; want min 1000", lo, hi, ok)
	}
	// Checkpoints trail the newest edges by at most one stride.
	if hi < int64(1000+299-gSeqStride) || hi > 1299 {
		t.Errorf("TimeRangeAt(full) max = %d, want within one stride of 1299", hi)
	}
	// A mark before the first checkpoint has no range.
	if _, _, ok := g.TimeRangeAt(1); ok {
		t.Error("TimeRangeAt before any checkpoint should report !ok")
	}
	// A mid mark must not see later maxima. The mid edge carries
	// starttime ~1000+mid/2 (node/edge seqs alternate).
	mid := full / 2
	if _, hi, ok := g.TimeRangeAt(mid); ok && hi > int64(1000)+int64(mid)/2 {
		t.Errorf("TimeRangeAt(%d) max = %d leaks later times", mid, hi)
	}
}

func TestGraphStatsFootprint(t *testing.T) {
	g, _ := statsGraph(t, 300)
	if g.StatsFootprint() == 0 {
		t.Error("tracked graph reports zero footprint")
	}
}

func TestGraphSchemaVersion(t *testing.T) {
	g1, g2 := NewGraph(), NewGraph()
	if g1.SchemaVersion() != g2.SchemaVersion() {
		t.Error("fresh graphs should fingerprint identically")
	}
	base := g1.SchemaVersion()
	g1.CreateNodeIndex("file", "name")
	if g1.SchemaVersion() == base {
		t.Error("node index did not change the fingerprint")
	}
	g2.CreateNodeIndex("file", "name")
	if g1.SchemaVersion() != g2.SchemaVersion() {
		t.Error("same index layout should fingerprint identically")
	}
	// Data never moves the fingerprint.
	before := g1.SchemaVersion()
	if _, err := g1.AddNode(Node{Label: "file", Props: map[string]Value{"name": TextValue("/a")}}); err != nil {
		t.Fatal(err)
	}
	if g1.SchemaVersion() != before {
		t.Error("node insert changed the fingerprint")
	}
}
