package graphstore

import (
	"fmt"

	"repro/internal/audit"
)

// Sharded partitions the property graph into per-host shards, mirroring
// relstore.Sharded: entity nodes are broadcast to every shard, event
// edges live in exactly one shard — the shard of the event's host
// (audit.ShardIndex; hostless events land in shard 0). Each shard has
// its own lock, so ingest batches for different hosts add edges
// concurrently and a path query fans out across shards.
//
// Paths never span shards: an edge's endpoints carry the edge's own
// host (audit semantics), and entities on different hosts are distinct
// nodes, so every path of a single-store graph lies entirely within one
// host's edge set. The per-shard union of a path query's results is
// therefore exactly the single-store result.
type Sharded struct {
	shards []*Graph
}

// NewSharded creates n bootstrapped graph shards (n < 1 is treated as 1).
func NewSharded(n int) *Sharded {
	if n < 1 {
		n = 1
	}
	s := &Sharded{shards: make([]*Graph, n)}
	for i := range s.shards {
		g := NewGraph()
		Bootstrap(g)
		s.shards[i] = g
	}
	return s
}

// NumShards returns the shard count.
func (s *Sharded) NumShards() int { return len(s.shards) }

// Shard returns the i-th graph shard.
func (s *Sharded) Shard(i int) *Graph { return s.shards[i] }

// ShardFor returns the shard index that stores events of the given host.
func (s *Sharded) ShardFor(host string) int {
	return audit.ShardIndex(host, len(s.shards))
}

// LoadNodes broadcasts entity nodes to every shard. Callers that also
// load edges must complete the broadcast first (and, across concurrent
// batches, serialize broadcasts against each other) so AddEdge never
// sees a missing endpoint. On a single-shard graph there is no
// broadcast to skip — the loop is one plain load (see
// relstore.Sharded.LoadEntities).
func (s *Sharded) LoadNodes(entities []*audit.Entity) error {
	if len(entities) == 0 {
		return nil
	}
	for _, g := range s.shards {
		for _, e := range entities {
			if _, err := g.AddNode(EntityNode(e)); err != nil {
				return err
			}
		}
	}
	return nil
}

// LoadEdges routes each event edge to its host's shard and loads the
// per-shard batches (audit.LoadSharded), concurrently when a batch
// spans multiple shards.
func (s *Sharded) LoadEdges(events []*audit.Event) error {
	return audit.LoadSharded(events, len(s.shards), func(shard int, batch []*audit.Event) error {
		g := s.shards[shard]
		for _, ev := range batch {
			if _, err := g.AddEdge(EventEdge(ev)); err != nil {
				return fmt.Errorf("graphstore: shard %d: %w", shard, err)
			}
		}
		return nil
	})
}

// Load broadcasts the entity nodes and routes the event edges.
func (s *Sharded) Load(entities []*audit.Entity, events []*audit.Event) error {
	if err := s.LoadNodes(entities); err != nil {
		return err
	}
	return s.LoadEdges(events)
}

// NumNodes reports the distinct node count (every shard holds the full
// broadcast set; shard 0 is read as the authority).
func (s *Sharded) NumNodes() int { return s.shards[0].NumNodes() }

// NumEdges reports the total edge count across shards (each edge lives
// in exactly one shard).
func (s *Sharded) NumEdges() int {
	total := 0
	for _, g := range s.shards {
		total += g.NumEdges()
	}
	return total
}

// EdgeCounts reports each shard's edge count, in shard order.
func (s *Sharded) EdgeCounts() []int {
	out := make([]int, len(s.shards))
	for i, g := range s.shards {
		out[i] = g.NumEdges()
	}
	return out
}
