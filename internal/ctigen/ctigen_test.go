package ctigen

import (
	"strings"
	"testing"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(5, 6)
	b := Generate(5, 6)
	if a.Text != b.Text || len(a.Triplets) != len(b.Triplets) {
		t.Error("generation not deterministic")
	}
}

func TestGenerateLabelsConsistent(t *testing.T) {
	rep := Generate(9, 8)
	// Every labelled IOC appears in the text.
	for _, i := range rep.IOCs {
		if !strings.Contains(rep.Text, i) {
			t.Errorf("IOC %q not in text", i)
		}
	}
	// Every triplet endpoint is a labelled IOC.
	iocSet := map[string]bool{}
	for _, i := range rep.IOCs {
		iocSet[i] = true
	}
	for _, tr := range rep.Triplets {
		if !iocSet[tr.Subj] || !iocSet[tr.Obj] {
			t.Errorf("triplet endpoints unlabelled: %+v", tr)
		}
		if tr.Verb == "" {
			t.Errorf("triplet without verb: %+v", tr)
		}
	}
	if len(rep.Triplets) == 0 {
		t.Error("no triplets generated")
	}
}

func TestGenerateEndsWithNetworkStep(t *testing.T) {
	rep := Generate(3, 5)
	last := rep.Triplets[len(rep.Triplets)-1]
	if !strings.Contains(last.Obj, ".") || strings.HasPrefix(last.Obj, "/") {
		t.Errorf("last step should target an IP, got %q", last.Obj)
	}
}

func TestCorpus(t *testing.T) {
	c := Corpus(1, 10, 5)
	if len(c) != 10 {
		t.Fatalf("corpus size = %d", len(c))
	}
	texts := map[string]bool{}
	for _, r := range c {
		texts[r.Text] = true
	}
	if len(texts) < 8 {
		t.Errorf("corpus lacks variety: %d distinct texts", len(texts))
	}
}

func TestGenerateMinimumSteps(t *testing.T) {
	rep := Generate(2, 0)
	if len(rep.Triplets) < 1 {
		t.Error("want at least one step")
	}
}
