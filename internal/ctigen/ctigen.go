// Package ctigen generates synthetic OSCTI reports with ground-truth
// labels. It substitutes for the public CTI report corpus used in the
// paper's NLP accuracy evaluation: each generated report narrates a
// multi-step attack in the declarative style of real threat reports, and
// carries the intended IOC list and IOC relation triplets so extraction
// precision and recall can be computed.
package ctigen

import (
	"fmt"
	"math/rand"
	"strings"
)

// Triplet is one ground-truth IOC relation.
type Triplet struct {
	Subj string
	Verb string // lemma
	Obj  string
}

// Report is one generated OSCTI report with labels.
type Report struct {
	Text     string
	IOCs     []string
	Triplets []Triplet
}

// step is an internal attack step before rendering.
type step struct {
	subj, verb, obj string
	objIsNet        bool
}

var tools = []string{
	"/bin/tar", "/usr/bin/curl", "/usr/bin/wget", "/bin/bzip2",
	"/usr/bin/gpg", "/usr/bin/scp", "/bin/nc", "/usr/bin/python",
	"/tmp/dropper", "/tmp/agent", "/usr/bin/ssh", "/bin/dd",
}

var dataFiles = []string{
	"/etc/passwd", "/etc/shadow", "/home/user/secrets.txt",
	"/var/db/customers.db", "/tmp/stage.tar", "/tmp/bundle.zip",
	"/etc/hosts", "/home/user/wallet.dat", "/var/log/auth.log",
	"/tmp/payload.bin", "/opt/app/config.yaml", "/root/.ssh/id_rsa",
}

// fileVerbs maps a relation verb lemma to its surface realisations:
// sentence templates with {S} subject, {V} conjugated verb phrase, {O}
// object.
type verbForm struct {
	lemma string
	past  string
	base  string
	// objPrep is the preposition linking verb to object ("" = direct).
	objPrep string
}

var fileVerbs = []verbForm{
	{"read", "read", "read", "from"},
	{"write", "wrote", "write", "to"},
	{"download", "downloaded", "download", ""},
	{"execute", "executed", "execute", ""},
	{"delete", "deleted", "delete", ""},
	{"scan", "scanned", "scan", ""},
	{"encrypt", "encrypted", "encrypt", ""},
	{"compress", "compressed", "compress", ""},
	{"modify", "modified", "modify", ""},
	{"copy", "copied", "copy", ""},
}

var netVerbs = []verbForm{
	{"connect", "connected", "connect", "to"},
	{"send", "sent", "send", "to"},
	{"beacon", "beaconed", "beacon", "to"},
}

// Generate produces a deterministic labelled report with nSteps relation
// steps.
func Generate(seed int64, nSteps int) Report {
	rng := rand.New(rand.NewSource(seed))
	if nSteps < 1 {
		nSteps = 1
	}

	// Build the step list: a small cast of tools acting on files, with a
	// final exfiltration to an IP.
	cast := make([]string, 0, 3)
	for _, i := range rng.Perm(len(tools))[:2+rng.Intn(2)] {
		cast = append(cast, tools[i])
	}
	var steps []step
	prev := ""
	for i := 0; i < nSteps-1; i++ {
		subj := cast[rng.Intn(len(cast))]
		// Bias towards reusing the previous actor: real reports narrate
		// several actions per tool, which also creates coreference
		// opportunities ("It wrote ...").
		if prev != "" && rng.Intn(5) < 2 {
			subj = prev
		}
		prev = subj
		v := fileVerbs[rng.Intn(len(fileVerbs))]
		obj := dataFiles[rng.Intn(len(dataFiles))]
		for obj == subj {
			obj = dataFiles[rng.Intn(len(dataFiles))]
		}
		steps = append(steps, step{subj: subj, verb: v.lemma, obj: obj})
	}
	ip := fmt.Sprintf("%d.%d.%d.%d", 10+rng.Intn(200), rng.Intn(256), rng.Intn(256), 1+rng.Intn(254))
	steps = append(steps, step{
		subj: cast[rng.Intn(len(cast))], verb: netVerbs[rng.Intn(len(netVerbs))].lemma,
		obj: ip, objIsNet: true,
	})

	return render(rng, steps)
}

// render turns steps into narrative text plus labels.
func render(rng *rand.Rand, steps []step) Report {
	var rep Report
	var b strings.Builder
	b.WriteString("The attacker penetrated the victim host after exploiting a vulnerability in the exposed service. ")

	iocSeen := map[string]bool{}
	dedup := map[Triplet]bool{}
	addIOC := func(s string) {
		if !iocSeen[s] {
			iocSeen[s] = true
			rep.IOCs = append(rep.IOCs, s)
		}
	}

	connectives := []string{"Then, ", "Next, ", "After that, ", "Subsequently, ", ""}
	prevSubj := ""
	for i, st := range steps {
		form := findForm(st.verb, st.objIsNet)
		tmpl := rng.Intn(4)
		// The coreference template ("It wrote ...") requires this step's
		// subject to repeat the previous step's subject, so the pronoun
		// has the right antecedent.
		if tmpl == 3 && st.subj != prevSubj {
			tmpl = rng.Intn(3)
		}
		conn := connectives[rng.Intn(len(connectives))]
		if i == 0 {
			conn = "As a first step, "
		}
		objPhrase := st.obj
		if form.objPrep != "" {
			objPhrase = form.objPrep + " " + st.obj
		}
		switch tmpl {
		case 0:
			// "the attacker used S to V O."
			fmt.Fprintf(&b, "%sthe attacker used %s to %s %s. ", conn, st.subj, form.base, objPhrase)
		case 1:
			// "S V-past O."
			fmt.Fprintf(&b, "%s%s %s %s. ", capitalizeConn(conn), st.subj, form.past, objPhrase)
		case 2:
			// "the attacker leveraged the S utility to V O."
			fmt.Fprintf(&b, "%sthe attacker leveraged the %s utility to %s %s. ", conn, st.subj, form.base, objPhrase)
		default:
			// Coreference: "It V-past O." — the subject is only
			// recoverable by resolving the pronoun to the previous
			// sentence's agent.
			fmt.Fprintf(&b, "It %s %s. ", form.past, objPhrase)
		}
		prevSubj = st.subj
		addIOC(st.subj)
		addIOC(st.obj)
		tr := Triplet{Subj: st.subj, Verb: st.verb, Obj: st.obj}
		if !dedup[tr] {
			dedup[tr] = true
			rep.Triplets = append(rep.Triplets, tr)
		}
	}
	rep.Text = strings.TrimSpace(b.String())
	return rep
}

// capitalizeConn fixes the casing when the connective starts the sentence
// before a bare-subject template.
func capitalizeConn(conn string) string {
	if conn == "" {
		return ""
	}
	return conn
}

func findForm(lemma string, net bool) verbForm {
	pool := fileVerbs
	if net {
		pool = netVerbs
	}
	for _, f := range pool {
		if f.lemma == lemma {
			return f
		}
	}
	return verbForm{lemma, lemma + "ed", lemma, ""}
}

// Corpus generates n labelled reports with distinct seeds.
func Corpus(seed int64, n, stepsPerReport int) []Report {
	out := make([]Report, n)
	for i := range out {
		out[i] = Generate(seed+int64(i)*7919, stepsPerReport)
	}
	return out
}
