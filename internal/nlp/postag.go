package nlp

import (
	"strings"
	"unicode"
)

// Penn Treebank tags used by the tagger. Only the subset needed by the
// dependency parser and the extraction pipeline is produced.
//
//	DT determiner      NN noun            NNS plural noun   NNP proper noun
//	VB base verb       VBD past verb      VBG gerund        VBN past part.
//	VBZ 3sg present    VBP non-3sg pres.  MD modal          TO "to"
//	IN preposition     PRP pronoun        PRP$ poss. pron.  CC conjunction
//	CD number          JJ adjective       RB adverb         WDT/WP wh-words
//	. sentence punct   , comma

// lexicon maps frequent words to their most likely tag in CTI prose.
var lexicon = map[string]string{
	// Determiners.
	"the": "DT", "a": "DT", "an": "DT", "this": "DT", "that": "DT",
	"these": "DT", "those": "DT", "its": "PRP$", "his": "PRP$",
	"her": "PRP$", "their": "PRP$", "each": "DT", "every": "DT",
	"all": "DT", "some": "DT", "any": "DT", "no": "DT", "both": "DT",
	// Pronouns.
	"it": "PRP", "he": "PRP", "she": "PRP", "they": "PRP", "them": "PRP",
	"him": "PRP", "itself": "PRP", "himself": "PRP", "we": "PRP",
	"i": "PRP", "you": "PRP", "us": "PRP", "me": "PRP",
	// Prepositions / subordinators.
	"of": "IN", "in": "IN", "on": "IN", "at": "IN", "from": "IN",
	"by": "IN", "with": "IN", "as": "IN", "for": "IN", "into": "IN",
	"onto": "IN", "through": "IN", "via": "IN", "against": "IN",
	"after": "IN", "before": "IN", "during": "IN", "between": "IN",
	"within": "IN", "without": "IN", "over": "IN", "under": "IN",
	"about": "IN", "if": "IN", "because": "IN", "while": "IN",
	"back": "RB", "out": "RP", "up": "RP", "down": "RP",
	// to: special-cased below (TO before a verb, IN otherwise).
	// Conjunctions.
	"and": "CC", "or": "CC", "but": "CC", "nor": "CC",
	// Modals and auxiliaries.
	"can": "MD", "could": "MD", "may": "MD", "might": "MD", "will": "MD",
	"would": "MD", "shall": "MD", "should": "MD", "must": "MD",
	"is": "VBZ", "are": "VBP", "was": "VBD", "were": "VBD", "be": "VB",
	"been": "VBN", "being": "VBG", "has": "VBZ", "have": "VBP",
	"had": "VBD", "does": "VBZ", "do": "VBP", "did": "VBD",
	// Wh-words.
	"which": "WDT", "who": "WP", "whom": "WP", "what": "WP",
	"where": "WRB", "when": "WRB", "how": "WRB", "why": "WRB",
	// Adverbs common in CTI narrative.
	"then": "RB", "finally": "RB", "first": "RB", "next": "RB",
	"later": "RB", "subsequently": "RB", "also": "RB", "mainly": "RB",
	"remotely": "RB", "locally": "RB", "not": "RB", "successfully": "RB",
	// Frequent CTI verbs (past tense dominates report prose).
	"used": "VBD", "uses": "VBZ", "use": "VB", "using": "VBG",
	"read": "VBD", "reads": "VBZ", "reading": "VBG",
	"wrote": "VBD", "writes": "VBZ", "write": "VB", "written": "VBN",
	"writing":    "VBG",
	"downloaded": "VBD", "downloads": "VBZ", "download": "VB",
	"uploaded": "VBD", "uploads": "VBZ", "upload": "VB",
	"executed": "VBD", "executes": "VBZ", "execute": "VB",
	"launched": "VBD", "launches": "VBZ", "launch": "VB",
	"connected": "VBD", "connects": "VBZ", "connect": "VB",
	"connecting": "VBG",
	"sent":       "VBD", "sends": "VBZ", "send": "VB",
	"received": "VBD", "receives": "VBZ", "receive": "VB",
	"transferred": "VBD", "transfers": "VBZ", "transfer": "VB",
	"leaked": "VBD", "leaks": "VBZ", "leak": "VB",
	"stole": "VBD", "steals": "VBZ", "steal": "VB", "stolen": "VBN",
	"compressed": "VBD", "compresses": "VBZ", "compress": "VB",
	"encrypted": "VBD", "encrypts": "VBZ", "encrypt": "VB",
	"created": "VBD", "creates": "VBZ", "create": "VB",
	"deleted": "VBD", "deletes": "VBZ", "delete": "VB",
	"modified": "VBD", "modifies": "VBZ", "modify": "VB",
	"dropped": "VBD", "drops": "VBZ", "drop": "VB",
	"installed": "VBD", "installs": "VBZ", "install": "VB",
	"opened": "VBD", "opens": "VBZ", "open": "VB",
	"copied": "VBD", "copies": "VBZ", "copy": "VB",
	"scanned": "VBD", "scans": "VBZ", "scan": "VB",
	"ran": "VBD", "runs": "VBZ", "run": "VB",
	"forked": "VBD", "forks": "VBZ", "fork": "VB",
	"spawned": "VBD", "spawns": "VBZ", "spawn": "VB",
	"exploited": "VBD", "exploits": "VBZ", "exploit": "VB",
	"attempted": "VBD", "attempts": "VBZ", "attempt": "VB",
	"leveraged": "VBD", "leverages": "VBZ", "leverage": "VB",
	"gathered": "VBD", "gathers": "VBZ", "gather": "VB",
	"exfiltrated": "VBD", "exfiltrates": "VBZ", "exfiltrate": "VB",
	"corresponds": "VBZ", "corresponded": "VBD",
	"involves": "VBZ", "involved": "VBD", "involve": "VB",
	"penetrates": "VBZ", "penetrated": "VBD",
	"contacted": "VBD", "contacts": "VBZ", "contact": "VB",
	"accessed": "VBD", "accesses": "VBZ", "access": "VB",
	"communicated": "VBD", "communicates": "VBZ",
	// Frequent CTI nouns that suffix rules would mistag.
	"attacker": "NN", "attack": "NN", "file": "NN", "files": "NNS",
	"data": "NNS", "information": "NN", "host": "NN", "server": "NN",
	"process": "NN", "utility": "NN", "tool": "NN", "credentials": "NNS",
	"metadata": "NN", "address": "NN", "password": "NN", "stage": "NN",
	"step": "NN", "behavior": "NN", "behaviors": "NNS", "details": "NNS",
	"assets": "NNS", "victim": "NN", "image": "NN", "cracker": "NN",
	"shadow": "NN", "text": "NN", "system": "NN", "services": "NNS",
	"vulnerability": "NN", "penetration": "NN", "movement": "NN",
	"compression": "NN",
}

// Tag assigns a Penn Treebank POS tag to every token in place. When
// isPlaceholder reports a token masks an IOC, the token is tagged NN so
// that downstream parsing treats it as a noun; pass nil when no
// placeholders are present.
func Tag(toks []Token, isPlaceholder func(string) bool) {
	for i := range toks {
		toks[i].POS = tagOne(toks, i, isPlaceholder)
	}
	// Contextual repair passes.
	for i := range toks {
		lower := strings.ToLower(toks[i].Text)
		// "to" + verb => TO; otherwise (noun, placeholder, ...) IN.
		if lower == "to" {
			toks[i].POS = "IN"
			if i+1 < len(toks) {
				next := toks[i+1].Text
				if (isPlaceholder == nil || !isPlaceholder(next)) && canBeBaseVerb(strings.ToLower(next)) {
					toks[i].POS = "TO"
				}
			}
		}
	}
	for i := range toks {
		// Past participle after has/have/had/was/were/been => VBN.
		if toks[i].POS == "VBD" && i > 0 {
			for j := i - 1; j >= 0 && j >= i-3; j-- {
				prev := strings.ToLower(toks[j].Text)
				if prev == "has" || prev == "have" || prev == "had" ||
					prev == "was" || prev == "were" || prev == "been" || prev == "being" {
					toks[i].POS = "VBN"
					break
				}
				if toks[j].POS != "RB" {
					break
				}
			}
		}
		// Noun directly after a determiner or possessive cannot be a verb:
		// "the read operation".
		if i > 0 && (toks[i-1].POS == "DT" || toks[i-1].POS == "PRP$") &&
			strings.HasPrefix(toks[i].POS, "VB") {
			toks[i].POS = "NN"
		}
		// Base verb after TO stays VB.
		if i > 0 && toks[i-1].POS == "TO" && strings.HasPrefix(toks[i].POS, "VB") {
			toks[i].POS = "VB"
		}
	}
}

// canBeBaseVerb reports whether a word plausibly heads an infinitive.
func canBeBaseVerb(w string) bool {
	if tag, ok := lexicon[w]; ok {
		return strings.HasPrefix(tag, "VB") || tag == "MD"
	}
	// Unknown words after "to" in CTI prose are usually verbs
	// ("to beacon", "to pivot") unless capitalized or numeric.
	if w == "" {
		return false
	}
	r := rune(w[0])
	return unicode.IsLower(r)
}

func tagOne(toks []Token, i int, isPlaceholder func(string) bool) string {
	text := toks[i].Text
	if isPlaceholder != nil && isPlaceholder(text) {
		return "NN"
	}
	if text == "," {
		return ","
	}
	if text == "." || text == "!" || text == "?" || text == ";" || text == ":" {
		return "."
	}
	if toks[i].IsPunct() {
		return "SYM"
	}
	lower := strings.ToLower(text)
	if tag, ok := lexicon[lower]; ok {
		return tag
	}
	if isNumeric(text) {
		return "CD"
	}
	// Capitalized mid-sentence => proper noun.
	if i > 0 && unicode.IsUpper(rune(text[0])) {
		return "NNP"
	}
	// Suffix heuristics.
	switch {
	case strings.HasSuffix(lower, "ly"):
		return "RB"
	case strings.HasSuffix(lower, "ing") && len(lower) > 4:
		return "VBG"
	case strings.HasSuffix(lower, "ed") && len(lower) > 3:
		return "VBD"
	case strings.HasSuffix(lower, "able") || strings.HasSuffix(lower, "ible"),
		strings.HasSuffix(lower, "ous"), strings.HasSuffix(lower, "ive"),
		strings.HasSuffix(lower, "ful"), strings.HasSuffix(lower, "al") && len(lower) > 4:
		return "JJ"
	case strings.HasSuffix(lower, "s") && !strings.HasSuffix(lower, "ss") && len(lower) > 3:
		return "NNS"
	}
	if i == 0 && unicode.IsUpper(rune(text[0])) {
		return "NN" // sentence-initial capital is ambiguous; default noun
	}
	return "NN"
}

func isNumeric(s string) bool {
	digits := 0
	for _, r := range s {
		switch {
		case unicode.IsDigit(r):
			digits++
		case r == '.' || r == ',' || r == '-' || r == '%':
		default:
			return false
		}
	}
	return digits > 0
}
