package nlp

import (
	"strings"
	"testing"
	"testing/quick"
)

func texts(toks []Token) []string {
	out := make([]string, len(toks))
	for i, t := range toks {
		out[i] = t.Text
	}
	return out
}

func TestTokenizeBasic(t *testing.T) {
	toks := Tokenize("The attacker used something0 to read credentials.")
	want := []string{"The", "attacker", "used", "something0", "to", "read", "credentials", "."}
	got := texts(toks)
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestTokenizePunctuation(t *testing.T) {
	toks := Tokenize(`He said: "run it now" (quickly).`)
	got := strings.Join(texts(toks), "|")
	want := `He|said|:|"|run|it|now|"|(|quickly|)|.`
	if got != want {
		t.Errorf("got %s\nwant %s", got, want)
	}
}

func TestTokenizeContraction(t *testing.T) {
	toks := Tokenize("the attacker's C2 host")
	got := texts(toks)
	if got[1] != "attacker" || got[2] != "'s" {
		t.Errorf("contraction split wrong: %v", got)
	}
}

func TestTokenizeOffsets(t *testing.T) {
	s := "ab cd."
	toks := Tokenize(s)
	for _, tok := range toks {
		if s[tok.Start:tok.End] != tok.Text {
			t.Errorf("offsets wrong for %q: [%d,%d)", tok.Text, tok.Start, tok.End)
		}
	}
}

func TestTokenizeEmpty(t *testing.T) {
	if got := Tokenize("   "); len(got) != 0 {
		t.Errorf("whitespace-only input: %v", got)
	}
	if got := Tokenize(""); len(got) != 0 {
		t.Errorf("empty input: %v", got)
	}
}

func TestTokenizeKeepsPlaceholders(t *testing.T) {
	toks := Tokenize("something12, and something3.")
	got := texts(toks)
	want := []string{"something12", ",", "and", "something3", "."}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("got %v", got)
	}
}

// Property: concatenating token texts preserves all non-space characters
// in order.
func TestTokenizeLosslessProperty(t *testing.T) {
	f := func(s string) bool {
		// Restrict to printable ASCII for a meaningful comparison.
		var in strings.Builder
		for _, r := range s {
			if r >= ' ' && r < 127 {
				in.WriteRune(r)
			}
		}
		src := in.String()
		toks := Tokenize(src)
		var joined strings.Builder
		for _, tok := range toks {
			joined.WriteString(tok.Text)
		}
		stripped := strings.Map(func(r rune) rune {
			if r == ' ' || r == '\t' {
				return -1
			}
			return r
		}, src)
		return joined.String() == stripped
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestIsPunct(t *testing.T) {
	if !(Token{Text: "."}).IsPunct() || !(Token{Text: "()"}).IsPunct() {
		t.Error("punct not detected")
	}
	if (Token{Text: "a."}).IsPunct() || (Token{Text: ""}).IsPunct() {
		t.Error("non-punct misdetected")
	}
}
