package nlp

import (
	"strings"
	"testing"
)

func TestSegmentBlocks(t *testing.T) {
	doc := "Para one line one.\nPara one line two.\n\nPara two.\n\n\nPara three."
	blocks := SegmentBlocks(doc)
	if len(blocks) != 3 {
		t.Fatalf("want 3 blocks, got %d: %v", len(blocks), blocks)
	}
	if blocks[0] != "Para one line one. Para one line two." {
		t.Errorf("block 0 = %q", blocks[0])
	}
	if blocks[2] != "Para three." {
		t.Errorf("block 2 = %q", blocks[2])
	}
}

func TestSegmentBlocksEmpty(t *testing.T) {
	if got := SegmentBlocks(""); len(got) != 0 {
		t.Errorf("empty doc: %v", got)
	}
	if got := SegmentBlocks("\n\n\n"); len(got) != 0 {
		t.Errorf("blank doc: %v", got)
	}
}

func TestSegmentSentences(t *testing.T) {
	block := "The attacker used something0 to read credentials. It wrote the data to something1. Then the attacker leveraged something2!"
	sents := SegmentSentences(block)
	if len(sents) != 3 {
		t.Fatalf("want 3 sentences, got %d: %v", len(sents), sents)
	}
	if !strings.HasPrefix(sents[1], "It wrote") {
		t.Errorf("sentence 1 = %q", sents[1])
	}
}

func TestSegmentSentencesAbbreviations(t *testing.T) {
	block := "Tools (e.g. tar) were used. The end."
	sents := SegmentSentences(block)
	if len(sents) != 2 {
		t.Fatalf("abbreviation split: %v", sents)
	}
}

func TestSegmentSentencesNoTerminator(t *testing.T) {
	sents := SegmentSentences("no terminator here")
	if len(sents) != 1 || sents[0] != "no terminator here" {
		t.Errorf("got %v", sents)
	}
}

func TestSegmentSentencesProtectedText(t *testing.T) {
	// After IOC protection no dots remain inside IOCs; a sentence
	// starting with a digit is still a boundary.
	block := "The host connected to something0. 192 connections followed."
	sents := SegmentSentences(block)
	if len(sents) != 2 {
		t.Errorf("got %v", sents)
	}
}
