// Package nlp is a lightweight, dependency-free natural-language
// processing toolkit. It substitutes for spaCy in ThreatRaptor's threat
// behavior extraction pipeline, providing exactly the interfaces the
// pipeline needs: tokenization, sentence and block segmentation,
// part-of-speech tagging, lemmatization, dependency parsing, and word
// vectors. The components are rule- and lexicon-based, tuned for the
// declarative past-tense prose of cyber threat intelligence reports.
package nlp

import (
	"strings"
	"unicode"
)

// Token is one token of a sentence with its offsets into the original
// text and the annotations added by later pipeline stages.
type Token struct {
	Text  string
	Start int // byte offset in the sentence
	End   int
	POS   string // Penn Treebank tag, set by Tagger
	Lemma string // set by Lemmatize
}

// IsPunct reports whether the token is pure punctuation.
func (t Token) IsPunct() bool {
	for _, r := range t.Text {
		if !unicode.IsPunct(r) && !unicode.IsSymbol(r) {
			return false
		}
	}
	return len(t.Text) > 0
}

// Tokenize splits a sentence into tokens. Leading/trailing punctuation is
// separated from words; internal punctuation (hyphens, protected-IOC
// underscores, decimal points inside numbers) is kept so that placeholder
// tokens survive intact. This tokenizer is intended to run on
// IOC-protected text, where the security-specific nuances (dots and
// slashes inside IOCs) have already been masked.
func Tokenize(sentence string) []Token {
	var toks []Token
	i := 0
	n := len(sentence)
	for i < n {
		// Skip whitespace.
		for i < n && isSpace(sentence[i]) {
			i++
		}
		if i >= n {
			break
		}
		start := i
		for i < n && !isSpace(sentence[i]) {
			i++
		}
		word := sentence[start:i]
		toks = append(toks, splitWord(word, start)...)
	}
	return toks
}

func isSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r'
}

// splitWord separates leading and trailing punctuation from a
// whitespace-delimited chunk, and splits contractions.
func splitWord(word string, offset int) []Token {
	var toks []Token
	// Peel leading punctuation.
	start := 0
	for start < len(word) && isSplitPunct(word[start]) {
		toks = append(toks, Token{Text: string(word[start]), Start: offset + start, End: offset + start + 1})
		start++
	}
	// Peel trailing punctuation (collect, then emit after the core).
	end := len(word)
	var trail []Token
	for end > start && isSplitPunct(word[end-1]) {
		trail = append([]Token{{Text: string(word[end-1]), Start: offset + end - 1, End: offset + end}}, trail...)
		end--
	}
	core := word[start:end]
	if core != "" {
		// Split simple contractions: "attacker's" -> attacker 's.
		if i := strings.LastIndex(core, "'"); i > 0 && i < len(core)-1 {
			suffix := strings.ToLower(core[i:])
			if suffix == "'s" || suffix == "'re" || suffix == "'ve" || suffix == "'ll" || suffix == "'d" || suffix == "n't" {
				toks = append(toks,
					Token{Text: core[:i], Start: offset + start, End: offset + start + i},
					Token{Text: core[i:], Start: offset + start + i, End: offset + end})
				return append(toks, trail...)
			}
		}
		toks = append(toks, Token{Text: core, Start: offset + start, End: offset + end})
	}
	return append(toks, trail...)
}

// isSplitPunct reports punctuation that should be its own token when at a
// word boundary. Characters common inside IOC placeholders and numbers
// (underscore, hyphen) are excluded.
func isSplitPunct(c byte) bool {
	switch c {
	case '.', ',', ';', ':', '!', '?', '(', ')', '[', ']', '{', '}', '"', '\'':
		return true
	}
	return false
}

// Stopwords is the default English stopword set used by tree
// simplification and IOC merging.
var Stopwords = map[string]bool{
	"a": true, "an": true, "the": true, "this": true, "that": true,
	"these": true, "those": true, "it": true, "its": true, "he": true,
	"she": true, "they": true, "them": true, "his": true, "her": true,
	"their": true, "is": true, "are": true, "was": true, "were": true,
	"be": true, "been": true, "being": true, "of": true, "in": true,
	"on": true, "at": true, "to": true, "from": true, "by": true,
	"with": true, "as": true, "for": true, "and": true, "or": true,
	"but": true, "then": true, "which": true, "who": true, "whom": true,
	"what": true, "where": true, "when": true, "how": true, "not": true,
	"no": true, "also": true, "both": true, "each": true, "into": true,
	"after": true, "before": true, "during": true, "between": true,
	"finally": true, "first": true, "next": true, "later": true,
}
