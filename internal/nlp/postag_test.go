package nlp

import (
	"strings"
	"testing"
)

func tagged(t *testing.T, sentence string) []Token {
	t.Helper()
	toks := Tokenize(sentence)
	Tag(toks, func(s string) bool { return strings.HasPrefix(s, "something") })
	return toks
}

func tagOf(toks []Token, text string) string {
	for _, t := range toks {
		if t.Text == text {
			return t.POS
		}
	}
	return ""
}

func TestTagBasicSentence(t *testing.T) {
	toks := tagged(t, "The attacker used something0 to read user credentials from something1.")
	checks := map[string]string{
		"The": "DT", "attacker": "NN", "used": "VBD", "something0": "NN",
		"to": "TO", "read": "VB", "credentials": "NNS", "from": "IN",
		"something1": "NN", ".": ".",
	}
	for text, want := range checks {
		if got := tagOf(toks, text); got != want {
			t.Errorf("tag(%q) = %q, want %q", text, got, want)
		}
	}
}

func TestTagToPreposition(t *testing.T) {
	toks := tagged(t, "It wrote the gathered information to something0.")
	if got := tagOf(toks, "to"); got != "IN" {
		t.Errorf("'to' before noun should be IN, got %q", got)
	}
	if got := tagOf(toks, "wrote"); got != "VBD" {
		t.Errorf("wrote = %q", got)
	}
	if got := tagOf(toks, "gathered"); got == "VBD" {
		t.Errorf("prenominal 'gathered' should not be VBD, got %q", got)
	}
}

func TestTagPronoun(t *testing.T) {
	toks := tagged(t, "It wrote the data.")
	if got := tagOf(toks, "It"); got != "PRP" {
		t.Errorf("It = %q", got)
	}
}

func TestTagPastParticiple(t *testing.T) {
	toks := tagged(t, "The file was encrypted by the tool.")
	if got := tagOf(toks, "encrypted"); got != "VBN" {
		t.Errorf("encrypted after was = %q, want VBN", got)
	}
}

func TestTagNumbers(t *testing.T) {
	toks := tagged(t, "He opened 42 files.")
	if got := tagOf(toks, "42"); got != "CD" {
		t.Errorf("42 = %q", got)
	}
}

func TestTagProperNoun(t *testing.T) {
	toks := tagged(t, "The attacker used GnuPG yesterday.")
	if got := tagOf(toks, "GnuPG"); got != "NNP" {
		t.Errorf("GnuPG = %q", got)
	}
}

func TestTagDeterminerBlocksVerb(t *testing.T) {
	toks := tagged(t, "The read operation failed.")
	if got := tagOf(toks, "read"); strings.HasPrefix(got, "VB") {
		t.Errorf("'the read' should not be a verb, got %q", got)
	}
}

func TestTagSuffixRules(t *testing.T) {
	toks := tagged(t, "the malware quickly beaconing outward")
	if got := tagOf(toks, "quickly"); got != "RB" {
		t.Errorf("quickly = %q", got)
	}
	if got := tagOf(toks, "beaconing"); got != "VBG" && got != "NN" {
		t.Errorf("beaconing = %q", got)
	}
}

func TestTagPlaceholderIsNoun(t *testing.T) {
	toks := tagged(t, "something7 connected to something8.")
	if got := tagOf(toks, "something7"); got != "NN" {
		t.Errorf("placeholder = %q, want NN", got)
	}
}

func TestTagNilPlaceholderFunc(t *testing.T) {
	toks := Tokenize("The tool ran.")
	Tag(toks, nil)
	if toks[0].POS == "" {
		t.Error("tags not assigned with nil placeholder func")
	}
}
