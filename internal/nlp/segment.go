package nlp

import (
	"strings"
	"unicode"
)

// SegmentBlocks splits a document into natural blocks (paragraphs),
// separated by one or more blank lines. Surrounding whitespace is
// trimmed; empty blocks are dropped. Single line breaks within a
// paragraph are preserved as spaces.
func SegmentBlocks(document string) []string {
	var blocks []string
	for _, raw := range strings.Split(document, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" {
			if n := len(blocks); n > 0 && blocks[n-1] != "" {
				blocks = append(blocks, "")
			}
			continue
		}
		if n := len(blocks); n > 0 && blocks[n-1] != "" {
			blocks[n-1] += " " + line
		} else {
			blocks = append(blocks, line)
		}
	}
	out := blocks[:0]
	for _, b := range blocks {
		if b != "" {
			out = append(out, b)
		}
	}
	return out
}

// SegmentSentences splits a block into sentences. A sentence boundary is
// a '.', '!' or '?' followed by whitespace and an uppercase letter, a
// digit, or end of text. Common abbreviations ("e.g.", "i.e.", "etc.")
// do not end sentences. This segmenter is intended to run on
// IOC-protected text, where dots inside IOCs have been masked.
func SegmentSentences(block string) []string {
	var sents []string
	start := 0
	runes := []rune(block)
	for i := 0; i < len(runes); i++ {
		r := runes[i]
		if r != '.' && r != '!' && r != '?' {
			continue
		}
		// Look back for an abbreviation.
		if r == '.' && isAbbreviation(runes, i) {
			continue
		}
		// Consume any run of closing punctuation after the terminator.
		j := i + 1
		for j < len(runes) && (runes[j] == '"' || runes[j] == ')' || runes[j] == '\'') {
			j++
		}
		if j >= len(runes) {
			sents = appendSentence(sents, string(runes[start:j]))
			start = j
			i = j - 1
			continue
		}
		if !unicode.IsSpace(runes[j]) {
			continue
		}
		// Skip whitespace; check the next visible character.
		k := j
		for k < len(runes) && unicode.IsSpace(runes[k]) {
			k++
		}
		if k >= len(runes) || unicode.IsUpper(runes[k]) || unicode.IsDigit(runes[k]) || runes[k] == '/' {
			sents = appendSentence(sents, string(runes[start:j]))
			start = k
			i = k - 1
		}
	}
	if start < len(runes) {
		sents = appendSentence(sents, string(runes[start:]))
	}
	return sents
}

func appendSentence(sents []string, s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return sents
	}
	return append(sents, s)
}

// isAbbreviation reports whether the '.' at position i terminates a known
// abbreviation or a single initial.
func isAbbreviation(runes []rune, i int) bool {
	start := i
	for start > 0 && (unicode.IsLetter(runes[start-1]) || runes[start-1] == '.') {
		start--
	}
	word := strings.ToLower(string(runes[start : i+1]))
	switch word {
	case "e.g.", "i.e.", "etc.", "vs.", "mr.", "ms.", "dr.", "fig.", "cf.", "al.", "no.":
		return true
	}
	// Single-letter initial: "C." in "C. elegans".
	if i-start == 1 && unicode.IsLetter(runes[start]) {
		return true
	}
	return false
}
