package nlp

import (
	"strings"
	"testing"
)

func parse(t *testing.T, sentence string) *DepTree {
	t.Helper()
	toks := Tokenize(sentence)
	Tag(toks, func(s string) bool { return strings.HasPrefix(s, "something") })
	return ParseDependency(toks)
}

func idx(tree *DepTree, text string) int {
	for i, tok := range tree.Tokens {
		if tok.Text == text {
			return i
		}
	}
	return -1
}

// depOf returns (head text, label) of the first token with the given text.
func depOf(tree *DepTree, text string) (string, string) {
	i := idx(tree, text)
	if i < 0 {
		return "", ""
	}
	h := tree.Head[i]
	if h < 0 {
		return "", tree.Label[i]
	}
	return tree.Tokens[h].Text, tree.Label[i]
}

func TestParseInstrumentSentence(t *testing.T) {
	// Fig. 2, first sentence pattern.
	tree := parse(t, "The attacker used something0 to read user credentials from something1.")
	if head, lbl := depOf(tree, "attacker"); head != "used" || lbl != "nsubj" {
		t.Errorf("attacker -> (%s, %s)", head, lbl)
	}
	if head, lbl := depOf(tree, "something0"); head != "used" || lbl != "dobj" {
		t.Errorf("something0 -> (%s, %s)", head, lbl)
	}
	if head, lbl := depOf(tree, "read"); head != "used" || lbl != "xcomp" {
		t.Errorf("read -> (%s, %s)", head, lbl)
	}
	if head, lbl := depOf(tree, "from"); head != "read" || lbl != "prep" {
		t.Errorf("from -> (%s, %s)", head, lbl)
	}
	if head, lbl := depOf(tree, "something1"); head != "from" || lbl != "pobj" {
		t.Errorf("something1 -> (%s, %s)", head, lbl)
	}
	if _, lbl := depOf(tree, "used"); lbl != "root" {
		t.Errorf("used should be root, got %s", lbl)
	}
}

func TestParsePronounSubject(t *testing.T) {
	// Fig. 2, second sentence pattern.
	tree := parse(t, "It wrote the gathered information to a file something0.")
	if head, lbl := depOf(tree, "It"); head != "wrote" || lbl != "nsubj" {
		t.Errorf("It -> (%s, %s)", head, lbl)
	}
	if head, lbl := depOf(tree, "something0"); head != "to" || lbl != "pobj" {
		t.Errorf("something0 -> (%s, %s)", head, lbl)
	}
	if head, lbl := depOf(tree, "information"); head != "wrote" || lbl != "dobj" {
		t.Errorf("information -> (%s, %s)", head, lbl)
	}
}

func TestParseConjoinedVerbs(t *testing.T) {
	// Fig. 2: "/bin/bzip2 read from /tmp/upload.tar and wrote to ...".
	tree := parse(t, "something0 read from something1 and wrote to something2.")
	if head, lbl := depOf(tree, "something0"); head != "read" || lbl != "nsubj" {
		t.Errorf("something0 -> (%s, %s)", head, lbl)
	}
	if head, lbl := depOf(tree, "wrote"); head != "read" || lbl != "conj" {
		t.Errorf("wrote -> (%s, %s)", head, lbl)
	}
	if head, _ := depOf(tree, "something1"); head != "from" {
		t.Errorf("something1 head = %s", head)
	}
	if head, _ := depOf(tree, "something2"); head != "to" {
		t.Errorf("something2 head = %s", head)
	}
	if head, _ := depOf(tree, "to"); head != "wrote" {
		t.Errorf("'to' should attach to wrote, got %s", head)
	}
}

func TestParsePostnominalGerund(t *testing.T) {
	// Fig. 2: "the launched process /usr/bin/gpg reading from ...".
	tree := parse(t, "the launched process something0 reading from something1.")
	if head, lbl := depOf(tree, "reading"); head != "something0" || lbl != "acl" {
		t.Errorf("reading -> (%s, %s)", head, lbl)
	}
	if head, _ := depOf(tree, "something1"); head != "from" {
		t.Errorf("something1 head = %s", head)
	}
	// NP head of "the launched process something0" is the placeholder.
	if head, lbl := depOf(tree, "process"); head != "something0" || lbl != "compound" {
		t.Errorf("process -> (%s, %s)", head, lbl)
	}
}

func TestParseLCA(t *testing.T) {
	tree := parse(t, "The attacker used something0 to read user credentials from something1.")
	a, b := idx(tree, "something0"), idx(tree, "something1")
	lca := tree.LCA(a, b)
	if lca < 0 || tree.Tokens[lca].Text != "used" {
		t.Errorf("LCA = %d (%s)", lca, tree.Tokens[lca].Text)
	}
	// LCA of a node with itself is itself.
	if tree.LCA(a, a) != a {
		t.Error("self LCA broken")
	}
}

func TestParseChildren(t *testing.T) {
	tree := parse(t, "The attacker used something0.")
	used := idx(tree, "used")
	kids := tree.Children(used)
	if len(kids) < 2 {
		t.Errorf("used should have >= 2 children, got %v", kids)
	}
}

func TestParseEmptyAndTiny(t *testing.T) {
	empty := ParseDependency(nil)
	if empty.Root() != -1 {
		t.Error("empty tree root should be -1")
	}
	one := parse(t, "Attack.")
	if one.Root() < 0 {
		t.Error("single-word sentence should have a root")
	}
}

func TestParseVerblessSentence(t *testing.T) {
	tree := parse(t, "The details of the data leakage attack.")
	root := tree.Root()
	if root < 0 {
		t.Fatal("verbless sentence needs a root")
	}
	// Every token must be attached (tree connected).
	for i := range tree.Tokens {
		if i != root && tree.Head[i] < 0 {
			t.Errorf("token %d (%s) unattached", i, tree.Tokens[i].Text)
		}
	}
}

func TestParseEveryTokenAttached(t *testing.T) {
	sents := []string{
		"After the lateral movement stage, the attacker attempts to steal valuable assets from the host.",
		"Then, the attacker leveraged something0 utility to compress the tar file.",
		"He leaked the gathered sensitive information back to the attacker C2 host by using something0 to connect to something1.",
		"Finally, the attacker leveraged the curl utility something0 to read the data from something1.",
	}
	for _, s := range sents {
		tree := parse(t, s)
		rootCount := 0
		for i := range tree.Tokens {
			if tree.Head[i] == -1 {
				rootCount++
			}
			if tree.Head[i] < -1 {
				t.Errorf("%q: token %q unattached", s, tree.Tokens[i].Text)
			}
			if tree.Head[i] == i {
				t.Errorf("%q: token %q is its own head", s, tree.Tokens[i].Text)
			}
		}
		if rootCount != 1 {
			t.Errorf("%q: %d roots", s, rootCount)
		}
	}
}

func TestParseNoCycles(t *testing.T) {
	sents := []string{
		"The attacker used something0 to read user credentials from something1.",
		"something0 read from something1 and wrote to something2.",
		"After compression, the attacker used the GnuPG tool to encrypt the zipped file.",
	}
	for _, s := range sents {
		tree := parse(t, s)
		for i := range tree.Tokens {
			path := tree.PathToRoot(i)
			if len(path) > len(tree.Tokens) {
				t.Fatalf("%q: cycle from token %d", s, i)
			}
			if path[len(path)-1] != tree.Root() {
				t.Errorf("%q: path from %d does not reach root", s, i)
			}
		}
	}
}

func TestParsePassive(t *testing.T) {
	tree := parse(t, "The file was encrypted by the tool.")
	if head, lbl := depOf(tree, "file"); head != "encrypted" || (lbl != "nsubjpass" && lbl != "nsubj") {
		t.Errorf("file -> (%s, %s)", head, lbl)
	}
	if head, _ := depOf(tree, "tool"); head != "by" {
		t.Errorf("tool head = %s", head)
	}
}
