package nlp

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEmbedNormalised(t *testing.T) {
	v := Embed("upload.tar")
	norm := 0.0
	for _, x := range v {
		norm += x * x
	}
	if math.Abs(norm-1) > 1e-9 {
		t.Errorf("norm = %f", norm)
	}
}

func TestSimilaritySelf(t *testing.T) {
	if s := Similarity("upload.tar", "upload.tar"); math.Abs(s-1) > 1e-9 {
		t.Errorf("self similarity = %f", s)
	}
}

func TestSimilarityRelatedVsUnrelated(t *testing.T) {
	related := Similarity("/tmp/upload.tar", "upload.tar")
	unrelated := Similarity("/tmp/upload.tar", "192.168.29.128")
	if related <= unrelated {
		t.Errorf("related %f should exceed unrelated %f", related, unrelated)
	}
	if related < 0.5 {
		t.Errorf("related similarity too low: %f", related)
	}
}

func TestSimilarityCaseInsensitive(t *testing.T) {
	if s := Similarity("GnuPG", "gnupg"); math.Abs(s-1) > 1e-9 {
		t.Errorf("case-insensitive similarity = %f", s)
	}
}

// Property: similarity is symmetric and bounded.
func TestSimilarityProperty(t *testing.T) {
	f := func(a, b string) bool {
		s1, s2 := Similarity(a, b), Similarity(b, a)
		return math.Abs(s1-s2) < 1e-9 && s1 >= -1e-9 && s1 <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEmbedEmpty(t *testing.T) {
	v := Embed("")
	// "^$" still has one 2-gram, so the vector is nonzero and normalised.
	norm := 0.0
	for _, x := range v {
		norm += x * x
	}
	if math.Abs(norm-1) > 1e-9 {
		t.Errorf("empty-word norm = %f", norm)
	}
}
