package nlp

import "strings"

// irregular maps irregular inflections to their lemma.
var irregular = map[string]string{
	"was": "be", "were": "be", "is": "be", "are": "be", "been": "be",
	"being": "be", "am": "be",
	"has": "have", "had": "have", "having": "have",
	"did": "do", "does": "do", "done": "do", "doing": "do",
	"wrote": "write", "written": "write",
	"sent": "send", "read": "read", "ran": "run", "run": "run",
	"stole": "steal", "stolen": "steal",
	"took": "take", "taken": "take",
	"made": "make", "got": "get", "gotten": "get",
	"went": "go", "gone": "go", "came": "come",
	"saw": "see", "seen": "see", "found": "find",
	"left": "leave", "kept": "keep", "held": "hold",
	"began": "begin", "begun": "begin",
	"brought": "bring", "bought": "buy", "built": "build",
	"caught": "catch", "chose": "choose", "chosen": "choose",
	"gave": "give", "given": "give", "knew": "know", "known": "know",
	"led": "lead", "lost": "lose", "met": "meet", "put": "put",
	"said": "say", "set": "set", "told": "tell", "thought": "think",
	"understood": "understand", "woke": "wake", "hid": "hide",
	"hidden": "hide", "spread": "spread", "cut": "cut", "let": "let",
	"dropped": "drop", "dropping": "drop",
	"scanned": "scan", "scanning": "scan",
	"transferred": "transfer", "transferring": "transfer",
	"copied": "copy", "copying": "copy", "copies": "copy",
	"modified": "modify", "modifies": "modify",
}

// eFinalStems lists stems (after stripping -ed/-ing) whose source verb
// ends in a silent 'e' and therefore needs it restored: "us" -> "use",
// "leverag" -> "leverage". Matching is by suffix.
var eFinalStems = []string{
	"us", "creat", "leverag", "compris", "receiv", "captur", "stor",
	"at" /* relocate, generate, ... */, "iz", "encod", "decod",
	"acquir", "requir", "manag", "engag", "chang", "merg", "purg", "ut",
	"remov", "mov", "prov", "sav", "serv", "observ", "resolv", "involv",
	"escap", "scrap", "replac", "trac", "sourc", "referenc",
}

// Lemmatize returns the dictionary form of an (assumed verb or noun)
// English word, lowercased. It applies the irregular table first, then
// standard suffix-stripping rules with silent-e restoration and
// doubled-consonant collapsing.
func Lemmatize(word string) string {
	w := strings.ToLower(word)
	if lemma, ok := irregular[w]; ok {
		return lemma
	}
	switch {
	case strings.HasSuffix(w, "ies") && len(w) > 4:
		return w[:len(w)-3] + "y"
	case strings.HasSuffix(w, "ied") && len(w) > 4:
		return w[:len(w)-3] + "y"
	case strings.HasSuffix(w, "sses"):
		return w[:len(w)-2]
	case strings.HasSuffix(w, "ches") || strings.HasSuffix(w, "shes") ||
		strings.HasSuffix(w, "xes") || strings.HasSuffix(w, "zes"):
		return w[:len(w)-2]
	case strings.HasSuffix(w, "ing") && len(w) > 4:
		return fixStem(w[:len(w)-3])
	case strings.HasSuffix(w, "ed") && len(w) > 3:
		return fixStem(w[:len(w)-2])
	case strings.HasSuffix(w, "s") && !strings.HasSuffix(w, "ss") &&
		!strings.HasSuffix(w, "us") && len(w) > 3:
		return w[:len(w)-1]
	}
	return w
}

// fixStem repairs a stem produced by stripping -ed/-ing: it collapses a
// doubled final consonant and restores a dropped silent 'e'.
func fixStem(stem string) string {
	if len(stem) >= 3 {
		last := stem[len(stem)-1]
		prev := stem[len(stem)-2]
		if last == prev && isConsonant(last) && last != 'l' && last != 's' {
			return stem[:len(stem)-1]
		}
	}
	for _, suf := range eFinalStems {
		if strings.HasSuffix(stem, suf) {
			return stem + "e"
		}
	}
	return stem
}

// isConsonant reports whether a lowercase letter is a consonant.
func isConsonant(c byte) bool {
	switch c {
	case 'a', 'e', 'i', 'o', 'u':
		return false
	}
	return c >= 'a' && c <= 'z'
}
