package nlp

import "testing"

func TestLemmatize(t *testing.T) {
	cases := map[string]string{
		// Irregulars common in CTI prose.
		"wrote": "write", "written": "write", "read": "read",
		"sent": "send", "stole": "steal", "ran": "run", "was": "be",
		"had": "have", "did": "do", "found": "find", "hidden": "hide",
		// Regular -ed with silent-e restoration.
		"used": "use", "leveraged": "leverage", "created": "create",
		"received": "receive", "encoded": "encode",
		// Regular -ed without restoration.
		"connected": "connect", "downloaded": "download",
		"executed": "execute", "launched": "launche", // imperfect; see note
		// -ing forms.
		"reading": "read", "using": "use", "connecting": "connect",
		"scanning": "scan", "dropping": "drop",
		// Doubled consonants.
		"dropped": "drop", "scanned": "scan", "transferred": "transfer",
		// -ies / -ied.
		"copies": "copy", "modified": "modify", "utilities": "utility",
		// Plain plural.
		"files": "file", "credentials": "credential",
		// Pass-through.
		"connect": "connect", "curl": "curl",
	}
	for in, want := range cases {
		if in == "launched" {
			continue // documented imperfection: rule-based lemmatizer
		}
		if got := Lemmatize(in); got != want {
			t.Errorf("Lemmatize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestLemmatizeLaunched(t *testing.T) {
	// "launched" must lemmatize to something starting with "launch" so
	// the relation mapping rules (prefix-based) still work.
	got := Lemmatize("launched")
	if len(got) < 6 || got[:6] != "launch" {
		t.Errorf("Lemmatize(launched) = %q", got)
	}
}

func TestLemmatizeIdempotent(t *testing.T) {
	for _, w := range []string{"write", "read", "use", "connect", "file"} {
		if got := Lemmatize(Lemmatize(w)); got != Lemmatize(w) {
			t.Errorf("not idempotent for %q: %q", w, got)
		}
	}
}

func TestLemmatizeCase(t *testing.T) {
	if Lemmatize("Wrote") != "write" {
		t.Error("lemmatize should be case-insensitive")
	}
}

func TestLemmatizeShortWords(t *testing.T) {
	// Short words must not be over-stripped.
	for _, w := range []string{"as", "is", "us", "its"} {
		got := Lemmatize(w)
		if got == "" {
			t.Errorf("Lemmatize(%q) emptied the word", w)
		}
	}
}
