package nlp

import (
	"hash/fnv"
	"math"
	"strings"
)

// VecDim is the dimensionality of the hashed character-n-gram word
// vectors. The vectors substitute for spaCy's pretrained embeddings in
// the IOC merge step: words sharing many character n-grams (e.g.
// "upload.tar" and "/tmp/upload.tar") get high cosine similarity.
const VecDim = 64

// WordVec is a dense embedding of a word.
type WordVec [VecDim]float64

// Embed computes the hashed character-n-gram vector (n = 2..4) of a word,
// L2-normalised. The word is lowercased and padded with boundary markers
// so prefixes and suffixes are distinguished from internal n-grams.
func Embed(word string) WordVec {
	var v WordVec
	w := "^" + strings.ToLower(word) + "$"
	for n := 2; n <= 4; n++ {
		if len(w) < n {
			break
		}
		for i := 0; i+n <= len(w); i++ {
			h := fnv.New32a()
			h.Write([]byte(w[i : i+n]))
			v[h.Sum32()%VecDim]++
		}
	}
	norm := 0.0
	for _, x := range v {
		norm += x * x
	}
	if norm > 0 {
		norm = math.Sqrt(norm)
		for i := range v {
			v[i] /= norm
		}
	}
	return v
}

// Cosine returns the cosine similarity of two vectors in [−1, 1]; for
// Embed outputs the range is [0, 1].
func Cosine(a, b WordVec) float64 {
	dot := 0.0
	for i := range a {
		dot += a[i] * b[i]
	}
	return dot
}

// Similarity is a convenience for Cosine(Embed(a), Embed(b)).
func Similarity(a, b string) float64 {
	return Cosine(Embed(a), Embed(b))
}
