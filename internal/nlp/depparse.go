package nlp

import "strings"

// DepTree is a dependency parse: every token has a head index (-1 for the
// root) and a dependency label. The tree is produced by a deterministic
// chunk-and-attach parser tuned for the declarative prose of CTI reports;
// it emits a Universal-Dependencies-flavoured label set:
//
//	nsubj dobj prep pobj xcomp conj cc aux mark det poss amod compound
//	nummod advmod acl relcl prt punct dep root
type DepTree struct {
	Tokens []Token
	Head   []int
	Label  []string
}

// Root returns the index of the root token, or -1 for an empty tree.
func (t *DepTree) Root() int {
	for i, h := range t.Head {
		if h == -1 {
			return i
		}
	}
	return -1
}

// Children returns the indexes of the direct dependents of token i in
// surface order.
func (t *DepTree) Children(i int) []int {
	var out []int
	for j, h := range t.Head {
		if h == i {
			out = append(out, j)
		}
	}
	return out
}

// PathToRoot returns the chain of token indexes from i up to the root,
// starting with i itself. Cycles (which the parser never produces) are
// guarded by a length cap.
func (t *DepTree) PathToRoot(i int) []int {
	var path []int
	for i >= 0 && len(path) <= len(t.Tokens) {
		path = append(path, i)
		i = t.Head[i]
	}
	return path
}

// LCA returns the lowest common ancestor of tokens a and b, or -1.
func (t *DepTree) LCA(a, b int) int {
	onPath := make(map[int]bool)
	for _, i := range t.PathToRoot(a) {
		onPath[i] = true
	}
	for _, i := range t.PathToRoot(b) {
		if onPath[i] {
			return i
		}
	}
	return -1
}

// isVerbTag reports VB/VBD/VBG/VBN/VBP/VBZ.
func isVerbTag(pos string) bool { return strings.HasPrefix(pos, "VB") }

// isNounTag reports NN/NNS/NNP plus pronouns and numbers, the token kinds
// that can head a noun phrase.
func isNounTag(pos string) bool {
	return strings.HasPrefix(pos, "NN") || pos == "PRP" || pos == "CD" || pos == "WDT" || pos == "WP"
}

// ParseDependency builds a dependency tree over tagged tokens.
func ParseDependency(toks []Token) *DepTree {
	n := len(toks)
	t := &DepTree{
		Tokens: toks,
		Head:   make([]int, n),
		Label:  make([]string, n),
	}
	for i := range t.Head {
		t.Head[i] = -2 // unattached
		t.Label[i] = "dep"
	}
	if n == 0 {
		return t
	}

	p := &chunkParser{t: t, n: n}
	p.chunkNounPhrases()
	p.groupVerbs()
	p.linkVerbs()
	p.attachSubjects()
	p.attachObjectsAndPreps()
	p.attachModifiers()
	p.finish()
	return t
}

type chunkParser struct {
	t *DepTree
	n int

	npHead    []int // token -> NP head index, or -1
	mainVerbs []int // indexes of clause main verbs, in order
	isMain    []bool
}

func (p *chunkParser) pos(i int) string  { return p.t.Tokens[i].POS }
func (p *chunkParser) text(i int) string { return strings.ToLower(p.t.Tokens[i].Text) }

func (p *chunkParser) attach(dep, head int, label string) {
	if dep == head || dep < 0 || dep >= p.n {
		return
	}
	if p.t.Head[dep] != -2 {
		return // first attachment wins
	}
	p.t.Head[dep] = head
	p.t.Label[dep] = label
}

// chunkNounPhrases finds maximal NP runs and attaches internal tokens to
// the NP head (the last nominal in the run).
func (p *chunkParser) chunkNounPhrases() {
	p.npHead = make([]int, p.n)
	for i := range p.npHead {
		p.npHead[i] = -1
	}
	i := 0
	for i < p.n {
		if !p.inNP(i) {
			i++
			continue
		}
		j := i
		for j < p.n && p.inNP(j) {
			j++
		}
		// Head: last token in [i, j) with a nominal tag.
		head := -1
		for k := j - 1; k >= i; k-- {
			if isNounTag(p.pos(k)) {
				head = k
				break
			}
		}
		if head < 0 {
			i = j
			continue
		}
		for k := i; k < j; k++ {
			p.npHead[k] = head
			if k == head {
				continue
			}
			switch {
			case p.pos(k) == "DT":
				p.attach(k, head, "det")
			case p.pos(k) == "PRP$":
				p.attach(k, head, "poss")
			case p.pos(k) == "JJ" || p.pos(k) == "VBN" || p.pos(k) == "VBG":
				p.attach(k, head, "amod")
			case p.pos(k) == "CD":
				p.attach(k, head, "nummod")
			case isNounTag(p.pos(k)):
				p.attach(k, head, "compound")
			default:
				p.attach(k, head, "dep")
			}
		}
		i = j
	}
}

// inNP reports whether token i can be part of a noun phrase chunk. A
// VBN/VBG is included only prenominally ("the launched process", "the
// gathered information"): it must be preceded by DT/PRP$/JJ and followed
// eventually by a noun.
func (p *chunkParser) inNP(i int) bool {
	pos := p.pos(i)
	if pos == "DT" || pos == "PRP$" || pos == "JJ" || isNounTag(pos) {
		return true
	}
	if pos == "VBN" || pos == "VBG" {
		if i == 0 || i+1 >= p.n {
			return false
		}
		prev := p.pos(i - 1)
		if prev != "DT" && prev != "PRP$" && prev != "JJ" {
			return false
		}
		next := p.pos(i + 1)
		return isNounTag(next) || next == "JJ" || next == "NN"
	}
	return false
}

// groupVerbs finds verb groups and designates main verbs. Auxiliaries
// (be/have/do/modals) followed by another verb attach to it as aux.
func (p *chunkParser) groupVerbs() {
	p.isMain = make([]bool, p.n)
	for i := 0; i < p.n; i++ {
		if !isVerbTag(p.pos(i)) && p.pos(i) != "MD" {
			continue
		}
		if p.npHead[i] >= 0 && p.t.Head[i] != -2 {
			continue // prenominal participle already attached inside an NP
		}
		// Is there a later verb in the same group (allowing RB between)?
		j := i + 1
		for j < p.n && (p.pos(j) == "RB" || p.pos(j) == "TO") {
			j++
		}
		if j < p.n && isVerbTag(p.pos(j)) && p.isAux(i) {
			p.attach(i, j, "aux")
			continue
		}
		p.isMain[i] = true
		p.mainVerbs = append(p.mainVerbs, i)
	}
}

// isAux reports whether the verb at i is an auxiliary form.
func (p *chunkParser) isAux(i int) bool {
	switch p.text(i) {
	case "is", "are", "was", "were", "be", "been", "being",
		"has", "have", "had", "do", "does", "did":
		return true
	}
	return p.pos(i) == "MD"
}

// linkVerbs chooses the root verb and links the other main verbs to it:
// infinitival complements (to VB) as xcomp, coordinated verbs as conj,
// postnominal participles as acl, relative clauses as relcl.
func (p *chunkParser) linkVerbs() {
	if len(p.mainVerbs) == 0 {
		return
	}
	// A postnominal gerund ("process /usr/bin/gpg reading from ...")
	// attaches to the noun before it as acl rather than heading the
	// clause.
	isACL := func(v int) bool {
		return p.pos(v) == "VBG" && v > 0 && p.npHead[v-1] >= 0 && !p.precededByTO(v)
	}
	root := -1
	for _, v := range p.mainVerbs {
		if !isACL(v) {
			root = v
			break
		}
	}
	if root < 0 {
		// Every verb is a postnominal gerund: the sentence is a noun
		// fragment; root the noun governing the first gerund.
		if nb := p.nounBefore(p.mainVerbs[0]); nb >= 0 {
			p.t.Head[nb] = -1
			p.t.Label[nb] = "root"
		} else {
			root = p.mainVerbs[0]
		}
	}
	if root >= 0 {
		p.t.Head[root] = -1
		p.t.Label[root] = "root"
	}
	prev := root
	for _, v := range p.mainVerbs {
		if v == root {
			prev = v
			continue
		}
		switch {
		case isACL(v):
			p.attach(v, p.nounBefore(v), "acl")
		case prev < 0:
			// No governing verb yet (noun-rooted fragment).
			p.attach(v, p.t.Root(), "dep")
		case p.precededByTO(v):
			// "used X to read Y": mark "to", xcomp to the previous verb.
			p.attach(v, prev, "xcomp")
		case p.precededByCC(v):
			p.attach(v, prev, "conj")
		case p.relativeMarkerBefore(v):
			// "..., which corresponds to ..." attaches to the preceding noun.
			if nb := p.nounBefore(v); nb >= 0 {
				p.attach(v, nb, "relcl")
			} else {
				p.attach(v, prev, "conj")
			}
		default:
			p.attach(v, prev, "conj")
		}
		if !isACL(v) {
			prev = v
		}
	}
	// Attach TO markers to their verbs.
	for i := 0; i < p.n; i++ {
		if p.pos(i) == "TO" {
			if v := p.nextMainVerb(i); v >= 0 {
				p.attach(i, v, "mark")
			}
		}
	}
}

// precededByTO reports a TO directly before the verb (allowing RB).
func (p *chunkParser) precededByTO(v int) bool {
	for i := v - 1; i >= 0; i-- {
		switch p.pos(i) {
		case "RB":
			continue
		case "TO":
			return true
		default:
			return false
		}
	}
	return false
}

func (p *chunkParser) precededByCC(v int) bool {
	for i := v - 1; i >= 0; i-- {
		switch p.pos(i) {
		case "RB", ",":
			continue
		case "CC":
			return true
		default:
			return false
		}
	}
	return false
}

// relativeMarkerBefore reports a WDT/WP within the few tokens before v
// ("file, which corresponds ...").
func (p *chunkParser) relativeMarkerBefore(v int) bool {
	for i := v - 1; i >= 0 && i >= v-3; i-- {
		if p.pos(i) == "WDT" || p.pos(i) == "WP" {
			return true
		}
		if p.pos(i) != "," && p.pos(i) != "RB" {
			return false
		}
	}
	return false
}

// nounBefore returns the nearest NP head strictly before i, or -1.
func (p *chunkParser) nounBefore(i int) int {
	for j := i - 1; j >= 0; j-- {
		if p.npHead[j] >= 0 {
			return p.npHead[j]
		}
		if p.isMain[j] {
			return -1
		}
	}
	return -1
}

// nextMainVerb returns the first main verb at or after i, or -1.
func (p *chunkParser) nextMainVerb(i int) int {
	for j := i; j < p.n; j++ {
		if p.isMain[j] {
			return j
		}
	}
	return -1
}

// attachSubjects finds the nsubj of each main verb: the nearest NP head to
// the left that is not inside a prepositional phrase, stopping at the
// previous main verb. Verbs with an infinitival (xcomp) or coordinated
// (conj) link inherit the governing verb's subject and get none locally.
func (p *chunkParser) attachSubjects() {
	for _, v := range p.mainVerbs {
		lbl := p.t.Label[v]
		if lbl == "xcomp" || lbl == "acl" {
			continue // controlled subject
		}
		limit := -1
		for _, u := range p.mainVerbs {
			if u >= v {
				break
			}
			limit = u
		}
		for j := v - 1; j > limit; j-- {
			if p.npHead[j] < 0 {
				continue
			}
			head := p.npHead[j]
			if p.t.Head[head] != -2 && p.t.Head[head] != -1 {
				j = head // already attached (e.g. pobj); skip past it
				continue
			}
			// Not inside a PP: no IN immediately governing this NP.
			if k := p.npStart(head); k > 0 && p.pos(k-1) == "IN" {
				j = k
				continue
			}
			if p.t.Head[head] == -2 {
				label := "nsubj"
				if p.isPassive(v) {
					label = "nsubjpass"
				}
				p.attach(head, v, label)
			}
			break
		}
	}
}

// npStart returns the first token index of the NP containing head.
func (p *chunkParser) npStart(head int) int {
	start := head
	for start > 0 && p.npHead[start-1] == head {
		start--
	}
	return start
}

// isPassive reports a VBN with a be-auxiliary.
func (p *chunkParser) isPassive(v int) bool {
	if p.pos(v) != "VBN" {
		return false
	}
	for _, c := range p.t.Children(v) {
		if p.t.Label[c] == "aux" {
			switch p.text(c) {
			case "is", "are", "was", "were", "be", "been", "being":
				return true
			}
		}
	}
	return false
}

// attachObjectsAndPreps walks left to right attaching direct objects and
// prepositional phrases to the nearest governing verb (or noun, for
// noun-attached PPs when no verb is available).
func (p *chunkParser) attachObjectsAndPreps() {
	var curVerb = -1
	var curPrep = -1
	for i := 0; i < p.n; i++ {
		switch {
		case p.isMain[i]:
			curVerb = i
			curPrep = -1
		case p.pos(i) == "IN":
			// Attach the preposition to the governing verb; noun
			// attachment only when the clause has no verb yet. Verb
			// attachment is what the relation-extraction rules consume.
			target := curVerb
			if target < 0 {
				target = p.nounBeforeAttached(i)
			}
			if target >= 0 {
				p.attach(i, target, "prep")
				curPrep = i
			} else {
				curPrep = i // sentence-initial PP: head fixed in finish()
			}
		case p.pos(i) == ",":
			curPrep = -1
		case p.npHead[i] == i && p.t.Head[i] == -2:
			// Unattached NP head: pobj of the open preposition, else dobj
			// of the current verb.
			switch {
			case curPrep >= 0:
				p.attach(i, curPrep, "pobj")
				curPrep = -1
			case curVerb >= 0:
				p.attach(i, curVerb, "dobj")
			}
		}
	}
}

// nounBeforeAttached returns the nearest NP head before i that is already
// attached (so PPs chain: "a file in a folder on the host").
func (p *chunkParser) nounBeforeAttached(i int) int {
	for j := i - 1; j >= 0; j-- {
		if p.isMain[j] || p.pos(j) == "," {
			return -1
		}
		if p.npHead[j] >= 0 {
			return p.npHead[j]
		}
	}
	return -1
}

// attachModifiers attaches adverbs, particles, conjunctions, and
// wh-markers.
func (p *chunkParser) attachModifiers() {
	for i := 0; i < p.n; i++ {
		if p.t.Head[i] != -2 {
			continue
		}
		switch p.pos(i) {
		case "RB":
			if v := p.nearestVerb(i); v >= 0 {
				p.attach(i, v, "advmod")
			}
		case "RP":
			if v := p.prevMainVerb(i); v >= 0 {
				p.attach(i, v, "prt")
			}
		case "CC":
			// cc attaches to the following conjunct when it exists, else
			// to the preceding element.
			if next := p.nextAttachable(i); next >= 0 {
				p.attach(i, next, "cc")
			} else if prev := p.prevAttachable(i); prev >= 0 {
				p.attach(i, prev, "cc")
			}
		case "WDT", "WP", "WRB":
			if v := p.nextMainVerb(i); v >= 0 {
				p.attach(i, v, "nsubj")
			}
		}
	}
	// Coordinated NPs: "X and Y" where Y is still unattached.
	for i := 0; i < p.n; i++ {
		if p.pos(i) != "CC" {
			continue
		}
		left, right := -1, -1
		for j := i - 1; j >= 0; j-- {
			if p.npHead[j] >= 0 {
				left = p.npHead[j]
				break
			}
			if p.isMain[j] {
				break
			}
		}
		for j := i + 1; j < p.n; j++ {
			if p.npHead[j] >= 0 {
				right = p.npHead[j]
				break
			}
			if p.isMain[j] {
				break
			}
		}
		if left >= 0 && right >= 0 && p.t.Head[right] == -2 {
			p.attach(right, left, "conj")
		}
	}
}

func (p *chunkParser) nearestVerb(i int) int {
	best, bestDist := -1, p.n+1
	for _, v := range p.mainVerbs {
		d := v - i
		if d < 0 {
			d = -d
		}
		if d < bestDist {
			best, bestDist = v, d
		}
	}
	return best
}

func (p *chunkParser) prevMainVerb(i int) int {
	for j := i - 1; j >= 0; j-- {
		if p.isMain[j] {
			return j
		}
	}
	return -1
}

func (p *chunkParser) nextAttachable(i int) int {
	for j := i + 1; j < p.n; j++ {
		if p.isMain[j] || p.npHead[j] == j {
			return j
		}
	}
	return -1
}

func (p *chunkParser) prevAttachable(i int) int {
	for j := i - 1; j >= 0; j-- {
		if p.isMain[j] || p.npHead[j] == j {
			return j
		}
	}
	return -1
}

// finish attaches everything left over to the root (or makes the first
// leftover the root when the sentence has no verb).
func (p *chunkParser) finish() {
	root := p.t.Root()
	if root < 0 {
		// Verbless sentence: root the first unattached token, preferring
		// an NP head.
		for i := 0; i < p.n; i++ {
			if p.t.Head[i] == -2 && p.npHead[i] == i {
				root = i
				break
			}
		}
		if root < 0 {
			for i := 0; i < p.n; i++ {
				if p.t.Head[i] == -2 {
					root = i
					break
				}
			}
		}
		if root < 0 {
			root = 0
			p.t.Head[0] = -1
			p.t.Label[0] = "root"
		} else {
			p.t.Head[root] = -1
			p.t.Label[root] = "root"
		}
	}
	for i := 0; i < p.n; i++ {
		if p.t.Head[i] != -2 {
			continue
		}
		label := "dep"
		if p.t.Tokens[i].IsPunct() {
			label = "punct"
		}
		p.t.Head[i] = root
		p.t.Label[i] = label
	}
}
