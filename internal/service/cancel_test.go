package service

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro"
)

// crossPageTBQL is an unconstrained two-pattern cross product: plenty of
// rows for multi-page cursors, quadratic join work for slow pages.
const crossPageTBQL = `proc p1 read file f1 as evt1
proc p2 write file f2 as evt2
return p1, f1, p2, f2`

// neverTBQL is a contradictory temporal join: the read×write cross
// product is explored but nothing can ever match, so a hunt over it
// does quadratic join work and emits zero rows — the fixture for
// kill-switch and disconnect tests (scaled long by re-ingesting the
// workload until the cross product is seconds of work).
const neverTBQL = `proc p1 read file f1 as evt1
proc p2 write file f2 as evt2
with evt1 before evt2, evt2 before evt1
return p1, p2`

// newCancelServer builds a daemon with lifecycle-governance config over
// an ingested workload.
func newCancelServer(t *testing.T, opts threatraptor.Options, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	sys, err := threatraptor.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewWithConfig(sys, cfg)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	t.Cleanup(srv.Close)
	_, _, logs := newTestServer(t) // only for the workload text
	ingestLogs(t, ts, logs)
	return srv, ts
}

func readAllBody(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestHuntClientGoneBeforeExecution: a request whose client disconnected
// while the body was read never executes.
func TestHuntClientGoneBeforeExecution(t *testing.T) {
	srv, _ := newCancelServer(t, threatraptor.Options{}, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := httptest.NewRequest(http.MethodPost, "/hunt", strings.NewReader(crackTBQL)).WithContext(ctx)
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, r)
	if got := srv.executions.Load(); got != 0 {
		t.Fatalf("executions = %d after a dead-client hunt, want 0", got)
	}
	if got := srv.huntsCancelled.Load(); got != 1 {
		t.Fatalf("hunts_cancelled = %d, want 1", got)
	}
}

// TestHuntTimeout: -hunt-timeout answers 504 with the partial span
// breakdown and bumps the timed-out counter.
func TestHuntTimeout(t *testing.T) {
	srv, ts := newCancelServer(t, threatraptor.Options{}, Config{HuntTimeout: time.Nanosecond})
	resp, err := http.Post(ts.URL+"/hunt", "text/plain", strings.NewReader(crackTBQL))
	if err != nil {
		t.Fatal(err)
	}
	body := readAllBody(t, resp)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504: %s", resp.StatusCode, body)
	}
	var out struct {
		Error string          `json:"error"`
		Trace json.RawMessage `json:"trace"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("bad 504 body %q: %v", body, err)
	}
	if !strings.Contains(out.Error, "deadline") {
		t.Errorf("504 error %q does not mention the deadline", out.Error)
	}
	if len(out.Trace) == 0 || !strings.Contains(string(out.Trace), "aborted") {
		t.Errorf("504 body lacks the aborted span breakdown: %s", body)
	}
	if got := srv.huntsTimedOut.Load(); got != 1 {
		t.Errorf("hunts_timed_out = %d, want 1", got)
	}
	// /explain shares the deadline wrap.
	resp, err = http.Get(ts.URL + "/explain?q=" + "proc%20p%20read%20file%20f%20as%20e1%0areturn%20p")
	if err != nil {
		t.Fatal(err)
	}
	if body := readAllBody(t, resp); resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("explain status = %d, want 504: %s", resp.StatusCode, body)
	}
}

// TestHuntJoinBudget: -max-join-rows aborts a runaway join with 422
// naming the budget.
func TestHuntJoinBudget(t *testing.T) {
	srv, ts := newCancelServer(t, threatraptor.Options{MaxJoinRows: 1}, Config{})
	resp, err := http.Post(ts.URL+"/hunt", "text/plain", strings.NewReader(crossPageTBQL))
	if err != nil {
		t.Fatal(err)
	}
	body := readAllBody(t, resp)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422: %s", resp.StatusCode, body)
	}
	if !strings.Contains(body, "max-join-rows") {
		t.Errorf("422 body %q does not name the budget", body)
	}
	if got := srv.huntsBudget.Load(); got != 1 {
		t.Errorf("hunts_budget_exceeded = %d, want 1", got)
	}
}

// TestHuntAdmissionShed: beyond -max-hunts, requests shed with 429 and a
// Retry-After hint.
func TestHuntAdmissionShed(t *testing.T) {
	srv, ts := newCancelServer(t, threatraptor.Options{}, Config{MaxHunts: 1})
	// Occupy the single admission slot directly; the next hunt sheds.
	srv.huntSlots <- struct{}{}
	defer func() { <-srv.huntSlots }()
	resp, err := http.Post(ts.URL+"/hunt", "text/plain", strings.NewReader(crackTBQL))
	if err != nil {
		t.Fatal(err)
	}
	body := readAllBody(t, resp)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if got := srv.huntsShed.Load(); got != 1 {
		t.Errorf("hunts_shed = %d, want 1", got)
	}
	// /hunt/next sheds the same way (unknown cursor checked first, so use
	// a registered one).
	<-srv.huntSlots
	hr := postHunt(t, ts, crossPageTBQL, 3, 0)
	if hr.CursorID == "" {
		t.Fatal("fixture hunt registered no cursor")
	}
	srv.huntSlots <- struct{}{}
	resp, err = http.Get(ts.URL + "/hunt/next?cursor=" + hr.CursorID)
	if err != nil {
		t.Fatal(err)
	}
	if body := readAllBody(t, resp); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("hunt/next status = %d, want 429: %s", resp.StatusCode, body)
	}
}

// TestKillSwitch: DELETE /debug/hunts/<request-id> cancels a live hunt;
// the victim answers 503, the killer gets the execution count, and an
// unknown id gets 404.
func TestKillSwitch(t *testing.T) {
	srv, ts := newCancelServer(t, threatraptor.Options{}, Config{})
	// Re-ingest the workload until neverTBQL's read×write cross product
	// is several seconds of join work: ~25k reads × ~30k writes.
	_, _, logs := newTestServer(t)
	for i := 0; i < 60; i++ {
		ingestLogs(t, ts, logs)
	}

	type result struct {
		status int
		body   string
	}
	done := make(chan result, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/hunt", "text/plain", strings.NewReader(neverTBQL))
		if err != nil {
			done <- result{status: -1, body: err.Error()}
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		done <- result{status: resp.StatusCode, body: string(b)}
	}()

	// Find the victim's request id via the debug listing.
	var rid string
	deadline := time.Now().Add(10 * time.Second)
	for rid == "" {
		if time.Now().After(deadline) {
			t.Fatal("hunt never appeared in /debug/hunts")
		}
		resp, err := http.Get(ts.URL + "/debug/hunts")
		if err != nil {
			t.Fatal(err)
		}
		var dbg DebugHuntsResponse
		decodeJSON(t, resp, &dbg)
		for _, h := range dbg.InFlight {
			if h.Kind == "hunt" {
				rid = h.RequestID
			}
		}
		time.Sleep(2 * time.Millisecond)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/debug/hunts/"+rid, nil)
	killStart := time.Now()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body := readAllBody(t, resp)
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, rid) {
		t.Fatalf("kill response %d: %s", resp.StatusCode, body)
	}

	select {
	case r := <-done:
		if r.status != http.StatusServiceUnavailable {
			t.Fatalf("killed hunt answered %d: %s", r.status, r.body)
		}
		if !strings.Contains(r.body, "killed") {
			t.Errorf("killed hunt body %q does not say why", r.body)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("killed hunt never answered")
	}
	if lag := time.Since(killStart); lag > 5*time.Second {
		t.Errorf("kill took %s to take effect", lag)
	}
	if got := srv.huntsKilled.Load(); got != 1 {
		t.Errorf("hunts_killed = %d, want 1", got)
	}

	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/debug/hunts/nonesuch", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if body := readAllBody(t, resp); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown kill id answered %d: %s", resp.StatusCode, body)
	}
}

// TestCursorPageCancelledResumes: a /hunt/next whose request context is
// already dead answers 499 and leaves the cursor resumable — the retry
// serves exactly the rows the interrupted page would have, no loss, no
// duplication.
func TestCursorPageCancelledResumes(t *testing.T) {
	srv, ts := newCancelServer(t, threatraptor.Options{}, Config{})

	// Reference prefix, then a paged run with an interrupted page in the
	// middle; the paged rows must reproduce the prefix exactly.
	const refLen = 24
	ref := postHunt(t, ts, crossPageTBQL, refLen, 0)
	if len(ref.Rows) != refLen {
		t.Fatalf("fixture produced %d rows, want %d", len(ref.Rows), refLen)
	}
	first := postHunt(t, ts, crossPageTBQL, 4, 0)
	if first.CursorID == "" {
		t.Fatal("no cursor registered")
	}
	got := append([][]string{}, first.Rows...)

	// Interrupted page: dead request context.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := httptest.NewRequest(http.MethodGet, "/hunt/next?cursor="+first.CursorID+"&limit=4", nil).WithContext(ctx)
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, r)
	if w.Code != statusClientClosedRequest {
		t.Fatalf("interrupted page answered %d: %s", w.Code, w.Body.String())
	}
	if got := srv.huntsCancelled.Load(); got == 0 {
		t.Error("hunts_cancelled did not count the interrupted page")
	}

	// Retry: pages continue from where the interrupt stopped them; the
	// union must equal the reference prefix with no loss or duplication.
	for len(got) < refLen {
		resp, err := http.Get(ts.URL + "/hunt/next?cursor=" + first.CursorID + "&limit=4")
		if err != nil {
			t.Fatal(err)
		}
		var page HuntResponse
		decodeJSON(t, resp, &page)
		if page.Offset != len(got) {
			t.Fatalf("page offset %d, want %d (rows lost or repeated)", page.Offset, len(got))
		}
		if page.CursorID == "" {
			t.Fatalf("cursor exhausted at %d rows", len(got)+len(page.Rows))
		}
		got = append(got, page.Rows...)
	}
	for i := range ref.Rows {
		if strings.Join(got[i], "\x00") != strings.Join(ref.Rows[i], "\x00") {
			t.Fatalf("row %d diverged: %v != %v", i, got[i], ref.Rows[i])
		}
	}
}

// TestEvictionCancelsInflightPage: closeAll fires the victim's page
// cancel hook with errCursorEvicted before taking the entry lock.
func TestEvictionCancelsInflightPage(t *testing.T) {
	srv, ts := newCancelServer(t, threatraptor.Options{}, Config{})
	hr := postHunt(t, ts, crossPageTBQL, 2, 0)
	if hr.CursorID == "" {
		t.Fatal("no cursor registered")
	}
	e := srv.cursors.acquire(hr.CursorID)
	if e == nil {
		t.Fatal("cursor not acquirable")
	}
	ctx, kill := context.WithCancelCause(context.Background())
	e.setPageCancel(kill)
	defer e.setPageCancel(nil)

	srv.cursors.closeAll([]*cursorEntry{e})
	select {
	case <-ctx.Done():
	default:
		t.Fatal("eviction did not fire the page cancel hook")
	}
	if cause := context.Cause(ctx); !errors.Is(cause, errCursorEvicted) {
		t.Fatalf("cancel cause = %v, want errCursorEvicted", cause)
	}
}

// TestServerCloseAbortsWebhookBackoff: a webhook pump parked in its
// retry backoff against a dead sink exits promptly when the server
// closes, instead of sleeping out the backoff.
func TestServerCloseAbortsWebhookBackoff(t *testing.T) {
	sys, err := threatraptor.New(threatraptor.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewWithConfig(sys, Config{WebhookBackoff: time.Minute})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	_, _, logs := newTestServer(t)
	ingestLogs(t, ts, logs)

	// 127.0.0.1:1 refuses connections immediately, so the pump reaches
	// its first one-minute backoff right away.
	registerWatch(t, ts, WatchRequest{Query: crackWatchTBQL, Webhook: "http://127.0.0.1:1/hook"})
	deadline := time.Now().Add(5 * time.Second)
	for srv.watches.open() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("webhook watch never registered")
		}
		time.Sleep(2 * time.Millisecond)
	}

	closeStart := time.Now()
	srv.Close()
	deadline = time.Now().Add(5 * time.Second)
	for srv.watches.open() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("webhook pump still parked in backoff after Close")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if took := time.Since(closeStart); took > 2*time.Second {
		t.Errorf("pump took %s to exit after Close", took)
	}
}

// TestCancellationStorm hammers the hunt surface with cancelled,
// timed-out, and completed hunts, then proves nothing leaked: every
// epoch pin is released once the cursors are closed, and the goroutine
// count returns to its baseline.
func TestCancellationStorm(t *testing.T) {
	srv, ts := newCancelServer(t, threatraptor.Options{}, Config{})
	client := &http.Client{}

	baselineGoroutines := runtime.NumGoroutine()
	rng := rand.New(rand.NewSource(99))
	var mu sync.Mutex
	var cursorIDs []string
	var wg sync.WaitGroup
	for i := 0; i < 120; i++ {
		delay := time.Duration(rng.Intn(2000)) * time.Microsecond
		query := crossPageTBQL
		if i%3 == 0 {
			query = neverTBQL // never completes; only cancellation ends it
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), delay)
			defer cancel()
			req, err := http.NewRequestWithContext(ctx, http.MethodPost,
				ts.URL+"/hunt", strings.NewReader(query))
			if err != nil {
				return
			}
			resp, err := client.Do(req)
			if err != nil {
				return // cancelled mid-flight: the expected common case
			}
			defer resp.Body.Close()
			body, _ := io.ReadAll(resp.Body)
			var hr HuntResponse
			if json.Unmarshal(body, &hr) == nil && hr.CursorID != "" {
				mu.Lock()
				cursorIDs = append(cursorIDs, hr.CursorID)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	// Completed hunts legitimately pinned epochs via their cursors; close
	// them all, then nothing may remain pinned.
	for _, id := range cursorIDs {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/hunt/cursor?cursor="+id, nil)
		if resp, err := client.Do(req); err == nil {
			resp.Body.Close()
		}
	}
	if n := srv.cursors.open(); n != 0 {
		t.Fatalf("%d cursors still open after the storm", n)
	}
	if n := srv.cursors.reg.Pinned(); n != 0 {
		t.Fatalf("%d epochs still pinned after the storm — cancellation leaked pins", n)
	}

	// Cancelled requests must not leak goroutines. Allow scheduler noise
	// plus idle keep-alive connections still draining.
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baselineGoroutines+10 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines: baseline %d, now %d\n%s",
				baselineGoroutines, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
