package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro"
	"repro/internal/wal"
)

// doRequest exercises the handler in-process (no listener needed).
func doRequest(t *testing.T, srv *Server, method, path, body, contentType string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	return rec
}

func decodeBody(t *testing.T, rec *httptest.ResponseRecorder, v any) {
	t.Helper()
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), v); err != nil {
		t.Fatalf("bad JSON %q: %v", rec.Body, err)
	}
}

// durableTestServer builds a daemon whose System runs on a WAL over the
// given (possibly fault-injecting) filesystem.
func durableTestServer(t *testing.T, fsys wal.FS) (*Server, *wal.Log) {
	t.Helper()
	log, err := wal.Open(t.TempDir(), wal.Config{FS: fsys, Fsync: wal.Policy{Mode: wal.FsyncNever}})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := threatraptor.New(threatraptor.Options{WAL: log})
	if err != nil {
		t.Fatal(err)
	}
	return NewWithConfig(sys, Config{WAL: log}), log
}

const durabilityLog = "5000\t5001\thostA\t100\t/bin/worker\tread\tfile\t/etc/passwd\t64\n" +
	"5010\t5011\thostA\t100\t/bin/worker\twrite\tfile\t/tmp/out\t64\n"

// TestIngestDegraded503: a disk fault flips ingest to 503 with the
// reason surfaced in /stats, while hunts and stats keep serving.
func TestIngestDegraded503(t *testing.T) {
	ffs := wal.NewFaultFS(nil)
	srv, _ := durableTestServer(t, ffs)

	resp := doRequest(t, srv, http.MethodPost, "/ingest", durabilityLog, "text/plain")
	if resp.Code != http.StatusOK {
		t.Fatalf("healthy ingest: %d %s", resp.Code, resp.Body)
	}

	ffs.FailWritesAfter(0, false)
	resp = doRequest(t, srv, http.MethodPost, "/ingest", durabilityLog, "text/plain")
	if resp.Code != http.StatusServiceUnavailable {
		t.Fatalf("degraded ingest: %d %s, want 503", resp.Code, resp.Body)
	}

	// Hunts still answer.
	resp = doRequest(t, srv, http.MethodPost, "/hunt", "proc p read file f as e1\nreturn distinct p, f", "text/plain")
	if resp.Code != http.StatusOK {
		t.Fatalf("hunt while degraded: %d %s", resp.Code, resp.Body)
	}

	var st StatsResponse
	statsResp := doRequest(t, srv, http.MethodGet, "/stats", "", "")
	if statsResp.Code != http.StatusOK {
		t.Fatalf("stats: %d", statsResp.Code)
	}
	decodeBody(t, statsResp, &st)
	if st.DegradedReason == "" || !strings.Contains(st.DegradedReason, "append") {
		t.Fatalf("degraded_reason = %q, want append fault", st.DegradedReason)
	}
	if st.WALRecords != 1 {
		t.Fatalf("wal_records = %d, want 1 (only the healthy batch)", st.WALRecords)
	}
}

// TestHuntQueryCache: repeated hunts with identical TBQL text hit the
// analyzed-query cache and the counters surface in /stats.
func TestHuntQueryCache(t *testing.T) {
	srv, _ := durableTestServer(t, nil)
	if resp := doRequest(t, srv, http.MethodPost, "/ingest", durabilityLog, "text/plain"); resp.Code != http.StatusOK {
		t.Fatalf("ingest: %d %s", resp.Code, resp.Body)
	}

	src := "proc p read file f as e1\nreturn distinct p, f"
	for i := 0; i < 3; i++ {
		if resp := doRequest(t, srv, http.MethodPost, "/hunt", src, "text/plain"); resp.Code != http.StatusOK {
			t.Fatalf("hunt %d: %d %s", i, resp.Code, resp.Body)
		}
	}
	// A different query is its own entry.
	other := "proc p write file f as e1\nreturn distinct f"
	if resp := doRequest(t, srv, http.MethodPost, "/hunt", other, "text/plain"); resp.Code != http.StatusOK {
		t.Fatalf("other hunt: %d %s", resp.Code, resp.Body)
	}

	var st StatsResponse
	statsResp := doRequest(t, srv, http.MethodGet, "/stats", "", "")
	decodeBody(t, statsResp, &st)
	if st.QueryCacheHits != 2 || st.QueryCacheMisses != 2 || st.QueryCacheSize != 2 {
		t.Fatalf("query cache hits/misses/size = %d/%d/%d, want 2/2/2",
			st.QueryCacheHits, st.QueryCacheMisses, st.QueryCacheSize)
	}
}

// TestStatsRecoveryFields: a daemon built over a recovered data dir
// reports the recovery in /stats.
func TestStatsRecoveryFields(t *testing.T) {
	dir := t.TempDir()
	log, err := wal.Open(dir, wal.Config{})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := threatraptor.New(threatraptor.Options{WAL: log})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewWithConfig(sys, Config{WAL: log})
	if resp := doRequest(t, srv, http.MethodPost, "/ingest", durabilityLog, "text/plain"); resp.Code != http.StatusOK {
		t.Fatalf("ingest: %d %s", resp.Code, resp.Body)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	log2, err := wal.Open(dir, wal.Config{})
	if err != nil {
		t.Fatal(err)
	}
	sys2, err := threatraptor.New(threatraptor.Options{WAL: log2})
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	srv2 := NewWithConfig(sys2, Config{WAL: log2})

	var st StatsResponse
	statsResp := doRequest(t, srv2, http.MethodGet, "/stats", "", "")
	decodeBody(t, statsResp, &st)
	if st.RecoveredEpoch != 1 || st.RecoveredCommits != 1 || !st.RecoveredClean {
		t.Fatalf("recovery fields %d/%d/clean=%v, want 1/1/true",
			st.RecoveredEpoch, st.RecoveredCommits, st.RecoveredClean)
	}
	if st.Epoch != 1 {
		t.Fatalf("epoch after recovery = %d, want 1", st.Epoch)
	}
	if st.Events != 2 {
		t.Fatalf("recovered store has %d events, want 2", st.Events)
	}
}
