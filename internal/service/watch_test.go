package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro"
)

// crackWatchTBQL is the non-distinct variant of crackTBQL: every
// re-ingest of the workload appends fresh events, so each commit yields
// new match rows and a standing hunt emits a batch per ingest.
const crackWatchTBQL = `proc p["%cracker%"] read file f["%/etc/shadow%"] as e1
return p, f`

// registerWatch POSTs a watch and decodes the response.
func registerWatch(t *testing.T, ts *httptest.Server, req WatchRequest) WatchResponse {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/watch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var wr WatchResponse
	decodeJSON(t, resp, &wr)
	return wr
}

// openStream attaches to a watch's NDJSON stream and returns a reader
// positioned at the first frame plus a closer.
func openStream(t *testing.T, ts *httptest.Server, id, format string) (*bufio.Reader, func()) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/watch/stream?watch=" + id + "&format=" + format)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("stream status %d: %s", resp.StatusCode, body)
	}
	return bufio.NewReader(resp.Body), func() { resp.Body.Close() }
}

func readNDJSONFrame(t *testing.T, r *bufio.Reader) *WatchFrame {
	t.Helper()
	line, err := r.ReadBytes('\n')
	if err != nil {
		t.Fatalf("reading frame: %v (partial %q)", err, line)
	}
	f, err := parseFrameNDJSON(line)
	if err != nil {
		t.Fatalf("bad frame %q: %v", line, err)
	}
	return f
}

func ingestLogs(t *testing.T, ts *httptest.Server, logs string) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/ingest", "text/plain", strings.NewReader(logs))
	if err != nil {
		t.Fatal(err)
	}
	var ing IngestResponse
	decodeJSON(t, resp, &ing)
	if ing.EventsStored == 0 {
		t.Fatalf("ingest stored nothing: %+v", ing)
	}
}

// TestWatchStreamRoundTrip drives the full lifecycle over NDJSON:
// register after an ingest (backfill frame), a second ingest pushes a
// delta frame, DELETE ends the stream with a terminal frame, and
// /stats accounts for all of it.
func TestWatchStreamRoundTrip(t *testing.T) {
	ts, _, logs := newTestServer(t)
	ingestLogs(t, ts, logs)

	// Raw-TBQL body registration (non-JSON content type).
	resp, err := http.Post(ts.URL+"/watch", "text/plain", strings.NewReader(crackWatchTBQL))
	if err != nil {
		t.Fatal(err)
	}
	var wr WatchResponse
	decodeJSON(t, resp, &wr)
	if wr.WatchID == "" || wr.Resume == "" {
		t.Fatalf("watch response = %+v", wr)
	}
	if want := []string{"p.exename", "f.name"}; !reflect.DeepEqual(wr.Columns, want) {
		t.Fatalf("columns = %v, want %v", wr.Columns, want)
	}

	r, closeStream := openStream(t, ts, wr.WatchID, "ndjson")
	defer closeStream()

	// Frame 1: the backfill over the pre-registration ingest.
	f1 := readNDJSONFrame(t, r)
	if f1.WatchID != wr.WatchID || f1.Error != "" || len(f1.Rows) == 0 || f1.Resume == "" {
		t.Fatalf("backfill frame = %+v", f1)
	}
	if !strings.Contains(f1.Rows[0][0], "cracker") {
		t.Fatalf("backfill rows = %v", f1.Rows[:1])
	}

	// Frame 2: the delta of a second ingest commit.
	ingestLogs(t, ts, logs)
	f2 := readNDJSONFrame(t, r)
	if f2.Error != "" || len(f2.Rows) == 0 || f2.Epoch <= f1.Epoch {
		t.Fatalf("delta frame = %+v after %+v", f2, f1)
	}

	// DELETE ends the watch; the stream closes with a terminal frame
	// carrying the last resume token.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/watch?watch="+wr.WatchID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var closed map[string]string
	decodeJSON(t, dresp, &closed)
	if closed["closed"] != wr.WatchID {
		t.Fatalf("delete response = %v", closed)
	}
	end := readNDJSONFrame(t, r)
	if end.Error == "" || end.Resume == "" {
		t.Fatalf("terminal frame = %+v", end)
	}
	if _, err := r.ReadBytes('\n'); err != io.EOF {
		t.Fatalf("stream continued past terminal frame: %v", err)
	}

	sresp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats StatsResponse
	decodeJSON(t, sresp, &stats)
	if stats.WatchesActive != 0 || stats.WatchesOpened < 1 || stats.WatchBatches < 2 || stats.WatchRows < int64(len(f1.Rows)+len(f2.Rows)) {
		t.Fatalf("stats = %+v", stats)
	}
}

// TestWatchStreamSSE checks the SSE framing end to end: the emitted
// event re-parses with parseFrameSSE even with multi-line-free payload
// guarantees.
func TestWatchStreamSSE(t *testing.T) {
	ts, _, logs := newTestServer(t)
	ingestLogs(t, ts, logs)
	wr := registerWatch(t, ts, WatchRequest{Query: crackWatchTBQL})

	r, closeStream := openStream(t, ts, wr.WatchID, "sse")
	defer closeStream()

	// One SSE event = everything up to the blank line.
	var raw []byte
	for {
		line, err := r.ReadBytes('\n')
		if err != nil {
			t.Fatalf("reading sse event: %v", err)
		}
		raw = append(raw, line...)
		if bytes.Equal(line, []byte("\n")) {
			break
		}
	}
	f, err := parseFrameSSE(raw)
	if err != nil {
		t.Fatalf("sse frame %q: %v", raw, err)
	}
	if f.WatchID != wr.WatchID || len(f.Rows) == 0 || f.Error != "" {
		t.Fatalf("sse frame = %+v", f)
	}
}

// TestWatchHTTPErrors pins every refusal path: malformed bodies,
// unknown ids, double attach, format validation, and method checks.
func TestWatchHTTPErrors(t *testing.T) {
	ts, _, logs := newTestServer(t)
	ingestLogs(t, ts, logs)

	post := func(body, ct string) int {
		t.Helper()
		resp, err := http.Post(ts.URL+"/watch", ct, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := post(`{"query": "`+crackWatchTBQL+`", "bogus": 1}`, "application/json"); got != http.StatusBadRequest {
		t.Errorf("unknown JSON field: %d", got)
	}
	if got := post(`{broken`, "application/json"); got != http.StatusBadRequest {
		t.Errorf("broken JSON: %d", got)
	}
	if got := post(`{"query": "   "}`, "application/json"); got != http.StatusBadRequest {
		t.Errorf("empty query: %d", got)
	}
	if got := post(`{"query": "nonsense tbql"}`, "application/json"); got != http.StatusBadRequest {
		t.Errorf("unparsable TBQL: %d", got)
	}
	if got := post(`{"query": "x", "webhook": "ftp://nope"}`, "application/json"); got != http.StatusBadRequest {
		t.Errorf("non-http webhook: %d", got)
	}
	if got := post(`{"query": "x", "buffer": -1}`, "application/json"); got != http.StatusBadRequest {
		t.Errorf("negative buffer: %d", got)
	}

	get := func(path string) int {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := get("/watch/stream"); got != http.StatusBadRequest {
		t.Errorf("missing watch param: %d", got)
	}
	if got := get("/watch/stream?watch=deadbeef"); got != http.StatusGone {
		t.Errorf("unknown watch: %d", got)
	}
	if got := get("/watch"); got != http.StatusMethodNotAllowed {
		t.Errorf("GET /watch: %d", got)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/watch?watch=deadbeef", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Errorf("DELETE unknown watch: %d", resp.StatusCode)
	}

	// Double attach: while one stream holds the consumer slot, a second
	// gets 409; after the first disconnects, attaching works again.
	wr := registerWatch(t, ts, WatchRequest{Query: crackWatchTBQL})
	_, closeStream := openStream(t, ts, wr.WatchID, "ndjson")
	if got := get("/watch/stream?watch=" + wr.WatchID + "&format=ndjson"); got != http.StatusConflict {
		t.Errorf("second consumer: %d, want 409", got)
	}
	if got := get("/watch/stream?watch=" + wr.WatchID + "&format=bogus"); got != http.StatusBadRequest {
		t.Errorf("bad format: %d", got)
	}
	closeStream()
	// The detach races with our next attach only through the server's
	// context cancellation; poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if got := get("/watch/stream?watch=" + wr.WatchID + "&format=ndjson"); got == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("watch never detached after client disconnect")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestWatchCapAndTTL: the registry refuses past MaxWatches with 429,
// and an unconsumed watch expires after the TTL (freeing capacity and
// counting in watches_expired).
func TestWatchCapAndTTL(t *testing.T) {
	sys, err := threatraptor.New(threatraptor.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewWithConfig(sys, Config{MaxWatches: 2, WatchTTL: time.Minute})
	var offset atomic.Int64 // fake-clock displacement, nanoseconds
	srv.watches.now = func() time.Time { return time.Now().Add(time.Duration(offset.Load())) }
	ts := httptest.NewServer(srv)
	defer ts.Close()

	registerWatch(t, ts, WatchRequest{Query: crackWatchTBQL})
	registerWatch(t, ts, WatchRequest{Query: crackTBQL})
	body, _ := json.Marshal(WatchRequest{Query: crackWatchTBQL})
	resp, err := http.Post(ts.URL+"/watch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third watch: %d, want 429", resp.StatusCode)
	}

	// Advance the clock past the TTL: both idle watches expire, so the
	// registration that was refused now succeeds.
	offset.Store(int64(2 * time.Minute))
	wr := registerWatch(t, ts, WatchRequest{Query: crackWatchTBQL})
	if wr.WatchID == "" {
		t.Fatal("registration after expiry failed")
	}
	sresp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats StatsResponse
	decodeJSON(t, sresp, &stats)
	if stats.WatchesExpired != 2 || stats.WatchesActive != 1 {
		t.Fatalf("stats = %+v, want 2 expired / 1 active", stats)
	}
	if sys.WatchCount() != 1 {
		t.Fatalf("system still tracks %d watches", sys.WatchCount())
	}
}

// TestWatchWebhook: a webhook watch delivers each commit's batch to the
// sink as an NDJSON frame; a sink that keeps failing exhausts the
// retries, closes the watch, and counts the failure.
func TestWatchWebhook(t *testing.T) {
	sys, err := threatraptor.New(threatraptor.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewWithConfig(sys, Config{WebhookBackoff: time.Millisecond})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	_, _, logs := newTestServer(t) // only for the workload text
	ingestLogs(t, ts, logs)

	frames := make(chan *WatchFrame, 16)
	sink := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		f, err := parseFrameNDJSON(body)
		if err != nil {
			t.Errorf("webhook got unparsable frame %q: %v", body, err)
			return
		}
		frames <- f
	}))
	defer sink.Close()

	wr := registerWatch(t, ts, WatchRequest{Query: crackWatchTBQL, Webhook: sink.URL})
	select {
	case f := <-frames:
		if f.WatchID != wr.WatchID || len(f.Rows) == 0 {
			t.Fatalf("webhook backfill frame = %+v", f)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("webhook never received the backfill batch")
	}
	ingestLogs(t, ts, logs)
	select {
	case f := <-frames:
		if len(f.Rows) == 0 {
			t.Fatalf("webhook delta frame = %+v", f)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("webhook never received the delta batch")
	}

	// A sink that always fails: retries count up, then the watch closes.
	var hits atomic.Int64
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "nope", http.StatusServiceUnavailable)
	}))
	defer bad.Close()
	registerWatch(t, ts, WatchRequest{Query: crackWatchTBQL, Webhook: bad.URL})
	deadline := time.Now().Add(10 * time.Second)
	for srv.watches.webhookFailures.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("failing webhook never gave up")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := hits.Load(); got != WebhookRetries {
		t.Errorf("failing sink was hit %d times, want %d", got, WebhookRetries)
	}
	if srv.watches.webhookRetries.Load() != WebhookRetries-1 {
		t.Errorf("retries counter = %d, want %d", srv.watches.webhookRetries.Load(), WebhookRetries-1)
	}
	// The failed watch removed itself; only the healthy one remains.
	deadline = time.Now().Add(5 * time.Second)
	for srv.watches.open() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("failed webhook watch still registered (%d open)", srv.watches.open())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestWatchServiceRace hammers the HTTP watch surface — register,
// stream, delete — under concurrent ingest. Run with -race; the
// assertions are weak on purpose, the interleavings are the test.
func TestWatchServiceRace(t *testing.T) {
	ts, _, logs := newTestServer(t)
	// Quarter the workload so each ingest is cheap.
	lines := strings.SplitAfter(logs, "\n")
	quarter := strings.Join(lines[:len(lines)/4], "")

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 6; j++ {
				resp, err := http.Post(ts.URL+"/ingest", "text/plain", strings.NewReader(quarter))
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for j := 0; j < 8; j++ {
				body, _ := json.Marshal(WatchRequest{Query: crackWatchTBQL, Buffer: 2})
				resp, err := http.Post(ts.URL+"/watch", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				raw, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("watch register: %d %s", resp.StatusCode, raw)
					return
				}
				var wr WatchResponse
				if err := json.Unmarshal(raw, &wr); err != nil {
					t.Error(err)
					return
				}
				if j%2 == 0 {
					// Attach briefly, read whatever is buffered, disconnect.
					sresp, err := http.Get(ts.URL + "/watch/stream?watch=" + wr.WatchID + "&format=ndjson")
					if err == nil {
						buf := make([]byte, 4096)
						sresp.Body.Read(buf)
						sresp.Body.Close()
					}
				}
				req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/watch?watch="+wr.WatchID, nil)
				dresp, err := http.DefaultClient.Do(req)
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, dresp.Body)
				dresp.Body.Close()
			}
		}(i)
	}
	wg.Wait()
}

// FuzzWatchRequest: parseWatchRequest never panics, and anything it
// accepts satisfies its own contract (non-blank query, absolute
// http(s) webhook, non-negative buffer).
func FuzzWatchRequest(f *testing.F) {
	f.Add([]byte(`{"query": "proc p read file f as e1\nreturn p"}`), true)
	f.Add([]byte(`{"query": "x", "webhook": "http://sink/hook", "resume": "v1 q=1 ev=0:0 g=0:0", "buffer": 4}`), true)
	f.Add([]byte("proc p read file f as e1\nreturn distinct p, f"), false)
	f.Add([]byte(`{"query": ""}`), true)
	f.Add([]byte(`{"query": "x", "webhook": "ftp://bad"}`), true)
	f.Add([]byte(`{broken`), true)
	f.Add([]byte{}, false)
	f.Fuzz(func(t *testing.T, body []byte, isJSON bool) {
		req, err := parseWatchRequest(body, isJSON)
		if err != nil {
			return
		}
		if strings.TrimSpace(req.Query) == "" {
			t.Fatalf("accepted blank query from %q", body)
		}
		if req.Buffer < 0 {
			t.Fatalf("accepted negative buffer %d from %q", req.Buffer, body)
		}
		if req.Webhook != "" && !strings.HasPrefix(req.Webhook, "http") {
			t.Fatalf("accepted webhook %q from %q", req.Webhook, body)
		}
		if !isJSON && req.Query != string(body) {
			t.Fatalf("raw body %q parsed to query %q", body, req.Query)
		}
	})
}

// FuzzWatchFrame: every frame the writers emit re-parses to the same
// frame, for both wire formats, whatever bytes end up in the cells.
func FuzzWatchFrame(f *testing.F) {
	f.Add("w1", uint64(3), "v1 q=1 ev=0:0 g=0:0", "cell", "", "")
	f.Add("w2", uint64(0), "", "multi\nline", "uni code", "slow subscriber evicted")
	f.Add("", ^uint64(0), "\x00\x1f", "\r\n\r\n", "data: sneaky", "event: end")
	f.Fuzz(func(t *testing.T, id string, epoch uint64, resume, cellA, cellB, errStr string) {
		// json.Marshal coerces invalid UTF-8 to U+FFFD; pre-apply the same
		// coercion so byte-level equality is the right round-trip check.
		valid := func(s string) string { return strings.ToValidUTF8(s, "�") }
		id, resume, errStr = valid(id), valid(resume), valid(errStr)
		cellA, cellB = valid(cellA), valid(cellB)
		frame := WatchFrame{WatchID: id, Epoch: epoch, Resume: resume, Error: errStr}
		if cellA != "" || cellB != "" {
			frame.Rows = [][]string{{cellA, cellB}, {cellB}}
		}
		ndjson, err := appendFrameNDJSON(nil, &frame)
		if err != nil {
			t.Fatalf("ndjson append: %v", err)
		}
		if n := bytes.Count(ndjson, []byte("\n")); n != 1 {
			t.Fatalf("ndjson frame is %d lines: %q", n, ndjson)
		}
		back, err := parseFrameNDJSON(ndjson)
		if err != nil {
			t.Fatalf("ndjson re-parse of %q: %v", ndjson, err)
		}
		if !reflect.DeepEqual(*back, frame) {
			t.Fatalf("ndjson round trip: %+v -> %+v", frame, *back)
		}
		sse, err := appendFrameSSE(nil, &frame)
		if err != nil {
			t.Fatalf("sse append: %v", err)
		}
		back, err = parseFrameSSE(sse)
		if err != nil {
			t.Fatalf("sse re-parse of %q: %v", sse, err)
		}
		if !reflect.DeepEqual(*back, frame) {
			t.Fatalf("sse round trip: %+v -> %+v", frame, *back)
		}
	})
}
