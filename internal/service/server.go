// Package service exposes a threatraptor.System over HTTP: the daemon
// API behind cmd/threatraptord. One long-running System serves many
// concurrent analysts — ingestion streams in over POST /ingest (shed
// with 429 + Retry-After beyond the configured queue bound) while hunts
// page through match sets with server-side persistent cursors: POST
// /hunt executes once against an epoch snapshot and returns a
// cursor_id, GET /hunt/next pages the pinned epoch with no
// re-execution and no pagination anomalies under concurrent ingest,
// DELETE /hunt/cursor closes it. Cursors are bounded by a TTL and an
// LRU cap, and each cursor's epoch stays pinned in a refcounted
// registry until its last reference goes.
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/wal"
)

// DefaultHuntLimit is the page size used when a hunt request does not
// specify one.
const DefaultHuntLimit = 1000

// DefaultMaxPage is the default upper bound on a hunt page size
// (Config.MaxPage overrides). Before this bound existed a client could
// request limit=1e9 and drive the server to materialize the whole
// match set in one response; now such requests get a friendly 400.
const DefaultMaxPage = 10000

// MaxIngestBody caps a single POST /ingest body (256 MiB). Larger
// batches should be split; the cap also bounds how much memory one
// request can pin while buffering.
const MaxIngestBody = 256 << 20

// MaxQueryBody caps a /hunt or /explain request body (1 MiB); TBQL
// sources are short, so anything larger is a client error.
const MaxQueryBody = 1 << 20

// MaxConcurrentIngests is the default bound on how many /ingest
// requests may buffer bodies at once (Config.IngestQueue overrides).
// Ingestion itself is serialized by the System; this cap keeps N
// clients from pinning N×MaxIngestBody of heap while they queue.
// Requests beyond the cap get 429 with a Retry-After hint.
const MaxConcurrentIngests = 4

// DefaultCursorTTL is how long an idle server-side cursor survives
// before it expires (Config.CursorTTL overrides).
const DefaultCursorTTL = 2 * time.Minute

// DefaultMaxCursors caps how many server-side cursors may be open at
// once before the least-recently-used is evicted (Config.MaxCursors
// overrides).
const DefaultMaxCursors = 64

// DefaultPlanCacheSize is the default capacity of the engine's
// cross-hunt prepared-plan cache, re-exported for the daemon's
// -plan-cache flag.
const DefaultPlanCacheSize = exec.DefaultPlanCacheSize

// Config tunes the daemon's HTTP layer. The zero value means defaults.
type Config struct {
	// CursorTTL is the idle lifetime of a server-side hunt cursor; a
	// cursor unused for longer expires and further pages get 410.
	CursorTTL time.Duration
	// MaxCursors caps the cursor registry; registering beyond it evicts
	// the least-recently-used cursor.
	MaxCursors int
	// IngestQueue bounds concurrent /ingest body buffering; requests
	// beyond it are shed with 429 + Retry-After instead of blocking.
	IngestQueue int
	// MaxPage caps the per-request page size of POST /hunt and
	// GET /hunt/next; larger limits get 400 (default DefaultMaxPage).
	MaxPage int
	// QueryCache caps the TBQL text → analyzed-query LRU in front of
	// POST /hunt (0 = DefaultQueryCacheSize; negative disables it, so
	// every hunt re-parses).
	QueryCache int
	// WatchTTL is the idle lifetime of a standing hunt no consumer is
	// attached to (no open stream, no webhook); attached watches never
	// expire, and a disconnect restarts the countdown.
	WatchTTL time.Duration
	// MaxWatches caps the standing-hunt registry; registrations beyond
	// it get 429 (watches are never silently evicted for space).
	MaxWatches int
	// WatchBuffer is the default per-watch delivery buffer in batches; a
	// subscriber further behind is evicted rather than blocking ingest
	// (0 = the facade's DefaultWatchBuffer).
	WatchBuffer int
	// WebhookBackoff is the base delay between webhook delivery retries,
	// doubling per retry (default DefaultWebhookBackoff).
	WebhookBackoff time.Duration
	// WAL, when the daemon runs with a data dir, is the durability log
	// the System was built on. The server wires the cursor registry's
	// low-water mark into it so segment compaction never drops an epoch
	// an open cursor still pins.
	WAL *wal.Log
	// SlowHunt is the latency threshold above which POST /hunt emits a
	// structured slow-hunt log line with the span breakdown and query
	// fingerprint (0 = DefaultSlowHunt; negative disables the log).
	SlowHunt time.Duration
	// Pprof mounts net/http/pprof under /debug/pprof/ when set. Off by
	// default: profiles can reveal heap contents.
	Pprof bool
	// NoTrace disables per-hunt pipeline tracing at the HTTP layer: no
	// trace is created, and hunt/explain responses omit the span tree.
	// (Pair it with threatraptor.Options.DisableTracing to also stop the
	// engine from self-tracing untraced executions.)
	NoTrace bool
	// Logger receives the server's structured log lines (slow hunts);
	// nil means slog.Default().
	Logger *slog.Logger
	// Metrics is the latency-histogram bundle shared with the System and
	// WAL; the server observes hunt first-page latency into it and
	// exposes the whole bundle on GET /metrics (nil = a fresh bundle, so
	// /metrics always renders every histogram family).
	Metrics *obs.Metrics
	// HuntTimeout is the per-request execution deadline wrapped around
	// every /hunt, /hunt/next, and /explain (0 = none). A stateless hunt
	// past it answers 504 with the partial span breakdown; a cursor page
	// past it answers 504 but stays resumable — the interrupted rows are
	// queued for the retry.
	HuntTimeout time.Duration
	// MaxHunts bounds concurrent hunt executions (/hunt and /hunt/next
	// pages); excess requests are shed with 429 + Retry-After like the
	// ingest path (0 = unlimited).
	MaxHunts int
}

func (c Config) withDefaults() Config {
	if c.CursorTTL <= 0 {
		c.CursorTTL = DefaultCursorTTL
	}
	if c.MaxCursors <= 0 {
		c.MaxCursors = DefaultMaxCursors
	}
	if c.IngestQueue <= 0 {
		c.IngestQueue = MaxConcurrentIngests
	}
	if c.MaxPage <= 0 {
		c.MaxPage = DefaultMaxPage
	}
	if c.QueryCache == 0 {
		c.QueryCache = DefaultQueryCacheSize
	}
	if c.WatchTTL <= 0 {
		c.WatchTTL = DefaultWatchTTL
	}
	if c.MaxWatches <= 0 {
		c.MaxWatches = DefaultMaxWatches
	}
	if c.WebhookBackoff <= 0 {
		c.WebhookBackoff = DefaultWebhookBackoff
	}
	if c.SlowHunt == 0 {
		c.SlowHunt = DefaultSlowHunt
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	if c.Metrics == nil {
		c.Metrics = obs.NewMetrics()
	}
	return c
}

// Server is the HTTP front end of a ThreatRaptor system. It implements
// http.Handler and is safe for concurrent requests: the underlying
// System synchronizes ingestion against hunts.
type Server struct {
	sys     *threatraptor.System
	mux     *http.ServeMux
	started time.Time
	cfg     Config

	hunts   atomic.Int64
	ingests atomic.Int64
	// executions counts query executions: one per POST /hunt. Pages
	// served from a registered cursor (GET /hunt/next) never re-execute,
	// so executions staying flat while cursor_pages climbs is the
	// observable proof of one-execution-per-cursor pagination.
	executions atomic.Int64
	// propSkipped accumulates Stats.PropagationsSkipped across hunts:
	// a growing count means hunts keep hitting the propagation cap and
	// falling back to unconstrained table fetches.
	propSkipped atomic.Int64
	// optReorders counts hunts whose cost-based schedule differed from
	// the static pruning-score order — how often the ingest-time stats
	// actually changed an execution.
	optReorders atomic.Int64

	// Lifecycle-governance counters: hunts that hit the -hunt-timeout
	// deadline, were cancelled by a client disconnect, were killed via
	// DELETE /debug/hunts/<id>, aborted on the -max-join-rows budget, or
	// were shed at the -max-hunts admission gate.
	huntsTimedOut  atomic.Int64
	huntsCancelled atomic.Int64
	huntsKilled    atomic.Int64
	huntsBudget    atomic.Int64
	huntsShed      atomic.Int64

	// cursors is the server-side cursor registry (TTL, LRU, epoch pins).
	cursors *cursorManager

	// watches is the standing-hunt subscription registry (TTL, hard cap).
	watches *watchManager

	// queries caches parsed+analyzed TBQL keyed on raw source text, so
	// repeat hunts skip parse and analysis (nil when disabled).
	queries *queryCache

	// ingestSlots is a semaphore bounding concurrent /ingest buffering.
	ingestSlots chan struct{}

	// huntSlots, when MaxHunts > 0, is the hunt admission semaphore:
	// /hunt and /hunt/next shed with 429 + Retry-After beyond it.
	huntSlots chan struct{}

	// baseCtx is cancelled by Close: long-lived background consumers
	// (webhook delivery and its retry backoff) abort on it so daemon
	// shutdown is not delayed by a dead sink.
	baseCtx   context.Context
	baseStop  context.CancelFunc
	closeOnce sync.Once

	// logger receives structured log lines (slow hunts); metrics is the
	// shared latency-histogram bundle; registry is the /metrics
	// exposition built over both plus the counters above.
	logger   *slog.Logger
	metrics  *obs.Metrics
	registry *obs.Registry

	// inflight tracks currently-running executions for GET /debug/hunts,
	// keyed by a registration sequence number.
	inflightMu  sync.Mutex
	inflightSeq uint64
	inflight    map[uint64]*inflightEntry
}

// New wraps a System with the daemon's HTTP API using default tuning.
func New(sys *threatraptor.System) *Server {
	return NewWithConfig(sys, Config{})
}

// NewWithConfig wraps a System with the daemon's HTTP API.
func NewWithConfig(sys *threatraptor.System, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		sys:         sys,
		mux:         http.NewServeMux(),
		started:     time.Now(),
		cfg:         cfg,
		cursors:     newCursorManager(cfg.CursorTTL, cfg.MaxCursors),
		watches:     newWatchManager(cfg.WatchTTL, cfg.MaxWatches),
		queries:     newQueryCache(cfg.QueryCache),
		ingestSlots: make(chan struct{}, cfg.IngestQueue),
		logger:      cfg.Logger,
		metrics:     cfg.Metrics,
		inflight:    make(map[uint64]*inflightEntry),
	}
	if cfg.MaxHunts > 0 {
		s.huntSlots = make(chan struct{}, cfg.MaxHunts)
	}
	s.baseCtx, s.baseStop = context.WithCancel(context.Background())
	s.registry = s.buildRegistry()
	if cfg.WAL != nil {
		// Compaction must retain every epoch an open cursor pins: feed the
		// registry's low-water mark to the log.
		reg := s.cursors.reg
		cfg.WAL.SetLowWater(func() (uint64, bool) {
			e, ok := reg.LowWater()
			return uint64(e), ok
		})
	}
	s.mux.HandleFunc("/ingest", s.handleIngest)
	s.mux.HandleFunc("/hunt", s.handleHunt)
	s.mux.HandleFunc("/hunt/next", s.handleHuntNext)
	s.mux.HandleFunc("/hunt/cursor", s.handleHuntCursor)
	s.mux.HandleFunc("/explain", s.handleExplain)
	s.mux.HandleFunc("/watch", s.handleWatch)
	s.mux.HandleFunc("/watch/stream", s.handleWatchStream)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/debug/hunts", s.handleDebugHunts)
	s.mux.HandleFunc("/debug/hunts/", s.handleDebugHuntKill)
	if cfg.Pprof {
		s.mountPprof()
	}
	return s
}

// Close releases the server's background consumers: webhook pumps
// abort their in-flight deliveries and backoff waits, so shutdown is
// never held hostage by a dead sink. It does not close cursors or
// watches — the process is exiting and their state is in-memory only.
// Idempotent.
func (s *Server) Close() {
	s.closeOnce.Do(s.baseStop)
}

// ServeHTTP dispatches to the daemon's endpoints. Every request gets a
// request id, echoed in the X-Request-Id response header and carried in
// the context so handlers stamp it into trace spans and log lines.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rid := newRequestID()
	w.Header().Set("X-Request-Id", rid)
	r = r.WithContext(context.WithValue(r.Context(), requestIDKey, rid))
	s.mux.ServeHTTP(w, r)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// errHuntKilled is the cancellation cause installed by the
// DELETE /debug/hunts/<id> kill switch: an operator explicitly aborted
// the hunt.
var errHuntKilled = errors.New("hunt killed via DELETE /debug/hunts")

// statusClientClosedRequest is the (nginx-popularized) status recorded
// for a hunt aborted because its client disconnected mid-execution. No
// client reads the response; the code keeps access logs and tests
// truthful about why the execution stopped.
const statusClientClosedRequest = 499

// huntCtx derives the execution context for one hunt-shaped request:
// the HTTP request context (so a client disconnect aborts the hunt
// mid-wave), wrapped in the configured -hunt-timeout deadline, wrapped
// in a cancel-with-cause hook that the kill switch and cursor eviction
// fire. cleanup must run when the request finishes.
func (s *Server) huntCtx(r *http.Request) (ctx context.Context, kill context.CancelCauseFunc, cleanup func()) {
	ctx = r.Context()
	cancelTimeout := func() {}
	if s.cfg.HuntTimeout > 0 {
		ctx, cancelTimeout = context.WithTimeout(ctx, s.cfg.HuntTimeout)
	}
	ctx, kill = context.WithCancelCause(ctx)
	return ctx, kill, func() {
		kill(nil)
		cancelTimeout()
	}
}

// admitHunt takes a hunt admission slot, shedding with 429 + Retry-After
// when -max-hunts executions are already in flight (the same contract as
// the ingest queue). The returned release must run when the hunt
// finishes; it is a no-op when admission is unlimited.
func (s *Server) admitHunt(w http.ResponseWriter) (release func(), ok bool) {
	if s.huntSlots == nil {
		return func() {}, true
	}
	select {
	case s.huntSlots <- struct{}{}:
		return func() { <-s.huntSlots }, true
	default:
		s.huntsShed.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests,
			"too many concurrent hunts (max %d); retry shortly", cap(s.huntSlots))
		return nil, false
	}
}

// writeHuntAbort classifies a hunt lifecycle error — deadline, join
// budget, operator kill, client disconnect — bumps the matching
// counter, annotates the trace with an "aborted" span, and writes the
// response (a timed-out hunt still gets its partial span breakdown).
// It reports whether err was a lifecycle abort; any other error is left
// to the caller's ordinary mapping.
func (s *Server) writeHuntAbort(w http.ResponseWriter, ctx context.Context, err error, tr *obs.Trace) bool {
	if err == nil {
		return false
	}
	var status int
	switch {
	case errors.Is(err, exec.ErrHuntDeadline):
		status = http.StatusGatewayTimeout
		s.huntsTimedOut.Add(1)
	case errors.Is(err, exec.ErrJoinBudget):
		status = http.StatusUnprocessableEntity
		s.huntsBudget.Add(1)
	case errors.Is(err, exec.ErrHuntCancelled):
		if errors.Is(context.Cause(ctx), errHuntKilled) {
			status = http.StatusServiceUnavailable
			s.huntsKilled.Add(1)
		} else {
			status = statusClientClosedRequest
			s.huntsCancelled.Add(1)
		}
	default:
		return false
	}
	sp := tr.Begin("aborted", -1)
	tr.EndNote(sp, err.Error())
	body := map[string]any{"error": err.Error()}
	if t := tr.JSON(); t != nil {
		body["trace"] = t
	}
	writeJSON(w, status, body)
	return true
}

// readBody buffers the request body under the given cap. A body over
// the cap reports 413; any other read failure is the client's 400.
func readBody(w http.ResponseWriter, r *http.Request, limit int64) ([]byte, int, error) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, limit))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return nil, http.StatusRequestEntityTooLarge,
				fmt.Errorf("body exceeds the %d-byte limit", tooBig.Limit)
		}
		return nil, http.StatusBadRequest, fmt.Errorf("reading body: %v", err)
	}
	return body, 0, nil
}

// IngestResponse is the JSON body returned by POST /ingest.
type IngestResponse struct {
	Entities     int     `json:"entities"`
	EventsIn     int     `json:"events_in"`
	EventsStored int     `json:"events_stored"`
	CPRReduction float64 `json:"cpr_reduction"`
	ParseErrors  int     `json:"parse_errors"`
}

// handleIngest streams audit log lines from the request body into the
// system: POST /ingest with a Sysdig-style log as the body.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "ingest wants POST, got %s", r.Method)
		return
	}
	select {
	case s.ingestSlots <- struct{}{}:
		defer func() { <-s.ingestSlots }()
	default:
		// Shed instead of queueing: the client retries after the hinted
		// delay, and no memory is pinned for a batch we cannot start.
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests,
			"too many concurrent ingest batches (max %d); retry shortly", cap(s.ingestSlots))
		return
	}
	// Buffer the body before ingesting: IngestLogs serializes ingestion
	// batches, and parsing straight from the network would let one slow
	// client hold that lock for as long as it cares to trickle bytes.
	body, status, err := readBody(w, r, MaxIngestBody)
	if err != nil {
		writeError(w, status, "%v", err)
		return
	}
	stats, err := s.sys.IngestLogs(bytes.NewReader(body))
	if err != nil {
		// Parse failures are the client's fault; storage failures are
		// ours; a degraded durability log means the whole service is
		// read-only until an operator intervenes — 503, retry elsewhere.
		status := http.StatusBadRequest
		switch {
		case errors.Is(err, threatraptor.ErrDegraded):
			status = http.StatusServiceUnavailable
		case errors.Is(err, threatraptor.ErrStorage):
			status = http.StatusInternalServerError
		}
		writeError(w, status, "%v", err)
		return
	}
	s.ingests.Add(1)
	writeJSON(w, http.StatusOK, IngestResponse{
		Entities:     stats.Entities,
		EventsIn:     stats.EventsIn,
		EventsStored: stats.EventsStored,
		CPRReduction: stats.CPRReduction,
		ParseErrors:  stats.ParseErrors,
	})
}

// HuntRequest is the JSON body accepted by POST /hunt. The body may
// instead be raw TBQL source (any non-JSON content type), with limit
// and offset given as URL query parameters (no_cursor as no_cursor=1).
// NoCursor declines a server-side cursor: the hunt fetches only the
// requested page (plus one look-ahead row) when the query shape allows
// the engine to push that bound into the per-shard data queries, and
// pages on statelessly via next_offset. Offset-paging requests
// (offset > 0) are capped the same way — they never register a cursor.
type HuntRequest struct {
	Query    string `json:"query"`
	Limit    int    `json:"limit"`
	Offset   int    `json:"offset"`
	NoCursor bool   `json:"no_cursor"`
}

// HuntStats is the execution summary embedded in a hunt response.
// PropagationsSkipped counts shared-entity constraints dropped because
// the candidate set exceeded the engine's propagation cap — the signal
// that this hunt fetched an unconstrained table. JoinCandidates counts
// the join work actually done for the requested page (the join is
// lazy), not the whole match space.
type HuntStats struct {
	RowsFetched         int  `json:"rows_fetched"`
	Propagations        int  `json:"propagations"`
	PropagationsSkipped int  `json:"propagations_skipped"`
	ShortCircuit        bool `json:"short_circuit"`
	JoinCandidates      int  `json:"join_candidates"`
	// ShardFetches counts per-shard data-query executions; a pattern
	// filtering host = '...' is pruned to one shard instead of fanning
	// out across all of them.
	ShardFetches int `json:"shard_fetches"`
	// PlanCacheHits/Misses count this hunt's plan-template resolutions
	// against the cross-hunt prepared-plan cache: a repeated hunt is
	// all hits and compiles no SQL/Cypher at all.
	PlanCacheHits   int `json:"plan_cache_hits"`
	PlanCacheMisses int `json:"plan_cache_misses"`
	// CostBased reports that the cost optimizer ordered this hunt's
	// patterns from ingest-time cardinality stats; Reordered that the
	// result differed from the static pruning-score order; FetchCapped
	// that the page bound was pushed into the per-shard data queries.
	CostBased   bool `json:"cost_based"`
	Reordered   bool `json:"reordered"`
	FetchCapped bool `json:"fetch_capped"`
}

// HuntResponse is one page of hunt results. When more rows remain
// beyond this page, CursorID names a server-side cursor pinned at the
// hunt's epoch: GET /hunt/next?cursor=<id> pages on with no query
// re-execution and no skip/repeat anomalies under concurrent ingest.
// NextOffset is the legacy offset-paging hint (each offset page
// re-executes against the then-current store); it remains for clients
// that prefer stateless paging.
type HuntResponse struct {
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	Offset  int        `json:"offset"`
	Count   int        `json:"count"`
	// Epoch is the ingest epoch the hunt's snapshot was captured at;
	// every page of one cursor reports the same epoch.
	Epoch      uint64    `json:"epoch"`
	CursorID   string    `json:"cursor_id,omitempty"`
	NextOffset *int      `json:"next_offset,omitempty"`
	Stats      HuntStats `json:"stats"`
	// Trace is the hunt's pipeline span tree — parse through fetch waves
	// to first row — absent when the server runs with tracing disabled.
	Trace *obs.TraceJSON `json:"trace,omitempty"`
}

func (s *Server) huntRequest(w http.ResponseWriter, r *http.Request) (HuntRequest, int, error) {
	var req HuntRequest
	body, status, err := readBody(w, r, MaxQueryBody)
	if err != nil {
		return req, status, err
	}
	if strings.Contains(r.Header.Get("Content-Type"), "json") {
		if err := json.Unmarshal(body, &req); err != nil {
			return req, http.StatusBadRequest, fmt.Errorf("bad JSON body: %v", err)
		}
	} else {
		req.Query = string(body)
	}
	q := r.URL.Query()
	for name, dst := range map[string]*int{"limit": &req.Limit, "offset": &req.Offset} {
		if raw := q.Get(name); raw != "" {
			n, err := strconv.Atoi(raw)
			if err != nil {
				return req, http.StatusBadRequest, fmt.Errorf("bad %s %q", name, raw)
			}
			*dst = n
		}
	}
	if raw := q.Get("no_cursor"); raw != "" {
		v, err := strconv.ParseBool(raw)
		if err != nil {
			return req, http.StatusBadRequest, fmt.Errorf("bad no_cursor %q", raw)
		}
		req.NoCursor = v
	}
	if req.Limit < 0 || req.Offset < 0 {
		return req, http.StatusBadRequest, fmt.Errorf("limit and offset must be non-negative")
	}
	if req.Limit > s.cfg.MaxPage {
		return req, http.StatusBadRequest,
			fmt.Errorf("limit %d exceeds the maximum page size %d; page with cursor_id or next_offset instead",
				req.Limit, s.cfg.MaxPage)
	}
	if req.Limit == 0 {
		req.Limit = min(DefaultHuntLimit, s.cfg.MaxPage)
	}
	if strings.TrimSpace(req.Query) == "" {
		return req, http.StatusBadRequest, fmt.Errorf("empty TBQL query")
	}
	return req, 0, nil
}

// toHuntStats maps engine cursor stats into the response shape.
func toHuntStats(cur *threatraptor.Cursor) HuntStats {
	st := cur.Stats()
	return HuntStats{
		RowsFetched:         st.RowsFetched,
		Propagations:        st.Propagations,
		PropagationsSkipped: st.PropagationsSkipped,
		ShortCircuit:        st.ShortCircuit,
		JoinCandidates:      st.JoinCandidates,
		ShardFetches:        st.ShardFetches,
		PlanCacheHits:       st.PlanCacheHits,
		PlanCacheMisses:     st.PlanCacheMisses,
		CostBased:           st.CostBased,
		Reordered:           st.Reordered,
		FetchCapped:         st.FetchCapped,
	}
}

// handleHunt executes TBQL source and returns one page of projected
// rows, driven by the streaming cursor so only the requested page is
// materialized. When more rows remain, the cursor is registered
// server-side and the response's cursor_id resumes it: the whole hunt
// costs one execution no matter how many pages follow, and every page
// reads the same pinned epoch.
func (s *Server) handleHunt(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "hunt wants POST, got %s", r.Method)
		return
	}
	start := time.Now()
	req, status, err := s.huntRequest(w, r)
	if err != nil {
		writeError(w, status, "%v", err)
		return
	}
	// The body read above may have outlived the client; skip execution
	// when nobody is left to read the answer.
	if r.Context().Err() != nil {
		s.huntsCancelled.Add(1)
		return
	}
	release, admitted := s.admitHunt(w)
	if !admitted {
		return
	}
	defer release()
	hctx, kill, huntDone := s.huntCtx(r)
	defer huntDone()
	rid := requestID(r.Context())
	finish := s.trackInflight("hunt", rid, req.Query, kill)
	defer finish()
	// One trace per hunt, threaded through the engine so the response
	// (and the slow-hunt log) carries the full pipeline span tree.
	var tr *obs.Trace
	if !s.cfg.NoTrace {
		tr = obs.NewTrace()
		tr.SetRequestID(rid)
	}
	// The query cache fronts parsing: repeat hunts (offset-paging
	// clients, refreshed dashboards) resolve their analyzed form by raw
	// source text and skip parse+analysis. Execution never mutates an
	// analyzed query, so one cached *Query serves concurrent hunts.
	parseSp := tr.Begin("parse", -1)
	q := s.queries.get(req.Query)
	if q != nil {
		tr.EndNote(parseSp, "query_cache=hit")
	} else {
		q, err = s.sys.ParseQuery(req.Query)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		s.queries.put(req.Query, q)
		tr.EndNote(parseSp, "query_cache=miss")
	}
	// A hunt that cannot register a cursor — the client declined one or
	// is already offset-paging — is bounded at the skipped offset plus
	// the page plus the one look-ahead row that decides whether more
	// pages remain; when the query shape allows it the engine pushes
	// that bound into the per-shard data queries so a small page does
	// small fetch work. A cursor-eligible hunt must fetch uncapped: its
	// one execution serves every later page.
	var cur *threatraptor.Cursor
	if req.NoCursor || req.Offset > 0 {
		cur, err = s.sys.HuntQueryCursorCtx(hctx, q, req.Offset+req.Limit+1, tr)
	} else {
		cur, err = s.sys.HuntQueryCursorCtx(hctx, q, 0, tr)
	}
	if err != nil {
		if s.writeHuntAbort(w, hctx, err, tr) {
			return
		}
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	registered := false
	defer func() {
		if !registered {
			cur.Close()
		}
	}()
	s.hunts.Add(1)
	s.executions.Add(1)

	pageSp := tr.Begin("page", -1)
	for skipped := 0; skipped < req.Offset; skipped++ {
		if !cur.Next() {
			break
		}
	}
	// Row guarantees each projected row is freshly allocated and
	// unaliased, so it can be retained without copying.
	rows := make([][]string, 0, min(req.Limit, 64))
	for len(rows) < req.Limit && cur.Next() {
		rows = append(rows, cur.Row())
	}
	tr.End(pageSp)
	st := toHuntStats(cur)
	s.propSkipped.Add(int64(st.PropagationsSkipped))
	if st.Reordered {
		s.optReorders.Add(1)
	}
	resp := HuntResponse{
		Columns: cur.Columns(),
		Rows:    rows,
		Offset:  req.Offset,
		Count:   len(rows),
		Epoch:   uint64(cur.Epoch()),
		Stats:   st,
	}
	more := cur.Next() // one row beyond the page: more remain
	// The join runs lazily inside the cursor, so an iteration error can
	// surface mid-page; report it instead of a truncated row set.
	if err := cur.Err(); err != nil {
		if s.writeHuntAbort(w, hctx, err, tr) {
			return
		}
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if more {
		next := req.Offset + len(rows)
		resp.NextOffset = &next
		resp.Stats.JoinCandidates = toHuntStats(cur).JoinCandidates
		// Register the cursor — with the consumed look-ahead row as the
		// next page's first row — so GET /hunt/next pages this one
		// execution; from here the registry owns Close. A request with a
		// non-zero offset is a client already paging statelessly
		// (re-executing per page): registering its cursor every page
		// would churn the LRU registry and evict other analysts' live
		// cursors, so only offset-0 hunts register. A no_cursor or
		// fetch-capped hunt cannot register either — its fetch stopped
		// at the page bound, so later pages re-execute via next_offset.
		if req.Offset == 0 && !req.NoCursor && !st.FetchCapped {
			resp.CursorID = s.cursors.put(cur, cur.Row(), next)
			registered = true
		}
	}
	resp.Trace = tr.JSON()
	elapsed := time.Since(start)
	s.metrics.HuntFirstPage.Observe(elapsed.Seconds())
	if s.cfg.SlowHunt > 0 && elapsed >= s.cfg.SlowHunt {
		s.logger.Warn("slow hunt",
			"request_id", rid,
			"fingerprint", obs.Fingerprint(req.Query),
			"dur_ms", elapsed.Milliseconds(),
			"rows", len(rows),
			"epoch", resp.Epoch,
			"spans", tr.Breakdown(),
		)
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleHuntNext serves the next page of a registered cursor:
// GET /hunt/next?cursor=<id>[&limit=N]. The page comes straight from
// the cursor's pinned epoch snapshot — no re-execution, no skipped or
// repeated rows however much has been ingested since the hunt began.
// An unknown, expired, or evicted cursor gets 410 Gone; start the hunt
// again with POST /hunt.
func (s *Server) handleHuntNext(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "hunt/next wants GET, got %s", r.Method)
		return
	}
	q := r.URL.Query()
	id := q.Get("cursor")
	if id == "" {
		writeError(w, http.StatusBadRequest, "missing cursor parameter")
		return
	}
	limit := min(DefaultHuntLimit, s.cfg.MaxPage)
	if raw := q.Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n <= 0 {
			writeError(w, http.StatusBadRequest, "bad limit %q", raw)
			return
		}
		if n > s.cfg.MaxPage {
			writeError(w, http.StatusBadRequest,
				"limit %d exceeds the maximum page size %d", n, s.cfg.MaxPage)
			return
		}
		limit = n
	}
	e := s.cursors.acquire(id)
	if e == nil {
		writeError(w, http.StatusGone, "unknown or expired cursor %q; re-run the hunt", id)
		return
	}
	release, admitted := s.admitHunt(w)
	if !admitted {
		return
	}
	defer release()
	hctx, kill, huntDone := s.huntCtx(r)
	defer huntDone()
	finish := s.trackInflight("hunt/next", requestID(r.Context()), "cursor "+idPrefix(id), kill)
	defer finish()
	// Expose the page's cancel hook to eviction: closeAll fires it, so an
	// LRU victim's in-flight page aborts instead of making the evictor
	// wait out however much join work the page had left.
	e.setPageCancel(kill)
	defer e.setPageCancel(nil)

	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		writeError(w, http.StatusGone, "unknown or expired cursor %q; re-run the hunt", id)
		return
	}
	// Each page runs under its own request's context: install it before
	// iterating (this also clears a previous page's interrupt so a
	// timed-out cursor resumes cleanly).
	e.cur.SetContext(hctx)
	pageStart := e.offset
	rows := make([][]string, 0, min(limit, 64))
	// Serve queued rows first: the look-ahead row the previous page
	// consumed, plus any partial page stashed by an interrupted read.
	for len(rows) < limit && len(e.pending) > 0 {
		rows = append(rows, e.pending[0])
		e.pending = e.pending[1:]
	}
	for len(rows) < limit && e.cur.Next() {
		rows = append(rows, e.cur.Row())
	}
	more := len(e.pending) > 0
	if !more && len(rows) == limit && e.cur.Next() {
		// One row beyond the page decides whether more remain; it becomes
		// the next page's first row.
		e.pending = append(e.pending, e.cur.Row())
		more = true
	}
	err := e.cur.Err()
	if err != nil && (errors.Is(err, exec.ErrHuntCancelled) || errors.Is(err, exec.ErrHuntDeadline)) {
		// Interrupted, not dead: stash the partial page so a retry
		// re-serves exactly these rows, and leave the offset unmoved.
		e.pending = append(rows, e.pending...)
	} else {
		e.offset = pageStart + len(rows)
	}
	st := toHuntStats(e.cur)
	epoch := uint64(e.cur.Epoch())
	cols := e.cur.Columns()
	e.mu.Unlock()

	if err != nil {
		cause := context.Cause(hctx)
		switch {
		case errors.Is(cause, errCursorEvicted):
			// The LRU (or an explicit close) took the cursor out from under
			// this page; it is already detached and closed.
			writeError(w, http.StatusGone, "cursor %q evicted mid-page; re-run the hunt", id)
		case errors.Is(cause, errHuntKilled):
			s.huntsKilled.Add(1)
			s.cursors.remove(id)
			writeError(w, http.StatusServiceUnavailable, "%v", err)
		case errors.Is(err, exec.ErrHuntDeadline):
			// Resumable: the partial page is queued, so retrying this
			// request serves it with no rows lost or repeated.
			s.huntsTimedOut.Add(1)
			writeError(w, http.StatusGatewayTimeout, "%v; cursor %q remains resumable", err, id)
		case errors.Is(err, exec.ErrHuntCancelled):
			s.huntsCancelled.Add(1)
			writeError(w, statusClientClosedRequest, "%v; cursor %q remains resumable", err, id)
		case errors.Is(err, exec.ErrJoinBudget):
			s.huntsBudget.Add(1)
			s.cursors.remove(id)
			writeError(w, http.StatusUnprocessableEntity, "%v", err)
		default:
			s.cursors.remove(id)
			writeError(w, http.StatusInternalServerError, "%v", err)
		}
		return
	}
	if !more {
		// Exhausted: close and forget the cursor, releasing its epoch pin.
		s.cursors.remove(id)
	}
	s.cursors.pages.Add(1)
	resp := HuntResponse{
		Columns: cols,
		Rows:    rows,
		Offset:  pageStart,
		Count:   len(rows),
		Epoch:   epoch,
		Stats:   st,
	}
	if more {
		next := pageStart + len(rows)
		resp.NextOffset = &next
		resp.CursorID = id
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleHuntCursor closes a registered cursor explicitly:
// DELETE /hunt/cursor?cursor=<id>. Closing releases the cursor's match
// state and epoch pin immediately instead of waiting for TTL expiry.
func (s *Server) handleHuntCursor(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodDelete {
		writeError(w, http.StatusMethodNotAllowed, "hunt/cursor wants DELETE, got %s", r.Method)
		return
	}
	id := r.URL.Query().Get("cursor")
	if id == "" {
		writeError(w, http.StatusBadRequest, "missing cursor parameter")
		return
	}
	if !s.cursors.remove(id) {
		writeError(w, http.StatusGone, "unknown or expired cursor %q", id)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"closed": id})
}

// ExplainedPattern is one pattern of an explain response, in scheduled
// order. Propagated lists the entity variables the pattern shares with
// earlier scheduled patterns — the ones that receive propagated IN-list
// constraints at run time unless the candidate set exceeds the
// propagation cap (see the stats' propagations_skipped).
type ExplainedPattern struct {
	Name      string `json:"name"`
	Backend   string `json:"backend"`
	Score     int    `json:"score"`
	DataQuery string `json:"data_query"`
	// EstRows is the optimizer's cardinality estimate for the pattern
	// (-1 when the cost optimizer is disabled or the pattern could not
	// be estimated); CostBased reports whether the listed order came
	// from those estimates rather than static pruning scores.
	EstRows    int64    `json:"est_rows"`
	CostBased  bool     `json:"cost_based"`
	Propagated []string `json:"propagated,omitempty"`
	// Hosts lists the host constants the pattern is pinned to (absent
	// when unconstrained); on a sharded store the pattern's data query
	// only visits those hosts' shards.
	Hosts []string `json:"hosts,omitempty"`
}

// handleExplain compiles and scores a TBQL query without executing it:
// GET /explain?q=... or POST /explain with the TBQL source as the body.
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	var src string
	switch r.Method {
	case http.MethodGet:
		src = r.URL.Query().Get("q")
	case http.MethodPost:
		raw, status, err := readBody(w, r, MaxQueryBody)
		if err != nil {
			writeError(w, status, "%v", err)
			return
		}
		src = string(raw)
	default:
		writeError(w, http.StatusMethodNotAllowed, "explain wants GET or POST, got %s", r.Method)
		return
	}
	if strings.TrimSpace(src) == "" {
		writeError(w, http.StatusBadRequest, "empty TBQL query (use ?q= or a POST body)")
		return
	}
	rid := requestID(r.Context())
	hctx, kill, huntDone := s.huntCtx(r)
	defer huntDone()
	finish := s.trackInflight("explain", rid, src, kill)
	defer finish()
	var tr *obs.Trace
	if !s.cfg.NoTrace {
		tr = obs.NewTrace()
		tr.SetRequestID(rid)
	}
	parseSp := tr.Begin("parse", -1)
	q, err := s.sys.ParseQuery(src)
	tr.End(parseSp)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	patterns, err := s.sys.ExplainTraceCtx(hctx, q, tr)
	if err != nil {
		if s.writeHuntAbort(w, hctx, err, tr) {
			return
		}
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	out := make([]ExplainedPattern, len(patterns))
	for i, p := range patterns {
		out[i] = ExplainedPattern{
			Name: p.Name, Backend: p.Backend, Score: p.Score,
			DataQuery: p.DataQuery, EstRows: p.EstRows, CostBased: p.CostBased,
			Propagated: p.Propagated, Hosts: p.Hosts,
		}
	}
	body := map[string]any{"patterns": out}
	if t := tr.JSON(); t != nil {
		body["trace"] = t
	}
	writeJSON(w, http.StatusOK, body)
}

// StatsResponse is the JSON body returned by GET /stats.
type StatsResponse struct {
	threatraptor.StoreStats
	Hunts   int64 `json:"hunts"`
	Ingests int64 `json:"ingests"`
	// HuntExecutions counts query executions (one per POST /hunt).
	// Cursor pages never re-execute, so this staying flat while
	// cursor_pages climbs is deep pagination working as designed.
	HuntExecutions int64 `json:"hunt_executions"`
	// Epoch is the current ingest epoch (one per ingest commit).
	Epoch uint64 `json:"epoch"`
	// OpenCursors is the number of registered server-side cursors;
	// EpochsPinned counts the distinct epochs they hold live. Cursor
	// pages, expiries (TTL), and evictions (LRU cap) are lifetime
	// counters.
	OpenCursors    int   `json:"open_cursors"`
	EpochsPinned   int   `json:"epochs_pinned"`
	CursorPages    int64 `json:"cursor_pages"`
	CursorsExpired int64 `json:"cursors_expired"`
	CursorsEvicted int64 `json:"cursors_evicted"`
	// WatchesActive is the number of registered standing hunts;
	// WatchesOpened, WatchBatches, WatchRows, WatchEvictions,
	// WatchesExpired, WatchWebhookRetries, and WatchWebhookFailures are
	// lifetime counters. Evictions count slow subscribers the System
	// dropped to keep the ingest path unblocked; expiries count watches
	// that idled past the TTL with no consumer attached.
	WatchesActive        int   `json:"watches_active"`
	WatchesOpened        int64 `json:"watches_opened"`
	WatchBatches         int64 `json:"watch_batches"`
	WatchRows            int64 `json:"watch_rows"`
	WatchEvictions       int64 `json:"watch_evictions"`
	WatchesExpired       int64 `json:"watches_expired"`
	WatchWebhookRetries  int64 `json:"watch_webhook_retries"`
	WatchWebhookFailures int64 `json:"watch_webhook_failures"`
	// PropagationsSkipped is the cumulative count of propagation
	// constraints hunts dropped for exceeding the engine's propagation
	// cap; when it climbs, hunts are silently fetching whole tables.
	// The prepared-plan pipeline's 25600 default makes this rare.
	PropagationsSkipped int64 `json:"propagations_skipped"`
	// OptimizerReorders counts hunts the cost optimizer scheduled
	// differently from the static pruning-score order.
	OptimizerReorders int64 `json:"optimizer_reorders"`
	// HuntsTimedOut, HuntsCancelled, HuntsKilled, HuntsBudgetExceeded,
	// and HuntsShed are the lifecycle-governance counters: hunts aborted
	// by the -hunt-timeout deadline, by a client disconnect, by the
	// DELETE /debug/hunts/<id> kill switch, by the -max-join-rows budget,
	// or shed at the -max-hunts admission gate.
	HuntsTimedOut       int64 `json:"hunts_timed_out"`
	HuntsCancelled      int64 `json:"hunts_cancelled"`
	HuntsKilled         int64 `json:"hunts_killed"`
	HuntsBudgetExceeded int64 `json:"hunts_budget_exceeded"`
	HuntsShed           int64 `json:"hunts_shed"`
	// PlanCacheHits/Misses are the prepared-plan cache's cumulative
	// counters; PlanCacheSize is how many plan templates it currently
	// holds. Hits climbing while misses stay flat is the repeat-hunt
	// workload skipping compile+parse entirely.
	PlanCacheHits   int64 `json:"plan_cache_hits"`
	PlanCacheMisses int64 `json:"plan_cache_misses"`
	PlanCacheSize   int   `json:"plan_cache_size"`
	// QueryCacheHits/Misses count POST /hunt lookups of the TBQL text →
	// analyzed-query cache; QueryCacheSize is its current entry count.
	// A hit skips parse and analysis entirely.
	QueryCacheHits   int64 `json:"query_cache_hits"`
	QueryCacheMisses int64 `json:"query_cache_misses"`
	QueryCacheSize   int   `json:"query_cache_size"`
	// DegradedReason is non-empty when the durability log hit a disk
	// fault and ingestion is refused with 503 (hunts keep working).
	DegradedReason string `json:"degraded_reason,omitempty"`
	// RecoveredEpoch / RecoveredCommits / RecoveredDroppedBytes report
	// this process's restart recovery: the highest epoch restored, the
	// commits replayed (segments + WAL tail), and the bytes discarded at
	// the first torn record. RecoveredClean means the previous shutdown
	// wrote its clean marker, so no tail truncation was possible. All
	// zero for a memory-only daemon or a fresh data dir.
	RecoveredEpoch        uint64 `json:"recovered_epoch"`
	RecoveredCommits      int    `json:"recovered_commits"`
	RecoveredDroppedBytes int64  `json:"recovered_dropped_bytes"`
	RecoveredClean        bool   `json:"recovered_clean"`
	// WALRecords/WALSyncs are lifetime durability-log counters;
	// SegmentSets is the current on-disk segment-set count, with
	// SegmentFlushes and Compactions as lifetime counters. All zero for
	// a memory-only daemon.
	WALRecords     int64   `json:"wal_records"`
	WALSyncs       int64   `json:"wal_syncs"`
	SegmentSets    int     `json:"segment_sets"`
	SegmentFlushes int64   `json:"segment_flushes"`
	Compactions    int64   `json:"compactions"`
	UptimeSeconds  float64 `json:"uptime_seconds"`
}

// handleStats reports store sizes and request counters. Reading stats
// also sweeps expired cursors, so the reported counts reflect the TTL.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "stats wants GET, got %s", r.Method)
		return
	}
	s.cursors.sweep()
	s.watches.sweep()
	watchOpened, watchBatches, watchRows, watchEvicted := s.sys.WatchTotals()
	planHits, planMisses, planSize := s.sys.PlanCacheStats()
	qHits, qMisses, qSize := s.queries.counters()
	recovery := s.sys.Recovery()
	walStats := s.sys.WALStats()
	writeJSON(w, http.StatusOK, StatsResponse{
		StoreStats:            s.sys.Stats(),
		Hunts:                 s.hunts.Load(),
		Ingests:               s.ingests.Load(),
		HuntExecutions:        s.executions.Load(),
		Epoch:                 uint64(s.sys.Epoch()),
		OpenCursors:           s.cursors.open(),
		EpochsPinned:          s.cursors.reg.Pinned(),
		CursorPages:           s.cursors.pages.Load(),
		CursorsExpired:        s.cursors.expired.Load(),
		CursorsEvicted:        s.cursors.evicted.Load(),
		WatchesActive:         s.watches.open(),
		WatchesOpened:         watchOpened,
		WatchBatches:          watchBatches,
		WatchRows:             watchRows,
		WatchEvictions:        watchEvicted,
		WatchesExpired:        s.watches.expired.Load(),
		WatchWebhookRetries:   s.watches.webhookRetries.Load(),
		WatchWebhookFailures:  s.watches.webhookFailures.Load(),
		PropagationsSkipped:   s.propSkipped.Load(),
		OptimizerReorders:     s.optReorders.Load(),
		HuntsTimedOut:         s.huntsTimedOut.Load(),
		HuntsCancelled:        s.huntsCancelled.Load(),
		HuntsKilled:           s.huntsKilled.Load(),
		HuntsBudgetExceeded:   s.huntsBudget.Load(),
		HuntsShed:             s.huntsShed.Load(),
		PlanCacheHits:         planHits,
		PlanCacheMisses:       planMisses,
		PlanCacheSize:         planSize,
		QueryCacheHits:        qHits,
		QueryCacheMisses:      qMisses,
		QueryCacheSize:        qSize,
		DegradedReason:        walStats.DegradedReason,
		RecoveredEpoch:        recovery.Epoch,
		RecoveredCommits:      recovery.Commits,
		RecoveredDroppedBytes: recovery.DroppedBytes,
		RecoveredClean:        recovery.Clean,
		WALRecords:            walStats.Records,
		WALSyncs:              walStats.Syncs,
		SegmentSets:           walStats.SegmentSets,
		SegmentFlushes:        walStats.SegmentFlushes,
		Compactions:           walStats.Compactions,
		UptimeSeconds:         time.Since(s.started).Seconds(),
	})
}
