// Package service exposes a threatraptor.System over HTTP: the daemon
// API behind cmd/threatraptord. One long-running System serves many
// concurrent analysts — ingestion streams in over POST /ingest while
// hunts page through match sets with the cursor API.
package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro"
)

// DefaultHuntLimit is the page size used when a hunt request does not
// specify one.
const DefaultHuntLimit = 1000

// MaxIngestBody caps a single POST /ingest body (256 MiB). Larger
// batches should be split; the cap also bounds how much memory one
// request can pin while buffering.
const MaxIngestBody = 256 << 20

// MaxQueryBody caps a /hunt or /explain request body (1 MiB); TBQL
// sources are short, so anything larger is a client error.
const MaxQueryBody = 1 << 20

// MaxConcurrentIngests bounds how many /ingest requests may buffer
// bodies at once. Ingestion itself is serialized by the System; this
// cap keeps N clients from pinning N×MaxIngestBody of heap while they
// queue. Requests beyond the cap get 429.
const MaxConcurrentIngests = 4

// Server is the HTTP front end of a ThreatRaptor system. It implements
// http.Handler and is safe for concurrent requests: the underlying
// System synchronizes ingestion against hunts.
type Server struct {
	sys     *threatraptor.System
	mux     *http.ServeMux
	started time.Time

	hunts   atomic.Int64
	ingests atomic.Int64
	// propSkipped accumulates Stats.PropagationsSkipped across hunts:
	// a growing count means hunts keep hitting the propagation cap and
	// falling back to unconstrained table fetches.
	propSkipped atomic.Int64

	// ingestSlots is a semaphore bounding concurrent /ingest buffering.
	ingestSlots chan struct{}
}

// New wraps a System with the daemon's HTTP API.
func New(sys *threatraptor.System) *Server {
	s := &Server{
		sys:         sys,
		mux:         http.NewServeMux(),
		started:     time.Now(),
		ingestSlots: make(chan struct{}, MaxConcurrentIngests),
	}
	s.mux.HandleFunc("/ingest", s.handleIngest)
	s.mux.HandleFunc("/hunt", s.handleHunt)
	s.mux.HandleFunc("/explain", s.handleExplain)
	s.mux.HandleFunc("/stats", s.handleStats)
	return s
}

// ServeHTTP dispatches to the daemon's endpoints.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// readBody buffers the request body under the given cap. A body over
// the cap reports 413; any other read failure is the client's 400.
func readBody(w http.ResponseWriter, r *http.Request, limit int64) ([]byte, int, error) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, limit))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return nil, http.StatusRequestEntityTooLarge,
				fmt.Errorf("body exceeds the %d-byte limit", tooBig.Limit)
		}
		return nil, http.StatusBadRequest, fmt.Errorf("reading body: %v", err)
	}
	return body, 0, nil
}

// IngestResponse is the JSON body returned by POST /ingest.
type IngestResponse struct {
	Entities     int     `json:"entities"`
	EventsIn     int     `json:"events_in"`
	EventsStored int     `json:"events_stored"`
	CPRReduction float64 `json:"cpr_reduction"`
	ParseErrors  int     `json:"parse_errors"`
}

// handleIngest streams audit log lines from the request body into the
// system: POST /ingest with a Sysdig-style log as the body.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "ingest wants POST, got %s", r.Method)
		return
	}
	select {
	case s.ingestSlots <- struct{}{}:
		defer func() { <-s.ingestSlots }()
	default:
		writeError(w, http.StatusTooManyRequests,
			"too many concurrent ingest batches (max %d); retry shortly", MaxConcurrentIngests)
		return
	}
	// Buffer the body before ingesting: IngestLogs serializes ingestion
	// batches, and parsing straight from the network would let one slow
	// client hold that lock for as long as it cares to trickle bytes.
	body, status, err := readBody(w, r, MaxIngestBody)
	if err != nil {
		writeError(w, status, "%v", err)
		return
	}
	stats, err := s.sys.IngestLogs(bytes.NewReader(body))
	if err != nil {
		// Parse failures are the client's fault; storage failures are ours.
		status := http.StatusBadRequest
		if errors.Is(err, threatraptor.ErrStorage) {
			status = http.StatusInternalServerError
		}
		writeError(w, status, "%v", err)
		return
	}
	s.ingests.Add(1)
	writeJSON(w, http.StatusOK, IngestResponse{
		Entities:     stats.Entities,
		EventsIn:     stats.EventsIn,
		EventsStored: stats.EventsStored,
		CPRReduction: stats.CPRReduction,
		ParseErrors:  stats.ParseErrors,
	})
}

// HuntRequest is the JSON body accepted by POST /hunt. The body may
// instead be raw TBQL source (any non-JSON content type), with limit
// and offset given as URL query parameters.
type HuntRequest struct {
	Query  string `json:"query"`
	Limit  int    `json:"limit"`
	Offset int    `json:"offset"`
}

// HuntStats is the execution summary embedded in a hunt response.
// PropagationsSkipped counts shared-entity constraints dropped because
// the candidate set exceeded the engine's propagation cap — the signal
// that this hunt fetched an unconstrained table. JoinCandidates counts
// the join work actually done for the requested page (the join is
// lazy), not the whole match space.
type HuntStats struct {
	RowsFetched         int  `json:"rows_fetched"`
	Propagations        int  `json:"propagations"`
	PropagationsSkipped int  `json:"propagations_skipped"`
	ShortCircuit        bool `json:"short_circuit"`
	JoinCandidates      int  `json:"join_candidates"`
	// ShardFetches counts per-shard data-query executions; a pattern
	// filtering host = '...' is pruned to one shard instead of fanning
	// out across all of them.
	ShardFetches int `json:"shard_fetches"`
}

// HuntResponse is one page of hunt results. NextOffset is present only
// when more rows remain beyond this page; passing it back as offset
// resumes the iteration.
type HuntResponse struct {
	Columns    []string   `json:"columns"`
	Rows       [][]string `json:"rows"`
	Offset     int        `json:"offset"`
	Count      int        `json:"count"`
	NextOffset *int       `json:"next_offset,omitempty"`
	Stats      HuntStats  `json:"stats"`
}

func (s *Server) huntRequest(w http.ResponseWriter, r *http.Request) (HuntRequest, int, error) {
	var req HuntRequest
	body, status, err := readBody(w, r, MaxQueryBody)
	if err != nil {
		return req, status, err
	}
	if strings.Contains(r.Header.Get("Content-Type"), "json") {
		if err := json.Unmarshal(body, &req); err != nil {
			return req, http.StatusBadRequest, fmt.Errorf("bad JSON body: %v", err)
		}
	} else {
		req.Query = string(body)
	}
	q := r.URL.Query()
	for name, dst := range map[string]*int{"limit": &req.Limit, "offset": &req.Offset} {
		if raw := q.Get(name); raw != "" {
			n, err := strconv.Atoi(raw)
			if err != nil {
				return req, http.StatusBadRequest, fmt.Errorf("bad %s %q", name, raw)
			}
			*dst = n
		}
	}
	if req.Limit < 0 || req.Offset < 0 {
		return req, http.StatusBadRequest, fmt.Errorf("limit and offset must be non-negative")
	}
	if req.Limit == 0 {
		req.Limit = DefaultHuntLimit
	}
	if strings.TrimSpace(req.Query) == "" {
		return req, http.StatusBadRequest, fmt.Errorf("empty TBQL query")
	}
	return req, 0, nil
}

// handleHunt executes TBQL source and returns one page of projected
// rows, driven by the streaming cursor so only the requested page is
// materialized.
func (s *Server) handleHunt(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "hunt wants POST, got %s", r.Method)
		return
	}
	req, status, err := s.huntRequest(w, r)
	if err != nil {
		writeError(w, status, "%v", err)
		return
	}
	cur, err := s.sys.HuntCursor(req.Query)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	defer cur.Close()
	s.hunts.Add(1)

	for skipped := 0; skipped < req.Offset; skipped++ {
		if !cur.Next() {
			break
		}
	}
	// Row guarantees each projected row is freshly allocated and
	// unaliased, so it can be retained without copying.
	rows := make([][]string, 0, min(req.Limit, 64))
	for len(rows) < req.Limit && cur.Next() {
		rows = append(rows, cur.Row())
	}
	st := cur.Stats()
	s.propSkipped.Add(int64(st.PropagationsSkipped))
	resp := HuntResponse{
		Columns: cur.Columns(),
		Rows:    rows,
		Offset:  req.Offset,
		Count:   len(rows),
		Stats: HuntStats{
			RowsFetched:         st.RowsFetched,
			Propagations:        st.Propagations,
			PropagationsSkipped: st.PropagationsSkipped,
			ShortCircuit:        st.ShortCircuit,
			JoinCandidates:      st.JoinCandidates,
			ShardFetches:        st.ShardFetches,
		},
	}
	if cur.Next() { // one row beyond the page: more remain
		next := req.Offset + len(rows)
		resp.NextOffset = &next
		resp.Stats.JoinCandidates = cur.Stats().JoinCandidates
	}
	// The join runs lazily inside the cursor, so an iteration error can
	// surface mid-page; report it instead of a truncated row set.
	if err := cur.Err(); err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// ExplainedPattern is one pattern of an explain response, in scheduled
// order. Propagated lists the entity variables the pattern shares with
// earlier scheduled patterns — the ones that receive propagated IN-list
// constraints at run time unless the candidate set exceeds the
// propagation cap (see the stats' propagations_skipped).
type ExplainedPattern struct {
	Name       string   `json:"name"`
	Backend    string   `json:"backend"`
	Score      int      `json:"score"`
	DataQuery  string   `json:"data_query"`
	Propagated []string `json:"propagated,omitempty"`
	// Hosts lists the host constants the pattern is pinned to (absent
	// when unconstrained); on a sharded store the pattern's data query
	// only visits those hosts' shards.
	Hosts []string `json:"hosts,omitempty"`
}

// handleExplain compiles and scores a TBQL query without executing it:
// GET /explain?q=... or POST /explain with the TBQL source as the body.
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	var src string
	switch r.Method {
	case http.MethodGet:
		src = r.URL.Query().Get("q")
	case http.MethodPost:
		raw, status, err := readBody(w, r, MaxQueryBody)
		if err != nil {
			writeError(w, status, "%v", err)
			return
		}
		src = string(raw)
	default:
		writeError(w, http.StatusMethodNotAllowed, "explain wants GET or POST, got %s", r.Method)
		return
	}
	if strings.TrimSpace(src) == "" {
		writeError(w, http.StatusBadRequest, "empty TBQL query (use ?q= or a POST body)")
		return
	}
	q, err := s.sys.ParseQuery(src)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	patterns, err := s.sys.Explain(q)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	out := make([]ExplainedPattern, len(patterns))
	for i, p := range patterns {
		out[i] = ExplainedPattern{
			Name: p.Name, Backend: p.Backend, Score: p.Score,
			DataQuery: p.DataQuery, Propagated: p.Propagated, Hosts: p.Hosts,
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"patterns": out})
}

// StatsResponse is the JSON body returned by GET /stats.
type StatsResponse struct {
	threatraptor.StoreStats
	Hunts   int64 `json:"hunts"`
	Ingests int64 `json:"ingests"`
	// PropagationsSkipped is the cumulative count of propagation
	// constraints hunts dropped for exceeding the engine's IN-list cap;
	// when it climbs, hunts are silently fetching whole tables.
	PropagationsSkipped int64   `json:"propagations_skipped"`
	UptimeSeconds       float64 `json:"uptime_seconds"`
}

// handleStats reports store sizes and request counters.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "stats wants GET, got %s", r.Method)
		return
	}
	writeJSON(w, http.StatusOK, StatsResponse{
		StoreStats:          s.sys.Stats(),
		Hunts:               s.hunts.Load(),
		Ingests:             s.ingests.Load(),
		PropagationsSkipped: s.propSkipped.Load(),
		UptimeSeconds:       time.Since(s.started).Seconds(),
	})
}
