package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/audit/gen"
)

// wideQuery matches one row per read event: plenty of pages.
const wideQuery = `proc p read file f as e1
return p, f`

func getJSON(t *testing.T, url string, want int) (HuntResponse, *http.Response) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != want {
		t.Fatalf("GET %s: status %d, want %d (%s)", url, resp.StatusCode, want, body)
	}
	var hr HuntResponse
	if want == http.StatusOK {
		if err := json.Unmarshal(body, &hr); err != nil {
			t.Fatalf("bad JSON %q: %v", body, err)
		}
	}
	return hr, resp
}

func doDelete(t *testing.T, url string) int {
	t.Helper()
	req, _ := http.NewRequest(http.MethodDelete, url, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}

func serverStats(t *testing.T, ts *httptest.Server) StatsResponse {
	t.Helper()
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st StatsResponse
	decodeJSON(t, resp, &st)
	return st
}

// TestCursorPaginationSingleExecution drives the server-side cursor API
// end to end: POST /hunt executes once and returns a cursor_id, every
// GET /hunt/next page comes from that one execution (hunt_executions
// stays at 1, per-page shard_fetches never grows), the reassembled
// pages equal the full result, and exhaustion closes the cursor and
// garbage-collects its epoch pin.
func TestCursorPaginationSingleExecution(t *testing.T) {
	ts, sys, logs := newTestServer(t)
	if _, err := sys.IngestLogs(strings.NewReader(logs)); err != nil {
		t.Fatal(err)
	}
	res, err := sys.Hunt(wideQuery)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 100 {
		t.Fatalf("fixture too small: %d rows", len(res.Rows))
	}

	first := postHunt(t, ts, wideQuery, 40, 0)
	if first.CursorID == "" {
		t.Fatalf("first page of a %d-row hunt returned no cursor_id: %+v", len(res.Rows), first)
	}
	if first.NextOffset == nil || *first.NextOffset != 40 {
		t.Fatalf("first page next_offset = %v, want 40", first.NextOffset)
	}

	// A stateless offset page must NOT register a cursor (it would churn
	// the LRU registry), while its next_offset keeps working.
	offsetPage := postHunt(t, ts, wideQuery, 40, 40)
	if offsetPage.CursorID != "" {
		t.Fatalf("offset-paging request registered cursor %q", offsetPage.CursorID)
	}
	if offsetPage.NextOffset == nil {
		t.Fatal("offset page lost its next_offset")
	}

	pages := append([][]string{}, first.Rows...)
	fetches := first.Stats.ShardFetches
	id := first.CursorID
	for page := 0; id != ""; page++ {
		if page > len(res.Rows) {
			t.Fatal("cursor pagination did not terminate")
		}
		hr, _ := getJSON(t, ts.URL+"/hunt/next?cursor="+id+"&limit=40", http.StatusOK)
		if hr.Offset != len(pages) {
			t.Fatalf("page %d offset = %d, want %d", page, hr.Offset, len(pages))
		}
		if hr.Epoch != first.Epoch {
			t.Fatalf("page %d epoch = %d, first page pinned %d", page, hr.Epoch, first.Epoch)
		}
		if hr.Stats.ShardFetches != fetches {
			t.Fatalf("page %d shard_fetches = %d, want %d (no re-execution)", page, hr.Stats.ShardFetches, fetches)
		}
		pages = append(pages, hr.Rows...)
		id = hr.CursorID
	}

	if len(pages) != len(res.Rows) {
		t.Fatalf("cursor pages total %d rows, want %d", len(pages), len(res.Rows))
	}
	for i := range pages {
		if strings.Join(pages[i], "\x00") != strings.Join(res.Rows[i], "\x00") {
			t.Fatalf("row %d: paged %v != Result %v", i, pages[i], res.Rows[i])
		}
	}

	st := serverStats(t, ts)
	// Two POST /hunt calls ran (the cursor's own and the stateless
	// offset probe above); the N cursor pages added zero executions.
	if st.HuntExecutions != 2 {
		t.Errorf("hunt_executions = %d after deep pagination, want 2", st.HuntExecutions)
	}
	if st.OpenCursors != 0 || st.EpochsPinned != 0 {
		t.Errorf("exhausted cursor left open_cursors=%d epochs_pinned=%d", st.OpenCursors, st.EpochsPinned)
	}
	if st.CursorPages == 0 {
		t.Error("cursor_pages did not count")
	}
}

// TestCursorExplicitDelete: DELETE /hunt/cursor closes a cursor
// immediately; later pages and repeat deletes answer 410.
func TestCursorExplicitDelete(t *testing.T) {
	ts, sys, logs := newTestServer(t)
	if _, err := sys.IngestLogs(strings.NewReader(logs)); err != nil {
		t.Fatal(err)
	}
	first := postHunt(t, ts, wideQuery, 10, 0)
	if first.CursorID == "" {
		t.Fatal("no cursor_id")
	}
	if code := doDelete(t, ts.URL+"/hunt/cursor?cursor="+first.CursorID); code != http.StatusOK {
		t.Fatalf("delete status %d", code)
	}
	getJSON(t, ts.URL+"/hunt/next?cursor="+first.CursorID, http.StatusGone)
	if code := doDelete(t, ts.URL+"/hunt/cursor?cursor="+first.CursorID); code != http.StatusGone {
		t.Fatalf("repeat delete status %d, want 410", code)
	}
	if code := doDelete(t, ts.URL+"/hunt/cursor"); code != http.StatusBadRequest {
		t.Fatalf("missing-param delete status %d, want 400", code)
	}
	if st := serverStats(t, ts); st.OpenCursors != 0 || st.EpochsPinned != 0 {
		t.Errorf("deleted cursor left open_cursors=%d epochs_pinned=%d", st.OpenCursors, st.EpochsPinned)
	}
}

// TestCursorTTLExpiry: a cursor idle past the TTL answers 410 Gone
// mid-pagination — a clean error, not a hang or a wrong page — and the
// expiry is counted and its epoch released.
func TestCursorTTLExpiry(t *testing.T) {
	sys, err := threatraptor.New(threatraptor.Options{})
	if err != nil {
		t.Fatal(err)
	}
	w := gen.Generate(gen.Config{Seed: 31, BenignEvents: 1200})
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.IngestLogs(strings.NewReader(buf.String())); err != nil {
		t.Fatal(err)
	}
	srv := NewWithConfig(sys, Config{CursorTTL: time.Minute})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	// A controllable clock instead of sleeping through the TTL.
	now := time.Now()
	srv.cursors.now = func() time.Time { return now }

	first := postHunt(t, ts, wideQuery, 10, 0)
	if first.CursorID == "" {
		t.Fatal("no cursor_id")
	}
	// Page once within the TTL: fine, and it refreshes last use.
	getJSON(t, ts.URL+"/hunt/next?cursor="+first.CursorID+"&limit=10", http.StatusOK)

	now = now.Add(2 * time.Minute)
	getJSON(t, ts.URL+"/hunt/next?cursor="+first.CursorID+"&limit=10", http.StatusGone)

	st := serverStats(t, ts)
	if st.CursorsExpired != 1 {
		t.Errorf("cursors_expired = %d, want 1", st.CursorsExpired)
	}
	if st.OpenCursors != 0 || st.EpochsPinned != 0 {
		t.Errorf("expired cursor left open_cursors=%d epochs_pinned=%d", st.OpenCursors, st.EpochsPinned)
	}
}

// TestCursorLRUEviction: concurrent clients opening more cursors than
// the cap evict the least-recently-used ones; evicted cursors answer
// 410, the registry never exceeds the cap, and survivors keep paging
// correctly.
func TestCursorLRUEviction(t *testing.T) {
	sys, err := threatraptor.New(threatraptor.Options{})
	if err != nil {
		t.Fatal(err)
	}
	w := gen.Generate(gen.Config{Seed: 31, BenignEvents: 1200})
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.IngestLogs(strings.NewReader(buf.String())); err != nil {
		t.Fatal(err)
	}
	const cap = 4
	srv := NewWithConfig(sys, Config{MaxCursors: cap})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	// 4 clients × 4 cursors each, concurrently.
	var wg sync.WaitGroup
	ids := make(chan string, 16)
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				reqBody, _ := json.Marshal(HuntRequest{Query: wideQuery, Limit: 5})
				resp, err := http.Post(ts.URL+"/hunt", "application/json", bytes.NewReader(reqBody))
				if err != nil {
					t.Error(err)
					return
				}
				var hr HuntResponse
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err := json.Unmarshal(body, &hr); err != nil || hr.CursorID == "" {
					t.Errorf("hunt gave no cursor: %s", body)
					return
				}
				ids <- hr.CursorID
			}
		}()
	}
	wg.Wait()
	close(ids)

	st := serverStats(t, ts)
	if st.OpenCursors > cap {
		t.Fatalf("open_cursors = %d exceeds the cap %d", st.OpenCursors, cap)
	}
	if st.CursorsEvicted != 16-int64(cap) {
		t.Errorf("cursors_evicted = %d, want %d", st.CursorsEvicted, 16-cap)
	}

	// Every cursor either pages (survivor) or answers 410 (evicted);
	// exactly cap survive.
	live := 0
	for id := range ids {
		resp, err := http.Get(ts.URL + "/hunt/next?cursor=" + id + "&limit=1")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			live++
		case http.StatusGone:
		default:
			t.Fatalf("cursor %s: status %d", id, resp.StatusCode)
		}
	}
	if live != cap {
		t.Errorf("%d cursors survived, want %d", live, cap)
	}
}

// TestCursorPagesPinnedEpochUnderIngest is the service-level epoch
// property: pages read through a registered cursor while ingest keeps
// committing equal the match set at the cursor's pinned epoch — no
// skips, no repeats, no phantom rows — while a fresh hunt afterwards
// sees a bigger world.
func TestCursorPagesPinnedEpochUnderIngest(t *testing.T) {
	ts, sys, logs := newTestServer(t)
	if _, err := sys.IngestLogs(strings.NewReader(logs)); err != nil {
		t.Fatal(err)
	}
	want, err := sys.Hunt(wideQuery)
	if err != nil {
		t.Fatal(err)
	}

	first := postHunt(t, ts, wideQuery, 30, 0)
	if first.CursorID == "" {
		t.Fatal("no cursor_id")
	}

	// Heavy concurrent ingest: every batch adds read events that match
	// the open query.
	stop := make(chan struct{})
	var ingest sync.WaitGroup
	ingest.Add(1)
	go func() {
		defer ingest.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			wl := gen.Generate(gen.Config{Seed: int64(500 + i), BenignEvents: 150})
			var buf bytes.Buffer
			if _, err := wl.WriteTo(&buf); err != nil {
				t.Error(err)
				return
			}
			resp, err := http.Post(ts.URL+"/ingest", "text/plain", &buf)
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()

	pages := append([][]string{}, first.Rows...)
	id := first.CursorID
	for id != "" {
		hr, _ := getJSON(t, ts.URL+"/hunt/next?cursor="+id+"&limit=30", http.StatusOK)
		pages = append(pages, hr.Rows...)
		id = hr.CursorID
		if len(pages) > len(want.Rows)+1000 {
			t.Fatal("cursor returned far more rows than the pinned epoch holds")
		}
	}
	close(stop)
	ingest.Wait()

	if len(pages) != len(want.Rows) {
		t.Fatalf("pinned cursor paged %d rows under ingest, epoch match set has %d", len(pages), len(want.Rows))
	}
	for i := range pages {
		if strings.Join(pages[i], "\x00") != strings.Join(want.Rows[i], "\x00") {
			t.Fatalf("row %d: paged %v != epoch row %v", i, pages[i], want.Rows[i])
		}
	}

	after, err := sys.Hunt(wideQuery)
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Rows) <= len(want.Rows) {
		t.Fatalf("concurrent ingest added no matching rows (%d <= %d); the property was not exercised", len(after.Rows), len(want.Rows))
	}
}

// TestHuntNextErrors covers the error surface of the cursor endpoints.
func TestHuntNextErrors(t *testing.T) {
	ts, _, _ := newTestServer(t)
	getJSON(t, ts.URL+"/hunt/next", http.StatusBadRequest)
	getJSON(t, ts.URL+"/hunt/next?cursor=nope", http.StatusGone)
	getJSON(t, ts.URL+"/hunt/next?cursor=x&limit=-2", http.StatusBadRequest)
	resp, err := http.Post(ts.URL+"/hunt/next?cursor=x", "text/plain", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /hunt/next status %d, want 405", resp.StatusCode)
	}
}

// TestIngestRetryAfter: a shed ingest batch carries a Retry-After hint
// with its 429, and the queue bound is configurable.
func TestIngestRetryAfter(t *testing.T) {
	sys, err := threatraptor.New(threatraptor.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewWithConfig(sys, Config{IngestQueue: 2})
	if cap(srv.ingestSlots) != 2 {
		t.Fatalf("ingest queue cap = %d, want 2", cap(srv.ingestSlots))
	}
	for i := 0; i < 2; i++ {
		srv.ingestSlots <- struct{}{}
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	resp, err := http.Post(ts.URL+"/ingest", "text/plain",
		strings.NewReader("100\t200\th\t1\t/bin/a\tread\tfile\t/x\t1\n"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated ingest status %d (%s)", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 carried no Retry-After header")
	}
	if !strings.Contains(string(body), "max 2") {
		t.Errorf("429 body %q does not name the configured bound", body)
	}

	<-srv.ingestSlots
	resp, err = http.Post(ts.URL+"/ingest", "text/plain",
		strings.NewReader("100\t200\th\t1\t/bin/a\tread\tfile\t/x\t1\n"))
	if err != nil {
		t.Fatal(err)
	}
	var ing IngestResponse
	decodeJSON(t, resp, &ing)
	if ing.EventsStored != 1 {
		t.Errorf("recovered ingest stored %d events", ing.EventsStored)
	}
}

// TestSingleShardIngestFlowsUnderCursors: on a 1-shard deployment both
// entity-interning and event-only batches flow freely while cursors
// are held open (the epoch design plus the skipped broadcast — nothing
// for either batch kind to queue behind).
func TestSingleShardIngestFlowsUnderCursors(t *testing.T) {
	ts, sys, logs := newTestServer(t)
	if _, err := sys.IngestLogs(strings.NewReader(logs)); err != nil {
		t.Fatal(err)
	}
	if sys.NumShards() != 1 {
		t.Fatalf("test wants an unsharded system, got %d shards", sys.NumShards())
	}

	// Hold several cursors open across the ingest.
	var held []string
	for i := 0; i < 4; i++ {
		hr := postHunt(t, ts, wideQuery, 5, 0)
		if hr.CursorID == "" {
			t.Fatal("no cursor_id")
		}
		held = append(held, hr.CursorID)
	}

	done := make(chan error, 1)
	go func() {
		// New entities AND new events: the batch kind that used to queue
		// behind every open cursor.
		wl := gen.Generate(gen.Config{Seed: 777, BenignEvents: 300})
		var buf bytes.Buffer
		if _, err := wl.WriteTo(&buf); err != nil {
			done <- err
			return
		}
		resp, err := http.Post(ts.URL+"/ingest", "text/plain", &buf)
		if err != nil {
			done <- err
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			done <- fmt.Errorf("ingest status %d", resp.StatusCode)
			return
		}
		done <- nil
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("ingest blocked behind open cursors on a single-shard system")
	}

	// The held cursors still page their own epochs.
	for _, id := range held {
		getJSON(t, ts.URL+"/hunt/next?cursor="+id+"&limit=5", http.StatusOK)
	}
}
