package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro"
)

// Standing hunts over HTTP: POST /watch registers a TBQL query for
// continuous detection, and each ingest commit's new matches are pushed
// to the subscriber — either pulled over GET /watch/stream as
// Server-Sent Events or NDJSON, or posted to a webhook URL with bounded
// retries. DELETE /watch unregisters. A watch with no attached consumer
// expires after Config.WatchTTL; an attached subscriber that stops
// draining is evicted by the System (never blocking ingest) and its
// stream ends with a terminal error frame carrying the last resume
// token, which a reconnecting client passes back to continue without
// loss or duplication.

// DefaultWatchTTL is how long a standing hunt with no attached consumer
// (no open stream, no webhook) survives before it expires
// (Config.WatchTTL overrides).
const DefaultWatchTTL = 5 * time.Minute

// DefaultMaxWatches caps how many standing hunts may be registered at
// once (Config.MaxWatches overrides). Unlike cursors, watches are not
// LRU-evicted — silently dropping an analyst's detection rule is worse
// than refusing a new one — so registrations beyond the cap get 429.
const DefaultMaxWatches = 128

// WebhookRetries is how many delivery attempts a webhook batch gets
// before the watch is closed and the failure counted.
const WebhookRetries = 3

// DefaultWebhookBackoff is the base delay between webhook retries; each
// retry doubles it (Config.WebhookBackoff overrides).
const DefaultWebhookBackoff = 250 * time.Millisecond

// WatchRequest is the JSON body accepted by POST /watch. The body may
// instead be raw TBQL source (any non-JSON content type), registering a
// stream-only watch with default buffering.
type WatchRequest struct {
	// Query is the TBQL source of the standing hunt.
	Query string `json:"query"`
	// Webhook, when set, pushes each match batch to this http(s) URL as
	// an NDJSON frame instead of waiting for a stream subscriber.
	Webhook string `json:"webhook,omitempty"`
	// Resume positions the watch after a previous watch's resume token
	// (WatchFrame.Resume), so a reconnecting client sees exactly the
	// matches that committed after its last acknowledged batch.
	Resume string `json:"resume,omitempty"`
	// Buffer overrides the delivery buffer, in batches (0 = server
	// default). A subscriber further behind than this is evicted.
	Buffer int `json:"buffer,omitempty"`
}

// parseWatchRequest decodes a POST /watch body: JSON when isJSON, raw
// TBQL source otherwise. Split out (and pure) so the fuzzer can drive
// it directly.
func parseWatchRequest(body []byte, isJSON bool) (WatchRequest, error) {
	var req WatchRequest
	if isJSON {
		dec := json.NewDecoder(bytes.NewReader(body))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			return req, fmt.Errorf("bad JSON body: %v", err)
		}
	} else {
		req.Query = string(body)
	}
	if strings.TrimSpace(req.Query) == "" {
		return req, fmt.Errorf("empty TBQL query")
	}
	if req.Buffer < 0 {
		return req, fmt.Errorf("buffer must be non-negative")
	}
	if req.Webhook != "" {
		u, err := url.Parse(req.Webhook)
		if err != nil {
			return req, fmt.Errorf("bad webhook URL: %v", err)
		}
		if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return req, fmt.Errorf("webhook URL must be absolute http or https")
		}
	}
	return req, nil
}

// WatchResponse is the JSON body returned by POST /watch.
type WatchResponse struct {
	WatchID string   `json:"watch_id"`
	Columns []string `json:"columns"`
	// Resume is the token the watch has already evaluated up to (the
	// backfill batch, if any, carries the same token). A client that
	// receives nothing further can still resume from here.
	Resume string `json:"resume"`
}

// WatchFrame is one delivered match batch as it appears on the wire —
// one NDJSON line, or the data payload of one SSE "batch" event. A
// terminal frame has Error set (and no rows): the watch ended, and
// Resume is the last token the subscriber can reconnect with.
type WatchFrame struct {
	WatchID string     `json:"watch_id"`
	Epoch   uint64     `json:"epoch"`
	Resume  string     `json:"resume,omitempty"`
	Rows    [][]string `json:"rows,omitempty"`
	Error   string     `json:"error,omitempty"`
}

// appendFrameNDJSON appends f as one NDJSON line. json.Marshal never
// emits raw newlines (they are escaped inside strings), so the frame is
// exactly one line and the stream re-parses line by line.
func appendFrameNDJSON(dst []byte, f *WatchFrame) ([]byte, error) {
	b, err := json.Marshal(f)
	if err != nil {
		return dst, err
	}
	dst = append(dst, b...)
	return append(dst, '\n'), nil
}

// parseFrameNDJSON decodes one NDJSON line (trailing newline optional).
func parseFrameNDJSON(line []byte) (*WatchFrame, error) {
	var f WatchFrame
	if err := json.Unmarshal(bytes.TrimSuffix(line, []byte("\n")), &f); err != nil {
		return nil, err
	}
	return &f, nil
}

// appendFrameSSE appends f as one Server-Sent Event: an "event: batch"
// (or "event: end" for a terminal frame) with the JSON frame as its
// single data line.
func appendFrameSSE(dst []byte, f *WatchFrame) ([]byte, error) {
	b, err := json.Marshal(f)
	if err != nil {
		return dst, err
	}
	name := "batch"
	if f.Error != "" {
		name = "end"
	}
	dst = append(dst, "event: "...)
	dst = append(dst, name...)
	dst = append(dst, "\ndata: "...)
	dst = append(dst, b...)
	return append(dst, "\n\n"...), nil
}

// parseFrameSSE decodes one SSE event produced by appendFrameSSE.
func parseFrameSSE(b []byte) (*WatchFrame, error) {
	rest, ok := bytes.CutPrefix(b, []byte("event: "))
	if !ok {
		return nil, fmt.Errorf("sse frame: missing event line")
	}
	name, rest, ok := bytes.Cut(rest, []byte("\n"))
	if !ok {
		return nil, fmt.Errorf("sse frame: unterminated event line")
	}
	if string(name) != "batch" && string(name) != "end" {
		return nil, fmt.Errorf("sse frame: unknown event %q", name)
	}
	rest, ok = bytes.CutPrefix(rest, []byte("data: "))
	if !ok {
		return nil, fmt.Errorf("sse frame: missing data line")
	}
	data, ok := bytes.CutSuffix(rest, []byte("\n\n"))
	if !ok || bytes.Contains(data, []byte("\n")) {
		return nil, fmt.Errorf("sse frame: data must be one newline-terminated line")
	}
	var f WatchFrame
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, err
	}
	if (f.Error != "") != (string(name) == "end") {
		return nil, fmt.Errorf("sse frame: event name %q does not match frame error state", name)
	}
	return &f, nil
}

// frameOf maps a facade batch into its wire shape.
func frameOf(id string, b threatraptor.WatchBatch) WatchFrame {
	return WatchFrame{WatchID: id, Epoch: uint64(b.Epoch), Resume: b.Resume, Rows: b.Rows}
}

// watchEntry is one registered standing hunt.
type watchEntry struct {
	id      string
	w       *threatraptor.Watch
	created time.Time

	// attached and lastUsed are guarded by the manager's lock: attached
	// marks a live consumer (open stream or webhook pump) owning the
	// delivery channel, and the TTL only counts down while detached.
	attached bool
	lastUsed time.Time
}

// watchManager is the subscription registry behind POST /watch,
// GET /watch/stream, and DELETE /watch. Size is bounded by a hard cap
// (register refuses beyond it) and a TTL on watches no consumer is
// attached to; an attached watch never expires, and detaching (client
// disconnect) restarts the countdown so the subscriber can reconnect.
type watchManager struct {
	ttl time.Duration
	max int
	now func() time.Time // injectable for TTL tests

	mu      sync.Mutex
	entries map[string]*watchEntry

	expired         atomic.Int64
	webhookRetries  atomic.Int64
	webhookFailures atomic.Int64
}

func newWatchManager(ttl time.Duration, max int) *watchManager {
	return &watchManager{
		ttl:     ttl,
		max:     max,
		now:     time.Now,
		entries: make(map[string]*watchEntry),
	}
}

// put registers a watch and returns its entry, or false when the
// registry is full. Expired watches are swept first so a full registry
// of abandoned watches does not lock out new ones.
func (m *watchManager) put(w *threatraptor.Watch) (*watchEntry, bool) {
	e := &watchEntry{id: newCursorID(), w: w, created: m.now()}
	var victims []*watchEntry
	m.mu.Lock()
	victims = m.sweepLocked(victims)
	if len(m.entries) >= m.max {
		m.mu.Unlock()
		m.closeAll(victims)
		return nil, false
	}
	e.lastUsed = e.created
	m.entries[e.id] = e
	m.mu.Unlock()
	m.closeAll(victims)
	return e, true
}

// attach claims the entry's consumer slot for a stream or webhook pump.
// It returns the entry, or nil when the id is unknown or expired, or
// (nil, false) with ok=false... the second result distinguishes "gone"
// (nil, true) from "already has a consumer" (nil, false).
func (m *watchManager) attach(id string) (e *watchEntry, free bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e = m.entries[id]
	if e == nil {
		return nil, true
	}
	if e.attached {
		return nil, false
	}
	e.attached = true
	e.lastUsed = m.now()
	return e, true
}

// detach releases the consumer slot and restarts the TTL countdown.
func (m *watchManager) detach(id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if e := m.entries[id]; e != nil {
		e.attached = false
		e.lastUsed = m.now()
	}
}

// remove closes and forgets the entry, reporting whether the id was
// live. Closing the watch wakes any attached stream (its channel
// closes), which then observes the entry gone.
func (m *watchManager) remove(id string) bool {
	m.mu.Lock()
	e := m.entries[id]
	if e != nil {
		delete(m.entries, id)
	}
	m.mu.Unlock()
	if e == nil {
		return false
	}
	e.w.Close()
	return true
}

// sweep closes every expired watch. Returns how many were swept.
func (m *watchManager) sweep() int {
	var victims []*watchEntry
	m.mu.Lock()
	victims = m.sweepLocked(victims)
	m.mu.Unlock()
	m.closeAll(victims)
	return len(victims)
}

// sweepLocked detaches expired entries (unattached and idle past the
// TTL) for the caller to close outside the lock.
func (m *watchManager) sweepLocked(victims []*watchEntry) []*watchEntry {
	if m.ttl <= 0 {
		return victims
	}
	cutoff := m.now().Add(-m.ttl)
	for id, e := range m.entries {
		if e.attached || e.lastUsed.After(cutoff) {
			continue
		}
		delete(m.entries, id)
		m.expired.Add(1)
		victims = append(victims, e)
	}
	return victims
}

func (m *watchManager) closeAll(victims []*watchEntry) {
	for _, e := range victims {
		e.w.Close()
	}
}

// open returns how many watches are currently registered.
func (m *watchManager) open() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.entries)
}

// handleWatch registers a standing hunt: POST /watch with a JSON
// WatchRequest or raw TBQL source as the body. The response names the
// watch; attach a subscriber with GET /watch/stream?watch=<id> (unless
// the request set a webhook, which is its own subscriber).
func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
	case http.MethodDelete:
		s.handleWatchDelete(w, r)
		return
	default:
		writeError(w, http.StatusMethodNotAllowed, "watch wants POST or DELETE, got %s", r.Method)
		return
	}
	body, status, err := readBody(w, r, MaxQueryBody)
	if err != nil {
		writeError(w, status, "%v", err)
		return
	}
	req, err := parseWatchRequest(body, strings.Contains(r.Header.Get("Content-Type"), "json"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	q := s.queries.get(req.Query)
	if q == nil {
		q, err = s.sys.ParseQuery(req.Query)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		s.queries.put(req.Query, q)
	}
	buffer := req.Buffer
	if buffer == 0 {
		buffer = s.cfg.WatchBuffer
	}
	wt, err := s.sys.Watch(q, threatraptor.WatchOptions{Buffer: buffer, Resume: req.Resume})
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	e, ok := s.watches.put(wt)
	if !ok {
		wt.Close()
		// Like /ingest's shed path, the 429 carries a Retry-After hint:
		// an expiring watch may free a slot within the TTL sweep.
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests,
			"too many standing hunts (max %d); delete one or retry later", s.watches.max)
		return
	}
	if req.Webhook != "" {
		// The webhook pump is the watch's consumer from birth.
		if e2, free := s.watches.attach(e.id); e2 != nil {
			go s.webhookPump(e2, req.Webhook)
		} else if !free {
			// Unreachable in practice (the entry was just created), but
			// never leave a webhook watch consumer-less.
			s.watches.remove(e.id)
			writeError(w, http.StatusInternalServerError, "watch already attached")
			return
		}
	}
	writeJSON(w, http.StatusOK, WatchResponse{
		WatchID: e.id,
		Columns: wt.Columns(),
		Resume:  wt.Resume(),
	})
}

// handleWatchDelete unregisters a standing hunt:
// DELETE /watch?watch=<id>. An attached stream observes the close and
// ends.
func (s *Server) handleWatchDelete(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("watch")
	if id == "" {
		writeError(w, http.StatusBadRequest, "missing watch parameter")
		return
	}
	if !s.watches.remove(id) {
		writeError(w, http.StatusGone, "unknown or expired watch %q", id)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"closed": id})
}

// handleWatchStream attaches to a standing hunt and streams its match
// batches: GET /watch/stream?watch=<id>[&format=sse|ndjson] (default
// sse). One consumer at a time: a second stream on the same watch gets
// 409. The stream runs until the client disconnects (the watch stays
// registered; reconnect any time within the TTL) or the watch ends —
// eviction, evaluation failure, or DELETE — which emits a terminal
// frame with the error and the last resume token.
func (s *Server) handleWatchStream(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "watch/stream wants GET, got %s", r.Method)
		return
	}
	id := r.URL.Query().Get("watch")
	if id == "" {
		writeError(w, http.StatusBadRequest, "missing watch parameter")
		return
	}
	format := r.URL.Query().Get("format")
	if format == "" {
		format = "sse"
	}
	if format != "sse" && format != "ndjson" {
		writeError(w, http.StatusBadRequest, "format must be sse or ndjson, got %q", format)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported by this connection")
		return
	}
	e, free := s.watches.attach(id)
	if e == nil {
		if !free {
			writeError(w, http.StatusConflict, "watch %q already has a consumer", id)
			return
		}
		writeError(w, http.StatusGone, "unknown or expired watch %q; re-register", id)
		return
	}
	defer s.watches.detach(id)

	// A long-lived stream must outlive the server's ReadTimeout: clear
	// the read deadline for this connection so the daemon's slowloris
	// protection does not sever an idle-but-healthy subscriber.
	_ = http.NewResponseController(w).SetReadDeadline(time.Time{})

	if format == "sse" {
		w.Header().Set("Content-Type", "text/event-stream")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	writeFrame := func(f WatchFrame) bool {
		var buf []byte
		var err error
		if format == "sse" {
			buf, err = appendFrameSSE(nil, &f)
		} else {
			buf, err = appendFrameNDJSON(nil, &f)
		}
		if err != nil {
			return false
		}
		if _, err := w.Write(buf); err != nil {
			return false
		}
		flusher.Flush()
		return true
	}

	ctx := r.Context()
	for {
		select {
		case b, ok := <-e.w.C():
			if !ok {
				// The watch ended. Report why, with the last resume token so
				// the client can re-register without loss.
				f := WatchFrame{WatchID: id, Resume: e.w.Resume(), Error: "closed"}
				if err := e.w.Err(); err != nil {
					f.Error = err.Error()
				}
				writeFrame(f)
				s.watches.remove(id)
				return
			}
			if !writeFrame(frameOf(id, b)) {
				return
			}
		case <-ctx.Done():
			return
		}
	}
}

// webhookPump is the consumer goroutine of a webhook watch: it drains
// the delivery channel and POSTs each batch to the webhook URL as one
// NDJSON frame, retrying with exponential backoff. Exhausting the
// retries closes the watch (counted in watch_webhook_failures) — the
// subscriber's endpoint is down, and unread batches would otherwise
// accumulate until eviction anyway. Deliveries and backoff waits run
// under the server's base context, so Close aborts a pump stuck on a
// dead sink instead of delaying shutdown by retries × backoff.
func (s *Server) webhookPump(e *watchEntry, url string) {
	defer s.watches.remove(e.id)
	client := &http.Client{Timeout: 10 * time.Second}
	for b := range e.w.C() {
		f := frameOf(e.id, b)
		body, err := appendFrameNDJSON(nil, &f)
		if err != nil {
			s.watches.webhookFailures.Add(1)
			return
		}
		delivered := false
		backoff := s.cfg.WebhookBackoff
		for attempt := 0; attempt < WebhookRetries; attempt++ {
			if attempt > 0 {
				s.watches.webhookRetries.Add(1)
				select {
				case <-time.After(backoff):
				case <-s.baseCtx.Done():
					// Server shutting down; the endpoint can catch up from the
					// resume token when the watch is re-registered.
					return
				}
				backoff *= 2
			}
			req, err := http.NewRequestWithContext(s.baseCtx, http.MethodPost, url, bytes.NewReader(body))
			if err != nil {
				break
			}
			req.Header.Set("Content-Type", "application/x-ndjson")
			resp, err := client.Do(req)
			if err != nil {
				if s.baseCtx.Err() != nil {
					return
				}
				continue
			}
			resp.Body.Close()
			if resp.StatusCode < 300 {
				delivered = true
				break
			}
		}
		if !delivered {
			s.watches.webhookFailures.Add(1)
			return
		}
	}
}
