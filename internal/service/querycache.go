package service

import (
	"container/list"
	"sync"
	"sync/atomic"

	"repro"
)

// DefaultQueryCacheSize is the default capacity of the daemon's TBQL
// text → analyzed-query cache (Config.QueryCache overrides).
const DefaultQueryCacheSize = 256

// queryCache is an LRU from raw TBQL source text to its parsed and
// analyzed form, sitting in front of POST /hunt: analysts re-running
// the same hunt (every page of an offset-paging client, every refresh
// of a dashboard) skip parse and analysis entirely. Safe because the
// execution engine treats an analyzed query as read-only — one *Query
// may serve any number of concurrent hunts.
type queryCache struct {
	mu    sync.Mutex
	cap   int
	items map[string]*list.Element
	order *list.List // front = most recently used

	hits   atomic.Int64
	misses atomic.Int64
}

type queryCacheEntry struct {
	src string
	q   *threatraptor.Query
}

// newQueryCache returns a cache with the given capacity, or nil (the
// disabled cache — every lookup misses) for capacity < 1.
func newQueryCache(capacity int) *queryCache {
	if capacity < 1 {
		return nil
	}
	return &queryCache{
		cap:   capacity,
		items: make(map[string]*list.Element),
		order: list.New(),
	}
}

// get returns the cached analyzed query for src, or nil on a miss.
func (c *queryCache) get(src string) *threatraptor.Query {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[src]
	if !ok {
		c.misses.Add(1)
		return nil
	}
	c.order.MoveToFront(el)
	c.hits.Add(1)
	return el.Value.(*queryCacheEntry).q
}

// put stores the analyzed form of src, evicting the least recently
// used entry beyond capacity.
func (c *queryCache) put(src string, q *threatraptor.Query) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[src]; ok {
		c.order.MoveToFront(el)
		el.Value.(*queryCacheEntry).q = q
		return
	}
	c.items[src] = c.order.PushFront(&queryCacheEntry{src: src, q: q})
	if c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*queryCacheEntry).src)
	}
}

// counters returns the lifetime hit/miss counts and current size.
func (c *queryCache) counters() (hits, misses int64, size int) {
	if c == nil {
		return 0, 0, 0
	}
	c.mu.Lock()
	size = c.order.Len()
	c.mu.Unlock()
	return c.hits.Load(), c.misses.Load(), size
}
