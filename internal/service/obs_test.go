package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/audit/gen"
	"repro/internal/obs"
)

// testLogs generates the password-crack workload's audit log text.
func testLogs(t testing.TB, seed int64) string {
	t.Helper()
	w := gen.Generate(gen.Config{
		Seed:         seed,
		BenignEvents: 400,
		Attacks:      []gen.Attack{{Kind: gen.AttackPasswordCrack, At: 10 * time.Minute}},
	})
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// newObsServer builds a daemon with the given config over a fresh
// System wired to the config's metrics bundle.
func newObsServer(t testing.TB, cfg Config) (*httptest.Server, *threatraptor.System) {
	t.Helper()
	cfg = cfg.withDefaults()
	sys, err := threatraptor.New(threatraptor.Options{Metrics: cfg.Metrics})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewWithConfig(sys, cfg))
	t.Cleanup(ts.Close)
	return ts, sys
}

func mustIngest(t testing.TB, ts *httptest.Server, logs string) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/ingest", "text/plain", strings.NewReader(logs))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
}

var (
	metricCommentRE = regexp.MustCompile(`^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+$`)
	metricSampleRE  = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? (-?[0-9.eE+-]+|\+Inf|NaN)$`)
)

// scrapeMetrics fetches /metrics, validates every line against the
// Prometheus text exposition grammar, and returns samples keyed by
// name+labels.
func scrapeMetrics(t testing.TB, ts *httptest.Server) map[string]float64 {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("metrics Content-Type = %q", ct)
	}
	samples := make(map[string]float64)
	for _, line := range strings.Split(strings.TrimRight(string(body), "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			if !metricCommentRE.MatchString(line) {
				t.Fatalf("unparseable comment line %q", line)
			}
			continue
		}
		m := metricSampleRE.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("unparseable sample line %q", line)
		}
		var v float64
		if _, err := fmt.Sscanf(m[3], "%g", &v); err != nil {
			t.Fatalf("bad sample value in %q: %v", line, err)
		}
		samples[m[1]+m[2]] = v
	}
	return samples
}

// TestMetricsExposition asserts GET /metrics renders valid Prometheus
// text covering the hunt, ingest, WAL, standing-hunt, and watch paths —
// histogram families complete with _bucket/_sum/_count — and that the
// counters move with traffic.
func TestMetricsExposition(t *testing.T) {
	ts, _ := newObsServer(t, Config{})
	mustIngest(t, ts, testLogs(t, 41))
	postHunt(t, ts, crackTBQL, 0, 0)

	samples := scrapeMetrics(t, ts)
	// Every histogram family must be complete, including ones nothing
	// observed yet (a memory-only daemon never fsyncs a WAL).
	for _, h := range []string{
		"threatraptor_hunt_first_page_seconds",
		"threatraptor_ingest_commit_seconds",
		"threatraptor_wal_append_seconds",
		"threatraptor_wal_fsync_seconds",
		"threatraptor_standing_advance_seconds",
		"threatraptor_watch_delivery_lag_epochs",
	} {
		for _, suffix := range []string{`_bucket{le="+Inf"}`, "_sum", "_count"} {
			if _, ok := samples[h+suffix]; !ok {
				t.Errorf("missing %s%s", h, suffix)
			}
		}
	}
	if samples[`threatraptor_hunt_first_page_seconds_bucket{le="+Inf"}`] != samples["threatraptor_hunt_first_page_seconds_count"] {
		t.Error("hunt histogram +Inf bucket != count")
	}
	if samples["threatraptor_hunt_first_page_seconds_count"] < 1 {
		t.Error("hunt latency histogram did not observe the hunt")
	}
	if samples["threatraptor_ingest_commit_seconds_count"] < 1 {
		t.Error("ingest commit histogram did not observe the ingest")
	}
	if samples["threatraptor_wal_fsync_seconds_count"] != 0 {
		t.Error("memory-only daemon should have zero WAL fsyncs")
	}
	for name, want := range map[string]float64{
		"threatraptor_hunts_total":           1,
		"threatraptor_ingests_total":         1,
		"threatraptor_hunt_executions_total": 1,
	} {
		if got := samples[name]; got != want {
			t.Errorf("%s = %g, want %g", name, got, want)
		}
	}
	if samples["threatraptor_epoch"] < 1 || samples["threatraptor_events"] == 0 {
		t.Errorf("store gauges: epoch=%g events=%g",
			samples["threatraptor_epoch"], samples["threatraptor_events"])
	}
}

// TestHuntResponseTraceAndRequestID asserts a hunt response carries the
// pipeline span tree, stamped with the same request id the X-Request-Id
// header reported.
func TestHuntResponseTraceAndRequestID(t *testing.T) {
	ts, _ := newObsServer(t, Config{})
	mustIngest(t, ts, testLogs(t, 43))

	reqBody, _ := json.Marshal(HuntRequest{Query: crackTBQL})
	resp, err := http.Post(ts.URL+"/hunt", "application/json", bytes.NewReader(reqBody))
	if err != nil {
		t.Fatal(err)
	}
	rid := resp.Header.Get("X-Request-Id")
	if len(rid) != 16 {
		t.Errorf("X-Request-Id = %q, want 16 hex chars", rid)
	}
	var hr HuntResponse
	decodeJSON(t, resp, &hr)
	if hr.Trace == nil {
		t.Fatal("hunt response has no trace")
	}
	if hr.Trace.RequestID != rid {
		t.Errorf("trace request_id %q != header %q", hr.Trace.RequestID, rid)
	}
	names := make(map[string]bool)
	var walk func(spans []obs.SpanJSON)
	walk = func(spans []obs.SpanJSON) {
		for _, sp := range spans {
			names[sp.Name] = true
			walk(sp.Children)
		}
	}
	walk(hr.Trace.Spans)
	for _, want := range []string{"parse", "fetch", "page"} {
		if !names[want] {
			t.Errorf("trace missing %q span; have %v", want, names)
		}
	}
}

// TestNoTraceOmitsSpans asserts Config.NoTrace drops the span tree from
// hunt and explain responses.
func TestNoTraceOmitsSpans(t *testing.T) {
	ts, _ := newObsServer(t, Config{NoTrace: true})
	mustIngest(t, ts, testLogs(t, 44))
	hr := postHunt(t, ts, crackTBQL, 0, 0)
	if hr.Trace != nil {
		t.Fatalf("NoTrace hunt still carries a trace: %+v", hr.Trace)
	}
	resp, err := http.Post(ts.URL+"/explain", "text/plain", strings.NewReader(crackTBQL))
	if err != nil {
		t.Fatal(err)
	}
	var ex map[string]json.RawMessage
	decodeJSON(t, resp, &ex)
	if _, ok := ex["trace"]; ok {
		t.Error("NoTrace explain still carries a trace")
	}
}

// TestExplainTrace asserts /explain returns a span tree alongside the
// patterns when tracing is on.
func TestExplainTrace(t *testing.T) {
	ts, _ := newObsServer(t, Config{})
	resp, err := http.Post(ts.URL+"/explain", "text/plain", strings.NewReader(crackTBQL))
	if err != nil {
		t.Fatal(err)
	}
	var ex struct {
		Patterns []ExplainedPattern `json:"patterns"`
		Trace    *obs.TraceJSON     `json:"trace"`
	}
	decodeJSON(t, resp, &ex)
	if len(ex.Patterns) == 0 {
		t.Fatal("no patterns")
	}
	if ex.Trace == nil || len(ex.Trace.Spans) == 0 {
		t.Fatalf("explain trace = %+v", ex.Trace)
	}
}

// TestSlowHuntLog asserts a hunt over the threshold emits one
// structured slow-hunt line with the request id, query fingerprint, and
// span breakdown.
func TestSlowHuntLog(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	ts, _ := newObsServer(t, Config{SlowHunt: time.Nanosecond, Logger: logger})
	mustIngest(t, ts, testLogs(t, 45))
	postHunt(t, ts, crackTBQL, 0, 0)

	line := buf.String()
	if !strings.Contains(line, "slow hunt") {
		t.Fatalf("no slow-hunt line logged; log = %q", line)
	}
	for _, field := range []string{"request_id=", "fingerprint=", "dur_ms=", "spans=", "epoch="} {
		if !strings.Contains(line, field) {
			t.Errorf("slow-hunt line missing %s: %q", field, line)
		}
	}

	// Negative threshold disables the log entirely.
	var quiet bytes.Buffer
	ts2, _ := newObsServer(t, Config{SlowHunt: -1, Logger: slog.New(slog.NewTextHandler(&quiet, nil))})
	mustIngest(t, ts2, testLogs(t, 45))
	postHunt(t, ts2, crackTBQL, 0, 0)
	if quiet.Len() != 0 {
		t.Errorf("SlowHunt<0 still logged: %q", quiet.String())
	}
}

// TestDebugHunts asserts GET /debug/hunts lists open cursors and active
// watches with truncated ids.
func TestDebugHunts(t *testing.T) {
	ts, _ := newObsServer(t, Config{})
	mustIngest(t, ts, testLogs(t, 46))

	// A page-1 hunt over a wide query registers a cursor; a watch
	// registration stays active.
	hr := postHunt(t, ts, wideQuery, 1, 0)
	if hr.CursorID == "" {
		t.Fatal("hunt registered no cursor")
	}
	resp, err := http.Post(ts.URL+"/watch", "text/plain", strings.NewReader(crackTBQL))
	if err != nil {
		t.Fatal(err)
	}
	var wr WatchResponse
	decodeJSON(t, resp, &wr)

	resp, err = http.Get(ts.URL + "/debug/hunts")
	if err != nil {
		t.Fatal(err)
	}
	var dbg DebugHuntsResponse
	decodeJSON(t, resp, &dbg)
	if len(dbg.Cursors) != 1 {
		t.Fatalf("debug cursors = %+v", dbg.Cursors)
	}
	if dbg.Cursors[0].ID != hr.CursorID[:8] {
		t.Errorf("debug cursor id %q, want the 8-char prefix of %q", dbg.Cursors[0].ID, hr.CursorID)
	}
	if dbg.Cursors[0].Offset != 1 || dbg.Cursors[0].Epoch == 0 {
		t.Errorf("debug cursor = %+v", dbg.Cursors[0])
	}
	if len(dbg.Watches) != 1 || dbg.Watches[0].ID != wr.WatchID[:8] {
		t.Fatalf("debug watches = %+v (watch id %q)", dbg.Watches, wr.WatchID)
	}
	if len(dbg.InFlight) != 0 {
		t.Errorf("no execution should be in flight, got %+v", dbg.InFlight)
	}
}

// TestWatchFullCarriesRetryAfter asserts the max-watches 429 hints a
// retry delay, like /ingest's shed path does.
func TestWatchFullCarriesRetryAfter(t *testing.T) {
	ts, _ := newObsServer(t, Config{MaxWatches: 1})
	mustIngest(t, ts, testLogs(t, 47))
	resp, err := http.Post(ts.URL+"/watch", "text/plain", strings.NewReader(crackTBQL))
	if err != nil {
		t.Fatal(err)
	}
	var wr WatchResponse
	decodeJSON(t, resp, &wr)

	resp, err = http.Post(ts.URL+"/watch", "text/plain", strings.NewReader(crackTBQL))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second watch status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("watch 429 has no Retry-After header")
	}
}

// TestStatsAndMetricsUnderChurn hammers the daemon with concurrent
// ingest, hunt, and watch traffic while reading /stats and /metrics,
// asserting the lifetime counters never regress. Run under -race this
// also proves the whole observability surface is race-clean.
func TestStatsAndMetricsUnderChurn(t *testing.T) {
	ts, _ := newObsServer(t, Config{})
	logs := testLogs(t, 48)
	mustIngest(t, ts, logs)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	worker := func(fn func()) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					fn()
				}
			}
		}()
	}
	worker(func() { // ingest churn
		resp, err := http.Post(ts.URL+"/ingest", "text/plain", strings.NewReader(logs))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	})
	worker(func() { // hunt churn
		reqBody, _ := json.Marshal(HuntRequest{Query: crackTBQL, Limit: 5})
		resp, err := http.Post(ts.URL+"/hunt", "application/json", bytes.NewReader(reqBody))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	})
	worker(func() { // watch churn: register, then delete
		resp, err := http.Post(ts.URL+"/watch", "text/plain", strings.NewReader(crackTBQL))
		if err != nil {
			return
		}
		var wr WatchResponse
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || json.Unmarshal(body, &wr) != nil {
			return
		}
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/watch?watch="+wr.WatchID, nil)
		if resp, err := http.DefaultClient.Do(req); err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	})

	monotonic := []string{
		"threatraptor_hunts_total", "threatraptor_ingests_total",
		"threatraptor_hunt_executions_total", "threatraptor_watches_opened_total",
		"threatraptor_wal_records_total", "threatraptor_epoch",
	}
	prev := make(map[string]float64)
	deadline := time.Now().Add(1500 * time.Millisecond)
	for time.Now().Before(deadline) {
		var st StatsResponse
		resp, err := http.Get(ts.URL + "/stats")
		if err != nil {
			t.Fatal(err)
		}
		decodeJSON(t, resp, &st)
		if st.Hunts < 0 || st.OpenCursors < 0 || st.WatchesActive < 0 {
			t.Fatalf("negative stats: %+v", st)
		}
		samples := scrapeMetrics(t, ts)
		for _, name := range monotonic {
			if samples[name] < prev[name] {
				t.Fatalf("%s regressed: %g -> %g", name, prev[name], samples[name])
			}
			prev[name] = samples[name]
		}
		// /metrics was scraped after /stats, so its hunt counter may only
		// be at or ahead of the /stats reading.
		if int64(samples["threatraptor_hunts_total"]) < st.Hunts {
			t.Fatalf("metrics hunts %g behind stats %d", samples["threatraptor_hunts_total"], st.Hunts)
		}
	}
	close(stop)
	wg.Wait()
}
