package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/internal/audit/gen"
)

// newBoundedServer builds a daemon with a small MaxPage so the clamp is
// exercised without megabyte requests, over an already-ingested
// password-crack workload.
func newBoundedServer(t *testing.T, maxPage int) (*httptest.Server, *threatraptor.System) {
	t.Helper()
	sys, err := threatraptor.New(threatraptor.Options{})
	if err != nil {
		t.Fatal(err)
	}
	w := gen.Generate(gen.Config{
		Seed:         47,
		BenignEvents: 800,
		Attacks:      []gen.Attack{{Kind: gen.AttackPasswordCrack, At: 10 * time.Minute}},
	})
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.IngestLogs(strings.NewReader(buf.String())); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewWithConfig(sys, Config{MaxPage: maxPage}))
	t.Cleanup(ts.Close)
	return ts, sys
}

// wantStatus reads a response expecting the given non-200 status and
// returns the error message.
func wantStatus(t *testing.T, resp *http.Response, status int) string {
	t.Helper()
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != status {
		t.Fatalf("status = %d, want %d: %s", resp.StatusCode, status, body)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
		t.Fatalf("error body %q: %v", body, err)
	}
	return e.Error
}

// TestHuntMaxPage asserts the page-size clamp: a limit over MaxPage gets
// a friendly 400 naming the bound on both POST /hunt and GET /hunt/next,
// a limit at the bound succeeds, and the zero-limit default is itself
// clamped to MaxPage.
func TestHuntMaxPage(t *testing.T) {
	ts, _ := newBoundedServer(t, 10)

	reqBody, _ := json.Marshal(HuntRequest{Query: allReadsTBQL, Limit: 11})
	resp, err := http.Post(ts.URL+"/hunt", "application/json", bytes.NewReader(reqBody))
	if err != nil {
		t.Fatal(err)
	}
	msg := wantStatus(t, resp, http.StatusBadRequest)
	if !strings.Contains(msg, "maximum page size 10") {
		t.Errorf("over-limit error does not name the bound: %q", msg)
	}

	// The limit can also arrive as a URL parameter on a raw-TBQL body.
	resp, err = http.Post(ts.URL+"/hunt?limit=4000000000", "text/plain", strings.NewReader(allReadsTBQL))
	if err != nil {
		t.Fatal(err)
	}
	wantStatus(t, resp, http.StatusBadRequest)

	// At the bound: accepted, and the page is exactly MaxPage rows.
	hr := postHunt(t, ts, allReadsTBQL, 10, 0)
	if hr.Count != 10 {
		t.Errorf("limit=MaxPage page has %d rows", hr.Count)
	}

	// Zero limit defaults to min(DefaultHuntLimit, MaxPage) = 10.
	hr = postHunt(t, ts, allReadsTBQL, 0, 0)
	if hr.Count != 10 {
		t.Errorf("default page has %d rows, want the 10-row clamp", hr.Count)
	}

	// The cursor-paging endpoint enforces the same bound.
	if hr.CursorID == "" {
		t.Fatal("no cursor to page")
	}
	resp, err = http.Get(ts.URL + "/hunt/next?cursor=" + hr.CursorID + "&limit=11")
	if err != nil {
		t.Fatal(err)
	}
	msg = wantStatus(t, resp, http.StatusBadRequest)
	if !strings.Contains(msg, "maximum page size 10") {
		t.Errorf("hunt/next over-limit error: %q", msg)
	}
	resp, err = http.Get(ts.URL + "/hunt/next?cursor=" + hr.CursorID + "&limit=10")
	if err != nil {
		t.Fatal(err)
	}
	var next HuntResponse
	decodeJSON(t, resp, &next)
	if next.Count != 10 || next.Offset != 10 {
		t.Errorf("hunt/next page = count %d offset %d", next.Count, next.Offset)
	}
}

const allReadsTBQL = `proc p read file f as e1
return p, f`

// TestNoCursorFetchCap asserts the capped stateless path: a no_cursor
// hunt reports fetch_capped, registers no server-side cursor, and its
// next_offset pages reassemble exactly the rows of an uncapped hunt.
func TestNoCursorFetchCap(t *testing.T) {
	ts, sys := newBoundedServer(t, 1000)

	full, err := sys.Hunt(allReadsTBQL)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Rows) < 30 {
		t.Fatalf("workload too small: %d rows", len(full.Rows))
	}

	var got [][]string
	offset, pages := 0, 0
	for {
		reqBody, _ := json.Marshal(HuntRequest{Query: allReadsTBQL, Limit: 7, Offset: offset, NoCursor: true})
		resp, err := http.Post(ts.URL+"/hunt", "application/json", bytes.NewReader(reqBody))
		if err != nil {
			t.Fatal(err)
		}
		var hr HuntResponse
		decodeJSON(t, resp, &hr)
		if hr.CursorID != "" {
			t.Fatalf("no_cursor hunt registered cursor %q", hr.CursorID)
		}
		if !hr.Stats.FetchCapped {
			t.Fatalf("no_cursor hunt not fetch-capped: %+v", hr.Stats)
		}
		got = append(got, hr.Rows...)
		pages++
		if hr.NextOffset == nil {
			break
		}
		offset = *hr.NextOffset
	}
	if pages < 3 {
		t.Errorf("paged in %d requests, want several", pages)
	}
	if len(got) != len(full.Rows) {
		t.Fatalf("capped pages reassemble %d rows, uncapped hunt has %d", len(got), len(full.Rows))
	}
	for i := range full.Rows {
		if strings.Join(got[i], "\x00") != strings.Join(full.Rows[i], "\x00") {
			t.Errorf("row %d: capped %v != uncapped %v", i, got[i], full.Rows[i])
		}
	}

	// The capped pages register nothing server-side.
	var st StatsResponse
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	decodeJSON(t, resp, &st)
	if st.OpenCursors != 0 {
		t.Errorf("open_cursors = %d after stateless paging", st.OpenCursors)
	}
}
