package service

import (
	"container/list"
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/snapshot"
)

// errCursorEvicted is the cancellation cause recorded when eviction (or
// an explicit close) aborts a page read in flight on the cursor: the
// page handler observes it via context.Cause and answers 410.
var errCursorEvicted = errors.New("cursor evicted")

// cursorEntry is one registered server-side cursor: a live exec cursor
// pinned at its creation epoch, plus the paging bookkeeping the HTTP
// layer needs between requests.
type cursorEntry struct {
	id      string
	epoch   snapshot.Epoch
	created time.Time

	// mu serializes page reads (an exec cursor is not safe for
	// concurrent use) and the close. closed marks the entry dead for a
	// reader that acquired it just before expiry or eviction closed it.
	mu     sync.Mutex
	cur    *threatraptor.Cursor
	closed bool
	// pending queues rows already pulled from the cursor but not yet
	// served: the look-ahead row each page consumes to learn more rows
	// remain, plus — after a page whose deadline fired or whose client
	// disconnected — the partial page stashed for the retry, so an
	// interrupted page loses no rows.
	pending [][]string
	// offset is the index of the next row to serve.
	offset int

	// pageCancel, when set, aborts the page read currently inside mu.
	// It is guarded by its own cancelMu — NOT mu — because eviction
	// must reach it precisely when a page holds mu: closeAll fires it
	// first so the in-flight join suspends and releases mu promptly.
	cancelMu   sync.Mutex
	pageCancel context.CancelCauseFunc

	// elem is the entry's node in the manager's LRU list; it and
	// lastUsed are guarded by the manager's lock.
	elem     *list.Element
	lastUsed time.Time
}

// setPageCancel installs (or, with nil, clears) the cancel hook for the
// page read about to run under e.mu.
func (e *cursorEntry) setPageCancel(f context.CancelCauseFunc) {
	e.cancelMu.Lock()
	e.pageCancel = f
	e.cancelMu.Unlock()
}

// cancelPage fires the in-flight page's cancel hook, if any, recording
// cause for the page handler to classify.
func (e *cursorEntry) cancelPage(cause error) {
	e.cancelMu.Lock()
	f := e.pageCancel
	e.cancelMu.Unlock()
	if f != nil {
		f(cause)
	}
}

// cursorManager is the server-side cursor registry behind POST /hunt,
// GET /hunt/next, and DELETE /hunt/cursor: one query execution serves
// arbitrarily deep pagination over the cursor's pinned epoch. Lifetime
// is bounded two ways — a TTL on idle cursors and an LRU cap on the
// registry size — and a cursor's epoch stays pinned in the snapshot
// registry exactly as long as the cursor is live, so dropping the last
// cursor on an epoch garbage-collects the epoch's registry entry.
// Expired cursors are swept opportunistically (on registration and on
// stats reads) and lazily on access; because snapshots are append
// watermarks, an idle cursor awaiting sweep holds memory only, never
// writer throughput.
type cursorManager struct {
	ttl time.Duration
	max int
	reg *snapshot.Registry
	now func() time.Time // injectable for TTL tests

	mu      sync.Mutex
	entries map[string]*cursorEntry
	lru     *list.List // front = most recently used

	pages   atomic.Int64
	expired atomic.Int64
	evicted atomic.Int64
}

func newCursorManager(ttl time.Duration, max int) *cursorManager {
	return &cursorManager{
		ttl:     ttl,
		max:     max,
		reg:     snapshot.NewRegistry(),
		now:     time.Now,
		entries: make(map[string]*cursorEntry),
		lru:     list.New(),
	}
}

// newCursorID returns a 128-bit random hex id.
func newCursorID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing means the process is in far deeper trouble
		// than cursor naming; fall back to a time-derived id.
		return hex.EncodeToString([]byte(time.Now().String()))[:32]
	}
	return hex.EncodeToString(b[:])
}

// put registers a cursor that has more rows pending and returns its id.
// pending is the look-ahead row the first page consumed; offset indexes
// it. The new cursor's epoch is pinned, expired entries are swept, and
// the least-recently-used entries beyond the cap are evicted.
func (m *cursorManager) put(cur *threatraptor.Cursor, pending []string, offset int) string {
	e := &cursorEntry{
		id:      newCursorID(),
		epoch:   cur.Epoch(),
		created: m.now(),
		cur:     cur,
		pending: [][]string{pending},
		offset:  offset,
	}
	m.reg.Pin(e.epoch)

	var victims []*cursorEntry
	m.mu.Lock()
	e.lastUsed = e.created
	e.elem = m.lru.PushFront(e)
	m.entries[e.id] = e
	victims = m.sweepLocked(victims)
	for len(m.entries) > m.max {
		back := m.lru.Back()
		if back == nil {
			break
		}
		v := back.Value.(*cursorEntry)
		m.detachLocked(v)
		m.evicted.Add(1)
		victims = append(victims, v)
	}
	m.mu.Unlock()

	m.closeAll(victims)
	return e.id
}

// acquire returns the live entry for id, touching its recency, or nil
// when the id is unknown, expired, or already closed. An expired entry
// is closed on the spot.
func (m *cursorManager) acquire(id string) *cursorEntry {
	m.mu.Lock()
	e := m.entries[id]
	if e == nil {
		m.mu.Unlock()
		return nil
	}
	if m.ttl > 0 && m.now().Sub(e.lastUsed) > m.ttl {
		m.detachLocked(e)
		m.expired.Add(1)
		m.mu.Unlock()
		m.closeAll([]*cursorEntry{e})
		return nil
	}
	e.lastUsed = m.now()
	m.lru.MoveToFront(e.elem)
	m.mu.Unlock()
	return e
}

// remove closes and forgets the entry (DELETE /hunt/cursor, or a page
// read that exhausted the cursor). It reports whether the id was live.
func (m *cursorManager) remove(id string) bool {
	m.mu.Lock()
	e := m.entries[id]
	if e == nil {
		m.mu.Unlock()
		return false
	}
	m.detachLocked(e)
	m.mu.Unlock()
	m.closeAll([]*cursorEntry{e})
	return true
}

// sweep closes every expired entry. Returns how many were swept.
func (m *cursorManager) sweep() int {
	var victims []*cursorEntry
	m.mu.Lock()
	victims = m.sweepLocked(victims)
	m.mu.Unlock()
	m.closeAll(victims)
	return len(victims)
}

// sweepLocked detaches expired entries, appending them to victims for
// the caller to close outside the manager lock.
func (m *cursorManager) sweepLocked(victims []*cursorEntry) []*cursorEntry {
	if m.ttl <= 0 {
		return victims
	}
	cutoff := m.now().Add(-m.ttl)
	for el := m.lru.Back(); el != nil; {
		e := el.Value.(*cursorEntry)
		if e.lastUsed.After(cutoff) {
			// The LRU list is recency-ordered: everything further forward
			// is fresher.
			break
		}
		el = el.Prev()
		m.detachLocked(e)
		m.expired.Add(1)
		victims = append(victims, e)
	}
	return victims
}

// detachLocked removes the entry from the map and LRU list; the caller
// holds m.mu and must closeAll the entry afterwards.
func (m *cursorManager) detachLocked(e *cursorEntry) {
	delete(m.entries, e.id)
	m.lru.Remove(e.elem)
}

// closeAll closes detached entries: the exec cursor is closed and the
// entry's epoch unpinned, garbage-collecting the epoch once no other
// cursor references it. Runs without the manager lock so a close never
// stalls registrations; the entry lock fences concurrent page readers,
// who observe closed and report the cursor gone. A page read in flight
// on a victim is cancelled BEFORE its entry lock is taken — otherwise
// eviction would block behind however much join work the page had left.
func (m *cursorManager) closeAll(victims []*cursorEntry) {
	for _, e := range victims {
		e.cancelPage(errCursorEvicted)
		e.mu.Lock()
		if !e.closed {
			e.closed = true
			e.cur.Close()
			m.reg.Unpin(e.epoch)
		}
		e.mu.Unlock()
	}
}

// open returns how many cursors are currently registered.
func (m *cursorManager) open() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.entries)
}
