package service

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
)

// This file is the daemon's observability surface: per-request ids on
// every response, a Prometheus /metrics exposition backed by the
// counters the server already keeps, a slow-hunt structured log, and
// GET /debug/hunts for live introspection of in-flight executions,
// open cursors, and standing hunts. The registry holds closures over
// the existing atomics — a scrape reads live values, no metric is
// double-counted.

// DefaultSlowHunt is the latency threshold above which a hunt emits a
// structured slow-hunt log line (Config.SlowHunt overrides; negative
// disables).
const DefaultSlowHunt = time.Second

// requestIDKey carries the per-request id through the request context
// so handlers can stamp it into trace spans and log lines.
type ctxKey int

const requestIDKey ctxKey = 0

// newRequestID returns a 64-bit random hex request id — short enough
// to read in a log line, long enough that concurrent requests never
// collide in practice.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// requestID extracts the id ServeHTTP attached, or "" outside a
// request (direct handler tests).
func requestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// inflightEntry is one execution currently running, registered for
// GET /debug/hunts and targetable by the DELETE /debug/hunts/<id> kill
// switch via its cancel hook.
type inflightEntry struct {
	kind   string // "hunt", "hunt/next", "explain"
	reqID  string
	query  string
	start  time.Time
	cancel context.CancelCauseFunc // nil when the execution is not cancellable
}

// trackInflight registers an execution and returns its deregistration.
// cancel, when non-nil, lets the kill switch abort the execution. The
// query is truncated so /debug/hunts stays readable and a giant TBQL
// body is not pinned for the hunt's lifetime.
func (s *Server) trackInflight(kind, reqID, query string, cancel context.CancelCauseFunc) func() {
	const maxQuery = 200
	if len(query) > maxQuery {
		query = query[:maxQuery] + "..."
	}
	e := &inflightEntry{kind: kind, reqID: reqID, query: query, start: time.Now(), cancel: cancel}
	s.inflightMu.Lock()
	s.inflightSeq++
	seq := s.inflightSeq
	s.inflight[seq] = e
	s.inflightMu.Unlock()
	return func() {
		s.inflightMu.Lock()
		delete(s.inflight, seq)
		s.inflightMu.Unlock()
	}
}

// DebugHunt is one in-flight execution in the /debug/hunts response.
type DebugHunt struct {
	Kind        string  `json:"kind"`
	RequestID   string  `json:"request_id"`
	Fingerprint string  `json:"fingerprint"`
	Query       string  `json:"query"`
	AgeSeconds  float64 `json:"age_seconds"`
}

// DebugCursor is one open server-side cursor in the /debug/hunts
// response. ID is a prefix of the cursor id: the full id is the
// paging capability, and the debug endpoint must not leak it.
type DebugCursor struct {
	ID          string  `json:"id"`
	Epoch       uint64  `json:"epoch"`
	Offset      int     `json:"offset"`
	AgeSeconds  float64 `json:"age_seconds"`
	IdleSeconds float64 `json:"idle_seconds"`
}

// DebugWatch is one registered standing hunt in the /debug/hunts
// response (ID truncated like DebugCursor's).
type DebugWatch struct {
	ID          string  `json:"id"`
	Attached    bool    `json:"attached"`
	AgeSeconds  float64 `json:"age_seconds"`
	IdleSeconds float64 `json:"idle_seconds"`
}

// DebugHuntsResponse is the JSON body returned by GET /debug/hunts.
type DebugHuntsResponse struct {
	InFlight []DebugHunt   `json:"in_flight"`
	Cursors  []DebugCursor `json:"cursors"`
	Watches  []DebugWatch  `json:"watches"`
}

// idPrefix truncates a capability id for display.
func idPrefix(id string) string {
	if len(id) > 8 {
		return id[:8]
	}
	return id
}

// debugSnapshot lists the open cursors. Recency fields are read under
// the manager lock; offset under each entry's own lock (the manager
// lock is never taken while an entry lock is held elsewhere, so the
// m.mu → e.mu order here cannot deadlock).
func (m *cursorManager) debugSnapshot(now time.Time) []DebugCursor {
	m.mu.Lock()
	type snap struct {
		e        *cursorEntry
		lastUsed time.Time
	}
	snaps := make([]snap, 0, len(m.entries))
	for _, e := range m.entries {
		snaps = append(snaps, snap{e: e, lastUsed: e.lastUsed})
	}
	m.mu.Unlock()
	out := make([]DebugCursor, 0, len(snaps))
	for _, sn := range snaps {
		sn.e.mu.Lock()
		offset, closed := sn.e.offset, sn.e.closed
		sn.e.mu.Unlock()
		if closed {
			continue
		}
		out = append(out, DebugCursor{
			ID:          idPrefix(sn.e.id),
			Epoch:       uint64(sn.e.epoch),
			Offset:      offset,
			AgeSeconds:  now.Sub(sn.e.created).Seconds(),
			IdleSeconds: now.Sub(sn.lastUsed).Seconds(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].AgeSeconds > out[j].AgeSeconds })
	return out
}

// debugSnapshot lists the registered watches.
func (m *watchManager) debugSnapshot(now time.Time) []DebugWatch {
	m.mu.Lock()
	out := make([]DebugWatch, 0, len(m.entries))
	for _, e := range m.entries {
		out = append(out, DebugWatch{
			ID:          idPrefix(e.id),
			Attached:    e.attached,
			AgeSeconds:  now.Sub(e.created).Seconds(),
			IdleSeconds: now.Sub(e.lastUsed).Seconds(),
		})
	}
	m.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].AgeSeconds > out[j].AgeSeconds })
	return out
}

// handleDebugHunts reports live execution state: GET /debug/hunts.
// Oldest first in every section, so a stuck hunt or leaked cursor is
// the first line an operator reads.
func (s *Server) handleDebugHunts(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "debug/hunts wants GET, got %s", r.Method)
		return
	}
	now := time.Now()
	s.inflightMu.Lock()
	hunts := make([]DebugHunt, 0, len(s.inflight))
	for _, e := range s.inflight {
		hunts = append(hunts, DebugHunt{
			Kind:        e.kind,
			RequestID:   e.reqID,
			Fingerprint: obs.Fingerprint(e.query),
			Query:       e.query,
			AgeSeconds:  now.Sub(e.start).Seconds(),
		})
	}
	s.inflightMu.Unlock()
	sort.Slice(hunts, func(i, j int) bool { return hunts[i].AgeSeconds > hunts[j].AgeSeconds })
	writeJSON(w, http.StatusOK, DebugHuntsResponse{
		InFlight: hunts,
		Cursors:  s.cursors.debugSnapshot(now),
		Watches:  s.watches.debugSnapshot(now),
	})
}

// handleDebugHuntKill is the operator kill switch:
// DELETE /debug/hunts/<request-id> cancels every in-flight execution
// registered under that request id. The victim answers its own client
// with 503 and errHuntKilled as the cause; the killer gets the count of
// executions signalled, or 404 when the id matches nothing in flight.
func (s *Server) handleDebugHuntKill(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodDelete {
		writeError(w, http.StatusMethodNotAllowed, "debug/hunts/<id> wants DELETE, got %s", r.Method)
		return
	}
	rid := strings.TrimPrefix(r.URL.Path, "/debug/hunts/")
	if rid == "" {
		writeError(w, http.StatusBadRequest, "missing request id: DELETE /debug/hunts/<request-id>")
		return
	}
	var cancels []context.CancelCauseFunc
	s.inflightMu.Lock()
	for _, e := range s.inflight {
		if e.reqID == rid && e.cancel != nil {
			cancels = append(cancels, e.cancel)
		}
	}
	s.inflightMu.Unlock()
	if len(cancels) == 0 {
		writeError(w, http.StatusNotFound, "no in-flight hunt with request id %q", rid)
		return
	}
	for _, cancel := range cancels {
		cancel(errHuntKilled)
	}
	writeJSON(w, http.StatusOK, map[string]any{"killed": rid, "executions": len(cancels)})
}

// handleMetrics renders the registry in Prometheus text exposition
// format: GET /metrics.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "metrics wants GET, got %s", r.Method)
		return
	}
	// Sweeping here keeps the occupancy gauges honest: an abandoned
	// cursor past its TTL should read as gone, exactly as /stats reports.
	s.cursors.sweep()
	s.watches.sweep()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.registry.WriteTo(w)
}

// buildRegistry wires the exposition registry: the latency histograms
// from the Metrics bundle, plus counter/gauge closures over the atomics
// the server and System already maintain for /stats.
func (s *Server) buildRegistry() *obs.Registry {
	r := obs.NewRegistry()
	s.metrics.Register(r)

	counter := r.CounterFunc
	gauge := r.GaugeFunc

	counter("threatraptor_hunts_total", "POST /hunt requests served.",
		func() float64 { return float64(s.hunts.Load()) })
	counter("threatraptor_ingests_total", "POST /ingest batches committed.",
		func() float64 { return float64(s.ingests.Load()) })
	counter("threatraptor_hunt_executions_total", "Query executions (one per POST /hunt; cursor pages never re-execute).",
		func() float64 { return float64(s.executions.Load()) })
	counter("threatraptor_cursor_pages_total", "Pages served from registered cursors via GET /hunt/next.",
		func() float64 { return float64(s.cursors.pages.Load()) })
	counter("threatraptor_cursors_expired_total", "Server-side cursors expired by the idle TTL.",
		func() float64 { return float64(s.cursors.expired.Load()) })
	counter("threatraptor_cursors_evicted_total", "Server-side cursors evicted by the LRU cap.",
		func() float64 { return float64(s.cursors.evicted.Load()) })
	counter("threatraptor_watches_opened_total", "Standing hunts registered over the server's lifetime.",
		func() float64 { o, _, _, _ := s.sys.WatchTotals(); return float64(o) })
	counter("threatraptor_watch_batches_total", "Match batches delivered to standing-hunt subscribers.",
		func() float64 { _, b, _, _ := s.sys.WatchTotals(); return float64(b) })
	counter("threatraptor_watch_rows_total", "Match rows delivered to standing-hunt subscribers.",
		func() float64 { _, _, rows, _ := s.sys.WatchTotals(); return float64(rows) })
	counter("threatraptor_watch_evictions_total", "Standing hunts evicted for slow subscribers.",
		func() float64 { _, _, _, e := s.sys.WatchTotals(); return float64(e) })
	counter("threatraptor_watches_expired_total", "Standing hunts expired with no consumer attached.",
		func() float64 { return float64(s.watches.expired.Load()) })
	counter("threatraptor_watch_webhook_retries_total", "Webhook delivery retries.",
		func() float64 { return float64(s.watches.webhookRetries.Load()) })
	counter("threatraptor_watch_webhook_failures_total", "Webhook watches closed after exhausting delivery retries.",
		func() float64 { return float64(s.watches.webhookFailures.Load()) })
	counter("threatraptor_propagations_skipped_total", "Propagation constraints dropped for exceeding the engine cap.",
		func() float64 { return float64(s.propSkipped.Load()) })
	counter("threatraptor_optimizer_reorders_total", "Hunts the cost optimizer scheduled differently from the static order.",
		func() float64 { return float64(s.optReorders.Load()) })
	counter("threatraptor_hunts_timed_out_total", "Hunts aborted by the -hunt-timeout deadline (504).",
		func() float64 { return float64(s.huntsTimedOut.Load()) })
	counter("threatraptor_hunts_cancelled_total", "Hunts aborted because the client disconnected mid-execution.",
		func() float64 { return float64(s.huntsCancelled.Load()) })
	counter("threatraptor_hunts_killed_total", "Hunts aborted by the DELETE /debug/hunts/<id> kill switch (503).",
		func() float64 { return float64(s.huntsKilled.Load()) })
	counter("threatraptor_hunts_budget_exceeded_total", "Hunts aborted by the -max-join-rows budget (422).",
		func() float64 { return float64(s.huntsBudget.Load()) })
	counter("threatraptor_hunts_shed_total", "Hunt requests shed at the -max-hunts admission gate (429).",
		func() float64 { return float64(s.huntsShed.Load()) })
	counter("threatraptor_plan_cache_hits_total", "Prepared-plan cache hits.",
		func() float64 { h, _, _ := s.sys.PlanCacheStats(); return float64(h) })
	counter("threatraptor_plan_cache_misses_total", "Prepared-plan cache misses.",
		func() float64 { _, m, _ := s.sys.PlanCacheStats(); return float64(m) })
	counter("threatraptor_query_cache_hits_total", "TBQL text cache hits in front of POST /hunt.",
		func() float64 { h, _, _ := s.queries.counters(); return float64(h) })
	counter("threatraptor_query_cache_misses_total", "TBQL text cache misses in front of POST /hunt.",
		func() float64 { _, m, _ := s.queries.counters(); return float64(m) })
	counter("threatraptor_wal_records_total", "Commit records appended to the durability log.",
		func() float64 { return float64(s.sys.WALStats().Records) })
	counter("threatraptor_wal_syncs_total", "Group-committed WAL fsyncs.",
		func() float64 { return float64(s.sys.WALStats().Syncs) })
	counter("threatraptor_segment_flushes_total", "Segment snapshot flushes.",
		func() float64 { return float64(s.sys.WALStats().SegmentFlushes) })
	counter("threatraptor_compactions_total", "WAL compactions after segment flushes.",
		func() float64 { return float64(s.sys.WALStats().Compactions) })

	gauge("threatraptor_epoch", "Current ingest epoch (one per commit).",
		func() float64 { return float64(s.sys.Epoch()) })
	gauge("threatraptor_events", "Event rows currently stored.",
		func() float64 { return float64(s.sys.NumEvents()) })
	gauge("threatraptor_entities", "Entities currently stored.",
		func() float64 { return float64(s.sys.NumEntities()) })
	gauge("threatraptor_open_cursors", "Server-side cursors currently registered.",
		func() float64 { return float64(s.cursors.open()) })
	gauge("threatraptor_epochs_pinned", "Distinct epochs held live by open cursors.",
		func() float64 { return float64(s.cursors.reg.Pinned()) })
	gauge("threatraptor_watches_active", "Standing hunts currently registered.",
		func() float64 { return float64(s.watches.open()) })
	gauge("threatraptor_plan_cache_size", "Plan templates currently cached.",
		func() float64 { _, _, n := s.sys.PlanCacheStats(); return float64(n) })
	gauge("threatraptor_query_cache_size", "Analyzed TBQL queries currently cached.",
		func() float64 { _, _, n := s.queries.counters(); return float64(n) })
	gauge("threatraptor_segment_sets", "Complete segment sets currently on disk.",
		func() float64 { return float64(s.sys.WALStats().SegmentSets) })
	gauge("threatraptor_degraded", "1 when the durability log is degraded and ingestion refused, else 0.",
		func() float64 {
			if s.sys.WALStats().DegradedReason != "" {
				return 1
			}
			return 0
		})
	gauge("threatraptor_uptime_seconds", "Seconds since the server started.",
		func() float64 { return time.Since(s.started).Seconds() })
	return r
}

// mountPprof exposes net/http/pprof under /debug/pprof/ when the
// daemon opts in (-pprof). Off by default: the profile endpoints can
// reveal heap contents and cost real CPU.
func (s *Server) mountPprof() {
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
