package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/audit/gen"
)

const crackTBQL = `proc p["%cracker%"] read file f["%/etc/shadow%"] as e1
return distinct p, f`

// newTestServer builds a daemon over an empty system plus the log text
// of a password-crack workload ready to ingest.
func newTestServer(t testing.TB) (*httptest.Server, *threatraptor.System, string) {
	t.Helper()
	sys, err := threatraptor.New(threatraptor.Options{})
	if err != nil {
		t.Fatal(err)
	}
	w := gen.Generate(gen.Config{
		Seed:         31,
		BenignEvents: 1200,
		Attacks:      []gen.Attack{{Kind: gen.AttackPasswordCrack, At: 10 * time.Minute}},
	})
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(sys))
	t.Cleanup(ts.Close)
	return ts, sys, buf.String()
}

func decodeJSON(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	if err := json.Unmarshal(body, v); err != nil {
		t.Fatalf("bad JSON %q: %v", body, err)
	}
}

func postHunt(t *testing.T, ts *httptest.Server, query string, limit, offset int) HuntResponse {
	t.Helper()
	reqBody, _ := json.Marshal(HuntRequest{Query: query, Limit: limit, Offset: offset})
	resp, err := http.Post(ts.URL+"/hunt", "application/json", bytes.NewReader(reqBody))
	if err != nil {
		t.Fatal(err)
	}
	var hr HuntResponse
	decodeJSON(t, resp, &hr)
	return hr
}

// TestDaemonRoundTrip drives ingest -> hunt -> explain -> stats end to
// end and asserts the acceptance criterion: the daemon's /hunt rows
// equal Result.Rows and the HuntCursor rows for the same query.
func TestDaemonRoundTrip(t *testing.T) {
	ts, sys, logs := newTestServer(t)

	// Ingest the audit log stream.
	resp, err := http.Post(ts.URL+"/ingest", "text/plain", strings.NewReader(logs))
	if err != nil {
		t.Fatal(err)
	}
	var ing IngestResponse
	decodeJSON(t, resp, &ing)
	if ing.EventsStored == 0 || ing.Entities == 0 || ing.ParseErrors != 0 {
		t.Fatalf("ingest response = %+v", ing)
	}
	if sys.NumEvents() != ing.EventsStored {
		t.Errorf("system has %d events, ingest reported %d", sys.NumEvents(), ing.EventsStored)
	}

	// Hunt over HTTP and compare with the in-process result and cursor.
	hr := postHunt(t, ts, crackTBQL, 0, 0)
	if len(hr.Columns) != 2 || hr.Count != len(hr.Rows) || hr.NextOffset != nil {
		t.Fatalf("hunt response shape: %+v", hr)
	}
	if len(hr.Rows) == 0 || !strings.Contains(hr.Rows[0][0], "cracker") {
		t.Fatalf("hunt rows = %v", hr.Rows)
	}
	if hr.Stats.RowsFetched == 0 {
		t.Errorf("hunt stats = %+v", hr.Stats)
	}
	res, err := sys.Hunt(crackTBQL)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(hr.Rows) {
		t.Fatalf("daemon returned %d rows, Result.Rows has %d", len(hr.Rows), len(res.Rows))
	}
	for i := range res.Rows {
		if strings.Join(res.Rows[i], "\x00") != strings.Join(hr.Rows[i], "\x00") {
			t.Errorf("row %d: daemon %v != Result %v", i, hr.Rows[i], res.Rows[i])
		}
	}
	cur, err := sys.HuntCursor(crackTBQL)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	for i := 0; cur.Next(); i++ {
		if strings.Join(cur.Row(), "\x00") != strings.Join(hr.Rows[i], "\x00") {
			t.Errorf("row %d: cursor %v != daemon %v", i, cur.Row(), hr.Rows[i])
		}
	}

	// Explain via GET with the query URL-encoded.
	var exp struct {
		Patterns []ExplainedPattern `json:"patterns"`
	}
	resp, err = http.Get(ts.URL + "/explain?q=" + url.QueryEscape(crackTBQL))
	if err != nil {
		t.Fatal(err)
	}
	decodeJSON(t, resp, &exp)
	if len(exp.Patterns) != 1 || exp.Patterns[0].Backend != "sql" || exp.Patterns[0].DataQuery == "" {
		t.Errorf("explain = %+v", exp)
	}

	// Stats reflect the traffic so far.
	var st StatsResponse
	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	decodeJSON(t, resp, &st)
	if st.Events != ing.EventsStored || st.Ingests != 1 || st.Hunts != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.GraphEdges != st.Events {
		t.Errorf("graph edges = %d, events = %d", st.GraphEdges, st.Events)
	}
}

// TestDaemonPagination pages a many-row hunt through the cursor-backed
// endpoint and checks the pages reassemble the full result exactly.
func TestDaemonPagination(t *testing.T) {
	ts, sys, logs := newTestServer(t)
	if _, err := sys.IngestLogs(strings.NewReader(logs)); err != nil {
		t.Fatal(err)
	}
	// Non-distinct, unfiltered: every read event is its own row, so the
	// result spans many pages.
	query := `proc p read file f as e1
return p, f`
	res, err := sys.Hunt(query)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 100 {
		t.Fatalf("fixture too small for pagination: %d rows", len(res.Rows))
	}

	var pages [][]string
	offset, limit := 0, 40
	for page := 0; ; page++ {
		if page > len(res.Rows) {
			t.Fatal("pagination did not terminate")
		}
		hr := postHunt(t, ts, query, limit, offset)
		if hr.Offset != offset || hr.Count != len(hr.Rows) {
			t.Fatalf("page %d shape: %+v", page, hr)
		}
		pages = append(pages, hr.Rows...)
		if hr.NextOffset == nil {
			break
		}
		if *hr.NextOffset != offset+len(hr.Rows) {
			t.Fatalf("page %d next_offset = %d, want %d", page, *hr.NextOffset, offset+len(hr.Rows))
		}
		if len(hr.Rows) != limit {
			t.Fatalf("page %d short (%d rows) but next_offset present", page, len(hr.Rows))
		}
		offset = *hr.NextOffset
	}
	if len(pages) != len(res.Rows) {
		t.Fatalf("pages total %d rows, want %d", len(pages), len(res.Rows))
	}
	for i := range pages {
		if strings.Join(pages[i], "\x00") != strings.Join(res.Rows[i], "\x00") {
			t.Errorf("row %d: paged %v != Result %v", i, pages[i], res.Rows[i])
		}
	}

	// An offset past the end yields an empty page with no next_offset.
	tail := postHunt(t, ts, query, limit, len(res.Rows)+10)
	if tail.Count != 0 || tail.NextOffset != nil {
		t.Errorf("past-the-end page = %+v", tail)
	}
}

// TestDaemonErrors covers the failure surface: bad methods, empty and
// malformed queries, bad pagination parameters, and strict-mode ingest
// failures.
func TestDaemonErrors(t *testing.T) {
	ts, _, _ := newTestServer(t)
	check := func(resp *http.Response, err error, want int) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != want {
			t.Errorf("status = %d, want %d (%s)", resp.StatusCode, want, body)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("error body %q not {\"error\": ...}", body)
		}
	}

	resp, err := http.Get(ts.URL + "/ingest")
	check(resp, err, http.StatusMethodNotAllowed)

	resp, err = http.Post(ts.URL+"/ingest", "text/plain", strings.NewReader("not an audit log\n"))
	check(resp, err, http.StatusBadRequest)

	resp, err = http.Get(ts.URL + "/hunt")
	check(resp, err, http.StatusMethodNotAllowed)

	resp, err = http.Post(ts.URL+"/hunt", "text/plain", strings.NewReader(""))
	check(resp, err, http.StatusBadRequest)

	resp, err = http.Post(ts.URL+"/hunt", "text/plain", strings.NewReader("bogus query"))
	check(resp, err, http.StatusBadRequest)

	resp, err = http.Post(ts.URL+"/hunt", "application/json", strings.NewReader("{broken"))
	check(resp, err, http.StatusBadRequest)

	resp, err = http.Post(ts.URL+"/hunt?limit=-1", "text/plain", strings.NewReader(crackTBQL))
	check(resp, err, http.StatusBadRequest)

	resp, err = http.Post(ts.URL+"/hunt?offset=nope", "text/plain", strings.NewReader(crackTBQL))
	check(resp, err, http.StatusBadRequest)

	resp, err = http.Get(ts.URL + "/explain")
	check(resp, err, http.StatusBadRequest)

	resp, err = http.Get(ts.URL + "/explain?q=bogus")
	check(resp, err, http.StatusBadRequest)

	resp, err = http.Post(ts.URL+"/stats", "text/plain", strings.NewReader(""))
	check(resp, err, http.StatusMethodNotAllowed)
}

// TestDaemonIngestBackpressure fills the ingest semaphore and checks
// the daemon sheds the next batch with 429 instead of buffering it,
// then recovers once a slot frees up.
func TestDaemonIngestBackpressure(t *testing.T) {
	sys, err := threatraptor.New(threatraptor.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(sys)
	for i := 0; i < MaxConcurrentIngests; i++ {
		srv.ingestSlots <- struct{}{}
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	good := "100\t200\th\t1\t/bin/a\tread\tfile\t/x\t1\n"
	resp, err := http.Post(ts.URL+"/ingest", "text/plain", strings.NewReader(good))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated ingest: status %d (%s)", resp.StatusCode, body)
	}

	<-srv.ingestSlots // free one slot
	resp, err = http.Post(ts.URL+"/ingest", "text/plain", strings.NewReader(good))
	if err != nil {
		t.Fatal(err)
	}
	var ing IngestResponse
	decodeJSON(t, resp, &ing)
	if ing.EventsStored != 1 {
		t.Errorf("recovered ingest stored %d events", ing.EventsStored)
	}
}

// TestDaemonConcurrentClients hammers the daemon with parallel ingest,
// hunt, and stats clients — the service-level slice of the race suite.
func TestDaemonConcurrentClients(t *testing.T) {
	ts, _, logs := newTestServer(t)

	// Seed the attack so hunts always have a hit.
	resp, err := http.Post(ts.URL+"/ingest", "text/plain", strings.NewReader(logs))
	if err != nil {
		t.Fatal(err)
	}
	var ing IngestResponse
	decodeJSON(t, resp, &ing)

	var wg sync.WaitGroup
	errs := make(chan error, 64)

	// Ingest clients streaming extra benign batches.
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				w := gen.Generate(gen.Config{Seed: int64(200 + c*10 + i), BenignEvents: 200})
				var buf bytes.Buffer
				if _, err := w.WriteTo(&buf); err != nil {
					errs <- err
					return
				}
				resp, err := http.Post(ts.URL+"/ingest", "text/plain", &buf)
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("ingest client %d: status %d", c, resp.StatusCode)
					return
				}
			}
		}(c)
	}

	// Hunt clients, mixing full and paginated reads.
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				limit := 0
				if c%2 == 0 {
					limit = 2
				}
				reqBody, _ := json.Marshal(HuntRequest{Query: crackTBQL, Limit: limit})
				resp, err := http.Post(ts.URL+"/hunt", "application/json", bytes.NewReader(reqBody))
				if err != nil {
					errs <- err
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("hunt client %d: status %d: %s", c, resp.StatusCode, body)
					return
				}
				var hr HuntResponse
				if err := json.Unmarshal(body, &hr); err != nil {
					errs <- err
					return
				}
				if len(hr.Rows) == 0 {
					errs <- fmt.Errorf("hunt client %d: attack disappeared", c)
					return
				}
			}
		}(c)
	}

	// A stats poller.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			resp, err := http.Get(ts.URL + "/stats")
			if err != nil {
				errs <- err
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("stats: status %d", resp.StatusCode)
				return
			}
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	var st StatsResponse
	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	decodeJSON(t, resp, &st)
	if st.Ingests != 9 || st.Hunts != 24 {
		t.Errorf("counters = %d ingests / %d hunts, want 9 / 24", st.Ingests, st.Hunts)
	}
	if st.Events <= ing.EventsStored {
		t.Errorf("events = %d, want > %d after concurrent ingest", st.Events, ing.EventsStored)
	}
}

// TestPropagationSkipStats: hunts that hit the engine's propagation cap
// must surface the skip count in the hunt response and accumulate it in
// GET /stats, and /explain must name the variables that would have been
// propagated.
func TestPropagationSkipStats(t *testing.T) {
	// Cap the IN-list at 1 so the crack hunt's shared variables exceed it.
	sys, err := threatraptor.New(threatraptor.Options{MaxPropagatedIDs: 1})
	if err != nil {
		t.Fatal(err)
	}
	w := gen.Generate(gen.Config{
		Seed:         31,
		BenignEvents: 1200,
		Attacks:      []gen.Attack{{Kind: gen.AttackPasswordCrack, At: 10 * time.Minute}},
	})
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(sys))
	t.Cleanup(ts.Close)
	resp, err := http.Post(ts.URL+"/ingest", "text/plain", strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	var ir IngestResponse
	decodeJSON(t, resp, &ir)

	// Two patterns sharing p: the second would propagate p's candidates,
	// but every cracker read shares one process, benign reads add more —
	// the set exceeds the cap of 1 and must be skipped.
	q := `proc p read file f["%/etc/shadow%"] as e1
proc p read file f2["%wordlist%"] as e2
return distinct p`
	hr := postHunt(t, ts, q, 10, 0)
	if hr.Stats.PropagationsSkipped == 0 {
		t.Fatalf("hunt stats report no skipped propagations: %+v", hr.Stats)
	}

	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var sr StatsResponse
	decodeJSON(t, resp, &sr)
	if sr.PropagationsSkipped < int64(hr.Stats.PropagationsSkipped) {
		t.Errorf("/stats propagations_skipped = %d, hunt reported %d",
			sr.PropagationsSkipped, hr.Stats.PropagationsSkipped)
	}

	// Explain names the shared variable on the later-scheduled pattern.
	resp, err = http.Get(ts.URL + "/explain?" + url.Values{"q": {q}}.Encode())
	if err != nil {
		t.Fatal(err)
	}
	var er struct {
		Patterns []ExplainedPattern `json:"patterns"`
	}
	decodeJSON(t, resp, &er)
	if len(er.Patterns) != 2 {
		t.Fatalf("explained %d patterns", len(er.Patterns))
	}
	var propagated []string
	for _, p := range er.Patterns {
		propagated = append(propagated, p.Propagated...)
	}
	if len(propagated) == 0 || propagated[0] != "p" {
		t.Errorf("explain propagated = %v, want the shared variable p", propagated)
	}
}

// TestPlanCacheStats: a repeated hunt resolves its plans from the
// cross-hunt cache — visible per hunt (plan_cache_hits in the response)
// and cumulatively (plan_cache_hits / plan_cache_size in GET /stats).
func TestPlanCacheStats(t *testing.T) {
	ts, _, logs := newTestServer(t)
	resp, err := http.Post(ts.URL+"/ingest", "text/plain", strings.NewReader(logs))
	if err != nil {
		t.Fatal(err)
	}
	var ir IngestResponse
	decodeJSON(t, resp, &ir)

	cold := postHunt(t, ts, crackTBQL, 10, 0)
	if cold.Stats.PlanCacheMisses == 0 || cold.Stats.PlanCacheHits != 0 {
		t.Fatalf("cold hunt plan stats = %+v", cold.Stats)
	}
	warm := postHunt(t, ts, crackTBQL, 10, 0)
	if warm.Stats.PlanCacheHits == 0 || warm.Stats.PlanCacheMisses != 0 {
		t.Fatalf("warm hunt plan stats = %+v", warm.Stats)
	}

	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var sr StatsResponse
	decodeJSON(t, resp, &sr)
	if sr.PlanCacheHits < int64(warm.Stats.PlanCacheHits) {
		t.Errorf("/stats plan_cache_hits = %d, hunt reported %d", sr.PlanCacheHits, warm.Stats.PlanCacheHits)
	}
	if sr.PlanCacheMisses < int64(cold.Stats.PlanCacheMisses) {
		t.Errorf("/stats plan_cache_misses = %d, hunt reported %d", sr.PlanCacheMisses, cold.Stats.PlanCacheMisses)
	}
	if sr.PlanCacheSize < 1 {
		t.Errorf("/stats plan_cache_size = %d, want >= 1", sr.PlanCacheSize)
	}
}

// TestPlanCacheDisabled: Options.PlanCacheSize < 0 turns caching off —
// every hunt compiles, and all counters stay zero.
func TestPlanCacheDisabled(t *testing.T) {
	sys, err := threatraptor.New(threatraptor.Options{PlanCacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(sys))
	t.Cleanup(ts.Close)

	hr := postHunt(t, ts, crackTBQL, 10, 0)
	if hr.Stats.PlanCacheHits != 0 || hr.Stats.PlanCacheMisses != 0 {
		t.Fatalf("disabled cache reported activity: %+v", hr.Stats)
	}
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var sr StatsResponse
	decodeJSON(t, resp, &sr)
	if sr.PlanCacheHits != 0 || sr.PlanCacheMisses != 0 || sr.PlanCacheSize != 0 {
		t.Errorf("/stats for a disabled cache = hits %d misses %d size %d",
			sr.PlanCacheHits, sr.PlanCacheMisses, sr.PlanCacheSize)
	}
}
