// Package synth implements ThreatRaptor's TBQL query synthesis: it
// automatically converts a threat behavior graph extracted from OSCTI
// text into an executable TBQL query.
//
// Synthesis proceeds in the paper's stages: (1) screening filters out
// graph nodes whose IOC types are not captured by system auditing;
// (2) each remaining edge's IOC relation verb is mapped to a TBQL
// operation with a rule table; (3) subject/object entities are
// synthesized from the source/sink nodes and connected into event
// patterns; (4) temporal relationships are synthesized from edge sequence
// numbers; (5) the return clause lists all entity IDs. User-defined plans
// can additionally synthesize path patterns and time windows.
package synth

import (
	"fmt"
	"strconv"

	"repro/internal/extract"
	"repro/internal/ioc"
	"repro/internal/tbql"
)

// Plan configures synthesis. The zero value is the default plan
// (basic event patterns, no time window).
type Plan struct {
	// UsePaths synthesizes variable-length path patterns instead of
	// single event patterns, covering chains where intermediate processes
	// were omitted from the OSCTI text.
	UsePaths bool
	// PathMin/PathMax bound path patterns (PathMax 0 = engine default).
	PathMin, PathMax int
	// Window, when non-nil, attaches a time window to every pattern.
	Window *tbql.TimeWindow
	// VerbOps overrides or extends the default verb→operation rules.
	VerbOps map[string]string
}

// Report describes what screening and mapping dropped.
type Report struct {
	DroppedNodes []string // node texts with uncaptured IOC types
	DroppedEdges []string // edges with unmappable verbs
}

// defaultVerbOps maps relation-verb lemmas to TBQL operations when the
// object is a file.
var defaultVerbOps = map[string]string{
	"read": "read", "scan": "read", "access": "read", "open": "read",
	"steal": "read", "gather": "read", "collect": "read",
	"compress": "read", "encrypt": "read", "decrypt": "read",
	"copy": "read", "exfiltrate": "read", "leak": "read",
	"write": "write", "download": "write", "drop": "write",
	"create": "write", "install": "write", "modify": "write",
	"overwrite": "write", "save": "write", "store": "write",
	"upload": "write", "inject": "write",
	"execute": "execute", "run": "execute", "launch": "execute",
	"use": "execute", "leverage": "execute", "invoke": "execute",
	"spawn": "execute", "fork": "execute",
	"delete": "delete", "remove": "delete",
	"rename": "rename", "chmod": "chmod", "persist": "write",
}

// netVerbOps maps verbs to operations when the object is a network
// connection: any data-movement verb towards a network endpoint is a
// connection in the audit stream.
var netVerbOps = map[string]string{
	"connect": "connect", "contact": "connect", "communicate": "connect",
	"beacon": "connect", "send": "connect", "transfer": "connect",
	"leak": "connect", "exfiltrate": "connect", "upload": "connect",
	"download": "connect", "receive": "connect", "fetch": "connect",
	"request": "connect", "query": "connect", "resolve": "connect",
	"access": "connect", "use": "connect",
}

// capturedType reports whether system auditing captures this IOC type
// (screening rule).
func capturedType(t ioc.Type) bool {
	switch t {
	case ioc.Filepath, ioc.Filename, ioc.IP, ioc.CIDR:
		return true
	default:
		return false
	}
}

// Synthesize converts a threat behavior graph into an analyzed TBQL
// query using the given plan (nil = default plan). It returns the query,
// a report of screened-out elements, and an error when nothing
// synthesizable remains.
func Synthesize(g *extract.Graph, plan *Plan) (*tbql.Query, *Report, error) {
	if plan == nil {
		plan = &Plan{}
	}
	rep := &Report{}

	// Stage 1: screening.
	keep := make([]bool, len(g.Nodes))
	for i, n := range g.Nodes {
		if capturedType(n.Type) {
			keep[i] = true
		} else {
			rep.DroppedNodes = append(rep.DroppedNodes, n.Text)
		}
	}

	q := &tbql.Query{Distinct: true}
	// Entity IDs per (node, role): subjects become proc entities,
	// objects become file/ip entities.
	type roleKey struct {
		node int
		role string // "subj" | "objfile" | "objip"
	}
	entityID := map[roleKey]string{}
	filtered := map[string]bool{} // entity IDs that already carry a filter
	var nProc, nFile, nIP int

	entity := func(node int, role string) tbql.EntityRef {
		n := g.NodeByID(node)
		k := roleKey{node, role}
		id, ok := entityID[k]
		var typ tbql.EntityType
		switch role {
		case "subj":
			typ = tbql.EntProc
		case "objfile":
			typ = tbql.EntFile
		default:
			typ = tbql.EntIP
		}
		if !ok || typ == tbql.EntIP {
			// Processes and files are stable artifacts: reusing the
			// entity ID across patterns asserts they are the same system
			// entity. Network connections are per-flow entities (each
			// connection to the same address is a new entity with a new
			// source port), so every IP occurrence gets a fresh variable
			// carrying the same dstip filter.
			switch role {
			case "subj":
				nProc++
				id = "p" + strconv.Itoa(nProc)
			case "objfile":
				nFile++
				id = "f" + strconv.Itoa(nFile)
			default:
				nIP++
				id = "i" + strconv.Itoa(nIP)
			}
			entityID[k] = id
		}
		ref := tbql.EntityRef{Type: typ, ID: id}
		if !filtered[id] {
			filtered[id] = true
			ref.Filter = nodeFilter(typ, n)
		}
		return ref
	}

	// Stages 2-3: map verbs and synthesize event patterns, ordered by
	// edge sequence number (edges are already seq-ordered).
	var names []string
	for _, e := range g.Edges {
		if !keep[e.Src] || !keep[e.Dst] {
			continue
		}
		dst := g.NodeByID(e.Dst)
		objIsNet := dst.Type == ioc.IP || dst.Type == ioc.CIDR

		op, ok := plan.VerbOps[e.Verb]
		if !ok {
			if objIsNet {
				op, ok = netVerbOps[e.Verb]
			} else {
				op, ok = defaultVerbOps[e.Verb]
			}
		}
		if !ok {
			rep.DroppedEdges = append(rep.DroppedEdges,
				fmt.Sprintf("%s -%s-> %s", g.NodeByID(e.Src).Text, e.Verb, dst.Text))
			continue
		}

		objRole := "objfile"
		if objIsNet {
			objRole = "objip"
		}
		pat := tbql.EventPattern{
			Subj: entity(e.Src, "subj"),
			Ops:  []string{op},
			Obj:  entity(e.Dst, objRole),
			Name: "evt" + strconv.Itoa(e.Seq),
		}
		if plan.UsePaths {
			pat.IsPath = true
			pat.MinHops = plan.PathMin
			if pat.MinHops < 1 {
				pat.MinHops = 1
			}
			pat.MaxHops = plan.PathMax
		}
		if plan.Window != nil {
			w := *plan.Window
			pat.Window = &w
		}
		q.Patterns = append(q.Patterns, pat)
		names = append(names, pat.Name)
	}
	if len(q.Patterns) == 0 {
		return nil, rep, fmt.Errorf("synth: no synthesizable patterns in behavior graph")
	}

	// Stage 4: temporal relationships from sequence numbers.
	for i := 1; i < len(names); i++ {
		q.Temporal = append(q.Temporal, tbql.TemporalRel{A: names[i-1], Op: "before", B: names[i]})
	}

	// Stage 5: return clause with all entity IDs in first-use order.
	seen := map[string]bool{}
	for _, pat := range q.Patterns {
		for _, id := range []string{pat.Subj.ID, pat.Obj.ID} {
			if !seen[id] {
				seen[id] = true
				q.Return = append(q.Return, tbql.ReturnItem{ID: id})
			}
		}
	}

	if err := tbql.Analyze(q); err != nil {
		return nil, rep, fmt.Errorf("synth: synthesized query fails analysis: %w", err)
	}
	return q, rep, nil
}

// nodeFilter builds the attribute filter for a node's first occurrence:
// substring match on the default attribute for processes and files, exact
// match for IPs.
func nodeFilter(t tbql.EntityType, n *extract.Node) tbql.Expr {
	switch t {
	case tbql.EntIP:
		return tbql.CmpExpr{Op: "=", Str: n.Text}
	default:
		return tbql.CmpExpr{Op: "like", Str: "%" + n.Text + "%"}
	}
}
