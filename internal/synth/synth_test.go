package synth

import (
	"strings"
	"testing"

	"repro/internal/extract"
	"repro/internal/ioc"
	"repro/internal/tbql"
)

// fig2Graph builds the Fig. 2 threat behavior graph by hand (the extract
// package has its own tests for producing it from text).
func fig2Graph() *extract.Graph {
	g := &extract.Graph{}
	add := func(t ioc.Type, text string) int {
		id := len(g.Nodes)
		g.Nodes = append(g.Nodes, extract.Node{ID: id, Type: t, Text: text})
		return id
	}
	tar := add(ioc.Filepath, "/bin/tar")
	passwd := add(ioc.Filepath, "/etc/passwd")
	uploadTar := add(ioc.Filepath, "/tmp/upload.tar")
	bzip := add(ioc.Filepath, "/bin/bzip2")
	bz2 := add(ioc.Filepath, "/tmp/upload.tar.bz2")
	gpg := add(ioc.Filepath, "/usr/bin/gpg")
	upload := add(ioc.Filepath, "/tmp/upload")
	curl := add(ioc.Filepath, "/usr/bin/curl")
	c2 := add(ioc.IP, "192.168.29.128")
	edges := []struct {
		src, dst int
		verb     string
	}{
		{tar, passwd, "read"}, {tar, uploadTar, "write"},
		{bzip, uploadTar, "read"}, {bzip, bz2, "write"},
		{gpg, bz2, "read"}, {gpg, upload, "write"},
		{curl, upload, "read"}, {curl, c2, "connect"},
	}
	for i, e := range edges {
		g.Edges = append(g.Edges, extract.Edge{Src: e.src, Dst: e.dst, Verb: e.verb, Seq: i + 1})
	}
	return g
}

func TestSynthesizeFig2(t *testing.T) {
	q, rep, err := Synthesize(fig2Graph(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.DroppedNodes) != 0 || len(rep.DroppedEdges) != 0 {
		t.Errorf("unexpected drops: %+v", rep)
	}
	if len(q.Patterns) != 8 {
		t.Fatalf("want 8 patterns, got %d\n%s", len(q.Patterns), q.String())
	}
	if len(q.Temporal) != 7 {
		t.Errorf("want 7 temporal rels, got %d", len(q.Temporal))
	}
	if !q.Distinct || len(q.Return) != 9 {
		t.Errorf("return: distinct=%v n=%d", q.Distinct, len(q.Return))
	}
	// The same process node reused keeps one entity ID: p1 in evt1+evt2.
	if q.Patterns[0].Subj.ID != q.Patterns[1].Subj.ID {
		t.Errorf("tar process should reuse entity ID: %s vs %s",
			q.Patterns[0].Subj.ID, q.Patterns[1].Subj.ID)
	}
	// Shared file f2 between evt2 (object) and evt3 (object).
	if q.Patterns[1].Obj.ID != q.Patterns[2].Obj.ID {
		t.Errorf("upload.tar should reuse entity ID")
	}
	// Filters only on first use.
	if q.Patterns[1].Subj.Filter != nil {
		t.Error("second use of p1 should carry no filter")
	}
	// Rendered text matches the Fig. 2 query shape.
	text := q.String()
	for _, want := range []string{
		`proc p1["%/bin/tar%"] read file f1["%/etc/passwd%"] as evt1`,
		`proc p1 write file f2["%/tmp/upload.tar%"] as evt2`,
		`proc p4 connect ip i1["192.168.29.128"] as evt8`,
		`with evt1 before evt2`,
		`return distinct p1, f1, f2, p2, f3, p3, f4, p4, i1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("synthesized query missing %q:\n%s", want, text)
		}
	}
}

func TestSynthesizeScreening(t *testing.T) {
	g := &extract.Graph{
		Nodes: []extract.Node{
			{ID: 0, Type: ioc.Filepath, Text: "/bin/sh"},
			{ID: 1, Type: ioc.Domain, Text: "evil.com"}, // not captured
			{ID: 2, Type: ioc.Filepath, Text: "/etc/passwd"},
		},
		Edges: []extract.Edge{
			{Src: 0, Dst: 1, Verb: "connect", Seq: 1},
			{Src: 0, Dst: 2, Verb: "read", Seq: 2},
		},
	}
	q, rep, err := Synthesize(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Patterns) != 1 {
		t.Errorf("domain edge should be screened out: %s", q.String())
	}
	if len(rep.DroppedNodes) != 1 || rep.DroppedNodes[0] != "evil.com" {
		t.Errorf("report = %+v", rep)
	}
}

func TestSynthesizeVerbMapping(t *testing.T) {
	g := &extract.Graph{
		Nodes: []extract.Node{
			{ID: 0, Type: ioc.Filepath, Text: "/usr/bin/wget"},
			{ID: 1, Type: ioc.Filepath, Text: "/tmp/cracker"},
			{ID: 2, Type: ioc.IP, Text: "10.1.1.1"},
		},
		Edges: []extract.Edge{
			{Src: 0, Dst: 1, Verb: "download", Seq: 1}, // file object -> write
			{Src: 0, Dst: 2, Verb: "download", Seq: 2}, // net object -> connect
		},
	}
	q, _, err := Synthesize(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if q.Patterns[0].Ops[0] != "write" {
		t.Errorf("download->file should map to write, got %s", q.Patterns[0].Ops[0])
	}
	if q.Patterns[1].Ops[0] != "connect" {
		t.Errorf("download->ip should map to connect, got %s", q.Patterns[1].Ops[0])
	}
}

func TestSynthesizeUnknownVerbDropped(t *testing.T) {
	g := &extract.Graph{
		Nodes: []extract.Node{
			{ID: 0, Type: ioc.Filepath, Text: "/bin/a"},
			{ID: 1, Type: ioc.Filepath, Text: "/bin/b"},
		},
		Edges: []extract.Edge{
			{Src: 0, Dst: 1, Verb: "contemplate", Seq: 1},
			{Src: 0, Dst: 1, Verb: "read", Seq: 2},
		},
	}
	q, rep, err := Synthesize(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Patterns) != 1 || len(rep.DroppedEdges) != 1 {
		t.Errorf("unknown verb handling wrong: %d patterns, %+v", len(q.Patterns), rep)
	}
}

func TestSynthesizeCustomVerbOps(t *testing.T) {
	g := &extract.Graph{
		Nodes: []extract.Node{
			{ID: 0, Type: ioc.Filepath, Text: "/bin/a"},
			{ID: 1, Type: ioc.Filepath, Text: "/tmp/x"},
		},
		Edges: []extract.Edge{{Src: 0, Dst: 1, Verb: "zap", Seq: 1}},
	}
	q, _, err := Synthesize(g, &Plan{VerbOps: map[string]string{"zap": "delete"}})
	if err != nil {
		t.Fatal(err)
	}
	if q.Patterns[0].Ops[0] != "delete" {
		t.Errorf("custom verb rule ignored: %s", q.Patterns[0].Ops[0])
	}
}

func TestSynthesizePathPlan(t *testing.T) {
	q, _, err := Synthesize(fig2Graph(), &Plan{UsePaths: true, PathMin: 1, PathMax: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, pat := range q.Patterns {
		if !pat.IsPath || pat.MaxHops != 4 {
			t.Errorf("path plan not applied: %+v", pat)
		}
	}
	// Round-trips through the parser.
	if _, err := tbql.Parse(q.String()); err != nil {
		t.Errorf("path query does not re-parse: %v\n%s", err, q.String())
	}
}

func TestSynthesizeWindowPlan(t *testing.T) {
	w := &tbql.TimeWindow{From: 100, To: 900}
	q, _, err := Synthesize(fig2Graph(), &Plan{Window: w})
	if err != nil {
		t.Fatal(err)
	}
	for _, pat := range q.Patterns {
		if pat.Window == nil || pat.Window.From != 100 {
			t.Errorf("window not applied: %+v", pat.Window)
		}
	}
}

func TestSynthesizeEmptyGraph(t *testing.T) {
	if _, _, err := Synthesize(&extract.Graph{}, nil); err == nil {
		t.Error("empty graph should fail")
	}
}

func TestSynthesizedQueryReparses(t *testing.T) {
	q, _, err := Synthesize(fig2Graph(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tbql.Parse(q.String()); err != nil {
		t.Errorf("synthesized text does not re-parse: %v\n%s", err, q.String())
	}
}

func TestSynthesizeFromExtractedFig2(t *testing.T) {
	// Full front half of the pipeline: text -> graph -> query.
	g := extract.Extract(extract.Fig2Text)
	q, _, err := Synthesize(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Patterns) < 8 {
		t.Errorf("expected >= 8 patterns from Fig. 2 text, got %d\n%s", len(q.Patterns), q.String())
	}
}
