package audit

import (
	"fmt"
	"strconv"
	"strings"
)

// Record is one raw audit log record in the Sysdig-style text format
// produced by the collection layer, before entity resolution.
//
// The line format is tab-separated:
//
//	<start_ns> <end_ns> <host> <pid> <exe> <op> <objtype> <objspec> <amount>
//
// where objspec depends on objtype:
//
//	file:    the absolute path
//	process: "<pid>:<exe>"
//	netconn: "<srcip>:<srcport>-><dstip>:<dstport>/<proto>"
type Record struct {
	StartNS int64
	EndNS   int64
	Host    string
	PID     int
	Exe     string
	Op      OpType
	ObjType EntityType
	ObjSpec string
	Amount  int64
}

// Validate checks the parts of a record that entity resolution would
// reject — the object type and its spec — so callers can verify a whole
// batch before interning any of it.
func (r Record) Validate() error {
	switch r.ObjType {
	case EntityFile:
		return nil
	case EntityProcess:
		_, _, err := parseProcSpec(r.ObjSpec)
		return err
	case EntityNetConn:
		_, _, _, _, _, err := parseConnSpec(r.ObjSpec)
		return err
	default:
		return fmt.Errorf("audit: record has invalid object type %v", r.ObjType)
	}
}

// FormatRecord renders a record as one log line (without trailing newline).
func FormatRecord(r Record) string {
	var b strings.Builder
	b.Grow(96)
	b.WriteString(strconv.FormatInt(r.StartNS, 10))
	b.WriteByte('\t')
	b.WriteString(strconv.FormatInt(r.EndNS, 10))
	b.WriteByte('\t')
	b.WriteString(r.Host)
	b.WriteByte('\t')
	b.WriteString(strconv.Itoa(r.PID))
	b.WriteByte('\t')
	b.WriteString(r.Exe)
	b.WriteByte('\t')
	b.WriteString(r.Op.String())
	b.WriteByte('\t')
	b.WriteString(r.ObjType.String())
	b.WriteByte('\t')
	b.WriteString(r.ObjSpec)
	b.WriteByte('\t')
	b.WriteString(strconv.FormatInt(r.Amount, 10))
	return b.String()
}

// ParseRecord parses one log line into a Record.
func ParseRecord(line string) (Record, error) {
	var r Record
	fields := strings.Split(line, "\t")
	if len(fields) != 9 {
		return r, fmt.Errorf("audit: malformed record: want 9 fields, got %d in %q", len(fields), line)
	}
	var err error
	if r.StartNS, err = strconv.ParseInt(fields[0], 10, 64); err != nil {
		return r, fmt.Errorf("audit: bad start time %q: %w", fields[0], err)
	}
	if r.EndNS, err = strconv.ParseInt(fields[1], 10, 64); err != nil {
		return r, fmt.Errorf("audit: bad end time %q: %w", fields[1], err)
	}
	if r.EndNS < r.StartNS {
		return r, fmt.Errorf("audit: end time %d before start time %d", r.EndNS, r.StartNS)
	}
	r.Host = fields[2]
	if r.PID, err = strconv.Atoi(fields[3]); err != nil {
		return r, fmt.Errorf("audit: bad pid %q: %w", fields[3], err)
	}
	r.Exe = fields[4]
	if r.Op, err = ParseOpType(fields[5]); err != nil {
		return r, err
	}
	if r.ObjType, err = ParseEntityType(fields[6]); err != nil {
		return r, err
	}
	if want := r.Op.ObjectType(); want != r.ObjType {
		return r, fmt.Errorf("audit: operation %s requires object type %s, got %s", r.Op, want, r.ObjType)
	}
	r.ObjSpec = fields[7]
	if r.ObjSpec == "" {
		return r, fmt.Errorf("audit: empty object spec in %q", line)
	}
	if r.Amount, err = strconv.ParseInt(fields[8], 10, 64); err != nil {
		return r, fmt.Errorf("audit: bad amount %q: %w", fields[8], err)
	}
	return r, nil
}

// ProcSpec renders a process object spec "<pid>:<exe>".
func ProcSpec(pid int, exe string) string {
	return strconv.Itoa(pid) + ":" + exe
}

// ConnSpec renders a network-connection object spec
// "<srcip>:<srcport>-><dstip>:<dstport>/<proto>".
func ConnSpec(srcIP string, srcPort int, dstIP string, dstPort int, proto string) string {
	return srcIP + ":" + strconv.Itoa(srcPort) + "->" + dstIP + ":" + strconv.Itoa(dstPort) + "/" + proto
}

// parseProcSpec parses "<pid>:<exe>".
func parseProcSpec(s string) (pid int, exe string, err error) {
	i := strings.IndexByte(s, ':')
	if i <= 0 || i == len(s)-1 {
		return 0, "", fmt.Errorf("audit: malformed process spec %q", s)
	}
	pid, err = strconv.Atoi(s[:i])
	if err != nil {
		return 0, "", fmt.Errorf("audit: bad pid in process spec %q: %w", s, err)
	}
	return pid, s[i+1:], nil
}

// parseConnSpec parses "<srcip>:<srcport>-><dstip>:<dstport>/<proto>".
func parseConnSpec(s string) (srcIP string, srcPort int, dstIP string, dstPort int, proto string, err error) {
	rest := s
	if i := strings.LastIndexByte(rest, '/'); i >= 0 {
		proto = rest[i+1:]
		rest = rest[:i]
	} else {
		proto = "tcp"
	}
	parts := strings.Split(rest, "->")
	if len(parts) != 2 {
		err = fmt.Errorf("audit: malformed connection spec %q", s)
		return
	}
	if srcIP, srcPort, err = splitHostPort(parts[0]); err != nil {
		err = fmt.Errorf("audit: bad source endpoint in %q: %w", s, err)
		return
	}
	if dstIP, dstPort, err = splitHostPort(parts[1]); err != nil {
		err = fmt.Errorf("audit: bad destination endpoint in %q: %w", s, err)
		return
	}
	return
}

func splitHostPort(s string) (string, int, error) {
	i := strings.LastIndexByte(s, ':')
	if i <= 0 || i == len(s)-1 {
		return "", 0, fmt.Errorf("missing port in %q", s)
	}
	port, err := strconv.Atoi(s[i+1:])
	if err != nil || port < 0 || port > 65535 {
		return "", 0, fmt.Errorf("bad port in %q", s)
	}
	return s[:i], port, nil
}
