package audit

import (
	"hash/fnv"
	"sync"
)

// ShardIndex is the host → shard routing function shared by every
// host-sharded store: records, entities, and events carry a host, and
// every storage backend that partitions by host must agree on where a
// given host lives so a hunt can find the events an ingest stored.
// Data without a host (the empty string) lands in shard 0, the default
// shard. n below 2 always routes to shard 0.
func ShardIndex(host string, n int) int {
	if n <= 1 || host == "" {
		return 0
	}
	h := fnv.New32a()
	h.Write([]byte(host))
	return int(h.Sum32() % uint32(n))
}

// LoadSharded routes each event to its host's shard (ShardIndex) and
// invokes load once per touched shard with that shard's batch, in
// event order — concurrently when the batch spans multiple shards, so
// per-shard loads proceed in parallel on disjoint store locks. It is
// the one shard fan-out loop every host-sharded store shares; load
// must be safe to call concurrently for different shards. The first
// per-shard error is returned (others are discarded).
func LoadSharded(events []*Event, n int, load func(shard int, batch []*Event) error) error {
	if len(events) == 0 {
		return nil
	}
	if n <= 1 {
		return load(0, events)
	}
	buckets := make([][]*Event, n)
	touched := 0
	for _, ev := range events {
		i := ShardIndex(ev.Host, n)
		if buckets[i] == nil {
			touched++
		}
		buckets[i] = append(buckets[i], ev)
	}
	if touched == 1 {
		for i, bucket := range buckets {
			if bucket != nil {
				return load(i, bucket)
			}
		}
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i, bucket := range buckets {
		if bucket == nil {
			continue
		}
		wg.Add(1)
		go func(i int, bucket []*Event) {
			defer wg.Done()
			errs[i] = load(i, bucket)
		}(i, bucket)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
