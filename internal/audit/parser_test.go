package audit

import (
	"strings"
	"testing"
)

func TestParserDeduplicatesEntities(t *testing.T) {
	p := NewParser()
	r1 := Record{StartNS: 1, EndNS: 2, Host: "h", PID: 10, Exe: "/bin/tar",
		Op: OpRead, ObjType: EntityFile, ObjSpec: "/etc/passwd", Amount: 100}
	r2 := Record{StartNS: 3, EndNS: 4, Host: "h", PID: 10, Exe: "/bin/tar",
		Op: OpWrite, ObjType: EntityFile, ObjSpec: "/tmp/upload.tar", Amount: 200}
	ev1, err := p.Add(r1)
	if err != nil {
		t.Fatal(err)
	}
	ev2, err := p.Add(r2)
	if err != nil {
		t.Fatal(err)
	}
	if ev1.SrcID != ev2.SrcID {
		t.Errorf("same process got two IDs: %d vs %d", ev1.SrcID, ev2.SrcID)
	}
	if len(p.Entities()) != 3 {
		t.Errorf("want 3 entities (1 proc, 2 files), got %d", len(p.Entities()))
	}
	if len(p.Events()) != 2 {
		t.Errorf("want 2 events, got %d", len(p.Events()))
	}
}

func TestParserProcessObject(t *testing.T) {
	p := NewParser()
	r := Record{StartNS: 1, EndNS: 2, Host: "h", PID: 1, Exe: "/usr/sbin/apache2",
		Op: OpFork, ObjType: EntityProcess, ObjSpec: ProcSpec(2, "/bin/bash")}
	ev, err := p.Add(r)
	if err != nil {
		t.Fatal(err)
	}
	obj := p.EntityByID(ev.DstID)
	if obj == nil || obj.Type != EntityProcess || obj.ExeName != "/bin/bash" || obj.PID != 2 {
		t.Fatalf("bad object entity: %+v", obj)
	}
	// The forked child appearing later as a subject must resolve to the
	// same entity.
	r2 := Record{StartNS: 3, EndNS: 4, Host: "h", PID: 2, Exe: "/bin/bash",
		Op: OpRead, ObjType: EntityFile, ObjSpec: "/etc/hosts", Amount: 1}
	ev2, err := p.Add(r2)
	if err != nil {
		t.Fatal(err)
	}
	if ev2.SrcID != obj.ID {
		t.Errorf("forked child not unified: %d vs %d", ev2.SrcID, obj.ID)
	}
}

func TestParserNetConnObject(t *testing.T) {
	p := NewParser()
	r := Record{StartNS: 1, EndNS: 2, Host: "h", PID: 5, Exe: "/usr/bin/curl",
		Op: OpConnect, ObjType: EntityNetConn,
		ObjSpec: ConnSpec("10.0.0.5", 44321, "192.168.29.128", 443, "tcp")}
	ev, err := p.Add(r)
	if err != nil {
		t.Fatal(err)
	}
	obj := p.EntityByID(ev.DstID)
	if obj.DstIP != "192.168.29.128" || obj.DstPort != 443 || obj.SrcIP != "10.0.0.5" {
		t.Fatalf("bad conn entity: %+v", obj)
	}
}

func TestParseStream(t *testing.T) {
	lines := []string{
		FormatRecord(Record{StartNS: 1, EndNS: 2, Host: "h", PID: 1, Exe: "/bin/a",
			Op: OpRead, ObjType: EntityFile, ObjSpec: "/x", Amount: 1}),
		"# comment",
		"",
		FormatRecord(Record{StartNS: 3, EndNS: 4, Host: "h", PID: 1, Exe: "/bin/a",
			Op: OpWrite, ObjType: EntityFile, ObjSpec: "/y", Amount: 2}),
	}
	p := NewParser()
	if err := p.ParseStream(strings.NewReader(strings.Join(lines, "\n"))); err != nil {
		t.Fatal(err)
	}
	if len(p.Events()) != 2 {
		t.Errorf("want 2 events, got %d", len(p.Events()))
	}
}

func TestParseStreamStrictAborts(t *testing.T) {
	p := NewParser()
	err := p.ParseStream(strings.NewReader("garbage line\n"))
	if err == nil {
		t.Fatal("strict parse of garbage should fail")
	}
	if !strings.Contains(err.Error(), "line 1") {
		t.Errorf("error should cite line number: %v", err)
	}
}

func TestParseStreamLenientSkips(t *testing.T) {
	good := FormatRecord(Record{StartNS: 1, EndNS: 2, Host: "h", PID: 1, Exe: "/bin/a",
		Op: OpRead, ObjType: EntityFile, ObjSpec: "/x", Amount: 1})
	p := NewParser()
	p.Lenient = true
	if err := p.ParseStream(strings.NewReader("junk\n" + good + "\nmore junk\n")); err != nil {
		t.Fatal(err)
	}
	if len(p.Events()) != 1 {
		t.Errorf("want 1 event, got %d", len(p.Events()))
	}
	if len(p.Errs) != 2 {
		t.Errorf("want 2 recorded errors, got %d", len(p.Errs))
	}
}

func TestEntityByIDOutOfRange(t *testing.T) {
	p := NewParser()
	if p.EntityByID(0) != nil || p.EntityByID(99) != nil || p.EntityByID(-1) != nil {
		t.Error("out-of-range lookups must return nil")
	}
}
