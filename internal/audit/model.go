// Package audit defines the system-auditing data model used throughout
// ThreatRaptor: system entities (files, processes, network connections),
// system events (⟨subject, operation, object⟩ interactions), a Sysdig-style
// text log format, and a streaming log parser.
//
// The model follows the convention established by prior system-auditing
// work (AIQL, SAQL, CPR): subjects are processes originating from software
// applications, and objects are files, processes, or network connections.
// Events are categorized into file events, process events, and network
// events according to the type of their object entity.
package audit

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// EntityType identifies the kind of a system entity.
type EntityType uint8

// The three entity types tracked by system auditing.
const (
	EntityFile EntityType = iota + 1
	EntityProcess
	EntityNetConn
)

// String returns the lowercase name of the entity type as used in logs,
// TBQL, and the storage backends.
func (t EntityType) String() string {
	switch t {
	case EntityFile:
		return "file"
	case EntityProcess:
		return "process"
	case EntityNetConn:
		return "netconn"
	default:
		return fmt.Sprintf("entitytype(%d)", uint8(t))
	}
}

// ParseEntityType converts a log token into an EntityType.
func ParseEntityType(s string) (EntityType, error) {
	switch strings.ToLower(s) {
	case "file":
		return EntityFile, nil
	case "process", "proc":
		return EntityProcess, nil
	case "netconn", "ip", "network", "conn":
		return EntityNetConn, nil
	default:
		return 0, fmt.Errorf("audit: unknown entity type %q", s)
	}
}

// OpType identifies a system-call-level operation between two entities.
type OpType uint8

// Supported operation types, grouped by event category.
const (
	OpInvalid OpType = iota

	// File operations (object is a file).
	OpRead
	OpWrite
	OpExecute
	OpRename
	OpDelete
	OpChmod
	OpCreate

	// Process operations (object is a process).
	OpFork
	OpClone
	OpExec
	OpKill

	// Network operations (object is a network connection).
	OpConnect
	OpAccept
	OpSend
	OpRecv
	OpBind
)

var opNames = map[OpType]string{
	OpRead:    "read",
	OpWrite:   "write",
	OpExecute: "execute",
	OpRename:  "rename",
	OpDelete:  "delete",
	OpChmod:   "chmod",
	OpCreate:  "create",
	OpFork:    "fork",
	OpClone:   "clone",
	OpExec:    "exec",
	OpKill:    "kill",
	OpConnect: "connect",
	OpAccept:  "accept",
	OpSend:    "send",
	OpRecv:    "recv",
	OpBind:    "bind",
}

var opByName = func() map[string]OpType {
	m := make(map[string]OpType, len(opNames))
	for op, name := range opNames {
		m[name] = op
	}
	return m
}()

// String returns the lowercase operation name used in logs and TBQL.
func (o OpType) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// ParseOpType converts an operation name into an OpType.
func ParseOpType(s string) (OpType, error) {
	if op, ok := opByName[strings.ToLower(s)]; ok {
		return op, nil
	}
	return OpInvalid, fmt.Errorf("audit: unknown operation %q", s)
}

// ObjectType reports the entity type an operation's object must have.
func (o OpType) ObjectType() EntityType {
	switch o {
	case OpRead, OpWrite, OpExecute, OpRename, OpDelete, OpChmod, OpCreate:
		return EntityFile
	case OpFork, OpClone, OpExec, OpKill:
		return EntityProcess
	case OpConnect, OpAccept, OpSend, OpRecv, OpBind:
		return EntityNetConn
	default:
		return 0
	}
}

// AllOps returns every valid operation type in a stable order.
func AllOps() []OpType {
	ops := make([]OpType, 0, len(opNames))
	for op := OpRead; op <= OpBind; op++ {
		ops = append(ops, op)
	}
	return ops
}

// Entity is a system entity: a file, a process, or a network connection.
// Only the attribute fields relevant to the entity's type are populated.
type Entity struct {
	ID   int64
	Type EntityType
	Host string

	// File attributes.
	Path string // absolute path; the default "name" attribute of a file

	// Process attributes.
	ExeName string // executable path; the default attribute of a process
	PID     int

	// Network connection attributes.
	SrcIP   string
	SrcPort int
	DstIP   string // the default attribute of a network connection
	DstPort int
	Proto   string
}

// Name returns the default attribute value used in security analysis:
// path for files, executable name for processes, destination IP for
// network connections.
func (e *Entity) Name() string {
	switch e.Type {
	case EntityFile:
		return e.Path
	case EntityProcess:
		return e.ExeName
	case EntityNetConn:
		return e.DstIP
	default:
		return ""
	}
}

// Key returns the canonical identity key used to deduplicate entities
// during parsing: processes are identified by (host, pid, exename), files
// by (host, path), and network connections by (host, 4-tuple, proto).
func (e *Entity) Key() string {
	switch e.Type {
	case EntityFile:
		return "f|" + e.Host + "|" + e.Path
	case EntityProcess:
		return "p|" + e.Host + "|" + strconv.Itoa(e.PID) + "|" + e.ExeName
	case EntityNetConn:
		return "n|" + e.Host + "|" + e.SrcIP + ":" + strconv.Itoa(e.SrcPort) +
			"->" + e.DstIP + ":" + strconv.Itoa(e.DstPort) + "|" + e.Proto
	default:
		return "?"
	}
}

// Attr returns the value of a named attribute, mirroring the columns
// exposed to TBQL filters. Unknown attributes return the empty string.
func (e *Entity) Attr(name string) string {
	switch strings.ToLower(name) {
	case "id":
		return strconv.FormatInt(e.ID, 10)
	case "type":
		return e.Type.String()
	case "host":
		return e.Host
	case "name", "path":
		if e.Type == EntityNetConn {
			return e.DstIP
		}
		if e.Type == EntityProcess && strings.ToLower(name) == "name" {
			return e.ExeName
		}
		return e.Path
	case "exename":
		return e.ExeName
	case "pid":
		return strconv.Itoa(e.PID)
	case "srcip":
		return e.SrcIP
	case "srcport":
		return strconv.Itoa(e.SrcPort)
	case "dstip":
		return e.DstIP
	case "dstport":
		return strconv.Itoa(e.DstPort)
	case "proto", "protocol":
		return e.Proto
	default:
		return ""
	}
}

// Event is a system event: an interaction between a subject entity and an
// object entity, with the operation and the time window during which the
// interaction was observed.
type Event struct {
	ID        int64
	SrcID     int64 // subject entity (always a process)
	DstID     int64 // object entity (file, process, or network connection)
	Op        OpType
	StartTime int64 // unix nanoseconds
	EndTime   int64 // unix nanoseconds
	Amount    int64 // bytes transferred, when applicable
	Host      string
}

// Category returns which of the three event categories the event belongs
// to, based on its operation's object type.
func (ev *Event) Category() EntityType { return ev.Op.ObjectType() }

// Start returns the event's start time as a time.Time.
func (ev *Event) Start() time.Time { return time.Unix(0, ev.StartTime) }

// End returns the event's end time as a time.Time.
func (ev *Event) End() time.Time { return time.Unix(0, ev.EndTime) }
