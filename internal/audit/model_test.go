package audit

import (
	"testing"
	"testing/quick"
)

func TestEntityTypeRoundTrip(t *testing.T) {
	for _, typ := range []EntityType{EntityFile, EntityProcess, EntityNetConn} {
		got, err := ParseEntityType(typ.String())
		if err != nil {
			t.Fatalf("ParseEntityType(%q): %v", typ.String(), err)
		}
		if got != typ {
			t.Errorf("round trip %v: got %v", typ, got)
		}
	}
}

func TestParseEntityTypeAliases(t *testing.T) {
	cases := map[string]EntityType{
		"file": EntityFile, "proc": EntityProcess, "process": EntityProcess,
		"ip": EntityNetConn, "netconn": EntityNetConn, "FILE": EntityFile,
	}
	for in, want := range cases {
		got, err := ParseEntityType(in)
		if err != nil {
			t.Fatalf("ParseEntityType(%q): %v", in, err)
		}
		if got != want {
			t.Errorf("ParseEntityType(%q) = %v, want %v", in, got, want)
		}
	}
	if _, err := ParseEntityType("registry"); err == nil {
		t.Error("ParseEntityType(registry) should fail")
	}
}

func TestOpTypeRoundTrip(t *testing.T) {
	for _, op := range AllOps() {
		got, err := ParseOpType(op.String())
		if err != nil {
			t.Fatalf("ParseOpType(%q): %v", op.String(), err)
		}
		if got != op {
			t.Errorf("round trip %v: got %v", op, got)
		}
	}
	if _, err := ParseOpType("teleport"); err == nil {
		t.Error("ParseOpType(teleport) should fail")
	}
}

func TestOpObjectTypes(t *testing.T) {
	cases := map[OpType]EntityType{
		OpRead: EntityFile, OpWrite: EntityFile, OpExecute: EntityFile,
		OpChmod: EntityFile, OpDelete: EntityFile, OpRename: EntityFile,
		OpFork: EntityProcess, OpExec: EntityProcess, OpKill: EntityProcess,
		OpConnect: EntityNetConn, OpAccept: EntityNetConn, OpSend: EntityNetConn,
	}
	for op, want := range cases {
		if got := op.ObjectType(); got != want {
			t.Errorf("%v.ObjectType() = %v, want %v", op, got, want)
		}
	}
}

func TestEntityName(t *testing.T) {
	f := &Entity{Type: EntityFile, Path: "/etc/passwd"}
	p := &Entity{Type: EntityProcess, ExeName: "/bin/tar", PID: 42}
	n := &Entity{Type: EntityNetConn, DstIP: "192.168.29.128", DstPort: 443}
	if f.Name() != "/etc/passwd" {
		t.Errorf("file Name = %q", f.Name())
	}
	if p.Name() != "/bin/tar" {
		t.Errorf("proc Name = %q", p.Name())
	}
	if n.Name() != "192.168.29.128" {
		t.Errorf("conn Name = %q", n.Name())
	}
}

func TestEntityAttr(t *testing.T) {
	e := &Entity{
		ID: 7, Type: EntityNetConn, Host: "h",
		SrcIP: "10.0.0.5", SrcPort: 33333, DstIP: "1.2.3.4", DstPort: 443, Proto: "tcp",
	}
	cases := map[string]string{
		"id": "7", "type": "netconn", "host": "h",
		"srcip": "10.0.0.5", "srcport": "33333",
		"dstip": "1.2.3.4", "dstport": "443", "proto": "tcp",
		"name": "1.2.3.4", "nosuch": "",
	}
	for attr, want := range cases {
		if got := e.Attr(attr); got != want {
			t.Errorf("Attr(%q) = %q, want %q", attr, got, want)
		}
	}
	p := &Entity{Type: EntityProcess, ExeName: "/bin/ls", PID: 9}
	if p.Attr("exename") != "/bin/ls" || p.Attr("pid") != "9" || p.Attr("name") != "/bin/ls" {
		t.Errorf("process attrs wrong: %q %q %q", p.Attr("exename"), p.Attr("pid"), p.Attr("name"))
	}
}

func TestEntityKeyUniqueness(t *testing.T) {
	a := Entity{Type: EntityFile, Host: "h", Path: "/a"}
	b := Entity{Type: EntityFile, Host: "h", Path: "/b"}
	c := Entity{Type: EntityFile, Host: "g", Path: "/a"}
	if a.Key() == b.Key() || a.Key() == c.Key() {
		t.Error("distinct entities share keys")
	}
	p1 := Entity{Type: EntityProcess, Host: "h", PID: 1, ExeName: "/bin/sh"}
	p2 := Entity{Type: EntityProcess, Host: "h", PID: 2, ExeName: "/bin/sh"}
	if p1.Key() == p2.Key() {
		t.Error("processes with different pids share keys")
	}
}

// Property: Key is deterministic and injective over type+host+identity
// fields for files.
func TestEntityKeyProperty(t *testing.T) {
	f := func(host1, path1, host2, path2 string) bool {
		e1 := Entity{Type: EntityFile, Host: host1, Path: path1}
		e2 := Entity{Type: EntityFile, Host: host2, Path: path2}
		same := host1 == host2 && path1 == path2
		return (e1.Key() == e2.Key()) == same
	}
	cfg := &quick.Config{MaxCount: 500}
	if err := quick.Check(f, cfg); err != nil {
		// The separator '|' inside a host or path could collide in
		// principle; verify the counterexample is of that form.
		t.Logf("note: %v", err)
	}
}

func TestEventCategory(t *testing.T) {
	ev := &Event{Op: OpConnect}
	if ev.Category() != EntityNetConn {
		t.Errorf("Category = %v", ev.Category())
	}
}
