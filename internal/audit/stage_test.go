package audit

import "testing"

func stageRecords() []Record {
	return []Record{
		{StartNS: 1, EndNS: 2, Host: "h", PID: 10, Exe: "/bin/tar",
			Op: OpRead, ObjType: EntityFile, ObjSpec: "/etc/passwd", Amount: 100},
		{StartNS: 3, EndNS: 4, Host: "h", PID: 10, Exe: "/bin/tar",
			Op: OpWrite, ObjType: EntityFile, ObjSpec: "/tmp/upload.tar", Amount: 200},
		{StartNS: 5, EndNS: 6, Host: "h", PID: 10, Exe: "/bin/tar",
			Op: OpConnect, ObjType: EntityNetConn, ObjSpec: "10.0.0.1:1234->203.0.113.9:443/tcp"},
	}
}

// Stage resolves a batch without publishing anything; Commit then makes
// it visible with the IDs Stage assigned.
func TestParserStageCommit(t *testing.T) {
	p := NewParser()
	// Pre-intern the process so Stage must dedup against published state.
	if _, err := p.Add(stageRecords()[0]); err != nil {
		t.Fatal(err)
	}
	entsBefore, evtsBefore := len(p.Entities()), len(p.Events())

	sb, err := p.Stage(stageRecords())
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Entities()) != entsBefore || len(p.Events()) != evtsBefore {
		t.Fatalf("Stage mutated the parser: %d/%d entities/events, had %d/%d",
			len(p.Entities()), len(p.Events()), entsBefore, evtsBefore)
	}
	// The process and /etc/passwd are already published; only the tar
	// file and the netconn are new. All three events resolve.
	if len(sb.NewEntities) != 2 {
		t.Fatalf("staged %d new entities, want 2: %+v", len(sb.NewEntities), sb.NewEntities)
	}
	if len(sb.Events) != 3 {
		t.Fatalf("staged %d events, want 3", len(sb.Events))
	}
	// Staged records interning the same entity twice share one staged ID.
	if sb.Events[0].SrcID != sb.Events[1].SrcID {
		t.Fatalf("staged process split: %d vs %d", sb.Events[0].SrcID, sb.Events[1].SrcID)
	}

	p.Commit(sb)
	if len(p.Entities()) != entsBefore+2 || len(p.Events()) != evtsBefore+3 {
		t.Fatalf("after Commit: %d/%d entities/events, want %d/%d",
			len(p.Entities()), len(p.Events()), entsBefore+2, evtsBefore+3)
	}
	for _, e := range sb.NewEntities {
		if p.EntityByID(e.ID) != e {
			t.Fatalf("committed entity %d not resolvable by ID", e.ID)
		}
	}
	// A later Add must continue past the committed IDs, not reuse them.
	ev, err := p.Add(Record{StartNS: 7, EndNS: 8, Host: "h", PID: 99, Exe: "/bin/sh",
		Op: OpRead, ObjType: EntityFile, ObjSpec: "/etc/hosts", Amount: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ev.ID != sb.Events[2].ID+1 {
		t.Fatalf("post-commit event ID %d, want %d", ev.ID, sb.Events[2].ID+1)
	}
}

// An unresolvable record fails the whole Stage and publishes nothing.
func TestParserStageError(t *testing.T) {
	p := NewParser()
	recs := stageRecords()
	recs[1].ObjType = EntityProcess
	recs[1].ObjSpec = "not-a-proc-spec"
	if _, err := p.Stage(recs); err == nil {
		t.Fatal("Stage accepted a malformed proc spec")
	}
	if len(p.Entities()) != 0 || len(p.Events()) != 0 {
		t.Fatalf("failed Stage left state: %d entities, %d events",
			len(p.Entities()), len(p.Events()))
	}
}

// Restore bulk-loads recovered state and moves the ID counters past it,
// so post-recovery ingest never collides with replayed IDs.
func TestParserRestore(t *testing.T) {
	ref := NewParser()
	for _, r := range stageRecords() {
		if _, err := ref.Add(r); err != nil {
			t.Fatal(err)
		}
	}

	p := NewParser()
	p.Restore(ref.Entities(), ref.Events())
	if len(p.Entities()) != len(ref.Entities()) || len(p.Events()) != len(ref.Events()) {
		t.Fatalf("restored %d/%d entities/events, want %d/%d",
			len(p.Entities()), len(p.Events()), len(ref.Entities()), len(ref.Events()))
	}
	for _, e := range ref.Entities() {
		if got := p.EntityByID(e.ID); got == nil || got.Key() != e.Key() {
			t.Fatalf("entity %d not restored: %+v", e.ID, got)
		}
	}
	// The same process re-ingested must dedup against restored entities,
	// and fresh IDs must start past the restored maximum.
	ev, err := p.Add(stageRecords()[0])
	if err != nil {
		t.Fatal(err)
	}
	if ev.SrcID != ref.Events()[0].SrcID {
		t.Fatalf("restored process not deduped: %d vs %d", ev.SrcID, ref.Events()[0].SrcID)
	}
	maxEvt := ref.Events()[len(ref.Events())-1].ID
	if ev.ID != maxEvt+1 {
		t.Fatalf("post-restore event ID %d, want %d", ev.ID, maxEvt+1)
	}
}
