package audit

import (
	"strings"
	"testing"
)

// FuzzParseRecords: the audit log parser must never panic, every record
// it returns must validate (ParseRecords promises fully validated
// batches), and accepted records must round-trip through FormatRecord.
// Seeds mirror the hand-written audit trails in examples/ (quickstart's
// exfiltration trace) in the tab-separated line format, plus malformed
// lines, comments, and multi-line batches.
func FuzzParseRecords(f *testing.F) {
	seeds := []string{
		// examples/quickstart records, rendered as log lines.
		"100\t110\tweb1\t41\t/bin/bash\tread\tfile\t/etc/passwd\t2949",
		"200\t210\tweb1\t41\t/bin/bash\tconnect\tnetconn\t10.0.0.5:40000->203.0.113.7:443/tcp\t2949",
		"150\t160\tweb1\t77\t/usr/sbin/sshd\tread\tfile\t/etc/passwd\t2949",
		// Process and fork-style objects.
		"300\t310\thost1\t9\t/usr/sbin/apache2\tfork\tprocess\t10:/bin/bash\t0",
		// Multi-line batch with comments and blanks.
		"# comment\n\n1\t2\th\t3\t/bin/tar\tread\tfile\t/tmp/x\t4\n5\t6\th\t7\t/bin/tar\twrite\tfile\t/tmp/y\t8",
		// Malformed: wrong arity, bad numbers, bad specs.
		"1\t2\t3",
		"x\t2\th\t3\t/bin/tar\tread\tfile\t/tmp/x\t4",
		"1\t2\th\t3\t/bin/tar\tread\tnetconn\tnot-a-conn-spec\t4",
		"1\t2\th\t3\t/bin/tar\tfrobnicate\tfile\t/tmp/x\t4",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		for _, lenient := range []bool{false, true} {
			recs, errs, err := ParseRecords(strings.NewReader(src), lenient)
			if err != nil {
				if lenient {
					t.Fatalf("lenient mode returned a fatal parse error: %v\ninput: %q", err, src)
				}
				continue
			}
			if !lenient && len(errs) != 0 {
				t.Fatalf("strict mode returned per-line errors: %v", errs)
			}
			for _, r := range recs {
				if verr := r.Validate(); verr != nil {
					t.Fatalf("ParseRecords returned an invalid record %+v: %v\ninput: %q", r, verr, src)
				}
				// Round-trip: a formatted record must re-parse to itself.
				// (ParseRecord trims surrounding space from fields, so
				// records whose parsed fields carry no tabs/newlines must
				// survive exactly.)
				line := FormatRecord(r)
				r2, perr := ParseRecord(line)
				if perr != nil {
					t.Fatalf("FormatRecord output does not re-parse: %v\nline: %q", perr, line)
				}
				if r2 != r {
					t.Fatalf("record round-trip mismatch:\n in: %+v\nout: %+v\nline: %q", r, r2, line)
				}
			}
		}
	})
}
