package audit

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestRecordRoundTrip(t *testing.T) {
	recs := []Record{
		{StartNS: 100, EndNS: 200, Host: "h1", PID: 42, Exe: "/bin/tar",
			Op: OpRead, ObjType: EntityFile, ObjSpec: "/etc/passwd", Amount: 2949},
		{StartNS: 5, EndNS: 5, Host: "web", PID: 1, Exe: "/usr/sbin/apache2",
			Op: OpFork, ObjType: EntityProcess, ObjSpec: ProcSpec(43, "/bin/bash")},
		{StartNS: 9, EndNS: 10, Host: "h", PID: 7, Exe: "/usr/bin/curl",
			Op: OpConnect, ObjType: EntityNetConn,
			ObjSpec: ConnSpec("10.0.0.5", 44321, "192.168.29.128", 443, "tcp"), Amount: 4400},
	}
	for _, want := range recs {
		line := FormatRecord(want)
		got, err := ParseRecord(line)
		if err != nil {
			t.Fatalf("ParseRecord(%q): %v", line, err)
		}
		if got != want {
			t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, want)
		}
	}
}

func TestParseRecordErrors(t *testing.T) {
	bad := []string{
		"",
		"1\t2\th\t1\t/bin/sh\tread\tfile",                                 // too few fields
		"x\t2\th\t1\t/bin/sh\tread\tfile\t/a\t0",                          // bad start
		"1\tx\th\t1\t/bin/sh\tread\tfile\t/a\t0",                          // bad end
		"5\t2\th\t1\t/bin/sh\tread\tfile\t/a\t0",                          // end < start
		"1\t2\th\tx\t/bin/sh\tread\tfile\t/a\t0",                          // bad pid
		"1\t2\th\t1\t/bin/sh\tlevitate\tfile\t/a\t0",                      // bad op
		"1\t2\th\t1\t/bin/sh\tread\tblob\t/a\t0",                          // bad objtype
		"1\t2\th\t1\t/bin/sh\tread\tnetconn\t1.2.3.4:1->2.2.2.2:2/tcp\t0", // op/objtype mismatch
		"1\t2\th\t1\t/bin/sh\tread\tfile\t\t0",                            // empty spec
		"1\t2\th\t1\t/bin/sh\tread\tfile\t/a\tz",                          // bad amount
	}
	for _, line := range bad {
		if _, err := ParseRecord(line); err == nil {
			t.Errorf("ParseRecord(%q) should fail", line)
		}
	}
}

func TestProcSpecRoundTrip(t *testing.T) {
	pid, exe, err := parseProcSpec(ProcSpec(42, "/bin/bash"))
	if err != nil || pid != 42 || exe != "/bin/bash" {
		t.Fatalf("got %d %q %v", pid, exe, err)
	}
	for _, bad := range []string{"", "42", ":/bin/sh", "42:", "x:/bin/sh"} {
		if _, _, err := parseProcSpec(bad); err == nil {
			t.Errorf("parseProcSpec(%q) should fail", bad)
		}
	}
}

func TestConnSpecRoundTrip(t *testing.T) {
	spec := ConnSpec("10.0.0.5", 44321, "192.168.29.128", 443, "udp")
	sip, sport, dip, dport, proto, err := parseConnSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	if sip != "10.0.0.5" || sport != 44321 || dip != "192.168.29.128" || dport != 443 || proto != "udp" {
		t.Errorf("got %s:%d->%s:%d/%s", sip, sport, dip, dport, proto)
	}
	// Default protocol.
	_, _, _, _, proto, err = parseConnSpec("1.1.1.1:1->2.2.2.2:2")
	if err != nil || proto != "tcp" {
		t.Errorf("default proto: %q, %v", proto, err)
	}
	for _, bad := range []string{"", "1.1.1.1:1", "1.1.1.1:1->2.2.2.2", "a->b", "1.1.1.1:99999->2.2.2.2:2"} {
		if _, _, _, _, _, err := parseConnSpec(bad); err == nil {
			t.Errorf("parseConnSpec(%q) should fail", bad)
		}
	}
}

// Property: FormatRecord/ParseRecord round-trips for arbitrary valid file
// records whose fields contain no tabs or newlines.
func TestRecordRoundTripProperty(t *testing.T) {
	clean := func(s string) string {
		s = strings.Map(func(r rune) rune {
			if r == '\t' || r == '\n' || r == '\r' {
				return -1
			}
			return r
		}, s)
		if s == "" {
			return "x"
		}
		return s
	}
	f := func(start int64, durNS uint16, host, exe, path string, pid uint16, amount int64) bool {
		r := Record{
			StartNS: start, EndNS: start + int64(durNS),
			Host: clean(host), PID: int(pid), Exe: clean(exe),
			Op: OpWrite, ObjType: EntityFile, ObjSpec: clean(path), Amount: amount,
		}
		got, err := ParseRecord(FormatRecord(r))
		return err == nil && got == r
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
