package gen

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/audit"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Seed: 7, BenignEvents: 500, Attacks: []Attack{{Kind: AttackDataLeakage, At: 10 * time.Minute}}}
	w1 := Generate(cfg)
	w2 := Generate(cfg)
	if len(w1.Records) != len(w2.Records) {
		t.Fatalf("nondeterministic record count: %d vs %d", len(w1.Records), len(w2.Records))
	}
	for i := range w1.Records {
		if w1.Records[i] != w2.Records[i] {
			t.Fatalf("record %d differs", i)
		}
	}
}

func TestGenerateSortedByTime(t *testing.T) {
	w := Generate(Config{Seed: 1, BenignEvents: 1000,
		Attacks: []Attack{{Kind: AttackDataLeakage, At: 5 * time.Minute}, {Kind: AttackPasswordCrack, At: 30 * time.Minute}}})
	for i := 1; i < len(w.Records); i++ {
		if w.Records[i].StartNS < w.Records[i-1].StartNS {
			t.Fatalf("records not sorted at %d", i)
		}
	}
}

func TestGenerateBenignVolume(t *testing.T) {
	w := Generate(Config{Seed: 3, BenignEvents: 2000})
	if len(w.Records) < 2000 {
		t.Errorf("want >= 2000 benign records, got %d", len(w.Records))
	}
	// No attacks scheduled: no ground truth.
	if len(w.Truth) != 0 {
		t.Errorf("no attacks scheduled but got %d truth steps", len(w.Truth))
	}
}

func TestDataLeakageGroundTruth(t *testing.T) {
	w := Generate(Config{Seed: 1, Attacks: []Attack{{Kind: AttackDataLeakage}}})
	if len(w.Truth) != 8 {
		t.Fatalf("data leakage should have 8 ground-truth steps, got %d", len(w.Truth))
	}
	// Verify the Fig. 2 chain appears in order.
	wantOps := []audit.OpType{
		audit.OpRead, audit.OpWrite, audit.OpRead, audit.OpWrite,
		audit.OpRead, audit.OpWrite, audit.OpRead, audit.OpConnect,
	}
	wantSpecs := []string{
		"/etc/passwd", "/tmp/upload.tar", "/tmp/upload.tar", "/tmp/upload.tar.bz2",
		"/tmp/upload.tar.bz2", "/tmp/upload", "/tmp/upload", "",
	}
	for i, st := range w.Truth {
		if st.Step != i+1 {
			t.Errorf("step %d out of order: %d", i, st.Step)
		}
		if st.Record.Op != wantOps[i] {
			t.Errorf("step %d op = %v, want %v", i+1, st.Record.Op, wantOps[i])
		}
		if wantSpecs[i] != "" && st.Record.ObjSpec != wantSpecs[i] {
			t.Errorf("step %d objspec = %q, want %q", i+1, st.Record.ObjSpec, wantSpecs[i])
		}
	}
	last := w.Truth[7].Record
	if !strings.Contains(last.ObjSpec, C2IP) {
		t.Errorf("exfil step should target C2 %s, got %q", C2IP, last.ObjSpec)
	}
	// Temporal order of truth steps.
	for i := 1; i < len(w.Truth); i++ {
		if w.Truth[i].Record.StartNS <= w.Truth[i-1].Record.StartNS {
			t.Errorf("truth step %d not after step %d", i+1, i)
		}
	}
}

func TestPasswordCrackGroundTruth(t *testing.T) {
	w := Generate(Config{Seed: 1, Attacks: []Attack{{Kind: AttackPasswordCrack}}})
	if len(w.Truth) != 10 {
		t.Fatalf("password crack should have 10 ground-truth steps, got %d", len(w.Truth))
	}
	var sawShadow, sawC2 bool
	for _, st := range w.Truth {
		if st.Record.ObjSpec == "/etc/shadow" && st.Record.Op == audit.OpRead {
			sawShadow = true
		}
		if strings.Contains(st.Record.ObjSpec, C2IP) {
			sawC2 = true
		}
	}
	if !sawShadow {
		t.Error("missing shadow-file read step")
	}
	if !sawC2 {
		t.Error("missing C2 contact step")
	}
}

func TestWorkloadRecordsParseable(t *testing.T) {
	w := Generate(Config{Seed: 9, BenignEvents: 800,
		Attacks: []Attack{{Kind: AttackDataLeakage, At: time.Minute}, {Kind: AttackPasswordCrack, At: 2 * time.Minute}}})
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	p := audit.NewParser()
	if err := p.ParseStream(&buf); err != nil {
		t.Fatalf("generated log does not parse: %v", err)
	}
	if len(p.Events()) != len(w.Records) {
		t.Errorf("parsed %d events, want %d", len(p.Events()), len(w.Records))
	}
}

func TestBenignNoiseTouchesSensitiveFiles(t *testing.T) {
	// The benign pool must include /etc/passwd reads so hunts face
	// false-positive pressure.
	w := Generate(Config{Seed: 2, BenignEvents: 3000})
	var passwd bool
	for _, r := range w.Records {
		if r.ObjSpec == "/etc/passwd" && r.Op == audit.OpRead {
			passwd = true
			break
		}
	}
	if !passwd {
		t.Error("benign workload should include /etc/passwd reads")
	}
}
