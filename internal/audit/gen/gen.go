// Package gen simulates an audited enterprise host. It substitutes for the
// live Sysdig deployment in the paper's demonstration: it produces
// Sysdig-style audit records for realistic benign background activity
// (web browsing, software builds, cron jobs, package updates, sshd logins,
// log rotation) interleaved with scripted multi-stage attacks — the two
// attacks the paper performs in its demo (Password Cracking after
// Shellshock Penetration, and Data Leakage after Shellshock Penetration).
//
// Generation is deterministic for a given Config.Seed, and every attack
// emits ground-truth labels so that hunting recall can be evaluated.
package gen

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"

	"repro/internal/audit"
)

// AttackKind selects one of the scripted multi-stage attacks.
type AttackKind int

// The two attacks performed in the paper's demonstration (§III).
const (
	// AttackDataLeakage is "Data Leakage After Shellshock Penetration":
	// the attacker scans the file system, scrapes files into a single
	// compressed and encrypted file, and transfers it to the C2 server.
	// Its final stage is exactly the Fig. 2 data-leakage case.
	AttackDataLeakage AttackKind = iota + 1
	// AttackPasswordCrack is "Password Cracking After Shellshock
	// Penetration": the attacker downloads an image from a cloud service
	// whose EXIF metadata encodes the C2 address, downloads a password
	// cracker from C2, and runs it against the shadow file.
	AttackPasswordCrack
)

// String names the attack.
func (k AttackKind) String() string {
	switch k {
	case AttackDataLeakage:
		return "data-leakage"
	case AttackPasswordCrack:
		return "password-crack"
	default:
		return fmt.Sprintf("attack(%d)", int(k))
	}
}

// Attack schedules one attack instance within the generated workload.
type Attack struct {
	Kind AttackKind
	// At is the offset from Config.Start at which the attack begins.
	At time.Duration
}

// Config parameterises a simulated host workload.
type Config struct {
	Seed  int64
	Host  string
	Start time.Time
	// Duration is the wall-clock span covered by the workload.
	Duration time.Duration
	// BenignEvents is the approximate number of benign records generated.
	BenignEvents int
	// Attacks lists the attack instances to inject.
	Attacks []Attack
}

// GroundTruthStep records one attack step for evaluation: the record that
// implements it and the attack it belongs to.
type GroundTruthStep struct {
	Attack AttackKind
	Step   int
	Desc   string
	Record audit.Record
}

// Workload is a fully generated host workload.
type Workload struct {
	Records []audit.Record
	// Truth holds the ground-truth attack steps in order.
	Truth []GroundTruthStep
}

// WriteTo writes the workload as Sysdig-style log lines.
func (w *Workload) WriteTo(out io.Writer) (int64, error) {
	var n int64
	for _, r := range w.Records {
		m, err := io.WriteString(out, audit.FormatRecord(r)+"\n")
		n += int64(m)
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// C2IP is the command-and-control address used by both scripted attacks.
// It matches the paper's running example (Fig. 2).
const C2IP = "192.168.29.128"

// DropboxIP stands in for the cloud service the password-crack attack
// contacts first.
const DropboxIP = "162.125.248.18"

type generator struct {
	cfg     Config
	rng     *rand.Rand
	now     time.Time
	recs    []audit.Record
	truth   []GroundTruthStep
	nextPID int
	localIP string
}

// Generate produces a deterministic workload for the given config.
func Generate(cfg Config) *Workload {
	if cfg.Host == "" {
		cfg.Host = "host1"
	}
	if cfg.Start.IsZero() {
		cfg.Start = time.Date(2021, 2, 25, 9, 0, 0, 0, time.UTC)
	}
	if cfg.Duration <= 0 {
		cfg.Duration = time.Hour
	}
	if cfg.BenignEvents < 0 {
		cfg.BenignEvents = 0
	}
	g := &generator{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		now:     cfg.Start,
		nextPID: 1000,
		localIP: "10.0.0.5",
	}
	g.benign(cfg.BenignEvents)
	for _, a := range cfg.Attacks {
		at := cfg.Start.Add(a.At)
		switch a.Kind {
		case AttackDataLeakage:
			g.dataLeakage(at)
		case AttackPasswordCrack:
			g.passwordCrack(at)
		}
	}
	sort.SliceStable(g.recs, func(i, j int) bool { return g.recs[i].StartNS < g.recs[j].StartNS })
	return &Workload{Records: g.recs, Truth: g.truth}
}

func (g *generator) pid() int {
	g.nextPID++
	return g.nextPID
}

// emit appends a record with the given timing.
func (g *generator) emit(t time.Time, pid int, exe string, op audit.OpType, objType audit.EntityType, objSpec string, amount int64) audit.Record {
	dur := time.Duration(1+g.rng.Intn(40)) * time.Millisecond
	r := audit.Record{
		StartNS: t.UnixNano(),
		EndNS:   t.Add(dur).UnixNano(),
		Host:    g.cfg.Host,
		PID:     pid,
		Exe:     exe,
		Op:      op,
		ObjType: objType,
		ObjSpec: objSpec,
		Amount:  amount,
	}
	g.recs = append(g.recs, r)
	return r
}

func (g *generator) step(kind AttackKind, step int, desc string, r audit.Record) {
	g.truth = append(g.truth, GroundTruthStep{Attack: kind, Step: step, Desc: desc, Record: r})
}

func (g *generator) ephemeralPort() int { return 32768 + g.rng.Intn(28000) }

func (g *generator) conn(dstIP string, dstPort int) string {
	return audit.ConnSpec(g.localIP, g.ephemeralPort(), dstIP, dstPort, "tcp")
}

// randTime picks a uniform time within the workload span.
func (g *generator) randTime() time.Time {
	off := time.Duration(g.rng.Int63n(int64(g.cfg.Duration)))
	return g.cfg.Start.Add(off)
}

// ---------------------------------------------------------------------------
// Benign background behaviours.

var benignSites = []struct {
	ip   string
	port int
}{
	{"142.250.72.196", 443}, {"151.101.1.140", 443}, {"104.16.133.229", 443},
	{"13.107.42.14", 443}, {"185.199.108.153", 443}, {"172.217.14.206", 80},
}

var benignDocs = []string{
	"/home/alice/notes.txt", "/home/alice/report.docx", "/home/bob/todo.md",
	"/home/alice/slides.pptx", "/home/bob/data.csv", "/home/alice/draft.tex",
}

var benignSources = []string{
	"/home/bob/proj/main.c", "/home/bob/proj/util.c", "/home/bob/proj/net.c",
	"/home/bob/proj/parse.c", "/home/bob/proj/io.c",
}

// benign emits approximately n benign records drawn from a pool of
// multi-record behaviours.
func (g *generator) benign(n int) {
	behaviours := []func(time.Time) int{
		g.benignBrowse,
		g.benignBuild,
		g.benignCron,
		g.benignSSH,
		g.benignAptUpdate,
		g.benignLogRotate,
		g.benignEditor,
		g.benignBackup,
		g.benignLogin,
	}
	emitted := 0
	for emitted < n {
		b := behaviours[g.rng.Intn(len(behaviours))]
		emitted += b(g.randTime())
	}
}

// benignBrowse: a browser connects to a site and writes cache files.
func (g *generator) benignBrowse(t time.Time) int {
	pid := g.pid()
	site := benignSites[g.rng.Intn(len(benignSites))]
	g.emit(t, pid, "/usr/bin/chrome", audit.OpConnect, audit.EntityNetConn, g.conn(site.ip, site.port), 0)
	g.emit(t.Add(50*time.Millisecond), pid, "/usr/bin/chrome", audit.OpRecv, audit.EntityNetConn, g.conn(site.ip, site.port), int64(2048+g.rng.Intn(65536)))
	cache := fmt.Sprintf("/home/alice/.cache/chrome/f_%06d", g.rng.Intn(1000000))
	g.emit(t.Add(80*time.Millisecond), pid, "/usr/bin/chrome", audit.OpWrite, audit.EntityFile, cache, int64(1024+g.rng.Intn(32768)))
	return 3
}

// benignBuild: make forks gcc, which reads sources and writes objects.
func (g *generator) benignBuild(t time.Time) int {
	makePID, gccPID := g.pid(), g.pid()
	g.emit(t, makePID, "/usr/bin/make", audit.OpFork, audit.EntityProcess, audit.ProcSpec(gccPID, "/usr/bin/gcc"), 0)
	cnt := 1
	for i := 0; i < 2+g.rng.Intn(3); i++ {
		src := benignSources[g.rng.Intn(len(benignSources))]
		g.emit(t.Add(time.Duration(100+i*150)*time.Millisecond), gccPID, "/usr/bin/gcc", audit.OpRead, audit.EntityFile, src, int64(4096+g.rng.Intn(16384)))
		g.emit(t.Add(time.Duration(170+i*150)*time.Millisecond), gccPID, "/usr/bin/gcc", audit.OpWrite, audit.EntityFile, src[:len(src)-2]+".o", int64(8192+g.rng.Intn(32768)))
		cnt += 2
	}
	return cnt
}

// benignCron: cron forks a maintenance script that touches temp files.
func (g *generator) benignCron(t time.Time) int {
	cronPID, shPID := g.pid(), g.pid()
	g.emit(t, cronPID, "/usr/sbin/cron", audit.OpFork, audit.EntityProcess, audit.ProcSpec(shPID, "/bin/sh"), 0)
	g.emit(t.Add(20*time.Millisecond), shPID, "/bin/sh", audit.OpRead, audit.EntityFile, "/etc/crontab", 512)
	g.emit(t.Add(60*time.Millisecond), shPID, "/bin/sh", audit.OpWrite, audit.EntityFile, fmt.Sprintf("/tmp/cron.%05d", g.rng.Intn(99999)), 128)
	return 3
}

// benignSSH: sshd accepts a connection and reads auth files. Includes a
// benign /etc/passwd read — deliberate false-positive pressure for the
// data-leakage hunt.
func (g *generator) benignSSH(t time.Time) int {
	pid := g.pid()
	peer := fmt.Sprintf("10.0.%d.%d", g.rng.Intn(256), 1+g.rng.Intn(254))
	g.emit(t, pid, "/usr/sbin/sshd", audit.OpAccept, audit.EntityNetConn,
		audit.ConnSpec(peer, g.ephemeralPort(), g.localIP, 22, "tcp"), 0)
	g.emit(t.Add(30*time.Millisecond), pid, "/usr/sbin/sshd", audit.OpRead, audit.EntityFile, "/etc/passwd", 2048)
	g.emit(t.Add(45*time.Millisecond), pid, "/usr/sbin/sshd", audit.OpRead, audit.EntityFile, "/etc/ssh/sshd_config", 4096)
	return 3
}

// benignAptUpdate: apt connects to a mirror and writes package lists.
func (g *generator) benignAptUpdate(t time.Time) int {
	pid := g.pid()
	g.emit(t, pid, "/usr/bin/apt", audit.OpConnect, audit.EntityNetConn, g.conn("91.189.91.39", 80), 0)
	g.emit(t.Add(200*time.Millisecond), pid, "/usr/bin/apt", audit.OpRecv, audit.EntityNetConn, g.conn("91.189.91.39", 80), int64(65536+g.rng.Intn(262144)))
	g.emit(t.Add(400*time.Millisecond), pid, "/usr/bin/apt", audit.OpWrite, audit.EntityFile, "/var/lib/apt/lists/archive_dists_InRelease", 131072)
	return 3
}

// benignLogRotate: logrotate reads a log, writes the rotated copy, and
// truncates. Exercises rename/delete operations.
func (g *generator) benignLogRotate(t time.Time) int {
	pid := g.pid()
	g.emit(t, pid, "/usr/sbin/logrotate", audit.OpRead, audit.EntityFile, "/var/log/syslog", 1048576)
	g.emit(t.Add(100*time.Millisecond), pid, "/usr/sbin/logrotate", audit.OpRename, audit.EntityFile, "/var/log/syslog.1", 0)
	g.emit(t.Add(150*time.Millisecond), pid, "/usr/sbin/logrotate", audit.OpDelete, audit.EntityFile, "/var/log/syslog.7.gz", 0)
	return 3
}

// benignEditor: an editor reads and writes user documents.
func (g *generator) benignEditor(t time.Time) int {
	pid := g.pid()
	doc := benignDocs[g.rng.Intn(len(benignDocs))]
	g.emit(t, pid, "/usr/bin/vim", audit.OpRead, audit.EntityFile, doc, int64(1024+g.rng.Intn(65536)))
	g.emit(t.Add(5*time.Second), pid, "/usr/bin/vim", audit.OpWrite, audit.EntityFile, doc, int64(1024+g.rng.Intn(65536)))
	return 2
}

// benignBackup: a backup tool tars home directories — benign use of
// /bin/tar that stresses precision of the data-leakage hunt.
func (g *generator) benignBackup(t time.Time) int {
	pid := g.pid()
	doc := benignDocs[g.rng.Intn(len(benignDocs))]
	g.emit(t, pid, "/bin/tar", audit.OpRead, audit.EntityFile, doc, 65536)
	g.emit(t.Add(300*time.Millisecond), pid, "/bin/tar", audit.OpWrite, audit.EntityFile, "/backup/home.tar", 65536)
	return 2
}

// benignLogin: login reads /etc/passwd and /etc/shadow legitimately.
func (g *generator) benignLogin(t time.Time) int {
	pid := g.pid()
	g.emit(t, pid, "/bin/login", audit.OpRead, audit.EntityFile, "/etc/passwd", 2048)
	g.emit(t.Add(15*time.Millisecond), pid, "/bin/login", audit.OpRead, audit.EntityFile, "/etc/shadow", 1024)
	return 2
}

// ---------------------------------------------------------------------------
// Attack scripts.

// dataLeakage emits the full "Data Leakage After Shellshock Penetration"
// attack. Stages: shellshock penetration, file-system scan, then the Fig. 2
// leakage chain (tar → bzip2 → gpg → curl → C2).
func (g *generator) dataLeakage(t time.Time) {
	const k = AttackDataLeakage
	apachePID, bashPID := g.pid(), g.pid()

	// Shellshock penetration: apache2 handles the crafted request and
	// forks a shell.
	g.emit(t, apachePID, "/usr/sbin/apache2", audit.OpAccept, audit.EntityNetConn,
		audit.ConnSpec(C2IP, g.ephemeralPort(), g.localIP, 80, "tcp"), 0)
	g.emit(t.Add(40*time.Millisecond), apachePID, "/usr/sbin/apache2", audit.OpFork, audit.EntityProcess, audit.ProcSpec(bashPID, "/bin/bash"), 0)

	// File-system scan: the shell enumerates interesting files.
	scan := []string{
		"/home/alice/notes.txt", "/home/alice/report.docx", "/home/bob/data.csv",
		"/etc/hosts", "/home/alice/.ssh/id_rsa", "/home/bob/.bash_history",
	}
	for i, f := range scan {
		g.emit(t.Add(time.Duration(200+60*i)*time.Millisecond), bashPID, "/bin/bash", audit.OpRead, audit.EntityFile, f, int64(512+g.rng.Intn(8192)))
	}

	// Leakage chain: the Fig. 2 eight-step behavior, with the shell
	// forking each utility (intermediate forks are the reason the paper's
	// path-pattern syntax exists).
	base := t.Add(1 * time.Second)
	tarPID := g.pid()
	g.emit(base, bashPID, "/bin/bash", audit.OpFork, audit.EntityProcess, audit.ProcSpec(tarPID, "/bin/tar"), 0)
	g.step(k, 1, "tar reads user credentials",
		g.emit(base.Add(50*time.Millisecond), tarPID, "/bin/tar", audit.OpRead, audit.EntityFile, "/etc/passwd", 2949))
	g.step(k, 2, "tar writes gathered info",
		g.emit(base.Add(120*time.Millisecond), tarPID, "/bin/tar", audit.OpWrite, audit.EntityFile, "/tmp/upload.tar", 10240))

	bzipPID := g.pid()
	g.emit(base.Add(300*time.Millisecond), bashPID, "/bin/bash", audit.OpFork, audit.EntityProcess, audit.ProcSpec(bzipPID, "/bin/bzip2"), 0)
	g.step(k, 3, "bzip2 reads tar file",
		g.emit(base.Add(350*time.Millisecond), bzipPID, "/bin/bzip2", audit.OpRead, audit.EntityFile, "/tmp/upload.tar", 10240))
	g.step(k, 4, "bzip2 writes compressed file",
		g.emit(base.Add(420*time.Millisecond), bzipPID, "/bin/bzip2", audit.OpWrite, audit.EntityFile, "/tmp/upload.tar.bz2", 4180))

	gpgPID := g.pid()
	g.emit(base.Add(600*time.Millisecond), bashPID, "/bin/bash", audit.OpFork, audit.EntityProcess, audit.ProcSpec(gpgPID, "/usr/bin/gpg"), 0)
	g.step(k, 5, "gpg reads compressed file",
		g.emit(base.Add(650*time.Millisecond), gpgPID, "/usr/bin/gpg", audit.OpRead, audit.EntityFile, "/tmp/upload.tar.bz2", 4180))
	g.step(k, 6, "gpg writes encrypted file",
		g.emit(base.Add(720*time.Millisecond), gpgPID, "/usr/bin/gpg", audit.OpWrite, audit.EntityFile, "/tmp/upload", 4400))

	curlPID := g.pid()
	g.emit(base.Add(900*time.Millisecond), bashPID, "/bin/bash", audit.OpFork, audit.EntityProcess, audit.ProcSpec(curlPID, "/usr/bin/curl"), 0)
	g.step(k, 7, "curl reads encrypted file",
		g.emit(base.Add(950*time.Millisecond), curlPID, "/usr/bin/curl", audit.OpRead, audit.EntityFile, "/tmp/upload", 4400))
	g.step(k, 8, "curl exfiltrates to C2",
		g.emit(base.Add(1020*time.Millisecond), curlPID, "/usr/bin/curl", audit.OpConnect, audit.EntityNetConn, g.conn(C2IP, 443), 4400))
}

// passwordCrack emits the full "Password Cracking After Shellshock
// Penetration" attack.
func (g *generator) passwordCrack(t time.Time) {
	const k = AttackPasswordCrack
	apachePID, bashPID := g.pid(), g.pid()

	g.emit(t, apachePID, "/usr/sbin/apache2", audit.OpAccept, audit.EntityNetConn,
		audit.ConnSpec(C2IP, g.ephemeralPort(), g.localIP, 80, "tcp"), 0)
	g.emit(t.Add(40*time.Millisecond), apachePID, "/usr/sbin/apache2", audit.OpFork, audit.EntityProcess, audit.ProcSpec(bashPID, "/bin/bash"), 0)

	// Fetch the image with the encoded C2 address from the cloud service.
	wgetPID := g.pid()
	g.emit(t.Add(200*time.Millisecond), bashPID, "/bin/bash", audit.OpFork, audit.EntityProcess, audit.ProcSpec(wgetPID, "/usr/bin/wget"), 0)
	g.step(k, 1, "wget connects to cloud service",
		g.emit(t.Add(250*time.Millisecond), wgetPID, "/usr/bin/wget", audit.OpConnect, audit.EntityNetConn, g.conn(DropboxIP, 443), 0))
	g.step(k, 2, "wget writes downloaded image",
		g.emit(t.Add(420*time.Millisecond), wgetPID, "/usr/bin/wget", audit.OpWrite, audit.EntityFile, "/tmp/logo.jpg", 183250))

	// Decode the EXIF metadata to recover the C2 address.
	exifPID := g.pid()
	g.emit(t.Add(600*time.Millisecond), bashPID, "/bin/bash", audit.OpFork, audit.EntityProcess, audit.ProcSpec(exifPID, "/usr/bin/exiftool"), 0)
	g.step(k, 3, "exiftool reads image metadata",
		g.emit(t.Add(650*time.Millisecond), exifPID, "/usr/bin/exiftool", audit.OpRead, audit.EntityFile, "/tmp/logo.jpg", 183250))

	// Download the password cracker from C2 (the attacker reuses the
	// same wget process via its control shell).
	g.step(k, 4, "wget connects to C2",
		g.emit(t.Add(950*time.Millisecond), wgetPID, "/usr/bin/wget", audit.OpConnect, audit.EntityNetConn, g.conn(C2IP, 80), 0))
	g.step(k, 5, "wget writes password cracker",
		g.emit(t.Add(1200*time.Millisecond), wgetPID, "/usr/bin/wget", audit.OpWrite, audit.EntityFile, "/tmp/cracker", 921600))

	// Make it executable and run it against the shadow file.
	g.step(k, 6, "bash chmods cracker",
		g.emit(t.Add(1400*time.Millisecond), bashPID, "/bin/bash", audit.OpChmod, audit.EntityFile, "/tmp/cracker", 0))
	crackPID := g.pid()
	g.step(k, 7, "bash forks cracker",
		g.emit(t.Add(1500*time.Millisecond), bashPID, "/bin/bash", audit.OpFork, audit.EntityProcess, audit.ProcSpec(crackPID, "/tmp/cracker"), 0))
	g.step(k, 8, "cracker reads shadow file",
		g.emit(t.Add(1600*time.Millisecond), crackPID, "/tmp/cracker", audit.OpRead, audit.EntityFile, "/etc/shadow", 1620))
	g.step(k, 9, "cracker writes cleartext passwords",
		g.emit(t.Add(9*time.Second), crackPID, "/tmp/cracker", audit.OpWrite, audit.EntityFile, "/tmp/passwords.txt", 840))
	g.step(k, 10, "cracker reports to C2",
		g.emit(t.Add(9500*time.Millisecond), crackPID, "/tmp/cracker", audit.OpConnect, audit.EntityNetConn, g.conn(C2IP, 443), 840))
}
