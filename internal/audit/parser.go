package audit

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Parser consumes raw audit log records and resolves them into deduplicated
// system entities and system events with stable IDs. It mirrors the log
// parsing stage of ThreatRaptor's data collection component: each record's
// subject process and object entity are canonicalised via Entity.Key, and
// new entities are assigned monotonically increasing IDs.
//
// A Parser is not safe for concurrent use.
type Parser struct {
	entities []*Entity
	byKey    map[string]*Entity
	events   []*Event
	nextEnt  int64
	nextEvt  int64

	// Errs collects recoverable per-line parse errors when Lenient is set.
	Errs []error
	// Lenient makes ParseStream skip malformed lines (recording the error
	// in Errs) instead of aborting.
	Lenient bool
}

// NewParser returns an empty Parser.
func NewParser() *Parser {
	return &Parser{
		byKey:   make(map[string]*Entity),
		nextEnt: 1,
		nextEvt: 1,
	}
}

// Entities returns all resolved entities in ID order.
func (p *Parser) Entities() []*Entity { return p.entities }

// Events returns all parsed events in arrival order.
func (p *Parser) Events() []*Event { return p.events }

// EntityByID returns the entity with the given ID, or nil.
func (p *Parser) EntityByID(id int64) *Entity {
	idx := id - 1
	if idx < 0 || idx >= int64(len(p.entities)) {
		return nil
	}
	return p.entities[idx]
}

// intern returns the canonical entity for e, assigning an ID if new.
func (p *Parser) intern(e Entity) *Entity {
	key := e.Key()
	if got, ok := p.byKey[key]; ok {
		return got
	}
	e.ID = p.nextEnt
	p.nextEnt++
	ent := &e
	p.byKey[key] = ent
	p.entities = append(p.entities, ent)
	return ent
}

// Add resolves one record into an event, interning its entities.
func (p *Parser) Add(r Record) (*Event, error) {
	subj := p.intern(Entity{
		Type:    EntityProcess,
		Host:    r.Host,
		ExeName: r.Exe,
		PID:     r.PID,
	})

	var obj *Entity
	switch r.ObjType {
	case EntityFile:
		obj = p.intern(Entity{Type: EntityFile, Host: r.Host, Path: r.ObjSpec})
	case EntityProcess:
		pid, exe, err := parseProcSpec(r.ObjSpec)
		if err != nil {
			return nil, err
		}
		obj = p.intern(Entity{Type: EntityProcess, Host: r.Host, ExeName: exe, PID: pid})
	case EntityNetConn:
		srcIP, srcPort, dstIP, dstPort, proto, err := parseConnSpec(r.ObjSpec)
		if err != nil {
			return nil, err
		}
		obj = p.intern(Entity{
			Type: EntityNetConn, Host: r.Host,
			SrcIP: srcIP, SrcPort: srcPort, DstIP: dstIP, DstPort: dstPort, Proto: proto,
		})
	default:
		return nil, fmt.Errorf("audit: record has invalid object type %v", r.ObjType)
	}

	ev := &Event{
		ID:        p.nextEvt,
		SrcID:     subj.ID,
		DstID:     obj.ID,
		Op:        r.Op,
		StartTime: r.StartNS,
		EndTime:   r.EndNS,
		Amount:    r.Amount,
		Host:      r.Host,
	}
	p.nextEvt++
	p.events = append(p.events, ev)
	return ev, nil
}

// ParseLine parses one log line and adds the resulting event.
func (p *Parser) ParseLine(line string) (*Event, error) {
	r, err := ParseRecord(line)
	if err != nil {
		return nil, err
	}
	return p.Add(r)
}

// ParseStream reads log lines from r until EOF. Blank lines and lines
// starting with '#' are skipped. In lenient mode, malformed lines are
// recorded in Errs and skipped; otherwise the first error aborts.
func (p *Parser) ParseStream(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if _, err := p.ParseLine(line); err != nil {
			err = fmt.Errorf("line %d: %w", lineno, err)
			if p.Lenient {
				p.Errs = append(p.Errs, err)
				continue
			}
			return err
		}
	}
	return sc.Err()
}
