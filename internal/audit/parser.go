package audit

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Parser consumes raw audit log records and resolves them into deduplicated
// system entities and system events with stable IDs. It mirrors the log
// parsing stage of ThreatRaptor's data collection component: each record's
// subject process and object entity are canonicalised via Entity.Key, and
// new entities are assigned monotonically increasing IDs.
//
// A Parser is safe for concurrent use: readers (Entities, Events,
// EntityByID) may run while records are added. The entity and event
// slices are append-only, so the snapshots the accessors return stay
// valid as later records arrive.
type Parser struct {
	mu       sync.RWMutex
	entities []*Entity
	byKey    map[string]*Entity
	events   []*Event
	nextEnt  int64
	nextEvt  int64

	// Errs collects recoverable per-line parse errors when Lenient is
	// set. ParseStream appends to it under mu; direct writes by callers
	// need their own serialization.
	Errs []error
	// Lenient makes ParseStream skip malformed lines (recording the error
	// in Errs) instead of aborting.
	Lenient bool
}

// NewParser returns an empty Parser.
func NewParser() *Parser {
	return &Parser{
		byKey:   make(map[string]*Entity),
		nextEnt: 1,
		nextEvt: 1,
	}
}

// Entities returns a snapshot of all resolved entities in ID order.
func (p *Parser) Entities() []*Entity {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.entities
}

// Events returns a snapshot of all parsed events in arrival order.
func (p *Parser) Events() []*Event {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.events
}

// EntityByID returns the entity with the given ID, or nil.
func (p *Parser) EntityByID(id int64) *Entity {
	p.mu.RLock()
	defer p.mu.RUnlock()
	idx := id - 1
	if idx < 0 || idx >= int64(len(p.entities)) {
		return nil
	}
	return p.entities[idx]
}

// intern returns the canonical entity for e, assigning an ID if new.
// The caller must hold mu.
func (p *Parser) intern(e Entity) *Entity {
	key := e.Key()
	if got, ok := p.byKey[key]; ok {
		return got
	}
	e.ID = p.nextEnt
	p.nextEnt++
	ent := &e
	p.byKey[key] = ent
	p.entities = append(p.entities, ent)
	return ent
}

// resolveRecord turns one record into an event via the given interning
// function (either the parser's own intern or a staging overlay), which
// must return a canonical entity with a stable ID.
func resolveRecord(r Record, nextEvt int64, intern func(Entity) *Entity) (*Event, error) {
	subj := intern(Entity{
		Type:    EntityProcess,
		Host:    r.Host,
		ExeName: r.Exe,
		PID:     r.PID,
	})

	var obj *Entity
	switch r.ObjType {
	case EntityFile:
		obj = intern(Entity{Type: EntityFile, Host: r.Host, Path: r.ObjSpec})
	case EntityProcess:
		pid, exe, err := parseProcSpec(r.ObjSpec)
		if err != nil {
			return nil, err
		}
		obj = intern(Entity{Type: EntityProcess, Host: r.Host, ExeName: exe, PID: pid})
	case EntityNetConn:
		srcIP, srcPort, dstIP, dstPort, proto, err := parseConnSpec(r.ObjSpec)
		if err != nil {
			return nil, err
		}
		obj = intern(Entity{
			Type: EntityNetConn, Host: r.Host,
			SrcIP: srcIP, SrcPort: srcPort, DstIP: dstIP, DstPort: dstPort, Proto: proto,
		})
	default:
		return nil, fmt.Errorf("audit: record has invalid object type %v", r.ObjType)
	}

	return &Event{
		ID:        nextEvt,
		SrcID:     subj.ID,
		DstID:     obj.ID,
		Op:        r.Op,
		StartTime: r.StartNS,
		EndTime:   r.EndNS,
		Amount:    r.Amount,
		Host:      r.Host,
	}, nil
}

// Add resolves one record into an event, interning its entities. It is
// safe for concurrent use, though concurrent adders see arbitrary
// interleaving of event IDs.
func (p *Parser) Add(r Record) (*Event, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	ev, err := resolveRecord(r, p.nextEvt, p.intern)
	if err != nil {
		return nil, err
	}
	p.nextEvt++
	p.events = append(p.events, ev)
	return ev, nil
}

// StagedBatch is a batch resolved by Stage but not yet published:
// NewEntities are the entities the batch would newly intern (IDs
// already assigned from the parser's counter) and Events the resolved
// events. Until Commit, none of it is visible to readers — a
// durability layer can write the staged batch to its log first and
// publish only on success, so a failed append leaves no partial state.
type StagedBatch struct {
	NewEntities []*Entity
	Events      []*Event
}

// Stage resolves records against the current parser state without
// mutating it. The caller must serialize Stage..Commit sequences
// (ThreatRaptor's ingest lock does); interleaving another Add or
// Commit between a Stage and its Commit would reuse the staged IDs.
func (p *Parser) Stage(recs []Record) (*StagedBatch, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	sb := &StagedBatch{}
	staged := make(map[string]*Entity)
	nextEnt := p.nextEnt
	nextEvt := p.nextEvt
	intern := func(e Entity) *Entity {
		key := e.Key()
		if got, ok := p.byKey[key]; ok {
			return got
		}
		if got, ok := staged[key]; ok {
			return got
		}
		e.ID = nextEnt
		nextEnt++
		ent := &e
		staged[key] = ent
		sb.NewEntities = append(sb.NewEntities, ent)
		return ent
	}
	for _, r := range recs {
		ev, err := resolveRecord(r, nextEvt, intern)
		if err != nil {
			return nil, err
		}
		nextEvt++
		sb.Events = append(sb.Events, ev)
	}
	return sb, nil
}

// Commit publishes a staged batch: the new entities and events become
// visible to readers with the IDs Stage assigned.
func (p *Parser) Commit(sb *StagedBatch) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, e := range sb.NewEntities {
		p.byKey[e.Key()] = e
		p.entities = append(p.entities, e)
	}
	p.nextEnt += int64(len(sb.NewEntities))
	p.events = append(p.events, sb.Events...)
	p.nextEvt += int64(len(sb.Events))
}

// Restore bulk-loads recovered entities and events (restart replay
// from the durability log). IDs are taken as-is and the counters move
// past the highest restored ID; entities must arrive in ID order for
// EntityByID's dense index to hold, which replay order guarantees.
func (p *Parser) Restore(entities []*Entity, events []*Event) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, e := range entities {
		p.byKey[e.Key()] = e
		p.entities = append(p.entities, e)
		if e.ID >= p.nextEnt {
			p.nextEnt = e.ID + 1
		}
	}
	for _, ev := range events {
		p.events = append(p.events, ev)
		if ev.ID >= p.nextEvt {
			p.nextEvt = ev.ID + 1
		}
	}
}

// SortRestoredEvents re-sorts the event list into ID order. Restart
// replay may apply per-shard event commits concurrently (parallel
// segment loading), interleaving Restore calls arbitrarily; event IDs
// are assigned at Stage time under the ingest lock, so ID order is the
// original commit order. Call once after replay finishes, before any
// reader depends on provenance order (Investigate walks p.events).
func (p *Parser) SortRestoredEvents() {
	p.mu.Lock()
	defer p.mu.Unlock()
	sort.Slice(p.events, func(i, j int) bool { return p.events[i].ID < p.events[j].ID })
}

// ParseLine parses one log line and adds the resulting event.
func (p *Parser) ParseLine(line string) (*Event, error) {
	r, err := ParseRecord(line)
	if err != nil {
		return nil, err
	}
	return p.Add(r)
}

// ParseRecords reads log lines from r until EOF, returning fully
// validated records without touching any parser state. Strict mode
// fails on the first malformed line; lenient mode skips malformed
// lines and returns their errors alongside the good records. Because
// every record is validated (object specs included) before any is
// returned, a caller can make a whole batch atomic: nothing is interned
// anywhere until the entire batch has parsed.
func ParseRecords(r io.Reader, lenient bool) ([]Record, []error, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var recs []Record
	var errs []error
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rec, err := ParseRecord(line)
		if err == nil {
			err = rec.Validate()
		}
		if err != nil {
			err = fmt.Errorf("line %d: %w", lineno, err)
			if lenient {
				errs = append(errs, err)
				continue
			}
			return nil, nil, err
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	return recs, errs, nil
}

// ParseStream reads log lines from r until EOF. Blank lines and lines
// starting with '#' are skipped. In lenient mode, malformed lines are
// recorded in Errs and skipped; otherwise the first error aborts.
func (p *Parser) ParseStream(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if _, err := p.ParseLine(line); err != nil {
			err = fmt.Errorf("line %d: %w", lineno, err)
			if p.Lenient {
				p.mu.Lock()
				p.Errs = append(p.Errs, err)
				p.mu.Unlock()
				continue
			}
			return err
		}
	}
	return sc.Err()
}
