package relstore

import (
	"testing"
)

func testTable(t *testing.T) *Table {
	t.Helper()
	tbl, err := NewTable(Schema{Name: "t", Columns: []Column{
		{Name: "id", Type: TypeInt},
		{Name: "name", Type: TypeText},
		{Name: "score", Type: TypeInt},
	}})
	if err != nil {
		t.Fatal(err)
	}
	rows := [][]Value{
		{IntValue(1), TextValue("alpha"), IntValue(10)},
		{IntValue(2), TextValue("beta"), IntValue(20)},
		{IntValue(3), TextValue("alpha"), IntValue(30)},
		{IntValue(4), TextValue("gamma"), IntValue(20)},
	}
	for _, r := range rows {
		if err := tbl.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func TestNewTableValidation(t *testing.T) {
	if _, err := NewTable(Schema{}); err == nil {
		t.Error("unnamed table should fail")
	}
	if _, err := NewTable(Schema{Name: "t", Columns: []Column{
		{Name: "a", Type: TypeInt}, {Name: "A", Type: TypeText},
	}}); err == nil {
		t.Error("duplicate column should fail")
	}
}

func TestInsertValidation(t *testing.T) {
	tbl := testTable(t)
	if err := tbl.Insert([]Value{IntValue(1)}); err == nil {
		t.Error("arity mismatch should fail")
	}
	if err := tbl.Insert([]Value{TextValue("x"), TextValue("y"), IntValue(1)}); err == nil {
		t.Error("type mismatch should fail")
	}
	if err := tbl.Insert([]Value{NullValue, TextValue("y"), IntValue(1)}); err != nil {
		t.Errorf("null should be allowed: %v", err)
	}
}

func TestHashIndexLookup(t *testing.T) {
	tbl := testTable(t)
	if err := tbl.CreateHashIndex("name"); err != nil {
		t.Fatal(err)
	}
	ids, indexed := tbl.lookupEq(tbl.ColIndex("name"), TextValue("alpha"))
	if !indexed {
		t.Error("lookup should be indexed")
	}
	if len(ids) != 2 || ids[0] != 0 || ids[1] != 2 {
		t.Errorf("lookup ids = %v", ids)
	}
	// Index maintained on insert.
	if err := tbl.Insert([]Value{IntValue(5), TextValue("alpha"), IntValue(99)}); err != nil {
		t.Fatal(err)
	}
	ids, _ = tbl.lookupEq(tbl.ColIndex("name"), TextValue("alpha"))
	if len(ids) != 3 {
		t.Errorf("after insert ids = %v", ids)
	}
	if err := tbl.CreateHashIndex("nosuch"); err == nil {
		t.Error("index on missing column should fail")
	}
}

func TestScanLookupWithoutIndex(t *testing.T) {
	tbl := testTable(t)
	ids, indexed := tbl.lookupEq(tbl.ColIndex("score"), IntValue(20))
	if indexed {
		t.Error("no index exists; lookup should be a scan")
	}
	if len(ids) != 2 {
		t.Errorf("ids = %v", ids)
	}
}

func TestOrderedIndexRange(t *testing.T) {
	tbl := testTable(t)
	if err := tbl.CreateOrderedIndex("score"); err != nil {
		t.Fatal(err)
	}
	lo, hi := IntValue(15), IntValue(30)
	ids, indexed := tbl.lookupRange(tbl.ColIndex("score"), &lo, &hi, true, false)
	if !indexed {
		t.Error("range lookup should use ordered index")
	}
	// scores 20, 20 qualify (30 excluded).
	if len(ids) != 2 {
		t.Errorf("range ids = %v", ids)
	}
	// Insert marks the index dirty; next lookup rebuilds.
	if err := tbl.Insert([]Value{IntValue(9), TextValue("delta"), IntValue(25)}); err != nil {
		t.Fatal(err)
	}
	ids, _ = tbl.lookupRange(tbl.ColIndex("score"), &lo, &hi, true, false)
	if len(ids) != 3 {
		t.Errorf("after insert range ids = %v", ids)
	}
	// Open bounds.
	ids, _ = tbl.lookupRange(tbl.ColIndex("score"), nil, nil, false, false)
	if len(ids) != tbl.NumRows() {
		t.Errorf("open range should return all rows, got %d", len(ids))
	}
}

func TestDBTables(t *testing.T) {
	db := NewDB()
	if _, err := db.CreateTable(Schema{Name: "a", Columns: []Column{{Name: "x", Type: TypeInt}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable(Schema{Name: "A"}); err == nil {
		t.Error("case-insensitive duplicate table should fail")
	}
	if db.Table("A") == nil {
		t.Error("table lookup should be case-insensitive")
	}
	if db.Table("zzz") != nil {
		t.Error("missing table should be nil")
	}
	names := db.TableNames()
	if len(names) != 1 || names[0] != "a" {
		t.Errorf("names = %v", names)
	}
}
