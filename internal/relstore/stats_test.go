package relstore

import (
	"fmt"
	"testing"
)

// statsTable builds a table with a hash-indexed "op" column, an
// unindexed tracked "host" column, and a range-tracked "ts" column —
// the shape bootstrap gives the events table.
func statsTable(t *testing.T) *Table {
	t.Helper()
	tbl, err := NewTable(Schema{Name: "evt", Columns: []Column{
		{Name: "op", Type: TypeText},
		{Name: "host", Type: TypeText},
		{Name: "ts", Type: TypeInt},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.CreateHashIndex("op"); err != nil {
		t.Fatal(err)
	}
	for _, col := range []string{"op", "host"} {
		if err := tbl.TrackColumn(col); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.TrackRange("ts"); err != nil {
		t.Fatal(err)
	}
	return tbl
}

func insertEvt(t *testing.T, tbl *Table, op, host string, ts int64) {
	t.Helper()
	if err := tbl.Insert([]Value{TextValue(op), TextValue(host), IntValue(ts)}); err != nil {
		t.Fatal(err)
	}
}

func TestTrackColumnErrors(t *testing.T) {
	tbl := statsTable(t)
	if err := tbl.TrackColumn("nope"); err == nil {
		t.Error("tracking a missing column should fail")
	}
	if err := tbl.TrackRange("nope"); err == nil {
		t.Error("range-tracking a missing column should fail")
	}
}

func TestCountEqAtIndexedExact(t *testing.T) {
	tbl := statsTable(t)
	for i := 0; i < 100; i++ {
		op := "read"
		if i%10 == 0 {
			op = "delete"
		}
		insertEvt(t, tbl, op, "h", int64(i))
	}
	// Hash-indexed counts are exact prefix cuts at any watermark.
	for _, tc := range []struct{ w, want int }{
		{0, 0}, {1, 1}, {10, 1}, {11, 2}, {100, 10},
	} {
		got, ok := tbl.CountEqAt("op", TextValue("delete"), tc.w)
		if !ok || got != tc.want {
			t.Errorf("CountEqAt(delete, %d) = %d, %v; want %d", tc.w, got, ok, tc.want)
		}
	}
	if got, ok := tbl.CountEqAt("op", TextValue("write"), 100); !ok || got != 0 {
		t.Errorf("absent value = %d, %v; want 0, true", got, ok)
	}
	if _, ok := tbl.CountEqAt("ts", IntValue(1), 100); ok {
		t.Error("untracked unindexed column should report !ok")
	}
	if _, ok := tbl.CountEqAt("nope", IntValue(1), 100); ok {
		t.Error("missing column should report !ok")
	}
}

func TestCountEqAtTrackerWithinStride(t *testing.T) {
	tbl := statsTable(t)
	// hot appears twice per row pair, cold once every 5 rows.
	actual := map[string][]int{}
	n := 0
	for i := 0; i < 200; i++ {
		host := "hot"
		if i%5 == 0 {
			host = "cold"
		}
		insertEvt(t, tbl, "read", host, int64(i))
		actual[host] = append(actual[host], n)
		n++
	}
	for _, host := range []string{"hot", "cold"} {
		occ := actual[host]
		for _, w := range []int{0, 7, 50, 123, 200} {
			exact := 0
			for _, p := range occ {
				if p < w {
					exact++
				}
			}
			got, ok := tbl.CountEqAt("host", TextValue(host), w)
			if !ok {
				t.Fatalf("host %q untracked", host)
			}
			if d := got - exact; d < -valTrackStride || d > valTrackStride {
				t.Errorf("CountEqAt(%q, %d) = %d, exact %d: off by more than one stride",
					host, w, got, exact)
			}
		}
		// At the full watermark the estimate is the exact live count.
		got, _ := tbl.CountEqAt("host", TextValue(host), tbl.NumRows())
		if got != len(occ) {
			t.Errorf("full-watermark count for %q = %d, want %d", host, got, len(occ))
		}
	}
	// Tracked column, value never seen: a proven zero.
	if got, ok := tbl.CountEqAt("host", TextValue("ghost"), 200); !ok || got != 0 {
		t.Errorf("unseen tracked value = %d, %v; want 0, true", got, ok)
	}
}

func TestValTrackerOverflow(t *testing.T) {
	tbl := statsTable(t)
	for i := 0; i < maxTrackedVals+10; i++ {
		insertEvt(t, tbl, "read", fmt.Sprintf("host-%d", i), int64(i))
	}
	// Values past the cap are untracked: not a proven zero.
	if _, ok := tbl.CountEqAt("host", TextValue(fmt.Sprintf("host-%d", maxTrackedVals+5)), tbl.NumRows()); ok {
		t.Error("overflowed tracker should report !ok for untracked values")
	}
	// Values tracked before the overflow still answer.
	if got, ok := tbl.CountEqAt("host", TextValue("host-0"), tbl.NumRows()); !ok || got != 1 {
		t.Errorf("pre-overflow value = %d, %v; want 1, true", got, ok)
	}
	if _, ok := tbl.DistinctAt("host", tbl.NumRows()); ok {
		t.Error("overflowed tracker's distinct count should report !ok")
	}
}

func TestDistinctAt(t *testing.T) {
	tbl := statsTable(t)
	ops := []string{"read", "write", "delete"}
	for i := 0; i < 30; i++ {
		insertEvt(t, tbl, ops[i%len(ops)], fmt.Sprintf("h%d", i/10), int64(i))
	}
	// Indexed column: growth array, exact at every watermark.
	for _, tc := range []struct{ w, want int }{{0, 0}, {1, 1}, {2, 2}, {3, 3}, {30, 3}} {
		got, ok := tbl.DistinctAt("op", tc.w)
		if !ok || got != tc.want {
			t.Errorf("DistinctAt(op, %d) = %d, %v; want %d", tc.w, got, ok, tc.want)
		}
	}
	// Tracked unindexed column: h0 appears at row 0, h1 at 10, h2 at 20.
	for _, tc := range []struct{ w, want int }{{0, 0}, {10, 1}, {11, 2}, {30, 3}} {
		got, ok := tbl.DistinctAt("host", tc.w)
		if !ok || got != tc.want {
			t.Errorf("DistinctAt(host, %d) = %d, %v; want %d", tc.w, got, ok, tc.want)
		}
	}
	if _, ok := tbl.DistinctAt("ts", 30); ok {
		t.Error("range-only column should not answer DistinctAt")
	}
	if _, ok := tbl.DistinctAt("nope", 30); ok {
		t.Error("missing column should not answer DistinctAt")
	}
}

func TestRangeAt(t *testing.T) {
	tbl := statsTable(t)
	if _, _, ok := tbl.RangeAt("ts", 0); ok {
		t.Error("empty tracked range should report !ok")
	}
	for i := 0; i < 300; i++ {
		insertEvt(t, tbl, "read", "h", int64(1000+i))
	}
	lo, hi, ok := tbl.RangeAt("ts", tbl.NumRows())
	if !ok || lo != 1000 {
		t.Errorf("full range = [%d, %d], %v; want min 1000", lo, hi, ok)
	}
	// Checkpoints trail by at most one stride.
	if hi < 1000+299-rangeStride || hi > 1299 {
		t.Errorf("full range max = %d, want within one stride of 1299", hi)
	}
	// A mid watermark must not see later maxima.
	_, hi, ok = tbl.RangeAt("ts", 100)
	if !ok || hi > 1099 {
		t.Errorf("RangeAt(100) max = %d, %v; must not exceed 1099", hi, ok)
	}
	if _, _, ok := tbl.RangeAt("host", 10); ok {
		t.Error("untracked column should report !ok")
	}
	if _, _, ok := tbl.RangeAt("nope", 10); ok {
		t.Error("missing column should report !ok")
	}
}

func TestTopKAt(t *testing.T) {
	tbl := statsTable(t)
	for i := 0; i < 90; i++ {
		op, host := "read", "hot"
		switch {
		case i%9 == 0:
			op, host = "delete", "cold"
		case i%3 == 0:
			op = "write"
		}
		insertEvt(t, tbl, op, host, int64(i))
	}
	w := tbl.NumRows()
	// Indexed column with a small domain: served from the index, exact.
	top := tbl.TopKAt("op", 2, w)
	if len(top) != 2 || top[0].Value != "read" || top[0].Count != 60 {
		t.Fatalf("TopKAt(op) = %+v, want read=60 first", top)
	}
	if top[1].Value != "write" || top[1].Count != 20 {
		t.Errorf("TopKAt(op)[1] = %+v, want write=20", top[1])
	}
	// Tracked unindexed column: values come back verbatim — including
	// ones starting with a key-prefix byte ('t'/'i').
	top = tbl.TopKAt("host", 10, w)
	if len(top) != 2 || top[0].Value != "hot" || top[1].Value != "cold" {
		t.Fatalf("TopKAt(host) = %+v", top)
	}
	if top[0].Count != 80 || top[1].Count != 10 {
		t.Errorf("TopKAt(host) counts = %d, %d; want 80, 10", top[0].Count, top[1].Count)
	}
	if got := tbl.TopKAt("host", 0, w); got != nil {
		t.Errorf("k=0 should return nil, got %+v", got)
	}
	if got := tbl.TopKAt("ts", 3, w); got != nil {
		t.Errorf("untracked column should return nil, got %+v", got)
	}
	if got := tbl.TopKAt("host", 10, 0); len(got) != 0 {
		t.Errorf("zero watermark should see no values, got %+v", got)
	}
}

// TestTopKPrefixCollision is the regression for the unprefixed tracker
// keys: host values that *start* with a value-key prefix byte must
// round-trip verbatim, not lose their first character.
func TestTopKPrefixCollision(t *testing.T) {
	tbl := statsTable(t)
	for i := 0; i < 4; i++ {
		insertEvt(t, tbl, "read", "trantor", int64(i))
		insertEvt(t, tbl, "read", "io-node", int64(i))
	}
	for _, want := range []string{"trantor", "io-node"} {
		if got, ok := tbl.CountEqAt("host", TextValue(want), tbl.NumRows()); !ok || got != 4 {
			t.Errorf("CountEqAt(%q) = %d, %v; want 4, true", want, got, ok)
		}
	}
	top := tbl.TopKAt("host", 5, tbl.NumRows())
	seen := map[string]bool{}
	for _, vc := range top {
		seen[vc.Value] = true
	}
	if !seen["trantor"] || !seen["io-node"] {
		t.Errorf("TopKAt mangled prefixed-looking values: %+v", top)
	}
}

// TestTrackColumnSeedsExisting tracks columns only after rows are
// loaded: seeding must reproduce the same counts as tracking-then-
// inserting.
func TestTrackColumnSeedsExisting(t *testing.T) {
	tbl, err := NewTable(Schema{Name: "evt", Columns: []Column{
		{Name: "op", Type: TypeText},
		{Name: "host", Type: TypeText},
		{Name: "ts", Type: TypeInt},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.CreateHashIndex("op"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		host := "a"
		if i >= 30 {
			host = "b"
		}
		insertEvt(t, tbl, "read", host, int64(i))
	}
	if err := tbl.TrackColumn("op"); err != nil {
		t.Fatal(err)
	}
	if err := tbl.TrackColumn("host"); err != nil {
		t.Fatal(err)
	}
	if err := tbl.TrackRange("ts"); err != nil {
		t.Fatal(err)
	}
	if got, ok := tbl.CountEqAt("host", TextValue("a"), 40); !ok || got != 30 {
		t.Errorf("seeded count(a) = %d, %v; want 30", got, ok)
	}
	if got, ok := tbl.DistinctAt("op", 40); !ok || got != 1 {
		t.Errorf("seeded distinct(op) = %d, %v; want 1", got, ok)
	}
	if lo, _, ok := tbl.RangeAt("ts", 40); !ok || lo != 0 {
		t.Errorf("seeded range min = %d, %v; want 0", lo, ok)
	}
	// Inserts after seeding keep the trackers current.
	insertEvt(t, tbl, "write", "c", 99)
	if got, ok := tbl.DistinctAt("host", tbl.NumRows()); !ok || got != 3 {
		t.Errorf("post-seed distinct(host) = %d, %v; want 3", got, ok)
	}
}

func TestStatsFootprint(t *testing.T) {
	db := NewDB()
	tbl, err := db.CreateTable(Schema{Name: "evt", Columns: []Column{
		{Name: "op", Type: TypeText},
		{Name: "host", Type: TypeText},
		{Name: "ts", Type: TypeInt},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if db.StatsFootprint() != 0 {
		t.Errorf("fresh db footprint = %d, want 0", db.StatsFootprint())
	}
	if err := tbl.CreateHashIndex("op"); err != nil {
		t.Fatal(err)
	}
	for _, col := range []string{"op", "host"} {
		if err := tbl.TrackColumn(col); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.TrackRange("ts"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		insertEvt(t, tbl, "read", "h", int64(i))
	}
	if tbl.StatsFootprint() == 0 {
		t.Error("tracked table reports zero footprint")
	}
	if db.StatsFootprint() != tbl.StatsFootprint() {
		t.Errorf("db footprint %d != table footprint %d", db.StatsFootprint(), tbl.StatsFootprint())
	}
}

func TestViewStats(t *testing.T) {
	db := NewDB()
	tbl, err := db.CreateTable(Schema{Name: "evt", Columns: []Column{
		{Name: "op", Type: TypeText},
		{Name: "host", Type: TypeText},
		{Name: "ts", Type: TypeInt},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.TrackColumn("host"); err != nil {
		t.Fatal(err)
	}
	if err := tbl.TrackRange("ts"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		insertEvt(t, tbl, "read", "before", int64(i))
	}
	tv := db.TableView("evt")
	// Rows inserted after the view are invisible to its stats.
	for i := 0; i < 200; i++ {
		insertEvt(t, tbl, "read", "after", int64(1000+i))
	}
	if got, ok := tv.CountEq("host", TextValue("before")); !ok || got != 64 {
		t.Errorf("view CountEq(before) = %d, %v; want 64", got, ok)
	}
	if got, ok := tv.CountEq("host", TextValue("after")); !ok || got != 0 {
		t.Errorf("view CountEq(after) = %d, %v; want 0", got, ok)
	}
	if got, ok := tv.Distinct("host"); !ok || got != 1 {
		t.Errorf("view Distinct(host) = %d, %v; want 1", got, ok)
	}
	if _, hi, ok := tv.Range("ts"); !ok || hi > 63 {
		t.Errorf("view Range max = %d, %v; must not see post-view rows", hi, ok)
	}
	top := tv.TopK("host", 5)
	if len(top) != 1 || top[0].Value != "before" {
		t.Errorf("view TopK = %+v, want only pre-view values", top)
	}
}

func TestSchemaVersion(t *testing.T) {
	mk := func() (*DB, *Table) {
		db := NewDB()
		tbl, err := db.CreateTable(Schema{Name: "evt", Columns: []Column{
			{Name: "op", Type: TypeText},
			{Name: "ts", Type: TypeInt},
		}})
		if err != nil {
			t.Fatal(err)
		}
		return db, tbl
	}
	db1, t1 := mk()
	db2, t2 := mk()
	if db1.SchemaVersion() != db2.SchemaVersion() {
		t.Error("identical schemas should fingerprint identically")
	}
	base := db1.SchemaVersion()
	if err := t1.CreateHashIndex("op"); err != nil {
		t.Fatal(err)
	}
	afterHash := db1.SchemaVersion()
	if afterHash == base {
		t.Error("hash index did not change the fingerprint")
	}
	if err := t1.CreateOrderedIndex("ts"); err != nil {
		t.Fatal(err)
	}
	if db1.SchemaVersion() == afterHash {
		t.Error("ordered index did not change the fingerprint")
	}
	if _, err := db2.CreateTable(Schema{Name: "extra", Columns: []Column{
		{Name: "x", Type: TypeInt},
	}}); err != nil {
		t.Fatal(err)
	}
	if db2.SchemaVersion() == base {
		t.Error("new table did not change the fingerprint")
	}
	// Row inserts never move the schema fingerprint.
	before := db1.SchemaVersion()
	if err := t1.Insert([]Value{TextValue("read"), IntValue(1)}); err != nil {
		t.Fatal(err)
	}
	if db1.SchemaVersion() != before {
		t.Error("data insert changed the schema fingerprint")
	}
	_ = t2
}
