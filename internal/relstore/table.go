package relstore

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Column describes one column of a table.
type Column struct {
	Name string
	Type ColType
}

// Schema describes a table: its name and ordered columns.
type Schema struct {
	Name    string
	Columns []Column
}

// Table is an in-memory table with optional hash and ordered indexes.
// It is safe for concurrent use: writers (Insert, index creation) take
// the table's write lock, and the query executor holds the read lock of
// every bound table for the duration of a statement, so a query sees one
// consistent snapshot even while other goroutines ingest.
type Table struct {
	schema Schema
	colIdx map[string]int

	// mu guards rows and hashIdx. The executor in sqlexec.go acquires it
	// (read side) once per statement and then reads rows directly; every
	// other access goes through the locked methods below.
	mu   sync.RWMutex
	rows [][]Value

	// hash indexes: column position -> value key -> row ids.
	hashIdx map[int]map[string][]int

	// Ingest-time cardinality sketches (stats.go), all guarded by mu:
	// distinct-growth arrays for hash-indexed tracked columns, per-value
	// trackers for unindexed tracked columns, min/max checkpoints for
	// range-tracked columns.
	statsGrowth map[int][]int32
	statsVals   map[int]*valTracker
	statsRange  map[int]*rangeTracker
	// statsValsL/statsRangeL mirror the tracker maps as slices for the
	// insert hot path: ranging a slice costs nothing when empty and
	// avoids per-insert map-iterator setup (observeStats).
	statsValsL  []colValTracker
	statsRangeL []colRangeTracker

	// orderMu guards orderIdx and orderDirty. Ordered indexes rebuild
	// lazily on the read path (lookupRange), which runs under mu's read
	// lock — orderMu serializes the rebuild among concurrent readers.
	// Lock order is always mu before orderMu.
	orderMu sync.Mutex
	// ordered indexes: column position -> row ids sorted by column value.
	orderIdx map[int][]int
	// orderDirty marks ordered indexes needing a rebuild after inserts.
	orderDirty map[int]bool
}

// NewTable creates an empty table for the schema.
func NewTable(s Schema) (*Table, error) {
	if s.Name == "" {
		return nil, fmt.Errorf("relstore: table needs a name")
	}
	t := &Table{
		schema:     s,
		colIdx:     make(map[string]int, len(s.Columns)),
		hashIdx:    make(map[int]map[string][]int),
		orderIdx:   make(map[int][]int),
		orderDirty: make(map[int]bool),
	}
	for i, c := range s.Columns {
		name := strings.ToLower(c.Name)
		if _, dup := t.colIdx[name]; dup {
			return nil, fmt.Errorf("relstore: duplicate column %q in table %q", c.Name, s.Name)
		}
		t.colIdx[name] = i
	}
	return t, nil
}

// Schema returns the table's schema.
func (t *Table) Schema() Schema { return t.schema }

// NumRows returns the row count.
func (t *Table) NumRows() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

// ColIndex resolves a column name to its position, or -1.
func (t *Table) ColIndex(name string) int {
	if i, ok := t.colIdx[strings.ToLower(name)]; ok {
		return i
	}
	return -1
}

// CreateHashIndex builds a hash index on the named column for O(1)
// equality lookups.
func (t *Table) CreateHashIndex(col string) error {
	ci := t.ColIndex(col)
	if ci < 0 {
		return fmt.Errorf("relstore: no column %q in table %q", col, t.schema.Name)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	idx := make(map[string][]int)
	for rid, row := range t.rows {
		k := row[ci].key()
		idx[k] = append(idx[k], rid)
	}
	t.hashIdx[ci] = idx
	return nil
}

// CreateOrderedIndex builds an ordered index on the named column for
// range scans.
func (t *Table) CreateOrderedIndex(col string) error {
	ci := t.ColIndex(col)
	if ci < 0 {
		return fmt.Errorf("relstore: no column %q in table %q", col, t.schema.Name)
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.orderMu.Lock()
	defer t.orderMu.Unlock()
	t.rebuildOrdered(ci)
	return nil
}

// rebuildOrdered sorts the row ids for column ci. Callers must hold at
// least the read side of mu (rows must not move) and orderMu.
func (t *Table) rebuildOrdered(ci int) {
	ids := make([]int, len(t.rows))
	for i := range ids {
		ids[i] = i
	}
	sort.SliceStable(ids, func(a, b int) bool {
		return Compare(t.rows[ids[a]][ci], t.rows[ids[b]][ci]) < 0
	})
	t.orderIdx[ci] = ids
	t.orderDirty[ci] = false
}

// Insert appends a row, validating arity and types, and maintains hash
// indexes incrementally. Ordered indexes are rebuilt lazily on next use.
// Insert is safe to call concurrently with queries and other inserts.
func (t *Table) Insert(row []Value) error {
	if len(row) != len(t.schema.Columns) {
		return fmt.Errorf("relstore: table %q wants %d values, got %d", t.schema.Name, len(t.schema.Columns), len(row))
	}
	for i, v := range row {
		if v.IsNull() {
			continue
		}
		if v.Kind != t.schema.Columns[i].Type {
			return fmt.Errorf("relstore: table %q column %q wants %s, got %s",
				t.schema.Name, t.schema.Columns[i].Name, t.schema.Columns[i].Type, v.Kind)
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	rid := len(t.rows)
	t.rows = append(t.rows, row)
	for ci, idx := range t.hashIdx {
		k := row[ci].key()
		bucket := idx[k]
		if len(bucket) == 0 {
			// First occurrence of a distinct value: record the growth
			// position if the column's distinct count is tracked.
			if g, tracked := t.statsGrowth[ci]; tracked {
				t.statsGrowth[ci] = append(g, int32(rid))
			}
		}
		idx[k] = append(bucket, rid)
	}
	t.observeStats(row, rid)
	t.orderMu.Lock()
	for ci := range t.orderIdx {
		t.orderDirty[ci] = true
	}
	t.orderMu.Unlock()
	return nil
}

// ScanFrom calls fn for each row at position >= from, in insertion
// order, under the table's read lock, and returns the row count at the
// time of the scan. Rows are append-only, so positions are stable:
// resuming a later scan from the returned count visits exactly the rows
// inserted in between.
func (t *Table) ScanFrom(from int, fn func(row []Value)) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if from < 0 {
		from = 0
	}
	for i := from; i < len(t.rows); i++ {
		fn(t.rows[i])
	}
	return len(t.rows)
}

// ViewRows returns an immutable prefix view of the table's current
// rows: the slice header is captured (and capacity-capped) under a
// brief read lock, and rows are append-only, so the returned slice
// stays valid — and stops growing — while writers keep inserting. This
// is the append-watermark primitive behind epoch snapshots: the view's
// length IS the watermark, and rows appended after the capture are
// simply beyond it.
func (t *Table) ViewRows() [][]Value {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rows[:len(t.rows):len(t.rows)]
}

// lookupEqView is lookupEq for an epoch view: the hash-index probe runs
// under a briefly held read lock (writers extend index buckets in
// place), and row ids at or beyond the view's watermark — appended
// after the view was captured — are dropped. Unlike the statement-long
// locking of lookupEq, the lock here spans only the map probe, so a
// reader paging an epoch never blocks writers for longer than that.
func (t *Table) lookupEqView(ci int, v Value, rows [][]Value) ([]int, bool) {
	t.mu.RLock()
	idx, ok := t.hashIdx[ci]
	var ids []int
	if ok {
		ids = idx[v.key()]
	}
	t.mu.RUnlock()
	if ok {
		// Bucket ids are appended in ascending row order, so the view's
		// watermark is a prefix cut.
		cut := sort.SearchInts(ids, len(rows))
		return ids[:cut:cut], true
	}
	var out []int
	for rid, row := range rows {
		if Equal(row[ci], v) {
			out = append(out, rid)
		}
	}
	return out, false
}

// lookupRangeView is lookupRange for an epoch view: the ordered-index
// search (and any lazy rebuild) runs under a briefly held read lock,
// then ids beyond the view's watermark are filtered out. The unindexed
// fallback scans only the view's rows.
func (t *Table) lookupRangeView(ci int, lo, hi *Value, loInc, hiInc bool, rows [][]Value) ([]int, bool) {
	t.mu.RLock()
	t.orderMu.Lock()
	ids, ok := t.orderIdx[ci]
	if ok && t.orderDirty[ci] {
		t.rebuildOrdered(ci)
		ids = t.orderIdx[ci]
	}
	t.orderMu.Unlock()
	if !ok {
		t.mu.RUnlock()
		var out []int
		for rid, row := range rows {
			if inRange(row[ci], lo, hi, loInc, hiInc) {
				out = append(out, rid)
			}
		}
		return out, false
	}
	start, end := t.orderedRange(ids, ci, lo, hi, loInc, hiInc)
	t.mu.RUnlock()
	// The ordered ids are in column-value order, not row order, so the
	// watermark filter is a linear pass over the hits.
	var out []int
	for _, id := range ids[start:end] {
		if id < len(rows) {
			out = append(out, id)
		}
	}
	return out, true
}

// orderedRange binary-searches an ordered-index id list for the [lo, hi]
// bounds, returning the half-open hit range. The caller must hold at
// least the read side of mu (the search probes live rows).
func (t *Table) orderedRange(ids []int, ci int, lo, hi *Value, loInc, hiInc bool) (start, end int) {
	end = len(ids)
	if lo != nil {
		start = sort.Search(len(ids), func(i int) bool {
			c := Compare(t.rows[ids[i]][ci], *lo)
			if loInc {
				return c >= 0
			}
			return c > 0
		})
	}
	if hi != nil {
		end = sort.Search(len(ids), func(i int) bool {
			c := Compare(t.rows[ids[i]][ci], *hi)
			if hiInc {
				return c > 0
			}
			return c >= 0
		})
	}
	return start, end
}

// lookupEqIntsView probes the hash index once per ID under a single
// briefly held read lock, returning the matching row ids in ascending
// order, cut at the view's watermark. ok is false when the column has
// no hash index — callers fall back to a set-filtered scan rather than
// paying a per-ID table scan. This is the bulk access path behind
// bound ID-set parameters (propagated entity constraints).
func (t *Table) lookupEqIntsView(ci int, ids []int64, rows [][]Value) ([]int, bool) {
	t.mu.RLock()
	idx, ok := t.hashIdx[ci]
	if !ok {
		t.mu.RUnlock()
		return nil, false
	}
	var out []int
	key := make([]byte, 0, 24)
	for i, id := range ids {
		// ids are ascending, so duplicates are consecutive; skipping them
		// keeps the indexed path's results identical to the set-filtered
		// scan's however the caller built the set.
		if i > 0 && ids[i-1] == id {
			continue
		}
		// Construct the probe key in a reused buffer: string(key) used
		// only as a map index does not allocate, so 50k probes cost 50k
		// lookups, not 50k string allocations.
		key = append(key[:0], 'i')
		key = strconv.AppendInt(key, id, 10)
		got := idx[string(key)]
		// Bucket ids are appended in ascending row order, so the view's
		// watermark is a prefix cut.
		cut := sort.SearchInts(got, len(rows))
		out = append(out, got[:cut]...)
	}
	t.mu.RUnlock()
	sort.Ints(out)
	return out, true
}

// lookupEqInts is lookupEqIntsView for a locked statement: the caller
// holds the read side of mu for the whole statement, so the probes read
// the live index directly with no watermark cut.
func (t *Table) lookupEqInts(ci int, ids []int64) ([]int, bool) {
	idx, ok := t.hashIdx[ci]
	if !ok {
		return nil, false
	}
	var out []int
	key := make([]byte, 0, 24)
	for i, id := range ids {
		if i > 0 && ids[i-1] == id { // ids ascending; skip duplicates
			continue
		}
		key = append(key[:0], 'i')
		key = strconv.AppendInt(key, id, 10)
		out = append(out, idx[string(key)]...)
	}
	sort.Ints(out)
	return out, true
}

// lookupEq returns row ids whose column equals v, using the hash index if
// present, else a scan. The second result reports whether an index served
// the lookup. The caller must hold the read side of mu (the executor
// does, for the whole statement).
func (t *Table) lookupEq(ci int, v Value) ([]int, bool) {
	if idx, ok := t.hashIdx[ci]; ok {
		return idx[v.key()], true
	}
	var ids []int
	for rid, row := range t.rows {
		if Equal(row[ci], v) {
			ids = append(ids, rid)
		}
	}
	return ids, false
}

// lookupRange returns row ids whose column value is within [lo, hi]
// according to the provided inclusivity flags. A nil bound is open. The
// caller must hold the read side of mu; the lazy ordered-index rebuild
// is serialized by orderMu among concurrent readers.
func (t *Table) lookupRange(ci int, lo, hi *Value, loInc, hiInc bool) ([]int, bool) {
	t.orderMu.Lock()
	ids, ok := t.orderIdx[ci]
	if !ok {
		t.orderMu.Unlock()
		var out []int
		for rid, row := range t.rows {
			if inRange(row[ci], lo, hi, loInc, hiInc) {
				out = append(out, rid)
			}
		}
		return out, false
	}
	if t.orderDirty[ci] {
		t.rebuildOrdered(ci)
		ids = t.orderIdx[ci]
	}
	t.orderMu.Unlock()
	start, end := t.orderedRange(ids, ci, lo, hi, loInc, hiInc)
	if start >= end {
		return nil, true
	}
	out := make([]int, end-start)
	copy(out, ids[start:end])
	return out, true
}

func inRange(v Value, lo, hi *Value, loInc, hiInc bool) bool {
	if lo != nil {
		c := Compare(v, *lo)
		if c < 0 || (c == 0 && !loInc) {
			return false
		}
	}
	if hi != nil {
		c := Compare(v, *hi)
		if c > 0 || (c == 0 && !hiInc) {
			return false
		}
	}
	return true
}

// DB is a named collection of tables. It is safe for concurrent reads
// interleaved with single-writer loads guarded by its mutex.
type DB struct {
	mu     sync.RWMutex
	tables map[string]*Table
}

// NewDB creates an empty database.
func NewDB() *DB {
	return &DB{tables: make(map[string]*Table)}
}

// CreateTable creates a table with the given schema.
func (db *DB) CreateTable(s Schema) (*Table, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	name := strings.ToLower(s.Name)
	if _, dup := db.tables[name]; dup {
		return nil, fmt.Errorf("relstore: table %q already exists", s.Name)
	}
	t, err := NewTable(s)
	if err != nil {
		return nil, err
	}
	db.tables[name] = t
	return t, nil
}

// Table returns the named table, or nil.
func (db *DB) Table(name string) *Table {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.tables[strings.ToLower(name)]
}

// TableNames returns all table names sorted.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
