package relstore

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Ingest-time cardinality statistics.
//
// The execution engine's cost-based optimizer needs, per pattern, an
// estimate of how many rows a data query will return at the hunt's
// pinned epoch. The sketches here are maintained incrementally under
// the table's existing write lock, and every read is answered *at a
// watermark* (a TableView's row count), so estimates are consistent
// with the exact cut of the data the hunt reads:
//
//   - Per-value row counts for hash-indexed columns are exact and free:
//     index buckets append row ids in ascending order, so the count at
//     watermark W is a binary-search prefix cut of the bucket.
//   - Distinct-value counts are tracked as a growth array: the row
//     position at which each new distinct value first appeared. The
//     distinct count at W is again a binary search.
//   - Unindexed tracked columns (events.host) get a valTracker: exact
//     live per-value counters plus a sampled position mark every
//     valTrackStride occurrences, giving counts at W within the stride.
//   - Range-tracked int columns (events.starttime) record sampled
//     min/max checkpoints for time-window selectivity.
//
// The per-insert cost is a few integer compares, one map probe for each
// valTracker column, and rare appends — small against the row append
// and index maintenance the insert already pays.

const (
	// valTrackStride is the occurrence-sampling stride of valTracker
	// position marks; counts at a watermark are exact within one stride.
	valTrackStride = 16
	// maxTrackedVals caps a valTracker's per-value map. Columns that
	// blow past it (unexpectedly high cardinality) stop tracking new
	// values; DistinctAt reports the overflow.
	maxTrackedVals = 4096
	// rangeStride is the row-sampling stride of min/max checkpoints.
	rangeStride = 64
)

// valTrack is one tracked value: its live occurrence count and the row
// positions of every valTrackStride-th occurrence.
type valTrack struct {
	count int64
	marks []int32
}

// countAt estimates the value's occurrence count among rows [0, w):
// n marks below the watermark witness at least (n-1)*stride+1 and at
// most n*stride occurrences. When the watermark covers every mark the
// estimate equals the exact live count.
func (tr *valTrack) countAt(w int) int {
	n := sort.Search(len(tr.marks), func(i int) bool { return int(tr.marks[i]) >= w })
	est := n * valTrackStride
	if int64(est) > tr.count {
		est = int(tr.count)
	}
	return est
}

// valTracker tracks per-value counts for one unindexed column.
type valTracker struct {
	vals     map[string]*valTrack
	growth   []int32 // row position of each new distinct value
	overflow bool    // hit maxTrackedVals; distinct counts are a floor
}

// colValTracker / colRangeTracker pair a tracker with its column
// position for the insert hot path's slice iteration.
type colValTracker struct {
	ci int
	vt *valTracker
}

type colRangeTracker struct {
	ci int
	rt *rangeTracker
}

// vtKey returns the valTracker map key for a value. Text values key by
// their string directly — no allocation on the insert path, unlike the
// prefixed index key() — and other kinds fall back to key(). Safe
// because a column holds one declared type, so keys cannot collide.
func vtKey(v Value) string {
	if v.Kind == TypeText {
		return v.Str
	}
	return v.key()
}

func newValTracker() *valTracker {
	return &valTracker{vals: make(map[string]*valTrack)}
}

func (vt *valTracker) observe(key string, rid int) {
	tr := vt.vals[key]
	if tr == nil {
		if len(vt.vals) >= maxTrackedVals {
			vt.overflow = true
			return
		}
		tr = &valTrack{}
		vt.vals[key] = tr
		vt.growth = append(vt.growth, int32(rid))
	}
	if tr.count%valTrackStride == 0 {
		tr.marks = append(tr.marks, int32(rid))
	}
	tr.count++
}

// rangeCheck is one sampled min/max checkpoint: the running min/max of
// the column over rows [0, pos].
type rangeCheck struct {
	pos      int32
	min, max int64
}

// rangeTracker tracks the running min/max of an int column with
// sampled checkpoints so the range at any watermark can be recovered.
type rangeTracker struct {
	n        int
	min, max int64
	checks   []rangeCheck
}

func (rt *rangeTracker) observe(v int64, rid int) {
	if rt.n == 0 || v < rt.min {
		rt.min = v
	}
	if rt.n == 0 || v > rt.max {
		rt.max = v
	}
	rt.n++
	if len(rt.checks) == 0 || rid-int(rt.checks[len(rt.checks)-1].pos) >= rangeStride {
		rt.checks = append(rt.checks, rangeCheck{pos: int32(rid), min: rt.min, max: rt.max})
	}
}

// at returns the min/max over rows [0, w), from the newest checkpoint
// at or below the watermark (missing at most rangeStride-1 trailing
// rows — an estimation error, never a correctness one).
func (rt *rangeTracker) at(w int) (int64, int64, bool) {
	n := sort.Search(len(rt.checks), func(i int) bool { return int(rt.checks[i].pos) >= w })
	if n == 0 {
		return 0, 0, false
	}
	c := rt.checks[n-1]
	return c.min, c.max, true
}

// TrackColumn enables distinct-count (and, for unindexed columns,
// per-value count) tracking on a column. Call it at bootstrap, before
// rows are inserted; tracking starts at the current row count.
func (t *Table) TrackColumn(col string) error {
	ci := t.ColIndex(col)
	if ci < 0 {
		return fmt.Errorf("relstore: no column %q in table %q", col, t.schema.Name)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, indexed := t.hashIdx[ci]; indexed {
		if t.statsGrowth == nil {
			t.statsGrowth = make(map[int][]int32)
		}
		// Seed the growth array from values already present.
		g := make([]int32, 0, len(t.hashIdx[ci]))
		for _, ids := range t.hashIdx[ci] {
			if len(ids) > 0 {
				g = append(g, int32(ids[0]))
			}
		}
		sort.Slice(g, func(i, j int) bool { return g[i] < g[j] })
		t.statsGrowth[ci] = g
		return nil
	}
	if t.statsVals == nil {
		t.statsVals = make(map[int]*valTracker)
	}
	vt := newValTracker()
	for rid, row := range t.rows {
		vt.observe(vtKey(row[ci]), rid)
	}
	t.statsVals[ci] = vt
	t.statsValsL = append(t.statsValsL, colValTracker{ci: ci, vt: vt})
	return nil
}

// TrackRange enables min/max tracking on an int column.
func (t *Table) TrackRange(col string) error {
	ci := t.ColIndex(col)
	if ci < 0 {
		return fmt.Errorf("relstore: no column %q in table %q", col, t.schema.Name)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.statsRange == nil {
		t.statsRange = make(map[int]*rangeTracker)
	}
	rt := &rangeTracker{}
	for rid, row := range t.rows {
		if row[ci].Kind == TypeInt {
			rt.observe(row[ci].Int, rid)
		}
	}
	t.statsRange[ci] = rt
	t.statsRangeL = append(t.statsRangeL, colRangeTracker{ci: ci, rt: rt})
	return nil
}

// observeStats updates trackers for a newly inserted row. The caller
// (Insert) holds the write lock; growth arrays for hash-indexed
// columns are maintained inline in Insert's index loop.
func (t *Table) observeStats(row []Value, rid int) {
	for _, c := range t.statsValsL {
		c.vt.observe(vtKey(row[c.ci]), rid)
	}
	for _, c := range t.statsRangeL {
		if row[c.ci].Kind == TypeInt {
			c.rt.observe(row[c.ci].Int, rid)
		}
	}
}

// CountEqAt returns the number of rows among [0, w) whose column
// equals v. Exact for hash-indexed columns (bucket prefix cut),
// stride-approximate for valTracker columns; ok is false when the
// column is neither indexed nor tracked.
func (t *Table) CountEqAt(col string, v Value, w int) (int, bool) {
	ci := t.ColIndex(col)
	if ci < 0 {
		return 0, false
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	if idx, ok := t.hashIdx[ci]; ok {
		ids := idx[v.key()]
		return sort.SearchInts(ids, w), true
	}
	if vt, ok := t.statsVals[ci]; ok {
		tr := vt.vals[vtKey(v)]
		if tr == nil {
			if vt.overflow {
				return 0, false // untracked value, not a proven zero
			}
			return 0, true
		}
		return tr.countAt(w), true
	}
	return 0, false
}

// DistinctAt returns the number of distinct values among rows [0, w)
// for a tracked column; ok is false when untracked or overflowed.
func (t *Table) DistinctAt(col string, w int) (int, bool) {
	ci := t.ColIndex(col)
	if ci < 0 {
		return 0, false
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	if g, ok := t.statsGrowth[ci]; ok {
		return searchInt32(g, w), true
	}
	if vt, ok := t.statsVals[ci]; ok && !vt.overflow {
		return searchInt32(vt.growth, w), true
	}
	return 0, false
}

// RangeAt returns the min/max of a range-tracked int column among rows
// [0, w); ok is false when untracked or no checkpoint is below w.
func (t *Table) RangeAt(col string, w int) (int64, int64, bool) {
	ci := t.ColIndex(col)
	if ci < 0 {
		return 0, 0, false
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	if rt, ok := t.statsRange[ci]; ok {
		return rt.at(w)
	}
	return 0, 0, false
}

// ValueCount is one heavy-hitter entry: a value key ('i'/'t' prefix
// stripped) and its occurrence count.
type ValueCount struct {
	Value string `json:"value"`
	Count int    `json:"count"`
}

// TopKAt returns up to k heavy hitters of a tracked column at the
// watermark, heaviest first. Served from valTrackers directly and from
// hash indexes only when the distinct count is small enough that the
// scan is cheap (small enumerable domains: optype, entity type).
func (t *Table) TopKAt(col string, k, w int) []ValueCount {
	ci := t.ColIndex(col)
	if ci < 0 || k <= 0 {
		return nil
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []ValueCount
	if vt, ok := t.statsVals[ci]; ok {
		// valTracker keys for text columns are the raw strings (vtKey);
		// only non-text keys carry a kind prefix to strip.
		text := t.schema.Columns[ci].Type == TypeText
		for key, tr := range vt.vals {
			if c := tr.countAt(w); c > 0 {
				if !text {
					key = stripKey(key)
				}
				out = append(out, ValueCount{Value: key, Count: c})
			}
		}
	} else if idx, ok := t.hashIdx[ci]; ok && len(idx) <= 64 {
		for key, ids := range idx {
			if c := sort.SearchInts(ids, w); c > 0 {
				out = append(out, ValueCount{Value: stripKey(key), Count: c})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Value < out[j].Value
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// StatsFootprint returns how many sketch entries the table's trackers
// hold (growth positions, value marks, range checkpoints) — the memory
// cost of stats, surfaced via /stats.
func (t *Table) StatsFootprint() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := 0
	for _, g := range t.statsGrowth {
		n += len(g)
	}
	for _, vt := range t.statsVals {
		n += len(vt.growth)
		for _, tr := range vt.vals {
			n += len(tr.marks)
		}
	}
	for _, rt := range t.statsRange {
		n += len(rt.checks)
	}
	return n
}

// StatsFootprint totals the sketch entries of every table's trackers —
// the database's whole stats memory cost, in entries.
func (db *DB) StatsFootprint() int {
	db.mu.RLock()
	tables := make([]*Table, 0, len(db.tables))
	for _, t := range db.tables {
		tables = append(tables, t)
	}
	db.mu.RUnlock()
	n := 0
	for _, t := range tables {
		n += t.StatsFootprint()
	}
	return n
}

// View-level conveniences: answer at the view's own watermark.

// CountEq counts view rows whose column equals v (see Table.CountEqAt).
func (tv *TableView) CountEq(col string, v Value) (int, bool) {
	return tv.t.CountEqAt(col, v, len(tv.rows))
}

// Distinct returns the view's distinct count for a tracked column.
func (tv *TableView) Distinct(col string) (int, bool) {
	return tv.t.DistinctAt(col, len(tv.rows))
}

// Range returns the view's min/max for a range-tracked column.
func (tv *TableView) Range(col string) (int64, int64, bool) {
	return tv.t.RangeAt(col, len(tv.rows))
}

// TopK returns the view's heavy hitters for a tracked column.
func (tv *TableView) TopK(col string, k int) []ValueCount {
	return tv.t.TopKAt(col, k, len(tv.rows))
}

func searchInt32(a []int32, w int) int {
	return sort.Search(len(a), func(i int) bool { return int(a[i]) >= w })
}

func stripKey(key string) string {
	if len(key) > 0 && (key[0] == 'i' || key[0] == 't') {
		return key[1:]
	}
	return key
}

// SchemaVersion returns a fingerprint of the database's schema
// identity: table names, columns, and index sets. Any bootstrap-shape
// change — a new table, column, or index — yields a new fingerprint,
// so plan caches keyed on it never reuse a plan compiled against a
// different schema.
func (db *DB) SchemaVersion() uint64 {
	h := fnv.New64a()
	db.mu.RLock()
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	db.mu.RUnlock()
	sort.Strings(names)
	for _, name := range names {
		t := db.Table(name)
		h.Write([]byte(name))
		h.Write([]byte{'('})
		for _, c := range t.schema.Columns {
			h.Write([]byte(c.Name))
			h.Write([]byte{':', byte(c.Type), ','})
		}
		t.mu.RLock()
		hashCols := make([]int, 0, len(t.hashIdx))
		for ci := range t.hashIdx {
			hashCols = append(hashCols, ci)
		}
		t.mu.RUnlock()
		t.orderMu.Lock()
		orderCols := make([]int, 0, len(t.orderIdx))
		for ci := range t.orderIdx {
			orderCols = append(orderCols, ci)
		}
		t.orderMu.Unlock()
		sort.Ints(hashCols)
		sort.Ints(orderCols)
		h.Write([]byte{'#'})
		for _, ci := range hashCols {
			h.Write([]byte{byte(ci), ','})
		}
		h.Write([]byte{'<'})
		for _, ci := range orderCols {
			h.Write([]byte{byte(ci), ','})
		}
		h.Write([]byte{')'})
	}
	return h.Sum64()
}
