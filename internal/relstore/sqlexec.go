package relstore

import (
	"fmt"
	"sort"
	"strings"
)

// Rows is a query result set.
type Rows struct {
	Cols []string
	Data [][]Value
}

// ExecStats reports how a query was executed, for plan inspection and the
// efficiency experiments.
type ExecStats struct {
	RowsScanned   int // rows visited across all join levels
	IndexLookups  int // candidate sets served by an index
	FullScans     int // candidate sets served by a full table scan
	TuplesEmitted int // result rows before distinct/order/limit
}

// Query parses and executes a SELECT statement against the database.
func (db *DB) Query(sql string) (*Rows, error) {
	rows, _, err := db.QueryStats(sql)
	return rows, err
}

// QueryStats is Query plus execution statistics.
func (db *DB) QueryStats(sql string) (*Rows, ExecStats, error) {
	stmt, err := ParseSQL(sql)
	if err != nil {
		return nil, ExecStats{}, err
	}
	return db.Exec(stmt)
}

// Exec executes a parsed statement.
func (db *DB) Exec(stmt *SelectStmt) (*Rows, ExecStats, error) {
	st, err := db.PrepareParsed(stmt)
	if err != nil {
		return nil, ExecStats{}, err
	}
	return st.exec(nil, nil)
}

// Prepare parses a SELECT statement and derives its execution plan once:
// table bindings, column resolution, compiled conjunct closures, the
// per-level access paths, and the projection. The returned Stmt executes
// with zero parsing — Query re-runs it under the statement's table
// locks, QueryView runs it against an epoch view — with per-execution
// values (the engine's propagated entity-ID sets) bound through Params
// instead of being rendered into new SQL text. A Stmt is immutable
// after Prepare and safe for concurrent executions.
func (db *DB) Prepare(sql string) (*Stmt, error) {
	stmt, err := ParseSQL(sql)
	if err != nil {
		return nil, err
	}
	return db.PrepareParsed(stmt)
}

// PrepareParsed is Prepare for an already-parsed statement. The
// statement AST is retained and must not be modified afterwards.
func (db *DB) PrepareParsed(stmt *SelectStmt) (*Stmt, error) {
	st := &Stmt{db: db, stmt: stmt}
	if err := st.compile(); err != nil {
		return nil, err
	}
	return st, nil
}

// Stmt is a prepared SELECT statement: the parse tree plus everything
// the executor can derive from the schema alone — bindings, compiled
// predicates, per-level access plans, resolved projection and order
// keys. Executing a Stmt does no parsing and no plan derivation; only
// row storage (the live table or an epoch view) and parameter values
// vary per execution.
//
// A Stmt prepared on one database may execute against a View of
// another database whose tables have identical schemas (the sharded
// store: every shard is bootstrapped with the same tables), which is
// how the execution engine compiles a pattern's data query once and
// fans it out across shards.
type Stmt struct {
	db   *DB
	stmt *SelectStmt

	binds   []stmtBind
	conjs   []conjunct
	conjsAt [][]int      // conjsAt[level] lists conjunct indexes with maxRef == level
	plans   []accessPlan // per-level access path
	project []resolvedCol
	// orderKeys are the projected positions of the ORDER BY keys,
	// resolved at prepare time.
	orderKeys []int
	// nSet is the number of ID-set parameter slots the statement
	// references (max slot + 1); executions must bind at least that many.
	nSet int

	// colCache memoizes resolveCol during compilation.
	colCache map[ColRef]resolvedRef
}

// stmtBind is one table instance in the FROM/JOIN list, resolved at
// prepare time. table is the prepare-time table — the schema authority
// for column resolution; executions against a view re-resolve the
// runtime table by name.
type stmtBind struct {
	name      string // bind name (alias or table name), lowercase
	tableName string // underlying table name, lowercase
	table     *Table
}

// conjunct is one top-level AND-ed condition with the set of bindings it
// references.
type conjunct struct {
	expr Expr
	refs map[int]bool // binding indexes referenced
	// maxRef is the highest binding index referenced; the conjunct is
	// evaluated as soon as that binding is bound.
	maxRef int
	// fn is the compiled form with pre-resolved column references,
	// evaluated on the per-row hot path.
	fn boolFn
}

// boolFn evaluates a compiled boolean expression for a bound tuple.
type boolFn func(rt *stmtRun, tuple []int) bool

// valFn evaluates a compiled operand for a bound tuple.
type valFn func(rt *stmtRun, tuple []int) Value

// accessPlan describes how to enumerate candidate rows at a join level.
type accessPlan struct {
	kind byte // 'l' eq-literal, 'j' eq-join, 'p' param set, 'n' in-list, 'r' range, 's' scan
	col  int  // column on this level's table
	lit  Value
	// in-list values.
	vals []Value
	// param-set slot.
	slot int
	// eq-join source.
	otherBind, otherCol int
	// range bounds.
	lo, hi       *Value
	loInc, hiInc bool
}

type resolvedRef struct {
	bind, col int
	err       error
}

type resolvedCol struct {
	bind int
	col  int
	name string
}

// stmtRun is the per-execution state of a prepared statement: the row
// storage each binding reads (live rows under the statement's table
// locks, or an epoch view's captured prefixes), the runtime tables the
// index probes go to, the bound parameters, and the result
// accumulator. Compiled closures receive the stmtRun, so one Stmt
// serves any number of concurrent executions.
type stmtRun struct {
	st     *Stmt
	view   *View // nil: locked execution on st.db
	params *Params
	tables []*Table
	rows   [][][]Value
	stats  ExecStats

	out      [][]Value
	limitHit bool
	// rowCap is a per-execution result cap (0 = none), pushed down by
	// callers that will read at most that many rows (the engine's
	// fetch-side row caps). Unlike the statement's own LIMIT it is not
	// part of the plan: the same prepared Stmt runs capped for a
	// first-page hunt and uncapped for a full drain.
	rowCap int
	// minRows, when non-nil, restricts each binding to row positions
	// >= minRows[level]: the delta rows appended after a previous
	// watermark (QueryViewSince). Bindings not under a Since restriction
	// hold 0.
	minRows []int
}

// compile derives everything schema-determined: bindings, conjuncts,
// projection, order keys, per-level conjunct lists and access plans.
func (st *Stmt) compile() error {
	// Bind tables.
	refs := make([]TableRef, 0, 1+len(st.stmt.Joins))
	refs = append(refs, st.stmt.From)
	for _, j := range st.stmt.Joins {
		refs = append(refs, j.Ref)
	}
	seen := map[string]bool{}
	for _, r := range refs {
		t := st.db.Table(r.Name)
		if t == nil {
			return fmt.Errorf("relstore: no table %q", r.Name)
		}
		bn := r.bindName()
		if seen[bn] {
			return fmt.Errorf("relstore: duplicate table binding %q", bn)
		}
		seen[bn] = true
		st.binds = append(st.binds, stmtBind{name: bn, tableName: strings.ToLower(r.Name), table: t})
	}

	// Collect conjuncts from JOIN ON and WHERE clauses.
	var all []Expr
	for _, j := range st.stmt.Joins {
		all = append(all, splitAnd(j.On)...)
	}
	if st.stmt.Where != nil {
		all = append(all, splitAnd(st.stmt.Where)...)
	}
	for _, e := range all {
		refs := map[int]bool{}
		if err := st.collectRefs(e, refs); err != nil {
			return err
		}
		maxRef := 0
		for bi := range refs {
			if bi > maxRef {
				maxRef = bi
			}
		}
		fn, err := st.compileBool(e)
		if err != nil {
			return err
		}
		st.conjs = append(st.conjs, conjunct{expr: e, refs: refs, maxRef: maxRef, fn: fn})
	}

	// Resolve projection.
	if st.stmt.Star {
		for bi, b := range st.binds {
			for ci, c := range b.table.schema.Columns {
				name := c.Name
				if len(st.binds) > 1 {
					name = b.name + "." + c.Name
				}
				st.project = append(st.project, resolvedCol{bind: bi, col: ci, name: name})
			}
		}
	} else {
		for _, item := range st.stmt.Items {
			bi, ci, err := st.resolveCol(item.Ref)
			if err != nil {
				return err
			}
			name := item.Alias
			if name == "" {
				name = item.Ref.String()
			}
			st.project = append(st.project, resolvedCol{bind: bi, col: ci, name: name})
		}
	}

	// Resolve ORDER BY keys against the projection.
	for _, o := range st.stmt.OrderBy {
		if _, _, err := st.resolveCol(o.Ref); err != nil {
			return err
		}
		ki := st.findProjected(o.Ref)
		if ki < 0 {
			return fmt.Errorf("relstore: ORDER BY column %s must appear in the select list", o.Ref)
		}
		st.orderKeys = append(st.orderKeys, ki)
	}

	// Precompute per-level conjunct lists and access plans.
	st.conjsAt = make([][]int, len(st.binds))
	for ci, c := range st.conjs {
		st.conjsAt[c.maxRef] = append(st.conjsAt[c.maxRef], ci)
	}
	st.plans = make([]accessPlan, len(st.binds))
	for level := range st.binds {
		st.plans[level] = st.planLevel(level)
	}
	return nil
}

// NumSetParams reports how many ID-set parameter slots the statement
// references; executions must bind at least that many via
// Params.BindIDSet.
func (st *Stmt) NumSetParams() int { return st.nSet }

// Query executes the prepared statement against its database under the
// statement's table locks (one consistent snapshot of the live rows).
func (st *Stmt) Query(params *Params) (*Rows, error) {
	rows, _, err := st.exec(nil, params)
	return rows, err
}

// QueryStats is Query plus execution statistics.
func (st *Stmt) QueryStats(params *Params) (*Rows, ExecStats, error) {
	return st.exec(nil, params)
}

// QueryView executes the prepared statement against an epoch view with
// zero parsing and no statement-long locks: the view's captured row
// prefixes are the statement's snapshot, and index probes lock only for
// the duration of the probe. The view may belong to a different
// database than the one the statement was prepared on, as long as the
// bound tables exist there with identical schemas (shards of one
// sharded store do).
func (st *Stmt) QueryView(v *View, params *Params) (*Rows, error) {
	rows, _, err := st.exec(v, params)
	return rows, err
}

// QueryViewStats is QueryView plus execution statistics.
func (st *Stmt) QueryViewStats(v *View, params *Params) (*Rows, ExecStats, error) {
	return st.exec(v, params)
}

// QueryViewLimit is QueryView with a per-execution result cap: at most
// limit rows of the statement's full result are produced (limit <= 0
// means uncapped). When the statement has no ORDER BY and no DISTINCT
// the executor stops joining as soon as the cap is reached, so a
// page-bounded fetch over a huge table does page-scaled work; otherwise
// the cap only truncates the finished result.
func (st *Stmt) QueryViewLimit(v *View, params *Params, limit int) (*Rows, error) {
	rows, _, err := st.execCap(v, params, limit)
	return rows, err
}

// QueryViewSince executes the prepared statement against an epoch view
// with the named table's binding(s) restricted to row positions >=
// minRow — the rows appended after a previous watermark. For a
// statement without ORDER BY, DISTINCT, or LIMIT whose result tuples
// each bind the named table exactly once, the result is exactly the
// full QueryView result minus the result over the view clamped at
// minRow: the per-commit delta fetch the incremental standing-hunt
// evaluator runs. Positions are the table's stable append-only row
// positions, so a watermark taken from one view's NumRows carries to
// any later view of the same shard.
func (st *Stmt) QueryViewSince(v *View, params *Params, table string, minRow int) (*Rows, error) {
	rows, _, err := st.execWith(v, params, execOpts{sinceTable: strings.ToLower(table), sinceRow: minRow})
	return rows, err
}

// execOpts carries the per-execution knobs that are not part of the
// prepared plan.
type execOpts struct {
	rowCap     int
	sinceTable string // lowercase; "" = no delta restriction
	sinceRow   int
}

// exec runs one uncapped execution of the prepared statement.
func (st *Stmt) exec(view *View, params *Params) (*Rows, ExecStats, error) {
	return st.execCap(view, params, 0)
}

// execCap runs one execution of the prepared statement with an
// optional per-execution row cap.
func (st *Stmt) execCap(view *View, params *Params, rowCap int) (*Rows, ExecStats, error) {
	return st.execWith(view, params, execOpts{rowCap: rowCap})
}

// execWith runs one execution of the prepared statement.
func (st *Stmt) execWith(view *View, params *Params, opts execOpts) (*Rows, ExecStats, error) {
	rowCap := opts.rowCap
	if st.nSet > params.NumSets() {
		return nil, ExecStats{}, fmt.Errorf("relstore: statement wants %d set parameter(s), got %d",
			st.nSet, params.NumSets())
	}
	rt := &stmtRun{
		st:     st,
		view:   view,
		params: params,
		tables: make([]*Table, len(st.binds)),
		rows:   make([][][]Value, len(st.binds)),
	}
	if rowCap > 0 {
		rt.rowCap = rowCap
	}
	if opts.sinceTable != "" {
		if view == nil {
			return nil, rt.stats, fmt.Errorf("relstore: Since execution requires an epoch view")
		}
		rt.minRows = make([]int, len(st.binds))
		found := false
		for i, b := range st.binds {
			if b.tableName == opts.sinceTable {
				rt.minRows[i] = opts.sinceRow
				found = true
			}
		}
		if !found {
			return nil, rt.stats, fmt.Errorf("relstore: statement does not bind table %q", opts.sinceTable)
		}
	}

	if view != nil {
		for i, b := range st.binds {
			tv := view.Table(b.tableName)
			if tv == nil {
				return nil, rt.stats, fmt.Errorf("relstore: no table %q", b.tableName)
			}
			if tv.t != b.table && !schemaCompatible(tv.t.schema, b.table.schema) {
				return nil, rt.stats, fmt.Errorf("relstore: table %q in the view does not match the prepared schema", b.tableName)
			}
			rt.tables[i] = tv.t
			rt.rows[i] = tv.rows
		}
	} else {
		// Hold the read lock of every bound table for the whole statement
		// so the query sees a consistent snapshot while writers ingest.
		// Tables are deduplicated (a self join binds the same table twice,
		// and a recursive RLock could deadlock behind a queued writer) and
		// locked in table-name order, so two statements binding the same
		// tables in opposite FROM/JOIN orders cannot cycle with queued
		// writers.
		seenTbl := make(map[*Table]bool, len(st.binds))
		locked := make([]*Table, 0, len(st.binds))
		for _, b := range st.binds {
			if !seenTbl[b.table] {
				seenTbl[b.table] = true
				locked = append(locked, b.table)
			}
		}
		sort.Slice(locked, func(i, j int) bool {
			return strings.ToLower(locked[i].schema.Name) < strings.ToLower(locked[j].schema.Name)
		})
		for _, t := range locked {
			t.mu.RLock()
			defer t.mu.RUnlock()
		}
		// Row storage is read through the run state; under the held locks
		// the live rows are the statement's snapshot.
		for i, b := range st.binds {
			rt.tables[i] = b.table
			rt.rows[i] = b.table.rows
		}
	}

	tuple := make([]int, len(st.binds))
	if err := rt.join(0, tuple); err != nil {
		return nil, rt.stats, err
	}

	// ORDER BY (projection already applied; keys were resolved to
	// projected positions at prepare time).
	if len(st.orderKeys) > 0 {
		sort.SliceStable(rt.out, func(a, b int) bool {
			for i, ki := range st.orderKeys {
				c := Compare(rt.out[a][ki], rt.out[b][ki])
				if c == 0 {
					continue
				}
				if st.stmt.OrderBy[i].Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
	}

	// DISTINCT.
	if st.stmt.Distinct {
		seen := map[string]bool{}
		dst := rt.out[:0]
		for _, row := range rt.out {
			var b strings.Builder
			for _, v := range row {
				b.WriteString(v.key())
				b.WriteByte('\x00')
			}
			k := b.String()
			if !seen[k] {
				seen[k] = true
				dst = append(dst, row)
			}
		}
		rt.out = dst
	}

	// LIMIT.
	if st.stmt.Limit >= 0 && len(rt.out) > st.stmt.Limit {
		rt.out = rt.out[:st.stmt.Limit]
	}

	// Per-execution row cap: applied after ORDER BY/DISTINCT/LIMIT so a
	// capped execution always returns a prefix of the uncapped result.
	if rt.rowCap > 0 && len(rt.out) > rt.rowCap {
		rt.out = rt.out[:rt.rowCap]
	}

	cols := make([]string, len(st.project))
	for i, p := range st.project {
		cols[i] = p.name
	}
	return &Rows{Cols: cols, Data: rt.out}, rt.stats, nil
}

// schemaCompatible reports whether two tables share a column layout, so
// a statement prepared on one can execute against a view of the other.
func schemaCompatible(a, b Schema) bool {
	if len(a.Columns) != len(b.Columns) {
		return false
	}
	for i := range a.Columns {
		if !strings.EqualFold(a.Columns[i].Name, b.Columns[i].Name) || a.Columns[i].Type != b.Columns[i].Type {
			return false
		}
	}
	return true
}

// limitFriendly reports whether early termination on LIMIT is safe
// (no ORDER BY that needs the full set).
func (st *Stmt) limitFriendly() bool {
	return len(st.stmt.OrderBy) == 0
}

func (st *Stmt) findProjected(ref ColRef) int {
	bi, ci, err := st.resolveCol(ref)
	if err != nil {
		return -1
	}
	for i, p := range st.project {
		if p.bind == bi && p.col == ci {
			return i
		}
	}
	return -1
}

// join binds tables level by level, using indexes where possible and
// evaluating each conjunct as soon as all its bindings are bound.
func (rt *stmtRun) join(level int, tuple []int) error {
	if rt.limitHit {
		return nil
	}
	st := rt.st
	if level == len(st.binds) {
		row := make([]Value, len(st.project))
		for i, p := range st.project {
			row[i] = rt.rows[p.bind][tuple[p.bind]][p.col]
		}
		rt.out = append(rt.out, row)
		rt.stats.TuplesEmitted++
		if !st.stmt.Distinct && st.limitFriendly() {
			if st.stmt.Limit >= 0 && len(rt.out) >= st.stmt.Limit {
				rt.limitHit = true
			}
			if rt.rowCap > 0 && len(rt.out) >= rt.rowCap {
				rt.limitHit = true
			}
		}
		return nil
	}

	cands, err := rt.candidates(level, tuple)
	if err != nil {
		return err
	}
	min := 0
	if rt.minRows != nil {
		min = rt.minRows[level]
	}
	for _, rid := range cands {
		if rid < min {
			continue
		}
		tuple[level] = rid
		rt.stats.RowsScanned++
		ok := true
		for _, ci := range st.conjsAt[level] {
			if !st.conjs[ci].fn(rt, tuple) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		if err := rt.join(level+1, tuple); err != nil {
			return err
		}
		if rt.limitHit {
			return nil
		}
	}
	return nil
}

// planLevel picks the most selective access path for the table at level
// (chosen once per prepared statement; equi-join and parameter-set
// lookups read their values at run time).
func (st *Stmt) planLevel(level int) accessPlan {
	// 1. Equi-join with an already-bound table: the per-tuple lookup
	// value makes this far more selective than a constant predicate
	// (classic index nested-loop join).
	for _, c := range st.conjs {
		myCol, otherBind, otherCol, ok := st.eqJoin(c.expr, level)
		if ok && otherBind < level {
			return accessPlan{kind: 'j', col: myCol, otherBind: otherBind, otherCol: otherCol}
		}
	}
	// 2. Bound ID-set parameter on this table's column: the propagated
	// entity-ID constraint. Selectivity is decided at run time — small
	// sets drive per-ID hash-index probes, large sets a set-filtered
	// scan — so the same plan serves both a 10-ID and a 50k-ID binding.
	for _, c := range st.conjs {
		in, ok := c.expr.(InParamExpr)
		if !ok || in.Neg || len(c.refs) != 1 || !c.refs[level] {
			continue
		}
		ce, okc := in.L.(ColExpr)
		if !okc {
			continue
		}
		bi, ci, err := st.resolveCol(ce.Ref)
		if err != nil || bi != level {
			continue
		}
		return accessPlan{kind: 'p', col: ci, slot: in.Slot}
	}
	// 3. Small IN-list on this table's column: the union of per-value
	// index lookups is usually tighter than any single-value bucket.
	for _, c := range st.conjs {
		in, ok := c.expr.(InExpr)
		if !ok || in.Neg || len(in.Vals) > 128 || len(c.refs) != 1 || !c.refs[level] {
			continue
		}
		ce, okc := in.L.(ColExpr)
		if !okc {
			continue
		}
		bi, ci, err := st.resolveCol(ce.Ref)
		if err != nil || bi != level {
			continue
		}
		return accessPlan{kind: 'n', col: ci, vals: in.Vals}
	}
	// 4. Equality with a literal on this table's column.
	for _, c := range st.conjs {
		col, lit, ok := st.eqLiteral(c.expr, level)
		if ok && len(c.refs) == 1 && c.refs[level] {
			return accessPlan{kind: 'l', col: col, lit: lit}
		}
	}
	// 5. Range predicate with literals.
	for _, c := range st.conjs {
		col, lo, hi, loInc, hiInc, ok := st.rangeLiteral(c.expr, level)
		if ok && len(c.refs) == 1 && c.refs[level] {
			return accessPlan{kind: 'r', col: col, lo: lo, hi: hi, loInc: loInc, hiInc: hiInc}
		}
	}
	// 6. Full scan.
	return accessPlan{kind: 's'}
}

// paramProbeDiv bounds when a bound ID set drives per-ID index probes
// instead of a set-filtered scan: probing costs one index lookup per ID,
// so beyond 1/paramProbeDiv of the table's rows a single scan is cheaper.
const paramProbeDiv = 4

// candidates enumerates candidate rows at a level per its access plan.
func (rt *stmtRun) candidates(level int, tuple []int) ([]int, error) {
	st := rt.st
	t := rt.tables[level]
	rows := rt.rows[level]
	plan := st.plans[level]
	switch plan.kind {
	case 'l':
		ids, indexed := rt.lookupEq(level, plan.col, plan.lit)
		rt.countAccess(indexed)
		return ids, nil
	case 'j':
		v := rt.rows[plan.otherBind][tuple[plan.otherBind]][plan.otherCol]
		ids, indexed := rt.lookupEq(level, plan.col, v)
		rt.countAccess(indexed)
		return ids, nil
	case 'p':
		set := rt.params.setAt(plan.slot)
		// Small sets: one hash-index probe per ID under a single brief
		// lock — the index-driven access path for propagated constraints.
		if len(set.ids) <= len(rows)/paramProbeDiv {
			var ids []int
			var ok bool
			if rt.view != nil {
				ids, ok = t.lookupEqIntsView(plan.col, set.ids, rows)
			} else {
				ids, ok = t.lookupEqInts(plan.col, set.ids)
			}
			if ok {
				rt.stats.IndexLookups++
				return ids, nil
			}
		}
		// Large sets (or no index): scan the level once, filtering by
		// set membership — still no text rendering, no parse, and one
		// binary search per row.
		rt.stats.FullScans++
		var ids []int
		for rid, row := range rows {
			if v := row[plan.col]; v.Kind == TypeInt && set.has(v.Int) {
				ids = append(ids, rid)
			}
		}
		return ids, nil
	case 'n':
		var ids []int
		seen := map[int]bool{}
		indexed := true
		for _, v := range plan.vals {
			got, idx := rt.lookupEq(level, plan.col, v)
			indexed = indexed && idx
			for _, id := range got {
				if !seen[id] {
					seen[id] = true
					ids = append(ids, id)
				}
			}
		}
		sort.Ints(ids)
		rt.countAccess(indexed)
		return ids, nil
	case 'r':
		var ids []int
		var indexed bool
		if rt.view != nil {
			ids, indexed = t.lookupRangeView(plan.col, plan.lo, plan.hi, plan.loInc, plan.hiInc, rows)
		} else {
			ids, indexed = t.lookupRange(plan.col, plan.lo, plan.hi, plan.loInc, plan.hiInc)
		}
		rt.countAccess(indexed)
		return ids, nil
	default:
		rt.stats.FullScans++
		// A Since restriction turns the full scan into a suffix scan: the
		// hot path of a delta fetch, where the events binding enumerates
		// only the rows appended since the previous watermark.
		min := 0
		if rt.minRows != nil {
			min = rt.minRows[level]
		}
		if min > len(rows) {
			min = len(rows)
		}
		ids := make([]int, len(rows)-min)
		for i := range ids {
			ids[i] = min + i
		}
		return ids, nil
	}
}

// lookupEq dispatches an equality lookup to the locked or epoch-view
// variant, per how this execution reads its tables.
func (rt *stmtRun) lookupEq(level, ci int, v Value) ([]int, bool) {
	if rt.view != nil {
		return rt.tables[level].lookupEqView(ci, v, rt.rows[level])
	}
	return rt.tables[level].lookupEq(ci, v)
}

func (rt *stmtRun) countAccess(indexed bool) {
	if indexed {
		rt.stats.IndexLookups++
	} else {
		rt.stats.FullScans++
	}
}

// eqLiteral matches `col = literal` (either side) on the given binding.
func (st *Stmt) eqLiteral(e Expr, level int) (col int, lit Value, ok bool) {
	cmp, isCmp := e.(CmpExpr)
	if !isCmp || cmp.Op != "=" {
		return 0, Value{}, false
	}
	colE, litE := cmp.L, cmp.R
	if _, isLit := colE.(LitExpr); isLit {
		colE, litE = litE, colE
	}
	ce, okc := colE.(ColExpr)
	le, okl := litE.(LitExpr)
	if !okc || !okl {
		return 0, Value{}, false
	}
	bi, ci, err := st.resolveCol(ce.Ref)
	if err != nil || bi != level {
		return 0, Value{}, false
	}
	return ci, le.V, true
}

// eqJoin matches `a.col = b.col` where one side is the given binding.
func (st *Stmt) eqJoin(e Expr, level int) (myCol, otherBind, otherCol int, ok bool) {
	cmp, isCmp := e.(CmpExpr)
	if !isCmp || cmp.Op != "=" {
		return 0, 0, 0, false
	}
	l, okl := cmp.L.(ColExpr)
	r, okr := cmp.R.(ColExpr)
	if !okl || !okr {
		return 0, 0, 0, false
	}
	lb, lc, err1 := st.resolveCol(l.Ref)
	rb, rc, err2 := st.resolveCol(r.Ref)
	if err1 != nil || err2 != nil {
		return 0, 0, 0, false
	}
	switch level {
	case lb:
		return lc, rb, rc, true
	case rb:
		return rc, lb, lc, true
	}
	return 0, 0, 0, false
}

// rangeLiteral matches comparisons and BETWEEN against literals on the
// given binding, returning range bounds.
func (st *Stmt) rangeLiteral(e Expr, level int) (col int, lo, hi *Value, loInc, hiInc, ok bool) {
	switch x := e.(type) {
	case BetweenExpr:
		if x.Neg {
			return
		}
		ce, okc := x.L.(ColExpr)
		if !okc {
			return
		}
		bi, ci, err := st.resolveCol(ce.Ref)
		if err != nil || bi != level {
			return
		}
		l, h := x.Lo, x.Hi
		return ci, &l, &h, true, true, true
	case CmpExpr:
		colE, litE, flip := x.L, x.R, false
		if _, isLit := colE.(LitExpr); isLit {
			colE, litE, flip = litE, colE, true
		}
		ce, okc := colE.(ColExpr)
		le, okl := litE.(LitExpr)
		if !okc || !okl {
			return
		}
		bi, ci, err := st.resolveCol(ce.Ref)
		if err != nil || bi != level {
			return
		}
		op := x.Op
		if flip {
			switch op {
			case "<":
				op = ">"
			case "<=":
				op = ">="
			case ">":
				op = "<"
			case ">=":
				op = "<="
			}
		}
		v := le.V
		switch op {
		case "<":
			return ci, nil, &v, false, false, true
		case "<=":
			return ci, nil, &v, false, true, true
		case ">":
			return ci, &v, nil, false, false, true
		case ">=":
			return ci, &v, nil, true, false, true
		}
	}
	return
}

// compileBool compiles a boolean expression to a closure with all column
// references pre-resolved, so per-row evaluation does no name lookups.
func (st *Stmt) compileBool(e Expr) (boolFn, error) {
	switch x := e.(type) {
	case BinExpr:
		l, err := st.compileBool(x.L)
		if err != nil {
			return nil, err
		}
		r, err := st.compileBool(x.R)
		if err != nil {
			return nil, err
		}
		if x.Op == "and" {
			return func(rt *stmtRun, t []int) bool { return l(rt, t) && r(rt, t) }, nil
		}
		return func(rt *stmtRun, t []int) bool { return l(rt, t) || r(rt, t) }, nil
	case NotExpr:
		inner, err := st.compileBool(x.E)
		if err != nil {
			return nil, err
		}
		return func(rt *stmtRun, t []int) bool { return !inner(rt, t) }, nil
	case CmpExpr:
		l, err := st.compileVal(x.L)
		if err != nil {
			return nil, err
		}
		r, err := st.compileVal(x.R)
		if err != nil {
			return nil, err
		}
		if x.Op == "like" {
			neg := x.Neg
			return func(rt *stmtRun, t []int) bool {
				res := likeMatch(l(rt, t).String(), r(rt, t).String())
				return res != neg
			}, nil
		}
		var test func(c int) bool
		switch x.Op {
		case "=":
			test = func(c int) bool { return c == 0 }
		case "!=":
			test = func(c int) bool { return c != 0 }
		case "<":
			test = func(c int) bool { return c < 0 }
		case "<=":
			test = func(c int) bool { return c <= 0 }
		case ">":
			test = func(c int) bool { return c > 0 }
		case ">=":
			test = func(c int) bool { return c >= 0 }
		default:
			return nil, fmt.Errorf("relstore: unknown comparison %q", x.Op)
		}
		return func(rt *stmtRun, t []int) bool {
			lv, rv := l(rt, t), r(rt, t)
			if lv.IsNull() || rv.IsNull() {
				return false
			}
			return test(Compare(lv, rv))
		}, nil
	case InExpr:
		l, err := st.compileVal(x.L)
		if err != nil {
			return nil, err
		}
		// Pre-index the literal list for O(1) membership tests.
		set := make(map[string]bool, len(x.Vals))
		for _, v := range x.Vals {
			set[v.key()] = true
		}
		neg := x.Neg
		return func(rt *stmtRun, t []int) bool { return set[l(rt, t).key()] != neg }, nil
	case InParamExpr:
		l, err := st.compileVal(x.L)
		if err != nil {
			return nil, err
		}
		if x.Slot < 0 {
			return nil, fmt.Errorf("relstore: negative parameter slot $%d", x.Slot)
		}
		if x.Slot+1 > st.nSet {
			st.nSet = x.Slot + 1
		}
		slot, neg := x.Slot, x.Neg
		return func(rt *stmtRun, t []int) bool {
			v := l(rt, t)
			in := v.Kind == TypeInt && rt.params.has(slot, v.Int)
			return in != neg
		}, nil
	case BetweenExpr:
		l, err := st.compileVal(x.L)
		if err != nil {
			return nil, err
		}
		lo, hi, neg := x.Lo, x.Hi, x.Neg
		return func(rt *stmtRun, t []int) bool {
			v := l(rt, t)
			in := Compare(v, lo) >= 0 && Compare(v, hi) <= 0
			return in != neg
		}, nil
	case IsNullExpr:
		l, err := st.compileVal(x.L)
		if err != nil {
			return nil, err
		}
		neg := x.Neg
		return func(rt *stmtRun, t []int) bool { return l(rt, t).IsNull() != neg }, nil
	case LitExpr:
		truthy := !x.V.IsNull() && !(x.V.Kind == TypeInt && x.V.Int == 0)
		return func(*stmtRun, []int) bool { return truthy }, nil
	default:
		return nil, fmt.Errorf("relstore: expression %T is not boolean", e)
	}
}

// compileVal compiles an operand expression.
func (st *Stmt) compileVal(e Expr) (valFn, error) {
	switch x := e.(type) {
	case LitExpr:
		v := x.V
		return func(*stmtRun, []int) Value { return v }, nil
	case ColExpr:
		bi, ci, err := st.resolveCol(x.Ref)
		if err != nil {
			return nil, err
		}
		return func(rt *stmtRun, t []int) Value { return rt.rows[bi][t[bi]][ci] }, nil
	default:
		return nil, fmt.Errorf("relstore: expression %T is not a value", e)
	}
}

// resolveCol locates a column reference among the bindings, memoizing
// the result (resolution is pure per statement).
func (st *Stmt) resolveCol(ref ColRef) (bi, ci int, err error) {
	if r, ok := st.colCache[ref]; ok {
		return r.bind, r.col, r.err
	}
	bi, ci, err = st.resolveColSlow(ref)
	if st.colCache == nil {
		st.colCache = make(map[ColRef]resolvedRef)
	}
	st.colCache[ref] = resolvedRef{bind: bi, col: ci, err: err}
	return bi, ci, err
}

func (st *Stmt) resolveColSlow(ref ColRef) (bi, ci int, err error) {
	if ref.Table != "" {
		want := strings.ToLower(ref.Table)
		for i, b := range st.binds {
			if b.name == want {
				c := b.table.ColIndex(ref.Col)
				if c < 0 {
					return 0, 0, fmt.Errorf("relstore: no column %q in %q", ref.Col, ref.Table)
				}
				return i, c, nil
			}
		}
		return 0, 0, fmt.Errorf("relstore: no table binding %q", ref.Table)
	}
	found := -1
	for i, b := range st.binds {
		if c := b.table.ColIndex(ref.Col); c >= 0 {
			if found >= 0 {
				return 0, 0, fmt.Errorf("relstore: ambiguous column %q", ref.Col)
			}
			found = i
			ci = c
		}
	}
	if found < 0 {
		return 0, 0, fmt.Errorf("relstore: no column %q", ref.Col)
	}
	return found, ci, nil
}

// collectRefs records which bindings an expression references.
func (st *Stmt) collectRefs(e Expr, refs map[int]bool) error {
	switch x := e.(type) {
	case BinExpr:
		if err := st.collectRefs(x.L, refs); err != nil {
			return err
		}
		return st.collectRefs(x.R, refs)
	case NotExpr:
		return st.collectRefs(x.E, refs)
	case CmpExpr:
		if err := st.collectRefs(x.L, refs); err != nil {
			return err
		}
		return st.collectRefs(x.R, refs)
	case InExpr:
		return st.collectRefs(x.L, refs)
	case InParamExpr:
		return st.collectRefs(x.L, refs)
	case BetweenExpr:
		return st.collectRefs(x.L, refs)
	case IsNullExpr:
		return st.collectRefs(x.L, refs)
	case ColExpr:
		bi, _, err := st.resolveCol(x.Ref)
		if err != nil {
			return err
		}
		refs[bi] = true
		return nil
	case LitExpr:
		return nil
	default:
		return fmt.Errorf("relstore: unknown expression %T", e)
	}
}

// splitAnd flattens nested ANDs into a conjunct list.
func splitAnd(e Expr) []Expr {
	if b, ok := e.(BinExpr); ok && b.Op == "and" {
		return append(splitAnd(b.L), splitAnd(b.R)...)
	}
	return []Expr{e}
}
