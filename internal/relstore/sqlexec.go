package relstore

import (
	"fmt"
	"sort"
	"strings"
)

// Rows is a query result set.
type Rows struct {
	Cols []string
	Data [][]Value
}

// ExecStats reports how a query was executed, for plan inspection and the
// efficiency experiments.
type ExecStats struct {
	RowsScanned   int // rows visited across all join levels
	IndexLookups  int // candidate sets served by an index
	FullScans     int // candidate sets served by a full table scan
	TuplesEmitted int // result rows before distinct/order/limit
}

// Query parses and executes a SELECT statement against the database.
func (db *DB) Query(sql string) (*Rows, error) {
	rows, _, err := db.QueryStats(sql)
	return rows, err
}

// QueryStats is Query plus execution statistics.
func (db *DB) QueryStats(sql string) (*Rows, ExecStats, error) {
	stmt, err := ParseSQL(sql)
	if err != nil {
		return nil, ExecStats{}, err
	}
	return db.Exec(stmt)
}

// Exec executes a parsed statement.
func (db *DB) Exec(stmt *SelectStmt) (*Rows, ExecStats, error) {
	ex := &executor{db: db, stmt: stmt}
	rows, err := ex.run()
	return rows, ex.stats, err
}

// binding is one table instance in the FROM/JOIN list. rows is the row
// storage the statement reads: the live rows under the statement's (or
// caller's) table locks, or an epoch view's captured prefix when the
// statement runs against a View.
type binding struct {
	name  string // bind name (alias or table name), lowercase
	table *Table
	rows  [][]Value
}

// conjunct is one top-level AND-ed condition with the set of bindings it
// references.
type conjunct struct {
	expr Expr
	refs map[int]bool // binding indexes referenced
	// maxRef is the highest binding index referenced; the conjunct is
	// evaluated as soon as that binding is bound.
	maxRef int
	// fn is the compiled form with pre-resolved column references,
	// evaluated on the per-row hot path.
	fn boolFn
}

// boolFn evaluates a compiled boolean expression for a bound tuple.
type boolFn func(tuple []int) bool

// valFn evaluates a compiled operand for a bound tuple.
type valFn func(tuple []int) Value

type executor struct {
	db    *DB
	stmt  *SelectStmt
	binds []binding
	conjs []conjunct
	stats ExecStats
	// view, when non-nil, runs the statement against an epoch view: rows
	// come from the view's captured prefixes, no statement-long locks are
	// taken, and index probes lock only for the duration of the probe.
	view *View

	out      [][]Value
	project  []resolvedCol
	limitHit bool

	// colCache memoizes resolveCol: column resolution is pure per query.
	colCache map[ColRef]resolvedRef
	// conjsAt[level] lists conjunct indexes whose maxRef == level.
	conjsAt [][]int
	// plans[level] is the precomputed access path for each join level.
	plans []accessPlan
}

type resolvedRef struct {
	bind, col int
	err       error
}

// accessPlan describes how to enumerate candidate rows at a join level.
type accessPlan struct {
	kind byte // 'l' eq-literal, 'j' eq-join, 'n' in-list, 'r' range, 's' scan
	col  int  // column on this level's table
	lit  Value
	// in-list values.
	vals []Value
	// eq-join source.
	otherBind, otherCol int
	// range bounds.
	lo, hi       *Value
	loInc, hiInc bool
}

type resolvedCol struct {
	bind int
	col  int
	name string
}

func (ex *executor) run() (*Rows, error) {
	// Bind tables.
	refs := append([]TableRef{ex.stmt.From}, nil...)
	for _, j := range ex.stmt.Joins {
		refs = append(refs, j.Ref)
	}
	seen := map[string]bool{}
	for _, r := range refs {
		b := binding{}
		if ex.view != nil {
			tv := ex.view.Table(r.Name)
			if tv == nil {
				return nil, fmt.Errorf("relstore: no table %q", r.Name)
			}
			b.table, b.rows = tv.t, tv.rows
		} else {
			t := ex.db.Table(r.Name)
			if t == nil {
				return nil, fmt.Errorf("relstore: no table %q", r.Name)
			}
			b.table = t
		}
		bn := r.bindName()
		if seen[bn] {
			return nil, fmt.Errorf("relstore: duplicate table binding %q", bn)
		}
		seen[bn] = true
		b.name = bn
		ex.binds = append(ex.binds, b)
	}

	// Hold the read lock of every bound table for the whole statement so
	// the query sees a consistent snapshot while writers ingest. Tables
	// are deduplicated (a self join binds the same table twice, and a
	// recursive RLock could deadlock behind a queued writer) and locked
	// in table-name order, so two statements binding the same tables in
	// opposite FROM/JOIN orders cannot cycle with queued writers. An
	// epoch-view statement skips all of this: its bindings already carry
	// the view's captured row prefixes.
	if ex.view == nil {
		seenTbl := make(map[*Table]bool, len(ex.binds))
		locked := make([]*Table, 0, len(ex.binds))
		for _, b := range ex.binds {
			if !seenTbl[b.table] {
				seenTbl[b.table] = true
				locked = append(locked, b.table)
			}
		}
		sort.Slice(locked, func(i, j int) bool {
			return strings.ToLower(locked[i].schema.Name) < strings.ToLower(locked[j].schema.Name)
		})
		for _, t := range locked {
			t.mu.RLock()
			defer t.mu.RUnlock()
		}
		// Row storage is read through the bindings; under the held locks
		// the live rows are the statement's snapshot.
		for i := range ex.binds {
			ex.binds[i].rows = ex.binds[i].table.rows
		}
	}

	// Collect conjuncts from JOIN ON and WHERE clauses.
	var all []Expr
	for _, j := range ex.stmt.Joins {
		all = append(all, splitAnd(j.On)...)
	}
	if ex.stmt.Where != nil {
		all = append(all, splitAnd(ex.stmt.Where)...)
	}
	for _, e := range all {
		refs := map[int]bool{}
		if err := ex.collectRefs(e, refs); err != nil {
			return nil, err
		}
		maxRef := 0
		for bi := range refs {
			if bi > maxRef {
				maxRef = bi
			}
		}
		fn, err := ex.compileBool(e)
		if err != nil {
			return nil, err
		}
		ex.conjs = append(ex.conjs, conjunct{expr: e, refs: refs, maxRef: maxRef, fn: fn})
	}

	// Resolve projection.
	if ex.stmt.Star {
		for bi, b := range ex.binds {
			for ci, c := range b.table.schema.Columns {
				name := c.Name
				if len(ex.binds) > 1 {
					name = b.name + "." + c.Name
				}
				ex.project = append(ex.project, resolvedCol{bind: bi, col: ci, name: name})
			}
		}
	} else {
		for _, item := range ex.stmt.Items {
			bi, ci, err := ex.resolveCol(item.Ref)
			if err != nil {
				return nil, err
			}
			name := item.Alias
			if name == "" {
				name = item.Ref.String()
			}
			ex.project = append(ex.project, resolvedCol{bind: bi, col: ci, name: name})
		}
	}

	// Validate ORDER BY references early.
	for _, o := range ex.stmt.OrderBy {
		if _, _, err := ex.resolveCol(o.Ref); err != nil {
			return nil, err
		}
	}

	// Precompute per-level conjunct lists and access plans.
	ex.conjsAt = make([][]int, len(ex.binds))
	for ci, c := range ex.conjs {
		ex.conjsAt[c.maxRef] = append(ex.conjsAt[c.maxRef], ci)
	}
	ex.plans = make([]accessPlan, len(ex.binds))
	for level := range ex.binds {
		ex.plans[level] = ex.planLevel(level)
	}

	tuple := make([]int, len(ex.binds))
	if err := ex.join(0, tuple); err != nil {
		return nil, err
	}

	// ORDER BY.
	if len(ex.stmt.OrderBy) > 0 && !ex.limitFriendly() {
		// Rows were emitted unordered; sort now. Projection has already
		// been applied, so order keys must be re-resolved against the
		// projection when possible; otherwise we sort on raw tuples —
		// to keep this simple we sort the projected rows by locating the
		// order column within the projection.
		keyIdx := make([]int, len(ex.stmt.OrderBy))
		for i, o := range ex.stmt.OrderBy {
			keyIdx[i] = ex.findProjected(o.Ref)
			if keyIdx[i] < 0 {
				return nil, fmt.Errorf("relstore: ORDER BY column %s must appear in the select list", o.Ref)
			}
		}
		sort.SliceStable(ex.out, func(a, b int) bool {
			for i, ki := range keyIdx {
				c := Compare(ex.out[a][ki], ex.out[b][ki])
				if c == 0 {
					continue
				}
				if ex.stmt.OrderBy[i].Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
	}

	// DISTINCT.
	if ex.stmt.Distinct {
		seen := map[string]bool{}
		dst := ex.out[:0]
		for _, row := range ex.out {
			var b strings.Builder
			for _, v := range row {
				b.WriteString(v.key())
				b.WriteByte('\x00')
			}
			k := b.String()
			if !seen[k] {
				seen[k] = true
				dst = append(dst, row)
			}
		}
		ex.out = dst
	}

	// LIMIT.
	if ex.stmt.Limit >= 0 && len(ex.out) > ex.stmt.Limit {
		ex.out = ex.out[:ex.stmt.Limit]
	}

	cols := make([]string, len(ex.project))
	for i, p := range ex.project {
		cols[i] = p.name
	}
	return &Rows{Cols: cols, Data: ex.out}, nil
}

// limitFriendly reports whether early termination on LIMIT is safe
// (no ORDER BY and no DISTINCT semantics that need the full set).
func (ex *executor) limitFriendly() bool {
	return len(ex.stmt.OrderBy) == 0
}

func (ex *executor) findProjected(ref ColRef) int {
	bi, ci, err := ex.resolveCol(ref)
	if err != nil {
		return -1
	}
	for i, p := range ex.project {
		if p.bind == bi && p.col == ci {
			return i
		}
	}
	return -1
}

// join binds tables level by level, using indexes where possible and
// evaluating each conjunct as soon as all its bindings are bound.
func (ex *executor) join(level int, tuple []int) error {
	if ex.limitHit {
		return nil
	}
	if level == len(ex.binds) {
		row := make([]Value, len(ex.project))
		for i, p := range ex.project {
			row[i] = ex.binds[p.bind].rows[tuple[p.bind]][p.col]
		}
		ex.out = append(ex.out, row)
		ex.stats.TuplesEmitted++
		if ex.stmt.Limit >= 0 && !ex.stmt.Distinct && ex.limitFriendly() && len(ex.out) >= ex.stmt.Limit {
			ex.limitHit = true
		}
		return nil
	}

	cands, err := ex.candidates(level, tuple)
	if err != nil {
		return err
	}
	for _, rid := range cands {
		tuple[level] = rid
		ex.stats.RowsScanned++
		ok, err := ex.checkConjuncts(level, tuple)
		if err != nil {
			return err
		}
		if !ok {
			continue
		}
		if err := ex.join(level+1, tuple); err != nil {
			return err
		}
		if ex.limitHit {
			return nil
		}
	}
	return nil
}

// planLevel picks the most selective access path for the table at level
// (chosen once per query; equi-join lookups read the bound value from the
// tuple at runtime).
func (ex *executor) planLevel(level int) accessPlan {
	// 1. Equi-join with an already-bound table: the per-tuple lookup
	// value makes this far more selective than a constant predicate
	// (classic index nested-loop join).
	for _, c := range ex.conjs {
		myCol, otherBind, otherCol, ok := ex.eqJoin(c.expr, level)
		if ok && otherBind < level {
			return accessPlan{kind: 'j', col: myCol, otherBind: otherBind, otherCol: otherCol}
		}
	}
	// 2. Small IN-list on this table's column: the union of per-value
	// index lookups is usually tighter than any single-value bucket
	// (this is how propagated entity-ID constraints become index driven).
	for _, c := range ex.conjs {
		in, ok := c.expr.(InExpr)
		if !ok || in.Neg || len(in.Vals) > 128 || len(c.refs) != 1 || !c.refs[level] {
			continue
		}
		ce, okc := in.L.(ColExpr)
		if !okc {
			continue
		}
		bi, ci, err := ex.resolveCol(ce.Ref)
		if err != nil || bi != level {
			continue
		}
		return accessPlan{kind: 'n', col: ci, vals: in.Vals}
	}
	// 3. Equality with a literal on this table's column.
	for _, c := range ex.conjs {
		col, lit, ok := ex.eqLiteral(c.expr, level)
		if ok && len(c.refs) == 1 && c.refs[level] {
			return accessPlan{kind: 'l', col: col, lit: lit}
		}
	}
	// 4. Range predicate with literals.
	for _, c := range ex.conjs {
		col, lo, hi, loInc, hiInc, ok := ex.rangeLiteral(c.expr, level)
		if ok && len(c.refs) == 1 && c.refs[level] {
			return accessPlan{kind: 'r', col: col, lo: lo, hi: hi, loInc: loInc, hiInc: hiInc}
		}
	}
	// 5. Full scan.
	return accessPlan{kind: 's'}
}

// candidates enumerates candidate rows at a level per its access plan.
func (ex *executor) candidates(level int, tuple []int) ([]int, error) {
	b := &ex.binds[level]
	plan := ex.plans[level]
	switch plan.kind {
	case 'l':
		ids, indexed := ex.lookupEq(b, plan.col, plan.lit)
		ex.countAccess(indexed)
		return ids, nil
	case 'j':
		v := ex.binds[plan.otherBind].rows[tuple[plan.otherBind]][plan.otherCol]
		ids, indexed := ex.lookupEq(b, plan.col, v)
		ex.countAccess(indexed)
		return ids, nil
	case 'n':
		var ids []int
		seen := map[int]bool{}
		indexed := true
		for _, v := range plan.vals {
			got, idx := ex.lookupEq(b, plan.col, v)
			indexed = indexed && idx
			for _, id := range got {
				if !seen[id] {
					seen[id] = true
					ids = append(ids, id)
				}
			}
		}
		sort.Ints(ids)
		ex.countAccess(indexed)
		return ids, nil
	case 'r':
		var ids []int
		var indexed bool
		if ex.view != nil {
			ids, indexed = b.table.lookupRangeView(plan.col, plan.lo, plan.hi, plan.loInc, plan.hiInc, b.rows)
		} else {
			ids, indexed = b.table.lookupRange(plan.col, plan.lo, plan.hi, plan.loInc, plan.hiInc)
		}
		ex.countAccess(indexed)
		return ids, nil
	default:
		ex.stats.FullScans++
		ids := make([]int, len(b.rows))
		for i := range ids {
			ids[i] = i
		}
		return ids, nil
	}
}

// lookupEq dispatches an equality lookup to the locked or epoch-view
// variant, per how this statement reads its tables.
func (ex *executor) lookupEq(b *binding, ci int, v Value) ([]int, bool) {
	if ex.view != nil {
		return b.table.lookupEqView(ci, v, b.rows)
	}
	return b.table.lookupEq(ci, v)
}

func (ex *executor) countAccess(indexed bool) {
	if indexed {
		ex.stats.IndexLookups++
	} else {
		ex.stats.FullScans++
	}
}

// eqLiteral matches `col = literal` (either side) on the given binding.
func (ex *executor) eqLiteral(e Expr, level int) (col int, lit Value, ok bool) {
	cmp, isCmp := e.(CmpExpr)
	if !isCmp || cmp.Op != "=" {
		return 0, Value{}, false
	}
	colE, litE := cmp.L, cmp.R
	if _, isLit := colE.(LitExpr); isLit {
		colE, litE = litE, colE
	}
	ce, okc := colE.(ColExpr)
	le, okl := litE.(LitExpr)
	if !okc || !okl {
		return 0, Value{}, false
	}
	bi, ci, err := ex.resolveCol(ce.Ref)
	if err != nil || bi != level {
		return 0, Value{}, false
	}
	return ci, le.V, true
}

// eqJoin matches `a.col = b.col` where one side is the given binding.
func (ex *executor) eqJoin(e Expr, level int) (myCol, otherBind, otherCol int, ok bool) {
	cmp, isCmp := e.(CmpExpr)
	if !isCmp || cmp.Op != "=" {
		return 0, 0, 0, false
	}
	l, okl := cmp.L.(ColExpr)
	r, okr := cmp.R.(ColExpr)
	if !okl || !okr {
		return 0, 0, 0, false
	}
	lb, lc, err1 := ex.resolveCol(l.Ref)
	rb, rc, err2 := ex.resolveCol(r.Ref)
	if err1 != nil || err2 != nil {
		return 0, 0, 0, false
	}
	switch level {
	case lb:
		return lc, rb, rc, true
	case rb:
		return rc, lb, lc, true
	}
	return 0, 0, 0, false
}

// rangeLiteral matches comparisons and BETWEEN against literals on the
// given binding, returning range bounds.
func (ex *executor) rangeLiteral(e Expr, level int) (col int, lo, hi *Value, loInc, hiInc, ok bool) {
	switch x := e.(type) {
	case BetweenExpr:
		if x.Neg {
			return
		}
		ce, okc := x.L.(ColExpr)
		if !okc {
			return
		}
		bi, ci, err := ex.resolveCol(ce.Ref)
		if err != nil || bi != level {
			return
		}
		l, h := x.Lo, x.Hi
		return ci, &l, &h, true, true, true
	case CmpExpr:
		colE, litE, flip := x.L, x.R, false
		if _, isLit := colE.(LitExpr); isLit {
			colE, litE, flip = litE, colE, true
		}
		ce, okc := colE.(ColExpr)
		le, okl := litE.(LitExpr)
		if !okc || !okl {
			return
		}
		bi, ci, err := ex.resolveCol(ce.Ref)
		if err != nil || bi != level {
			return
		}
		op := x.Op
		if flip {
			switch op {
			case "<":
				op = ">"
			case "<=":
				op = ">="
			case ">":
				op = "<"
			case ">=":
				op = "<="
			}
		}
		v := le.V
		switch op {
		case "<":
			return ci, nil, &v, false, false, true
		case "<=":
			return ci, nil, &v, false, true, true
		case ">":
			return ci, &v, nil, false, false, true
		case ">=":
			return ci, &v, nil, true, false, true
		}
	}
	return
}

// checkConjuncts evaluates every conjunct that becomes fully bound at this
// level.
func (ex *executor) checkConjuncts(level int, tuple []int) (bool, error) {
	for _, ci := range ex.conjsAt[level] {
		if !ex.conjs[ci].fn(tuple) {
			return false, nil
		}
	}
	return true, nil
}

// compileBool compiles a boolean expression to a closure with all column
// references pre-resolved, so per-row evaluation does no name lookups.
func (ex *executor) compileBool(e Expr) (boolFn, error) {
	switch x := e.(type) {
	case BinExpr:
		l, err := ex.compileBool(x.L)
		if err != nil {
			return nil, err
		}
		r, err := ex.compileBool(x.R)
		if err != nil {
			return nil, err
		}
		if x.Op == "and" {
			return func(t []int) bool { return l(t) && r(t) }, nil
		}
		return func(t []int) bool { return l(t) || r(t) }, nil
	case NotExpr:
		inner, err := ex.compileBool(x.E)
		if err != nil {
			return nil, err
		}
		return func(t []int) bool { return !inner(t) }, nil
	case CmpExpr:
		l, err := ex.compileVal(x.L)
		if err != nil {
			return nil, err
		}
		r, err := ex.compileVal(x.R)
		if err != nil {
			return nil, err
		}
		if x.Op == "like" {
			neg := x.Neg
			return func(t []int) bool {
				res := likeMatch(l(t).String(), r(t).String())
				return res != neg
			}, nil
		}
		var test func(c int) bool
		switch x.Op {
		case "=":
			test = func(c int) bool { return c == 0 }
		case "!=":
			test = func(c int) bool { return c != 0 }
		case "<":
			test = func(c int) bool { return c < 0 }
		case "<=":
			test = func(c int) bool { return c <= 0 }
		case ">":
			test = func(c int) bool { return c > 0 }
		case ">=":
			test = func(c int) bool { return c >= 0 }
		default:
			return nil, fmt.Errorf("relstore: unknown comparison %q", x.Op)
		}
		return func(t []int) bool {
			lv, rv := l(t), r(t)
			if lv.IsNull() || rv.IsNull() {
				return false
			}
			return test(Compare(lv, rv))
		}, nil
	case InExpr:
		l, err := ex.compileVal(x.L)
		if err != nil {
			return nil, err
		}
		// Pre-index the literal list for O(1) membership tests.
		set := make(map[string]bool, len(x.Vals))
		for _, v := range x.Vals {
			set[v.key()] = true
		}
		neg := x.Neg
		return func(t []int) bool { return set[l(t).key()] != neg }, nil
	case BetweenExpr:
		l, err := ex.compileVal(x.L)
		if err != nil {
			return nil, err
		}
		lo, hi, neg := x.Lo, x.Hi, x.Neg
		return func(t []int) bool {
			v := l(t)
			in := Compare(v, lo) >= 0 && Compare(v, hi) <= 0
			return in != neg
		}, nil
	case IsNullExpr:
		l, err := ex.compileVal(x.L)
		if err != nil {
			return nil, err
		}
		neg := x.Neg
		return func(t []int) bool { return l(t).IsNull() != neg }, nil
	case LitExpr:
		truthy := !x.V.IsNull() && !(x.V.Kind == TypeInt && x.V.Int == 0)
		return func([]int) bool { return truthy }, nil
	default:
		return nil, fmt.Errorf("relstore: expression %T is not boolean", e)
	}
}

// compileVal compiles an operand expression.
func (ex *executor) compileVal(e Expr) (valFn, error) {
	switch x := e.(type) {
	case LitExpr:
		v := x.V
		return func([]int) Value { return v }, nil
	case ColExpr:
		bi, ci, err := ex.resolveCol(x.Ref)
		if err != nil {
			return nil, err
		}
		// Capture the binding pointer, not its rows: compilation can run
		// before the locked path assigns row storage to the bindings.
		b := &ex.binds[bi]
		return func(t []int) Value { return b.rows[t[bi]][ci] }, nil
	default:
		return nil, fmt.Errorf("relstore: expression %T is not a value", e)
	}
}

// resolveCol locates a column reference among the bindings, memoizing the
// result (resolution is pure per query and sits on the per-row hot path).
func (ex *executor) resolveCol(ref ColRef) (bi, ci int, err error) {
	if r, ok := ex.colCache[ref]; ok {
		return r.bind, r.col, r.err
	}
	bi, ci, err = ex.resolveColSlow(ref)
	if ex.colCache == nil {
		ex.colCache = make(map[ColRef]resolvedRef)
	}
	ex.colCache[ref] = resolvedRef{bind: bi, col: ci, err: err}
	return bi, ci, err
}

func (ex *executor) resolveColSlow(ref ColRef) (bi, ci int, err error) {
	if ref.Table != "" {
		want := strings.ToLower(ref.Table)
		for i, b := range ex.binds {
			if b.name == want {
				c := b.table.ColIndex(ref.Col)
				if c < 0 {
					return 0, 0, fmt.Errorf("relstore: no column %q in %q", ref.Col, ref.Table)
				}
				return i, c, nil
			}
		}
		return 0, 0, fmt.Errorf("relstore: no table binding %q", ref.Table)
	}
	found := -1
	for i, b := range ex.binds {
		if c := b.table.ColIndex(ref.Col); c >= 0 {
			if found >= 0 {
				return 0, 0, fmt.Errorf("relstore: ambiguous column %q", ref.Col)
			}
			found = i
			ci = c
		}
	}
	if found < 0 {
		return 0, 0, fmt.Errorf("relstore: no column %q", ref.Col)
	}
	return found, ci, nil
}

// collectRefs records which bindings an expression references.
func (ex *executor) collectRefs(e Expr, refs map[int]bool) error {
	switch x := e.(type) {
	case BinExpr:
		if err := ex.collectRefs(x.L, refs); err != nil {
			return err
		}
		return ex.collectRefs(x.R, refs)
	case NotExpr:
		return ex.collectRefs(x.E, refs)
	case CmpExpr:
		if err := ex.collectRefs(x.L, refs); err != nil {
			return err
		}
		return ex.collectRefs(x.R, refs)
	case InExpr:
		return ex.collectRefs(x.L, refs)
	case BetweenExpr:
		return ex.collectRefs(x.L, refs)
	case IsNullExpr:
		return ex.collectRefs(x.L, refs)
	case ColExpr:
		bi, _, err := ex.resolveCol(x.Ref)
		if err != nil {
			return err
		}
		refs[bi] = true
		return nil
	case LitExpr:
		return nil
	default:
		return fmt.Errorf("relstore: unknown expression %T", e)
	}
}

// splitAnd flattens nested ANDs into a conjunct list.
func splitAnd(e Expr) []Expr {
	if b, ok := e.(BinExpr); ok && b.Op == "and" {
		return append(splitAnd(b.L), splitAnd(b.R)...)
	}
	return []Expr{e}
}
