package relstore

import "testing"

// FuzzParseSQL: the SQL parser must never panic, and anything it accepts
// must execute (or fail cleanly) against a loaded database.
func FuzzParseSQL(f *testing.F) {
	seeds := []string{
		"SELECT * FROM entities",
		"SELECT e.id FROM events e JOIN entities s ON e.srcid = s.id WHERE s.exename LIKE '%tar%'",
		"SELECT DISTINCT optype FROM events ORDER BY optype DESC LIMIT 3",
		"SELECT id FROM events WHERE optype IN ('read','write') AND starttime BETWEEN 1 AND 9",
		"SELECT id FROM t WHERE v IS NOT NULL OR NOT v = 'x'",
		"SELECT",
		"SELECT ' FROM",
		"SELECT id FROM events WHERE (((",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	db := NewDB()
	if err := Bootstrap(db); err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, src string) {
		stmt, err := ParseSQL(src)
		if err != nil {
			return
		}
		// Accepted statements must execute without panicking.
		_, _, _ = db.Exec(stmt)
	})
}
