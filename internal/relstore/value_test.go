package relstore

import (
	"testing"
	"testing/quick"
)

func TestValueString(t *testing.T) {
	if IntValue(42).String() != "42" || TextValue("x").String() != "x" || NullValue.String() != "NULL" {
		t.Error("value rendering wrong")
	}
}

func TestValueSQL(t *testing.T) {
	if IntValue(-3).SQL() != "-3" {
		t.Errorf("int SQL = %q", IntValue(-3).SQL())
	}
	if TextValue("a'b").SQL() != "'a''b'" {
		t.Errorf("text SQL = %q", TextValue("a'b").SQL())
	}
	if NullValue.SQL() != "NULL" {
		t.Errorf("null SQL = %q", NullValue.SQL())
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{IntValue(1), IntValue(2), -1},
		{IntValue(2), IntValue(2), 0},
		{IntValue(3), IntValue(2), 1},
		{TextValue("a"), TextValue("b"), -1},
		{TextValue("b"), TextValue("b"), 0},
		{NullValue, IntValue(0), -1},
		{IntValue(0), NullValue, 1},
		{NullValue, NullValue, 0},
		{IntValue(5), TextValue("5"), 0}, // numeric coercion
		{IntValue(5), TextValue("10"), -1},
		{TextValue("10"), IntValue(5), 1},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// Property: Compare is antisymmetric and reflexive for ints.
func TestCompareProperty(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := IntValue(a), IntValue(b)
		return Compare(va, vb) == -Compare(vb, va) && Compare(va, va) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLikeMatch(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"/bin/tar", "%/bin/tar%", true},
		{"/usr/bin/tar", "%/bin/tar%", true},
		{"/bin/tar", "/bin/tar", true},
		{"/bin/tart", "/bin/tar", false},
		{"/bin/tar", "%tar", true},
		{"/bin/tar", "tar%", false},
		{"/bin/tar", "/bin/%", true},
		{"abc", "a_c", true},
		{"abbc", "a_c", false},
		{"", "%", true},
		{"", "", true},
		{"x", "", false},
		{"/tmp/upload.tar.bz2", "%upload%", true},
		{"192.168.29.128", "192.168.%", true},
		{"anything", "%%%", true},
		{"ab", "_%", true},
		{"", "_", false},
	}
	for _, c := range cases {
		if got := likeMatch(c.s, c.p); got != c.want {
			t.Errorf("likeMatch(%q, %q) = %v, want %v", c.s, c.p, got, c.want)
		}
	}
}

// Property: a pattern equal to the string always matches when the string
// contains no wildcards; '%'+s+'%' always matches any superstring.
func TestLikeMatchProperty(t *testing.T) {
	clean := func(s string) string {
		out := make([]rune, 0, len(s))
		for _, r := range s {
			if r != '%' && r != '_' {
				out = append(out, r)
			}
		}
		return string(out)
	}
	f := func(pre, mid, post string) bool {
		m := clean(mid)
		full := clean(pre) + m + clean(post)
		return likeMatch(m, m) && likeMatch(full, "%"+m+"%")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
