package relstore

import (
	"fmt"

	"repro/internal/audit"
)

// Standard table names for the ThreatRaptor storage layout.
const (
	EntityTable = "entities"
	EventTable  = "events"
)

// EntitySchema is the schema of the system-entity table. The column set
// mirrors the representative attributes in the paper: file name/path,
// process executable name, src/dst IP and port.
func EntitySchema() Schema {
	return Schema{
		Name: EntityTable,
		Columns: []Column{
			{Name: "id", Type: TypeInt},
			{Name: "type", Type: TypeText},
			{Name: "host", Type: TypeText},
			{Name: "name", Type: TypeText},
			{Name: "exename", Type: TypeText},
			{Name: "pid", Type: TypeInt},
			{Name: "path", Type: TypeText},
			{Name: "srcip", Type: TypeText},
			{Name: "srcport", Type: TypeInt},
			{Name: "dstip", Type: TypeText},
			{Name: "dstport", Type: TypeInt},
			{Name: "proto", Type: TypeText},
		},
	}
}

// EventSchema is the schema of the system-event table: sbj/obj entity ID,
// operation, start/end time, plus amount and host.
func EventSchema() Schema {
	return Schema{
		Name: EventTable,
		Columns: []Column{
			{Name: "id", Type: TypeInt},
			{Name: "srcid", Type: TypeInt},
			{Name: "dstid", Type: TypeInt},
			{Name: "optype", Type: TypeText},
			{Name: "starttime", Type: TypeInt},
			{Name: "endtime", Type: TypeInt},
			{Name: "amount", Type: TypeInt},
			{Name: "host", Type: TypeText},
		},
	}
}

// Bootstrap creates the entity and event tables with the indexes
// ThreatRaptor declares on key attributes: hash indexes on IDs and the
// default name attributes, and an ordered index on event start time for
// time-window filters.
func Bootstrap(db *DB) error {
	ents, err := db.CreateTable(EntitySchema())
	if err != nil {
		return err
	}
	evts, err := db.CreateTable(EventSchema())
	if err != nil {
		return err
	}
	for _, col := range []string{"id", "type", "name", "exename", "dstip"} {
		if err := ents.CreateHashIndex(col); err != nil {
			return err
		}
	}
	for _, col := range []string{"id", "srcid", "dstid", "optype"} {
		if err := evts.CreateHashIndex(col); err != nil {
			return err
		}
	}
	if err := evts.CreateOrderedIndex("starttime"); err != nil {
		return err
	}
	// Cardinality tracking for the cost-based optimizer: distinct counts
	// for the indexed filter/join columns (free — piggybacks on hash
	// index maintenance), per-value counts for the unindexed host
	// columns, and the event-time range for window selectivity.
	for _, col := range []string{"type", "name", "exename", "dstip", "host"} {
		if err := ents.TrackColumn(col); err != nil {
			return err
		}
	}
	for _, col := range []string{"srcid", "dstid", "optype", "host"} {
		if err := evts.TrackColumn(col); err != nil {
			return err
		}
	}
	if err := evts.TrackRange("starttime"); err != nil {
		return err
	}
	return nil
}

// EntityRow converts a system entity into its table row.
func EntityRow(e *audit.Entity) []Value {
	return []Value{
		IntValue(e.ID),
		TextValue(e.Type.String()),
		TextValue(e.Host),
		TextValue(e.Name()),
		TextValue(e.ExeName),
		IntValue(int64(e.PID)),
		TextValue(e.Path),
		TextValue(e.SrcIP),
		IntValue(int64(e.SrcPort)),
		TextValue(e.DstIP),
		IntValue(int64(e.DstPort)),
		TextValue(e.Proto),
	}
}

// EventRow converts a system event into its table row.
func EventRow(ev *audit.Event) []Value {
	return []Value{
		IntValue(ev.ID),
		IntValue(ev.SrcID),
		IntValue(ev.DstID),
		TextValue(ev.Op.String()),
		IntValue(ev.StartTime),
		IntValue(ev.EndTime),
		IntValue(ev.Amount),
		TextValue(ev.Host),
	}
}

// Load bulk-inserts parsed audit data into a bootstrapped database.
func Load(db *DB, entities []*audit.Entity, events []*audit.Event) error {
	ents := db.Table(EntityTable)
	evts := db.Table(EventTable)
	if ents == nil || evts == nil {
		return fmt.Errorf("relstore: database is not bootstrapped")
	}
	for _, e := range entities {
		if err := ents.Insert(EntityRow(e)); err != nil {
			return err
		}
	}
	for _, ev := range events {
		if err := evts.Insert(EventRow(ev)); err != nil {
			return err
		}
	}
	return nil
}
