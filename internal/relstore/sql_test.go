package relstore

import (
	"strings"
	"testing"

	"repro/internal/audit"
)

// loadFixture builds a bootstrapped DB containing the Fig. 2 data-leakage
// chain plus benign noise.
func loadFixture(t testing.TB) *DB {
	t.Helper()
	p := audit.NewParser()
	recs := []audit.Record{
		// Benign noise.
		{StartNS: 10, EndNS: 11, Host: "h", PID: 50, Exe: "/usr/sbin/sshd", Op: audit.OpRead, ObjType: audit.EntityFile, ObjSpec: "/etc/passwd", Amount: 1},
		{StartNS: 20, EndNS: 21, Host: "h", PID: 51, Exe: "/bin/tar", Op: audit.OpRead, ObjType: audit.EntityFile, ObjSpec: "/home/a/doc.txt", Amount: 1},
		// Attack chain (Fig. 2).
		{StartNS: 100, EndNS: 101, Host: "h", PID: 60, Exe: "/bin/tar", Op: audit.OpRead, ObjType: audit.EntityFile, ObjSpec: "/etc/passwd", Amount: 2949},
		{StartNS: 110, EndNS: 111, Host: "h", PID: 60, Exe: "/bin/tar", Op: audit.OpWrite, ObjType: audit.EntityFile, ObjSpec: "/tmp/upload.tar", Amount: 10240},
		{StartNS: 120, EndNS: 121, Host: "h", PID: 61, Exe: "/bin/bzip2", Op: audit.OpRead, ObjType: audit.EntityFile, ObjSpec: "/tmp/upload.tar", Amount: 10240},
		{StartNS: 130, EndNS: 131, Host: "h", PID: 61, Exe: "/bin/bzip2", Op: audit.OpWrite, ObjType: audit.EntityFile, ObjSpec: "/tmp/upload.tar.bz2", Amount: 4180},
		{StartNS: 140, EndNS: 141, Host: "h", PID: 62, Exe: "/usr/bin/curl", Op: audit.OpConnect, ObjType: audit.EntityNetConn, ObjSpec: audit.ConnSpec("10.0.0.5", 40000, "192.168.29.128", 443, "tcp"), Amount: 4180},
	}
	for _, r := range recs {
		if _, err := p.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	db := NewDB()
	if err := Bootstrap(db); err != nil {
		t.Fatal(err)
	}
	if err := Load(db, p.Entities(), p.Events()); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestQuerySimpleSelect(t *testing.T) {
	db := loadFixture(t)
	rows, err := db.Query("SELECT id, optype FROM events WHERE optype = 'connect'")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 1 {
		t.Fatalf("want 1 connect event, got %d", len(rows.Data))
	}
	if rows.Cols[1] != "optype" || rows.Data[0][1].Str != "connect" {
		t.Errorf("row = %v", rows.Data[0])
	}
}

func TestQueryStar(t *testing.T) {
	db := loadFixture(t)
	rows, err := db.Query("SELECT * FROM entities WHERE type = 'netconn'")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 1 {
		t.Fatalf("want 1 netconn entity, got %d", len(rows.Data))
	}
	if len(rows.Cols) != len(EntitySchema().Columns) {
		t.Errorf("star should project all columns, got %v", rows.Cols)
	}
}

func TestQueryLike(t *testing.T) {
	db := loadFixture(t)
	rows, err := db.Query("SELECT id FROM entities WHERE exename LIKE '%/bin/tar%'")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 2 {
		t.Fatalf("want 2 tar processes, got %d", len(rows.Data))
	}
	rows, err = db.Query("SELECT id FROM entities WHERE exename NOT LIKE '%tar%' AND type = 'process'")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows.Data {
		_ = r
	}
	if len(rows.Data) != 3 { // sshd, bzip2, curl
		t.Errorf("NOT LIKE: want 3, got %d", len(rows.Data))
	}
}

func TestQueryJoinEntityEvent(t *testing.T) {
	db := loadFixture(t)
	// The paper's compilation joins entity tables with the event table.
	q := `SELECT p.exename, f.path, e.starttime
	      FROM events e
	      JOIN entities p ON e.srcid = p.id
	      JOIN entities f ON e.dstid = f.id
	      WHERE p.exename LIKE '%/bin/tar%' AND e.optype = 'read' AND f.path LIKE '%/etc/passwd%'`
	rows, stats, err := db.QueryStats(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 1 {
		t.Fatalf("want exactly the attack read, got %d rows", len(rows.Data))
	}
	if rows.Data[0][0].Str != "/bin/tar" || rows.Data[0][1].Str != "/etc/passwd" {
		t.Errorf("row = %v", rows.Data[0])
	}
	if stats.IndexLookups == 0 {
		t.Error("join should use indexes")
	}
}

func TestQueryOrderByLimit(t *testing.T) {
	db := loadFixture(t)
	rows, err := db.Query("SELECT id, starttime FROM events ORDER BY starttime DESC LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 3 {
		t.Fatalf("limit: got %d rows", len(rows.Data))
	}
	if rows.Data[0][1].Int != 140 || rows.Data[2][1].Int != 120 {
		t.Errorf("order desc wrong: %v", rows.Data)
	}
	rows, err = db.Query("SELECT id, starttime FROM events ORDER BY starttime ASC LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	if rows.Data[0][1].Int != 10 {
		t.Errorf("order asc wrong: %v", rows.Data)
	}
}

func TestQueryDistinct(t *testing.T) {
	db := loadFixture(t)
	rows, err := db.Query("SELECT DISTINCT optype FROM events")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 3 { // read, write, connect
		t.Errorf("distinct optypes = %d, want 3", len(rows.Data))
	}
}

func TestQueryInBetween(t *testing.T) {
	db := loadFixture(t)
	rows, err := db.Query("SELECT id FROM events WHERE optype IN ('read', 'write') AND starttime BETWEEN 100 AND 131")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 4 {
		t.Errorf("in/between: got %d rows, want 4", len(rows.Data))
	}
	rows, err = db.Query("SELECT id FROM events WHERE optype NOT IN ('read', 'write', 'connect')")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 0 {
		t.Errorf("not in: got %d rows", len(rows.Data))
	}
}

func TestQueryOrNot(t *testing.T) {
	db := loadFixture(t)
	rows, err := db.Query("SELECT id FROM events WHERE optype = 'connect' OR (optype = 'read' AND amount > 1000)")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 3 { // connect + 2 big reads
		t.Errorf("or: got %d rows, want 3", len(rows.Data))
	}
	rows, err = db.Query("SELECT id FROM events WHERE NOT optype = 'read'")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 3 { // 2 writes + 1 connect
		t.Errorf("not: got %d rows, want 3", len(rows.Data))
	}
}

func TestQueryAlias(t *testing.T) {
	db := loadFixture(t)
	rows, err := db.Query("SELECT e.optype AS op FROM events AS e WHERE e.amount >= 10240")
	if err != nil {
		t.Fatal(err)
	}
	if rows.Cols[0] != "op" {
		t.Errorf("alias not applied: %v", rows.Cols)
	}
	if len(rows.Data) != 2 {
		t.Errorf("got %d rows", len(rows.Data))
	}
}

func TestQueryErrors(t *testing.T) {
	db := loadFixture(t)
	bad := []string{
		"SELECT FROM events",
		"SELECT id FROM nosuch",
		"SELECT nosuch FROM events",
		"SELECT id FROM events WHERE",
		"SELECT id FROM events WHERE id ==",
		"SELECT id FROM events LIMIT x",
		"INSERT INTO events VALUES (1)",
		"SELECT id FROM events JOIN events ON id = id",              // duplicate binding
		"SELECT id FROM events e JOIN entities p ON e.srcid = p.id", // ambiguous 'id'
		"SELECT id FROM events WHERE name = 'unterminated",
		"SELECT id FROM events trailing garbage tokens here",
	}
	for _, q := range bad {
		if _, err := db.Query(q); err == nil {
			t.Errorf("query should fail: %s", q)
		}
	}
}

func TestQueryIsNull(t *testing.T) {
	db := NewDB()
	tbl, err := db.CreateTable(Schema{Name: "t", Columns: []Column{
		{Name: "id", Type: TypeInt}, {Name: "v", Type: TypeText}}})
	if err != nil {
		t.Fatal(err)
	}
	tbl.Insert([]Value{IntValue(1), TextValue("x")})
	tbl.Insert([]Value{IntValue(2), NullValue})
	rows, err := db.Query("SELECT id FROM t WHERE v IS NULL")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 1 || rows.Data[0][0].Int != 2 {
		t.Errorf("is null: %v", rows.Data)
	}
	rows, err = db.Query("SELECT id FROM t WHERE v IS NOT NULL")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 1 || rows.Data[0][0].Int != 1 {
		t.Errorf("is not null: %v", rows.Data)
	}
}

func TestQuerySemicolonAndCase(t *testing.T) {
	db := loadFixture(t)
	if _, err := db.Query("select ID from EVENTS where OPTYPE = 'connect';"); err != nil {
		t.Errorf("keywords and table/col names should be case-insensitive: %v", err)
	}
}

func TestQueryRangeUsesOrderedIndex(t *testing.T) {
	db := loadFixture(t)
	_, stats, err := db.QueryStats("SELECT id FROM events WHERE starttime >= 100")
	if err != nil {
		t.Fatal(err)
	}
	if stats.IndexLookups == 0 {
		t.Error("range query on starttime should use ordered index")
	}
	if stats.RowsScanned > 5 {
		t.Errorf("range scan visited %d rows, want <= 5", stats.RowsScanned)
	}
}

func TestParseSQLNegativeNumber(t *testing.T) {
	stmt, err := ParseSQL("SELECT id FROM events WHERE amount > -5")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.Where == nil {
		t.Fatal("where missing")
	}
}

func TestLoadRequiresBootstrap(t *testing.T) {
	db := NewDB()
	err := Load(db, nil, nil)
	if err == nil || !strings.Contains(err.Error(), "bootstrap") {
		t.Errorf("Load on empty db should mention bootstrap, got %v", err)
	}
}
