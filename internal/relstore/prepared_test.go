package relstore

import (
	"fmt"
	"strings"
	"testing"
)

// prepTestDB builds a bootstrapped DB with n events: event i connects
// entity (i%50)+1 -> 51, optype read/write alternating.
func prepTestDB(t *testing.T, n int) *DB {
	t.Helper()
	db := NewDB()
	if err := Bootstrap(db); err != nil {
		t.Fatal(err)
	}
	ents := db.Table(EntityTable)
	for i := int64(1); i <= 60; i++ {
		row := []Value{IntValue(i), TextValue("process"), TextValue("h"), TextValue(fmt.Sprintf("p%d", i)),
			TextValue(fmt.Sprintf("/bin/p%d", i)), IntValue(i), TextValue(""), TextValue(""), IntValue(0), TextValue(""), IntValue(0), TextValue("")}
		if err := ents.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	evts := db.Table(EventTable)
	for i := 0; i < n; i++ {
		op := "read"
		if i%2 == 1 {
			op = "write"
		}
		row := []Value{IntValue(int64(1000 + i)), IntValue(int64(i%50) + 1), IntValue(51), TextValue(op),
			IntValue(int64(i * 10)), IntValue(int64(i*10 + 1)), IntValue(64), TextValue("h")}
		if err := evts.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// TestPreparedEquivalentToText: a prepared statement with a bound ID-set
// parameter must return exactly the rows of the equivalent rendered
// IN-list text, on both the locked and the epoch-view paths.
func TestPreparedEquivalentToText(t *testing.T) {
	db := prepTestDB(t, 400)
	ids := []int64{3, 7, 11, 19}
	var lits []string
	for _, id := range ids {
		lits = append(lits, fmt.Sprintf("%d", id))
	}
	textSQL := "SELECT e.id, e.srcid FROM events e WHERE e.optype = 'read' AND e.srcid IN (" +
		strings.Join(lits, ", ") + ")"
	paramSQL := "SELECT e.id, e.srcid FROM events e WHERE e.optype = 'read' AND e.srcid IN $0"

	want, err := db.Query(textSQL)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Data) == 0 {
		t.Fatal("fixture returns no rows")
	}

	st, err := db.Prepare(paramSQL)
	if err != nil {
		t.Fatal(err)
	}
	if st.NumSetParams() != 1 {
		t.Fatalf("NumSetParams = %d, want 1", st.NumSetParams())
	}
	params := NewParams().BindIDSet(0, ids)

	got, err := st.Query(params)
	if err != nil {
		t.Fatal(err)
	}
	assertSameRows(t, "locked", got, want)

	view := db.View()
	got, err = st.QueryView(view, params)
	if err != nil {
		t.Fatal(err)
	}
	assertSameRows(t, "view", got, want)

	// Re-binding a different set re-executes without re-preparing.
	got, err = st.Query(NewParams().BindIDSet(0, []int64{3}))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range got.Data {
		if r[1].Int != 3 {
			t.Fatalf("rebound set leaked rows: %v", r)
		}
	}
}

func assertSameRows(t *testing.T, label string, got, want *Rows) {
	t.Helper()
	if len(got.Data) != len(want.Data) {
		t.Fatalf("%s: %d rows, want %d", label, len(got.Data), len(want.Data))
	}
	for i := range got.Data {
		for j := range got.Data[i] {
			if Compare(got.Data[i][j], want.Data[i][j]) != 0 {
				t.Fatalf("%s: row %d col %d = %v, want %v", label, i, j, got.Data[i][j], want.Data[i][j])
			}
		}
	}
}

// TestPreparedLargeSetScansOnce: a bound set far beyond the index-probe
// threshold must still return exactly the right rows (the set-filtered
// scan path) with no error — this is the 50k-ID propagation shape.
func TestPreparedLargeSetScans(t *testing.T) {
	db := prepTestDB(t, 300)
	var ids []int64
	for i := int64(1); i <= 5000; i++ {
		if i%2 == 1 { // odd srcids only
			ids = append(ids, i)
		}
	}
	st, err := db.Prepare("SELECT e.id FROM events e WHERE e.srcid IN $0")
	if err != nil {
		t.Fatal(err)
	}
	rows, stats, err := st.QueryViewStats(db.View(), NewParams().BindIDSet(0, ids))
	if err != nil {
		t.Fatal(err)
	}
	// srcid = (i%50)+1, odd for even i: half the events match.
	if len(rows.Data) != 150 {
		t.Fatalf("rows = %d, want 150", len(rows.Data))
	}
	if stats.FullScans == 0 {
		t.Errorf("large bound set should take the set-filtered scan path, stats = %+v", stats)
	}
}

// TestPreparedSmallSetUsesIndex: a small bound set on an indexed column
// must be served by per-ID index probes.
func TestPreparedSmallSetUsesIndex(t *testing.T) {
	db := prepTestDB(t, 400)
	st, err := db.Prepare("SELECT e.id FROM events e WHERE e.srcid IN $0")
	if err != nil {
		t.Fatal(err)
	}
	rows, stats, err := st.QueryViewStats(db.View(), NewParams().BindIDSet(0, []int64{5, 9}))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 16 { // 400/50 = 8 events per srcid
		t.Fatalf("rows = %d, want 16", len(rows.Data))
	}
	if stats.IndexLookups == 0 || stats.FullScans != 0 {
		t.Errorf("small bound set should be index driven, stats = %+v", stats)
	}
}

// TestPreparedCrossShardExecution: a statement prepared on one
// bootstrapped DB must execute against a view of another (the sharded
// fan-out shape).
func TestPreparedCrossShardExecution(t *testing.T) {
	auth := prepTestDB(t, 10)
	other := prepTestDB(t, 100)
	st, err := auth.Prepare("SELECT e.id FROM events e WHERE e.srcid IN $0")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := st.QueryView(other.View(), NewParams().BindIDSet(0, []int64{1}))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 2 { // 100/50 = 2 events with srcid 1
		t.Fatalf("cross-DB rows = %d, want 2", len(rows.Data))
	}
}

// TestPreparedParamErrors: missing bindings and bad placeholders fail
// with useful errors instead of silently matching nothing.
func TestPreparedParamErrors(t *testing.T) {
	db := prepTestDB(t, 10)
	st, err := db.Prepare("SELECT e.id FROM events e WHERE e.srcid IN $0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Query(nil); err == nil || !strings.Contains(err.Error(), "set parameter") {
		t.Errorf("unbound param error = %v", err)
	}
	if _, err := ParseSQL("SELECT e.id FROM events e WHERE e.srcid IN $"); err == nil {
		t.Error("bare $ should fail to lex")
	}
	// NOT IN $k is supported as a filter.
	st, err = db.Prepare("SELECT e.id FROM events e WHERE e.srcid NOT IN $0")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := st.Query(NewParams().BindIDSet(0, []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 0 { // 10 events cover srcids 1..10
		t.Errorf("NOT IN rows = %d, want 0", len(rows.Data))
	}
}

// TestPreparedDuplicateIDsInSet: a caller-built set with duplicate IDs
// must return each matching row once on the indexed probe path, same
// as the set-filtered scan would.
func TestPreparedDuplicateIDsInSet(t *testing.T) {
	db := prepTestDB(t, 400)
	st, err := db.Prepare("SELECT e.id FROM events e WHERE e.srcid IN $0")
	if err != nil {
		t.Fatal(err)
	}
	rows, stats, err := st.QueryViewStats(db.View(), NewParams().BindIDSet(0, []int64{5, 5, 9, 9, 9}))
	if err != nil {
		t.Fatal(err)
	}
	if stats.IndexLookups == 0 {
		t.Fatalf("expected the indexed path, stats = %+v", stats)
	}
	if len(rows.Data) != 16 { // 8 events per srcid, no duplicates
		t.Fatalf("rows = %d, want 16", len(rows.Data))
	}
}
