package relstore

import "sort"

// Params carries the values bound to a prepared statement's parameter
// slots for one execution. The only parameter type today is the typed
// int64 ID set behind `col IN $k` — the shape the execution engine's
// propagated entity-ID constraints take — bound once per execution and
// probed per candidate row, instead of being rendered into SQL text and
// re-lexed on every hunt wave.
//
// A Params value is immutable once every slot is bound, so one Params
// may be shared by concurrent executions of the same statement (the
// engine binds a propagation set once and fans the statement out across
// shards).
type Params struct {
	sets []idSet
}

// idSet is one bound ID-set parameter: the IDs in ascending order. The
// index-probe path walks them to produce deterministic candidate lists;
// membership tests binary-search them, so binding costs O(1) beyond the
// sortedness check — no per-bind hash-map build, which matters when the
// engine binds a 50k-ID propagation set per hunt wave.
type idSet struct {
	ids []int64
}

// has reports membership by binary search.
func (s idSet) has(id int64) bool {
	i := sort.Search(len(s.ids), func(i int) bool { return s.ids[i] >= id })
	return i < len(s.ids) && s.ids[i] == id
}

// NewParams returns an empty parameter binding.
func NewParams() *Params { return &Params{} }

// BindIDSet binds slot k (the `$k` placeholder) to an int64 ID set. The
// slice is retained — callers must not modify it afterwards — and is
// sorted in place if not already ascending. Binding a slot twice
// replaces the earlier set.
func (p *Params) BindIDSet(slot int, ids []int64) *Params {
	if slot < 0 {
		return p
	}
	for len(p.sets) <= slot {
		p.sets = append(p.sets, idSet{})
	}
	if !sort.SliceIsSorted(ids, func(i, j int) bool { return ids[i] < ids[j] }) {
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	}
	p.sets[slot] = idSet{ids: ids}
	return p
}

// NumSets reports how many set slots are bound.
func (p *Params) NumSets() int {
	if p == nil {
		return 0
	}
	return len(p.sets)
}

// setAt returns the set bound to a slot (empty when out of range).
func (p *Params) setAt(slot int) idSet {
	if p == nil || slot < 0 || slot >= len(p.sets) {
		return idSet{}
	}
	return p.sets[slot]
}

// has reports set membership for a slot.
func (p *Params) has(slot int, id int64) bool {
	if p == nil || slot < 0 || slot >= len(p.sets) {
		return false
	}
	return p.sets[slot].has(id)
}
