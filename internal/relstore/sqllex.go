package relstore

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// tokKind classifies SQL tokens.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokKeyword
	tokString
	tokNumber
	tokSymbol
	tokParam // $<n> parameter placeholder; num is the slot
)

var sqlKeywords = map[string]bool{
	"select": true, "distinct": true, "from": true, "join": true,
	"inner": true, "on": true, "where": true, "and": true, "or": true,
	"not": true, "like": true, "in": true, "order": true, "by": true,
	"asc": true, "desc": true, "limit": true, "as": true, "null": true,
	"is": true, "between": true,
}

type sqlToken struct {
	kind tokKind
	text string // keywords lowered; idents as written; strings unquoted
	num  int64
	pos  int
}

type sqlLexer struct {
	src  string
	pos  int
	toks []sqlToken
}

// lexSQL tokenizes a SQL statement.
func lexSQL(src string) ([]sqlToken, error) {
	l := &sqlLexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '\'':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		case c >= '0' && c <= '9':
			l.lexNumber()
		case c == '$':
			if err := l.lexParam(); err != nil {
				return nil, err
			}
		case isIdentStart(rune(c)):
			l.lexIdent()
		default:
			if err := l.lexSymbol(); err != nil {
				return nil, err
			}
		}
	}
	l.toks = append(l.toks, sqlToken{kind: tokEOF, pos: l.pos})
	return l.toks, nil
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func (l *sqlLexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				b.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			l.toks = append(l.toks, sqlToken{kind: tokString, text: b.String(), pos: start})
			return nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("relstore: unterminated string literal at offset %d", start)
}

func (l *sqlLexer) lexNumber() {
	start := l.pos
	for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
		l.pos++
	}
	n, _ := strconv.ParseInt(l.src[start:l.pos], 10, 64)
	l.toks = append(l.toks, sqlToken{kind: tokNumber, num: n, text: l.src[start:l.pos], pos: start})
}

// lexParam lexes a `$<n>` parameter placeholder.
func (l *sqlLexer) lexParam() error {
	start := l.pos
	l.pos++ // '$'
	digits := l.pos
	for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
		l.pos++
	}
	if l.pos == digits {
		return fmt.Errorf("relstore: expected parameter number after '$' at offset %d", start)
	}
	n, err := strconv.ParseInt(l.src[digits:l.pos], 10, 32)
	if err != nil {
		return fmt.Errorf("relstore: bad parameter %q at offset %d", l.src[start:l.pos], start)
	}
	l.toks = append(l.toks, sqlToken{kind: tokParam, num: n, text: l.src[start:l.pos], pos: start})
	return nil
}

func (l *sqlLexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
		l.pos++
	}
	word := l.src[start:l.pos]
	lower := strings.ToLower(word)
	if sqlKeywords[lower] {
		l.toks = append(l.toks, sqlToken{kind: tokKeyword, text: lower, pos: start})
	} else {
		l.toks = append(l.toks, sqlToken{kind: tokIdent, text: word, pos: start})
	}
}

func (l *sqlLexer) lexSymbol() error {
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "!=", "<>", "<=", ">=":
		l.toks = append(l.toks, sqlToken{kind: tokSymbol, text: two, pos: l.pos})
		l.pos += 2
		return nil
	}
	c := l.src[l.pos]
	switch c {
	case '=', '<', '>', '(', ')', ',', '.', '*', '-', '+', ';':
		l.toks = append(l.toks, sqlToken{kind: tokSymbol, text: string(c), pos: l.pos})
		l.pos++
		return nil
	}
	return fmt.Errorf("relstore: unexpected character %q at offset %d", c, l.pos)
}
