package relstore

import (
	"fmt"

	"repro/internal/audit"
)

// Sharded partitions the relational store into per-host shards. Each
// shard is a fully bootstrapped DB with its own table locks, so ingest
// batches for different hosts take disjoint write locks and load
// concurrently, and hunts fan their per-pattern data queries out across
// shards.
//
// Placement: event rows live in exactly one shard — the shard of the
// event's host (audit.ShardIndex; hostless events land in shard 0, the
// default shard) — while entity rows are broadcast to every shard. The
// broadcast keeps each shard self-contained for the executor's
// event⋈entity join (every event's subject and object rows are present
// locally) and makes shard 0's entity table the authoritative full
// entity set. The per-shard union of a statement's results is therefore
// exactly the single-store result: audit semantics pin an event's
// endpoints to the event's own host, so no event or join edge ever
// spans shards.
type Sharded struct {
	shards []*DB
}

// NewSharded creates n bootstrapped shards (n < 1 is treated as 1).
func NewSharded(n int) (*Sharded, error) {
	if n < 1 {
		n = 1
	}
	s := &Sharded{shards: make([]*DB, n)}
	for i := range s.shards {
		db := NewDB()
		if err := Bootstrap(db); err != nil {
			return nil, err
		}
		s.shards[i] = db
	}
	return s, nil
}

// NumShards returns the shard count.
func (s *Sharded) NumShards() int { return len(s.shards) }

// Shard returns the i-th shard's database.
func (s *Sharded) Shard(i int) *DB { return s.shards[i] }

// ShardFor returns the shard index that stores events of the given host.
func (s *Sharded) ShardFor(host string) int {
	return audit.ShardIndex(host, len(s.shards))
}

// LoadEntities broadcasts entity rows to every shard. Callers that
// also load events must complete the broadcast first (and, across
// concurrent batches, serialize broadcasts against each other) so no
// shard ever holds an event whose endpoint rows are missing. On a
// single-shard store there is no broadcast to skip — the loop is one
// plain load, the same write an event batch does — and since snapshots
// are epoch watermarks, neither batch kind ever queues behind open
// cursors (the service suite's single-shard flow test pins this down).
func (s *Sharded) LoadEntities(entities []*audit.Entity) error {
	if len(entities) == 0 {
		return nil
	}
	for _, db := range s.shards {
		if err := Load(db, entities, nil); err != nil {
			return err
		}
	}
	return nil
}

// LoadEvents routes each event to its host's shard and loads the
// per-shard batches (audit.LoadSharded), concurrently when a batch
// spans multiple shards. Batches for different hosts touch disjoint
// event tables, so concurrent LoadEvents calls proceed in parallel.
func (s *Sharded) LoadEvents(events []*audit.Event) error {
	return audit.LoadSharded(events, len(s.shards), func(shard int, batch []*audit.Event) error {
		if err := Load(s.shards[shard], nil, batch); err != nil {
			return fmt.Errorf("relstore: shard %d: %w", shard, err)
		}
		return nil
	})
}

// Load broadcasts the entities and routes the events.
func (s *Sharded) Load(entities []*audit.Entity, events []*audit.Event) error {
	if err := s.LoadEntities(entities); err != nil {
		return err
	}
	return s.LoadEvents(events)
}

// NumEntities reports the entity count (every shard holds the full
// broadcast set; shard 0 is read as the authority).
func (s *Sharded) NumEntities() int {
	return s.shards[0].Table(EntityTable).NumRows()
}

// EventRows reports each shard's event-table row count, in shard order.
func (s *Sharded) EventRows() []int {
	out := make([]int, len(s.shards))
	for i, db := range s.shards {
		out[i] = db.Table(EventTable).NumRows()
	}
	return out
}
