package relstore

import (
	"strings"
	"testing"
)

// rowsAsSet flattens result rows into "cell|cell" strings for set
// comparison.
func rowsAsSet(t *testing.T, rr *Rows) map[string]int {
	t.Helper()
	out := make(map[string]int, len(rr.Data))
	for _, row := range rr.Data {
		var cells []string
		for _, v := range row {
			cells = append(cells, v.String())
		}
		out[strings.Join(cells, "|")]++
	}
	return out
}

// TestQueryViewSinceDelta pins the delta-fetch contract the standing-
// hunt evaluator depends on: the since-restricted result is exactly the
// full result minus the result over the view clamped at the watermark,
// across the scan, equality-index, and join access paths.
func TestQueryViewSinceDelta(t *testing.T) {
	db := viewFixture(t, 10)
	v1 := db.View()
	mark := v1.Table(EventTable).NumRows()
	if mark != 10 {
		t.Fatalf("watermark = %d, want 10", mark)
	}
	for i := 10; i < 25; i++ {
		insertEvent(t, db, int64(i+1), int64(i))
	}
	v2 := db.View()

	for name, q := range map[string]string{
		"scan": `SELECT e.id FROM events e`,
		"eq":   `SELECT e.id FROM events e WHERE e.optype = 'read'`,
		"join": `SELECT e.id, s.name FROM events e JOIN entities s ON e.srcid = s.id`,
	} {
		st, err := db.Prepare(q)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		full, err := st.QueryView(v2, nil)
		if err != nil {
			t.Fatalf("%s full: %v", name, err)
		}
		old, err := st.QueryView(v2.Clamp(EventTable, mark), nil)
		if err != nil {
			t.Fatalf("%s clamped: %v", name, err)
		}
		delta, err := st.QueryViewSince(v2, nil, EventTable, mark)
		if err != nil {
			t.Fatalf("%s since: %v", name, err)
		}
		if len(old.Data) != 10 || len(delta.Data) != 15 || len(full.Data) != 25 {
			t.Fatalf("%s: %d old + %d delta vs %d full", name, len(old.Data), len(delta.Data), len(full.Data))
		}
		want := rowsAsSet(t, full)
		for k, n := range rowsAsSet(t, old) {
			want[k] -= n
			if want[k] == 0 {
				delete(want, k)
			}
		}
		got := rowsAsSet(t, delta)
		if len(got) != len(want) {
			t.Fatalf("%s: delta has %d distinct rows, full-minus-old has %d", name, len(got), len(want))
		}
		for k, n := range want {
			if got[k] != n {
				t.Fatalf("%s: row %q appears %d times in delta, want %d", name, k, got[k], n)
			}
		}
	}
}

// TestQueryViewSinceBounds: a watermark at the view's edge yields an
// empty delta, a zero watermark yields everything, and naming a table
// the statement does not bind is an error rather than a silent no-op.
func TestQueryViewSinceBounds(t *testing.T) {
	db := viewFixture(t, 8)
	v := db.View()
	st, err := db.Prepare(`SELECT e.id FROM events e`)
	if err != nil {
		t.Fatal(err)
	}
	edge, err := st.QueryViewSince(v, nil, EventTable, v.Table(EventTable).NumRows())
	if err != nil {
		t.Fatal(err)
	}
	if len(edge.Data) != 0 {
		t.Fatalf("delta at the watermark returned %d rows", len(edge.Data))
	}
	all, err := st.QueryViewSince(v, nil, EventTable, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all.Data) != 8 {
		t.Fatalf("delta from zero returned %d rows, want 8", len(all.Data))
	}
	if _, err := st.QueryViewSince(v, nil, "absent", 0); err == nil {
		t.Fatal("since over an unbound table must error")
	}
}

// TestClampBounds: clamping truncates exactly, clamping at or past the
// watermark is the identity, and a negative bound clamps to empty.
func TestClampBounds(t *testing.T) {
	db := viewFixture(t, 12)
	v := db.View()
	count := func(view *View) int {
		t.Helper()
		rr, err := view.Query(`SELECT e.id FROM events e`)
		if err != nil {
			t.Fatal(err)
		}
		return len(rr.Data)
	}
	if got := count(v.Clamp(EventTable, 5)); got != 5 {
		t.Errorf("clamp(5) sees %d rows", got)
	}
	if c := v.Clamp(EventTable, 12); c != v {
		t.Error("clamp at the watermark must return the view unchanged")
	}
	if c := v.Clamp(EventTable, 100); c != v {
		t.Error("clamp past the watermark must return the view unchanged")
	}
	if got := count(v.Clamp(EventTable, -3)); got != 0 {
		t.Errorf("clamp(-3) sees %d rows, want 0", got)
	}
	if c := v.Clamp("absent", 3); c != v {
		t.Error("clamping an unknown table must return the view unchanged")
	}
	// Clamping must not disturb the original view or other tables.
	if got := count(v); got != 12 {
		t.Errorf("original view sees %d rows after clamps", got)
	}
	if v.Clamp(EventTable, 5).Table(EntityTable).NumRows() != v.Table(EntityTable).NumRows() {
		t.Error("clamping events changed the entities watermark")
	}
}
