package relstore

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/audit"
)

// shardFixture builds hosts×perHost events over hosts entities (one
// process per host, one file per host; each event is a same-host read).
func shardFixture(hosts, perHost int) ([]*audit.Entity, []*audit.Event) {
	var entities []*audit.Entity
	var events []*audit.Event
	id := int64(1)
	for h := 0; h < hosts; h++ {
		host := fmt.Sprintf("host%d", h)
		proc := &audit.Entity{ID: id, Type: audit.EntityProcess, Host: host,
			ExeName: "/bin/worker", PID: 100 + h}
		id++
		file := &audit.Entity{ID: id, Type: audit.EntityFile, Host: host,
			Path: "/etc/passwd"}
		id++
		entities = append(entities, proc, file)
		for i := 0; i < perHost; i++ {
			events = append(events, &audit.Event{ID: id, SrcID: proc.ID, DstID: file.ID,
				Op: audit.OpRead, StartTime: int64(i), EndTime: int64(i) + 1,
				Amount: 1, Host: host})
			id++
		}
	}
	return entities, events
}

// TestShardedRouting: entities are broadcast to every shard, events
// land in exactly one shard (their host's), and hostless events land in
// shard 0.
func TestShardedRouting(t *testing.T) {
	const shards, hosts, perHost = 4, 8, 16
	s, err := NewSharded(shards)
	if err != nil {
		t.Fatal(err)
	}
	entities, events := shardFixture(hosts, perHost)
	if err := s.Load(entities, events); err != nil {
		t.Fatal(err)
	}

	if got := s.NumEntities(); got != len(entities) {
		t.Errorf("NumEntities = %d, want %d", got, len(entities))
	}
	for i := 0; i < shards; i++ {
		if got := s.Shard(i).Table(EntityTable).NumRows(); got != len(entities) {
			t.Errorf("shard %d entities = %d, want broadcast %d", i, got, len(entities))
		}
	}

	want := make([]int, shards)
	for _, ev := range events {
		want[s.ShardFor(ev.Host)]++
	}
	total := 0
	for i, got := range s.EventRows() {
		if got != want[i] {
			t.Errorf("shard %d events = %d, want %d", i, got, want[i])
		}
		total += got
	}
	if total != len(events) {
		t.Errorf("events across shards = %d, want %d", total, len(events))
	}

	// The default shard takes hostless data.
	if got := s.ShardFor(""); got != 0 {
		t.Errorf("ShardFor(\"\") = %d, want 0", got)
	}
	// Routing is consistent with the shared router.
	for h := 0; h < hosts; h++ {
		host := fmt.Sprintf("host%d", h)
		if s.ShardFor(host) != audit.ShardIndex(host, shards) {
			t.Errorf("ShardFor(%q) disagrees with audit.ShardIndex", host)
		}
	}
}

// TestShardedQueryUnion: a per-shard statement union must equal the
// single-shard result.
func TestShardedQueryUnion(t *testing.T) {
	entities, events := shardFixture(5, 7)
	one, err := NewSharded(1)
	if err != nil {
		t.Fatal(err)
	}
	many, err := NewSharded(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []*Sharded{one, many} {
		if err := s.Load(entities, events); err != nil {
			t.Fatal(err)
		}
	}
	const q = "SELECT e.id FROM events e JOIN entities s ON e.srcid = s.id WHERE s.type = 'process'"
	count := func(s *Sharded) map[int64]bool {
		ids := map[int64]bool{}
		for i := 0; i < s.NumShards(); i++ {
			rows, err := s.Shard(i).Query(q)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range rows.Data {
				if ids[r[0].Int] {
					t.Fatalf("event %d appears in more than one shard", r[0].Int)
				}
				ids[r[0].Int] = true
			}
		}
		return ids
	}
	a, b := count(one), count(many)
	if len(a) != len(b) || len(a) != len(events) {
		t.Fatalf("1-shard found %d events, 3-shard %d, want %d", len(a), len(b), len(events))
	}
	for id := range a {
		if !b[id] {
			t.Errorf("event %d missing from the 3-shard union", id)
		}
	}
}

// TestShardedParallelLoad: concurrent per-host batches must load
// cleanly under the race detector and account for every event.
func TestShardedParallelLoad(t *testing.T) {
	const shards, hosts, perHost, batches = 8, 8, 50, 4
	s, err := NewSharded(shards)
	if err != nil {
		t.Fatal(err)
	}
	entities, events := shardFixture(hosts, perHost*batches)
	if err := s.LoadEntities(entities); err != nil {
		t.Fatal(err)
	}
	// One goroutine per (host, batch): disjoint hosts take disjoint
	// event-table locks.
	perHostEvents := make(map[string][]*audit.Event)
	for _, ev := range events {
		perHostEvents[ev.Host] = append(perHostEvents[ev.Host], ev)
	}
	var wg sync.WaitGroup
	errs := make(chan error, hosts*batches)
	for _, evs := range perHostEvents {
		for b := 0; b < batches; b++ {
			chunk := evs[b*perHost : (b+1)*perHost]
			wg.Add(1)
			go func(chunk []*audit.Event) {
				defer wg.Done()
				errs <- s.LoadEvents(chunk)
			}(chunk)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	total := 0
	for _, n := range s.EventRows() {
		total += n
	}
	if total != len(events) {
		t.Errorf("stored %d events, want %d", total, len(events))
	}
}
