package relstore

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/audit"
)

// TestConcurrentQueries verifies the engine supports the paper's
// deployment mode: one loaded store serving many analyst queries
// concurrently.
func TestConcurrentQueries(t *testing.T) {
	db := loadFixture(t)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				q := "SELECT id FROM events WHERE optype = 'read'"
				if i%2 == 0 {
					q = "SELECT p.exename FROM events e JOIN entities p ON e.srcid = p.id WHERE e.optype = 'write'"
				}
				rows, err := db.Query(q)
				if err != nil {
					errs <- err
					return
				}
				if len(rows.Data) == 0 {
					errs <- fmt.Errorf("goroutine %d: empty result", i)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestConcurrentReversedJoinOrders issues the same join with opposite
// FROM/JOIN table orders while writers insert into both tables. The
// executor locks bound tables in name order, so the opposite bind
// orders must not deadlock behind the queued writers.
func TestConcurrentReversedJoinOrders(t *testing.T) {
	db := loadFixture(t)
	queries := []string{
		"SELECT p.exename FROM events e JOIN entities p ON e.srcid = p.id WHERE e.optype = 'write'",
		"SELECT p.exename FROM entities p JOIN events e ON e.srcid = p.id WHERE e.optype = 'write'",
	}
	done := make(chan error, 8)
	for i := 0; i < 4; i++ {
		go func(q string) {
			for j := 0; j < 50; j++ {
				if _, err := db.Query(q); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(queries[i%2])
	}
	for i := 0; i < 4; i++ {
		go func(i int) {
			ents, evts := db.Table(EntityTable), db.Table(EventTable)
			for j := 0; j < 50; j++ {
				id := int64(1000 + i*100 + j)
				if err := ents.Insert(EntityRow(&audit.Entity{ID: id, Type: audit.EntityFile, Path: "/tmp/x"})); err != nil {
					done <- err
					return
				}
				if err := evts.Insert(EventRow(&audit.Event{ID: id, SrcID: 1, DstID: 2, Op: audit.OpRead})); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(i)
	}
	timeout := time.After(30 * time.Second)
	for i := 0; i < 8; i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
		case <-timeout:
			t.Fatal("deadlock: reversed join orders did not finish")
		}
	}
}

func TestQueryMultiKeyOrderBy(t *testing.T) {
	db := NewDB()
	tbl, err := db.CreateTable(Schema{Name: "t", Columns: []Column{
		{Name: "a", Type: TypeInt}, {Name: "b", Type: TypeInt}}})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range [][]int64{{1, 3}, {2, 1}, {1, 1}, {2, 2}, {1, 2}} {
		tbl.Insert([]Value{IntValue(r[0]), IntValue(r[1])})
	}
	rows, err := db.Query("SELECT a, b FROM t ORDER BY a ASC, b DESC")
	if err != nil {
		t.Fatal(err)
	}
	want := [][2]int64{{1, 3}, {1, 2}, {1, 1}, {2, 2}, {2, 1}}
	for i, w := range want {
		if rows.Data[i][0].Int != w[0] || rows.Data[i][1].Int != w[1] {
			t.Fatalf("row %d = %v, want %v", i, rows.Data[i], w)
		}
	}
}

func TestQueryDistinctWithLimit(t *testing.T) {
	db := loadFixture(t)
	rows, err := db.Query("SELECT DISTINCT optype FROM events LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 2 {
		t.Errorf("distinct+limit rows = %d", len(rows.Data))
	}
}

func TestQueryInListUsesIndexPlan(t *testing.T) {
	db := loadFixture(t)
	// srcid has a hash index; a small IN list must be index-driven.
	_, stats, err := db.QueryStats("SELECT id FROM events WHERE srcid IN (1, 2, 3)")
	if err != nil {
		t.Fatal(err)
	}
	if stats.IndexLookups == 0 {
		t.Errorf("IN-list should use the hash index: %+v", stats)
	}
	if stats.RowsScanned >= 7 {
		t.Errorf("IN-list scanned %d rows (full scan?)", stats.RowsScanned)
	}
}

func TestQueryLikeManyWildcards(t *testing.T) {
	db := loadFixture(t)
	rows, err := db.Query("SELECT id FROM entities WHERE name LIKE '%tmp%upload%'")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 2 { // /tmp/upload.tar and /tmp/upload.tar.bz2
		t.Errorf("multi-wildcard rows = %d", len(rows.Data))
	}
}

func TestQueryJoinThreeWay(t *testing.T) {
	db := loadFixture(t)
	// Find write events whose file was later read by a different process:
	// the upload.tar handoff between tar and bzip2.
	q := `SELECT w.id, r.id
	      FROM events w
	      JOIN events r ON w.dstid = r.dstid
	      JOIN entities f ON w.dstid = f.id
	      WHERE w.optype = 'write' AND r.optype = 'read' AND w.srcid != r.srcid AND f.type = 'file'`
	rows, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 1 {
		t.Errorf("handoff rows = %v", rows.Data)
	}
}

func TestInsertAfterIndexedQuery(t *testing.T) {
	db := NewDB()
	tbl, err := db.CreateTable(Schema{Name: "t", Columns: []Column{{Name: "x", Type: TypeInt}}})
	if err != nil {
		t.Fatal(err)
	}
	tbl.CreateOrderedIndex("x")
	for i := int64(0); i < 10; i++ {
		tbl.Insert([]Value{IntValue(i)})
	}
	rows, _ := db.Query("SELECT x FROM t WHERE x >= 8")
	if len(rows.Data) != 2 {
		t.Fatalf("pre-insert rows = %d", len(rows.Data))
	}
	// Insert and re-query: the lazy ordered index must rebuild.
	tbl.Insert([]Value{IntValue(9)})
	rows, _ = db.Query("SELECT x FROM t WHERE x >= 8")
	if len(rows.Data) != 3 {
		t.Errorf("post-insert rows = %d", len(rows.Data))
	}
}
