package relstore

import "strings"

// ColRef names a column, optionally qualified by a table name or alias.
type ColRef struct {
	Table string // may be empty
	Col   string
}

// String renders the reference.
func (c ColRef) String() string {
	if c.Table == "" {
		return c.Col
	}
	return c.Table + "." + c.Col
}

// SelectItem is one projected column.
type SelectItem struct {
	Ref   ColRef
	Alias string // may be empty
}

// TableRef names a table with an optional alias.
type TableRef struct {
	Name  string
	Alias string
}

// bindName returns the name expressions should use to reference the table.
func (t TableRef) bindName() string {
	if t.Alias != "" {
		return strings.ToLower(t.Alias)
	}
	return strings.ToLower(t.Name)
}

// Join is one JOIN clause.
type Join struct {
	Ref TableRef
	On  Expr
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Ref  ColRef
	Desc bool
}

// SelectStmt is a parsed SELECT statement.
type SelectStmt struct {
	Distinct bool
	Star     bool
	Items    []SelectItem
	From     TableRef
	Joins    []Join
	Where    Expr // may be nil
	OrderBy  []OrderItem
	Limit    int // -1 when absent
}

// Expr is a SQL boolean or value expression.
type Expr interface{ isExpr() }

// BinExpr is a logical AND/OR.
type BinExpr struct {
	Op   string // "and" | "or"
	L, R Expr
}

// NotExpr negates an expression.
type NotExpr struct{ E Expr }

// CmpExpr compares two operands: = != < <= > >= like.
type CmpExpr struct {
	Op   string
	L, R Expr
	Neg  bool // NOT LIKE
}

// InExpr tests membership in a literal list.
type InExpr struct {
	L    Expr
	Vals []Value
	Neg  bool
}

// InParamExpr tests membership in a bound ID-set parameter slot
// (`col IN $k`). The set's values are bound at execution time via
// Params.BindIDSet, so the statement text — and its prepared plan —
// stay identical however the set changes between executions.
type InParamExpr struct {
	L    Expr
	Slot int
	Neg  bool
}

// BetweenExpr tests a range inclusively.
type BetweenExpr struct {
	L      Expr
	Lo, Hi Value
	Neg    bool
}

// IsNullExpr tests for NULL.
type IsNullExpr struct {
	L   Expr
	Neg bool // IS NOT NULL
}

// ColExpr references a column.
type ColExpr struct{ Ref ColRef }

// LitExpr is a literal value.
type LitExpr struct{ V Value }

func (BinExpr) isExpr()     {}
func (NotExpr) isExpr()     {}
func (CmpExpr) isExpr()     {}
func (InExpr) isExpr()      {}
func (InParamExpr) isExpr() {}
func (BetweenExpr) isExpr() {}
func (IsNullExpr) isExpr()  {}
func (ColExpr) isExpr()     {}
func (LitExpr) isExpr()     {}
