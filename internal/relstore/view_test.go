package relstore

import (
	"fmt"
	"sync"
	"testing"
)

// viewFixture builds a bootstrapped DB with n events between a process
// (id 1) and a file (id 2).
func viewFixture(t testing.TB, n int) *DB {
	t.Helper()
	db := NewDB()
	if err := Bootstrap(db); err != nil {
		t.Fatal(err)
	}
	ents := db.Table(EntityTable)
	for id, kind := range map[int64]string{1: "process", 2: "file"} {
		row := []Value{IntValue(id), TextValue(kind), TextValue("h"), TextValue(fmt.Sprintf("n%d", id)),
			TextValue("/bin/a"), IntValue(7), TextValue("/x"), TextValue(""), IntValue(0),
			TextValue(""), IntValue(0), TextValue("")}
		if err := ents.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		insertEvent(t, db, int64(i+1), int64(i))
	}
	return db
}

func insertEvent(t testing.TB, db *DB, id, start int64) {
	t.Helper()
	row := []Value{IntValue(id), IntValue(1), IntValue(2), TextValue("read"),
		IntValue(start), IntValue(start + 1), IntValue(8), TextValue("h")}
	if err := db.Table(EventTable).Insert(row); err != nil {
		t.Fatal(err)
	}
}

// TestViewInvisibleAppends: rows inserted after a view is captured must
// be invisible to every access path — full scan, hash-index equality,
// IN-list, and ordered-index range — while a fresh query sees them.
func TestViewInvisibleAppends(t *testing.T) {
	db := viewFixture(t, 10)
	v := db.View()

	// Rows appended after the capture.
	for i := 10; i < 20; i++ {
		insertEvent(t, db, int64(i+1), int64(i))
	}

	for name, q := range map[string]string{
		"scan":  `SELECT e.id FROM events e`,
		"eq":    `SELECT e.id FROM events e WHERE e.optype = 'read'`,
		"in":    `SELECT e.id FROM events e WHERE e.srcid IN (1, 2, 3)`,
		"range": `SELECT e.id FROM events e WHERE e.starttime >= 0`,
		"join":  `SELECT e.id FROM events e JOIN entities s ON e.srcid = s.id`,
	} {
		rr, err := v.Query(q)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(rr.Data) != 10 {
			t.Errorf("%s through view saw %d rows, want the 10 at capture", name, len(rr.Data))
		}
		live, err := db.Query(q)
		if err != nil {
			t.Fatalf("%s live: %v", name, err)
		}
		if len(live.Data) != 20 {
			t.Errorf("%s live saw %d rows, want 20", name, len(live.Data))
		}
	}

	if got := v.Table(EventTable).NumRows(); got != 10 {
		t.Errorf("view watermark = %d, want 10", got)
	}
	if got := db.Table(EventTable).NumRows(); got != 20 {
		t.Errorf("live rows = %d, want 20", got)
	}
}

// TestViewRangeIndexRebuild: the lazy ordered-index rebuild triggered
// through a view must not leak post-watermark rows into the view's
// results.
func TestViewRangeIndexRebuild(t *testing.T) {
	db := viewFixture(t, 5)
	// Dirty the ordered index, capture, dirty it again.
	insertEvent(t, db, 100, 50)
	v := db.View()
	insertEvent(t, db, 101, 51)

	rr, err := v.Query(`SELECT e.id FROM events e WHERE e.starttime BETWEEN 0 AND 1000`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rr.Data) != 6 {
		t.Fatalf("view range saw %d rows, want 6", len(rr.Data))
	}
	for _, r := range rr.Data {
		if r[0].Int == 101 {
			t.Fatal("view range leaked a post-watermark row")
		}
	}
}

// TestViewConcurrentWithWriters: statements on a captured view race
// writers without locks held between statements; under -race this
// proves the append-watermark reads are sound, and the row counts must
// never drift from the watermark.
func TestViewConcurrentWithWriters(t *testing.T) {
	db := viewFixture(t, 50)
	v := db.View()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			insertEvent(t, db, int64(1000+i), int64(1000+i))
		}
	}()

	for i := 0; i < 200; i++ {
		rr, err := v.Query(`SELECT e.id, e.starttime FROM events e WHERE e.starttime >= 0`)
		if err != nil {
			t.Fatal(err)
		}
		if len(rr.Data) != 50 {
			t.Fatalf("iteration %d: view saw %d rows, want 50", i, len(rr.Data))
		}
	}
	close(stop)
	wg.Wait()
}

// TestTableViewScanFrom: incremental scans across views of different
// epochs visit each row exactly once.
func TestTableViewScanFrom(t *testing.T) {
	db := viewFixture(t, 4)
	tv1 := db.TableView(EventTable)
	var seen []int64
	mark := tv1.ScanFrom(0, func(row []Value) { seen = append(seen, row[0].Int) })
	if mark != 4 || len(seen) != 4 {
		t.Fatalf("first scan: mark %d, %d rows", mark, len(seen))
	}

	insertEvent(t, db, 50, 9)
	tv2 := db.TableView(EventTable)
	mark = tv2.ScanFrom(mark, func(row []Value) { seen = append(seen, row[0].Int) })
	if mark != 5 || len(seen) != 5 || seen[4] != 50 {
		t.Fatalf("resumed scan: mark %d, rows %v", mark, seen)
	}

	if db.TableView("nope") != nil {
		t.Fatal("TableView of a missing table should be nil")
	}
	if tv2.ColIndex("id") != 0 || tv2.Schema().Name != EventTable {
		t.Fatal("TableView schema accessors broken")
	}
}
