package relstore

import "strings"

// TableView is an immutable epoch view of one table: the rows that were
// committed when the view was captured. Rows appended afterwards are
// beyond the view's watermark and invisible through it. A TableView is
// safe for concurrent use and holds no locks — it is a capacity-capped
// slice header over the table's append-only row storage.
type TableView struct {
	t    *Table
	rows [][]Value
}

// NumRows returns the view's watermark: how many rows were visible when
// the view was captured.
func (tv *TableView) NumRows() int { return len(tv.rows) }

// Schema returns the underlying table's schema.
func (tv *TableView) Schema() Schema { return tv.t.Schema() }

// ColIndex resolves a column name to its position, or -1.
func (tv *TableView) ColIndex(name string) int { return tv.t.ColIndex(name) }

// ScanFrom calls fn for each view row at position >= from, in insertion
// order, and returns the view's watermark. Positions are the table's own
// stable row positions, so incremental readers (the projection attribute
// cache) can resume a scan across views of different epochs.
func (tv *TableView) ScanFrom(from int, fn func(row []Value)) int {
	if from < 0 {
		from = 0
	}
	for i := from; i < len(tv.rows); i++ {
		fn(tv.rows[i])
	}
	return len(tv.rows)
}

// View is an epoch-consistent read view of a database: one TableView per
// table, captured together. Statements run with Query observe exactly
// the rows visible at capture time — concurrent ingest neither blocks
// the view's readers nor appears in their results — and a long-lived
// holder (a server-side hunt cursor) costs writers nothing: no locks are
// held between calls, and index probes inside Query lock only for the
// duration of the probe.
type View struct {
	db     *DB
	tables map[string]*TableView
}

// View captures an epoch view of every table. Tables are captured in
// reverse name order — "events" before "entities" — so a table whose
// rows reference another table's rows by id (events reference entity
// endpoints, and ingest commits entities first) is always captured
// before its referent: every event visible in a view has its endpoint
// entities visible too.
func (db *DB) View() *View {
	names := db.TableNames()
	v := &View{db: db, tables: make(map[string]*TableView, len(names))}
	for i := len(names) - 1; i >= 0; i-- {
		t := db.Table(names[i])
		v.tables[names[i]] = &TableView{t: t, rows: t.ViewRows()}
	}
	return v
}

// Table returns the view of the named table, or nil.
func (v *View) Table(name string) *TableView {
	return v.tables[strings.ToLower(name)]
}

// Clamp returns a view identical to v except that the named table is
// truncated to its first n rows. Positions are the table's stable,
// append-only row positions, so clamping re-creates the view an earlier
// epoch would have captured for that table while leaving every other
// table (in particular the interned entities events reference) at v's
// watermark. The incremental standing-hunt evaluator uses it to replay a
// statement "as of" a resume token's events watermark. n at or beyond
// the current watermark returns v unchanged.
func (v *View) Clamp(table string, n int) *View {
	name := strings.ToLower(table)
	tv := v.tables[name]
	if tv == nil || n >= len(tv.rows) {
		return v
	}
	if n < 0 {
		n = 0
	}
	out := &View{db: v.db, tables: make(map[string]*TableView, len(v.tables))}
	for k, t := range v.tables {
		out.tables[k] = t
	}
	out.tables[name] = &TableView{t: tv.t, rows: tv.rows[:n:n]}
	return out
}

// TableView captures an epoch view of just the named table, or nil if
// the table does not exist. Callers that need one table (the projection
// attribute cache reads only the entity table) capture it directly
// instead of paying for a whole-database view.
func (db *DB) TableView(name string) *TableView {
	t := db.Table(name)
	if t == nil {
		return nil
	}
	return &TableView{t: t, rows: t.ViewRows()}
}

// Query parses and executes a SELECT statement against the view: the
// statement sees the epoch's rows only, takes no statement-long locks,
// and may run concurrently with other statements on the same view and
// with writers on the underlying database. Callers that execute the
// same statement repeatedly should Prepare it once and use
// Stmt.QueryView, which skips the parse and plan derivation this
// convenience path pays on every call.
func (v *View) Query(sql string) (*Rows, error) {
	st, err := v.db.Prepare(sql)
	if err != nil {
		return nil, err
	}
	return st.QueryView(v, nil)
}
