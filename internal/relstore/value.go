// Package relstore is an embedded relational database engine. It stands in
// for PostgreSQL in ThreatRaptor's storage component: system entities and
// system events are stored in typed tables with hash and ordered indexes,
// and the TBQL execution engine compiles event patterns into SQL text that
// this package parses and executes.
//
// The SQL subset supported is the one ThreatRaptor's compiler emits:
//
//	SELECT [DISTINCT] cols FROM t [alias] (JOIN t [alias] ON cond)*
//	[WHERE expr] [ORDER BY col [ASC|DESC], ...] [LIMIT n]
//
// with AND/OR/NOT, comparison operators, LIKE (with % and _ wildcards),
// and IN lists in expressions.
package relstore

import (
	"fmt"
	"strconv"
	"strings"
)

// ColType is the type of a column.
type ColType uint8

// Supported column types.
const (
	TypeNull ColType = iota
	TypeInt
	TypeText
)

// String names the column type.
func (t ColType) String() string {
	switch t {
	case TypeInt:
		return "INT"
	case TypeText:
		return "TEXT"
	case TypeNull:
		return "NULL"
	default:
		return fmt.Sprintf("coltype(%d)", uint8(t))
	}
}

// Value is a single SQL value: an integer, a string, or NULL.
type Value struct {
	Kind ColType
	Int  int64
	Str  string
}

// NullValue is the SQL NULL.
var NullValue = Value{Kind: TypeNull}

// IntValue makes an integer value.
func IntValue(v int64) Value { return Value{Kind: TypeInt, Int: v} }

// TextValue makes a string value.
func TextValue(s string) Value { return Value{Kind: TypeText, Str: s} }

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.Kind == TypeNull }

// String renders the value for display.
func (v Value) String() string {
	switch v.Kind {
	case TypeInt:
		return strconv.FormatInt(v.Int, 10)
	case TypeText:
		return v.Str
	case TypeNull:
		return "NULL"
	default:
		return "?"
	}
}

// SQL renders the value as a SQL literal.
func (v Value) SQL() string {
	switch v.Kind {
	case TypeInt:
		return strconv.FormatInt(v.Int, 10)
	case TypeText:
		return "'" + strings.ReplaceAll(v.Str, "'", "''") + "'"
	default:
		return "NULL"
	}
}

// key returns a hashable representation for index lookups.
func (v Value) key() string {
	switch v.Kind {
	case TypeInt:
		return "i" + strconv.FormatInt(v.Int, 10)
	case TypeText:
		return "t" + v.Str
	default:
		return "n"
	}
}

// Compare orders two values. NULL sorts before everything; ints compare
// numerically; strings lexically; an int compared with a text value is
// compared by coercing the text to an integer when possible, else by the
// int's decimal rendering.
func Compare(a, b Value) int {
	if a.IsNull() || b.IsNull() {
		switch {
		case a.IsNull() && b.IsNull():
			return 0
		case a.IsNull():
			return -1
		default:
			return 1
		}
	}
	if a.Kind == TypeInt && b.Kind == TypeInt {
		switch {
		case a.Int < b.Int:
			return -1
		case a.Int > b.Int:
			return 1
		default:
			return 0
		}
	}
	if a.Kind == TypeInt && b.Kind == TypeText {
		if n, err := strconv.ParseInt(strings.TrimSpace(b.Str), 10, 64); err == nil {
			return Compare(a, IntValue(n))
		}
		return strings.Compare(strconv.FormatInt(a.Int, 10), b.Str)
	}
	if a.Kind == TypeText && b.Kind == TypeInt {
		return -Compare(b, a)
	}
	return strings.Compare(a.Str, b.Str)
}

// Equal reports whether two values compare equal.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// likeMatch implements the SQL LIKE operator: '%' matches any run of
// characters (including empty), '_' matches exactly one character.
// Matching is case-sensitive, as in PostgreSQL.
func likeMatch(s, pattern string) bool {
	// Iterative two-pointer matcher with backtracking on '%'.
	si, pi := 0, 0
	star, match := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pattern) && (pattern[pi] == '_' || pattern[pi] == s[si]):
			si++
			pi++
		case pi < len(pattern) && pattern[pi] == '%':
			star = pi
			match = si
			pi++
		case star != -1:
			pi = star + 1
			match++
			si = match
		default:
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '%' {
		pi++
	}
	return pi == len(pattern)
}
