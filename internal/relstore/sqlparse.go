package relstore

import "fmt"

// sqlParser is a recursive-descent parser over the token stream.
type sqlParser struct {
	toks []sqlToken
	pos  int
}

// ParseSQL parses one SELECT statement.
func ParseSQL(src string) (*SelectStmt, error) {
	toks, err := lexSQL(src)
	if err != nil {
		return nil, err
	}
	p := &sqlParser{toks: toks}
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	// Optional trailing semicolon.
	if p.peek().kind == tokSymbol && p.peek().text == ";" {
		p.next()
	}
	if p.peek().kind != tokEOF {
		return nil, fmt.Errorf("relstore: unexpected trailing token %q at offset %d", p.peek().text, p.peek().pos)
	}
	return stmt, nil
}

func (p *sqlParser) peek() sqlToken { return p.toks[p.pos] }

func (p *sqlParser) next() sqlToken {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *sqlParser) acceptKeyword(kw string) bool {
	if p.peek().kind == tokKeyword && p.peek().text == kw {
		p.next()
		return true
	}
	return false
}

func (p *sqlParser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return fmt.Errorf("relstore: expected %s at offset %d, got %q", kw, p.peek().pos, p.peek().text)
	}
	return nil
}

func (p *sqlParser) acceptSymbol(sym string) bool {
	if p.peek().kind == tokSymbol && p.peek().text == sym {
		p.next()
		return true
	}
	return false
}

func (p *sqlParser) expectSymbol(sym string) error {
	if !p.acceptSymbol(sym) {
		return fmt.Errorf("relstore: expected %q at offset %d, got %q", sym, p.peek().pos, p.peek().text)
	}
	return nil
}

func (p *sqlParser) expectIdent() (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", fmt.Errorf("relstore: expected identifier at offset %d, got %q", t.pos, t.text)
	}
	p.next()
	return t.text, nil
}

func (p *sqlParser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{Limit: -1}
	stmt.Distinct = p.acceptKeyword("distinct")

	if p.acceptSymbol("*") {
		stmt.Star = true
	} else {
		for {
			ref, err := p.parseColRef()
			if err != nil {
				return nil, err
			}
			item := SelectItem{Ref: ref}
			if p.acceptKeyword("as") {
				alias, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				item.Alias = alias
			}
			stmt.Items = append(stmt.Items, item)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}

	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	ref, err := p.parseTableRef()
	if err != nil {
		return nil, err
	}
	stmt.From = ref

	for {
		if p.acceptKeyword("inner") {
			if err := p.expectKeyword("join"); err != nil {
				return nil, err
			}
		} else if !p.acceptKeyword("join") {
			break
		}
		jref, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("on"); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Joins = append(stmt.Joins, Join{Ref: jref, On: cond})
	}

	if p.acceptKeyword("where") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = w
	}

	if p.acceptKeyword("order") {
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			ref, err := p.parseColRef()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Ref: ref}
			if p.acceptKeyword("desc") {
				item.Desc = true
			} else {
				p.acceptKeyword("asc")
			}
			stmt.OrderBy = append(stmt.OrderBy, item)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}

	if p.acceptKeyword("limit") {
		t := p.peek()
		if t.kind != tokNumber {
			return nil, fmt.Errorf("relstore: expected number after LIMIT at offset %d", t.pos)
		}
		p.next()
		stmt.Limit = int(t.num)
	}
	return stmt, nil
}

func (p *sqlParser) parseTableRef() (TableRef, error) {
	name, err := p.expectIdent()
	if err != nil {
		return TableRef{}, err
	}
	ref := TableRef{Name: name}
	if p.acceptKeyword("as") {
		alias, err := p.expectIdent()
		if err != nil {
			return TableRef{}, err
		}
		ref.Alias = alias
	} else if p.peek().kind == tokIdent {
		ref.Alias = p.next().text
	}
	return ref, nil
}

func (p *sqlParser) parseColRef() (ColRef, error) {
	first, err := p.expectIdent()
	if err != nil {
		return ColRef{}, err
	}
	if p.acceptSymbol(".") {
		col, err := p.expectIdent()
		if err != nil {
			return ColRef{}, err
		}
		return ColRef{Table: first, Col: col}, nil
	}
	return ColRef{Col: first}, nil
}

// parseExpr parses OR-expressions (lowest precedence).
func (p *sqlParser) parseExpr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("or") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = BinExpr{Op: "or", L: left, R: right}
	}
	return left, nil
}

func (p *sqlParser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("and") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = BinExpr{Op: "and", L: left, R: right}
	}
	return left, nil
}

func (p *sqlParser) parseNot() (Expr, error) {
	if p.acceptKeyword("not") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return NotExpr{E: e}, nil
	}
	return p.parsePredicate()
}

// parsePredicate parses a comparison, LIKE, IN, BETWEEN, IS NULL, or a
// parenthesised expression.
func (p *sqlParser) parsePredicate() (Expr, error) {
	if p.acceptSymbol("(") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	left, err := p.parseOperand()
	if err != nil {
		return nil, err
	}

	neg := false
	if p.peek().kind == tokKeyword && p.peek().text == "not" {
		// lookahead for NOT LIKE / NOT IN / NOT BETWEEN
		save := p.pos
		p.next()
		switch p.peek().text {
		case "like", "in", "between":
			neg = true
		default:
			p.pos = save
		}
	}

	switch {
	case p.acceptKeyword("like"):
		right, err := p.parseOperand()
		if err != nil {
			return nil, err
		}
		return CmpExpr{Op: "like", L: left, R: right, Neg: neg}, nil
	case p.acceptKeyword("in"):
		// `IN $k` binds an ID-set parameter slot instead of a rendered
		// literal list (see Params.BindIDSet).
		if p.peek().kind == tokParam {
			t := p.next()
			return InParamExpr{L: left, Slot: int(t.num), Neg: neg}, nil
		}
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var vals []Value
		for {
			v, err := p.parseLiteral()
			if err != nil {
				return nil, err
			}
			vals = append(vals, v)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return InExpr{L: left, Vals: vals, Neg: neg}, nil
	case p.acceptKeyword("between"):
		lo, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("and"); err != nil {
			return nil, err
		}
		hi, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		return BetweenExpr{L: left, Lo: lo, Hi: hi, Neg: neg}, nil
	case p.acceptKeyword("is"):
		n := p.acceptKeyword("not")
		if err := p.expectKeyword("null"); err != nil {
			return nil, err
		}
		return IsNullExpr{L: left, Neg: n}, nil
	}

	t := p.peek()
	if t.kind == tokSymbol {
		switch t.text {
		case "=", "!=", "<>", "<", "<=", ">", ">=":
			p.next()
			right, err := p.parseOperand()
			if err != nil {
				return nil, err
			}
			op := t.text
			if op == "<>" {
				op = "!="
			}
			return CmpExpr{Op: op, L: left, R: right}, nil
		}
	}
	return nil, fmt.Errorf("relstore: expected comparison operator at offset %d, got %q", t.pos, t.text)
}

// parseOperand parses a column reference or a literal.
func (p *sqlParser) parseOperand() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokIdent:
		ref, err := p.parseColRef()
		if err != nil {
			return nil, err
		}
		return ColExpr{Ref: ref}, nil
	case tokString, tokNumber:
		v, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		return LitExpr{V: v}, nil
	case tokSymbol:
		if t.text == "-" || t.text == "+" {
			v, err := p.parseLiteral()
			if err != nil {
				return nil, err
			}
			return LitExpr{V: v}, nil
		}
	case tokKeyword:
		if t.text == "null" {
			p.next()
			return LitExpr{V: NullValue}, nil
		}
	}
	return nil, fmt.Errorf("relstore: expected operand at offset %d, got %q", t.pos, t.text)
}

// parseLiteral parses a string or (signed) integer literal.
func (p *sqlParser) parseLiteral() (Value, error) {
	t := p.peek()
	switch t.kind {
	case tokString:
		p.next()
		return TextValue(t.text), nil
	case tokNumber:
		p.next()
		return IntValue(t.num), nil
	case tokKeyword:
		if t.text == "null" {
			p.next()
			return NullValue, nil
		}
	case tokSymbol:
		if t.text == "-" || t.text == "+" {
			sign := t.text
			p.next()
			n := p.peek()
			if n.kind != tokNumber {
				return NullValue, fmt.Errorf("relstore: expected number after %q at offset %d", sign, n.pos)
			}
			p.next()
			v := n.num
			if sign == "-" {
				v = -v
			}
			return IntValue(v), nil
		}
	}
	return NullValue, fmt.Errorf("relstore: expected literal at offset %d, got %q", t.pos, t.text)
}
