package snapshot

import (
	"sync"
	"testing"
)

func TestClockAdvances(t *testing.T) {
	var c Clock
	if c.Current() != 0 {
		t.Fatalf("fresh clock at %d, want 0", c.Current())
	}
	if e := c.Advance(); e != 1 {
		t.Fatalf("first Advance = %d, want 1", e)
	}
	if e := c.Advance(); e != 2 || c.Current() != 2 {
		t.Fatalf("second Advance = %d (current %d), want 2", e, c.Current())
	}
}

func TestRegistryPinUnpinGC(t *testing.T) {
	r := NewRegistry()
	if n := r.Pinned(); n != 0 {
		t.Fatalf("fresh registry pins %d epochs", n)
	}
	r.Pin(3)
	r.Pin(3)
	r.Pin(7)
	if n := r.Pinned(); n != 2 {
		t.Fatalf("pinned %d distinct epochs, want 2", n)
	}
	if low, ok := r.LowWater(); !ok || low != 3 {
		t.Fatalf("low water = %d/%v, want 3/true", low, ok)
	}

	// Epoch 3 is doubly pinned: one unpin keeps it alive.
	r.Unpin(3)
	if n := r.Pinned(); n != 2 {
		t.Fatalf("after partial unpin, pinned %d, want 2", n)
	}
	r.Unpin(3)
	if n := r.Pinned(); n != 1 {
		t.Fatalf("after final unpin, pinned %d, want 1 (epoch 3 should be GCed)", n)
	}
	if low, ok := r.LowWater(); !ok || low != 7 {
		t.Fatalf("low water = %d/%v, want 7/true", low, ok)
	}
	if got := r.Released(); got != 1 {
		t.Fatalf("released = %d, want 1", got)
	}

	// Unpinning an unpinned epoch is a no-op (idempotent Close paths).
	r.Unpin(99)
	r.Unpin(3)
	if got := r.Released(); got != 1 {
		t.Fatalf("no-op unpins changed released to %d", got)
	}

	r.Unpin(7)
	if _, ok := r.LowWater(); ok {
		t.Fatal("empty registry still reports a low-water epoch")
	}
	if eps := r.PinnedEpochs(); len(eps) != 0 {
		t.Fatalf("empty registry lists %v", eps)
	}
}

func TestRegistryPinnedEpochsSorted(t *testing.T) {
	r := NewRegistry()
	for _, e := range []Epoch{9, 2, 5} {
		r.Pin(e)
	}
	eps := r.PinnedEpochs()
	if len(eps) != 3 || eps[0] != 2 || eps[1] != 5 || eps[2] != 9 {
		t.Fatalf("pinned epochs = %v, want [2 5 9]", eps)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				e := Epoch(i % 5)
				r.Pin(e)
				r.LowWater()
				r.Unpin(e)
			}
		}(g)
	}
	wg.Wait()
	if n := r.Pinned(); n != 0 {
		t.Fatalf("after balanced pin/unpin, %d epochs still pinned", n)
	}
}
