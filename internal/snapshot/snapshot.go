// Package snapshot provides the epoch machinery behind multi-version
// reads: a Clock that names ingest commits with monotonically increasing
// epochs, and a Registry that reference-counts the epochs long-lived
// readers (server-side hunt cursors) are pinned at.
//
// Both storage backends are append-only, so an epoch snapshot is an
// append watermark, not a copy: rows/edges appended after the epoch are
// invisible to readers pinned at it, and the live arrays are shared
// between every epoch. "Garbage collecting" an epoch therefore frees
// bookkeeping, not data — the Registry drops an epoch's entry as soon as
// its last pin is released, and LowWater exposes the oldest epoch still
// referenced so a future compacting store knows what it must retain.
package snapshot

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Epoch identifies one ingest commit. Epoch 0 is the empty store; every
// commit advances the clock by one. Readers pinned at epoch E observe
// exactly the rows committed by epochs <= E.
type Epoch uint64

// Clock issues epochs. The zero Clock is ready to use (current epoch 0).
// Advance is called once per ingest commit, after the batch's rows are
// visible in the stores; Current names the epoch a new reader pins.
type Clock struct {
	cur atomic.Uint64
}

// Advance marks one ingest commit and returns the new current epoch.
func (c *Clock) Advance() Epoch { return Epoch(c.cur.Add(1)) }

// Current returns the latest committed epoch.
func (c *Clock) Current() Epoch { return Epoch(c.cur.Load()) }

// Reset seeds the clock at e. Restart recovery calls it once, before
// any reader exists, so the epoch space continues where the recovered
// log left off instead of reissuing epochs durably claimed by previous
// commits.
func (c *Clock) Reset(e Epoch) { c.cur.Store(uint64(e)) }

// Registry reference-counts pinned epochs. It is safe for concurrent
// use. Pinning is advisory — the append-only stores never need a pin to
// answer a bounded read — but the registry is what gives epoch GC its
// meaning: an epoch's entry exists exactly while some cursor references
// it, and the stats it exposes (pinned count, low-water mark, lifetime
// released count) are the observability surface for cursor leaks.
type Registry struct {
	mu       sync.Mutex
	pins     map[Epoch]int
	released uint64 // epochs whose last pin was dropped (lifetime)
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{pins: make(map[Epoch]int)}
}

// Pin adds a reference to the epoch.
func (r *Registry) Pin(e Epoch) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.pins[e]++
}

// Unpin drops one reference to the epoch. When the last reference goes,
// the epoch's entry is garbage collected. Unpinning an epoch that is not
// pinned is a no-op (Close paths are idempotent).
func (r *Registry) Unpin(e Epoch) {
	r.mu.Lock()
	defer r.mu.Unlock()
	n, ok := r.pins[e]
	if !ok {
		return
	}
	if n <= 1 {
		delete(r.pins, e)
		r.released++
		return
	}
	r.pins[e] = n - 1
}

// Pinned returns how many distinct epochs are currently referenced.
func (r *Registry) Pinned() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.pins)
}

// Released returns the lifetime count of epochs garbage collected (last
// pin dropped).
func (r *Registry) Released() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.released
}

// LowWater returns the oldest pinned epoch, and false when nothing is
// pinned. A compacting store must retain everything visible at or after
// the low-water epoch; with nothing pinned, only the latest epoch
// matters.
func (r *Registry) LowWater() (Epoch, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.pins) == 0 {
		return 0, false
	}
	low := Epoch(0)
	first := true
	for e := range r.pins {
		if first || e < low {
			low, first = e, false
		}
	}
	return low, true
}

// PinnedEpochs returns the pinned epochs in ascending order (stats and
// tests).
func (r *Registry) PinnedEpochs() []Epoch {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Epoch, 0, len(r.pins))
	for e := range r.pins {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
