// Package snapshot provides the epoch machinery behind multi-version
// reads: a Clock that names ingest commits with monotonically increasing
// epochs, and a Registry that reference-counts the epochs long-lived
// readers (server-side hunt cursors) are pinned at.
//
// Both storage backends are append-only, so an epoch snapshot is an
// append watermark, not a copy: rows/edges appended after the epoch are
// invisible to readers pinned at it, and the live arrays are shared
// between every epoch. "Garbage collecting" an epoch therefore frees
// bookkeeping, not data — the Registry drops an epoch's entry as soon as
// its last pin is released, and LowWater exposes the oldest epoch still
// referenced so a future compacting store knows what it must retain.
package snapshot

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Epoch identifies one ingest commit. Epoch 0 is the empty store; every
// commit advances the clock by one. Readers pinned at epoch E observe
// exactly the rows committed by epochs <= E.
type Epoch uint64

// Clock issues epochs. The zero Clock is ready to use (current epoch 0).
// Advance is called once per ingest commit, after the batch's rows are
// visible in the stores; Current names the epoch a new reader pins.
//
// The clock is also the delta-notification hub for standing hunts:
// Subscribe registers a callback and Announce runs every callback once a
// commit's rows are fully published. Announce is distinct from Advance
// because under a write-ahead log the epoch is claimed before the rows
// are loaded into the stores — the clock moving is not yet a safe signal
// to read the new delta, but an Announce is.
type Clock struct {
	cur atomic.Uint64

	mu      sync.Mutex
	subs    map[int]func(Epoch)
	nextSub int
}

// Advance marks one ingest commit and returns the new current epoch.
func (c *Clock) Advance() Epoch { return Epoch(c.cur.Add(1)) }

// Current returns the latest committed epoch.
func (c *Clock) Current() Epoch { return Epoch(c.cur.Load()) }

// Reset seeds the clock at e. Restart recovery calls it once, before
// any reader exists, so the epoch space continues where the recovered
// log left off instead of reissuing epochs durably claimed by previous
// commits.
func (c *Clock) Reset(e Epoch) { c.cur.Store(uint64(e)) }

// Subscribe registers fn to run on every Announce and returns a cancel
// function. Callbacks run synchronously on the announcing goroutine —
// the ingest commit path — so they must not block; a subscriber that
// needs to do real work should hand off to its own goroutine (the
// standing-hunt evaluator posts to a 1-buffered coalescing channel).
func (c *Clock) Subscribe(fn func(Epoch)) (cancel func()) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.subs == nil {
		c.subs = make(map[int]func(Epoch))
	}
	id := c.nextSub
	c.nextSub++
	c.subs[id] = fn
	return func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		delete(c.subs, id)
	}
}

// Announce notifies subscribers that the commit named e has fully
// published: its rows are visible in every store, so an incremental
// reader may now consume the delta up to e.
func (c *Clock) Announce(e Epoch) {
	c.mu.Lock()
	fns := make([]func(Epoch), 0, len(c.subs))
	for _, fn := range c.subs {
		fns = append(fns, fn)
	}
	c.mu.Unlock()
	for _, fn := range fns {
		fn(e)
	}
}

// Registry reference-counts pinned epochs. It is safe for concurrent
// use. Pinning is advisory — the append-only stores never need a pin to
// answer a bounded read — but the registry is what gives epoch GC its
// meaning: an epoch's entry exists exactly while some cursor references
// it, and the stats it exposes (pinned count, low-water mark, lifetime
// released count) are the observability surface for cursor leaks.
type Registry struct {
	mu       sync.Mutex
	pins     map[Epoch]int
	released uint64 // epochs whose last pin was dropped (lifetime)
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{pins: make(map[Epoch]int)}
}

// Pin adds a reference to the epoch.
func (r *Registry) Pin(e Epoch) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.pins[e]++
}

// Unpin drops one reference to the epoch. When the last reference goes,
// the epoch's entry is garbage collected. Unpinning an epoch that is not
// pinned is a no-op (Close paths are idempotent).
func (r *Registry) Unpin(e Epoch) {
	r.mu.Lock()
	defer r.mu.Unlock()
	n, ok := r.pins[e]
	if !ok {
		return
	}
	if n <= 1 {
		delete(r.pins, e)
		r.released++
		return
	}
	r.pins[e] = n - 1
}

// Pinned returns how many distinct epochs are currently referenced.
func (r *Registry) Pinned() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.pins)
}

// Released returns the lifetime count of epochs garbage collected (last
// pin dropped).
func (r *Registry) Released() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.released
}

// LowWater returns the oldest pinned epoch, and false when nothing is
// pinned. A compacting store must retain everything visible at or after
// the low-water epoch; with nothing pinned, only the latest epoch
// matters.
func (r *Registry) LowWater() (Epoch, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.pins) == 0 {
		return 0, false
	}
	low := Epoch(0)
	first := true
	for e := range r.pins {
		if first || e < low {
			low, first = e, false
		}
	}
	return low, true
}

// PinnedEpochs returns the pinned epochs in ascending order (stats and
// tests).
func (r *Registry) PinnedEpochs() []Epoch {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Epoch, 0, len(r.pins))
	for e := range r.pins {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
