// Package eval measures threat-behavior extraction accuracy against
// labelled CTI corpora, reproducing the paper's NLP evaluation: precision,
// recall, and F1 for IOC extraction and for IOC relation extraction, for
// the full pipeline and for the simpler baselines it is compared against
// (regex-only IOC extraction and sentence co-occurrence relation
// extraction).
package eval

import (
	"strings"

	"repro/internal/ctigen"
	"repro/internal/extract"
	"repro/internal/ioc"
	"repro/internal/nlp"
)

// Metrics is one precision/recall/F1 measurement.
type Metrics struct {
	TP, FP, FN int
}

// Precision returns TP/(TP+FP), 1 when nothing was predicted.
func (m Metrics) Precision() float64 {
	if m.TP+m.FP == 0 {
		return 1
	}
	return float64(m.TP) / float64(m.TP+m.FP)
}

// Recall returns TP/(TP+FN), 1 when nothing was expected.
func (m Metrics) Recall() float64 {
	if m.TP+m.FN == 0 {
		return 1
	}
	return float64(m.TP) / float64(m.TP+m.FN)
}

// F1 returns the harmonic mean of precision and recall.
func (m Metrics) F1() float64 {
	p, r := m.Precision(), m.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

func (m *Metrics) add(o Metrics) { m.TP += o.TP; m.FP += o.FP; m.FN += o.FN }

// Extractor produces IOC surface forms and relation triplets from report
// text. Implementations: the full ThreatRaptor pipeline and the
// baselines.
type Extractor interface {
	Name() string
	Extract(text string) (iocs []string, triplets []ctigen.Triplet)
}

// Score runs an extractor over a corpus and accumulates IOC and relation
// metrics.
func Score(ex Extractor, corpus []ctigen.Report) (iocM, relM Metrics) {
	for _, rep := range corpus {
		gotIOCs, gotTrips := ex.Extract(rep.Text)
		iocM.add(setMetrics(normSet(gotIOCs), normSet(rep.IOCs)))
		relM.add(tripletMetrics(gotTrips, rep.Triplets))
	}
	return iocM, relM
}

func normSet(items []string) map[string]bool {
	out := make(map[string]bool, len(items))
	for _, s := range items {
		out[strings.ToLower(strings.TrimSpace(s))] = true
	}
	return out
}

func setMetrics(got, want map[string]bool) Metrics {
	var m Metrics
	for g := range got {
		if want[g] {
			m.TP++
		} else {
			m.FP++
		}
	}
	for w := range want {
		if !got[w] {
			m.FN++
		}
	}
	return m
}

func tripletMetrics(got, want []ctigen.Triplet) Metrics {
	key := func(t ctigen.Triplet) string {
		return strings.ToLower(t.Subj) + "|" + strings.ToLower(t.Verb) + "|" + strings.ToLower(t.Obj)
	}
	gotSet := map[string]bool{}
	for _, t := range got {
		gotSet[key(t)] = true
	}
	wantSet := map[string]bool{}
	for _, t := range want {
		wantSet[key(t)] = true
	}
	var m Metrics
	for g := range gotSet {
		if wantSet[g] {
			m.TP++
		} else {
			m.FP++
		}
	}
	for w := range wantSet {
		if !gotSet[w] {
			m.FN++
		}
	}
	return m
}

// ---------------------------------------------------------------------------
// Extractors

// Pipeline is the full ThreatRaptor extraction pipeline.
type Pipeline struct{}

// Name implements Extractor.
func (Pipeline) Name() string { return "threatraptor" }

// Extract implements Extractor.
func (Pipeline) Extract(text string) ([]string, []ctigen.Triplet) {
	g := extract.Extract(text)
	var iocs []string
	for _, n := range g.Nodes {
		iocs = append(iocs, n.Text)
		iocs = append(iocs, n.Aliases...)
	}
	var trips []ctigen.Triplet
	for _, e := range g.Edges {
		src, dst := g.NodeByID(e.Src), g.NodeByID(e.Dst)
		if src == nil || dst == nil {
			continue
		}
		trips = append(trips, ctigen.Triplet{Subj: src.Text, Verb: e.Verb, Obj: dst.Text})
	}
	return iocs, trips
}

// RegexCooccur is the baseline: regex IOC extraction plus sentence-level
// co-occurrence relation extraction — every ordered pair of IOCs in a
// sentence is related by the verb nearest to the pair's midpoint, with no
// dependency analysis and no coreference.
type RegexCooccur struct{}

// Name implements Extractor.
func (RegexCooccur) Name() string { return "regex-cooccurrence" }

// Extract implements Extractor.
func (RegexCooccur) Extract(text string) ([]string, []ctigen.Triplet) {
	var iocs []string
	seen := map[string]bool{}
	var trips []ctigen.Triplet

	for _, block := range nlp.SegmentBlocks(text) {
		prot := ioc.Protect(block)
		for _, i := range prot.IOCs {
			norm := ioc.Normalize(i.Type, i.Text)
			if !seen[norm] {
				seen[norm] = true
				iocs = append(iocs, norm)
			}
		}
		for _, sent := range nlp.SegmentSentences(prot.Text) {
			toks := nlp.Tokenize(sent)
			nlp.Tag(toks, ioc.IsPlaceholder)
			// Positions of IOC tokens and verbs.
			var iocPos []int
			var verbPos []int
			for ti, tok := range toks {
				if prot.Restore(tok.Text) != nil {
					iocPos = append(iocPos, ti)
				} else if strings.HasPrefix(tok.POS, "VB") {
					verbPos = append(verbPos, ti)
				}
			}
			for a := 0; a < len(iocPos); a++ {
				for b := a + 1; b < len(iocPos); b++ {
					subj := prot.Restore(toks[iocPos[a]].Text)
					obj := prot.Restore(toks[iocPos[b]].Text)
					if subj == nil || obj == nil {
						continue
					}
					verb := nearestVerb(toks, verbPos, (iocPos[a]+iocPos[b])/2)
					if verb == "" {
						continue
					}
					trips = append(trips, ctigen.Triplet{
						Subj: ioc.Normalize(subj.Type, subj.Text),
						Verb: verb,
						Obj:  ioc.Normalize(obj.Type, obj.Text),
					})
				}
			}
		}
	}
	return iocs, trips
}

func nearestVerb(toks []nlp.Token, verbPos []int, mid int) string {
	best, bestDist := -1, 1<<30
	for _, v := range verbPos {
		d := v - mid
		if d < 0 {
			d = -d
		}
		if d < bestDist {
			best, bestDist = v, d
		}
	}
	if best < 0 {
		return ""
	}
	return nlp.Lemmatize(toks[best].Text)
}

// IOCOnly is the structured-feed baseline: regex IOC extraction with no
// relations at all (what structured OSCTI feeds provide).
type IOCOnly struct{}

// Name implements Extractor.
func (IOCOnly) Name() string { return "ioc-only" }

// Extract implements Extractor.
func (IOCOnly) Extract(text string) ([]string, []ctigen.Triplet) {
	var iocs []string
	seen := map[string]bool{}
	for _, i := range ioc.Find(text) {
		norm := ioc.Normalize(i.Type, i.Text)
		if !seen[norm] {
			seen[norm] = true
			iocs = append(iocs, norm)
		}
	}
	return iocs, nil
}
