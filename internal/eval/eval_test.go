package eval

import (
	"testing"

	"repro/internal/ctigen"
)

func TestMetricsMath(t *testing.T) {
	m := Metrics{TP: 8, FP: 2, FN: 2}
	if m.Precision() != 0.8 || m.Recall() != 0.8 {
		t.Errorf("P=%f R=%f", m.Precision(), m.Recall())
	}
	if f := m.F1(); f < 0.79 || f > 0.81 {
		t.Errorf("F1=%f", f)
	}
	empty := Metrics{}
	if empty.Precision() != 1 || empty.Recall() != 1 {
		t.Error("empty metrics should be perfect")
	}
	zero := Metrics{FP: 1, FN: 1}
	if zero.F1() != 0 {
		t.Errorf("all-wrong F1 = %f", zero.F1())
	}
}

func TestPipelineBeatsBaselinesOnRelations(t *testing.T) {
	corpus := ctigen.Corpus(42, 20, 5)
	_, relPipe := Score(Pipeline{}, corpus)
	_, relBase := Score(RegexCooccur{}, corpus)
	if relPipe.F1() <= relBase.F1() {
		t.Errorf("pipeline relation F1 %.3f should beat co-occurrence %.3f",
			relPipe.F1(), relBase.F1())
	}
	if relPipe.F1() < 0.6 {
		t.Errorf("pipeline relation F1 too low: %.3f (TP=%d FP=%d FN=%d)",
			relPipe.F1(), relPipe.TP, relPipe.FP, relPipe.FN)
	}
}

func TestIOCExtractionHighAccuracy(t *testing.T) {
	corpus := ctigen.Corpus(7, 20, 5)
	iocPipe, _ := Score(Pipeline{}, corpus)
	if iocPipe.F1() < 0.9 {
		t.Errorf("pipeline IOC F1 = %.3f (TP=%d FP=%d FN=%d)",
			iocPipe.F1(), iocPipe.TP, iocPipe.FP, iocPipe.FN)
	}
	iocOnly, relOnly := Score(IOCOnly{}, corpus)
	if iocOnly.F1() < 0.9 {
		t.Errorf("regex IOC baseline F1 = %.3f", iocOnly.F1())
	}
	// The IOC-only baseline recovers no relations by construction.
	if relOnly.TP != 0 || relOnly.Recall() == 1 {
		t.Errorf("IOC-only baseline should have zero relation recall: %+v", relOnly)
	}
}

func TestScoreOnFig2StyleReport(t *testing.T) {
	// A report in the exact Fig. 2 narrative style: the pipeline should
	// recover most relations.
	rep := ctigen.Report{
		Text: "As a first step, the attacker used /bin/tar to read from /etc/passwd. " +
			"Then, /bin/tar wrote to /tmp/stage.tar. " +
			"Finally, the attacker used /usr/bin/curl to connect to 10.1.2.3.",
		IOCs: []string{"/bin/tar", "/etc/passwd", "/tmp/stage.tar", "/usr/bin/curl", "10.1.2.3"},
		Triplets: []ctigen.Triplet{
			{Subj: "/bin/tar", Verb: "read", Obj: "/etc/passwd"},
			{Subj: "/bin/tar", Verb: "write", Obj: "/tmp/stage.tar"},
			{Subj: "/usr/bin/curl", Verb: "connect", Obj: "10.1.2.3"},
		},
	}
	iocM, relM := Score(Pipeline{}, []ctigen.Report{rep})
	if iocM.Recall() < 1 {
		t.Errorf("IOC recall = %.2f (FN=%d)", iocM.Recall(), iocM.FN)
	}
	if relM.Recall() < 1 {
		t.Errorf("relation recall = %.2f (TP=%d FN=%d)", relM.Recall(), relM.TP, relM.FN)
	}
}
