package exec

import (
	"strings"
	"testing"
	"time"

	"repro/internal/audit/gen"
)

// crackEngine loads a password-crack workload into both backends.
func crackEngine(t testing.TB, benign int) *Engine {
	en, _ := newEngine(t, gen.Config{
		Seed:         5,
		BenignEvents: benign,
		Attacks:      []gen.Attack{{Kind: gen.AttackPasswordCrack, At: 15 * time.Minute}},
	})
	return en
}

const crackTBQL = `proc p["%cracker%"] read file f["%/etc/shadow%"] as e1
return p, f`

// drainCursor collects every row a cursor yields.
func drainCursor(t *testing.T, c *Cursor) [][]string {
	t.Helper()
	var rows [][]string
	for c.Next() {
		row := c.Row()
		rows = append(rows, append([]string(nil), row...))
	}
	if err := c.Err(); err != nil {
		t.Fatalf("cursor error: %v", err)
	}
	return rows
}

// TestCursorEquivalence verifies the streaming cursor yields exactly the
// rows Execute materializes, in order, on the Fig. 2 and password-crack
// hunts (distinct and non-distinct projections).
func TestCursorEquivalence(t *testing.T) {
	tests := []struct {
		name   string
		engine func(testing.TB, int) *Engine
		src    string
	}{
		{"fig2-distinct", leakageEngine, fig2TBQL},
		{"password-crack", crackEngine, crackTBQL},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			en := tc.engine(t, 2000)
			res, err := en.ExecuteTBQL(tc.src)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Rows) == 0 {
				t.Fatal("hunt found nothing; fixture broken")
			}
			cur, err := en.ExecuteTBQLCursor(tc.src)
			if err != nil {
				t.Fatal(err)
			}
			defer cur.Close()
			if got, want := strings.Join(cur.Columns(), ","), strings.Join(res.Cols, ","); got != want {
				t.Errorf("Columns() = %q, want %q", got, want)
			}
			rows := drainCursor(t, cur)
			if len(rows) != len(res.Rows) {
				t.Fatalf("cursor yielded %d rows, Execute %d", len(rows), len(res.Rows))
			}
			for i := range rows {
				if strings.Join(rows[i], "\x00") != strings.Join(res.Rows[i], "\x00") {
					t.Errorf("row %d: cursor %v != Execute %v", i, rows[i], res.Rows[i])
				}
			}
		})
	}
}

// TestCursorSemantics is the table-driven contract suite for
// Next/Scan/Columns/Row/Close.
func TestCursorSemantics(t *testing.T) {
	en := crackEngine(t, 500)

	t.Run("empty-result-set", func(t *testing.T) {
		cur, err := en.ExecuteTBQLCursor(`proc p["%no-such-binary%"] read file f as e1
return p, f`)
		if err != nil {
			t.Fatal(err)
		}
		defer cur.Close()
		if len(cur.Columns()) != 2 {
			t.Errorf("empty cursor columns = %v", cur.Columns())
		}
		if cur.Next() {
			t.Error("Next on empty result set = true")
		}
		if cur.Row() != nil {
			t.Errorf("Row on empty result set = %v", cur.Row())
		}
		if err := cur.Err(); err != nil {
			t.Errorf("Err on empty result set = %v", err)
		}
	})

	t.Run("scan-before-next", func(t *testing.T) {
		cur, err := en.ExecuteTBQLCursor(crackTBQL)
		if err != nil {
			t.Fatal(err)
		}
		defer cur.Close()
		var a, b string
		if err := cur.Scan(&a, &b); err == nil {
			t.Error("Scan before Next should fail")
		}
	})

	t.Run("scan-strings", func(t *testing.T) {
		cur, err := en.ExecuteTBQLCursor(crackTBQL)
		if err != nil {
			t.Fatal(err)
		}
		defer cur.Close()
		if !cur.Next() {
			t.Fatal("attack row missing")
		}
		var exe, file string
		if err := cur.Scan(&exe, &file); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(exe, "cracker") || !strings.Contains(file, "/etc/shadow") {
			t.Errorf("scanned %q, %q", exe, file)
		}
	})

	t.Run("scan-int-attr", func(t *testing.T) {
		cur, err := en.ExecuteTBQLCursor(`proc p["%cracker%"] read file f["%/etc/shadow%"] as e1
return p.pid, f`)
		if err != nil {
			t.Fatal(err)
		}
		defer cur.Close()
		if !cur.Next() {
			t.Fatal("attack row missing")
		}
		var pid int64
		var file string
		if err := cur.Scan(&pid, &file); err != nil {
			t.Fatal(err)
		}
		if pid <= 0 {
			t.Errorf("pid = %d", pid)
		}
	})

	t.Run("scan-type-mismatch", func(t *testing.T) {
		cur, err := en.ExecuteTBQLCursor(crackTBQL)
		if err != nil {
			t.Fatal(err)
		}
		defer cur.Close()
		if !cur.Next() {
			t.Fatal("attack row missing")
		}
		var n int64
		var s string
		if err := cur.Scan(&n, &s); err == nil || !strings.Contains(err.Error(), "not an integer") {
			t.Errorf("int64 scan of exename: err = %v", err)
		}
		var f float64
		if err := cur.Scan(&f, &s); err == nil || !strings.Contains(err.Error(), "not a number") {
			t.Errorf("float64 scan of exename: err = %v", err)
		}
		var unsupported struct{}
		if err := cur.Scan(&unsupported, &s); err == nil || !strings.Contains(err.Error(), "unsupported") {
			t.Errorf("struct scan: err = %v", err)
		}
	})

	t.Run("scan-arity-mismatch", func(t *testing.T) {
		cur, err := en.ExecuteTBQLCursor(crackTBQL)
		if err != nil {
			t.Fatal(err)
		}
		defer cur.Close()
		if !cur.Next() {
			t.Fatal("attack row missing")
		}
		var only string
		if err := cur.Scan(&only); err == nil {
			t.Error("short Scan should fail")
		}
	})

	t.Run("close-idempotent", func(t *testing.T) {
		cur, err := en.ExecuteTBQLCursor(crackTBQL)
		if err != nil {
			t.Fatal(err)
		}
		if !cur.Next() {
			t.Fatal("attack row missing")
		}
		if err := cur.Close(); err != nil {
			t.Fatal(err)
		}
		if err := cur.Close(); err != nil {
			t.Errorf("second Close = %v", err)
		}
		if cur.Next() {
			t.Error("Next after Close = true")
		}
		if cur.Row() != nil {
			t.Error("Row after Close is not nil")
		}
		var a, b string
		if err := cur.Scan(&a, &b); err == nil {
			t.Error("Scan after Close should fail")
		}
	})

	t.Run("distinct-dedupe", func(t *testing.T) {
		// The same process reads /etc/shadow many times during the crack
		// loop: DISTINCT must collapse the cursor stream exactly as it
		// collapses Result.Rows.
		src := `proc p["%cracker%"] read file f["%/etc/shadow%"] as e1
return distinct p, f`
		res, err := en.ExecuteTBQL(src)
		if err != nil {
			t.Fatal(err)
		}
		cur, err := en.ExecuteTBQLCursor(src)
		if err != nil {
			t.Fatal(err)
		}
		defer cur.Close()
		rows := drainCursor(t, cur)
		if len(rows) != len(res.Rows) {
			t.Errorf("distinct cursor rows = %d, Execute rows = %d", len(rows), len(res.Rows))
		}
	})

	t.Run("stats-populated", func(t *testing.T) {
		cur, err := en.ExecuteTBQLCursor(crackTBQL)
		if err != nil {
			t.Fatal(err)
		}
		defer cur.Close()
		if cur.Stats().RowsFetched == 0 {
			t.Errorf("stats = %+v", cur.Stats())
		}
	})
}
