package exec

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

// TestRandomQueriesExecute: randomly composed valid queries must execute
// without error on a loaded engine, in every optimization mode, and all
// modes must agree on the result rows.
func TestRandomQueriesExecute(t *testing.T) {
	base := leakageEngine(t, 1500)
	modes := []*Engine{
		base,
		{Rel: base.Rel, Graph: base.Graph, DisablePropagation: true},
		{Rel: base.Rel, Graph: base.Graph, DisableScheduling: true, DisablePropagation: true},
	}

	rng := rand.New(rand.NewSource(77))
	exes := []string{"/bin/tar", "/usr/bin/curl", "/bin/bash", "/usr/bin/chrome", "/usr/sbin/sshd"}
	files := []string{"/etc/passwd", "/tmp/upload.tar", "/var/log/syslog", "/etc/crontab"}
	fileOps := []string{"read", "write", "read || write"}

	for i := 0; i < 60; i++ {
		nPat := 1 + rng.Intn(3)
		var b strings.Builder
		var names []string
		used := map[string]bool{}
		for j := 0; j < nPat; j++ {
			name := fmt.Sprintf("e%d", j+1)
			names = append(names, name)
			subjID := fmt.Sprintf("p%d", rng.Intn(2))
			objID := fmt.Sprintf("f%d", rng.Intn(2))
			used[subjID], used[objID] = true, true
			subjF, objF := "", ""
			if rng.Intn(2) == 0 {
				subjF = fmt.Sprintf(`["%%%s%%"]`, exes[rng.Intn(len(exes))])
			}
			if rng.Intn(2) == 0 {
				objF = fmt.Sprintf(`["%%%s%%"]`, files[rng.Intn(len(files))])
			}
			if rng.Intn(5) == 0 {
				fmt.Fprintf(&b, "proc %s%s ~>(1~3)[read] file %s%s as %s\n", subjID, subjF, objID, objF, name)
			} else {
				fmt.Fprintf(&b, "proc %s%s %s file %s%s as %s\n", subjID, subjF, fileOps[rng.Intn(len(fileOps))], objID, objF, name)
			}
		}
		if nPat > 1 && rng.Intn(2) == 0 {
			fmt.Fprintf(&b, "with %s before %s\n", names[0], names[1])
		}
		var ret []string
		for _, id := range []string{"p0", "p1", "f0", "f1"} {
			if used[id] {
				ret = append(ret, id)
			}
		}
		b.WriteString("return distinct " + strings.Join(ret, ", "))
		src := b.String()

		var counts []int
		for mi, en := range modes {
			res, err := en.ExecuteTBQL(src)
			if err != nil {
				t.Fatalf("case %d mode %d: %v\n%s", i, mi, err, src)
			}
			counts = append(counts, len(res.Rows))
		}
		if counts[0] != counts[1] || counts[1] != counts[2] {
			t.Fatalf("case %d: modes disagree %v\n%s", i, counts, src)
		}
	}
}

// TestStreamingJoinMatchesNaive is the equivalence property test for
// the streaming hash-join executor: every randomly composed query —
// including temporal relations, attribute relations (literal and
// event-to-event), path patterns, and distinct/non-distinct projections
// — must produce the identical sorted result set under the streaming
// join and the legacy naive nested-loop join, in every scheduling mode.
func TestStreamingJoinMatchesNaive(t *testing.T) {
	base := leakageEngine(t, 1500)
	modes := []struct {
		name          string
		stream, naive *Engine
	}{
		{
			"scheduled",
			&Engine{Rel: base.Rel, Graph: base.Graph},
			&Engine{Rel: base.Rel, Graph: base.Graph, UseNaiveJoin: true},
		},
		{
			"textual-order",
			&Engine{Rel: base.Rel, Graph: base.Graph, DisableScheduling: true},
			&Engine{Rel: base.Rel, Graph: base.Graph, DisableScheduling: true, UseNaiveJoin: true},
		},
	}

	rng := rand.New(rand.NewSource(1234))
	exes := []string{"/bin/tar", "/usr/bin/curl", "/bin/bash", "/usr/bin/chrome", "/usr/sbin/sshd", "/usr/sbin/apache2"}
	files := []string{"/etc/passwd", "/tmp/upload.tar", "/var/log/syslog", "/etc/crontab", "/tmp/upload"}
	fileOps := []string{"read", "write", "read || write", "!read"}
	attrOps := []string{"=", "!=", "<", "<=", ">", ">="}
	evtAttrs := []string{"srcid", "dstid", "starttime", "amount", "id"}

	const cases = 120
	for i := 0; i < cases; i++ {
		nPat := 1 + rng.Intn(4)
		var b strings.Builder
		var names []string
		used := map[string]bool{}
		for j := 0; j < nPat; j++ {
			name := fmt.Sprintf("e%d", j+1)
			names = append(names, name)
			subjID := fmt.Sprintf("p%d", rng.Intn(3))
			objID := fmt.Sprintf("f%d", rng.Intn(3))
			used[subjID], used[objID] = true, true
			subjF, objF := "", ""
			if rng.Intn(2) == 0 {
				subjF = fmt.Sprintf(`["%%%s%%"]`, exes[rng.Intn(len(exes))])
			}
			if rng.Intn(2) == 0 {
				objF = fmt.Sprintf(`["%%%s%%"]`, files[rng.Intn(len(files))])
			}
			if rng.Intn(4) == 0 {
				fmt.Fprintf(&b, "proc %s%s ~>(1~%d)[read] file %s%s as %s\n",
					subjID, subjF, 2+rng.Intn(3), objID, objF, name)
			} else {
				fmt.Fprintf(&b, "proc %s%s %s file %s%s as %s\n",
					subjID, subjF, fileOps[rng.Intn(len(fileOps))], objID, objF, name)
			}
		}
		// With-clause: temporal and attribute relations.
		var rels []string
		if nPat > 1 && rng.Intn(2) == 0 {
			a, c := rng.Intn(nPat), rng.Intn(nPat)
			if a != c {
				op := "before"
				if rng.Intn(2) == 0 {
					op = "after"
				}
				rels = append(rels, fmt.Sprintf("%s %s %s", names[a], op, names[c]))
			}
		}
		if rng.Intn(2) == 0 {
			// Literal attribute relation.
			rels = append(rels, fmt.Sprintf("%s.%s %s %d",
				names[rng.Intn(nPat)], evtAttrs[rng.Intn(len(evtAttrs))],
				attrOps[rng.Intn(len(attrOps))], rng.Intn(5000)))
		}
		if nPat > 1 && rng.Intn(3) == 0 {
			// Event-to-event attribute relation.
			a, c := rng.Intn(nPat), rng.Intn(nPat)
			if a != c {
				rels = append(rels, fmt.Sprintf("%s.%s %s %s.%s",
					names[a], evtAttrs[rng.Intn(len(evtAttrs))],
					attrOps[rng.Intn(len(attrOps))],
					names[c], evtAttrs[rng.Intn(len(evtAttrs))]))
			}
		}
		if len(rels) > 0 {
			b.WriteString("with " + strings.Join(rels, ", ") + "\n")
		}
		var ret []string
		for _, id := range []string{"p0", "p1", "p2", "f0", "f1", "f2"} {
			if used[id] {
				ret = append(ret, id)
			}
		}
		distinct := ""
		if rng.Intn(2) == 0 {
			distinct = "distinct "
		}
		b.WriteString("return " + distinct + strings.Join(ret, ", "))
		src := b.String()

		for _, mode := range modes {
			sres, err := mode.stream.ExecuteTBQL(src)
			if err != nil {
				t.Fatalf("case %d %s streaming: %v\n%s", i, mode.name, err, src)
			}
			nres, err := mode.naive.ExecuteTBQL(src)
			if err != nil {
				t.Fatalf("case %d %s naive: %v\n%s", i, mode.name, err, src)
			}
			if len(sres.Matches) != len(nres.Matches) {
				t.Fatalf("case %d %s: %d streaming matches, %d naive\n%s",
					i, mode.name, len(sres.Matches), len(nres.Matches), src)
			}
			got, want := sortedRows(sres.Rows), sortedRows(nres.Rows)
			if len(got) != len(want) {
				t.Fatalf("case %d %s: %d streaming rows, %d naive\n%s",
					i, mode.name, len(got), len(want), src)
			}
			for r := range got {
				if got[r] != want[r] {
					t.Fatalf("case %d %s row %d: streaming %q, naive %q\n%s",
						i, mode.name, r, got[r], want[r], src)
				}
			}
		}
	}
}

func sortedRows(rows [][]string) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = strings.Join(r, "\x00")
	}
	sort.Strings(out)
	return out
}

// TestPropagationCap: oversized candidate sets must not be propagated,
// and execution must stay correct.
func TestPropagationCap(t *testing.T) {
	en := leakageEngine(t, 2000)
	en.MaxPropagatedIDs = 1 // nothing qualifies beyond single-candidate sets
	res, err := en.ExecuteTBQL(fig2TBQL)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Errorf("capped propagation broke correctness: %d rows", len(res.Rows))
	}
}

// TestNegatedOps: !read on a narrow file set.
func TestNegatedOps(t *testing.T) {
	en := leakageEngine(t, 0)
	res, err := en.ExecuteTBQL(`proc p["%/bin/tar%"] !read file f as e1
return distinct f`)
	if err != nil {
		t.Fatal(err)
	}
	// tar's only non-read file op in the attack is the upload.tar write.
	if len(res.Rows) != 1 || res.Rows[0][0] != "/tmp/upload.tar" {
		t.Errorf("negated op rows = %v", res.Rows)
	}
}

// TestMultiOpDisjunctionPath: op disjunction on a path pattern's final
// hop.
func TestMultiOpDisjunctionPath(t *testing.T) {
	en := leakageEngine(t, 0)
	res, err := en.ExecuteTBQL(`proc p["%/usr/sbin/apache2%"] ~>(1~4)[read || write] file f["%upload%"] as e1
return distinct f`)
	if err != nil {
		t.Fatal(err)
	}
	// apache2 -> bash -> tar -> write upload.tar (3 hops, final write).
	if len(res.Rows) == 0 {
		t.Errorf("disjunction path found nothing")
	}
	if !strings.Contains(res.Stats.DataQueries[0], "OR") {
		t.Errorf("op disjunction should appear in WHERE: %s", res.Stats.DataQueries[0])
	}
}
