package exec

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// TestRandomQueriesExecute: randomly composed valid queries must execute
// without error on a loaded engine, in every optimization mode, and all
// modes must agree on the result rows.
func TestRandomQueriesExecute(t *testing.T) {
	base := leakageEngine(t, 1500)
	modes := []*Engine{
		base,
		{Rel: base.Rel, Graph: base.Graph, DisablePropagation: true},
		{Rel: base.Rel, Graph: base.Graph, DisableScheduling: true, DisablePropagation: true},
	}

	rng := rand.New(rand.NewSource(77))
	exes := []string{"/bin/tar", "/usr/bin/curl", "/bin/bash", "/usr/bin/chrome", "/usr/sbin/sshd"}
	files := []string{"/etc/passwd", "/tmp/upload.tar", "/var/log/syslog", "/etc/crontab"}
	fileOps := []string{"read", "write", "read || write"}

	for i := 0; i < 60; i++ {
		nPat := 1 + rng.Intn(3)
		var b strings.Builder
		var names []string
		used := map[string]bool{}
		for j := 0; j < nPat; j++ {
			name := fmt.Sprintf("e%d", j+1)
			names = append(names, name)
			subjID := fmt.Sprintf("p%d", rng.Intn(2))
			objID := fmt.Sprintf("f%d", rng.Intn(2))
			used[subjID], used[objID] = true, true
			subjF, objF := "", ""
			if rng.Intn(2) == 0 {
				subjF = fmt.Sprintf(`["%%%s%%"]`, exes[rng.Intn(len(exes))])
			}
			if rng.Intn(2) == 0 {
				objF = fmt.Sprintf(`["%%%s%%"]`, files[rng.Intn(len(files))])
			}
			if rng.Intn(5) == 0 {
				fmt.Fprintf(&b, "proc %s%s ~>(1~3)[read] file %s%s as %s\n", subjID, subjF, objID, objF, name)
			} else {
				fmt.Fprintf(&b, "proc %s%s %s file %s%s as %s\n", subjID, subjF, fileOps[rng.Intn(len(fileOps))], objID, objF, name)
			}
		}
		if nPat > 1 && rng.Intn(2) == 0 {
			fmt.Fprintf(&b, "with %s before %s\n", names[0], names[1])
		}
		var ret []string
		for _, id := range []string{"p0", "p1", "f0", "f1"} {
			if used[id] {
				ret = append(ret, id)
			}
		}
		b.WriteString("return distinct " + strings.Join(ret, ", "))
		src := b.String()

		var counts []int
		for mi, en := range modes {
			res, err := en.ExecuteTBQL(src)
			if err != nil {
				t.Fatalf("case %d mode %d: %v\n%s", i, mi, err, src)
			}
			counts = append(counts, len(res.Rows))
		}
		if counts[0] != counts[1] || counts[1] != counts[2] {
			t.Fatalf("case %d: modes disagree %v\n%s", i, counts, src)
		}
	}
}

// TestPropagationCap: oversized candidate sets must not be propagated,
// and execution must stay correct.
func TestPropagationCap(t *testing.T) {
	en := leakageEngine(t, 2000)
	en.MaxPropagatedIDs = 1 // nothing qualifies beyond single-candidate sets
	res, err := en.ExecuteTBQL(fig2TBQL)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Errorf("capped propagation broke correctness: %d rows", len(res.Rows))
	}
}

// TestNegatedOps: !read on a narrow file set.
func TestNegatedOps(t *testing.T) {
	en := leakageEngine(t, 0)
	res, err := en.ExecuteTBQL(`proc p["%/bin/tar%"] !read file f as e1
return distinct f`)
	if err != nil {
		t.Fatal(err)
	}
	// tar's only non-read file op in the attack is the upload.tar write.
	if len(res.Rows) != 1 || res.Rows[0][0] != "/tmp/upload.tar" {
		t.Errorf("negated op rows = %v", res.Rows)
	}
}

// TestMultiOpDisjunctionPath: op disjunction on a path pattern's final
// hop.
func TestMultiOpDisjunctionPath(t *testing.T) {
	en := leakageEngine(t, 0)
	res, err := en.ExecuteTBQL(`proc p["%/usr/sbin/apache2%"] ~>(1~4)[read || write] file f["%upload%"] as e1
return distinct f`)
	if err != nil {
		t.Fatal(err)
	}
	// apache2 -> bash -> tar -> write upload.tar (3 hops, final write).
	if len(res.Rows) == 0 {
		t.Errorf("disjunction path found nothing")
	}
	if !strings.Contains(res.Stats.DataQueries[0], "OR") {
		t.Errorf("op disjunction should appear in WHERE: %s", res.Stats.DataQueries[0])
	}
}
