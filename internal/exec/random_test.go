package exec

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/audit/gen"
)

// TestRandomQueriesExecute: randomly composed valid queries must execute
// without error on a loaded engine, in every optimization mode, and all
// modes must agree on the result rows.
func TestRandomQueriesExecute(t *testing.T) {
	base := leakageEngine(t, 1500)
	modes := []*Engine{
		base,
		{Rel: base.Rel, Graph: base.Graph, DisablePropagation: true},
		{Rel: base.Rel, Graph: base.Graph, DisableScheduling: true, DisablePropagation: true},
		{Rel: base.Rel, Graph: base.Graph, DisableCostOptimizer: true},
	}

	rng := rand.New(rand.NewSource(77))
	exes := []string{"/bin/tar", "/usr/bin/curl", "/bin/bash", "/usr/bin/chrome", "/usr/sbin/sshd"}
	files := []string{"/etc/passwd", "/tmp/upload.tar", "/var/log/syslog", "/etc/crontab"}
	fileOps := []string{"read", "write", "read || write"}

	for i := 0; i < 60; i++ {
		nPat := 1 + rng.Intn(3)
		var b strings.Builder
		var names []string
		used := map[string]bool{}
		for j := 0; j < nPat; j++ {
			name := fmt.Sprintf("e%d", j+1)
			names = append(names, name)
			subjID := fmt.Sprintf("p%d", rng.Intn(2))
			objID := fmt.Sprintf("f%d", rng.Intn(2))
			used[subjID], used[objID] = true, true
			subjF, objF := "", ""
			if rng.Intn(2) == 0 {
				subjF = fmt.Sprintf(`["%%%s%%"]`, exes[rng.Intn(len(exes))])
			}
			if rng.Intn(2) == 0 {
				objF = fmt.Sprintf(`["%%%s%%"]`, files[rng.Intn(len(files))])
			}
			if rng.Intn(5) == 0 {
				fmt.Fprintf(&b, "proc %s%s ~>(1~3)[read] file %s%s as %s\n", subjID, subjF, objID, objF, name)
			} else {
				fmt.Fprintf(&b, "proc %s%s %s file %s%s as %s\n", subjID, subjF, fileOps[rng.Intn(len(fileOps))], objID, objF, name)
			}
		}
		if nPat > 1 && rng.Intn(2) == 0 {
			fmt.Fprintf(&b, "with %s before %s\n", names[0], names[1])
		}
		var ret []string
		for _, id := range []string{"p0", "p1", "f0", "f1"} {
			if used[id] {
				ret = append(ret, id)
			}
		}
		b.WriteString("return distinct " + strings.Join(ret, ", "))
		src := b.String()

		var counts []int
		for mi, en := range modes {
			res, err := en.ExecuteTBQL(src)
			if err != nil {
				t.Fatalf("case %d mode %d: %v\n%s", i, mi, err, src)
			}
			counts = append(counts, len(res.Rows))
		}
		if counts[0] != counts[1] || counts[1] != counts[2] {
			t.Fatalf("case %d: modes disagree %v\n%s", i, counts, src)
		}
	}
}

// TestStreamingJoinMatchesNaive is the equivalence property test for
// the streaming hash-join executor: every randomly composed query —
// including temporal relations, attribute relations (literal and
// event-to-event), path patterns, and distinct/non-distinct projections
// — must produce the identical sorted result set under the streaming
// join and the legacy naive nested-loop join, in every scheduling mode.
func TestStreamingJoinMatchesNaive(t *testing.T) {
	base := leakageEngine(t, 1500)
	modes := []struct {
		name          string
		stream, naive *Engine
	}{
		{
			"scheduled",
			&Engine{Rel: base.Rel, Graph: base.Graph},
			&Engine{Rel: base.Rel, Graph: base.Graph, UseNaiveJoin: true},
		},
		{
			"textual-order",
			&Engine{Rel: base.Rel, Graph: base.Graph, DisableScheduling: true},
			&Engine{Rel: base.Rel, Graph: base.Graph, DisableScheduling: true, UseNaiveJoin: true},
		},
		{
			"static-order",
			&Engine{Rel: base.Rel, Graph: base.Graph, DisableCostOptimizer: true},
			&Engine{Rel: base.Rel, Graph: base.Graph, DisableCostOptimizer: true, UseNaiveJoin: true},
		},
	}

	rng := rand.New(rand.NewSource(1234))
	exes := []string{"/bin/tar", "/usr/bin/curl", "/bin/bash", "/usr/bin/chrome", "/usr/sbin/sshd", "/usr/sbin/apache2"}
	files := []string{"/etc/passwd", "/tmp/upload.tar", "/var/log/syslog", "/etc/crontab", "/tmp/upload"}
	fileOps := []string{"read", "write", "read || write", "!read"}
	attrOps := []string{"=", "!=", "<", "<=", ">", ">="}
	evtAttrs := []string{"srcid", "dstid", "starttime", "amount", "id"}

	const cases = 120
	for i := 0; i < cases; i++ {
		nPat := 1 + rng.Intn(4)
		var b strings.Builder
		var names []string
		used := map[string]bool{}
		for j := 0; j < nPat; j++ {
			name := fmt.Sprintf("e%d", j+1)
			names = append(names, name)
			subjID := fmt.Sprintf("p%d", rng.Intn(3))
			objID := fmt.Sprintf("f%d", rng.Intn(3))
			used[subjID], used[objID] = true, true
			subjF, objF := "", ""
			if rng.Intn(2) == 0 {
				subjF = fmt.Sprintf(`["%%%s%%"]`, exes[rng.Intn(len(exes))])
			}
			if rng.Intn(2) == 0 {
				objF = fmt.Sprintf(`["%%%s%%"]`, files[rng.Intn(len(files))])
			}
			if rng.Intn(4) == 0 {
				fmt.Fprintf(&b, "proc %s%s ~>(1~%d)[read] file %s%s as %s\n",
					subjID, subjF, 2+rng.Intn(3), objID, objF, name)
			} else {
				fmt.Fprintf(&b, "proc %s%s %s file %s%s as %s\n",
					subjID, subjF, fileOps[rng.Intn(len(fileOps))], objID, objF, name)
			}
		}
		// With-clause: temporal and attribute relations.
		var rels []string
		if nPat > 1 && rng.Intn(2) == 0 {
			a, c := rng.Intn(nPat), rng.Intn(nPat)
			if a != c {
				op := "before"
				if rng.Intn(2) == 0 {
					op = "after"
				}
				rels = append(rels, fmt.Sprintf("%s %s %s", names[a], op, names[c]))
			}
		}
		if rng.Intn(2) == 0 {
			// Literal attribute relation.
			rels = append(rels, fmt.Sprintf("%s.%s %s %d",
				names[rng.Intn(nPat)], evtAttrs[rng.Intn(len(evtAttrs))],
				attrOps[rng.Intn(len(attrOps))], rng.Intn(5000)))
		}
		if nPat > 1 && rng.Intn(3) == 0 {
			// Event-to-event attribute relation.
			a, c := rng.Intn(nPat), rng.Intn(nPat)
			if a != c {
				rels = append(rels, fmt.Sprintf("%s.%s %s %s.%s",
					names[a], evtAttrs[rng.Intn(len(evtAttrs))],
					attrOps[rng.Intn(len(attrOps))],
					names[c], evtAttrs[rng.Intn(len(evtAttrs))]))
			}
		}
		if len(rels) > 0 {
			b.WriteString("with " + strings.Join(rels, ", ") + "\n")
		}
		var ret []string
		for _, id := range []string{"p0", "p1", "p2", "f0", "f1", "f2"} {
			if used[id] {
				ret = append(ret, id)
			}
		}
		distinct := ""
		if rng.Intn(2) == 0 {
			distinct = "distinct "
		}
		b.WriteString("return " + distinct + strings.Join(ret, ", "))
		src := b.String()

		for _, mode := range modes {
			sres, err := mode.stream.ExecuteTBQL(src)
			if err != nil {
				t.Fatalf("case %d %s streaming: %v\n%s", i, mode.name, err, src)
			}
			nres, err := mode.naive.ExecuteTBQL(src)
			if err != nil {
				t.Fatalf("case %d %s naive: %v\n%s", i, mode.name, err, src)
			}
			if len(sres.Matches) != len(nres.Matches) {
				t.Fatalf("case %d %s: %d streaming matches, %d naive\n%s",
					i, mode.name, len(sres.Matches), len(nres.Matches), src)
			}
			got, want := sortedRows(sres.Rows), sortedRows(nres.Rows)
			if len(got) != len(want) {
				t.Fatalf("case %d %s: %d streaming rows, %d naive\n%s",
					i, mode.name, len(got), len(want), src)
			}
			for r := range got {
				if got[r] != want[r] {
					t.Fatalf("case %d %s row %d: streaming %q, naive %q\n%s",
						i, mode.name, r, got[r], want[r], src)
				}
			}
		}
	}
}

func sortedRows(rows [][]string) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = strings.Join(r, "\x00")
	}
	sort.Strings(out)
	return out
}

// canonicalMatches serializes a result's match set order-independently:
// each match becomes its sorted entity and event bindings, and the
// whole set is sorted.
func canonicalMatches(matches []Match) []string {
	out := make([]string, len(matches))
	for i, m := range matches {
		var parts []string
		for id, ent := range m.Entities {
			parts = append(parts, fmt.Sprintf("%s=%d", id, ent))
		}
		for name, ev := range m.Events {
			parts = append(parts, fmt.Sprintf("%s#%d", name, ev.EventID))
		}
		sort.Strings(parts)
		out[i] = strings.Join(parts, "|")
	}
	sort.Strings(out)
	return out
}

// TestShardEquivalence is the shard-equivalence property test: every
// randomly composed query — including host-filtered, host-contradictory,
// temporal/attribute-related, path, and distinct variants — must yield
// the identical match set and projected row set on a 1-shard and a
// 4-shard System over the same multi-host audit data, in both
// scheduling modes. It is the executable form of the sharding
// argument: events live in exactly one shard, entities are broadcast,
// so the per-shard union of every data query equals the single-store
// result.
func TestShardEquivalence(t *testing.T) {
	hosts := []string{"host1", "host2", "host3"}
	cfgs := []gen.Config{
		{Seed: 42, Host: hosts[0], BenignEvents: 300,
			Attacks: []gen.Attack{{Kind: gen.AttackDataLeakage, At: 10 * time.Minute}}},
		{Seed: 43, Host: hosts[1], BenignEvents: 300},
		{Seed: 44, Host: hosts[2], BenignEvents: 300,
			Attacks: []gen.Attack{{Kind: gen.AttackDataLeakage, At: 20 * time.Minute}}},
	}
	one, _ := newShardedEngine(t, 1, cfgs...)
	const nShards = 4
	many, _ := newShardedEngine(t, nShards, cfgs...)
	if got := many.Rel.NumShards(); got != nShards {
		t.Fatalf("sharded engine has %d shards", got)
	}
	// The fixture must actually spread events across shards, or the test
	// degenerates to the 1-shard case.
	nonEmpty := 0
	for _, n := range many.Rel.EventRows() {
		if n > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < 2 {
		t.Fatalf("fixture loads only %d shard(s); pick different hosts", nonEmpty)
	}

	modes := []struct {
		name      string
		one, many *Engine
	}{
		{
			"scheduled",
			&Engine{Rel: one.Rel, Graph: one.Graph},
			&Engine{Rel: many.Rel, Graph: many.Graph},
		},
		{
			"textual-order",
			&Engine{Rel: one.Rel, Graph: one.Graph, DisableScheduling: true},
			&Engine{Rel: many.Rel, Graph: many.Graph, DisableScheduling: true},
		},
		{
			"static-order",
			&Engine{Rel: one.Rel, Graph: one.Graph, DisableCostOptimizer: true},
			&Engine{Rel: many.Rel, Graph: many.Graph, DisableCostOptimizer: true},
		},
	}

	rng := rand.New(rand.NewSource(2026))
	exes := []string{"/bin/tar", "/usr/bin/curl", "/bin/bash", "/usr/bin/chrome", "/usr/sbin/sshd"}
	files := []string{"/etc/passwd", "/tmp/upload.tar", "/var/log/syslog", "/etc/crontab"}
	fileOps := []string{"read", "write", "read || write", "!read"}
	attrOps := []string{"=", "!=", "<", "<=", ">", ">="}
	evtAttrs := []string{"srcid", "dstid", "starttime", "amount", "id"}

	const cases = 120
	for i := 0; i < cases; i++ {
		nPat := 1 + rng.Intn(3)
		var b strings.Builder
		var names []string
		used := map[string]bool{}
		for j := 0; j < nPat; j++ {
			name := fmt.Sprintf("e%d", j+1)
			names = append(names, name)
			subjID := fmt.Sprintf("p%d", rng.Intn(2))
			objID := fmt.Sprintf("f%d", rng.Intn(2))
			used[subjID], used[objID] = true, true
			subjF, objF := "", ""
			// Subject filters mix exe LIKEs with host constants so shard
			// pruning (single host, host disjunction, contradiction) is
			// exercised alongside unpruned fan-out.
			switch rng.Intn(6) {
			case 0:
				subjF = fmt.Sprintf(`["%%%s%%"]`, exes[rng.Intn(len(exes))])
			case 1:
				subjF = fmt.Sprintf(`[host = "%s"]`, hosts[rng.Intn(len(hosts))])
			case 2:
				subjF = fmt.Sprintf(`[host = "%s" && "%%%s%%"]`,
					hosts[rng.Intn(len(hosts))], exes[rng.Intn(len(exes))])
			case 3:
				subjF = fmt.Sprintf(`[host = "%s" || host = "%s"]`,
					hosts[rng.Intn(len(hosts))], hosts[rng.Intn(len(hosts))])
			}
			if rng.Intn(3) == 0 {
				objF = fmt.Sprintf(`["%%%s%%"]`, files[rng.Intn(len(files))])
			} else if rng.Intn(6) == 0 {
				// Occasionally contradictory with a subject host filter.
				objF = fmt.Sprintf(`[host = "%s"]`, hosts[rng.Intn(len(hosts))])
			}
			if rng.Intn(5) == 0 {
				fmt.Fprintf(&b, "proc %s%s ~>(1~%d)[read] file %s%s as %s\n",
					subjID, subjF, 2+rng.Intn(2), objID, objF, name)
			} else {
				fmt.Fprintf(&b, "proc %s%s %s file %s%s as %s\n",
					subjID, subjF, fileOps[rng.Intn(len(fileOps))], objID, objF, name)
			}
		}
		var rels []string
		if nPat > 1 && rng.Intn(2) == 0 {
			a, c := rng.Intn(nPat), rng.Intn(nPat)
			if a != c {
				op := "before"
				if rng.Intn(2) == 0 {
					op = "after"
				}
				rels = append(rels, fmt.Sprintf("%s %s %s", names[a], op, names[c]))
			}
		}
		if rng.Intn(2) == 0 {
			rels = append(rels, fmt.Sprintf("%s.%s %s %d",
				names[rng.Intn(nPat)], evtAttrs[rng.Intn(len(evtAttrs))],
				attrOps[rng.Intn(len(attrOps))], rng.Intn(5000)))
		}
		if len(rels) > 0 {
			b.WriteString("with " + strings.Join(rels, ", ") + "\n")
		}
		var ret []string
		for _, id := range []string{"p0", "p1", "f0", "f1"} {
			if used[id] {
				ret = append(ret, id)
			}
		}
		distinct := ""
		if rng.Intn(2) == 0 {
			distinct = "distinct "
		}
		b.WriteString("return " + distinct + strings.Join(ret, ", "))
		src := b.String()

		for _, mode := range modes {
			ores, err := mode.one.ExecuteTBQL(src)
			if err != nil {
				t.Fatalf("case %d %s 1-shard: %v\n%s", i, mode.name, err, src)
			}
			mres, err := mode.many.ExecuteTBQL(src)
			if err != nil {
				t.Fatalf("case %d %s %d-shard: %v\n%s", i, mode.name, nShards, err, src)
			}
			om, mm := canonicalMatches(ores.Matches), canonicalMatches(mres.Matches)
			if len(om) != len(mm) {
				t.Fatalf("case %d %s: %d matches on 1 shard, %d on %d shards\n%s",
					i, mode.name, len(om), len(mm), nShards, src)
			}
			for k := range om {
				if om[k] != mm[k] {
					t.Fatalf("case %d %s match %d: 1-shard %q, sharded %q\n%s",
						i, mode.name, k, om[k], mm[k], src)
				}
			}
			got, want := sortedRows(mres.Rows), sortedRows(ores.Rows)
			if len(got) != len(want) {
				t.Fatalf("case %d %s: %d sharded rows, %d 1-shard\n%s",
					i, mode.name, len(got), len(want), src)
			}
			for r := range got {
				if got[r] != want[r] {
					t.Fatalf("case %d %s row %d: sharded %q, 1-shard %q\n%s",
						i, mode.name, r, got[r], want[r], src)
				}
			}
		}
	}
}

// TestShardPruning: a host-constant filter must prune the fan-out to
// one shard, and a host-contradictory pattern must short-circuit
// without executing anywhere.
func TestShardPruning(t *testing.T) {
	const nShards = 4
	en, _ := newShardedEngine(t, nShards,
		gen.Config{Seed: 42, Host: "host1", BenignEvents: 300,
			Attacks: []gen.Attack{{Kind: gen.AttackDataLeakage, At: 10 * time.Minute}}},
		gen.Config{Seed: 43, Host: "host2", BenignEvents: 300},
	)

	// Unpruned: one fetch per shard.
	res, err := en.ExecuteTBQL("proc p read file f as e1\nreturn p, f")
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.ShardFetches != nShards {
		t.Errorf("unpruned hunt ran %d shard fetches, want %d", res.Stats.ShardFetches, nShards)
	}

	// Host-pinned: exactly one shard fetch, same rows as the unpruned
	// host filter evaluated everywhere.
	res, err = en.ExecuteTBQL(`proc p[host = "host1" && "%/bin/tar%"] read file f as e1` + "\nreturn p, f")
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.ShardFetches != 1 {
		t.Errorf("host-pinned hunt ran %d shard fetches, want 1", res.Stats.ShardFetches)
	}
	if len(res.Rows) == 0 {
		t.Error("host-pinned hunt found nothing; fixture broken")
	}

	// Contradictory hosts: short-circuit with no fetches at all.
	res, err = en.ExecuteTBQL(`proc p[host = "host1"] read file f[host = "host2"] as e1` + "\nreturn p, f")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.ShortCircuit {
		t.Error("contradictory host constraints should short-circuit")
	}
	if res.Stats.ShardFetches != 0 || len(res.Stats.DataQueries) != 0 {
		t.Errorf("contradictory hunt executed %d fetches, queries %v",
			res.Stats.ShardFetches, res.Stats.DataQueries)
	}
	if len(res.Rows) != 0 {
		t.Errorf("contradictory hunt returned rows: %v", res.Rows)
	}
}

// TestPropagationCap: oversized candidate sets must not be propagated,
// and execution must stay correct.
func TestPropagationCap(t *testing.T) {
	en := leakageEngine(t, 2000)
	en.MaxPropagatedIDs = 1 // nothing qualifies beyond single-candidate sets
	res, err := en.ExecuteTBQL(fig2TBQL)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Errorf("capped propagation broke correctness: %d rows", len(res.Rows))
	}
}

// TestNegatedOps: !read on a narrow file set.
func TestNegatedOps(t *testing.T) {
	en := leakageEngine(t, 0)
	res, err := en.ExecuteTBQL(`proc p["%/bin/tar%"] !read file f as e1
return distinct f`)
	if err != nil {
		t.Fatal(err)
	}
	// tar's only non-read file op in the attack is the upload.tar write.
	if len(res.Rows) != 1 || res.Rows[0][0] != "/tmp/upload.tar" {
		t.Errorf("negated op rows = %v", res.Rows)
	}
}

// TestMultiOpDisjunctionPath: op disjunction on a path pattern's final
// hop.
func TestMultiOpDisjunctionPath(t *testing.T) {
	en := leakageEngine(t, 0)
	res, err := en.ExecuteTBQL(`proc p["%/usr/sbin/apache2%"] ~>(1~4)[read || write] file f["%upload%"] as e1
return distinct f`)
	if err != nil {
		t.Fatal(err)
	}
	// apache2 -> bash -> tar -> write upload.tar (3 hops, final write).
	if len(res.Rows) == 0 {
		t.Errorf("disjunction path found nothing")
	}
	if !strings.Contains(res.Stats.DataQueries[0], "OR") {
		t.Errorf("op disjunction should appear in WHERE: %s", res.Stats.DataQueries[0])
	}
}
