package exec

import (
	"strings"
	"testing"

	"repro/internal/tbql"
)

func TestAttrRelLiteral(t *testing.T) {
	en := leakageEngine(t, 500)
	// The attack read of /etc/passwd transfers 2949 bytes; benign sshd
	// reads transfer 2048. The amount filter isolates the attack.
	q := `proc p read file f["%/etc/passwd%"] as evt1
with evt1.amount > 2500
return distinct p`
	res, err := en.ExecuteTBQL(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != "/bin/tar" {
		t.Errorf("amount filter rows = %v", res.Rows)
	}
	// Inverted threshold excludes the attack.
	q = `proc p["%/bin/tar%"] read file f["%/etc/passwd%"] as evt1
with evt1.amount < 100
return p`
	res, err = en.ExecuteTBQL(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Errorf("inverted amount filter rows = %v", res.Rows)
	}
}

func TestAttrRelLiteralNegative(t *testing.T) {
	en := leakageEngine(t, 0)
	q := `proc p["%/bin/tar%"] read file f as evt1
with evt1.amount > -1
return distinct f`
	if _, err := en.ExecuteTBQL(q); err != nil {
		t.Errorf("negative literal: %v", err)
	}
}

func TestExplain(t *testing.T) {
	en := leakageEngine(t, 100)
	q, err := tbql.Parse(fig2TBQL)
	if err != nil {
		t.Fatal(err)
	}
	eps, err := en.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(eps) != 8 {
		t.Fatalf("explained %d patterns", len(eps))
	}
	// The store carries ingest-time stats, so the order is cost-based:
	// every pattern reports an estimate and the anchor (first pattern)
	// is the globally most selective one.
	for _, ep := range eps {
		if !ep.CostBased || ep.EstRows < 0 {
			t.Errorf("pattern %s: CostBased=%v EstRows=%d", ep.Name, ep.CostBased, ep.EstRows)
		}
	}
	for _, ep := range eps[1:] {
		if ep.EstRows < eps[0].EstRows {
			t.Errorf("anchor %s (est %d) is not minimal: %s estimates %d",
				eps[0].Name, eps[0].EstRows, ep.Name, ep.EstRows)
		}
	}
	for _, ep := range eps {
		if ep.Backend != "sql" || !strings.Contains(ep.DataQuery, "SELECT") {
			t.Errorf("pattern %s: backend=%s query=%q", ep.Name, ep.Backend, ep.DataQuery)
		}
	}

	// The escape hatch falls back to the static pruning-score order:
	// scores non-increasing, no estimates reported.
	en.DisableCostOptimizer = true
	eps, err = en.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(eps); i++ {
		if eps[i].Score > eps[i-1].Score {
			t.Errorf("static explain order not by score: %d after %d", eps[i].Score, eps[i-1].Score)
		}
	}
	for _, ep := range eps {
		if ep.CostBased || ep.EstRows != -1 {
			t.Errorf("static pattern %s: CostBased=%v EstRows=%d", ep.Name, ep.CostBased, ep.EstRows)
		}
	}
}

func TestExplainPathPattern(t *testing.T) {
	en := leakageEngine(t, 0)
	q, err := tbql.Parse(`proc p ~>(1~3)[read] file f as e1
return p`)
	if err != nil {
		t.Fatal(err)
	}
	eps, err := en.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if eps[0].Backend != "cypher" || !strings.Contains(eps[0].DataQuery, "MATCH") {
		t.Errorf("path pattern explain: %+v", eps[0])
	}
}
