package exec

import (
	"testing"

	"repro/internal/relstore"
	"repro/internal/tbql"
)

// TestPlanKeySchemaIdentity asserts the regression fixed in this change:
// the plan-cache key must carry the schema fingerprint, so a plan
// compiled under one schema can never be looked up under another.
func TestPlanKeySchemaIdentity(t *testing.T) {
	q, err := tbql.Parse(`proc p read file f as e1
return p`)
	if err != nil {
		t.Fatal(err)
	}
	pat := &q.Patterns[0]
	k1 := planKey(pat, 0, 10, 0x1111)
	k2 := planKey(pat, 0, 10, 0x2222)
	if k1 == k2 {
		t.Fatalf("planKey ignores the schema fingerprint: %q", k1)
	}
	if k1 != planKey(pat, 0, 10, 0x1111) {
		t.Error("planKey is not deterministic")
	}
}

// TestPlanCacheSchemaFlush changes the store schema between hunts and
// asserts the cache recompiles rather than reusing templates prepared
// against the old schema — and that the flush empties the stale entries
// instead of leaving them to LRU churn.
func TestPlanCacheSchemaFlush(t *testing.T) {
	en := leakageEngine(t, 200)
	en.Plans = NewPlanCache(DefaultPlanCacheSize)
	q, err := tbql.Parse(`proc p read file f as e1
return distinct p, f`)
	if err != nil {
		t.Fatal(err)
	}

	run := func() Stats {
		t.Helper()
		res, err := en.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats
	}

	if st := run(); st.PlanCacheMisses == 0 {
		t.Fatalf("cold hunt compiled nothing: %+v", st)
	}
	if st := run(); st.PlanCacheMisses != 0 || st.PlanCacheHits == 0 {
		t.Fatalf("warm hunt should be all hits: %+v", st)
	}
	warmLen := en.Plans.Len()
	if warmLen == 0 {
		t.Fatal("no plans cached")
	}

	// An index added mid-run changes the schema fingerprint; the cached
	// plans were compiled without it and must not be served again.
	fpBefore := en.schemaFingerprint()
	if err := en.Rel.Shard(0).Table(relstore.EventTable).CreateHashIndex("host"); err != nil {
		t.Fatal(err)
	}
	if fp := en.schemaFingerprint(); fp == fpBefore {
		t.Fatal("CreateHashIndex did not change the schema fingerprint")
	}

	st := run()
	if st.PlanCacheMisses == 0 || st.PlanCacheHits != 0 {
		t.Fatalf("post-schema-change hunt reused stale plans: %+v", st)
	}
	// The flush dropped the stale templates: only the recompiled ones
	// remain, not old + new side by side.
	if got := en.Plans.Len(); got != warmLen {
		t.Errorf("cache holds %d plans after flush, want %d fresh ones", got, warmLen)
	}

	// Stable schema again: back to all hits.
	if st := run(); st.PlanCacheMisses != 0 {
		t.Errorf("re-warmed hunt still compiling: %+v", st)
	}
}
