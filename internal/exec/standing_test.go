package exec

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/audit/gen"
	"repro/internal/graphstore"
	"repro/internal/relstore"
	"repro/internal/tbql"
)

// standingQueries composes random queries in the generated workload's
// vocabulary: multi-pattern joins, paths, temporal relations, and a mix
// of distinct and non-distinct projections.
func standingQueries(n int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	exes := []string{"/bin/tar", "/usr/bin/curl", "/bin/bash", "/usr/bin/chrome", "/usr/sbin/sshd"}
	files := []string{"/etc/passwd", "/tmp/upload.tar", "/var/log/syslog", "/etc/crontab"}
	fileOps := []string{"read", "write", "read || write"}
	var out []string
	for i := 0; i < n; i++ {
		nPat := 1 + rng.Intn(3)
		var b strings.Builder
		var names []string
		used := map[string]bool{}
		for j := 0; j < nPat; j++ {
			name := fmt.Sprintf("e%d", j+1)
			names = append(names, name)
			subjID := fmt.Sprintf("p%d", rng.Intn(2))
			objID := fmt.Sprintf("f%d", rng.Intn(2))
			used[subjID], used[objID] = true, true
			subjF, objF := "", ""
			if rng.Intn(2) == 0 {
				subjF = fmt.Sprintf(`["%%%s%%"]`, exes[rng.Intn(len(exes))])
			}
			if rng.Intn(2) == 0 {
				objF = fmt.Sprintf(`["%%%s%%"]`, files[rng.Intn(len(files))])
			}
			if rng.Intn(5) == 0 {
				fmt.Fprintf(&b, "proc %s%s ~>(1~3)[read] file %s%s as %s\n", subjID, subjF, objID, objF, name)
			} else {
				fmt.Fprintf(&b, "proc %s%s %s file %s%s as %s\n", subjID, subjF, fileOps[rng.Intn(len(fileOps))], objID, objF, name)
			}
		}
		if nPat > 1 && rng.Intn(2) == 0 {
			fmt.Fprintf(&b, "with %s before %s\n", names[0], names[1])
		}
		var ret []string
		for _, id := range []string{"p0", "p1", "f0", "f1"} {
			if used[id] {
				ret = append(ret, id)
			}
		}
		distinct := ""
		if rng.Intn(2) == 0 {
			distinct = "distinct "
		}
		b.WriteString("return " + distinct + strings.Join(ret, ", "))
		out = append(out, b.String())
	}
	return out
}

// TestStandingHuntIncrementalEquivalence is the engine-level telescope
// property: load half the workload, register standing hunts, load the
// rest, and require the union of the two delta batches to equal a full
// re-execution — with a third Advance over an unchanged store emitting
// nothing.
func TestStandingHuntIncrementalEquivalence(t *testing.T) {
	p := audit.NewParser()
	w := gen.Generate(gen.Config{
		Seed:         42,
		BenignEvents: 1200,
		Attacks:      []gen.Attack{{Kind: gen.AttackDataLeakage, At: 10 * time.Minute}},
	})
	for _, r := range w.Records {
		if _, err := p.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	events := p.Events()
	half := len(events) / 2
	rel, err := relstore.NewSharded(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := rel.Load(p.Entities(), events[:half]); err != nil {
		t.Fatal(err)
	}
	g := graphstore.NewSharded(1)
	if err := g.Load(p.Entities(), events[:half]); err != nil {
		t.Fatal(err)
	}
	en := &Engine{Rel: rel, Graph: g}

	queries := standingQueries(40, 99)
	hunts := make([]*StandingHunt, len(queries))
	unions := make([][][]string, len(queries))
	for i, src := range queries {
		q, err := tbql.Parse(src)
		if err != nil {
			t.Fatalf("query %d: %v\n%s", i, err, src)
		}
		if hunts[i], err = en.NewStandingHunt(q); err != nil {
			t.Fatalf("register %d: %v\n%s", i, err, src)
		}
		b, err := hunts[i].Advance()
		if err != nil {
			t.Fatalf("backfill %d: %v\n%s", i, err, src)
		}
		unions[i] = append(unions[i], b.Rows...)
	}

	if err := rel.LoadEvents(events[half:]); err != nil {
		t.Fatal(err)
	}
	if err := g.LoadEdges(events[half:]); err != nil {
		t.Fatal(err)
	}

	for i, h := range hunts {
		b, err := h.Advance()
		if err != nil {
			t.Fatalf("delta %d: %v\n%s", i, err, queries[i])
		}
		unions[i] = append(unions[i], b.Rows...)
		again, err := h.Advance()
		if err != nil {
			t.Fatal(err)
		}
		if len(again.Rows) != 0 {
			t.Fatalf("query %d: advance over an unchanged store emitted %d rows\n%s",
				i, len(again.Rows), queries[i])
		}
		res, err := en.ExecuteTBQL(queries[i])
		if err != nil {
			t.Fatalf("re-execution %d: %v\n%s", i, err, queries[i])
		}
		got, want := sortedRows(unions[i]), sortedRows(res.Rows)
		if len(got) != len(want) {
			t.Fatalf("query %d: %d incremental rows, %d re-executed\n%s",
				i, len(got), len(want), queries[i])
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("query %d row %d: %q vs %q\n%s", i, j, got[j], want[j], queries[i])
			}
		}
	}
}

// TestStandingHuntResumeToken: a token round-trips through
// ResumeStandingHunt (resumed hunt sees nothing new on an unchanged
// store), and the validation rejects foreign, malformed, and
// ahead-of-store tokens.
func TestStandingHuntResumeToken(t *testing.T) {
	en := leakageEngine(t, 800)
	const src = "proc p[\"%/bin/tar%\"] read file f as e1\nreturn distinct p, f"
	q, err := tbql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	h, err := en.NewStandingHunt(q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.Advance()
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Rows) == 0 {
		t.Fatal("backfill found nothing; fixture broken")
	}
	token := b.Resume

	q2, err := tbql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := en.ResumeStandingHunt(q2, token)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	rb, err := resumed.Advance()
	if err != nil {
		t.Fatal(err)
	}
	if len(rb.Rows) != 0 {
		t.Fatalf("resumed hunt re-emitted %d rows the token already covered", len(rb.Rows))
	}
	if rb.Resume != token {
		t.Fatalf("resumed token drifted: %q vs %q", rb.Resume, token)
	}

	// Foreign query: same shape class, different op.
	q3, err := tbql.Parse("proc p[\"%/bin/tar%\"] write file f as e1\nreturn distinct p, f")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := en.ResumeStandingHunt(q3, token); err == nil {
		t.Fatal("token of a different query must be rejected")
	}

	// Malformed tokens.
	for _, bad := range []string{
		"",
		"v2 q=0 ev= g=",
		"v1 q=notahex ev=0:0 g=0:0",
		"v1 q=1 ev=0 g=0:0",
		"v1 q=1 ev=0:x g=0:0",
		"v1 ev=0:0",
	} {
		if _, err := en.ResumeStandingHunt(q2, bad); err == nil {
			t.Fatalf("malformed token %q accepted", bad)
		}
	}

	// Ahead-of-store: marks the store never reached mean acked data was
	// lost; resuming must fail loudly instead of skipping it.
	ahead := fmt.Sprintf("v1 q=%x ev=0:99999999 g=0:99999999", queryFingerprint(q2))
	if _, err := en.ResumeStandingHunt(q2, ahead); err == nil {
		t.Fatal("ahead-of-store token must be rejected")
	}
	// Wrong shard layout: a 2-shard token on a 1-shard store.
	twoShard := fmt.Sprintf("v1 q=%x ev=0:0,1:0 g=0:0,1:0", queryFingerprint(q2))
	if _, err := en.ResumeStandingHunt(q2, twoShard); err == nil {
		t.Fatal("mismatched shard layout must be rejected")
	}
}

// TestGrowIndexCut pins the bucket-bound helper: ascending buckets cut
// at a row-id bound by binary search.
func TestGrowIndexCut(t *testing.T) {
	bucket := []int32{0, 2, 5, 5, 9}
	cases := []struct {
		hi   int
		want int
	}{
		{0, 0}, {1, 1}, {2, 1}, {3, 2}, {5, 2}, {6, 4}, {9, 4}, {10, 5}, {100, 5},
	}
	for _, c := range cases {
		if got := len(cut(bucket, c.hi)); got != c.want {
			t.Errorf("cut(%v, %d) kept %d ids, want %d", bucket, c.hi, got, c.want)
		}
	}
	if got := cut(nil, 3); len(got) != 0 {
		t.Errorf("cut(nil) = %v", got)
	}
}
