package exec

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/graphstore"
	"repro/internal/relstore"
	"repro/internal/tbql"
)

// propShape encodes which sides of a pattern receive a propagated
// entity-ID constraint in a given hunt wave. It is part of the plan
// template's identity: the same pattern compiles to different templates
// depending on whether its subject, object, both, or neither carry a
// bound set parameter.
type propShape uint8

const (
	propSubj propShape = 1 << iota
	propObj
)

// patternPlan is one compiled, parameterized data-query template: a
// prepared statement for a (pattern, propagation-shape) pair, plus the
// parameter-slot layout needed to bind a wave's propagated ID sets (and,
// for Cypher, the pattern's window bounds) at execution time. Per-shard
// jobs share one patternPlan and one bound parameter set, so a fan-out
// hunt compiles and parses each pattern at most once — and with a warm
// PlanCache, zero times.
type patternPlan struct {
	backend byte   // 's' SQL, 'c' Cypher
	text    string // executed template text, with $k placeholders
	sql     *relstore.Stmt
	cy      *graphstore.CStmt

	// Parameter slot layout; -1 when the slot is absent from the shape.
	subjSlot, objSlot int
	fromSlot, toSlot  int
	window            *tbql.TimeWindow
}

// compilePlan builds the plan template for a pattern and propagation
// shape: it renders the template text with `$k` placeholders where the
// text pipeline would splat literals, then prepares it once. SQL
// statements are prepared against shard 0 (every shard is bootstrapped
// with identical schemas, so the same Stmt executes against any shard's
// epoch view).
func (en *Engine) compilePlan(pat *tbql.EventPattern, shape propShape, maxHops int) (*patternPlan, error) {
	p := &patternPlan{subjSlot: -1, objSlot: -1, fromSlot: -1, toSlot: -1, window: pat.Window}
	slot := 0
	var extraSQL, extraCy []string
	if shape&propSubj != 0 {
		p.subjSlot = slot
		extraSQL = append(extraSQL, fmt.Sprintf("e.srcid IN $%d", slot))
		extraCy = append(extraCy, fmt.Sprintf("s.id IN $%d", slot))
		slot++
	}
	if shape&propObj != 0 {
		p.objSlot = slot
		extraSQL = append(extraSQL, fmt.Sprintf("e.dstid IN $%d", slot))
		extraCy = append(extraCy, fmt.Sprintf("o.id IN $%d", slot))
		slot++
	}
	if pat.IsPath {
		if en.Graph == nil {
			return nil, fmt.Errorf("exec: pattern %q needs the graph backend", pat.Name)
		}
		winFrom, winTo := "", ""
		if pat.Window != nil {
			p.fromSlot, p.toSlot = slot, slot+1
			winFrom = fmt.Sprintf("$%d", p.fromSlot)
			winTo = fmt.Sprintf("$%d", p.toSlot)
		}
		src := compileCypherWin(pat, extraCy, maxHops, winFrom, winTo)
		st, err := graphstore.PrepareCypher(src)
		if err != nil {
			return nil, fmt.Errorf("exec: preparing cypher for pattern %q: %w", pat.Name, err)
		}
		p.backend, p.cy, p.text = 'c', st, src
		return p, nil
	}
	src := compileSQL(pat, extraSQL)
	st, err := en.Rel.Shard(0).Prepare(src)
	if err != nil {
		return nil, fmt.Errorf("exec: preparing sql for pattern %q: %w", pat.Name, err)
	}
	p.backend, p.sql, p.text = 's', st, src
	return p, nil
}

// bindSQL binds a wave's propagated ID sets to the template's slots.
// Returns nil when the shape has no parameters (the common first-wave
// case), which executes with no binding at all.
func (p *patternPlan) bindSQL(subjIDs, objIDs []int64) *relstore.Params {
	if p.subjSlot < 0 && p.objSlot < 0 {
		return nil
	}
	params := relstore.NewParams()
	if p.subjSlot >= 0 {
		params.BindIDSet(p.subjSlot, subjIDs)
	}
	if p.objSlot >= 0 {
		params.BindIDSet(p.objSlot, objIDs)
	}
	return params
}

// bindCypher binds propagated ID sets and the pattern's window bounds.
func (p *patternPlan) bindCypher(subjIDs, objIDs []int64) *graphstore.CParams {
	if p.subjSlot < 0 && p.objSlot < 0 && p.fromSlot < 0 {
		return nil
	}
	params := graphstore.NewCParams()
	if p.subjSlot >= 0 {
		params.BindIDSet(p.subjSlot, subjIDs)
	}
	if p.objSlot >= 0 {
		params.BindIDSet(p.objSlot, objIDs)
	}
	if p.fromSlot >= 0 {
		params.BindInt(p.fromSlot, p.window.From)
		params.BindInt(p.toSlot, p.window.To)
	}
	return params
}

// planKey is the cache identity of a plan template: the schema
// fingerprint of the stores the plan compiled against, the
// backend-relevant compilation inputs, and the pattern's TBQL normal
// form with the binding name cleared (two hunts naming the same
// pattern differently share one plan). The fingerprint component is
// what makes a cached plan schema-safe: a plan prepared before an
// index or column change can never be looked up after it.
func planKey(pat *tbql.EventPattern, shape propShape, maxHops int, fp uint64) string {
	norm := *pat
	norm.Name = ""
	backend := byte('s')
	if pat.IsPath {
		backend = 'c'
	}
	return fmt.Sprintf("%c|%x|%d|%d|%s", backend, fp, shape, maxHops, tbql.FormatPattern(norm))
}

// lookupPlan resolves a pattern's plan template: from the cross-hunt
// cache when the engine has one (counting per-hunt and cumulative
// hits/misses), compiling on a miss. Without a cache every hunt
// compiles each of its patterns once — still at most one parse per
// pattern per hunt, shared by all its shard jobs. fp is the engine's
// schema fingerprint (schemaFingerprint), part of the cache key.
func (en *Engine) lookupPlan(pat *tbql.EventPattern, shape propShape, maxHops int, fp uint64, stats *Stats) (*patternPlan, error) {
	if en.Plans == nil {
		return en.compilePlan(pat, shape, maxHops)
	}
	key := planKey(pat, shape, maxHops, fp)
	if p := en.Plans.get(key); p != nil {
		stats.PlanCacheHits++
		return p, nil
	}
	p, err := en.compilePlan(pat, shape, maxHops)
	if err != nil {
		return nil, err
	}
	stats.PlanCacheMisses++
	en.Plans.put(key, p)
	return p, nil
}

// DefaultPlanCacheSize is the default PlanCache capacity (plan
// templates, not bytes). A template is a few KB of AST and closures;
// 256 of them cover a large hunt library while staying far below one
// fetched row set's footprint.
const DefaultPlanCacheSize = 256

// PlanCache is a bounded, thread-safe LRU of compiled plan templates
// shared across hunts. The dominant service workload is the same hunts
// re-executed as new data streams in; a warm cache makes their fetch
// phase bind-and-execute with zero lexing, parsing, or plan derivation.
// Keys are pattern normal forms (planKey), so the cache is insensitive
// to pattern naming and formatting.
type PlanCache struct {
	mu    sync.Mutex
	cap   int
	lru   *list.List // front = most recently used; values are *planCacheEntry
	items map[string]*list.Element

	// schema is the store fingerprint the cached plans were compiled
	// against (ensureSchema); a change flushes the cache outright so
	// stale templates cannot linger until LRU eviction.
	schema    uint64
	schemaSet bool

	hits, misses atomic.Int64
}

type planCacheEntry struct {
	key  string
	plan *patternPlan
}

// NewPlanCache creates a cache bounded to the given number of plan
// templates. A capacity < 1 returns nil — the "caching disabled"
// engine configuration, which Engine.lookupPlan treats as compile-
// always.
func NewPlanCache(capacity int) *PlanCache {
	if capacity < 1 {
		return nil
	}
	return &PlanCache{cap: capacity, lru: list.New(), items: make(map[string]*list.Element)}
}

// get returns the cached plan for a key (promoting it to most recently
// used) or nil, updating the cumulative counters.
func (c *PlanCache) get(key string) *patternPlan {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.lru.MoveToFront(el)
		c.hits.Add(1)
		return el.Value.(*planCacheEntry).plan
	}
	c.misses.Add(1)
	return nil
}

// put inserts a plan, evicting the least-recently-used beyond capacity.
func (c *PlanCache) put(key string, p *patternPlan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*planCacheEntry).plan = p
		c.lru.MoveToFront(el)
		return
	}
	c.items[key] = c.lru.PushFront(&planCacheEntry{key: key, plan: p})
	for c.lru.Len() > c.cap {
		last := c.lru.Back()
		c.lru.Remove(last)
		delete(c.items, last.Value.(*planCacheEntry).key)
	}
}

// ensureSchema records the store schema fingerprint and flushes every
// cached plan when it has changed since the last call. The fingerprint
// is also part of each plan's key, so a flush is belt-and-braces — it
// reclaims the memory of unreachable stale plans immediately instead
// of waiting for LRU churn.
func (c *PlanCache) ensureSchema(fp uint64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.schemaSet && c.schema == fp {
		return
	}
	if c.schemaSet {
		c.lru.Init()
		c.items = make(map[string]*list.Element)
	}
	c.schema, c.schemaSet = fp, true
}

// Len reports how many plan templates are cached.
func (c *PlanCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Counters reports the cache's cumulative hit and miss counts — the
// numbers GET /stats surfaces so operators can watch the repeat-hunt
// workload skip compilation.
func (c *PlanCache) Counters() (hits, misses int64) {
	if c == nil {
		return 0, 0
	}
	return c.hits.Load(), c.misses.Load()
}
