// Package exec is ThreatRaptor's TBQL query execution engine. Each event
// pattern in a TBQL query is compiled into a semantically equivalent SQL
// data query (executed on the relational backend) and each variable-length
// event path pattern into a Cypher data query (executed on the graph
// backend). The engine estimates each pattern's result cardinality from
// ingest-time store statistics, schedules data-query execution most
// selective first, and propagates intermediate results between patterns
// connected by shared entities as additional filters, so complex TBQL
// queries execute efficiently across database backends.
//
// # Prepared plans
//
// Data queries are compiled to prepared plan templates, not text (see
// plan.go): each (pattern, propagation-shape) pair compiles once into a
// relstore.Stmt or graphstore.CStmt whose propagated entity-ID sets —
// and, for Cypher, window bounds — are parameter slots bound at
// execution time. Per-shard jobs share one plan and one parameter
// binding, so a fan-out hunt parses nothing per shard, and a propagated
// constraint is a typed []int64 set probed per row (or driven through
// the column's hash index) instead of a rendered `IN (...)` literal.
// That makes giant propagation sets cheap: the default
// MaxPropagatedIDs is 25600 — 50× the old text-pipeline cap — and
// Stats.PropagationsSkipped stays 0 on fan-out hunts that used to
// overflow it. A bounded LRU PlanCache keyed by the pattern's TBQL
// normal form persists plans across hunts, so the dominant service
// workload — the same hunts re-executed — skips compile and parse
// entirely (Stats.PlanCacheHits/Misses). The legacy text pipeline
// survives behind Engine.UseTextCompile as the equivalence baseline
// (TestPreparedMatchesTextCompile); Stats.DataQueries is rendered
// lazily from the plan refs only when a caller actually asks
// (Cursor.DataQueries, Execute, /explain), never on the hot hunt path.
//
// # Cost-based scheduling
//
// The paper's master query planner orders patterns by a syntactic
// pruning score (PruningScore: filter leaves and windows, blind to the
// data). That order is kept as the fallback, but by default the engine
// schedules from data: the stores maintain cheap cardinality sketches
// at ingest time — per-value row counts for hash-indexed columns
// (exact, a binary-search prefix cut of the index bucket), stride-
// sampled per-value counters for tracked unindexed columns like
// events.host, distinct-count growth arrays, and min/max range
// checkpoints for events.starttime (relstore/stats.go,
// graphstore/stats.go). Every estimate is answered *at the hunt's
// pinned watermark*, so costs describe exactly the epoch cut the
// cursor will read, not a store that kept growing. cost.go combines
// them per pattern: operation-type selectivity, subject/object
// attribute equality, host pins, and window fractions against the
// tracked time range multiply into an estimated row count, and the
// scheduler (costSchedule) greedily anchors on the smallest estimate,
// then repeatedly picks the connected pattern whose estimate benefits
// most from the propagated entity sets — falling back to the static
// order all-or-nothing when any pattern's stats are missing. Explain
// reports the chosen order with EstRows/CostBased per pattern, Stats
// reports CostBased/Reordered per hunt, and Engine.DisableCostOptimizer
// restores the paper's static order (the equivalence suites run both
// ways: orders may differ, match sets and rows must not).
//
// When the projection makes early termination safe — a single pattern,
// no temporal or attribute relations, no distinct collapsing, distinct
// subject/object variables — a caller-supplied row limit is also pushed
// into the per-shard data queries (Stats.FetchCapped), so a first-page
// hunt fetches page-scaled rows per shard instead of the full match
// set. Maintaining the sketches costs well under 5% of ingest (the hot
// path is a few slice iterations and one map probe per tracked column;
// see BenchmarkIngestParallelSharded), and their memory footprint is
// surfaced as stats_sketches in the daemon's /stats.
//
// # Pipeline tracing
//
// Every cursor records an obs.Trace of the pipeline stages it ran:
// analyze, snapshot, cost_optimize (annotated static/cost/reordered),
// fetch with one child span per dependency wave and one grandchild per
// executed (pattern, shard) job (annotated with its shard and, on the
// fetch span, the hunt's plan-cache hits/misses), and first_row — the
// lazy join's time to its first surfaced row. Later rows are not timed
// individually. Callers that traced earlier stages themselves (the
// daemon adds parse and page spans) pass their trace through
// ExecuteCursorTrace and read the combined tree from Cursor.Trace;
// Engine.DisableTracing turns the default recording off
// (BenchmarkHuntRepeatedNoTrace measures the difference, held under 5%).
//
// # Query lifecycle governance
//
// Every execution path takes a context.Context (ExecuteCursorCtx,
// ExplainTraceCtx, StandingHunt.AdvanceContext; the context-free
// variants delegate with context.Background()). Cancellation is
// observed at every fetch-wave boundary and, inside the streaming
// join, every joinCheckEvery (1024) candidate rows — cheap enough
// that the checks cost under 3% on the warm repeat hunt
// (BenchmarkHuntRepeated vs BenchmarkHuntRepeatedCtx). Aborts surface
// as typed errors (cancel.go): ErrHuntCancelled (wrapping the
// context.Cause, so an operator kill reads differently from a client
// disconnect), ErrHuntDeadline, and ErrJoinBudget when
// Engine.MaxJoinRows caps the candidate rows one execution may
// examine. A context interrupt suspends the join with its walk state
// intact and keeps the snapshot pinned: Cursor.SetContext installs a
// live context and clears the interrupt, and iteration resumes
// exactly where it stopped — the service layer's resumable timed-out
// pages are built on this. A budget abort is terminal: the cursor
// unpins its snapshot and SetContext does not revive it. A wave
// interrupted mid-fetch still waits for its in-flight per-shard jobs
// (they hold snapshot reads) before returning, so cancellation never
// leaks a fetch goroutine or an epoch pin.
//
// # Execution model
//
// Both stores are host-sharded (1 shard = the unsharded case). A hunt
// runs in two phases against one pinned epoch snapshot of the shards it
// touches — the relational shards its SQL patterns can reach, shard
// 0's entity table always (the broadcast entity set projection reads),
// and the graph shards only for path patterns. The snapshot is a set of
// append watermarks captured at ExecuteCursor, not held locks: all
// touched shards' watermarks are captured together so a cross-shard
// hunt reads one consistent cut, rows committed afterwards are
// invisible to the cursor, and writers never queue behind it — however
// long the cursor stays open.
//
// Fetch. Data queries run in scheduled order with constraint
// propagation; patterns not chained by a shared entity variable are
// grouped into waves, each pattern expands into one fetch per shard it
// must visit — every shard when unconstrained, a single shard when the
// pattern pins `host = '...'` (tbql.Analysis.PatternHosts) — and the
// jobs run concurrently on a small worker pool. Shard results merge in
// shard order before the join, so execution is deterministic for a
// given store. Propagated IN-lists larger than MaxPropagatedIDs are
// dropped and counted in Stats.PropagationsSkipped.
//
// Join. The fetched rows are joined by a streaming hash join
// (stream.go). Bindings are slot-based: tbql.Analyze assigns dense
// integer slots to entity variables and event patterns, so a partial
// binding is a pair of fixed-size slices mutated in place — no
// per-candidate map cloning. Each join level probes a hash index built
// on the entity sides it shares with already-bound patterns, and each
// temporal/attribute relation is checked exactly once, at the first
// level where its events are bound. The join is a pull-based
// depth-first iterator wired into Cursor.Next: row N+1 is produced
// without computing row N+2, so a paginated hunt (or any early
// termination) does page-sized work regardless of the total match
// count. Execute is a drain of the same streaming path; the legacy
// materializing nested-loop join survives behind Engine.UseNaiveJoin as
// the correctness baseline for the equivalence property tests.
package exec

import (
	"fmt"
	"strings"

	"repro/internal/graphstore"
	"repro/internal/relstore"
	"repro/internal/tbql"
)

// entityTypeName maps a TBQL entity type to the stored type tag / label.
func entityTypeName(t tbql.EntityType) string {
	switch t {
	case tbql.EntProc:
		return "process"
	case tbql.EntFile:
		return "file"
	default:
		return "netconn"
	}
}

// attrColumn maps a TBQL attribute to the storage column/property name.
// The schema uses the same names, so this is the identity today; it is a
// function so the mapping stays explicit.
func attrColumn(attr string) string { return attr }

// compileSQL renders an event pattern as a SQL query over the entities
// and events tables, mirroring the paper's compilation: the event table
// joined with the entity table twice (subject and object).
// extra holds propagated constraints appended to the WHERE clause.
func compileSQL(pat *tbql.EventPattern, extra []string) string {
	var where []string
	where = append(where, "s.type = 'process'")
	where = append(where, fmt.Sprintf("o.type = '%s'", entityTypeName(pat.Obj.Type)))
	where = append(where, opPredicateSQL(pat, "e"))
	if f := filterSQL(pat.Subj.Filter, "s"); f != "" {
		where = append(where, f)
	}
	if f := filterSQL(pat.Obj.Filter, "o"); f != "" {
		where = append(where, f)
	}
	if pat.Window != nil {
		where = append(where, fmt.Sprintf("e.starttime BETWEEN %d AND %d", pat.Window.From, pat.Window.To))
	}
	where = append(where, extra...)
	return "SELECT e.id, e.srcid, e.dstid, e.starttime, e.endtime, e.amount" +
		" FROM events e" +
		" JOIN entities s ON e.srcid = s.id" +
		" JOIN entities o ON e.dstid = o.id" +
		" WHERE " + strings.Join(where, " AND ")
}

// opPredicateSQL renders the operation constraint.
func opPredicateSQL(pat *tbql.EventPattern, alias string) string {
	var terms []string
	for _, op := range pat.Ops {
		terms = append(terms, fmt.Sprintf("%s.optype = '%s'", alias, op))
	}
	pred := strings.Join(terms, " OR ")
	if len(terms) > 1 {
		pred = "(" + pred + ")"
	}
	if pat.NegOps {
		pred = "NOT " + pred
	}
	return pred
}

// filterSQL renders a TBQL filter expression against a table alias.
func filterSQL(e tbql.Expr, alias string) string {
	switch x := e.(type) {
	case nil:
		return ""
	case tbql.AndExpr:
		return "(" + filterSQL(x.L, alias) + " AND " + filterSQL(x.R, alias) + ")"
	case tbql.OrExpr:
		return "(" + filterSQL(x.L, alias) + " OR " + filterSQL(x.R, alias) + ")"
	case tbql.NotExpr:
		return "NOT " + filterSQL(x.E, alias)
	case tbql.CmpExpr:
		col := alias + "." + attrColumn(x.Attr)
		if x.IsNum {
			return fmt.Sprintf("%s %s %d", col, sqlOp(x.Op), x.Num)
		}
		lit := relstore.TextValue(x.Str).SQL()
		if x.Op == "like" {
			return fmt.Sprintf("%s LIKE %s", col, lit)
		}
		return fmt.Sprintf("%s %s %s", col, sqlOp(x.Op), lit)
	default:
		return ""
	}
}

func sqlOp(op string) string {
	if op == "!=" {
		return "!="
	}
	return op
}

// DefaultMaxHops caps unbounded path patterns.
const DefaultMaxHops = 6

// compileCypher renders a variable-length path pattern as a Cypher query:
// a var-length prefix of any operation followed by a final hop constrained
// to the pattern's operation, which matches the paper's semantics ("the
// operation type of the final hop is read").
func compileCypher(pat *tbql.EventPattern, extra []string, maxHopCap int) string {
	winFrom, winTo := "", ""
	if pat.Window != nil {
		winFrom = fmt.Sprintf("%d", pat.Window.From)
		winTo = fmt.Sprintf("%d", pat.Window.To)
	}
	return compileCypherWin(pat, extra, maxHopCap, winFrom, winTo)
}

// compileCypherWin is compileCypher with the window bounds rendered as
// the given operand strings — literals for the text pipeline, `$k`
// placeholders for prepared plan templates, where the bounds are bound
// as scalar parameters at execution time.
func compileCypherWin(pat *tbql.EventPattern, extra []string, maxHopCap int, winFrom, winTo string) string {
	minHops := pat.MinHops
	if minHops < 1 {
		minHops = 1
	}
	maxHops := pat.MaxHops
	if maxHops == 0 {
		maxHops = maxHopCap
	}

	subjProps, subjWhere := filterCypher(pat.Subj.Filter, "s")
	objProps, objWhere := filterCypher(pat.Obj.Filter, "o")

	var b strings.Builder
	fmt.Fprintf(&b, "MATCH (s:process%s)-[:event*%d..%d]->(mid)-[last:event%s]->(o:%s%s)",
		subjProps, minHops-1, maxHops-1, lastHopProps(pat), entityTypeName(pat.Obj.Type), objProps)

	var where []string
	where = append(where, subjWhere...)
	where = append(where, objWhere...)
	if len(pat.Ops) > 1 || pat.NegOps {
		where = append(where, opPredicateCypher(pat))
	}
	if pat.Window != nil {
		where = append(where,
			"last.starttime >= "+winFrom,
			"last.starttime <= "+winTo)
	}
	where = append(where, extra...)
	if len(where) > 0 {
		b.WriteString(" WHERE " + strings.Join(where, " AND "))
	}
	b.WriteString(" RETURN s.id, o.id, last.eventid, last.starttime, last.endtime, last.amount")
	return b.String()
}

// lastHopProps inlines a single positive operation into the final hop's
// property map; disjunctions and negations go to WHERE.
func lastHopProps(pat *tbql.EventPattern) string {
	if len(pat.Ops) == 1 && !pat.NegOps {
		return fmt.Sprintf(" {optype: '%s'}", pat.Ops[0])
	}
	return ""
}

func opPredicateCypher(pat *tbql.EventPattern) string {
	var terms []string
	for _, op := range pat.Ops {
		terms = append(terms, fmt.Sprintf("last.optype = '%s'", op))
	}
	pred := strings.Join(terms, " OR ")
	if len(terms) > 1 {
		pred = "(" + pred + ")"
	}
	if pat.NegOps {
		pred = "NOT " + pred
	}
	return pred
}

// filterCypher splits a filter into an inline property map (for equality
// comparisons on the top-level AND spine, which the graph store can serve
// from its property indexes) and WHERE conditions for everything else.
func filterCypher(e tbql.Expr, alias string) (props string, where []string) {
	var eqs []string
	var rest []string
	var walk func(e tbql.Expr)
	walk = func(e tbql.Expr) {
		switch x := e.(type) {
		case nil:
		case tbql.AndExpr:
			walk(x.L)
			walk(x.R)
		case tbql.CmpExpr:
			if x.Op == "=" {
				if x.IsNum {
					eqs = append(eqs, fmt.Sprintf("%s: %d", attrColumn(x.Attr), x.Num))
				} else {
					eqs = append(eqs, fmt.Sprintf("%s: %s", attrColumn(x.Attr), graphstore.TextValue(x.Str).Cypher()))
				}
				return
			}
			rest = append(rest, cmpCypher(x, alias))
		default:
			if e != nil {
				rest = append(rest, exprCypher(e, alias))
			}
		}
	}
	walk(e)
	if len(eqs) > 0 {
		props = " {" + strings.Join(eqs, ", ") + "}"
	}
	return props, rest
}

// exprCypher renders a full boolean filter expression (no inlining).
func exprCypher(e tbql.Expr, alias string) string {
	switch x := e.(type) {
	case tbql.AndExpr:
		return "(" + exprCypher(x.L, alias) + " AND " + exprCypher(x.R, alias) + ")"
	case tbql.OrExpr:
		return "(" + exprCypher(x.L, alias) + " OR " + exprCypher(x.R, alias) + ")"
	case tbql.NotExpr:
		return "NOT (" + exprCypher(x.E, alias) + ")"
	case tbql.CmpExpr:
		return cmpCypher(x, alias)
	default:
		return "1 = 1"
	}
}

// cmpCypher renders one comparison: LIKE patterns translate to CONTAINS /
// STARTS WITH / ENDS WITH when possible, else to a regular expression.
func cmpCypher(x tbql.CmpExpr, alias string) string {
	col := alias + "." + attrColumn(x.Attr)
	if x.IsNum {
		op := x.Op
		if op == "!=" {
			op = "<>"
		}
		return fmt.Sprintf("%s %s %d", col, op, x.Num)
	}
	lit := graphstore.TextValue(x.Str).Cypher()
	switch x.Op {
	case "like":
		s := x.Str
		switch {
		case strings.HasPrefix(s, "%") && strings.HasSuffix(s, "%") && !strings.ContainsAny(trimPct(s), "%_"):
			return fmt.Sprintf("%s CONTAINS %s", col, graphstore.TextValue(trimPct(s)).Cypher())
		case strings.HasSuffix(s, "%") && !strings.ContainsAny(s[:len(s)-1], "%_"):
			return fmt.Sprintf("%s STARTS WITH %s", col, graphstore.TextValue(s[:len(s)-1]).Cypher())
		case strings.HasPrefix(s, "%") && !strings.ContainsAny(s[1:], "%_"):
			return fmt.Sprintf("%s ENDS WITH %s", col, graphstore.TextValue(s[1:]).Cypher())
		default:
			return fmt.Sprintf("%s =~ %s", col, graphstore.TextValue(likeToRegex(s)).Cypher())
		}
	case "=":
		return fmt.Sprintf("%s = %s", col, lit)
	case "!=":
		return fmt.Sprintf("%s <> %s", col, lit)
	default:
		return fmt.Sprintf("%s %s %s", col, x.Op, lit)
	}
}

func trimPct(s string) string { return strings.TrimSuffix(strings.TrimPrefix(s, "%"), "%") }

// likeToRegex converts a SQL LIKE pattern to an anchored regex body.
func likeToRegex(pattern string) string {
	var b strings.Builder
	for _, r := range pattern {
		switch r {
		case '%':
			b.WriteString(".*")
		case '_':
			b.WriteString(".")
		case '.', '+', '*', '?', '(', ')', '[', ']', '{', '}', '^', '$', '|', '\\':
			b.WriteByte('\\')
			b.WriteRune(r)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// PruningScore counts the constraints declared by a pattern: one per
// comparison leaf in the subject and object filters, one for the
// operation, two for a time window. For a variable-length path pattern
// the score additionally rewards a smaller maximum path length.
func PruningScore(pat *tbql.EventPattern, maxHopCap int) int {
	score := 10 * (1 + countLeaves(pat.Subj.Filter) + countLeaves(pat.Obj.Filter))
	if pat.Window != nil {
		score += 20
	}
	if pat.IsPath {
		maxHops := pat.MaxHops
		if maxHops == 0 {
			maxHops = maxHopCap
		}
		if maxHops > 20 {
			maxHops = 20
		}
		score += 20 - maxHops
	} else {
		score += 30
	}
	return score
}

func countLeaves(e tbql.Expr) int {
	switch x := e.(type) {
	case tbql.AndExpr:
		return countLeaves(x.L) + countLeaves(x.R)
	case tbql.OrExpr:
		return countLeaves(x.L) + countLeaves(x.R)
	case tbql.NotExpr:
		return countLeaves(x.E)
	case tbql.CmpExpr:
		return 1
	default:
		return 0
	}
}
