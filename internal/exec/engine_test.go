package exec

import (
	"strings"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/audit/gen"
	"repro/internal/graphstore"
	"repro/internal/relstore"
	"repro/internal/tbql"
)

// fig2TBQL is the paper's synthesized query for the data-leakage case.
const fig2TBQL = `proc p1["%/bin/tar%"] read file f1["%/etc/passwd%"] as evt1
proc p1 write file f2["%/tmp/upload.tar%"] as evt2
proc p2["%/bin/bzip2%"] read file f2 as evt3
proc p2 write file f3["%/tmp/upload.tar.bz2%"] as evt4
proc p3["%/usr/bin/gpg%"] read file f3 as evt5
proc p3 write file f4["%/tmp/upload%"] as evt6
proc p4["%/usr/bin/curl%"] read file f4 as evt7
proc p4 connect ip i1["192.168.29.128"] as evt8
with evt1 before evt2, evt2 before evt3, evt3 before evt4, evt4 before evt5, evt5 before evt6, evt6 before evt7, evt7 before evt8
return distinct p1, f1, f2, p2, f3, p3, f4, p4, i1`

// newEngine loads a generated workload into both backends (1 shard).
func newEngine(t testing.TB, cfg gen.Config) (*Engine, *gen.Workload) {
	t.Helper()
	en, ws := newShardedEngine(t, 1, cfg)
	return en, ws[0]
}

// newShardedEngine loads one or more generated workloads (typically one
// per host) through a single parser into sharded backends.
func newShardedEngine(t testing.TB, shards int, cfgs ...gen.Config) (*Engine, []*gen.Workload) {
	t.Helper()
	p := audit.NewParser()
	ws := make([]*gen.Workload, len(cfgs))
	for i, cfg := range cfgs {
		w := gen.Generate(cfg)
		for _, r := range w.Records {
			if _, err := p.Add(r); err != nil {
				t.Fatal(err)
			}
		}
		ws[i] = w
	}
	rel, err := relstore.NewSharded(shards)
	if err != nil {
		t.Fatal(err)
	}
	if err := rel.Load(p.Entities(), p.Events()); err != nil {
		t.Fatal(err)
	}
	g := graphstore.NewSharded(shards)
	if err := g.Load(p.Entities(), p.Events()); err != nil {
		t.Fatal(err)
	}
	return &Engine{Rel: rel, Graph: g}, ws
}

func leakageEngine(t testing.TB, benign int) *Engine {
	en, _ := newEngine(t, gen.Config{
		Seed:         42,
		BenignEvents: benign,
		Attacks:      []gen.Attack{{Kind: gen.AttackDataLeakage, At: 10 * time.Minute}},
	})
	return en
}

func TestExecuteFig2FindsAttack(t *testing.T) {
	en := leakageEngine(t, 2000)
	res, err := en.ExecuteTBQL(fig2TBQL)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("want exactly 1 result row, got %d\nqueries:\n%s",
			len(res.Rows), strings.Join(res.Stats.DataQueries, "\n"))
	}
	row := res.Rows[0]
	want := []string{"/bin/tar", "/etc/passwd", "/tmp/upload.tar", "/bin/bzip2",
		"/tmp/upload.tar.bz2", "/usr/bin/gpg", "/tmp/upload", "/usr/bin/curl", "192.168.29.128"}
	for i, w := range want {
		if row[i] != w {
			t.Errorf("col %d = %q, want %q", i, row[i], w)
		}
	}
	if len(res.Matches) != 1 {
		t.Errorf("matches = %d", len(res.Matches))
	}
}

func TestExecuteNoAttackNoMatch(t *testing.T) {
	en, _ := newEngine(t, gen.Config{Seed: 7, BenignEvents: 2000})
	res, err := en.ExecuteTBQL(fig2TBQL)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Errorf("benign-only workload matched the attack query: %v", res.Rows)
	}
	if !res.Stats.ShortCircuit {
		t.Error("expected short-circuit on empty pattern result")
	}
}

func TestExecuteTemporalOrderEnforced(t *testing.T) {
	en := leakageEngine(t, 0)
	// Reversed temporal constraint cannot match.
	q := `proc p1["%/bin/tar%"] read file f1["%/etc/passwd%"] as evt1
proc p1 write file f2["%/tmp/upload.tar%"] as evt2
with evt2 before evt1
return p1`
	res, err := en.ExecuteTBQL(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Errorf("impossible temporal order matched: %v", res.Rows)
	}
}

func TestExecuteSharedEntityJoin(t *testing.T) {
	en := leakageEngine(t, 1000)
	// f2 shared across evt2/evt3 must be the same file entity.
	q := `proc p1 write file f2["%/tmp/upload.tar%"] as evt2
proc p2["%/bin/bzip2%"] read file f2 as evt3
return distinct p1, p2, f2`
	res, err := en.ExecuteTBQL(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0] != "/bin/tar" || res.Rows[0][1] != "/bin/bzip2" {
		t.Errorf("row = %v", res.Rows[0])
	}
}

func TestExecutePathPattern(t *testing.T) {
	en := leakageEngine(t, 500)
	// apache2 reaches /etc/passwd through forked intermediates (fork bash,
	// fork tar, read passwd = 3 hops; the leakage chain also reaches it).
	q := `proc p["%/usr/sbin/apache2%"] ~>(1~4)[read] file f["%/etc/passwd%"] as e1
return distinct p, f`
	res, err := en.ExecuteTBQL(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("path pattern rows = %v\nqueries: %v", res.Rows, res.Stats.DataQueries)
	}
	if res.Rows[0][0] != "/usr/sbin/apache2" {
		t.Errorf("row = %v", res.Rows[0])
	}
	// The compiled data query must be Cypher, not SQL.
	if !strings.Contains(res.Stats.DataQueries[0], "MATCH") {
		t.Errorf("path pattern compiled to %q", res.Stats.DataQueries[0])
	}
}

func TestExecutePathPatternTooShort(t *testing.T) {
	en := leakageEngine(t, 0)
	q := `proc p["%/usr/sbin/apache2%"] ~>(1~1)[read] file f["%/etc/passwd%"] as e1
return p, f`
	res, err := en.ExecuteTBQL(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Errorf("1-hop bound should not reach: %v", res.Rows)
	}
}

func TestExecutePropagationReducesWork(t *testing.T) {
	en := leakageEngine(t, 3000)
	full, err := en.ExecuteTBQL(fig2TBQL)
	if err != nil {
		t.Fatal(err)
	}
	en.DisablePropagation = true
	en.DisableScheduling = true
	naive, err := en.ExecuteTBQL(fig2TBQL)
	if err != nil {
		t.Fatal(err)
	}
	en.DisablePropagation = false
	en.DisableScheduling = false
	if len(full.Rows) != len(naive.Rows) {
		t.Fatalf("scheduled and naive disagree: %d vs %d rows", len(full.Rows), len(naive.Rows))
	}
	if full.Stats.Propagations == 0 {
		t.Error("scheduled run should propagate constraints")
	}
	if full.Stats.RowsFetched > naive.Stats.RowsFetched {
		t.Errorf("propagation fetched more rows (%d) than naive (%d)",
			full.Stats.RowsFetched, naive.Stats.RowsFetched)
	}
}

func TestExecuteOpDisjunction(t *testing.T) {
	en := leakageEngine(t, 0)
	q := `proc p1["%/bin/tar%"] read || write file f as e1
return distinct f`
	res, err := en.ExecuteTBQL(q)
	if err != nil {
		t.Fatal(err)
	}
	// tar reads /etc/passwd and writes /tmp/upload.tar (attack), plus
	// benign backup is disabled (benign=0), so exactly 2 files.
	if len(res.Rows) != 2 {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestExecuteTimeWindow(t *testing.T) {
	en, w := newEngine(t, gen.Config{Seed: 5, Attacks: []gen.Attack{{Kind: gen.AttackDataLeakage}}})
	// Find the attack read time and query a window that excludes it.
	var readNS int64
	for _, st := range w.Truth {
		if st.Step == 1 {
			readNS = st.Record.StartNS
		}
	}
	q := `proc p1["%/bin/tar%"] read file f1["%/etc/passwd%"] as e1 from 0 to 1
return p1`
	res, err := en.ExecuteTBQL(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Errorf("window [0,1] should exclude the read at %d", readNS)
	}
	q2 := `proc p1["%/bin/tar%"] read file f1["%/etc/passwd%"] as e1 from 0 to 9223372036854775806
return p1`
	res, err = en.ExecuteTBQL(q2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Errorf("open window should include the read: %v", res.Rows)
	}
}

func TestExecuteAttrRel(t *testing.T) {
	en := leakageEngine(t, 500)
	// Explicit srcid equality instead of a shared entity ID.
	q := `proc p1["%/bin/tar%"] read file f1["%/etc/passwd%"] as evt1
proc p2 write file f2["%/tmp/upload.tar%"] as evt2
with evt1.srcid = evt2.srcid
return distinct p1, p2`
	res, err := en.ExecuteTBQL(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != "/bin/tar" || res.Rows[0][1] != "/bin/tar" {
		t.Errorf("attr rel rows = %v", res.Rows)
	}
}

func TestExecuteReturnExplicitAttr(t *testing.T) {
	en := leakageEngine(t, 0)
	q := `proc p1["%/bin/tar%"] read file f1["%/etc/passwd%"] as e1
return p1.pid, f1.name`
	res, err := en.ExecuteTBQL(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][1] != "/etc/passwd" {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0] == "" || res.Rows[0][0] == "0" {
		t.Errorf("pid not projected: %v", res.Rows[0])
	}
}

func TestExecuteErrors(t *testing.T) {
	en := leakageEngine(t, 0)
	if _, err := en.ExecuteTBQL("not a query"); err == nil {
		t.Error("garbage should fail")
	}
	enNoGraph := &Engine{Rel: en.Rel}
	if _, err := enNoGraph.ExecuteTBQL("proc p ~>[read] file f as e1\nreturn p"); err == nil {
		t.Error("path pattern without graph backend should fail")
	}
	enNoRel := &Engine{Graph: en.Graph}
	if _, err := enNoRel.ExecuteTBQL("proc p read file f as e1\nreturn p"); err == nil {
		t.Error("engine without relational backend should fail")
	}
}

func TestExecuteScheduledOrderByScore(t *testing.T) {
	en := leakageEngine(t, 500)
	// The IP pattern (exact match) must execute before the unfiltered
	// read pattern.
	q := `proc p4 read file f4 as evt7
proc p4 connect ip i1["192.168.29.128"] as evt8
with evt7 before evt8
return distinct p4`
	res, err := en.ExecuteTBQL(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats.DataQueries) != 2 {
		t.Fatalf("queries = %v", res.Stats.DataQueries)
	}
	if !strings.Contains(res.Stats.DataQueries[0], "connect") {
		t.Errorf("higher-score pattern should run first:\n%s", res.Stats.DataQueries[0])
	}
	// And the second query must carry a propagated constraint.
	if !strings.Contains(res.Stats.DataQueries[1], "IN (") {
		t.Errorf("propagation missing:\n%s", res.Stats.DataQueries[1])
	}
}

func TestPruningScore(t *testing.T) {
	q, err := tbql.Parse(fig2TBQL)
	if err != nil {
		t.Fatal(err)
	}
	// evt1 (two filters) must outscore evt2's successor evt3 pattern
	// (one filter on subject only at first use? evt3 has f2 unfiltered +
	// p2 filtered = 1 filter).
	s1 := PruningScore(&q.Patterns[0], DefaultMaxHops)
	s3 := PruningScore(&q.Patterns[2], DefaultMaxHops)
	if s1 <= s3 {
		t.Errorf("evt1 score %d should exceed evt3 score %d", s1, s3)
	}
	// Path pattern with smaller max outscores larger max.
	p1 := tbql.EventPattern{IsPath: true, MinHops: 1, MaxHops: 2, Ops: []string{"read"}}
	p2 := tbql.EventPattern{IsPath: true, MinHops: 1, MaxHops: 10, Ops: []string{"read"}}
	if PruningScore(&p1, DefaultMaxHops) <= PruningScore(&p2, DefaultMaxHops) {
		t.Error("smaller max path length should score higher")
	}
}

func TestCompileSQLShape(t *testing.T) {
	q, err := tbql.Parse(fig2TBQL)
	if err != nil {
		t.Fatal(err)
	}
	sql := compileSQL(&q.Patterns[0], nil)
	for _, want := range []string{
		"JOIN entities s ON e.srcid = s.id",
		"JOIN entities o ON e.dstid = o.id",
		"e.optype = 'read'",
		"s.exename LIKE '%/bin/tar%'",
		"o.name LIKE '%/etc/passwd%'",
	} {
		if !strings.Contains(sql, want) {
			t.Errorf("compiled SQL missing %q:\n%s", want, sql)
		}
	}
}

func TestCompileCypherShape(t *testing.T) {
	q, err := tbql.Parse("proc p[\"%/usr/sbin/apache2%\"] ~>(2~4)[read] file f[name = \"/etc/passwd\"] as e1\nreturn p, f")
	if err != nil {
		t.Fatal(err)
	}
	cq := compileCypher(&q.Patterns[0], nil, DefaultMaxHops)
	for _, want := range []string{
		"[:event*1..3]",
		"{optype: 'read'}",
		"{name: '/etc/passwd'}",
		"CONTAINS '/usr/sbin/apache2'",
		"RETURN s.id, o.id",
	} {
		if !strings.Contains(cq, want) {
			t.Errorf("compiled Cypher missing %q:\n%s", want, cq)
		}
	}
}

func TestLikeToRegex(t *testing.T) {
	cases := map[string]string{
		"%tar%": ".*tar.*",
		"a_c":   "a.c",
		"a.b":   `a\.b`,
		"100%":  "100.*",
	}
	for in, want := range cases {
		if got := likeToRegex(in); got != want {
			t.Errorf("likeToRegex(%q) = %q, want %q", in, got, want)
		}
	}
}
