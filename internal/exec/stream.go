package exec

import (
	"repro/internal/tbql"
)

// This file implements the streaming hash-join executor. The legacy
// nested-loop join (engine.go, behind Engine.UseNaiveJoin) materialized
// every match up front, cloned two maps per explored candidate, and
// re-scanned the full temporal/attribute relation list at every join
// level. The streaming executor replaces all three costs:
//
//   - Bindings are slot-based: tbql.Analyze assigns dense integer slots
//     to entity variables (first-use order) and event patterns (textual
//     order), so a partial binding is one []int64 and one []EventRow,
//     mutated in place during the depth-first walk. Zero per-candidate
//     allocation.
//   - Each join level probes a hash index built on the entity sides the
//     level shares with already-bound patterns, instead of scanning the
//     pattern's whole fetched row set per partial binding.
//   - Each temporal/attribute relation is compiled into a closure and
//     attached to the single join level at which its events first become
//     bound, so it is checked exactly once per candidate instead of
//     being re-derived from the whole relation list at every level.
//
// The executor is a pull-based iterator: matchStream.Next resumes the
// depth-first walk where the previous match left off, so the cursor can
// hand out row N+1 without computing row N+2 and a page-sized read does
// page-sized join work.

// joinLevel is one level of the join, in scheduled pattern order.
type joinLevel struct {
	patIdx   int // pattern index in Query.Patterns == event slot
	subjSlot int // entity slot of the subject variable
	objSlot  int // entity slot of the object variable
	// subjBound/objBound report whether the slot is already bound by an
	// earlier level when this level is entered.
	subjBound bool
	objBound  bool
	// checks are the relation predicates that become fully bound at this
	// level, compiled over the event-slot binding array.
	checks []relCheck
}

// relCheck evaluates one temporal or attribute relation against the
// current event bindings (indexed by event slot).
type relCheck func(events []EventRow) bool

// joinPlan is the compiled streaming join: levels in scheduled order
// plus the slot universe sizes.
type joinPlan struct {
	q      *tbql.Query
	levels []joinLevel
	nEnt   int
}

// planJoin compiles the join for an analyzed query and a scheduled
// pattern order: per-level bound-slot information and per-level relation
// check lists (each relation attached to the earliest level where all
// its events are bound).
func planJoin(q *tbql.Query, order []int) *joinPlan {
	info := q.Info()
	plan := &joinPlan{q: q, nEnt: info.NumEntitySlots()}

	schedPos := make(map[string]int, len(order))
	boundEnt := make([]bool, plan.nEnt)
	plan.levels = make([]joinLevel, len(order))
	for k, pi := range order {
		pat := &q.Patterns[pi]
		lv := joinLevel{
			patIdx:   pi,
			subjSlot: info.EntitySlot[pat.Subj.ID],
			objSlot:  info.EntitySlot[pat.Obj.ID],
		}
		lv.subjBound = boundEnt[lv.subjSlot]
		lv.objBound = boundEnt[lv.objSlot]
		boundEnt[lv.subjSlot] = true
		boundEnt[lv.objSlot] = true
		schedPos[pat.Name] = k
		plan.levels[k] = lv
	}

	for _, tr := range q.Temporal {
		pos := schedPos[tr.A]
		if p := schedPos[tr.B]; p > pos {
			pos = p
		}
		a, b := info.EventSlot[tr.A], info.EventSlot[tr.B]
		before := tr.Op == "before"
		lv := &plan.levels[pos]
		lv.checks = append(lv.checks, func(ev []EventRow) bool {
			if before {
				return ev[a].Start < ev[b].Start
			}
			return ev[a].Start > ev[b].Start
		})
	}
	for _, ar := range q.AttrRels {
		ar := ar
		pos := schedPos[ar.AEvt]
		aSlot := info.EventSlot[ar.AEvt]
		var check relCheck
		if ar.BIsLit {
			check = func(ev []EventRow) bool {
				return cmpInt(eventAttr(ev[aSlot], ar.AAttr), ar.Op, ar.BLit)
			}
		} else {
			if p := schedPos[ar.BEvt]; p > pos {
				pos = p
			}
			bSlot := info.EventSlot[ar.BEvt]
			check = func(ev []EventRow) bool {
				return cmpInt(eventAttr(ev[aSlot], ar.AAttr), ar.Op, eventAttr(ev[bSlot], ar.BAttr))
			}
		}
		lv := &plan.levels[pos]
		lv.checks = append(lv.checks, check)
	}
	return plan
}

// levelIndex is the hash index probed when entering a join level. The
// kind selects which entity sides key the index; candidate lists keep
// fetched-row order, so the streaming walk emits matches in exactly the
// order the legacy nested loop materialized them.
type levelIndex struct {
	kind byte // 'b' both sides bound, 's' subject, 'o' object, 'x' scan
	both map[[2]int64][]int32
	one  map[int64][]int32
	all  []int32
}

// buildIndex builds the hash index for one level over its fetched rows.
// Bucket lists are built in two passes — count, then fill — so every
// bucket is an exactly sized sub-slice of one shared backing array:
// building the index costs O(distinct keys) allocations instead of the
// O(keys · log bucket) repeated-growth appends of the naive build, which
// is where BenchmarkJoinFanout spent a chunk of its allocs/op.
func buildIndex(lv *joinLevel, rows []EventRow) levelIndex {
	switch {
	case lv.subjBound && lv.objBound:
		counts := make(map[[2]int64]int32, len(rows))
		for _, r := range rows {
			counts[[2]int64{r.SrcID, r.DstID}]++
		}
		ix := levelIndex{kind: 'b', both: make(map[[2]int64][]int32, len(counts))}
		backing := make([]int32, 0, len(rows))
		for i, r := range rows {
			k := [2]int64{r.SrcID, r.DstID}
			s, ok := ix.both[k]
			if !ok {
				// Claim the key's exactly sized region of the backing
				// array; appends below fill it without reallocating.
				n := len(backing)
				backing = backing[:n+int(counts[k])]
				s = backing[n : n : n+int(counts[k])]
			}
			ix.both[k] = append(s, int32(i))
		}
		return ix
	case lv.subjBound, lv.objBound:
		kind := byte('s')
		key := func(r *EventRow) int64 { return r.SrcID }
		if !lv.subjBound {
			kind = 'o'
			key = func(r *EventRow) int64 { return r.DstID }
		}
		counts := make(map[int64]int32, len(rows))
		for i := range rows {
			counts[key(&rows[i])]++
		}
		ix := levelIndex{kind: kind, one: make(map[int64][]int32, len(counts))}
		backing := make([]int32, 0, len(rows))
		for i := range rows {
			k := key(&rows[i])
			s, ok := ix.one[k]
			if !ok {
				n := len(backing)
				backing = backing[:n+int(counts[k])]
				s = backing[n : n : n+int(counts[k])]
			}
			ix.one[k] = append(s, int32(i))
		}
		return ix
	default:
		ix := levelIndex{kind: 'x', all: make([]int32, len(rows))}
		for i := range rows {
			ix.all[i] = int32(i)
		}
		return ix
	}
}

// matchStream is the lazy depth-first iterator over complete matches.
// Next suspends after each emitted match; events and entities then hold
// the match's bindings (by event slot and entity slot) until the next
// call. A matchStream is not safe for concurrent use.
type matchStream struct {
	plan *joinPlan
	rows [][]EventRow // fetched rows, by pattern index
	idx  []levelIndex // per level, parallel to plan.levels

	events   []EventRow // current bindings, by event slot (pattern index)
	entities []int64    // current bindings, by entity slot
	cands    [][]int32  // candidate list per level
	pos      []int      // next candidate position per level

	depth    int
	started  bool
	done     bool
	explored int // candidates examined (Stats.JoinCandidates)

	// stop, when set, is the lifecycle hook: it is polled at Next entry
	// and every joinCheckEvery candidates inside the walk. When it
	// returns true Next sets interrupted and returns false WITHOUT
	// touching the walk state (the poll happens before a candidate is
	// consumed), so a later Next — after the owner clears interrupted —
	// resumes exactly where the walk suspended.
	stop        func() bool
	interrupted bool
	sinceCheck  int
}

// newMatchStream prepares the iterator: hash indexes are built once per
// level (O(total fetched rows)); no join work happens until Next.
func newMatchStream(plan *joinPlan, rows [][]EventRow) *matchStream {
	s := &matchStream{
		plan:     plan,
		rows:     rows,
		idx:      make([]levelIndex, len(plan.levels)),
		events:   make([]EventRow, len(plan.q.Patterns)),
		entities: make([]int64, plan.nEnt),
		cands:    make([][]int32, len(plan.levels)),
		pos:      make([]int, len(plan.levels)),
	}
	for i := range plan.levels {
		s.idx[i] = buildIndex(&plan.levels[i], rows[plan.levels[i].patIdx])
	}
	if len(plan.levels) == 0 {
		s.done = true
	}
	return s
}

// enter computes the candidate list for a level by probing its index
// with the entity bindings established by earlier levels.
func (s *matchStream) enter(d int) {
	lv := &s.plan.levels[d]
	switch ix := &s.idx[d]; ix.kind {
	case 'b':
		s.cands[d] = ix.both[[2]int64{s.entities[lv.subjSlot], s.entities[lv.objSlot]}]
	case 's':
		s.cands[d] = ix.one[s.entities[lv.subjSlot]]
	case 'o':
		s.cands[d] = ix.one[s.entities[lv.objSlot]]
	default:
		s.cands[d] = ix.all
	}
	s.pos[d] = 0
}

// Next advances to the next complete match, resuming the depth-first
// walk from wherever the previous match suspended it. It returns false
// when the match space is exhausted.
func (s *matchStream) Next() bool {
	if s.done {
		return false
	}
	if s.stop != nil && s.stop() {
		s.interrupted = true
		return false
	}
	last := len(s.plan.levels) - 1
	if !s.started {
		s.started = true
		s.depth = 0
		s.enter(0)
	}
	for {
		lv := &s.plan.levels[s.depth]
		rows := s.rows[lv.patIdx]
		advanced := false
		for s.pos[s.depth] < len(s.cands[s.depth]) {
			if s.sinceCheck++; s.sinceCheck >= joinCheckEvery {
				s.sinceCheck = 0
				if s.stop != nil && s.stop() {
					s.interrupted = true
					return false
				}
			}
			rid := s.cands[s.depth][s.pos[s.depth]]
			s.pos[s.depth]++
			s.explored++
			r := rows[rid]
			// The index probe already enforced equality on every bound
			// entity side, so only relation checks remain.
			s.events[lv.patIdx] = r
			ok := true
			for _, check := range lv.checks {
				if !check(s.events) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			// Bind entity slots in subject-then-object order, matching the
			// legacy join's overwrite semantics when both sides share one
			// variable. Slots already bound hold the same value, so no
			// undo is needed when backtracking.
			s.entities[lv.subjSlot] = r.SrcID
			s.entities[lv.objSlot] = r.DstID
			if s.depth == last {
				return true
			}
			s.depth++
			s.enter(s.depth)
			advanced = true
			break
		}
		if advanced {
			continue
		}
		if s.depth == 0 {
			s.done = true
			return false
		}
		s.depth--
	}
}

// Explored reports how many candidate rows the walk has examined so far.
func (s *matchStream) Explored() int { return s.explored }

// match materializes the current bindings as a public Match (map-keyed,
// for Result.Matches compatibility).
func (s *matchStream) match() Match {
	q := s.plan.q
	info := q.Info()
	m := Match{
		Events:   make(map[string]EventRow, len(q.Patterns)),
		Entities: make(map[string]int64, s.plan.nEnt),
	}
	for i := range q.Patterns {
		m.Events[q.Patterns[i].Name] = s.events[i]
	}
	for id, slot := range info.EntitySlot {
		m.Entities[id] = s.entities[slot]
	}
	return m
}
