package exec

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/obs"
	"repro/internal/snapshot"
	"repro/internal/tbql"
)

// Cursor iterates over the projected rows of a hunt, in the style of
// database/sql: Next advances, Row or Scan reads the current row, Err
// reports iteration errors, and Close releases the cursor's resources.
// The join runs lazily inside the cursor (see stream.go), so Next
// computes row N+1 without computing row N+2 and a page-sized read of a
// huge hunt does page-sized join work.
//
// A cursor pins an epoch snapshot of every store shard its query
// touches, captured when it was created: append watermarks over the
// relational shards' tables (pruned by host constraints, plus shard 0's
// entity table for the projection attribute cache) and epoch marks over
// the touched graph shards. Both backends are append-only, so the
// snapshot is bookkeeping, not held locks — rows, edges, and entities
// committed after the capture are beyond the watermarks and invisible
// to the cursor, while writers proceed at full speed no matter how long
// the cursor stays open. Every page therefore observes the same ingest
// frontier: the one the epoch named. Close releases the snapshot
// references (and with them, eventually, the epoch registry entry a
// server-side cursor pinned); it is idempotent, and exhausting the rows
// or hitting an iteration error releases them too.
//
// A Cursor is not safe for concurrent use; each goroutine should run its
// own hunt.
type Cursor struct {
	query *tbql.Query
	en    *Engine
	cols  []string
	stats Stats
	epoch snapshot.Epoch

	// view is the pinned epoch snapshot; nil once released. Only the
	// entity-table view is read after creation (the lazy attribute-cache
	// snapshot on first Next); the fetched rows are already materialized.
	view *storeView

	// stream is the lazy hash-join iterator (default path).
	stream *matchStream
	// naive holds pre-materialized matches when the engine ran the
	// legacy nested-loop join (Engine.UseNaiveJoin); npos iterates it.
	naive []Match
	npos  int

	// projSlots maps each return item to its entity slot (stream path).
	projSlots []int
	attrs     *attrCache
	distinct  bool
	seen      map[string]bool

	// collectMatches makes Next record every match (pre-DISTINCT) in
	// matches, for Execute's Result.Matches.
	collectMatches bool
	matches        []Match

	// trace is the pipeline trace this hunt records into (nil when
	// tracing is disabled); firstRowTimed flips after the first Next so
	// only time-to-first-row is measured — per-row spans would dominate
	// the work they time.
	trace         *obs.Trace
	firstRowTimed bool

	// ctx is the hunt's lifecycle context (nil = never cancelled),
	// polled by the join at bounded intervals. interrupted marks a
	// context interrupt of the streaming join: the walk state and the
	// snapshot are intact, and SetContext clears it so the cursor
	// resumes exactly where it suspended — this is what keeps a
	// server-side cursor resumable after a page deadline fires.
	ctx         context.Context
	interrupted bool

	row    []string
	err    error
	closed bool
}

// ExecuteCursor runs an analyzed TBQL query and returns a cursor over
// the projected rows. The data-query (fetch) phase runs eagerly against
// a freshly captured epoch snapshot — so compile and backend errors
// surface here — but the join is lazy: match generation happens inside
// Next. The cursor keeps the snapshot pinned until it is closed or
// exhausted; because the snapshot is an append watermark, not a lock,
// holding it open costs writers nothing.
func (en *Engine) ExecuteCursor(q *tbql.Query) (*Cursor, error) {
	return en.executeCursor(nil, q, 0, nil)
}

// ExecuteCursorLimit is ExecuteCursor with a row-need bound: the caller
// promises it will read at most limit rows from the cursor (0 = no
// bound). When the query shape makes it safe (fetchCapSafe), the bound
// is pushed into the per-shard data queries as a fetch-side row cap, so
// a first-page hunt over a huge table fetches page-scaled rows instead
// of materializing the whole table. A capped cursor's Stats report
// FetchCapped; reading it past limit rows yields a truncated result,
// so callers must not page beyond their promise.
func (en *Engine) ExecuteCursorLimit(q *tbql.Query, limit int) (*Cursor, error) {
	return en.executeCursor(nil, q, limit, nil)
}

// ExecuteCursorTrace is ExecuteCursorLimit recording the pipeline
// stages into tr, so a caller that already traced earlier stages
// (parse, cache lookups) hands the same trace down and gets one
// contiguous span tree back from Cursor.Trace. A nil tr falls back to
// the engine's default (trace unless DisableTracing).
func (en *Engine) ExecuteCursorTrace(q *tbql.Query, limit int, tr *obs.Trace) (*Cursor, error) {
	return en.executeCursor(nil, q, limit, tr)
}

// ExecuteCursorCtx is ExecuteCursorTrace under a lifecycle context: the
// fetch waves poll ctx at every wave boundary and shard-job start, and
// the lazy join polls it at Next entry plus every joinCheckEvery
// candidates, so cancelling ctx aborts the hunt within a bounded amount
// of join work. A cancelled fetch surfaces ErrHuntCancelled (or
// ErrHuntDeadline) from this call; a cancellation mid-iteration makes
// Next return false with the same error in Err, leaving the cursor
// resumable via SetContext.
func (en *Engine) ExecuteCursorCtx(ctx context.Context, q *tbql.Query, limit int, tr *obs.Trace) (*Cursor, error) {
	return en.executeCursor(ctx, q, limit, tr)
}

// executeCursor is the shared hunt entry: snapshot, cost-based (or
// static) scheduling, fetch, and lazy-join cursor construction.
func (en *Engine) executeCursor(ctx context.Context, q *tbql.Query, limit int, tr *obs.Trace) (*Cursor, error) {
	if ctxDone(ctx) {
		return nil, huntErr(ctx)
	}
	if tr == nil && !en.DisableTracing {
		tr = obs.NewTrace()
	}
	if q.Info() == nil {
		sp := tr.Begin("analyze", -1)
		err := tbql.Analyze(q)
		tr.End(sp)
		if err != nil {
			return nil, err
		}
	}
	if en.Rel == nil {
		return nil, fmt.Errorf("exec: engine has no relational backend")
	}
	maxHops := en.MaxPathHops
	if maxHops == 0 {
		maxHops = DefaultMaxHops
	}
	maxProp := en.MaxPropagatedIDs
	if maxProp == 0 {
		maxProp = DefaultMaxPropagatedIDs
	}
	order := en.schedule(q, maxHops)

	// The shard plan prunes each pattern's fan-out to the shards its
	// host constraints allow, and its unions are the shards this
	// cursor's snapshot covers: all touched shards' watermarks are
	// captured together, so one hunt reads one consistent cut even when
	// it spans shards.
	snapSp := tr.Begin("snapshot", -1)
	patShards, relShards, graphShards := en.shardPlan(q)
	sv, err := en.snapshotStores(relShards, graphShards)
	tr.End(snapSp)
	if err != nil {
		return nil, err
	}

	c := &Cursor{
		query:    q,
		en:       en,
		cols:     returnCols(q),
		distinct: q.Distinct,
		epoch:    sv.epoch,
		view:     sv,
		trace:    tr,
		ctx:      ctx,
	}
	if c.distinct {
		c.seen = make(map[string]bool)
	}

	// Cost-based scheduling: estimate each pattern's cardinality at the
	// snapshot just pinned and re-derive the order so the most
	// selective pattern anchors the streaming join. The static
	// pruning-score order (already computed above) remains the fallback
	// whenever estimates are unavailable. Both pipelines — prepared and
	// text — get the cost order, so the prepared≡text equivalence holds
	// order and all.
	if !en.DisableCostOptimizer && !en.DisableScheduling {
		costSp := tr.Begin("cost_optimize", -1)
		if co, _, ok := en.costSchedule(q, patShards, sv, maxHops); ok {
			c.stats.CostBased = true
			for i := range co {
				if co[i] != order[i] {
					c.stats.Reordered = true
					break
				}
			}
			order = co
		}
		switch {
		case c.stats.Reordered:
			tr.EndNote(costSp, "reordered")
		case c.stats.CostBased:
			tr.EndNote(costSp, "cost")
		default:
			tr.EndNote(costSp, "static")
		}
	}

	// The schema fingerprint keys every plan lookup and flushes the
	// cross-hunt cache if the bootstrap schema changed under it.
	fp := en.schemaFingerprint()
	en.Plans.ensureSchema(fp)

	spec := fetchSpec{order: order, patShards: patShards,
		maxHops: maxHops, maxProp: maxProp, fp: fp, ctx: ctx}
	if limit > 0 && !en.DisableCostOptimizer && !en.UseTextCompile && fetchCapSafe(q) {
		spec.rowCap = limit
		c.stats.FetchCapped = true
	}

	spec.tr = tr
	spec.span = tr.Begin("fetch", -1)
	rows, err := en.fetchPatterns(q, sv, spec, &c.stats)
	tr.EndNote(spec.span, planCacheNote(tr, &c.stats))
	if err != nil {
		c.view = nil
		return nil, err
	}
	if c.stats.ShortCircuit {
		// Some pattern matched nothing: the cursor is empty and needs no
		// snapshot.
		c.view = nil
		return c, nil
	}

	info := q.Info()
	c.projSlots = make([]int, len(q.Return))
	for i, item := range q.Return {
		c.projSlots[i] = info.EntitySlot[item.ID]
	}

	if en.UseNaiveJoin {
		matches, explored, err := en.join(ctx, q, order, rows)
		c.stats.JoinCandidates = explored
		if err != nil {
			c.view = nil
			return nil, err
		}
		c.naive = matches
	} else {
		c.stream = newMatchStream(planJoin(q, order), rows)
		c.stream.stop = c.joinStop
	}
	return c, nil
}

// joinStop is the streaming join's lifecycle hook: suspend the walk
// when the hunt's context is done or the join budget is exhausted.
func (c *Cursor) joinStop() bool {
	if ctxDone(c.ctx) {
		return true
	}
	return c.en.MaxJoinRows > 0 && c.stream.explored >= c.en.MaxJoinRows
}

// SetContext installs ctx as the lifecycle context for subsequent Next
// calls and clears a pending context interrupt, resuming the suspended
// join walk exactly where the old context stopped it. This is how a
// server-side cursor survives a page deadline or disconnect: each page
// request installs its own context before paging. Terminal errors
// (budget overruns, backend failures) are not cleared — only context
// interrupts are resumable.
func (c *Cursor) SetContext(ctx context.Context) {
	c.ctx = ctx
	if c.interrupted {
		c.interrupted = false
		c.err = nil
	}
}

// planCacheNote renders the fetch span's plan-cache annotation without
// fmt; "" on a nil trace so untraced hunts build nothing.
func planCacheNote(tr *obs.Trace, st *Stats) string {
	if tr == nil {
		return ""
	}
	b := make([]byte, 0, 40)
	b = append(b, "plan_cache_hits="...)
	b = strconv.AppendInt(b, int64(st.PlanCacheHits), 10)
	b = append(b, " misses="...)
	b = strconv.AppendInt(b, int64(st.PlanCacheMisses), 10)
	return string(b)
}

// ExecuteTBQLCursor parses, analyzes, and executes TBQL source,
// returning a cursor over the projected rows.
func (en *Engine) ExecuteTBQLCursor(src string) (*Cursor, error) {
	q, err := tbql.Parse(src)
	if err != nil {
		return nil, err
	}
	return en.ExecuteCursor(q)
}

// ExecuteTBQLCursorLimit is ExecuteTBQLCursor with a row-need bound
// (see ExecuteCursorLimit).
func (en *Engine) ExecuteTBQLCursorLimit(src string, limit int) (*Cursor, error) {
	q, err := tbql.Parse(src)
	if err != nil {
		return nil, err
	}
	return en.ExecuteCursorLimit(q, limit)
}

// Columns returns the projected column names (entity.attr), valid before
// the first Next. The caller must not modify the returned slice.
func (c *Cursor) Columns() []string { return c.cols }

// Epoch returns the ingest epoch that was current when the cursor's
// snapshot was captured (0 when the engine has no Clock). It is a
// lower bound naming the snapshot for registry bookkeeping: the
// snapshot is guaranteed to include everything epochs <= Epoch()
// committed, and may additionally include rows of a commit that was
// completing concurrently with the capture. The snapshot boundary
// itself is the captured watermark vector — every page the cursor
// produces reflects exactly that one immutable cut.
func (c *Cursor) Epoch() snapshot.Epoch { return c.epoch }

// Stats reports how the underlying query executed. JoinCandidates
// reflects the join work done so far: it grows as a lazy cursor is
// drained. Stats.DataQueries is nil unless DataQueries has been called
// (or the cursor was drained through Engine.Execute): rendering the
// data-query text costs string building per pattern, so the hot hunt
// path never pays it.
func (c *Cursor) Stats() Stats {
	c.syncStats()
	return c.stats
}

// DataQueries renders the executed data queries as human-readable
// SQL/Cypher text, in scheduled order — lazily, memoized on first
// call. The text matches what the legacy text pipeline would execute
// for the same hunt, propagated IN-lists splatted in.
func (c *Cursor) DataQueries() []string {
	if c.stats.DataQueries == nil && len(c.stats.dq) > 0 {
		c.stats.DataQueries = c.en.renderDataQueries(c.query, c.stats.dq)
	}
	return c.stats.DataQueries
}

// syncStats folds the streaming join's progress into the stats snapshot.
func (c *Cursor) syncStats() {
	if c.stream != nil {
		c.stats.JoinCandidates = c.stream.Explored()
	}
}

// ensureAttrs lazily snapshots the entity attribute cache on the first
// projected row, bounded at the cursor's pinned entity watermark so the
// attributes and the fetched rows describe one consistent cut — even
// when ingest has interned new entities since the cursor was created.
func (c *Cursor) ensureAttrs() bool {
	if c.attrs != nil {
		return true
	}
	if c.view == nil {
		c.err = fmt.Errorf("exec: cursor snapshot already released")
		return false
	}
	attrs, err := c.en.entityAttrsAt(c.view.ent)
	if err != nil {
		c.err = err
		return false
	}
	c.attrs = attrs
	return true
}

// Next advances to the next projected row, applying DISTINCT
// deduplication incrementally. On the streaming path this resumes the
// depth-first join walk, doing only the work needed to surface one more
// row. It returns false when the rows are exhausted, an error occurred
// (see Err), or the cursor is closed; exhaustion and errors release the
// snapshot references.
//
// The first Next of a traced cursor is recorded as the "first_row"
// span — the lazy join's time-to-first-result. Later rows are not timed
// individually: a per-row span would cost more than the row.
func (c *Cursor) Next() bool {
	if c.trace == nil || c.firstRowTimed {
		return c.advance()
	}
	c.firstRowTimed = true
	sp := c.trace.Begin("first_row", -1)
	ok := c.advance()
	c.trace.End(sp)
	return ok
}

// Trace returns the pipeline trace this cursor's hunt recorded into,
// or nil when tracing was disabled.
func (c *Cursor) Trace() *obs.Trace { return c.trace }

func (c *Cursor) advance() bool {
	if c.closed || c.err != nil {
		return false
	}
	for {
		var m *Match
		switch {
		case c.stream != nil:
			if !c.stream.Next() {
				if c.stream.interrupted {
					c.stream.interrupted = false
					c.abortJoin()
					return false
				}
				c.finish()
				return false
			}
		case c.npos < len(c.naive):
			m = &c.naive[c.npos]
			c.npos++
		default:
			c.finish()
			return false
		}
		if !c.ensureAttrs() {
			c.finish()
			return false
		}
		var row []string
		if m == nil {
			row = make([]string, len(c.query.Return))
			for i, item := range c.query.Return {
				row[i] = c.attrs.get(c.stream.entities[c.projSlots[i]], item.Attr)
			}
			if c.collectMatches {
				c.matches = append(c.matches, c.stream.match())
			}
		} else {
			row = projectMatch(c.query, *m, c.attrs)
			if c.collectMatches {
				c.matches = append(c.matches, *m)
			}
		}
		if c.distinct {
			key := strings.Join(row, "\x00")
			if c.seen[key] {
				continue
			}
			c.seen[key] = true
		}
		c.row = row
		return true
	}
}

// finish ends iteration: clears the current row, fixes the stats
// snapshot, and drops the snapshot references.
func (c *Cursor) finish() {
	c.row = nil
	c.syncStats()
	c.view = nil
}

// abortJoin records why the streaming join suspended. A context
// interrupt is resumable — the walk state and snapshot stay intact for
// SetContext — while a budget overrun is terminal and releases the
// snapshot like finish.
func (c *Cursor) abortJoin() {
	c.row = nil
	c.syncStats()
	if ctxDone(c.ctx) {
		c.interrupted = true
		c.err = huntErr(c.ctx)
		return
	}
	c.err = c.en.joinBudgetErr(c.stats.JoinCandidates)
	c.view = nil
}

// Row returns the current projected row, or nil before the first Next,
// after exhaustion, or after Close. Each Next projects into a freshly
// allocated slice, so a returned row remains valid (and unaliased)
// across later Next and Close calls — this is a contract callers such
// as Engine.Execute rely on.
func (c *Cursor) Row() []string { return c.row }

// Scan copies the current row into dest in column order. Supported
// destination types: *string, *int64, *int, and *float64; numeric
// destinations parse the projected attribute text and fail on
// non-numeric values.
func (c *Cursor) Scan(dest ...any) error {
	if c.closed {
		return fmt.Errorf("exec: Scan on closed cursor")
	}
	if c.row == nil {
		return fmt.Errorf("exec: Scan called without a successful Next")
	}
	if len(dest) != len(c.row) {
		return fmt.Errorf("exec: Scan wants %d destinations, got %d", len(c.row), len(dest))
	}
	for i, d := range dest {
		v := c.row[i]
		switch p := d.(type) {
		case *string:
			*p = v
		case *int64:
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return fmt.Errorf("exec: Scan column %s: %q is not an integer", c.cols[i], v)
			}
			*p = n
		case *int:
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return fmt.Errorf("exec: Scan column %s: %q is not an integer", c.cols[i], v)
			}
			*p = int(n)
		case *float64:
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return fmt.Errorf("exec: Scan column %s: %q is not a number", c.cols[i], v)
			}
			*p = f
		default:
			return fmt.Errorf("exec: Scan column %s: unsupported destination type %T", c.cols[i], d)
		}
	}
	return nil
}

// Err reports any error encountered during iteration. It is distinct
// from Scan errors, which are returned directly. Err survives Close, so
// a caller that pages then closes can still distinguish a truncated
// stream from a completed one.
func (c *Cursor) Err() error { return c.err }

// Close releases the cursor's resources: the remaining match state and
// the snapshot references (the epoch views). Writers were never blocked
// by the open cursor — snapshots are watermarks, not locks — so a
// forgotten Close leaks memory (the pinned views keep their row
// prefixes reachable), not throughput. Close is idempotent; Next
// returns false and Scan fails after Close.
func (c *Cursor) Close() error {
	if !c.closed {
		c.syncStats()
		c.closed = true
	}
	c.row = nil
	c.stream = nil
	c.naive = nil
	c.seen = nil
	c.view = nil
	return nil
}
