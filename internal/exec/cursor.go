package exec

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/tbql"
)

// Cursor iterates over the projected rows of a hunt, in the style of
// database/sql: Next advances, Row or Scan reads the current row, Err
// reports iteration errors, and Close releases the match set. Rows are
// projected one at a time, so callers can page through large match sets
// without the engine materializing Result.Rows up front.
//
// A Cursor is not safe for concurrent use; each goroutine should run its
// own hunt.
type Cursor struct {
	query    *tbql.Query
	attrs    *attrCache
	matches  []Match
	cols     []string
	stats    Stats
	distinct bool
	seen     map[string]bool

	pos    int
	row    []string
	err    error
	closed bool
}

// ExecuteCursor runs an analyzed TBQL query and returns a cursor over
// the projected rows instead of a materialized Result.
func (en *Engine) ExecuteCursor(q *tbql.Query) (*Cursor, error) {
	res, err := en.collect(q)
	if err != nil {
		return nil, err
	}
	c := &Cursor{
		query:    q,
		matches:  res.Matches,
		cols:     res.Cols,
		stats:    res.Stats,
		distinct: q.Distinct,
	}
	if len(res.Matches) > 0 {
		if c.attrs, err = en.entityAttrs(); err != nil {
			return nil, err
		}
	}
	if c.distinct {
		c.seen = make(map[string]bool)
	}
	return c, nil
}

// ExecuteTBQLCursor parses, analyzes, and executes TBQL source,
// returning a cursor over the projected rows.
func (en *Engine) ExecuteTBQLCursor(src string) (*Cursor, error) {
	q, err := tbql.Parse(src)
	if err != nil {
		return nil, err
	}
	return en.ExecuteCursor(q)
}

// Columns returns the projected column names (entity.attr), valid before
// the first Next. The caller must not modify the returned slice.
func (c *Cursor) Columns() []string { return c.cols }

// Stats reports how the underlying query executed.
func (c *Cursor) Stats() Stats { return c.stats }

// Next advances to the next projected row, applying DISTINCT
// deduplication incrementally. It returns false when the rows are
// exhausted or the cursor is closed.
func (c *Cursor) Next() bool {
	if c.closed || c.err != nil {
		return false
	}
	for c.pos < len(c.matches) {
		m := c.matches[c.pos]
		c.pos++
		row := projectMatch(c.query, m, c.attrs)
		if c.distinct {
			key := strings.Join(row, "\x00")
			if c.seen[key] {
				continue
			}
			c.seen[key] = true
		}
		c.row = row
		return true
	}
	c.row = nil
	return false
}

// Row returns the current projected row, or nil before the first Next,
// after exhaustion, or after Close. Each Next projects into a freshly
// allocated slice, so a returned row remains valid (and unaliased)
// across later Next and Close calls — this is a contract callers such
// as Engine.Execute rely on.
func (c *Cursor) Row() []string { return c.row }

// Scan copies the current row into dest in column order. Supported
// destination types: *string, *int64, *int, and *float64; numeric
// destinations parse the projected attribute text and fail on
// non-numeric values.
func (c *Cursor) Scan(dest ...any) error {
	if c.closed {
		return fmt.Errorf("exec: Scan on closed cursor")
	}
	if c.row == nil {
		return fmt.Errorf("exec: Scan called without a successful Next")
	}
	if len(dest) != len(c.row) {
		return fmt.Errorf("exec: Scan wants %d destinations, got %d", len(c.row), len(dest))
	}
	for i, d := range dest {
		v := c.row[i]
		switch p := d.(type) {
		case *string:
			*p = v
		case *int64:
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return fmt.Errorf("exec: Scan column %s: %q is not an integer", c.cols[i], v)
			}
			*p = n
		case *int:
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return fmt.Errorf("exec: Scan column %s: %q is not an integer", c.cols[i], v)
			}
			*p = int(n)
		case *float64:
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return fmt.Errorf("exec: Scan column %s: %q is not a number", c.cols[i], v)
			}
			*p = f
		default:
			return fmt.Errorf("exec: Scan column %s: unsupported destination type %T", c.cols[i], d)
		}
	}
	return nil
}

// Err reports any error encountered during iteration. It is distinct
// from Scan errors, which are returned directly.
func (c *Cursor) Err() error { return c.err }

// Close releases the cursor's match set. It is idempotent; Next returns
// false and Scan fails after Close.
func (c *Cursor) Close() error {
	c.closed = true
	c.row = nil
	c.matches = nil
	c.seen = nil
	return nil
}
