package exec

import (
	"context"
	"errors"
	"fmt"
)

// Typed lifecycle errors. Every abort surfaced by the hunt pipeline wraps
// one of these, so callers (the HTTP service, the facade watch pump) can
// classify with errors.Is and map to 504/422/429-style responses without
// string matching.
var (
	// ErrHuntCancelled reports that the hunt's context was cancelled —
	// by a client disconnect, an operator kill, or Close on the owning
	// watch. The wrapped message carries context.Cause when one was set.
	ErrHuntCancelled = errors.New("exec: hunt cancelled")

	// ErrHuntDeadline reports that the hunt's context deadline expired
	// (-hunt-timeout at the daemon, or any caller-supplied deadline).
	ErrHuntDeadline = errors.New("exec: hunt deadline exceeded")

	// ErrJoinBudget reports that the join examined more candidate rows
	// than Engine.MaxJoinRows allows. Budget aborts are terminal: the
	// cursor releases its snapshot and cannot be resumed.
	ErrJoinBudget = errors.New("exec: join budget exceeded")
)

// joinCheckEvery is how many join candidates may be examined between
// context polls. It bounds cancellation latency inside a join level to
// ~a microsecond of work while keeping the poll off the per-row path.
const joinCheckEvery = 1024

// huntErr converts a done context into the matching typed error,
// carrying the cancellation cause (e.g. "hunt killed via DELETE
// /debug/hunts") when one was recorded.
func huntErr(ctx context.Context) error {
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		return ErrHuntDeadline
	}
	if cause := context.Cause(ctx); cause != nil && !errors.Is(cause, context.Canceled) {
		return fmt.Errorf("%w: %v", ErrHuntCancelled, cause)
	}
	return ErrHuntCancelled
}

// ctxDone reports whether a (possibly nil) hunt context has been
// cancelled or timed out.
func ctxDone(ctx context.Context) bool {
	return ctx != nil && ctx.Err() != nil
}
