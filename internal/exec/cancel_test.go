package exec

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/tbql"
)

// crossTBQL joins two unconstrained patterns with no shared entity
// variable: the match space is the cross product of every read and
// every write event, so iterating it does row-count² join work — the
// shape cancellation and budget tests need to observe an interrupt
// mid-walk.
const crossTBQL = `proc p1 read file f1 as evt1
proc p2 write file f2 as evt2
return p1, f1, p2, f2`

func parseTBQL(t *testing.T, src string) *tbql.Query {
	t.Helper()
	q, err := tbql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// drainRows collects every remaining row of the cursor.
func drainRows(t *testing.T, c *Cursor) [][]string {
	t.Helper()
	var rows [][]string
	for c.Next() {
		rows = append(rows, c.Row())
	}
	if err := c.Err(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	return rows
}

func TestExecuteCursorPreCancelled(t *testing.T) {
	en := leakageEngine(t, 200)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := en.ExecuteCursorCtx(ctx, parseTBQL(t, crossTBQL), 0, nil)
	if !errors.Is(err, ErrHuntCancelled) {
		t.Fatalf("err = %v, want ErrHuntCancelled", err)
	}
}

func TestExecuteCursorExpiredDeadline(t *testing.T) {
	en := leakageEngine(t, 200)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Hour))
	defer cancel()
	_, err := en.ExecuteCursorCtx(ctx, parseTBQL(t, crossTBQL), 0, nil)
	if !errors.Is(err, ErrHuntDeadline) {
		t.Fatalf("err = %v, want ErrHuntDeadline", err)
	}
	if errors.Is(err, ErrHuntCancelled) {
		t.Fatalf("deadline error must not also read as plain cancellation: %v", err)
	}
}

// TestCursorCancelMidIterationResumes is the resumability contract: a
// context interrupt suspends the streaming join with its walk state
// intact, and SetContext resumes it exactly where it stopped — the
// interrupted run's rows concatenate to the uninterrupted run's rows.
func TestCursorCancelMidIterationResumes(t *testing.T) {
	en := leakageEngine(t, 200)

	// Reference: the full row set without interruption.
	ref, err := en.ExecuteCursor(parseTBQL(t, crossTBQL))
	if err != nil {
		t.Fatal(err)
	}
	want := drainRows(t, ref)
	if len(want) < 20 {
		t.Fatalf("fixture too small: %d rows", len(want))
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cur, err := en.ExecuteCursorCtx(ctx, parseTBQL(t, crossTBQL), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	var got [][]string
	for i := 0; i < 10; i++ {
		if !cur.Next() {
			t.Fatalf("cursor died at row %d: %v", i, cur.Err())
		}
		got = append(got, cur.Row())
	}
	cancel()
	if cur.Next() {
		t.Fatal("Next succeeded after cancellation")
	}
	if err := cur.Err(); !errors.Is(err, ErrHuntCancelled) {
		t.Fatalf("Err = %v, want ErrHuntCancelled", err)
	}
	if cur.Row() != nil {
		t.Error("Row non-nil after interrupt")
	}
	// A second Next on the dead context stays interrupted, not corrupted.
	if cur.Next() {
		t.Fatal("Next succeeded twice after cancellation")
	}

	cur.SetContext(context.Background())
	if err := cur.Err(); err != nil {
		t.Fatalf("Err after SetContext = %v, want nil", err)
	}
	got = append(got, drainRows(t, cur)...)

	if len(got) != len(want) {
		t.Fatalf("resumed run produced %d rows, uninterrupted run %d", len(got), len(want))
	}
	for i := range want {
		if strings.Join(got[i], "\x00") != strings.Join(want[i], "\x00") {
			t.Fatalf("row %d diverged after resume: %v != %v", i, got[i], want[i])
		}
	}
}

// TestCursorJoinBudget exhausts -max-join-rows mid-iteration: the abort
// is terminal (not resumable), names the budget, and releases the
// snapshot.
func TestCursorJoinBudget(t *testing.T) {
	en := leakageEngine(t, 200)
	en.MaxJoinRows = 1
	cur, err := en.ExecuteCursor(parseTBQL(t, crossTBQL))
	if err != nil {
		t.Fatal(err)
	}
	for cur.Next() {
	}
	err = cur.Err()
	if !errors.Is(err, ErrJoinBudget) {
		t.Fatalf("Err = %v, want ErrJoinBudget", err)
	}
	if !strings.Contains(err.Error(), "max-join-rows") {
		t.Errorf("budget error %q does not name the flag", err)
	}
	// Terminal: installing a fresh context must not clear the error.
	cur.SetContext(context.Background())
	if cur.Next() {
		t.Fatal("budget-aborted cursor resumed")
	}
	if !errors.Is(cur.Err(), ErrJoinBudget) {
		t.Fatalf("Err after SetContext = %v, want ErrJoinBudget", cur.Err())
	}
}

func TestNaiveJoinBudget(t *testing.T) {
	en := leakageEngine(t, 200)
	en.UseNaiveJoin = true
	en.MaxJoinRows = 1
	_, err := en.ExecuteCursor(parseTBQL(t, crossTBQL))
	if !errors.Is(err, ErrJoinBudget) {
		t.Fatalf("err = %v, want ErrJoinBudget", err)
	}
}

func TestNaiveJoinPreCancelled(t *testing.T) {
	en := leakageEngine(t, 200)
	en.UseNaiveJoin = true
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := en.ExecuteCursorCtx(ctx, parseTBQL(t, crossTBQL), 0, nil)
	if !errors.Is(err, ErrHuntCancelled) {
		t.Fatalf("err = %v, want ErrHuntCancelled", err)
	}
}

func TestExplainTraceCtxCancelled(t *testing.T) {
	en := leakageEngine(t, 0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := en.ExplainTraceCtx(ctx, parseTBQL(t, crossTBQL), nil)
	if !errors.Is(err, ErrHuntCancelled) {
		t.Fatalf("err = %v, want ErrHuntCancelled", err)
	}
}

func TestAdvanceContextPreCancelled(t *testing.T) {
	en := leakageEngine(t, 200)
	h, err := en.NewStandingHunt(parseTBQL(t, crossTBQL))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := h.AdvanceContext(ctx); !errors.Is(err, ErrHuntCancelled) {
		t.Fatalf("AdvanceContext err = %v, want ErrHuntCancelled", err)
	}
	// The hunt is still advanceable under a live context.
	if _, err := h.Advance(); err != nil {
		t.Fatalf("Advance after cancelled AdvanceContext: %v", err)
	}
}

// TestCancelErrorTexts pins the typed errors' identities: service-layer
// status mapping depends on errors.Is against all three.
func TestCancelErrorTexts(t *testing.T) {
	if errors.Is(ErrHuntDeadline, ErrHuntCancelled) || errors.Is(ErrJoinBudget, ErrHuntCancelled) {
		t.Fatal("lifecycle errors must be distinct")
	}
	ctx, cancel := context.WithCancelCause(context.Background())
	cause := errors.New("operator kill")
	cancel(cause)
	err := huntErr(ctx)
	if !errors.Is(err, ErrHuntCancelled) {
		t.Fatalf("huntErr = %v, want ErrHuntCancelled", err)
	}
	if !strings.Contains(err.Error(), "operator kill") {
		t.Errorf("huntErr %q dropped the cancellation cause", err)
	}
}
