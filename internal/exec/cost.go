package exec

import (
	"repro/internal/relstore"
	"repro/internal/tbql"
)

// Cost-based hunt optimization.
//
// The static scheduler (PruningScore) orders patterns by how many
// constraints they *declare* — a syntactic proxy for selectivity that
// cannot see the data. On skewed stores it anchors the streaming join
// on the wrong pattern: a filter-heavy pattern over a hot host fetches
// (and hashes) orders of magnitude more rows than a bare pattern on a
// rare operation type. The cost-based scheduler replaces the proxy
// with per-pattern cardinality *estimates* computed from the
// ingest-time statistics both stores maintain (relstore/stats.go,
// graphstore/stats.go), evaluated at the cursor's pinned epoch
// snapshot so the estimate describes exactly the cut of the data the
// hunt will read.
//
// Estimation model, per pattern and per shard the pattern visits:
//
//	rows ≈ |events with the pattern's operation type at the watermark|
//	       × window overlap fraction (event-time range tracker)
//	       × subject filter selectivity × object filter selectivity
//
// Operation-type counts are exact (hash-index bucket prefix cuts);
// filter selectivities come from entity-table per-value counts where
// tracked, with textbook heuristic constants for untracked columns and
// non-equality operators. A host equality filter is answered from the
// *event* table's per-host tracker — the one place per-host skew is
// visible — rather than the broadcast entity table. Path patterns use
// the graph's edge-operation sketches with a branching-factor
// expansion for the variable-length prefix.
//
// Estimates are all-or-nothing: if any pattern cannot be estimated
// (stats disabled on a backend the hunt touches), the hunt falls back
// to the static pruning-score order, as it does under
// Engine.DisableCostOptimizer.

// Heuristic selectivities for predicates the trackers cannot answer,
// the classic System-R style constants.
const (
	selEqUntracked = 0.05 // equality on an untracked column
	selLike        = 0.25 // LIKE / wildcard match
	selRange       = 0.30 // < <= > >= on any column
	selNotEq       = 0.90 // !=
)

// estCap bounds a single estimate so branching-factor expansion of
// deep path patterns cannot overflow into Inf and poison comparisons.
const estCap = 1e18

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// costSchedule orders pattern indexes by estimated cardinality at the
// pinned snapshot: the globally most selective pattern anchors the
// streaming join, and every subsequent pick prefers patterns connected
// to the already-chosen set by a shared entity variable (so
// propagation keeps chaining) before falling back to the global
// minimum. Ties break toward the higher static pruning score and then
// textual order, which makes the cost order degenerate to exactly the
// static order on an empty store. Returns ok=false when any pattern
// lacks the stats to estimate; the caller then keeps the static order.
// ests is indexed by pattern index (not scheduled position).
func (en *Engine) costSchedule(q *tbql.Query, patShards [][]int, sv *storeView, maxHops int) (order []int, ests []float64, ok bool) {
	ests, ok = en.costEstimates(q, patShards, sv, maxHops)
	if !ok {
		return nil, nil, false
	}
	n := len(q.Patterns)
	order = make([]int, 0, n)
	used := make([]bool, n)
	inSet := map[string]bool{}
	better := func(a, b int) bool {
		if ests[a] != ests[b] {
			return ests[a] < ests[b]
		}
		sa := PruningScore(&q.Patterns[a], maxHops)
		sb := PruningScore(&q.Patterns[b], maxHops)
		if sa != sb {
			return sa > sb
		}
		return a < b
	}
	for len(order) < n {
		best, bestConn := -1, false
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			conn := len(order) > 0 && !en.DisablePropagation &&
				(inSet[q.Patterns[i].Subj.ID] || inSet[q.Patterns[i].Obj.ID])
			switch {
			case best < 0:
				best, bestConn = i, conn
			case conn && !bestConn:
				best, bestConn = i, conn
			case conn == bestConn && better(i, best):
				best = i
			}
		}
		used[best] = true
		order = append(order, best)
		inSet[q.Patterns[best].Subj.ID] = true
		inSet[q.Patterns[best].Obj.ID] = true
	}
	return order, ests, true
}

// costEstimates computes every pattern's estimated row count at the
// snapshot, summed across the shards its host constraints let it
// visit. ok=false when any pattern cannot be estimated.
func (en *Engine) costEstimates(q *tbql.Query, patShards [][]int, sv *storeView, maxHops int) ([]float64, bool) {
	ests := make([]float64, len(q.Patterns))
	for i := range q.Patterns {
		pat := &q.Patterns[i]
		var est float64
		var ok bool
		if pat.IsPath {
			est, ok = en.estimatePath(pat, patShards[i], sv, maxHops)
		} else {
			est, ok = en.estimateSQL(pat, patShards[i], sv)
		}
		if !ok {
			return nil, false
		}
		ests[i] = est
	}
	return ests, true
}

// estimateSQL estimates one relational pattern's fetched-row count.
func (en *Engine) estimateSQL(pat *tbql.EventPattern, shards []int, sv *storeView) (float64, bool) {
	total := 0.0
	for _, s := range shards {
		v := sv.rel[s]
		if v == nil {
			return 0, false
		}
		evts := v.Table(relstore.EventTable)
		if evts == nil {
			return 0, false
		}
		w := evts.NumRows()
		if w == 0 {
			continue
		}
		base, ok := opCountSQL(evts, pat, w)
		if !ok {
			return 0, false
		}
		est := float64(base)
		if pat.Window != nil {
			est *= windowSel(evts, pat.Window)
		}
		ssel, ok := entitySel(pat.Subj, sv.ent, evts)
		if !ok {
			return 0, false
		}
		osel, ok := entitySel(pat.Obj, sv.ent, evts)
		if !ok {
			return 0, false
		}
		est *= ssel * osel
		total += est
	}
	if total > estCap {
		total = estCap
	}
	return total, true
}

// opCountSQL counts the events matching the pattern's operation
// predicate among the first w rows — exact, via the optype hash index.
func opCountSQL(evts *relstore.TableView, pat *tbql.EventPattern, w int) (int, bool) {
	sum := 0
	for _, op := range pat.Ops {
		c, ok := evts.CountEq("optype", relstore.TextValue(op))
		if !ok {
			return 0, false
		}
		sum += c
	}
	if pat.NegOps {
		sum = w - sum
	}
	if sum < 0 {
		sum = 0
	}
	if sum > w {
		sum = w
	}
	return sum, true
}

// windowSel estimates the fraction of events inside the pattern's time
// window from the event table's tracked start-time range; 1 when no
// range checkpoint is available (conservative: the window filters
// nothing).
func windowSel(evts *relstore.TableView, win *tbql.TimeWindow) float64 {
	lo, hi, ok := evts.Range("starttime")
	if !ok || hi <= lo {
		return 1
	}
	from, to := win.From, win.To
	if from < lo {
		from = lo
	}
	if to > hi {
		to = hi
	}
	if to < from {
		return 0
	}
	return clamp01(float64(to-from+1) / float64(hi-lo+1))
}

// entitySel estimates the fraction of candidate events an entity
// reference's filter keeps: equality selectivities come from the
// broadcast entity table's per-value counts relative to the entity
// type's population, except host equality, which reads the event
// table's per-host tracker (evts; nil for graph patterns) because
// entity rows are broadcast and cannot see per-host event skew.
func entitySel(ref tbql.EntityRef, ent *relstore.TableView, evts *relstore.TableView) (float64, bool) {
	if ref.Filter == nil {
		return 1, true
	}
	nType, ok := ent.CountEq("type", relstore.TextValue(entityTypeName(ref.Type)))
	if !ok {
		return 0, false
	}
	return filterSel(ref.Filter, ref.Type, nType, ent, evts)
}

// filterSel walks a TBQL filter expression: AND multiplies, OR adds
// (capped), NOT complements, and comparison leaves read the trackers
// or fall back to the heuristic constants.
func filterSel(e tbql.Expr, et tbql.EntityType, nType int, ent, evts *relstore.TableView) (float64, bool) {
	switch x := e.(type) {
	case nil:
		return 1, true
	case tbql.AndExpr:
		a, ok := filterSel(x.L, et, nType, ent, evts)
		if !ok {
			return 0, false
		}
		b, ok := filterSel(x.R, et, nType, ent, evts)
		if !ok {
			return 0, false
		}
		return a * b, true
	case tbql.OrExpr:
		a, ok := filterSel(x.L, et, nType, ent, evts)
		if !ok {
			return 0, false
		}
		b, ok := filterSel(x.R, et, nType, ent, evts)
		if !ok {
			return 0, false
		}
		return clamp01(a + b), true
	case tbql.NotExpr:
		s, ok := filterSel(x.E, et, nType, ent, evts)
		if !ok {
			return 0, false
		}
		return clamp01(1 - s), true
	case tbql.CmpExpr:
		return cmpSel(x, et, nType, ent, evts), true
	default:
		return 1, true
	}
}

// cmpSel estimates one comparison leaf's selectivity.
func cmpSel(x tbql.CmpExpr, et tbql.EntityType, nType int, ent, evts *relstore.TableView) float64 {
	attr := x.Attr
	if attr == "" {
		attr = et.DefaultAttr()
	}
	switch x.Op {
	case "=":
		if !x.IsNum && attr == "host" && evts != nil {
			// Per-host event skew lives in the event table's tracker.
			if w := evts.NumRows(); w > 0 {
				if c, ok := evts.CountEq("host", relstore.TextValue(x.Str)); ok {
					return clamp01(float64(c) / float64(w))
				}
			}
		}
		var v relstore.Value
		if x.IsNum {
			v = relstore.IntValue(x.Num)
		} else {
			v = relstore.TextValue(x.Str)
		}
		if c, ok := ent.CountEq(attr, v); ok {
			if nType <= 0 {
				return 0
			}
			return clamp01(float64(c) / float64(nType))
		}
		return selEqUntracked
	case "like":
		return selLike
	case "!=":
		return selNotEq
	case "<", "<=", ">", ">=":
		return selRange
	default:
		return 1
	}
}

// estimatePath estimates one path pattern's fetched-row count from the
// graph's edge sketches: the final hop's operation-type count expanded
// by the average branching factor for each variable-length prefix hop.
func (en *Engine) estimatePath(pat *tbql.EventPattern, shards []int, sv *storeView, maxHops int) (float64, bool) {
	if en.Graph == nil {
		return 0, false
	}
	total := 0.0
	for _, s := range shards {
		g := en.Graph.Shard(s)
		mark := sv.graph[s]
		edges, ok := g.EdgesAt(mark)
		if !ok {
			return 0, false
		}
		if edges == 0 {
			continue
		}
		sum := 0
		for _, op := range pat.Ops {
			c, ok := g.EdgeOpCountAt(op, mark)
			if !ok {
				return 0, false
			}
			sum += c
		}
		if pat.NegOps {
			sum = edges - sum
		}
		if sum < 0 {
			sum = 0
		}
		est := float64(sum)
		if pat.Window != nil {
			if lo, hi, ok := g.TimeRangeAt(mark); ok && hi > lo {
				from, to := pat.Window.From, pat.Window.To
				if from < lo {
					from = lo
				}
				if to > hi {
					to = hi
				}
				if to < from {
					est = 0
				} else {
					est *= clamp01(float64(to-from+1) / float64(hi-lo+1))
				}
			}
		}
		// Variable-length prefix: each hop multiplies candidates by the
		// average out-degree.
		mh := pat.MaxHops
		if mh == 0 {
			mh = maxHops
		}
		if mh > 20 {
			mh = 20
		}
		branching := 1.0
		if nodes, ok := g.NodesAt(mark); ok && nodes > 0 {
			branching = float64(edges) / float64(nodes)
		}
		for i := 1; i < mh && est < estCap; i++ {
			est *= branching
		}
		ssel, ok := entitySel(pat.Subj, sv.ent, nil)
		if !ok {
			return 0, false
		}
		osel, ok := entitySel(pat.Obj, sv.ent, nil)
		if !ok {
			return 0, false
		}
		est *= ssel * osel
		total += est
	}
	if total > estCap {
		total = estCap
	}
	return total, true
}

// schemaFingerprint combines both backends' bootstrap-schema versions.
// It is part of every plan-cache key and flushes the cache when it
// changes, so a plan prepared against one schema shape (index set,
// column layout) is never executed against another.
func (en *Engine) schemaFingerprint() uint64 {
	fp := en.Rel.Shard(0).SchemaVersion()
	if en.Graph != nil {
		fp = fp*1099511628211 ^ en.Graph.Shard(0).SchemaVersion()
	}
	return fp
}

// fetchCapSafe reports whether pushing a per-shard row cap into the
// data queries preserves the hunt's first rows exactly: a single
// pattern whose subject and object are distinct variables (the join is
// then the identity mapping over fetched rows — nothing is filtered
// after the fetch), no temporal or attribute relations, and no
// DISTINCT (deduplication could shrink a capped page). Capping each
// shard's fetch at L keeps the first L rows of the shard-order merge
// identical to the uncapped hunt's, so a first-page hunt fetches
// page-scaled rows instead of the whole table.
func fetchCapSafe(q *tbql.Query) bool {
	return len(q.Patterns) == 1 &&
		q.Patterns[0].Subj.ID != q.Patterns[0].Obj.ID &&
		len(q.Temporal) == 0 &&
		len(q.AttrRels) == 0 &&
		!q.Distinct
}
