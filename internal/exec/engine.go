package exec

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/audit"
	"repro/internal/graphstore"
	"repro/internal/obs"
	"repro/internal/relstore"
	"repro/internal/snapshot"
	"repro/internal/tbql"
)

// Engine executes TBQL queries against the two storage backends. Both
// backends are host-sharded (a 1-shard store is the unsharded case):
// per-pattern data queries fan out across the shards the pattern's host
// constraints allow and the shard results are merged, in shard order,
// before the join.
type Engine struct {
	Rel   *relstore.Sharded
	Graph *graphstore.Sharded

	// MaxPathHops caps unbounded path patterns (default DefaultMaxHops).
	MaxPathHops int
	// DisableScheduling executes patterns in textual order instead of
	// pruning-score order (ablation baseline).
	DisableScheduling bool
	// DisablePropagation turns off constraint propagation between
	// patterns connected by shared entities (ablation baseline).
	DisablePropagation bool
	// DisableCostOptimizer turns off selectivity-driven join reordering
	// and fetch-side row caps, keeping the static pruning-score order
	// (escape hatch and ablation baseline). The engine also falls back
	// to the static order automatically whenever the stores lack the
	// stats to estimate every pattern.
	DisableCostOptimizer bool
	// MaxPropagatedIDs bounds the size of a propagated constraint set;
	// larger candidate sets are not propagated (default
	// DefaultMaxPropagatedIDs) and are counted in
	// Stats.PropagationsSkipped. On the prepared-plan pipeline a
	// propagated set is a bound []int64 parameter probed per row — not
	// a rendered IN-list that must be re-lexed — so the default is 50×
	// the old text-pipeline cap and overflow is rare.
	MaxPropagatedIDs int
	// UseNaiveJoin executes the join as the legacy materializing
	// nested loop instead of the streaming hash join (correctness
	// baseline for the equivalence tests and allocation benchmarks).
	UseNaiveJoin bool
	// UseTextCompile renders each data query as SQL/Cypher text with
	// inline propagated IN-lists and re-parses it per shard — the
	// legacy pipeline, kept as the correctness and performance baseline
	// the prepared-plan path is property-tested and benchmarked
	// against.
	UseTextCompile bool
	// Plans is the cross-hunt prepared-plan cache (NewPlanCache); nil
	// compiles per hunt without caching. Ignored under UseTextCompile.
	Plans *PlanCache
	// Clock, when set, names each cursor's pinned snapshot with the
	// store's current ingest epoch (Cursor.Epoch). A nil clock leaves
	// every cursor at epoch 0; snapshots still work — the epoch number
	// is bookkeeping for the server-side cursor registry, the watermark
	// vectors in the captured views are what bound visibility.
	Clock *snapshot.Clock
	// DisableTracing stops the engine from recording a pipeline trace
	// for cursors whose caller did not supply one. Tracing is on by
	// default — the span slice is preallocated and every record is two
	// clock reads under a short mutex — so this exists as the A/B knob
	// for the tracing-overhead benchmark and as an escape hatch.
	DisableTracing bool
	// MaxJoinRows bounds how many candidate rows one hunt's join may
	// examine (Stats.JoinCandidates); 0 means unbounded. A hunt that
	// exceeds it aborts with ErrJoinBudget — a terminal error that
	// releases the snapshot — so a cross-product-shaped query cannot
	// pin a core indefinitely.
	MaxJoinRows int

	// attrsMu guards the projection attribute cache below, so concurrent
	// hunts share one cache instead of racing on it.
	attrsMu sync.Mutex
	// attrRows caches entity attributes for projection, indexed by
	// entity ID - 1 (IDs are dense, assigned from 1 in insertion order).
	// The slice is append-only, so snapshots handed to cursors stay
	// valid as it grows; attrsRows is the entity-table row count already
	// cached.
	attrRows  []map[string]string
	attrsRows int

	// rowBufs recycles the per-shard fetch buffers of multi-shard
	// patterns across waves and hunts. Only intermediates are pooled:
	// a single-shard pattern's buffer becomes the merged row list and
	// lives as long as its cursor.
	rowBufs sync.Pool
}

// DefaultMaxPropagatedIDs is the default cap on a propagated entity-ID
// constraint set: 50× the old text-pipeline default of 512. Rendered
// IN-lists made large sets expensive to emit and re-parse; a bound set
// parameter costs O(1) per probed row, so the cap now exists only to
// bound the memory of a pathological propagation, not its CPU.
const DefaultMaxPropagatedIDs = 25600

// EventRow is one event fetched for a pattern.
type EventRow struct {
	EventID int64
	SrcID   int64
	DstID   int64
	Start   int64
	End     int64
	Amount  int64
}

// Match is one complete binding of all patterns: event rows by pattern
// name and entity IDs by entity variable.
type Match struct {
	Events   map[string]EventRow
	Entities map[string]int64
}

// Stats describes how a query executed.
type Stats struct {
	// DataQueries lists the executed data queries as human-readable
	// SQL/Cypher text, in scheduled order. It is rendered lazily —
	// populated on Execute results and by Cursor.DataQueries(), never
	// on the hot hunt path: the engine records compact per-pattern refs
	// (pattern index + bound propagation sets) and only materializes
	// text when someone actually asks.
	DataQueries  []string
	RowsFetched  int
	Propagations int // number of propagated constraint sets injected
	// PropagationsSkipped counts shared-entity constraints that were NOT
	// injected because the candidate set exceeded MaxPropagatedIDs — the
	// signal that a hunt fell back to fetching an unconstrained table.
	PropagationsSkipped int
	ShortCircuit        bool
	// PlanCacheHits/Misses count this hunt's plan-template resolutions
	// against the engine's cross-hunt PlanCache: a warm repeat hunt is
	// all hits and compiles nothing. Both stay 0 when the engine has no
	// cache or runs the text pipeline.
	PlanCacheHits   int
	PlanCacheMisses int
	// JoinCandidates counts candidate rows examined during the join.
	// With the streaming executor this grows as the cursor is drained;
	// a partially read cursor reports the work done so far.
	JoinCandidates int
	// ShardFetches counts per-shard data-query executions: an unpruned
	// pattern costs one fetch per shard, while a pattern carrying a
	// `host = '...'` constraint is pruned to that host's shard and costs
	// one. Compare against len(DataQueries) × shard count to see how
	// much fetch work shard pruning saved.
	ShardFetches int
	// CostBased reports that the cost-based optimizer ordered this
	// hunt's patterns from cardinality estimates; false means the
	// static pruning-score order ran (optimizer disabled, or stats
	// unavailable for some pattern).
	CostBased bool
	// Reordered reports that the cost-based order actually differed
	// from the static order — the hunts where the optimizer changed
	// the anchor the streaming join builds on.
	Reordered bool
	// FetchCapped reports that a row cap was pushed into the per-shard
	// data queries (single-pattern hunt with a page-bounded cursor):
	// the fetch stopped at the cap instead of materializing the full
	// table. A capped cursor covers exactly its requested page window
	// and cannot page past it.
	FetchCapped bool

	// dq holds the executed data queries in compact, unrendered form —
	// the raw material Cursor.DataQueries() and Execute turn into the
	// DataQueries text on demand.
	dq []dataQueryRef
}

// dataQueryRef is one executed data query in unrendered form: the
// pattern it compiled from plus the propagated ID sets that were bound
// (or splatted, on the text pipeline) for its wave. Rendering it
// reproduces exactly the text the legacy pipeline would have executed.
type dataQueryRef struct {
	pi              int
	subjIDs, objIDs []int64
}

// Result is a TBQL query result.
type Result struct {
	Cols    []string
	Rows    [][]string
	Matches []Match
	Stats   Stats
}

// fetchWorkers bounds how many independent per-pattern data queries one
// hunt runs concurrently within a propagation wave.
const fetchWorkers = 4

// Execute runs an analyzed TBQL query and materializes every projected
// row in Result.Rows by draining a cursor, so projection and DISTINCT
// semantics live in one place. For large match sets, ExecuteCursor
// streams the projection instead and does only as much join work as the
// caller consumes.
func (en *Engine) Execute(q *tbql.Query) (*Result, error) {
	c, err := en.ExecuteCursor(q)
	if err != nil {
		return nil, err
	}
	c.collectMatches = true
	res := &Result{Cols: c.cols}
	for c.Next() {
		res.Rows = append(res.Rows, c.Row())
	}
	res.Matches = c.matches
	// Execute is the materializing API, so it also materializes the
	// data-query text; cursor hunts leave it unrendered unless
	// Cursor.DataQueries is called.
	c.DataQueries()
	res.Stats = c.Stats()
	err = c.Err()
	c.Close()
	return res, err
}

// projectMatch renders one match as a projected row of entity attributes.
func projectMatch(q *tbql.Query, m Match, attrs *attrCache) []string {
	row := make([]string, len(q.Return))
	for i, item := range q.Return {
		row[i] = attrs.get(m.Entities[item.ID], item.Attr)
	}
	return row
}

// schedule orders pattern indexes by pruning score (descending), stable
// to keep textual order among ties.
func (en *Engine) schedule(q *tbql.Query, maxHops int) []int {
	order := make([]int, len(q.Patterns))
	for i := range order {
		order[i] = i
	}
	if !en.DisableScheduling {
		sort.SliceStable(order, func(a, b int) bool {
			return PruningScore(&q.Patterns[order[a]], maxHops) > PruningScore(&q.Patterns[order[b]], maxHops)
		})
	}
	return order
}

// shardPlan maps each pattern's host constraints (tbql analysis) to the
// store shards its data query must visit: SQL patterns visit relational
// shards, path patterns visit graph shards. An unconstrained pattern
// visits every shard; a `host = '...'` constraint prunes to that host's
// shard; contradictory constraints yield an empty list (the pattern
// cannot match anywhere). The returned relShards/graphShards are the
// sorted unions the cursor's snapshot must pin.
func (en *Engine) shardPlan(q *tbql.Query) (patShards [][]int, relShards, graphShards []int) {
	info := q.Info()
	patShards = make([][]int, len(q.Patterns))
	relSet, graphSet := map[int]bool{}, map[int]bool{}
	for i := range q.Patterns {
		isPath := q.Patterns[i].IsPath
		n := en.Rel.NumShards()
		if isPath && en.Graph != nil {
			n = en.Graph.NumShards()
		}
		var shards []int
		if hosts := info.PatternHosts[i]; hosts == nil {
			shards = make([]int, n)
			for s := range shards {
				shards[s] = s
			}
		} else {
			seen := map[int]bool{}
			for _, h := range hosts {
				s := audit.ShardIndex(h, n)
				if !seen[s] {
					seen[s] = true
					shards = append(shards, s)
				}
			}
			sort.Ints(shards)
		}
		patShards[i] = shards
		for _, s := range shards {
			if isPath {
				graphSet[s] = true
			} else {
				relSet[s] = true
			}
		}
	}
	for s := range relSet {
		relShards = append(relShards, s)
	}
	for s := range graphSet {
		graphShards = append(graphShards, s)
	}
	sort.Ints(relShards)
	sort.Ints(graphShards)
	return patShards, relShards, graphShards
}

// storeView is the epoch snapshot one cursor pins: per-touched-shard
// relational views (append watermarks over the append-only tables),
// per-touched-shard graph epoch marks, and shard 0's entity-table view
// — the broadcast entity set the projection attribute cache reads. A
// storeView holds no locks: writers keep committing while it is held,
// and everything committed after capture is beyond its watermarks and
// therefore invisible through it.
type storeView struct {
	epoch snapshot.Epoch
	rel   map[int]*relstore.View
	graph map[int]uint64
	ent   *relstore.TableView
}

// snapshotStores captures the epoch snapshot across the store shards
// one hunt touches. Capture order is what makes the cut referentially
// closed: every non-zero relational shard's view first (each view
// internally captures events before entities), then the touched graph
// marks, then shard 0 last. Entities commit to every shard — shard 0
// included — before any of a batch's events or edges commit anywhere,
// so capturing shard 0's entity table after every other event watermark
// guarantees each visible event's endpoint entities are visible in the
// attribute cache's source table. Nothing is locked beyond the
// per-table header reads, so concurrent hunts and ingests never queue
// behind a snapshot.
func (en *Engine) snapshotStores(relShards, graphShards []int) (*storeView, error) {
	sv := &storeView{
		rel:   make(map[int]*relstore.View, len(relShards)),
		graph: make(map[int]uint64, len(graphShards)),
	}
	if en.Clock != nil {
		sv.epoch = en.Clock.Current()
	}
	shard0Touched := false
	for _, s := range relShards {
		if s == 0 {
			shard0Touched = true
			continue
		}
		sv.rel[s] = en.Rel.Shard(s).View()
	}
	if en.Graph != nil {
		for _, s := range graphShards {
			sv.graph[s] = en.Graph.Shard(s).Mark()
		}
	}
	if shard0Touched {
		sv.rel[0] = en.Rel.Shard(0).View()
		sv.ent = sv.rel[0].Table(relstore.EntityTable)
	} else {
		sv.ent = en.Rel.Shard(0).TableView(relstore.EntityTable)
	}
	if sv.ent == nil {
		return nil, fmt.Errorf("exec: no table %q", relstore.EntityTable)
	}
	return sv, nil
}

// sharesEntity reports whether two patterns reference a common entity
// variable (the condition under which propagation chains their fetches).
func sharesEntity(q *tbql.Query, a, b int) bool {
	pa, pb := &q.Patterns[a], &q.Patterns[b]
	return pa.Subj.ID == pb.Subj.ID || pa.Subj.ID == pb.Obj.ID ||
		pa.Obj.ID == pb.Subj.ID || pa.Obj.ID == pb.Obj.ID
}

// fetchSpec bundles the resolved execution parameters one fetch phase
// runs under: the scheduled pattern order, the host-constraint shard
// plan, the hop/propagation limits, the schema fingerprint plan
// lookups key on, and an optional per-shard row cap (0 = uncapped)
// pushed into the data queries when the caller proved it safe
// (fetchCapSafe plus a page-bounded cursor).
type fetchSpec struct {
	order     []int
	patShards [][]int
	maxHops   int
	maxProp   int
	fp        uint64
	rowCap    int
	// tr/span, when set, record per-wave and per-shard-job spans under
	// the caller's "fetch" span (span is its index in tr).
	tr   *obs.Trace
	span int
	// ctx, when set, is the hunt's lifecycle context: it is polled at
	// every wave boundary and before each shard job starts, so a
	// cancelled or timed-out hunt stops fanning out data queries.
	ctx context.Context
}

// fetchPatterns runs the per-pattern data queries in scheduled order
// with constraint propagation, filling stats. Patterns whose fetch does
// not depend on an earlier pattern's observed IDs (no shared entity
// variable, or propagation disabled) are grouped into waves; within a
// wave, each pattern expands into one fetch job per shard it must visit
// (spec.patShards, from the host-constraint shard plan) and the jobs
// run concurrently on a small worker pool. A pattern's shard results
// merge in shard order, so the merged row list is deterministic, and
// propagation state updates deterministically between waves, in
// scheduled order. Every data query runs against the cursor's epoch
// snapshot (sv): rows committed after the snapshot was captured are
// beyond its watermarks and invisible, so the fetch needs no held
// locks. On a short-circuit (some pattern fetched zero rows across all
// its shards, or its host constraints are contradictory) it returns nil
// rows with stats.ShortCircuit set.
func (en *Engine) fetchPatterns(q *tbql.Query, sv *storeView, spec fetchSpec, stats *Stats) ([][]EventRow, error) {
	order, patShards := spec.order, spec.patShards
	maxHops, maxProp := spec.maxHops, spec.maxProp
	// Partition scheduled positions into dependency waves.
	waveOf := make([]int, len(order))
	nWaves := 0
	for k := range order {
		w := 0
		if !en.DisablePropagation {
			for j := 0; j < k; j++ {
				if sharesEntity(q, order[j], order[k]) && waveOf[j]+1 > w {
					w = waveOf[j] + 1
				}
			}
		}
		waveOf[k] = w
		if w+1 > nWaves {
			nWaves = w + 1
		}
	}
	waves := make([][]int, nWaves)
	for k := range order {
		waves[waveOf[k]] = append(waves[waveOf[k]], k)
	}

	rows := make([][]EventRow, len(q.Patterns))
	known := map[string]map[int64]bool{} // entity var -> observed IDs
	dqRefs := make([]*dataQueryRef, len(order))
	setQueries := func() {
		for _, ref := range dqRefs {
			if ref != nil {
				stats.dq = append(stats.dq, *ref)
			}
		}
	}

	// sawEmpty is set as soon as some pattern is known to fetch zero
	// rows — every shard of it came back empty, or its host constraints
	// are contradictory: the hunt is short-circuiting, so queued fetches
	// are skipped instead of started (in-flight ones run to completion).
	// The single-shard sequential case keeps the legacy behavior
	// exactly: nothing after the empty pattern executes.
	var sawEmpty atomic.Bool
	for _, wave := range waves {
		if ctxDone(spec.ctx) {
			return nil, huntErr(spec.ctx)
		}
		// One span per dependency wave; its children are the shard jobs
		// that actually executed, named by pattern. The trace mutex makes
		// the concurrent job appends safe.
		waveSp := spec.tr.Begin("wave", spec.span)
		// Resolve this wave's plans and propagation sets sequentially so
		// propagation stats and bound sets are deterministic, then expand
		// each pattern into one job per shard its host constraints allow.
		// All of a pattern's shard jobs share one plan and one parameter
		// binding: nothing is compiled, parsed, or rendered per shard.
		works := make([]*patWork, 0, len(wave))
		var jobs []*shardJob
		for _, pos := range wave {
			pi := order[pos]
			pat := &q.Patterns[pi]
			// Propagated constraints go on the event table's own
			// srcid/dstid columns (equivalent to s.id/o.id through the
			// join equalities), where the hash indexes can drive the
			// set lookup directly.
			var subjIDs, objIDs []int64
			if !en.DisablePropagation {
				propSet := func(id string) []int64 {
					set := known[id]
					if len(set) == 0 {
						return nil
					}
					if len(set) > maxProp {
						stats.PropagationsSkipped++
						return nil
					}
					stats.Propagations++
					return sortedIDs(set)
				}
				subjIDs = propSet(pat.Subj.ID)
				objIDs = propSet(pat.Obj.ID)
			}
			if pat.IsPath && en.Graph == nil {
				return nil, fmt.Errorf("exec: pattern %q needs the graph backend", pat.Name)
			}
			w := &patWork{pos: pos, pi: pi}
			if len(patShards[pi]) == 0 {
				// Contradictory host constraints: the pattern cannot match
				// on any shard, so its query never executes.
				sawEmpty.Store(true)
				works = append(works, w)
				continue
			}
			dqRefs[pos] = &dataQueryRef{pi: pi, subjIDs: subjIDs, objIDs: objIDs}
			var src string
			var plan *patternPlan
			var sqlParams *relstore.Params
			var cyParams *graphstore.CParams
			if en.UseTextCompile {
				// Legacy text pipeline: render the data query with inline
				// IN-lists; every shard job re-parses the text.
				var extraSQL, extraCypher []string
				if subjIDs != nil {
					extraSQL = append(extraSQL, "e.srcid IN ("+inListSQL(subjIDs)+")")
					extraCypher = append(extraCypher, inListCypher("s.id", subjIDs))
				}
				if objIDs != nil {
					extraSQL = append(extraSQL, "e.dstid IN ("+inListSQL(objIDs)+")")
					extraCypher = append(extraCypher, inListCypher("o.id", objIDs))
				}
				if pat.IsPath {
					src = compileCypher(pat, extraCypher, maxHops)
				} else {
					src = compileSQL(pat, extraSQL)
				}
			} else {
				var shape propShape
				if subjIDs != nil {
					shape |= propSubj
				}
				if objIDs != nil {
					shape |= propObj
				}
				var err error
				plan, err = en.lookupPlan(pat, shape, maxHops, spec.fp, stats)
				if err != nil {
					return nil, err
				}
				if pat.IsPath {
					cyParams = plan.bindCypher(subjIDs, objIDs)
				} else {
					sqlParams = plan.bindSQL(subjIDs, objIDs)
				}
			}
			for _, sh := range patShards[pi] {
				j := &shardJob{pi: pi, shard: sh, isPath: pat.IsPath, src: src,
					plan: plan, sqlParams: sqlParams, cyParams: cyParams, work: w}
				if plan != nil {
					// Fetch-side row cap: prepared pipeline only (the text
					// pipeline would need the cap rendered into the SQL).
					j.rowCap = spec.rowCap
				}
				w.jobs = append(w.jobs, j)
				jobs = append(jobs, j)
			}
			w.pending.Store(int32(len(w.jobs)))
			works = append(works, w)
		}

		// Run the wave: inline when it is a single query (the common case
		// once propagation chains patterns on a 1-shard store), else
		// through the pool.
		run := func(j *shardJob) {
			if sawEmpty.Load() || ctxDone(spec.ctx) {
				j.skipped = true
			} else {
				jobSp := spec.tr.Begin(q.Patterns[j.pi].Name, waveSp)
				defer spec.tr.EndNote(jobSp, shardNote(j.shard))
				if len(j.work.jobs) > 1 {
					// Multi-shard intermediates are merged then retired, so
					// their buffers recycle across waves and hunts. A
					// single-shard fetch IS the merged list and lives as
					// long as the cursor — it gets a fresh, exactly sized
					// buffer instead.
					j.fetched = en.getRowBuf()
				}
				if j.isPath {
					j.fetchGraph(en.Graph.Shard(j.shard), sv.graph[j.shard])
				} else {
					j.fetchRel(sv.rel[j.shard])
				}
			}
			w := j.work
			if j.err == nil && !j.skipped {
				w.total.Add(int32(len(j.fetched)))
			}
			if w.pending.Add(-1) == 0 && j.err == nil && !j.skipped && w.total.Load() == 0 {
				// Every shard of this pattern fetched nothing: the hunt is
				// short-circuiting.
				sawEmpty.Store(true)
			}
		}
		if len(jobs) == 1 {
			run(jobs[0])
		} else {
			sem := make(chan struct{}, fetchWorkers)
			var wg sync.WaitGroup
			for _, j := range jobs {
				wg.Add(1)
				sem <- struct{}{}
				go func(j *shardJob) {
					defer wg.Done()
					defer func() { <-sem }()
					run(j)
				}(j)
			}
			wg.Wait()
		}

		// A context that fired mid-wave left some jobs skipped, so the
		// wave's row state is incomplete and must not fold into the
		// propagation state: retire the pooled shard buffers and abort.
		if ctxDone(spec.ctx) {
			retireWave(en, works)
			spec.tr.EndNote(waveSp, "cancelled")
			return nil, huntErr(spec.ctx)
		}

		// Fold results back in scheduled order: errors first, then
		// per-pattern shard merges (shard order, so the merged list is
		// deterministic), row accounting, short-circuit, and
		// propagation-state updates. Patterns none of whose jobs
		// executed leave Stats.DataQueries (which lists executed
		// queries only).
		shortCircuit := false
		for _, w := range works {
			if len(w.jobs) == 0 { // contradictory host constraints
				shortCircuit = true
				continue
			}
			executed := false
			for _, j := range w.jobs {
				if j.err != nil {
					retireWave(en, works)
					return nil, fmt.Errorf("exec: pattern %q: %w", q.Patterns[w.pi].Name, j.err)
				}
				if j.skipped {
					continue
				}
				executed = true
				stats.ShardFetches++
			}
			if !executed {
				dqRefs[w.pos] = nil
				continue
			}
			var merged []EventRow
			if len(w.jobs) == 1 {
				merged = w.jobs[0].fetched
			} else {
				// Merge into an exactly sized list (the per-job row counts
				// are already totalled) and retire the shard buffers.
				merged = make([]EventRow, 0, int(w.total.Load()))
				for _, j := range w.jobs {
					if j.skipped {
						continue
					}
					merged = append(merged, j.fetched...)
					en.putRowBuf(j.fetched)
					j.fetched = nil
				}
			}
			rows[w.pi] = merged
			stats.RowsFetched += len(merged)
			if len(merged) == 0 {
				shortCircuit = true
			}
		}
		if shortCircuit || sawEmpty.Load() {
			// A pattern with no matches empties the whole result.
			stats.ShortCircuit = true
			setQueries()
			spec.tr.EndNote(waveSp, "short_circuit")
			return nil, nil
		}
		for _, w := range works {
			pat := &q.Patterns[w.pi]
			n := len(rows[w.pi])
			newSubj, newObj := make(map[int64]bool, n), make(map[int64]bool, n)
			for _, r := range rows[w.pi] {
				newSubj[r.SrcID] = true
				newObj[r.DstID] = true
			}
			known[pat.Subj.ID] = intersectOrNew(known[pat.Subj.ID], newSubj)
			known[pat.Obj.ID] = intersectOrNew(known[pat.Obj.ID], newObj)
		}
		spec.tr.End(waveSp)
	}
	setQueries()
	return rows, nil
}

// shardNotes holds the span annotations for the common shard indexes so
// traced fetches on small stores allocate nothing per job.
var shardNotes = [...]string{
	"shard 0", "shard 1", "shard 2", "shard 3",
	"shard 4", "shard 5", "shard 6", "shard 7",
}

func shardNote(sh int) string {
	if sh >= 0 && sh < len(shardNotes) {
		return shardNotes[sh]
	}
	return "shard " + strconv.Itoa(sh)
}

// getRowBuf pulls a recycled fetch buffer (nil when the pool is empty —
// the fetch then allocates one exactly sized to its result).
func (en *Engine) getRowBuf() []EventRow {
	if v, ok := en.rowBufs.Get().(*[]EventRow); ok {
		return (*v)[:0]
	}
	return nil
}

// putRowBuf retires a merged-away shard buffer for reuse.
func (en *Engine) putRowBuf(b []EventRow) {
	if cap(b) == 0 {
		return
	}
	b = b[:0]
	en.rowBufs.Put(&b)
}

// retireWave returns a wave's pooled multi-shard fetch buffers after an
// abort (cancellation or a shard-job error), so the interrupted fetch
// does not strand them outside the pool. Only multi-shard patterns pull
// from the pool (single-shard fetches allocate exactly sized buffers),
// and all jobs are quiescent by the time this runs — the wave's
// WaitGroup has been awaited.
func retireWave(en *Engine, works []*patWork) {
	for _, w := range works {
		if len(w.jobs) <= 1 {
			continue
		}
		for _, j := range w.jobs {
			if j.fetched != nil {
				en.putRowBuf(j.fetched)
				j.fetched = nil
			}
		}
	}
}

// renderDataQueries materializes the human-readable DataQueries text
// from the compact executed-query refs — the exact text the legacy
// pipeline executes for the same hunt, IN-lists included. Called only
// from Cursor.DataQueries / Execute, never on the hot hunt path.
func (en *Engine) renderDataQueries(q *tbql.Query, refs []dataQueryRef) []string {
	maxHops := en.MaxPathHops
	if maxHops == 0 {
		maxHops = DefaultMaxHops
	}
	out := make([]string, 0, len(refs))
	for _, ref := range refs {
		pat := &q.Patterns[ref.pi]
		var extraSQL, extraCypher []string
		if ref.subjIDs != nil {
			extraSQL = append(extraSQL, "e.srcid IN ("+inListSQL(ref.subjIDs)+")")
			extraCypher = append(extraCypher, inListCypher("s.id", ref.subjIDs))
		}
		if ref.objIDs != nil {
			extraSQL = append(extraSQL, "e.dstid IN ("+inListSQL(ref.objIDs)+")")
			extraCypher = append(extraCypher, inListCypher("o.id", ref.objIDs))
		}
		if pat.IsPath {
			out = append(out, compileCypher(pat, extraCypher, maxHops))
		} else {
			out = append(out, compileSQL(pat, extraSQL))
		}
	}
	return out
}

// patWork tracks one pattern's shard jobs within a fetch wave: pending
// counts outstanding jobs, total the rows fetched so far, so the last
// job to finish can detect an all-shards-empty pattern.
type patWork struct {
	pos, pi int
	jobs    []*shardJob // in shard order
	pending atomic.Int32
	total   atomic.Int32
}

// shardJob is one (pattern, shard) fetch: the pattern's data query run
// against a single store shard. On the prepared pipeline the job
// executes plan with the shared parameter binding (zero parsing); on
// the text pipeline it re-parses src.
type shardJob struct {
	pi        int
	shard     int
	isPath    bool
	src       string // text pipeline only
	plan      *patternPlan
	sqlParams *relstore.Params
	cyParams  *graphstore.CParams
	// rowCap, when positive, stops the shard's fetch after this many
	// rows (prepared pipeline only; see fetchCapSafe for when capping
	// preserves the hunt's first rows exactly).
	rowCap  int
	fetched []EventRow
	err     error
	skipped bool
	work    *patWork
}

// fetchRel runs the pattern's data query against one relational shard's
// epoch view: the statement sees the snapshot's rows only and takes no
// statement-long locks.
func (j *shardJob) fetchRel(v *relstore.View) {
	var rr *relstore.Rows
	var err error
	if j.plan != nil {
		if j.rowCap > 0 {
			rr, err = j.plan.sql.QueryViewLimit(v, j.sqlParams, j.rowCap)
		} else {
			rr, err = j.plan.sql.QueryView(v, j.sqlParams)
		}
	} else {
		rr, err = v.Query(j.src)
	}
	if err != nil {
		j.err = err
		return
	}
	if cap(j.fetched) < len(rr.Data) {
		j.fetched = make([]EventRow, 0, len(rr.Data))
	}
	for _, r := range rr.Data {
		j.fetched = append(j.fetched, EventRow{
			EventID: r[0].Int, SrcID: r[1].Int, DstID: r[2].Int,
			Start: r[3].Int, End: r[4].Int, Amount: r[5].Int,
		})
	}
}

// fetchGraph runs the pattern's data query against one graph shard
// bounded at the cursor's epoch mark: edges and nodes committed after
// the mark are invisible, and the graph's read lock is held only for
// this one statement.
func (j *shardJob) fetchGraph(g *graphstore.Graph, mark uint64) {
	var gr *graphstore.Rows
	var err error
	if j.plan != nil {
		if j.rowCap > 0 {
			gr, err = g.QueryPreparedAtLimit(j.plan.cy, mark, j.cyParams, j.rowCap)
		} else {
			gr, err = g.QueryPreparedAt(j.plan.cy, mark, j.cyParams)
		}
	} else {
		gr, err = g.QueryAt(j.src, mark)
	}
	if err != nil {
		j.err = err
		return
	}
	if cap(j.fetched) < len(gr.Data) {
		j.fetched = make([]EventRow, 0, len(gr.Data))
	}
	for _, r := range gr.Data {
		j.fetched = append(j.fetched, EventRow{
			SrcID: r[0].Int, DstID: r[1].Int, EventID: r[2].Int,
			Start: r[3].Int, End: r[4].Int, Amount: r[5].Int,
		})
	}
}

// ExecuteTBQL parses, analyzes, and executes TBQL source.
func (en *Engine) ExecuteTBQL(src string) (*Result, error) {
	q, err := tbql.Parse(src)
	if err != nil {
		return nil, err
	}
	return en.Execute(q)
}

// ExplainedPattern describes how one pattern would execute.
type ExplainedPattern struct {
	Name    string
	Backend string // "sql" or "cypher"
	Score   int    // static pruning score
	// EstRows is the cost-based optimizer's estimated fetched-row count
	// for this pattern at the current snapshot, or -1 when no estimate
	// drove the order (optimizer disabled or stats unavailable).
	EstRows int64
	// CostBased reports that the order Explain returned came from
	// cardinality estimates rather than static pruning scores.
	CostBased bool
	// DataQuery is the data query as it would actually execute: the
	// prepared template text ($k parameter slots for propagated sets
	// and window bounds) on the default pipeline, or the rendered
	// SQL/Cypher text under Engine.UseTextCompile.
	DataQuery string
	// Propagated lists the entity variables this pattern shares with
	// earlier scheduled patterns — the ones that receive propagated
	// constraint sets at run time (empty when propagation is
	// disabled). Whether a hunt actually injects them depends on
	// MaxPropagatedIDs; Stats.PropagationsSkipped counts the ones
	// dropped for exceeding it.
	Propagated []string
	// Hosts lists the host constants the pattern's filters pin it to
	// (nil when unconstrained): on a sharded store the pattern's data
	// query is pruned to only those hosts' shards.
	Hosts []string
}

// Explain scores, estimates, and compiles every pattern without
// executing anything, returning the patterns in the order a hunt
// launched now would execute them: the cost-based order when the
// optimizer is on and the stores carry stats (estimated against a
// freshly captured epoch snapshot, exactly as ExecuteCursor would),
// the static pruning-score order otherwise. DataQuery reports the
// plan that would actually run — the prepared parameterized template
// on the default pipeline — so /explain output and executed queries
// can no longer drift apart.
func (en *Engine) Explain(q *tbql.Query) ([]ExplainedPattern, error) {
	return en.ExplainTrace(q, nil)
}

// ExplainTraceCtx is ExplainTrace honoring a lifecycle context. Explain
// executes no data queries, so the context is checked once at entry —
// there is no long-running phase to interrupt after that.
func (en *Engine) ExplainTraceCtx(ctx context.Context, q *tbql.Query, tr *obs.Trace) ([]ExplainedPattern, error) {
	if ctxDone(ctx) {
		return nil, huntErr(ctx)
	}
	return en.ExplainTrace(q, tr)
}

// ExplainTrace is Explain recording its stages (analyze, estimate,
// compile) as spans on tr. A nil tr records nothing.
func (en *Engine) ExplainTrace(q *tbql.Query, tr *obs.Trace) ([]ExplainedPattern, error) {
	if q.Info() == nil {
		sp := tr.Begin("analyze", -1)
		err := tbql.Analyze(q)
		tr.End(sp)
		if err != nil {
			return nil, err
		}
	}
	if en.Rel == nil {
		return nil, fmt.Errorf("exec: engine has no relational backend")
	}
	maxHops := en.MaxPathHops
	if maxHops == 0 {
		maxHops = DefaultMaxHops
	}
	order := en.schedule(q, maxHops)
	var ests []float64
	costBased := false
	if !en.DisableCostOptimizer && !en.DisableScheduling {
		estSp := tr.Begin("estimate", -1)
		patShards, relShards, graphShards := en.shardPlan(q)
		if sv, err := en.snapshotStores(relShards, graphShards); err == nil {
			if co, ce, ok := en.costSchedule(q, patShards, sv, maxHops); ok {
				order, ests, costBased = co, ce, true
			}
		}
		if costBased {
			tr.EndNote(estSp, "cost")
		} else {
			tr.EndNote(estSp, "static")
		}
	}
	compileSp := tr.Begin("compile", -1)
	defer tr.End(compileSp)
	fp := en.schemaFingerprint()
	en.Plans.ensureSchema(fp)
	seen := map[string]bool{}
	out := make([]ExplainedPattern, 0, len(order))
	var stats Stats // plan-cache accounting only; discarded
	for _, pi := range order {
		pat := &q.Patterns[pi]
		ep := ExplainedPattern{Name: pat.Name, Score: PruningScore(pat, maxHops),
			EstRows: -1, CostBased: costBased, Hosts: q.Info().PatternHosts[pi]}
		if costBased {
			ep.EstRows = int64(ests[pi])
		}
		if pat.IsPath {
			ep.Backend = "cypher"
		} else {
			ep.Backend = "sql"
		}
		var shape propShape
		if !en.DisablePropagation {
			if seen[pat.Subj.ID] {
				ep.Propagated = append(ep.Propagated, pat.Subj.ID)
				shape |= propSubj
			}
			if seen[pat.Obj.ID] && pat.Obj.ID != pat.Subj.ID {
				ep.Propagated = append(ep.Propagated, pat.Obj.ID)
				shape |= propObj
			}
		}
		if en.UseTextCompile {
			if pat.IsPath {
				ep.DataQuery = compileCypher(pat, nil, maxHops)
			} else {
				ep.DataQuery = compileSQL(pat, nil)
			}
		} else {
			plan, err := en.lookupPlan(pat, shape, maxHops, fp, &stats)
			if err != nil {
				return nil, err
			}
			ep.DataQuery = plan.text
		}
		seen[pat.Subj.ID] = true
		seen[pat.Obj.ID] = true
		out = append(out, ep)
	}
	return out, nil
}

func returnCols(q *tbql.Query) []string {
	cols := make([]string, len(q.Return))
	for i, item := range q.Return {
		cols[i] = item.ID + "." + item.Attr
	}
	return cols
}

// join is the legacy materializing nested-loop join, kept behind
// Engine.UseNaiveJoin as the correctness baseline the streaming hash
// join is property-tested against. It binds the patterns' fetched rows
// into complete matches, cloning the binding maps per accepted
// candidate and re-checking every bound relation at each level. The
// hunt context and the MaxJoinRows budget are polled every
// joinCheckEvery candidates, like the streaming path.
func (en *Engine) join(ctx context.Context, q *tbql.Query, order []int, rows [][]EventRow) ([]Match, int, error) {
	type partial struct {
		events   map[string]EventRow
		entities map[string]int64
	}
	parts := []partial{{events: map[string]EventRow{}, entities: map[string]int64{}}}
	explored := 0
	bound := map[string]bool{} // event names bound so far

	for _, pi := range order {
		pat := &q.Patterns[pi]
		bound[pat.Name] = true
		var next []partial
		for _, p := range parts {
			for _, r := range rows[pi] {
				explored++
				if explored%joinCheckEvery == 0 {
					if ctxDone(ctx) {
						return nil, explored, huntErr(ctx)
					}
					if en.MaxJoinRows > 0 && explored >= en.MaxJoinRows {
						return nil, explored, en.joinBudgetErr(explored)
					}
				}
				if id, ok := p.entities[pat.Subj.ID]; ok && id != r.SrcID {
					continue
				}
				if id, ok := p.entities[pat.Obj.ID]; ok && id != r.DstID {
					continue
				}
				ev := cloneEvents(p.events)
				ev[pat.Name] = r
				if !relationsOK(q, bound, ev) {
					continue
				}
				ent := cloneEntities(p.entities)
				ent[pat.Subj.ID] = r.SrcID
				ent[pat.Obj.ID] = r.DstID
				next = append(next, partial{events: ev, entities: ent})
			}
		}
		parts = next
		if len(parts) == 0 {
			return nil, explored, nil
		}
	}

	matches := make([]Match, len(parts))
	for i, p := range parts {
		matches[i] = Match{Events: p.events, Entities: p.entities}
	}
	return matches, explored, nil
}

// joinBudgetErr names the exhausted budget so the 422 the service maps
// it to tells the analyst which knob fired.
func (en *Engine) joinBudgetErr(explored int) error {
	return fmt.Errorf("%w: join examined %d candidate rows (max-join-rows %d)",
		ErrJoinBudget, explored, en.MaxJoinRows)
}

// relationsOK checks every temporal and attribute relation whose two
// events are both bound (legacy join path).
func relationsOK(q *tbql.Query, bound map[string]bool, ev map[string]EventRow) bool {
	for _, tr := range q.Temporal {
		if !bound[tr.A] || !bound[tr.B] {
			continue
		}
		a, b := ev[tr.A], ev[tr.B]
		if tr.Op == "before" {
			if !(a.Start < b.Start) {
				return false
			}
		} else {
			if !(a.Start > b.Start) {
				return false
			}
		}
	}
	for _, ar := range q.AttrRels {
		if !bound[ar.AEvt] {
			continue
		}
		av := eventAttr(ev[ar.AEvt], ar.AAttr)
		var bv int64
		if ar.BIsLit {
			bv = ar.BLit
		} else {
			if !bound[ar.BEvt] {
				continue
			}
			bv = eventAttr(ev[ar.BEvt], ar.BAttr)
		}
		if !cmpInt(av, ar.Op, bv) {
			return false
		}
	}
	return true
}

func eventAttr(r EventRow, attr string) int64 {
	switch attr {
	case "srcid":
		return r.SrcID
	case "dstid":
		return r.DstID
	case "starttime":
		return r.Start
	case "endtime":
		return r.End
	case "amount":
		return r.Amount
	case "id":
		return r.EventID
	default:
		return 0
	}
}

func cmpInt(a int64, op string, b int64) bool {
	switch op {
	case "=":
		return a == b
	case "!=":
		return a != b
	case "<":
		return a < b
	case "<=":
		return a <= b
	case ">":
		return a > b
	case ">=":
		return a >= b
	}
	return false
}

func cloneEvents(m map[string]EventRow) map[string]EventRow {
	out := make(map[string]EventRow, len(m)+1)
	for k, v := range m {
		out[k] = v
	}
	return out
}

func cloneEntities(m map[string]int64) map[string]int64 {
	out := make(map[string]int64, len(m)+2)
	for k, v := range m {
		out[k] = v
	}
	return out
}

// sortedIDs returns the set's IDs in ascending order, for deterministic
// IN-lists.
func sortedIDs(set map[int64]bool) []int64 {
	ids := make([]int64, 0, len(set))
	for v := range set {
		ids = append(ids, v)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// inListSQL renders a sorted entity-ID list as a SQL IN-list body (the
// text pipeline and the lazy DataQueries rendering).
func inListSQL(ids []int64) string {
	var b strings.Builder
	for i, v := range ids {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d", v)
	}
	return b.String()
}

// inListCypher renders a sorted entity-ID list as a Cypher disjunction.
func inListCypher(col string, ids []int64) string {
	terms := make([]string, len(ids))
	for i, v := range ids {
		terms[i] = fmt.Sprintf("%s = %d", col, v)
	}
	return "(" + strings.Join(terms, " OR ") + ")"
}

// intersectOrNew returns prev ∩ cur, or cur when prev is empty (first
// observation of the variable).
func intersectOrNew(prev, cur map[int64]bool) map[int64]bool {
	if len(prev) == 0 {
		return cur
	}
	out := map[int64]bool{}
	for v := range cur {
		if prev[v] {
			out[v] = true
		}
	}
	return out
}

// attrCache is an immutable snapshot of entity attribute values for
// projection, indexed by entity ID - 1.
type attrCache struct {
	rows []map[string]string
}

func (c *attrCache) get(id int64, attr string) string {
	i := id - 1
	if c == nil || i < 0 || i >= int64(len(c.rows)) || c.rows[i] == nil {
		return ""
	}
	return c.rows[i][attr]
}

// entityAttrsAt returns the entity attribute cache bounded at an epoch
// view of shard 0's entity table (the authoritative broadcast set),
// extending the shared cache first if the view reaches past it. The
// cache slice is append-only, so snapshots handed to cursors stay valid
// as later epochs extend it, and a cursor pinned at an older epoch gets
// the cache capped at its own watermark: entities interned after its
// snapshot do not exist for it. Only the view rows past the cached
// position are scanned (positions are stable across epochs), so a
// refresh during steady ingest costs the new rows, not the whole table.
func (en *Engine) entityAttrsAt(tv *relstore.TableView) (*attrCache, error) {
	en.attrsMu.Lock()
	defer en.attrsMu.Unlock()
	n := tv.NumRows()
	if n > en.attrsRows {
		cols := tv.Schema().Columns
		idIdx := tv.ColIndex("id")
		if idIdx < 0 {
			return nil, fmt.Errorf("exec: entity table has no id column")
		}
		en.attrsRows = tv.ScanFrom(en.attrsRows, func(row []relstore.Value) {
			m := make(map[string]string, len(cols))
			for i, col := range cols {
				m[strings.ToLower(col.Name)] = row[i].String()
			}
			id := row[idIdx].Int
			if id < 1 {
				return
			}
			// Grow to the row's ID slot; never overwrite an existing
			// slot, so published snapshots stay immutable.
			for int64(len(en.attrRows)) < id-1 {
				en.attrRows = append(en.attrRows, nil)
			}
			if int64(len(en.attrRows)) == id-1 {
				en.attrRows = append(en.attrRows, m)
			}
		})
	}
	// Cap the snapshot at the view's watermark: entity IDs are dense
	// (assigned from 1 in insertion order), so the first n entity rows
	// carry the IDs 1..n and cache positions >= n belong to entities
	// interned after this cursor's epoch.
	limit := n
	if len(en.attrRows) < limit {
		limit = len(en.attrRows)
	}
	return &attrCache{rows: en.attrRows[:limit:limit]}, nil
}
