package exec

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/graphstore"
	"repro/internal/relstore"
	"repro/internal/tbql"
)

// Engine executes TBQL queries against the two storage backends.
type Engine struct {
	Rel   *relstore.DB
	Graph *graphstore.Graph

	// MaxPathHops caps unbounded path patterns (default DefaultMaxHops).
	MaxPathHops int
	// DisableScheduling executes patterns in textual order instead of
	// pruning-score order (ablation baseline).
	DisableScheduling bool
	// DisablePropagation turns off constraint propagation between
	// patterns connected by shared entities (ablation baseline).
	DisablePropagation bool
	// MaxPropagatedIDs bounds the size of a propagated IN-list; larger
	// candidate sets are not propagated (default 512).
	MaxPropagatedIDs int

	// attrsMu guards the projection attribute cache below, so concurrent
	// hunts share one cache instead of racing on it.
	attrsMu sync.Mutex
	// attrRows caches entity attributes for projection, indexed by
	// entity ID - 1 (IDs are dense, assigned from 1 in insertion order).
	// The slice is append-only, so snapshots handed to cursors stay
	// valid as it grows; attrsRows is the entity-table row count already
	// cached.
	attrRows  []map[string]string
	attrsRows int
}

// EventRow is one event fetched for a pattern.
type EventRow struct {
	EventID int64
	SrcID   int64
	DstID   int64
	Start   int64
	End     int64
	Amount  int64
}

// Match is one complete binding of all patterns: event rows by pattern
// name and entity IDs by entity variable.
type Match struct {
	Events   map[string]EventRow
	Entities map[string]int64
}

// Stats describes how a query executed.
type Stats struct {
	DataQueries    []string // compiled SQL/Cypher, in execution order
	RowsFetched    int
	Propagations   int // number of IN-list constraints injected
	ShortCircuit   bool
	JoinCandidates int // partial bindings explored during the join
}

// Result is a TBQL query result.
type Result struct {
	Cols    []string
	Rows    [][]string
	Matches []Match
	Stats   Stats
}

// Execute runs an analyzed TBQL query and materializes every projected
// row in Result.Rows by draining a cursor, so projection and DISTINCT
// semantics live in one place. For large match sets, ExecuteCursor
// streams the projection instead.
func (en *Engine) Execute(q *tbql.Query) (*Result, error) {
	c, err := en.ExecuteCursor(q)
	if err != nil {
		return nil, err
	}
	res := &Result{Cols: c.cols, Matches: c.matches, Stats: c.stats}
	for c.Next() {
		res.Rows = append(res.Rows, c.Row())
	}
	return res, c.Err()
}

// projectMatch renders one match as a projected row of entity attributes.
func projectMatch(q *tbql.Query, m Match, attrs *attrCache) []string {
	row := make([]string, len(q.Return))
	for i, item := range q.Return {
		row[i] = attrs.get(m.Entities[item.ID], item.Attr)
	}
	return row
}

// collect runs the scheduling, data-query, and join phases of a query,
// returning the result with Cols, Matches, and Stats filled in but no
// projected Rows. Both Execute and ExecuteCursor build on it.
func (en *Engine) collect(q *tbql.Query) (*Result, error) {
	if q.Info() == nil {
		if err := tbql.Analyze(q); err != nil {
			return nil, err
		}
	}
	if en.Rel == nil {
		return nil, fmt.Errorf("exec: engine has no relational backend")
	}
	maxHops := en.MaxPathHops
	if maxHops == 0 {
		maxHops = DefaultMaxHops
	}
	maxProp := en.MaxPropagatedIDs
	if maxProp == 0 {
		maxProp = 512
	}

	res := &Result{}

	// Schedule: order patterns by pruning score (descending), stable to
	// keep textual order among ties.
	order := make([]int, len(q.Patterns))
	for i := range order {
		order[i] = i
	}
	if !en.DisableScheduling {
		sort.SliceStable(order, func(a, b int) bool {
			return PruningScore(&q.Patterns[order[a]], maxHops) > PruningScore(&q.Patterns[order[b]], maxHops)
		})
	}

	// Execute data queries with constraint propagation.
	rows := make([][]EventRow, len(q.Patterns))
	// knownIDs[var] is the set of entity ids observed for an entity
	// variable in already-executed patterns.
	knownIDs := map[string]map[int64]bool{}

	for _, pi := range order {
		pat := &q.Patterns[pi]
		// Propagated constraints go on the event table's own srcid/dstid
		// columns (equivalent to s.id/o.id through the join equalities),
		// where the hash indexes can drive the IN-list lookup directly.
		var extraSQL, extraCypher []string
		if !en.DisablePropagation {
			if c, ok := propagated(knownIDs, pat.Subj.ID, maxProp); ok {
				extraSQL = append(extraSQL, "e.srcid IN ("+c+")")
				extraCypher = append(extraCypher, inListCypher("s.id", knownIDs[pat.Subj.ID]))
				res.Stats.Propagations++
			}
			if c, ok := propagated(knownIDs, pat.Obj.ID, maxProp); ok {
				extraSQL = append(extraSQL, "e.dstid IN ("+c+")")
				extraCypher = append(extraCypher, inListCypher("o.id", knownIDs[pat.Obj.ID]))
				res.Stats.Propagations++
			}
		}

		var fetched []EventRow
		if pat.IsPath {
			if en.Graph == nil {
				return nil, fmt.Errorf("exec: pattern %q needs the graph backend", pat.Name)
			}
			cq := compileCypher(pat, extraCypher, maxHops)
			res.Stats.DataQueries = append(res.Stats.DataQueries, cq)
			gr, err := en.Graph.Query(cq)
			if err != nil {
				return nil, fmt.Errorf("exec: pattern %q: %w", pat.Name, err)
			}
			for _, r := range gr.Data {
				fetched = append(fetched, EventRow{
					SrcID: r[0].Int, DstID: r[1].Int, EventID: r[2].Int,
					Start: r[3].Int, End: r[4].Int, Amount: r[5].Int,
				})
			}
		} else {
			sq := compileSQL(pat, extraSQL)
			res.Stats.DataQueries = append(res.Stats.DataQueries, sq)
			rr, err := en.Rel.Query(sq)
			if err != nil {
				return nil, fmt.Errorf("exec: pattern %q: %w", pat.Name, err)
			}
			for _, r := range rr.Data {
				fetched = append(fetched, EventRow{
					EventID: r[0].Int, SrcID: r[1].Int, DstID: r[2].Int,
					Start: r[3].Int, End: r[4].Int, Amount: r[5].Int,
				})
			}
		}
		rows[pi] = fetched
		res.Stats.RowsFetched += len(fetched)

		if len(fetched) == 0 {
			// A pattern with no matches empties the whole result.
			res.Stats.ShortCircuit = true
			res.Cols = returnCols(q)
			return res, nil
		}

		// Record observed entity ids for propagation.
		subjSet := knownIDs[pat.Subj.ID]
		if subjSet == nil {
			subjSet = map[int64]bool{}
		}
		objSet := knownIDs[pat.Obj.ID]
		if objSet == nil {
			objSet = map[int64]bool{}
		}
		newSubj, newObj := map[int64]bool{}, map[int64]bool{}
		for _, r := range fetched {
			newSubj[r.SrcID] = true
			newObj[r.DstID] = true
		}
		knownIDs[pat.Subj.ID] = intersectOrNew(subjSet, newSubj)
		knownIDs[pat.Obj.ID] = intersectOrNew(objSet, newObj)
	}

	// Join phase: bind patterns in scheduled order, checking shared
	// entities and any relation whose events are all bound.
	matches, explored := en.join(q, order, rows)
	res.Stats.JoinCandidates = explored
	res.Matches = matches
	res.Cols = returnCols(q)
	return res, nil
}

// ExecuteTBQL parses, analyzes, and executes TBQL source.
func (en *Engine) ExecuteTBQL(src string) (*Result, error) {
	q, err := tbql.Parse(src)
	if err != nil {
		return nil, err
	}
	return en.Execute(q)
}

// ExplainedPattern describes how one pattern would execute.
type ExplainedPattern struct {
	Name      string
	Backend   string // "sql" or "cypher"
	Score     int    // pruning score
	DataQuery string // compiled data query, without propagated constraints
}

// Explain compiles and scores every pattern without executing anything,
// returning the patterns in scheduled order.
func (en *Engine) Explain(q *tbql.Query) ([]ExplainedPattern, error) {
	if q.Info() == nil {
		if err := tbql.Analyze(q); err != nil {
			return nil, err
		}
	}
	maxHops := en.MaxPathHops
	if maxHops == 0 {
		maxHops = DefaultMaxHops
	}
	order := make([]int, len(q.Patterns))
	for i := range order {
		order[i] = i
	}
	if !en.DisableScheduling {
		sort.SliceStable(order, func(a, b int) bool {
			return PruningScore(&q.Patterns[order[a]], maxHops) > PruningScore(&q.Patterns[order[b]], maxHops)
		})
	}
	out := make([]ExplainedPattern, 0, len(order))
	for _, pi := range order {
		pat := &q.Patterns[pi]
		ep := ExplainedPattern{Name: pat.Name, Score: PruningScore(pat, maxHops)}
		if pat.IsPath {
			ep.Backend = "cypher"
			ep.DataQuery = compileCypher(pat, nil, maxHops)
		} else {
			ep.Backend = "sql"
			ep.DataQuery = compileSQL(pat, nil)
		}
		out = append(out, ep)
	}
	return out, nil
}

func returnCols(q *tbql.Query) []string {
	cols := make([]string, len(q.Return))
	for i, item := range q.Return {
		cols[i] = item.ID + "." + item.Attr
	}
	return cols
}

// join binds the patterns' fetched rows into complete matches.
func (en *Engine) join(q *tbql.Query, order []int, rows [][]EventRow) ([]Match, int) {
	type partial struct {
		events   map[string]EventRow
		entities map[string]int64
	}
	parts := []partial{{events: map[string]EventRow{}, entities: map[string]int64{}}}
	explored := 0
	bound := map[string]bool{} // event names bound so far

	for _, pi := range order {
		pat := &q.Patterns[pi]
		bound[pat.Name] = true
		var next []partial
		for _, p := range parts {
			for _, r := range rows[pi] {
				explored++
				if id, ok := p.entities[pat.Subj.ID]; ok && id != r.SrcID {
					continue
				}
				if id, ok := p.entities[pat.Obj.ID]; ok && id != r.DstID {
					continue
				}
				ev := cloneEvents(p.events)
				ev[pat.Name] = r
				if !relationsOK(q, bound, ev) {
					continue
				}
				ent := cloneEntities(p.entities)
				ent[pat.Subj.ID] = r.SrcID
				ent[pat.Obj.ID] = r.DstID
				next = append(next, partial{events: ev, entities: ent})
			}
		}
		parts = next
		if len(parts) == 0 {
			return nil, explored
		}
	}

	matches := make([]Match, len(parts))
	for i, p := range parts {
		matches[i] = Match{Events: p.events, Entities: p.entities}
	}
	return matches, explored
}

// relationsOK checks every temporal and attribute relation whose two
// events are both bound.
func relationsOK(q *tbql.Query, bound map[string]bool, ev map[string]EventRow) bool {
	for _, tr := range q.Temporal {
		if !bound[tr.A] || !bound[tr.B] {
			continue
		}
		a, b := ev[tr.A], ev[tr.B]
		if tr.Op == "before" {
			if !(a.Start < b.Start) {
				return false
			}
		} else {
			if !(a.Start > b.Start) {
				return false
			}
		}
	}
	for _, ar := range q.AttrRels {
		if !bound[ar.AEvt] {
			continue
		}
		av := eventAttr(ev[ar.AEvt], ar.AAttr)
		var bv int64
		if ar.BIsLit {
			bv = ar.BLit
		} else {
			if !bound[ar.BEvt] {
				continue
			}
			bv = eventAttr(ev[ar.BEvt], ar.BAttr)
		}
		if !cmpInt(av, ar.Op, bv) {
			return false
		}
	}
	return true
}

func eventAttr(r EventRow, attr string) int64 {
	switch attr {
	case "srcid":
		return r.SrcID
	case "dstid":
		return r.DstID
	case "starttime":
		return r.Start
	case "endtime":
		return r.End
	case "amount":
		return r.Amount
	case "id":
		return r.EventID
	default:
		return 0
	}
}

func cmpInt(a int64, op string, b int64) bool {
	switch op {
	case "=":
		return a == b
	case "!=":
		return a != b
	case "<":
		return a < b
	case "<=":
		return a <= b
	case ">":
		return a > b
	case ">=":
		return a >= b
	}
	return false
}

func cloneEvents(m map[string]EventRow) map[string]EventRow {
	out := make(map[string]EventRow, len(m)+1)
	for k, v := range m {
		out[k] = v
	}
	return out
}

func cloneEntities(m map[string]int64) map[string]int64 {
	out := make(map[string]int64, len(m)+2)
	for k, v := range m {
		out[k] = v
	}
	return out
}

// propagated renders the known-ID set of an entity variable as a SQL
// IN-list when it exists and is small enough.
func propagated(known map[string]map[int64]bool, id string, maxIDs int) (string, bool) {
	set, ok := known[id]
	if !ok || len(set) == 0 || len(set) > maxIDs {
		return "", false
	}
	ids := make([]int64, 0, len(set))
	for v := range set {
		ids = append(ids, v)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var b strings.Builder
	for i, v := range ids {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d", v)
	}
	return b.String(), true
}

// inListCypher renders an entity-ID disjunction for Cypher.
func inListCypher(col string, set map[int64]bool) string {
	ids := make([]int64, 0, len(set))
	for v := range set {
		ids = append(ids, v)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	terms := make([]string, len(ids))
	for i, v := range ids {
		terms[i] = fmt.Sprintf("%s = %d", col, v)
	}
	return "(" + strings.Join(terms, " OR ") + ")"
}

// intersectOrNew returns prev ∩ cur, or cur when prev is empty (first
// observation of the variable).
func intersectOrNew(prev, cur map[int64]bool) map[int64]bool {
	if len(prev) == 0 {
		return cur
	}
	out := map[int64]bool{}
	for v := range cur {
		if prev[v] {
			out[v] = true
		}
	}
	return out
}

// attrCache is an immutable snapshot of entity attribute values for
// projection, indexed by entity ID - 1.
type attrCache struct {
	rows []map[string]string
}

func (c *attrCache) get(id int64, attr string) string {
	i := id - 1
	if c == nil || i < 0 || i >= int64(len(c.rows)) || c.rows[i] == nil {
		return ""
	}
	return c.rows[i][attr]
}

// entityAttrs returns a snapshot of the entity attribute cache for
// projection, extending it first if the entity table grew. Safe for
// concurrent hunts: attrsMu covers the check and the extension, and
// because the cache slice is append-only, previously returned
// snapshots remain valid while it grows. Only the table rows past the
// cached position are scanned (the table is append-only, so positions
// are stable), so a refresh during steady ingest costs the new rows,
// not the whole table.
func (en *Engine) entityAttrs() (*attrCache, error) {
	en.attrsMu.Lock()
	defer en.attrsMu.Unlock()
	tbl := en.Rel.Table(relstore.EntityTable)
	if tbl == nil {
		return nil, fmt.Errorf("exec: no table %q", relstore.EntityTable)
	}
	if tbl.NumRows() != en.attrsRows {
		cols := tbl.Schema().Columns
		idIdx := tbl.ColIndex("id")
		if idIdx < 0 {
			return nil, fmt.Errorf("exec: entity table has no id column")
		}
		en.attrsRows = tbl.ScanFrom(en.attrsRows, func(row []relstore.Value) {
			m := make(map[string]string, len(cols))
			for i, col := range cols {
				m[strings.ToLower(col.Name)] = row[i].String()
			}
			id := row[idIdx].Int
			if id < 1 {
				return
			}
			// Grow to the row's ID slot; never overwrite an existing
			// slot, so published snapshots stay immutable.
			for int64(len(en.attrRows)) < id-1 {
				en.attrRows = append(en.attrRows, nil)
			}
			if int64(len(en.attrRows)) == id-1 {
				en.attrRows = append(en.attrRows, m)
			}
		})
	}
	return &attrCache{rows: en.attrRows}, nil
}
