package exec

import (
	"fmt"
	"testing"

	"repro/internal/audit"
	"repro/internal/relstore"
)

// fanoutTBQL joins two patterns on a shared process variable with a
// temporal constraint: the shape whose match count explodes with
// per-pattern fan-out.
const fanoutTBQL = `proc p["%worker%"] read file f1 as e1
proc p write file f2 as e2
with e1 before e2
return p, f1, f2`

// fanoutEngine builds a store with `procs` worker processes, each
// reading `filesPer` files and writing `filesPer` other files, of which
// `lateWrites` happen after the reads — so fanoutTBQL yields
// procs*filesPer*lateWrites matches while the join examines
// procs*filesPer*filesPer candidate pairs. A small lateWrites makes the
// workload join-bound: most candidates survive the entity probe and die
// on the temporal check, which is where the naive join pays its
// per-candidate map clones. No graph backend is needed (no path
// patterns).
func fanoutEngine(tb testing.TB, procs, filesPer, lateWrites int) *Engine {
	return fanoutShardedEngine(tb, 1, 1, procs, filesPer, lateWrites)
}

// fanoutShardedEngine is fanoutEngine across `hosts` hosts (workers
// p%hosts apart share a host) on a `shards`-shard store.
func fanoutShardedEngine(tb testing.TB, shards, hosts, procs, filesPer, lateWrites int) *Engine {
	tb.Helper()
	var entities []*audit.Entity
	var events []*audit.Event
	nextID := int64(1)
	newEntity := func(e audit.Entity, host string) int64 {
		e.ID = nextID
		e.Host = host
		nextID++
		entities = append(entities, &e)
		return e.ID
	}
	var ts int64
	addEvent := func(pid, fid int64, op audit.OpType, host string) {
		ts += 10
		events = append(events, &audit.Event{ID: nextID, SrcID: pid, DstID: fid,
			Op: op, StartTime: ts, EndTime: ts + 1, Amount: 64, Host: host})
		nextID++
	}
	for p := 0; p < procs; p++ {
		host := fmt.Sprintf("h%d", p%hosts)
		pid := newEntity(audit.Entity{Type: audit.EntityProcess,
			ExeName: fmt.Sprintf("/bin/worker%d", p), PID: 100 + p}, host)
		var reads, writes []int64
		for f := 0; f < filesPer; f++ {
			reads = append(reads, newEntity(audit.Entity{Type: audit.EntityFile,
				Path: fmt.Sprintf("/in/%d-%d", p, f)}, host))
			writes = append(writes, newEntity(audit.Entity{Type: audit.EntityFile,
				Path: fmt.Sprintf("/out/%d-%d", p, f)}, host))
		}
		// Writes before the reads fail "e1 before e2"; the lateWrites
		// after the reads pair with every read.
		for _, fid := range writes[:filesPer-lateWrites] {
			addEvent(pid, fid, audit.OpWrite, host)
		}
		for _, fid := range reads {
			addEvent(pid, fid, audit.OpRead, host)
		}
		for _, fid := range writes[filesPer-lateWrites:] {
			addEvent(pid, fid, audit.OpWrite, host)
		}
	}
	sh, err := relstore.NewSharded(shards)
	if err != nil {
		tb.Fatal(err)
	}
	if err := sh.Load(entities, events); err != nil {
		tb.Fatal(err)
	}
	// A plan cache is the production default (threatraptor.New wires
	// one), so the benchmarks measure the warm prepared pipeline.
	return &Engine{Rel: sh, Plans: NewPlanCache(DefaultPlanCacheSize)}
}

// BenchmarkJoinFanout compares the streaming hash join against the
// legacy nested-loop join on a high shared-entity fan-out workload:
// each worker's reads pair with all of its writes at the join's second
// level (filesPer² candidate pairs per worker), and the temporal
// relation accepts only the pairs involving the final write. Both modes
// drain a cursor — the production /hunt path — so the difference is the
// join strategy: the naive join clones binding maps per candidate, the
// streaming join probes a hash index and mutates slot arrays in place.
// The acceptance bar for the streaming executor is ≥5× fewer allocs/op.
func BenchmarkJoinFanout(b *testing.B) {
	for _, mode := range []struct {
		name  string
		naive bool
	}{{"streaming", false}, {"naive", true}} {
		b.Run(mode.name, func(b *testing.B) {
			en := fanoutEngine(b, 8, 48, 1) // 8*48*48 pairs, 8*48 matches
			en.UseNaiveJoin = mode.naive
			want := 8 * 48
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cur, err := en.ExecuteTBQLCursor(fanoutTBQL)
				if err != nil {
					b.Fatal(err)
				}
				rows := 0
				for cur.Next() {
					rows++
				}
				cur.Close()
				if rows != want {
					b.Fatalf("rows = %d, want %d", rows, want)
				}
			}
		})
	}
}

// BenchmarkJoinFanoutFirstRow isolates the lazy join: one row off a
// cursor versus materializing the whole fan-out.
func BenchmarkJoinFanoutFirstRow(b *testing.B) {
	en := fanoutEngine(b, 8, 48, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cur, err := en.ExecuteTBQLCursor(fanoutTBQL)
		if err != nil {
			b.Fatal(err)
		}
		if !cur.Next() {
			b.Fatal("no rows")
		}
		cur.Close()
	}
}

// BenchmarkHuntFirstPage measures time-to-first-row on a large store:
// the first page of a hunt with ~10k matches must cost a small fraction
// of a full Execute, because the cursor only does page-sized join work.
func BenchmarkHuntFirstPage(b *testing.B) {
	en := fanoutEngine(b, 10, 32, 32) // 10*32*32 = 10240 matches
	const pageSize = 100

	b.Run("first-page", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cur, err := en.ExecuteTBQLCursor(fanoutTBQL)
			if err != nil {
				b.Fatal(err)
			}
			rows := 0
			for rows < pageSize && cur.Next() {
				rows++
			}
			cur.Close()
			if rows != pageSize {
				b.Fatalf("page = %d rows", rows)
			}
		}
	})
	b.Run("full-execute", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := en.ExecuteTBQL(fanoutTBQL)
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Rows) != 10*32*32 {
				b.Fatalf("rows = %d", len(res.Rows))
			}
		}
	})
}

// BenchmarkHuntFirstPageSharded is BenchmarkHuntFirstPage's sharded
// variant: the same ~10k-match workload spread over 8 hosts, hunted on
// a 1-shard versus an 8-shard store. The unpruned hunt pays the
// fan-out (8 shard fetches instead of 1, run through the worker pool);
// the host-pinned hunt is pruned to a single shard, so its fetch phase
// touches 1/8th of the data.
func BenchmarkHuntFirstPageSharded(b *testing.B) {
	const pageSize = 100
	// 8 workers spread over 8 hosts; worker p lives on host h<p>.
	hostTBQL := `proc p[host = "h3" && "%worker%"] read file f1 as e1
proc p write file f2 as e2
with e1 before e2
return p, f1, f2`
	for _, cfg := range []struct {
		name   string
		shards int
		query  string
		pinned bool
	}{
		{"fanout-1shard", 1, fanoutTBQL, false},
		{"fanout-8shard", 8, fanoutTBQL, false},
		{"hostpinned-1shard", 1, hostTBQL, true},
		{"hostpinned-8shard", 8, hostTBQL, true},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			en := fanoutShardedEngine(b, cfg.shards, 8, 8, 36, 36) // 8*36*36 = 10368 matches
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cur, err := en.ExecuteTBQLCursor(cfg.query)
				if err != nil {
					b.Fatal(err)
				}
				rows := 0
				for rows < pageSize && cur.Next() {
					rows++
				}
				cur.Close()
				if rows != pageSize {
					b.Fatalf("page = %d rows", rows)
				}
			}
		})
	}
}
