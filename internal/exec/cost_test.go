package exec

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/audit/gen"
	"repro/internal/tbql"
)

// skewedEngine loads a deliberately skewed multi-host workload: one hot
// host carrying almost all events and two cold hosts, one of which also
// holds the data-leakage attack. Uniform-selectivity assumptions are at
// their worst here — a pattern pinned to a cold host or a rare
// operation is orders of magnitude smaller than a hot-host scan, and
// only the ingest-time stats can tell the two apart.
func skewedEngine(tb testing.TB, shards, hotEvents int) *Engine {
	tb.Helper()
	en, _ := newShardedEngine(tb, shards,
		gen.Config{Seed: 11, Host: "hot", BenignEvents: hotEvents},
		gen.Config{Seed: 12, Host: "cold1", BenignEvents: 40,
			Attacks: []gen.Attack{{Kind: gen.AttackDataLeakage, At: 10 * time.Minute}}},
		gen.Config{Seed: 13, Host: "cold2", BenignEvents: 40},
	)
	return en
}

// skewedReorderTBQL pairs a broad hot scan with a rare-operation
// pattern sharing the process variable. The static scheduler sees two
// unfiltered patterns (equal pruning scores, textual order) and anchors
// on the huge read pattern; the cost optimizer anchors on the rare
// delete pattern and propagates its few process IDs into the read.
const skewedReorderTBQL = `proc p read file f1 as e1
proc p delete file f2 as e2
return distinct p, f2`

// TestSkewedCostEquivalence is the optimizer-on-vs-off equivalence
// suite on the skew-heavy workload: randomly composed queries mixing
// hot-host scans, cold-host pins, and rare event types must produce
// identical match and row sets with cost-based scheduling and with the
// static order — and the fixture must actually provoke reorders, or
// the suite is vacuous.
func TestSkewedCostEquivalence(t *testing.T) {
	base := skewedEngine(t, 4, 900)
	cost := &Engine{Rel: base.Rel, Graph: base.Graph}
	static := &Engine{Rel: base.Rel, Graph: base.Graph, DisableCostOptimizer: true}

	rng := rand.New(rand.NewSource(606))
	hosts := []string{"hot", "cold1", "cold2"}
	exes := []string{"/bin/tar", "/usr/bin/curl", "/usr/sbin/logrotate", "/usr/bin/chrome"}
	files := []string{"/etc/passwd", "/tmp/upload.tar", "/var/log/syslog"}
	fileOps := []string{"read", "write", "delete", "rename", "read || write", "!read"}

	reorders := 0
	const cases = 50
	for i := 0; i < cases; i++ {
		nPat := 1 + rng.Intn(2)
		var b strings.Builder
		used := map[string]bool{}
		for j := 0; j < nPat; j++ {
			subjID := fmt.Sprintf("p%d", rng.Intn(2))
			objID := fmt.Sprintf("f%d", rng.Intn(2))
			used[subjID], used[objID] = true, true
			subjF, objF := "", ""
			switch rng.Intn(5) {
			case 0:
				subjF = fmt.Sprintf(`["%%%s%%"]`, exes[rng.Intn(len(exes))])
			case 1:
				subjF = fmt.Sprintf(`[host = "%s"]`, hosts[rng.Intn(len(hosts))])
			}
			if rng.Intn(3) == 0 {
				objF = fmt.Sprintf(`["%%%s%%"]`, files[rng.Intn(len(files))])
			}
			if rng.Intn(6) == 0 {
				fmt.Fprintf(&b, "proc %s%s ~>(1~%d)[read] file %s%s as e%d\n",
					subjID, subjF, 2+rng.Intn(2), objID, objF, j+1)
			} else {
				fmt.Fprintf(&b, "proc %s%s %s file %s%s as e%d\n",
					subjID, subjF, fileOps[rng.Intn(len(fileOps))], objID, objF, j+1)
			}
		}
		var ret []string
		for _, id := range []string{"p0", "p1", "f0", "f1"} {
			if used[id] {
				ret = append(ret, id)
			}
		}
		// Distinct projection throughout: two unfiltered patterns over the
		// hot host cross-join to millions of duplicate rows otherwise,
		// which tests row-materialization speed rather than the optimizer.
		b.WriteString("return distinct " + strings.Join(ret, ", "))
		src := b.String()

		cres, err := cost.ExecuteTBQL(src)
		if err != nil {
			t.Fatalf("case %d cost: %v\n%s", i, err, src)
		}
		sres, err := static.ExecuteTBQL(src)
		if err != nil {
			t.Fatalf("case %d static: %v\n%s", i, err, src)
		}
		if cres.Stats.Reordered {
			reorders++
		}
		if sres.Stats.CostBased || sres.Stats.Reordered {
			t.Fatalf("case %d: DisableCostOptimizer engine reports cost stats %+v", i, sres.Stats)
		}
		cm, sm := canonicalMatches(cres.Matches), canonicalMatches(sres.Matches)
		if len(cm) != len(sm) {
			t.Fatalf("case %d: %d cost matches, %d static\n%s", i, len(cm), len(sm), src)
		}
		for k := range cm {
			if cm[k] != sm[k] {
				t.Fatalf("case %d match %d: cost %q, static %q\n%s", i, k, cm[k], sm[k], src)
			}
		}
		got, want := sortedRows(cres.Rows), sortedRows(sres.Rows)
		if len(got) != len(want) {
			t.Fatalf("case %d: %d cost rows, %d static\n%s", i, len(got), len(want), src)
		}
		for r := range got {
			if got[r] != want[r] {
				t.Fatalf("case %d row %d: cost %q, static %q\n%s", i, r, got[r], want[r], src)
			}
		}
	}
	if reorders == 0 {
		t.Error("no query was reordered; the skew fixture does not exercise the optimizer")
	}
}

// TestSkewedAnchorsRareOp pins the headline behavior: on the skewed
// store the optimizer anchors the rare delete pattern ahead of the hot
// read scan, the hunt reports the reorder, and it fetches far fewer
// rows than the static order.
func TestSkewedAnchorsRareOp(t *testing.T) {
	base := skewedEngine(t, 1, 3000)
	cost := &Engine{Rel: base.Rel, Graph: base.Graph}
	static := &Engine{Rel: base.Rel, Graph: base.Graph, DisableCostOptimizer: true}

	q, err := tbql.Parse(skewedReorderTBQL)
	if err != nil {
		t.Fatal(err)
	}
	eps, err := cost.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if eps[0].Name != "e2" {
		t.Errorf("optimizer anchored %s (est %d), want the rare delete pattern e2",
			eps[0].Name, eps[0].EstRows)
	}
	if eps[0].EstRows >= eps[1].EstRows {
		t.Errorf("anchor estimate %d is not below %d", eps[0].EstRows, eps[1].EstRows)
	}

	cres, err := cost.ExecuteTBQL(skewedReorderTBQL)
	if err != nil {
		t.Fatal(err)
	}
	sres, err := static.ExecuteTBQL(skewedReorderTBQL)
	if err != nil {
		t.Fatal(err)
	}
	if !cres.Stats.CostBased || !cres.Stats.Reordered {
		t.Errorf("cost hunt stats = %+v, want CostBased and Reordered", cres.Stats)
	}
	if len(cres.Rows) != len(sres.Rows) {
		t.Fatalf("cost %d rows, static %d", len(cres.Rows), len(sres.Rows))
	}
	if cres.Stats.RowsFetched*2 > sres.Stats.RowsFetched {
		t.Errorf("reordered hunt fetched %d rows vs static %d; expected a large reduction",
			cres.Stats.RowsFetched, sres.Stats.RowsFetched)
	}
}

// BenchmarkHuntSkewed is the acceptance benchmark for cost-based
// optimization on the skewed store, cost vs static:
//
//   - reorder: the two-pattern rare-anchor hunt — the optimizer fetches
//     the few deletes first and propagates, the static order scans the
//     hot reads first.
//   - capped: a page-bounded single-pattern hot scan — the optimizer
//     pushes the page bound into the data query, the static path
//     fetches the full match set to serve 10 rows.
//
// Both run the identical query through the identical API; only
// DisableCostOptimizer differs.
func BenchmarkHuntSkewed(b *testing.B) {
	base := skewedEngine(b, 1, 20000)
	engines := map[string]*Engine{
		"cost":   {Rel: base.Rel, Graph: base.Graph},
		"static": {Rel: base.Rel, Graph: base.Graph, DisableCostOptimizer: true},
	}
	const pageSize = 10
	const capScanTBQL = "proc p read file f as e1\nreturn p, f"

	for _, bench := range []struct{ group, query string }{
		{"reorder", skewedReorderTBQL},
		{"capped", capScanTBQL},
	} {
		for _, mode := range []string{"cost", "static"} {
			en := engines[mode]
			b.Run(bench.group+"/"+mode, func(b *testing.B) {
				b.ReportAllocs()
				fetched := 0
				for i := 0; i < b.N; i++ {
					cur, err := en.ExecuteTBQLCursorLimit(bench.query, pageSize+1)
					if err != nil {
						b.Fatal(err)
					}
					rows := 0
					for rows < pageSize && cur.Next() {
						rows++
					}
					if rows == 0 {
						b.Fatal("empty page")
					}
					fetched = cur.Stats().RowsFetched
					cur.Close()
				}
				b.ReportMetric(float64(fetched), "rows-fetched")
			})
		}
	}
}
