package exec

import (
	"context"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/relstore"
	"repro/internal/snapshot"
	"repro/internal/tbql"
)

// This file implements incremental evaluation for standing hunts: a
// registered query is evaluated once per ingest commit against only the
// commit's delta, yet the union of the emitted batches is provably
// equal to re-executing the whole query at the final epoch
// (TestStandingHuntMatchesReexecution pins the equivalence).
//
// The decomposition is the classic delta-join telescope. With patterns
// in a fixed order F[0..n-1], writing old_i for a pattern's rows before
// the commit and Δ_i for its delta, the new matches are
//
//	Δ(join) = Σ_k  new_{F[0]} ⋈ … ⋈ new_{F[k-1]} ⋈ Δ_{F[k]} ⋈ old_{F[k+1]} ⋈ … ⋈ old_{F[n-1]}
//
// — each term seeds on one pattern's delta, joins "new-inclusive" rows
// on the patterns before it and "old-only" rows on the patterns after
// it, so every new match is produced exactly once. Both stores are
// append-only, so old/new discrimination is a row-position (or epoch
// mark) comparison, not a copy: the per-hunt hash indexes (the
// streaming join's levelIndex shape, grown in place as deltas arrive)
// keep each bucket's row ids ascending, and a term bounds its probes
// with a binary search instead of rebuilding anything.
//
// Deltas are fetched with the same prepared patternPlan templates batch
// hunts use: SQL patterns re-run their statement with the events
// binding restricted to rows appended since the previous watermark
// (relstore.Stmt.QueryViewSince), and path patterns re-run their Cypher
// at the new epoch mark and multiset-diff the result against the rows
// retained from the previous mark — monotone because edges are
// append-only. The registration-time pattern order is fixed for the
// hunt's lifetime (the cost optimizer is intentionally bypassed: the
// incremental indexes assume one stable order), and the propagation
// machinery is unused — a standing hunt's "constraint" is the delta
// itself.
type StandingHunt struct {
	en       *Engine
	q        *tbql.Query
	cols     []string
	distinct bool
	maxHops  int

	order                  []int   // fixed schedule; index state assumes it never changes
	patShards              [][]int // per pattern, the shards its host constraints allow
	relShards, graphShards []int
	projSlots              []int
	empty                  bool // a pattern's host constraints are contradictory: never matches

	plans []*patternPlan // per pattern, re-resolved when the schema fingerprint moves
	fp    uint64

	// termPlans[k] is the join plan for the telescope's k-th term:
	// pattern F[k] seeds (level 0) and the remaining patterns keep their
	// relative order, so check attachment and bound-slot analysis come
	// from the same planJoin the batch executor uses.
	termPlans []*joinPlan

	mu      sync.Mutex
	pats    []standingPat
	idx     map[idxKey]*growIndex
	seen    map[string]bool // DISTINCT rows emitted across all batches
	batches int64
	matches int64
}

// standingPat is one pattern's retained state: every row fetched so
// far (append-only; row ids index into it), the old/new boundary for
// the current Advance, and the per-shard fetch watermarks.
type standingPat struct {
	rows   []EventRow
	oldLen int
	// relMark is the events-table row watermark already consumed per
	// relational shard; graphMark is the epoch mark per graph shard.
	relMark   map[int]int
	graphMark map[int]uint64
	// graphSeen is the multiset of rows the pattern's Cypher produced at
	// graphMark, per shard — the baseline the next fetch diffs against.
	graphSeen map[int]map[EventRow]int32
}

type idxKey struct {
	pat  int
	kind byte // 'b' (src,dst), 's' src, 'o' dst
}

// growIndex is a levelIndex that grows as deltas arrive. Buckets hold
// row ids in ascending order (rows only append), so a term restricts a
// probe to old rows — or extends it through new ones — by cutting the
// bucket at a binary-searched bound instead of rebuilding.
type growIndex struct {
	kind byte
	both map[[2]int64][]int32
	one  map[int64][]int32
}

func newGrowIndex(kind byte) *growIndex {
	ix := &growIndex{kind: kind}
	if kind == 'b' {
		ix.both = make(map[[2]int64][]int32)
	} else {
		ix.one = make(map[int64][]int32)
	}
	return ix
}

// add indexes rows[from:].
func (ix *growIndex) add(rows []EventRow, from int) {
	switch ix.kind {
	case 'b':
		for i := from; i < len(rows); i++ {
			k := [2]int64{rows[i].SrcID, rows[i].DstID}
			ix.both[k] = append(ix.both[k], int32(i))
		}
	case 's':
		for i := from; i < len(rows); i++ {
			ix.one[rows[i].SrcID] = append(ix.one[rows[i].SrcID], int32(i))
		}
	default: // 'o'
		for i := from; i < len(rows); i++ {
			ix.one[rows[i].DstID] = append(ix.one[rows[i].DstID], int32(i))
		}
	}
}

// cut returns the bucket's prefix of row ids < hi (buckets ascend).
func cut(bucket []int32, hi int) []int32 {
	if len(bucket) == 0 || int(bucket[len(bucket)-1]) < hi {
		return bucket
	}
	n := sort.Search(len(bucket), func(j int) bool { return int(bucket[j]) >= hi })
	return bucket[:n]
}

// DeltaBatch is the result of one incremental evaluation: the projected
// rows of every match that became visible since the previous Advance,
// the epoch the evaluation observed, and an opaque resume token naming
// the consumed watermarks (ResumeStandingHunt).
type DeltaBatch struct {
	Epoch  snapshot.Epoch
	Resume string
	Rows   [][]string
}

// NewStandingHunt registers q for incremental evaluation. The hunt
// starts at zero watermarks, so the first Advance emits every match
// already in the store (the backfill) and later Advances emit only what
// each commit added.
func (en *Engine) NewStandingHunt(q *tbql.Query) (*StandingHunt, error) {
	if q.Info() == nil {
		if err := tbql.Analyze(q); err != nil {
			return nil, err
		}
	}
	if en.Rel == nil {
		return nil, fmt.Errorf("exec: engine has no relational backend")
	}
	maxHops := en.MaxPathHops
	if maxHops == 0 {
		maxHops = DefaultMaxHops
	}
	h := &StandingHunt{
		en:       en,
		q:        q,
		cols:     returnCols(q),
		distinct: q.Distinct,
		maxHops:  maxHops,
		order:    en.schedule(q, maxHops),
	}
	h.patShards, h.relShards, h.graphShards = en.shardPlan(q)
	for pi := range q.Patterns {
		if len(h.patShards[pi]) == 0 {
			h.empty = true
		}
	}
	info := q.Info()
	h.projSlots = make([]int, len(q.Return))
	for i, item := range q.Return {
		h.projSlots[i] = info.EntitySlot[item.ID]
	}
	if h.distinct {
		h.seen = make(map[string]bool)
	}
	if err := h.resolvePlans(); err != nil {
		return nil, err
	}

	h.termPlans = make([]*joinPlan, len(h.order))
	for k := range h.order {
		orderK := make([]int, 0, len(h.order))
		orderK = append(orderK, h.order[k])
		for j, pi := range h.order {
			if j != k {
				orderK = append(orderK, pi)
			}
		}
		h.termPlans[k] = planJoin(q, orderK)
	}

	// One grow-index per (pattern, probe shape) any term's inner levels
	// need; 'x' levels (no bound side) scan the row list directly.
	h.idx = make(map[idxKey]*growIndex)
	for _, tp := range h.termPlans {
		for l := 1; l < len(tp.levels); l++ {
			lv := &tp.levels[l]
			var kind byte
			switch {
			case lv.subjBound && lv.objBound:
				kind = 'b'
			case lv.subjBound:
				kind = 's'
			case lv.objBound:
				kind = 'o'
			default:
				continue
			}
			key := idxKey{pat: lv.patIdx, kind: kind}
			if h.idx[key] == nil {
				h.idx[key] = newGrowIndex(kind)
			}
		}
	}

	h.pats = make([]standingPat, len(q.Patterns))
	for pi := range h.pats {
		h.pats[pi].relMark = make(map[int]int)
		h.pats[pi].graphMark = make(map[int]uint64)
		h.pats[pi].graphSeen = make(map[int]map[EventRow]int32)
	}
	return h, nil
}

// resolvePlans (re)compiles the per-pattern plan templates at the
// engine's current schema fingerprint, through the cross-hunt cache
// when one is configured. Standing hunts never propagate, so every
// plan is the shape-0 template.
func (h *StandingHunt) resolvePlans() error {
	fp := h.en.schemaFingerprint()
	if h.plans != nil && fp == h.fp {
		return nil
	}
	h.en.Plans.ensureSchema(fp)
	var stats Stats
	plans := make([]*patternPlan, len(h.q.Patterns))
	for pi := range h.q.Patterns {
		p, err := h.en.lookupPlan(&h.q.Patterns[pi], 0, h.maxHops, fp, &stats)
		if err != nil {
			return err
		}
		plans[pi] = p
	}
	h.plans, h.fp = plans, fp
	return nil
}

// Columns returns the projected column names. The caller must not
// modify the returned slice.
func (h *StandingHunt) Columns() []string { return h.cols }

// Totals reports how many batches this hunt has evaluated and how many
// match rows it has emitted.
func (h *StandingHunt) Totals() (batches, matches int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.batches, h.matches
}

// Advance evaluates the hunt against everything committed since the
// previous Advance (or since registration) and returns the new matches.
// It is safe for concurrent use; concurrent calls serialize, and a call
// that observes no new rows returns an empty batch.
func (h *StandingHunt) Advance() (*DeltaBatch, error) {
	return h.AdvanceContext(context.Background())
}

// AdvanceContext is Advance under a lifecycle context, polled between
// per-pattern delta fetches and every joinCheckEvery candidates inside
// the delta join, so a cancelled or timed-out Advance aborts within a
// bounded amount of work. A cancelled Advance returns ErrHuntCancelled
// (or ErrHuntDeadline) and leaves the hunt's incremental state
// partially advanced — deltas may have been consumed without their
// matches being emitted — so the caller must treat the hunt as broken
// and stop using it (the facade watch closes it; a resume token from
// an earlier successful batch stays valid).
func (h *StandingHunt) AdvanceContext(ctx context.Context) (*DeltaBatch, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.advanceLocked(ctx)
}

func (h *StandingHunt) advanceLocked(ctx context.Context) (*DeltaBatch, error) {
	if ctxDone(ctx) {
		return nil, huntErr(ctx)
	}
	sv, err := h.en.snapshotStores(h.relShards, h.graphShards)
	if err != nil {
		return nil, err
	}
	batch := &DeltaBatch{Epoch: sv.epoch}
	h.batches++
	if h.empty || len(h.order) == 0 {
		batch.Resume = h.tokenLocked()
		return batch, nil
	}
	if err := h.resolvePlans(); err != nil {
		return nil, err
	}

	anyNew := false
	for pi := range h.q.Patterns {
		if ctxDone(ctx) {
			return nil, huntErr(ctx)
		}
		st := &h.pats[pi]
		st.oldLen = len(st.rows)
		if err := h.fetchDelta(pi, sv); err != nil {
			return nil, err
		}
		if len(st.rows) > st.oldLen {
			anyNew = true
			for key, ix := range h.idx {
				if key.pat == pi {
					ix.add(st.rows, st.oldLen)
				}
			}
		}
	}
	if !anyNew {
		batch.Resume = h.tokenLocked()
		return batch, nil
	}

	attrs, err := h.en.entityAttrsAt(sv.ent)
	if err != nil {
		return nil, err
	}
	emit := func(entities []int64) {
		row := make([]string, len(h.projSlots))
		for i, slot := range h.projSlots {
			row[i] = attrs.get(entities[slot], h.q.Return[i].Attr)
		}
		if h.distinct {
			key := strings.Join(row, "\x00")
			if h.seen[key] {
				return
			}
			h.seen[key] = true
		}
		batch.Rows = append(batch.Rows, row)
	}
	for k, tp := range h.termPlans {
		if err := h.runTerm(ctx, k, tp, emit); err != nil {
			return nil, err
		}
	}

	for pi := range h.pats {
		h.pats[pi].oldLen = len(h.pats[pi].rows)
	}
	h.matches += int64(len(batch.Rows))
	batch.Resume = h.tokenLocked()
	return batch, nil
}

// fetchDelta pulls pattern pi's new rows at the snapshot and appends
// them to its retained row list.
func (h *StandingHunt) fetchDelta(pi int, sv *storeView) error {
	pat := &h.q.Patterns[pi]
	st := &h.pats[pi]
	plan := h.plans[pi]
	if pat.IsPath {
		for _, s := range h.patShards[pi] {
			mark := sv.graph[s]
			if mark <= st.graphMark[s] {
				continue
			}
			gr, err := h.en.Graph.Shard(s).QueryPreparedAt(plan.cy, mark, plan.bindCypher(nil, nil))
			if err != nil {
				return err
			}
			// Multiset-diff against the previous mark's result: edges are
			// append-only, so the old result is a sub-multiset of the new
			// one and every excess occurrence is a delta row.
			old := st.graphSeen[s]
			occ := make(map[EventRow]int32, len(gr.Data))
			for _, r := range gr.Data {
				er := EventRow{
					SrcID: r[0].Int, DstID: r[1].Int, EventID: r[2].Int,
					Start: r[3].Int, End: r[4].Int, Amount: r[5].Int,
				}
				occ[er]++
				if occ[er] > old[er] {
					st.rows = append(st.rows, er)
				}
			}
			st.graphSeen[s] = occ
			st.graphMark[s] = mark
		}
		return nil
	}
	for _, s := range h.patShards[pi] {
		v := sv.rel[s]
		evts := v.Table(relstore.EventTable)
		if evts == nil {
			return fmt.Errorf("exec: no table %q", relstore.EventTable)
		}
		n := evts.NumRows()
		prev := st.relMark[s]
		if n <= prev {
			continue
		}
		rr, err := plan.sql.QueryViewSince(v, nil, relstore.EventTable, prev)
		if err != nil {
			return err
		}
		for _, r := range rr.Data {
			st.rows = append(st.rows, EventRow{
				EventID: r[0].Int, SrcID: r[1].Int, DstID: r[2].Int,
				Start: r[3].Int, End: r[4].Int, Amount: r[5].Int,
			})
		}
		st.relMark[s] = n
	}
	return nil
}

// runTerm evaluates the telescope's k-th term: seed on pattern
// F[k]'s delta rows, join new-inclusive rows for patterns scheduled
// before F[k] and old-only rows for patterns after it. The context is
// polled every joinCheckEvery candidates; once it fires, the remaining
// recursion unwinds as no-ops and the term returns huntErr.
func (h *StandingHunt) runTerm(ctx context.Context, k int, tp *joinPlan, emit func(entities []int64)) error {
	seedPat := h.order[k]
	seed := &h.pats[seedPat]
	if seed.oldLen == len(seed.rows) {
		return nil // no delta on this pattern: the term contributes nothing
	}
	// hi[pi] bounds pattern pi's candidate row ids for this term.
	hi := make([]int, len(h.pats))
	for j, pi := range h.order {
		if j < k {
			hi[pi] = len(h.pats[pi].rows)
		} else {
			hi[pi] = h.pats[pi].oldLen
		}
	}

	events := make([]EventRow, len(h.q.Patterns))
	entities := make([]int64, tp.nEnt)
	last := len(tp.levels) - 1
	aborted := false
	tick := 0

	var rec func(d int)
	rec = func(d int) {
		lv := &tp.levels[d]
		rows := h.pats[lv.patIdx].rows
		try := func(rid int32) {
			if aborted {
				return
			}
			if tick++; tick >= joinCheckEvery {
				tick = 0
				if ctxDone(ctx) {
					aborted = true
					return
				}
			}
			r := rows[rid]
			events[lv.patIdx] = r
			for _, check := range lv.checks {
				if !check(events) {
					return
				}
			}
			// Bind subject then object, matching the streaming join's
			// overwrite semantics; probed sides already hold equal values.
			entities[lv.subjSlot] = r.SrcID
			entities[lv.objSlot] = r.DstID
			if d == last {
				emit(entities)
				return
			}
			rec(d + 1)
		}
		if d == 0 {
			for rid := seed.oldLen; rid < len(seed.rows); rid++ {
				try(int32(rid))
			}
			return
		}
		bound := hi[lv.patIdx]
		switch {
		case lv.subjBound && lv.objBound:
			ix := h.idx[idxKey{pat: lv.patIdx, kind: 'b'}]
			for _, rid := range cut(ix.both[[2]int64{entities[lv.subjSlot], entities[lv.objSlot]}], bound) {
				try(rid)
			}
		case lv.subjBound:
			ix := h.idx[idxKey{pat: lv.patIdx, kind: 's'}]
			for _, rid := range cut(ix.one[entities[lv.subjSlot]], bound) {
				try(rid)
			}
		case lv.objBound:
			ix := h.idx[idxKey{pat: lv.patIdx, kind: 'o'}]
			for _, rid := range cut(ix.one[entities[lv.objSlot]], bound) {
				try(rid)
			}
		default:
			for rid := 0; rid < bound; rid++ {
				try(int32(rid))
			}
		}
	}
	rec(0)
	if aborted {
		return huntErr(ctx)
	}
	return nil
}

// tokenLocked renders the hunt's consumed watermarks as an opaque
// resume token: the query fingerprint (so a token cannot silently
// resume a different query), the per-relational-shard events row
// watermark, and the per-graph-shard epoch mark.
func (h *StandingHunt) tokenLocked() string {
	var b strings.Builder
	fmt.Fprintf(&b, "v1 q=%x", queryFingerprint(h.q))
	// Shard watermarks are aggregated across patterns: every pattern on
	// a shard consumes to the same watermark in one Advance, so the max
	// is the hunt's position. (Patterns can differ only transiently,
	// mid-advance, and tokens are rendered at the end.)
	relMax := map[int]int{}
	graphMax := map[int]uint64{}
	for pi := range h.pats {
		for s, n := range h.pats[pi].relMark {
			if n > relMax[s] {
				relMax[s] = n
			}
		}
		for s, m := range h.pats[pi].graphMark {
			if m > graphMax[s] {
				graphMax[s] = m
			}
		}
	}
	b.WriteString(" ev=")
	for i, s := range h.relShards {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d:%d", s, relMax[s])
	}
	b.WriteString(" g=")
	for i, s := range h.graphShards {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d:%d", s, graphMax[s])
	}
	return b.String()
}

// queryFingerprint hashes the parts of a query that determine its
// matches: the pattern normal forms (order included — the token's
// watermarks are order-independent but the query identity is not),
// DISTINCT, and the projection.
func queryFingerprint(q *tbql.Query) uint64 {
	fh := fnv.New64a()
	for i := range q.Patterns {
		fh.Write([]byte(tbql.FormatPattern(q.Patterns[i])))
		fh.Write([]byte{0})
	}
	if q.Distinct {
		fh.Write([]byte{1})
	}
	for _, item := range q.Return {
		fh.Write([]byte(item.ID))
		fh.Write([]byte{'.'})
		fh.Write([]byte(item.Attr))
		fh.Write([]byte{0})
	}
	return fh.Sum64()
}

// resumeMarks is a parsed resume token.
type resumeMarks struct {
	qfp   uint64
	rel   map[int]int
	graph map[int]uint64
}

func parseResumeToken(tok string) (resumeMarks, error) {
	rm := resumeMarks{rel: map[int]int{}, graph: map[int]uint64{}}
	fields := strings.Fields(tok)
	if len(fields) == 0 || fields[0] != "v1" {
		return rm, fmt.Errorf("exec: malformed resume token")
	}
	for _, f := range fields[1:] {
		key, val, ok := strings.Cut(f, "=")
		if !ok {
			return rm, fmt.Errorf("exec: malformed resume token field %q", f)
		}
		switch key {
		case "q":
			n, err := strconv.ParseUint(val, 16, 64)
			if err != nil {
				return rm, fmt.Errorf("exec: malformed resume token query hash")
			}
			rm.qfp = n
		case "ev", "g":
			if val == "" {
				continue
			}
			for _, part := range strings.Split(val, ",") {
				ss, ns, ok := strings.Cut(part, ":")
				if !ok {
					return rm, fmt.Errorf("exec: malformed resume token mark %q", part)
				}
				shard, err1 := strconv.Atoi(ss)
				n, err2 := strconv.ParseUint(ns, 10, 64)
				if err1 != nil || err2 != nil || shard < 0 {
					return rm, fmt.Errorf("exec: malformed resume token mark %q", part)
				}
				if key == "ev" {
					rm.rel[shard] = int(n)
				} else {
					rm.graph[shard] = n
				}
			}
		}
	}
	return rm, nil
}

// ResumeStandingHunt registers q positioned at a previous hunt's resume
// token: matches at or below the token's watermarks are silently
// re-absorbed (rows refetched and re-indexed; for DISTINCT hunts the
// join also replays to rebuild the emitted-row set) and the first
// Advance emits exactly what committed after the token. The token must
// come from the same query, and the store must have recovered at least
// to the token's watermarks — a token "ahead" of the store means the
// acked batches it names were not durable, and resuming would
// silently lose them, so it is an error.
func (en *Engine) ResumeStandingHunt(q *tbql.Query, token string) (*StandingHunt, error) {
	h, err := en.NewStandingHunt(q)
	if err != nil {
		return nil, err
	}
	rm, err := parseResumeToken(token)
	if err != nil {
		return nil, err
	}
	if rm.qfp != queryFingerprint(h.q) {
		return nil, fmt.Errorf("exec: resume token belongs to a different query")
	}
	// Tokens always render a mark for every shard the query touches
	// (zero included), so a shard-layout mismatch — a token minted on a
	// store with a different shard count — is detectable and rejected
	// rather than silently re-emitting some shards' history.
	if len(rm.rel) != len(h.relShards) || len(rm.graph) != len(h.graphShards) {
		return nil, fmt.Errorf("exec: resume token shard layout does not match the store (%d/%d rel, %d/%d graph shards)",
			len(rm.rel), len(h.relShards), len(rm.graph), len(h.graphShards))
	}
	for _, s := range h.relShards {
		if _, ok := rm.rel[s]; !ok {
			return nil, fmt.Errorf("exec: resume token lacks a mark for shard %d", s)
		}
	}
	for _, s := range h.graphShards {
		if _, ok := rm.graph[s]; !ok {
			return nil, fmt.Errorf("exec: resume token lacks a mark for graph shard %d", s)
		}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	sv, err := en.snapshotStores(h.relShards, h.graphShards)
	if err != nil {
		return nil, err
	}
	for _, s := range h.relShards {
		v := sv.rel[s]
		evts := v.Table(relstore.EventTable)
		if evts == nil {
			return nil, fmt.Errorf("exec: no table %q", relstore.EventTable)
		}
		if rm.rel[s] > evts.NumRows() {
			return nil, fmt.Errorf("exec: resume token is ahead of shard %d (%d > %d rows); the store lost acknowledged commits",
				s, rm.rel[s], evts.NumRows())
		}
	}
	for _, s := range h.graphShards {
		if rm.graph[s] > sv.graph[s] {
			return nil, fmt.Errorf("exec: resume token is ahead of graph shard %d (mark %d > %d)",
				s, rm.graph[s], sv.graph[s])
		}
	}
	if h.empty || len(h.order) == 0 {
		return h, nil
	}

	// Silent phase: fetch each pattern's rows bounded at the token's
	// watermarks and build the index state, without emitting anything.
	for pi := range h.q.Patterns {
		pat := &h.q.Patterns[pi]
		st := &h.pats[pi]
		plan := h.plans[pi]
		if pat.IsPath {
			for _, s := range h.patShards[pi] {
				mark := rm.graph[s]
				if mark == 0 {
					continue
				}
				gr, err := en.Graph.Shard(s).QueryPreparedAt(plan.cy, mark, plan.bindCypher(nil, nil))
				if err != nil {
					return nil, err
				}
				occ := make(map[EventRow]int32, len(gr.Data))
				for _, r := range gr.Data {
					er := EventRow{
						SrcID: r[0].Int, DstID: r[1].Int, EventID: r[2].Int,
						Start: r[3].Int, End: r[4].Int, Amount: r[5].Int,
					}
					occ[er]++
					st.rows = append(st.rows, er)
				}
				st.graphSeen[s] = occ
				st.graphMark[s] = mark
			}
			continue
		}
		for _, s := range h.patShards[pi] {
			n := rm.rel[s]
			if n == 0 {
				st.relMark[s] = 0
				continue
			}
			rr, err := plan.sql.QueryView(sv.rel[s].Clamp(relstore.EventTable, n), nil)
			if err != nil {
				return nil, err
			}
			for _, r := range rr.Data {
				st.rows = append(st.rows, EventRow{
					EventID: r[0].Int, SrcID: r[1].Int, DstID: r[2].Int,
					Start: r[3].Int, End: r[4].Int, Amount: r[5].Int,
				})
			}
			st.relMark[s] = n
		}
	}
	for pi := range h.pats {
		h.pats[pi].oldLen = len(h.pats[pi].rows)
		for key, ix := range h.idx {
			if key.pat == pi {
				ix.add(h.pats[pi].rows, 0)
			}
		}
	}

	// DISTINCT hunts must also know which rows were already emitted:
	// replay the full join at the token's watermarks into the seen set.
	// (Non-DISTINCT hunts skip the join entirely — old matches can never
	// suppress new ones.)
	if h.distinct {
		attrs, err := en.entityAttrsAt(sv.ent)
		if err != nil {
			return nil, err
		}
		full := planJoin(h.q, h.order)
		rows := make([][]EventRow, len(h.q.Patterns))
		for pi := range rows {
			rows[pi] = h.pats[pi].rows
		}
		s := newMatchStream(full, rows)
		for s.Next() {
			row := make([]string, len(h.projSlots))
			for i, slot := range h.projSlots {
				row[i] = attrs.get(s.entities[slot], h.q.Return[i].Attr)
			}
			h.seen[strings.Join(row, "\x00")] = true
		}
	}
	return h, nil
}
